// Fault injection: demonstrates the OmniVM exception model (§3 of the
// paper — "delivers an access violation exception to the module
// whenever it makes an unauthorized attempt to access a memory
// segment").
//
// The host write-protects a page inside the module's own segment; the
// module registers an access-violation handler, probes the page, takes
// the exception, and recovers.
package main

import (
	"fmt"
	"log"

	"omniware"
	"omniware/internal/seg"
)

const probeSrc = `
int faults;
int done;

/* Exception ABI: on an access violation the runtime sets
 * r1 = kind, r2 = faulting address, r3 = faulting pc and jumps here.
 * This handler just records the event and finishes the program. */
void on_fault(void) {
	faults = faults + 1;
	done = 1;
	_puts("module: caught access violation, recovering\n");
	_exit(40 + faults);
}

char page[8192];

int main(void) {
	_set_handler((int)on_fault);
	_puts("module: probing the protected page...\n");
	page[4096] = 1; /* the host protected this page */
	/* Unreached: the handler exits. */
	return 0;
}
`

func main() {
	mod, err := omniware.BuildC(
		[]omniware.SourceFile{{Name: "probe.c", Src: probeSrc}},
		omniware.CompilerOptions{OptLevel: 1},
	)
	if err != nil {
		log.Fatal(err)
	}
	host, err := omniware.NewHost(mod, omniware.RunConfig{Out: logWriter{}})
	if err != nil {
		log.Fatal(err)
	}

	// Host-imposed permissions: write-protect one page in the middle of
	// the module's own array (the paper's "write and execute
	// protections on multi-page segments").
	pageSym := mustSym(mod, "page")
	protBase := (pageSym + 4096) &^ (seg.PageSize - 1)
	if err := host.Mem.Protect(protBase, seg.PageSize, seg.Read); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("host: write-protected page at %#x\n", protBase)

	res, err := host.RunInterp()
	if err != nil {
		log.Fatal(err)
	}
	switch {
	case res.Faulted:
		fmt.Printf("host: module died unhandled: %s\n", res.Fault)
	case res.ExitCode == 41:
		fmt.Println("host: module handled its access violation and exited cleanly (exit 41)")
	default:
		fmt.Printf("host: unexpected exit %d\n", res.ExitCode)
	}
}

type logWriter struct{}

func (logWriter) Write(p []byte) (int, error) {
	fmt.Print("  > " + string(p))
	return len(p), nil
}

func mustSym(mod *omniware.Module, name string) uint32 {
	for _, s := range mod.Symbols {
		if s.Name == name {
			return s.Value
		}
	}
	log.Fatalf("symbol %q not found", name)
	return 0
}
