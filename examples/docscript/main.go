// Executable document content: the paper's headline application.
// A "document" arrives with an embedded mobile-code module that renders
// a chart of the document's data into a buffer the viewer displays.
// The viewer (host) never needs to know what language the chart code
// was written in, and a buggy or hostile module cannot touch anything
// but its own segment.
package main

import (
	"fmt"
	"log"

	"omniware"
)

// The chart renderer shipped inside the document. It reads a table of
// values the viewer deposits in its data segment and renders an ASCII
// bar chart into an output buffer.
const chartSrc = `
int values[16];
int nvalues;
char canvas[16 * 34];

void render(void) {
	int row, col, width;
	for (row = 0; row < nvalues; row++) {
		char *line = canvas + row * 34;
		width = values[row];
		if (width > 30) width = 30;
		if (width < 0) width = 0;
		line[0] = '|';
		for (col = 0; col < width; col++) line[1 + col] = '#';
		line[1 + width] = 0;
	}
}

int main(void) {
	render();
	return nvalues;
}
`

func main() {
	mod, err := omniware.BuildC(
		[]omniware.SourceFile{{Name: "chart.c", Src: chartSrc}},
		omniware.CompilerOptions{OptLevel: 2},
	)
	if err != nil {
		log.Fatal(err)
	}

	// The viewer loads the document's module...
	host, err := omniware.NewHost(mod, omniware.RunConfig{})
	if err != nil {
		log.Fatal(err)
	}

	// ...deposits the document data in the module's segment...
	data := []uint32{3, 7, 12, 19, 27, 30, 22, 14, 6, 2}
	valAddr := mustSym(mod, "values")
	for i, v := range data {
		host.Mem.StoreU32(valAddr+uint32(i*4), v)
	}
	host.Mem.StoreU32(mustSym(mod, "nvalues"), uint32(len(data)))

	// ...and executes it, translated for the viewer's processor.
	res, _, err := host.RunTranslated(omniware.MachineByName("sparc"), omniware.PaperOptions(true))
	if err != nil {
		log.Fatal(err)
	}
	if res.Faulted {
		log.Fatalf("chart module faulted: %s", res.Fault)
	}

	// Display the rendered canvas.
	canvas := mustSym(mod, "canvas")
	fmt.Println("document chart (rendered by untrusted mobile code):")
	for row := 0; row < len(data); row++ {
		line, _ := host.Mem.ReadCString(canvas+uint32(row*34), 34)
		fmt.Printf("  %2d %s\n", row, line)
	}
	fmt.Printf("\nrendered %d rows in %d simulated cycles\n", res.ExitCode, res.Cycles)
}

func mustSym(mod *omniware.Module, name string) uint32 {
	for _, s := range mod.Symbols {
		if s.Name == name {
			return s.Value
		}
	}
	log.Fatalf("symbol %q not found", name)
	return 0
}
