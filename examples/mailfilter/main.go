// Mail filter: the motivating scenario from §2 of the paper — "an
// e-mail client can ship a mail-filtering function to a server to
// reduce server bandwidth requirements."
//
// The "server" below receives a filter as a mobile-code module, loads
// it next to its own (read-only, host-owned) message store, and runs
// it once per message. A second, malicious filter tries to scribble
// over the server's memory; SFI forces its stores back into the
// module's own sandbox and the message store survives intact.
package main

import (
	"fmt"
	"log"

	"omniware"
)

// The honest filter: scan the message (copied into the module's heap
// by the server) for "URGENT" or too many '!'.
const filterSrc = `
int score(char *msg, int len) {
	int i, bangs = 0, urgent = 0;
	for (i = 0; i < len; i++) {
		if (msg[i] == '!') bangs++;
		if (msg[i] == 'U' && i + 5 < len &&
		    msg[i+1] == 'R' && msg[i+2] == 'G' &&
		    msg[i+3] == 'E' && msg[i+4] == 'N' && msg[i+5] == 'T')
			urgent = 1;
	}
	return urgent * 10 + bangs;
}

char buf[512];
int len;

int main(void) {
	/* The server stored the message at buf and its length in len. */
	return score(buf, len);
}
`

// The malicious filter: ignores the message and tries to overwrite the
// host's message store at its well-known address.
const evilSrc = `
int main(void) {
	int i;
	int *host = (int *)0x40000000;
	for (i = 0; i < 64; i++) host[i] = 0xdeadbeef;
	return 0; /* "nothing suspicious here" */
}
`

var messages = []string{
	"Lunch on Thursday?",
	"URGENT: wire funds now!!!",
	"Quarterly report attached.",
	"You won!!!!!!!! Claim today!!!!",
}

func runFilter(src string, msg string, hostStore []byte) (int32, error) {
	mod, err := omniware.BuildC(
		[]omniware.SourceFile{{Name: "filter.c", Src: src}},
		omniware.CompilerOptions{OptLevel: 2},
	)
	if err != nil {
		return 0, err
	}
	host, err := omniware.NewHost(mod, omniware.RunConfig{HostData: hostStore})
	if err != nil {
		return 0, err
	}
	// The server writes the message into the module's data segment
	// (host-side access is not subject to the module's permissions).
	if buf, ok := findSym(mod, "buf"); ok {
		host.Mem.WriteBytes(buf, []byte(msg))
	}
	if lenAddr, ok := findSym(mod, "len"); ok {
		host.Mem.StoreU32(lenAddr, uint32(len(msg)))
	}
	res, _, err := host.RunTranslated(omniware.MachineByName("ppc"), omniware.PaperOptions(true))
	if err != nil {
		return 0, err
	}
	if res.Faulted {
		return 0, fmt.Errorf("filter faulted: %s", res.Fault)
	}
	return res.ExitCode, nil
}

func findSym(mod *omniware.Module, name string) (uint32, bool) {
	for _, s := range mod.Symbols {
		if s.Name == name {
			return s.Value, true
		}
	}
	return 0, false
}

func main() {
	// The server's own data: a read-only segment the modules can see
	// but must never modify.
	store := make([]byte, 4096)
	copy(store, "server message store v1")

	fmt.Println("running shipped filter over the inbox:")
	for _, m := range messages {
		score, err := runFilter(filterSrc, m, store)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "ok"
		if score >= 4 {
			verdict = "SPAM"
		}
		fmt.Printf("  %-35q score=%-3d %s\n", m, score, verdict)
	}

	fmt.Println("\nrunning a malicious filter (wild stores at the host segment):")
	if _, err := runFilter(evilSrc, messages[0], store); err != nil {
		fmt.Printf("  contained: %v\n", err)
	} else {
		fmt.Println("  module ran to completion — its stores were sandboxed")
	}
	if string(store[:23]) == "server message store v1" {
		fmt.Println("  host message store intact: SFI held")
	} else {
		fmt.Println("  HOST STORE CORRUPTED (this should never happen)")
	}
}
