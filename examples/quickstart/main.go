// Quickstart: compile an OmniC program to a mobile-code module, then
// execute the same module three ways — interpreted, and translated
// (with SFI) for two different simulated processors — demonstrating
// the paper's core claim: one module, identical semantics everywhere,
// near-native speed.
package main

import (
	"fmt"
	"log"
	"os"

	"omniware"
)

const program = `
int fib(int n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }

int main(void) {
	int i;
	_puts("fib: ");
	for (i = 1; i <= 10; i++) {
		_print_int(fib(i));
		_putc(' ');
	}
	_putc('\n');
	return fib(10);
}
`

func main() {
	mod, err := omniware.BuildC(
		[]omniware.SourceFile{{Name: "fib.c", Src: program}},
		omniware.CompilerOptions{OptLevel: 2},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("module: %d OmniVM instructions, %d data bytes\n\n", len(mod.Text), len(mod.Data))

	// 1. Abstract-machine interpretation (the slow, classic way).
	host, err := omniware.NewHost(mod, omniware.RunConfig{Out: os.Stdout})
	if err != nil {
		log.Fatal(err)
	}
	ires, err := host.RunInterp()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("interpreted:      exit=%d  %d virtual cycles\n\n", ires.ExitCode, ires.Cycles)

	// 2. Load-time translation with SFI, per target.
	for _, name := range []string{"mips", "x86"} {
		h, err := omniware.NewHost(mod, omniware.RunConfig{Out: os.Stdout})
		if err != nil {
			log.Fatal(err)
		}
		res, prog, err := h.RunTranslated(omniware.MachineByName(name), omniware.PaperOptions(true))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("translated/%-5s  exit=%d  %d cycles  (%d native insts, %.1fx faster than interpretation)\n\n",
			name, res.ExitCode, res.Cycles, len(prog.Code),
			float64(ires.Cycles)/float64(res.Cycles))
	}
}
