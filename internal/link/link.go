// Package link implements the OmniVM linker. It combines relocatable
// objects into an executable module: text sections are concatenated
// (code addresses are instruction indices), data and bss are laid out in
// the module's data segment starting at DataBase, and all symbol
// references are resolved. Because symbols are resolved here, translated
// code pays no dynamic-linking cost at run time (§4.2 of the paper).
package link

import (
	"fmt"

	"omniware/internal/ovm"
)

// DefaultDataBase is the virtual address where a module's data segment
// is mapped unless overridden. The high bits form the segment identifier
// that SFI sandboxing forces onto unsafe store addresses.
const DefaultDataBase = 0x20000000

// Options configures a link.
type Options struct {
	Entry    string // entry symbol; default "_start", falling back to "main"
	DataBase uint32 // data segment base; default DefaultDataBase
}

type symLoc struct {
	obj int
	sym ovm.Symbol
}

// Link resolves objs into an executable module.
func Link(objs []*ovm.Object, opts Options) (*ovm.Module, error) {
	if len(objs) == 0 {
		return nil, fmt.Errorf("link: no input objects")
	}
	if opts.DataBase == 0 {
		opts.DataBase = DefaultDataBase
	}
	if opts.DataBase%4096 != 0 {
		return nil, fmt.Errorf("link: data base %#x not page aligned", opts.DataBase)
	}

	// Layout.
	textBase := make([]int32, len(objs))
	dataOff := make([]uint32, len(objs))
	bssOff := make([]uint32, len(objs))
	var text []ovm.Inst
	var data []byte
	var bssSize uint32
	for i, o := range objs {
		textBase[i] = int32(len(text))
		text = append(text, o.Text...)
		// Keep every object's data 8-aligned so doubles stay aligned.
		for len(data)%8 != 0 {
			data = append(data, 0)
		}
		dataOff[i] = uint32(len(data))
		data = append(data, o.Data...)
	}
	dataLen := uint32(len(data))
	dataLen = (dataLen + 7) &^ 7
	for uint32(len(data)) < dataLen {
		data = append(data, 0)
	}
	for i, o := range objs {
		bssSize = (bssSize + 7) &^ 7
		bssOff[i] = bssSize
		bssSize += o.BSSSize
	}

	// Symbol tables.
	globals := map[string]symLoc{}
	locals := make([]map[string]ovm.Symbol, len(objs))
	for i, o := range objs {
		locals[i] = make(map[string]ovm.Symbol, len(o.Symbols))
		for _, s := range o.Symbols {
			if _, dup := locals[i][s.Name]; dup {
				return nil, fmt.Errorf("link: %s: symbol %q defined twice", o.Name, s.Name)
			}
			locals[i][s.Name] = s
			if s.Global {
				if prev, dup := globals[s.Name]; dup {
					return nil, fmt.Errorf("link: symbol %q defined in both %s and %s",
						s.Name, objs[prev.obj].Name, o.Name)
				}
				globals[s.Name] = symLoc{obj: i, sym: s}
			}
		}
	}

	// value computes the link-time value of a symbol for its section.
	value := func(owner int, s ovm.Symbol, addend int32) int32 {
		switch s.Section {
		case ovm.SecText:
			return textBase[owner] + int32(s.Value) + addend
		case ovm.SecData:
			return int32(opts.DataBase+dataOff[owner]+s.Value) + addend
		default: // bss
			return int32(opts.DataBase+dataLen+bssOff[owner]+s.Value) + addend
		}
	}

	resolve := func(obj int, r ovm.Reloc) (int32, ovm.Section, error) {
		if s, ok := locals[obj][r.Symbol]; ok {
			return value(obj, s, r.Addend), s.Section, nil
		}
		if loc, ok := globals[r.Symbol]; ok {
			return value(loc.obj, loc.sym, r.Addend), loc.sym.Section, nil
		}
		return 0, ovm.SecUndef, fmt.Errorf("link: %s: undefined symbol %q", objs[obj].Name, r.Symbol)
	}

	// Apply text relocations.
	for i, o := range objs {
		for _, r := range o.TextRel {
			if r.Offset >= uint32(len(o.Text)) {
				return nil, fmt.Errorf("link: %s: relocation offset %d out of range", o.Name, r.Offset)
			}
			v, sec, err := resolve(i, r)
			if err != nil {
				return nil, err
			}
			idx := textBase[i] + int32(r.Offset)
			in := &text[idx]
			if r.Field == ovm.FieldImm2 {
				if sec != ovm.SecText {
					return nil, fmt.Errorf("link: %s: branch to non-text symbol %q", o.Name, r.Symbol)
				}
				in.Imm2 = v
			} else {
				in.Imm = v
			}
		}
		// Local intra-object branch targets were emitted as relocations
		// too, so nothing else to adjust — but raw numeric targets
		// (assembler input with explicit indices) are object-relative and
		// must be rebased.
		for idx := textBase[i]; idx < textBase[i]+int32(len(o.Text)); idx++ {
			in := &text[idx]
			switch in.Op.Format() {
			case ovm.FmtBrRR, ovm.FmtBrRI, ovm.FmtJmp, ovm.FmtJal:
				if !wasRelocated(o, uint32(idx-textBase[i])) {
					in.Imm2 += textBase[i]
				}
			}
		}
	}

	// Apply data relocations, recording words that hold code indices.
	var codePtrs []uint32
	for i, o := range objs {
		for _, r := range o.DataRel {
			if r.Offset+4 > uint32(len(o.Data)) {
				return nil, fmt.Errorf("link: %s: data relocation at %d out of range", o.Name, r.Offset)
			}
			v, sec, err := resolve(i, r)
			if err != nil {
				return nil, err
			}
			off := dataOff[i] + r.Offset
			data[off] = byte(v)
			data[off+1] = byte(v >> 8)
			data[off+2] = byte(v >> 16)
			data[off+3] = byte(v >> 24)
			if sec == ovm.SecText {
				codePtrs = append(codePtrs, off)
			}
		}
	}

	// Entry point.
	entryName := opts.Entry
	var entry int32 = -1
	candidates := []string{entryName, "_start", "main"}
	if entryName == "" {
		candidates = candidates[1:]
	}
	for _, name := range candidates {
		if name == "" {
			continue
		}
		if loc, ok := globals[name]; ok && loc.sym.Section == ovm.SecText {
			entry = textBase[loc.obj] + int32(loc.sym.Value)
			break
		}
		if entryName != "" && name == entryName {
			return nil, fmt.Errorf("link: entry symbol %q not defined", entryName)
		}
	}
	if entry < 0 {
		return nil, fmt.Errorf("link: no entry point (_start or main)")
	}

	// Export every symbol, rebased. Globals keep their names; locals
	// whose names collide with an already-exported symbol are suffixed
	// with their object index (native back ends resolve per-file-unique
	// labels; anything else is best-effort debug info).
	var syms []ovm.Symbol
	exported := map[string]bool{}
	rebase := func(owner int, sym ovm.Symbol) ovm.Symbol {
		s := ovm.Symbol{Name: sym.Name, Section: sym.Section, Global: sym.Global}
		switch sym.Section {
		case ovm.SecText:
			s.Value = uint32(textBase[owner]) + sym.Value
		case ovm.SecData:
			s.Value = opts.DataBase + dataOff[owner] + sym.Value
		case ovm.SecBSS:
			s.Value = opts.DataBase + dataLen + bssOff[owner] + sym.Value
			s.Section = ovm.SecData // address space position, not image offset
		}
		return s
	}
	for name, loc := range globals {
		syms = append(syms, rebase(loc.obj, loc.sym))
		exported[name] = true
	}
	for i, o := range objs {
		for _, sym := range o.Symbols {
			if sym.Global {
				continue
			}
			s := rebase(i, sym)
			if exported[s.Name] {
				s.Name = fmt.Sprintf("%s@%d", s.Name, i)
			}
			exported[s.Name] = true
			syms = append(syms, s)
		}
	}

	m := &ovm.Module{
		Text:     text,
		Data:     data,
		BSSSize:  (bssSize + 7) &^ 7,
		Entry:    entry,
		DataBase: opts.DataBase,
		Symbols:  syms,
		CodePtrs: codePtrs,
	}
	// Validate control-flow targets now so the loader can trust them.
	for i, in := range m.Text {
		switch in.Op.Format() {
		case ovm.FmtBrRR, ovm.FmtBrRI, ovm.FmtJmp, ovm.FmtJal:
			if in.Imm2 < 0 || in.Imm2 >= int32(len(m.Text)) {
				return nil, fmt.Errorf("link: instruction %d: control target %d out of range", i, in.Imm2)
			}
		}
	}
	return m, nil
}

// wasRelocated reports whether the instruction at object-relative index
// off had an Imm2 relocation (and therefore already holds a final code
// index).
func wasRelocated(o *ovm.Object, off uint32) bool {
	for _, r := range o.TextRel {
		if r.Offset == off && r.Field == ovm.FieldImm2 {
			return true
		}
	}
	return false
}
