package link

import (
	"encoding/binary"
	"strings"
	"testing"

	"omniware/internal/asm"
	"omniware/internal/ovm"
)

func obj(t *testing.T, name, src string) *ovm.Object {
	t.Helper()
	o, err := asm.Assemble(name, src)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestLinkTwoObjects(t *testing.T) {
	a := obj(t, "a.s", `
.text
.globl main
main:
	call helper
	lda r5, shared
	ldw r2, shared(r0)
	halt
`)
	b := obj(t, "b.s", `
.text
.globl helper
helper:
	ldi r1, 5
	ret
.data
.globl shared
shared:
	.word 77
`)
	m, err := Link([]*ovm.Object{a, b}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Entry != 0 {
		t.Errorf("entry %d", m.Entry)
	}
	// call helper resolves to b's text base (4 instructions in a).
	if m.Text[0].Op != ovm.JAL || m.Text[0].Imm2 != 4 {
		t.Errorf("call: %+v", m.Text[0])
	}
	// shared is in b's data at offset 0 of the combined image.
	sym, ok := ovm.Lookup(m.Symbols, "shared")
	if !ok {
		t.Fatal("shared missing")
	}
	if sym.Value < m.DataBase {
		t.Errorf("shared at %#x below base %#x", sym.Value, m.DataBase)
	}
	if m.Text[1].Imm != int32(sym.Value) || m.Text[2].Imm != int32(sym.Value) {
		t.Errorf("lda/ldw imm %#x/%#x want %#x", m.Text[1].Imm, m.Text[2].Imm, sym.Value)
	}
	off := sym.Value - m.DataBase
	if binary.LittleEndian.Uint32(m.Data[off:]) != 77 {
		t.Errorf("shared value: % x", m.Data[off:off+4])
	}
}

func TestLocalLabelsRebased(t *testing.T) {
	a := obj(t, "a.s", `
.text
.globl main
main:
	jal r15, f
	halt
`)
	b := obj(t, "b.s", `
.text
.globl f
f:
	ldi r1, 0
loop:
	addi r1, r1, 1
	blti r1, 3, loop
	ret
`)
	m, err := Link([]*ovm.Object{a, b}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// b's loop label is at global index 3 (2 from a + 1).
	if m.Text[4].Op != ovm.BLTI || m.Text[4].Imm2 != 3 {
		t.Errorf("rebased branch: %+v", m.Text[4])
	}
}

func TestBSSLayout(t *testing.T) {
	a := obj(t, "a.s", `
.text
.globl main
main:
	lda r1, abuf
	lda r2, bbuf
	halt
.bss
.globl abuf
abuf: .space 16
`)
	b := obj(t, "b.s", `
.bss
.globl bbuf
bbuf: .space 8
`)
	m, err := Link([]*ovm.Object{a, b}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	aa, _ := ovm.Lookup(m.Symbols, "abuf")
	bb, _ := ovm.Lookup(m.Symbols, "bbuf")
	dataEnd := m.DataBase + uint32(len(m.Data))
	if aa.Value != dataEnd {
		t.Errorf("abuf at %#x, want %#x", aa.Value, dataEnd)
	}
	if bb.Value != dataEnd+16 {
		t.Errorf("bbuf at %#x, want %#x", bb.Value, dataEnd+16)
	}
	if m.BSSSize < 24 {
		t.Errorf("bss size %d", m.BSSSize)
	}
}

func TestDataRelocAcrossObjects(t *testing.T) {
	a := obj(t, "a.s", `
.text
.globl main
main:
	halt
.data
.globl ptr
ptr:
	.word target+4
`)
	b := obj(t, "b.s", `
.data
.globl target
target:
	.word 1, 2
`)
	m, err := Link([]*ovm.Object{a, b}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ptr, _ := ovm.Lookup(m.Symbols, "ptr")
	tgt, _ := ovm.Lookup(m.Symbols, "target")
	got := binary.LittleEndian.Uint32(m.Data[ptr.Value-m.DataBase:])
	if got != tgt.Value+4 {
		t.Errorf("ptr holds %#x, want %#x", got, tgt.Value+4)
	}
}

func TestFunctionPointerReloc(t *testing.T) {
	a := obj(t, "a.s", `
.text
.globl main
main:
	halt
.globl f
f:
	ret
.data
fp:
	.word f
`)
	m, err := Link([]*ovm.Object{a}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Function pointers hold instruction indices.
	if got := binary.LittleEndian.Uint32(m.Data[:4]); got != 1 {
		t.Errorf("fp holds %d, want 1", got)
	}
}

func TestErrors(t *testing.T) {
	undef := obj(t, "u.s", ".text\n.globl main\nmain:\n\tcall missing\n\thalt\n")
	if _, err := Link([]*ovm.Object{undef}, Options{}); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("undefined symbol: %v", err)
	}
	d1 := obj(t, "d1.s", ".text\n.globl f\nf:\n\tret\n")
	d2 := obj(t, "d2.s", ".text\n.globl f\nf:\n\tret\n.globl main\nmain:\n\thalt\n")
	if _, err := Link([]*ovm.Object{d1, d2}, Options{}); err == nil || !strings.Contains(err.Error(), "defined in both") {
		t.Errorf("duplicate global: %v", err)
	}
	noMain := obj(t, "n.s", ".text\nf:\n\tret\n")
	if _, err := Link([]*ovm.Object{noMain}, Options{}); err == nil {
		t.Error("missing entry accepted")
	}
	if _, err := Link(nil, Options{}); err == nil {
		t.Error("empty link accepted")
	}
	branchData := obj(t, "bd.s", ".text\n.globl main\nmain:\n\tjmp x\n.data\nx: .word 0\n")
	if _, err := Link([]*ovm.Object{branchData}, Options{}); err == nil {
		t.Error("branch to data accepted")
	}
	if _, err := Link([]*ovm.Object{obj(t, "m.s", ".text\n.globl main\nmain:\n\thalt\n")}, Options{DataBase: 0x1001}); err == nil {
		t.Error("unaligned data base accepted")
	}
}

func TestEntrySelection(t *testing.T) {
	src := `
.text
.globl main
main:
	halt
.globl _start
_start:
	call main
	halt
`
	m, err := Link([]*ovm.Object{obj(t, "e.s", src)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Entry != 1 {
		t.Errorf("entry %d, want _start at 1", m.Entry)
	}
	m2, err := Link([]*ovm.Object{obj(t, "e.s", src)}, Options{Entry: "main"})
	if err != nil {
		t.Fatal(err)
	}
	if m2.Entry != 0 {
		t.Errorf("explicit entry %d", m2.Entry)
	}
	if _, err := Link([]*ovm.Object{obj(t, "e.s", src)}, Options{Entry: "nothere"}); err == nil {
		t.Error("bad explicit entry accepted")
	}
}
