// Peer-fill support: the cluster layer plugs in as a PeerSource, and
// the cache treats whatever it returns exactly like the disk tier —
// candidate bytes that must pass the SFI admission gate before they
// become visible. The cache never trusts a peer: a candidate that the
// verifier refuses is counted, reported back for per-peer attribution,
// and the lookup falls through to the next candidate (or to local
// translation). The functions in this file are also what a node uses
// to *serve* its peers (Peek) and to accept replication pushes
// (AdmitKeyed) — both keyed by the same explicit, versioned cache key
// the persistent tier uses, so one translation has one name across
// memory, disk, and the wire.

package mcache

import (
	"fmt"
	"reflect"
	"sort"
	"strings"

	"omniware/internal/target"
	"omniware/internal/trace"
	"omniware/internal/translate"
)

// PeerCandidate is one translation offered by a peer: structurally
// decoded (the wire layer accepted its framing) but UNVERIFIED — the
// cache runs the SFI admission gate on it before anything else.
type PeerCandidate struct {
	Prog *target.Program
	Peer string // peer identity, for attribution
	// Remote, when the peer returned one, is the serving node's own
	// span subtree for this probe (what the remote did: cache tier hit,
	// on-demand translation, verification). The cache grafts it under
	// the local peer_fetch span so the origin's trace is the stitched
	// cross-node tree.
	Remote *trace.Span
}

// PeerOrigin is the originating request context a peer probe carries
// across the node boundary: the trace (job) ID the probe works for and
// the origin's HTTP request ID. The remote side records its own span
// tree under the trace parent and echoes the request ID, so a remote
// failure names a request that actually exists — on the origin.
type PeerOrigin struct {
	TraceID   string
	RequestID string
}

// Quarantine reasons: the closed label set for per-reason quarantine
// attribution, shared by the cache's admission verdicts, the cluster
// engine's transport-level verdicts, and the metrics exposition (which
// pre-registers every reason so a zero series is visible, not absent).
const (
	QuarantineFrame          = "frame"            // peer frame failed to decode
	QuarantineKeyMismatch    = "key-mismatch"     // frame bound to a different cache key
	QuarantineHash           = "hash"             // module bytes hash to a different content address
	QuarantineVerifier       = "verifier-refusal" // SFI admission gate refused the program
	QuarantineCorrespondence = "correspondence"   // retranslation equality (spot check or push) failed
)

// QuarantineReasons lists every reason above, in exposition order.
var QuarantineReasons = []string{
	QuarantineFrame, QuarantineKeyMismatch, QuarantineHash,
	QuarantineVerifier, QuarantineCorrespondence,
}

// PeerSource is the cluster hook: on a memory+disk miss the cache asks
// it for candidates, verifies them here, and reports each verdict back
// so the source can keep per-peer counters. Implementations must be
// safe for concurrent use. Fetch returning no candidates is a normal
// miss; transport errors are the source's business (they look like a
// miss here).
type PeerSource interface {
	Fetch(key string, org PeerOrigin) []PeerCandidate
	// Admitted reports that peer's candidate for key passed
	// verification and was installed.
	Admitted(key, peer string)
	// Quarantined reports that peer's candidate for key was refused by
	// the admission gate (or the integrity spot check); reason is one
	// of the Quarantine* constants.
	Quarantined(key, peer, reason string, err error)
}

// loadFromPeer probes the peer source after a memory and disk miss.
// Candidates are tried in order; the first to pass the admission gate
// (and, if due, the integrity spot check) wins. Every refused
// candidate is quarantined and counted — the lookup degrades to a
// translation, never to serving unverified code.
func (c *Cache) loadFromPeer(sp *trace.Span, k string, retranslate retranslateFn, mach *target.Machine, si translate.SegInfo) (*target.Program, bool) {
	psp := sp.Child("peer_fetch")
	defer psp.End()
	org := PeerOrigin{TraceID: psp.TraceID(), RequestID: psp.RequestID()}
	cands := c.peer.Fetch(k, org)
	psp.Set("candidates", len(cands))
	for _, cand := range cands {
		if cand.Prog == nil {
			continue
		}
		err := c.admit(psp, cand.Prog, mach, si)
		reason := QuarantineVerifier
		if err == nil {
			reason = QuarantineCorrespondence
			err = c.spotCheck(psp, cand.Prog, retranslate)
		}
		if err != nil {
			c.ctr.peerQuarantines.Add(1)
			c.peer.Quarantined(k, cand.Peer, reason, err)
			c.logf("mcache: peer %s candidate for %q quarantined (%s): %v", cand.Peer, k, reason, err)
			continue
		}
		c.ctr.peerHits.Add(1)
		c.peer.Admitted(k, cand.Peer)
		psp.Set("peer", cand.Peer)
		psp.AttachRemote(cand.Remote, cand.Peer)
		return cand.Prog, true
	}
	return nil, false
}

// retranslateFn re-derives the translation locally for the integrity
// spot check; nil disables the check for that lookup.
type retranslateFn = func() (*target.Program, error)

// spotCheck re-derives the translation locally every Nth peer
// admission and demands instruction-for-instruction equality. The SFI
// gate proves *containment* (the program cannot escape its sandbox);
// the spot check samples *correspondence* (the program is the
// translation of the module it claims to be) — cheap insurance the
// deterministic translator makes possible. Disabled when
// PeerSpotCheckEvery is 0.
func (c *Cache) spotCheck(sp *trace.Span, got *target.Program, retranslate retranslateFn) error {
	if c.spotEvery <= 0 || retranslate == nil {
		return nil
	}
	if c.spotClock.Add(1)%uint64(c.spotEvery) != 0 {
		return nil
	}
	ssp := sp.Child("spot_check")
	defer ssp.End()
	return c.correspond(ssp, got, retranslate)
}

// correspond is the correspondence check itself: retranslate locally
// and demand instruction-for-instruction equality. Run on every
// replication push (AdmitKeyed) and on sampled peer fills (spotCheck).
func (c *Cache) correspond(sp *trace.Span, got *target.Program, retranslate retranslateFn) error {
	c.ctr.peerSpotChecks.Add(1)
	local, err := retranslate()
	if err != nil {
		// The local translator refusing the module while a peer serves
		// a "translation" of it is itself a red flag.
		c.ctr.peerSpotCheckFails.Add(1)
		return fmt.Errorf("mcache: spot check: local translation failed: %w", err)
	}
	if !reflect.DeepEqual(local.Code, got.Code) {
		c.ctr.peerSpotCheckFails.Add(1)
		sp.Set("mismatch", true)
		return fmt.Errorf("mcache: spot check: peer translation differs from local retranslation (%d vs %d insts)",
			len(got.Code), len(local.Code))
	}
	return nil
}

// Peek returns the verified program stored under key, if any, checking
// the memory tier and then the persistent tier. It is the peer-serving
// read: no translation, no verification (the *receiving* node verifies
// on arrival — these bytes are never executed here), no miss
// accounting, and no recency touch, so a scan by peers cannot distort
// the local LRU.
func (c *Cache) Peek(key string) (*target.Program, bool) {
	prog, _, ok := c.PeekTier(key)
	return prog, ok
}

// PeekTier is Peek plus the tier that satisfied it ("memory" or
// "disk") — peer-serving handlers annotate their remote span with it so
// the origin's stitched trace shows where the bytes actually lived.
func (c *Cache) PeekTier(key string) (*target.Program, string, bool) {
	sh := c.shardFor(key)
	sh.mu.Lock()
	if el, ok := sh.byKey[key]; ok {
		prog := el.Value.(*entry).prog
		sh.mu.Unlock()
		return prog, "memory", true
	}
	sh.mu.Unlock()
	if c.disk == nil {
		return nil, "", false
	}
	prog, err := c.disk.Get(key)
	if err != nil {
		return nil, "", false
	}
	return prog, "disk", true
}

// AdmitKeyed verifies and installs a translation under an explicit
// cache key — the replication-push receive path. The key is parsed
// back into the machine and segment shape the program claims to target
// so the admission gate checks it against the right policy; a key that
// does not parse, names an unknown machine, or carries a program the
// verifier refuses is rejected outright.
//
// Pushes are unsolicited, so containment alone is not enough: when
// retranslate is non-nil the correspondence check runs on EVERY push
// (not sampled like the fetch path) — a sandboxed-but-semantically-
// wrong program is refused, counted, and never installed. Callers that
// cannot produce a retranslate function (no module at hand) should
// refuse the push instead of passing nil.
//
// The disk tier is written only when it has no entry for the key yet:
// a push must never replace a translation this node already verified
// and persisted.
func (c *Cache) AdmitKeyed(k string, prog *target.Program, retranslate func() (*target.Program, error)) error {
	mach, si, opt, err := ParseKey(k)
	if err != nil {
		return err
	}
	if !opt.SFI {
		return ErrUnsandboxed
	}
	if err := c.admit(nil, prog, mach, si); err != nil {
		return err
	}
	if retranslate != nil {
		if err := c.correspond(nil, prog, retranslate); err != nil {
			c.ctr.peerQuarantines.Add(1)
			return err
		}
	}
	sh := c.shardFor(k)
	sh.mu.Lock()
	keep := c.insertLocked(sh, k, prog)
	sh.mu.Unlock()
	c.evict(keep)
	if c.disk == nil || !c.disk.Has(k) {
		c.writeThrough(nil, k, prog)
	}
	return nil
}

// ParseKey inverts the cache key format: it recovers the target
// machine, segment shape, and translator options a key was minted
// under. The module hash is returned via KeyModuleHash; admission only
// needs the policy fields. Keys are versioned (the "k1|" prefix), so a
// future format change is an explicit error here, not a misparse.
func ParseKey(k string) (*target.Machine, translate.SegInfo, translate.Options, error) {
	var si translate.SegInfo
	var opt translate.Options
	parts := strings.Split(k, "|")
	if len(parts) != 5 || parts[0] != "k1" {
		return nil, si, opt, fmt.Errorf("mcache: unparseable cache key %q", k)
	}
	mach := target.ByName(parts[2])
	if mach == nil {
		return nil, si, opt, fmt.Errorf("mcache: cache key names unknown machine %q", parts[2])
	}
	if _, err := fmt.Sscanf(parts[3], "%08x.%08x.%08x.%08x", &si.DataBase, &si.DataMask, &si.GPValue, &si.RegSave); err != nil {
		return nil, si, opt, fmt.Errorf("mcache: cache key segment fields %q: %v", parts[3], err)
	}
	if _, err := fmt.Sscanf(parts[4], "sfi=%t,sched=%t,gp=%t,peep=%t,hoist=%t,rsfi=%t",
		&opt.SFI, &opt.Schedule, &opt.GlobalPointer, &opt.Peephole, &opt.SFIHoist, &opt.ReadSFI); err != nil {
		return nil, si, opt, fmt.Errorf("mcache: cache key option fields %q: %v", parts[4], err)
	}
	return mach, si, opt, nil
}

// KeyModuleHash extracts the module content address from a cache key.
func KeyModuleHash(k string) (string, error) {
	parts := strings.Split(k, "|")
	if len(parts) != 5 || parts[0] != "k1" {
		return "", fmt.Errorf("mcache: unparseable cache key %q", k)
	}
	return parts[1], nil
}

// KeyFor builds the cache key for a module hash without needing the
// module itself — the cluster client's routing and probe path.
func KeyFor(modHash string, mach *target.Machine, si translate.SegInfo, opt translate.Options) string {
	return key(modHash, mach, si, opt)
}

// HotEntry is one memory-tier entry with its shard-local hit count —
// the replication layer's raw material.
type HotEntry struct {
	Key  string
	Hits uint64
}

// Hot returns up to k entries ordered by descending hit count,
// counting only entries that have actually been hit (an entry nobody
// asked for twice is not worth replicating). k <= 0 returns all hit
// entries.
func (c *Cache) Hot(k int) []HotEntry {
	var out []HotEntry
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for el := sh.lru.Front(); el != nil; el = el.Next() {
			e := el.Value.(*entry)
			if e.hits > 0 {
				out = append(out, HotEntry{Key: e.key, Hits: e.hits})
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Hits != out[j].Hits {
			return out[i].Hits > out[j].Hits
		}
		return out[i].Key < out[j].Key
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}
