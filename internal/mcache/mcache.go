// Package mcache is the verified translation cache behind the serving
// layer: load-time translation is paid once per (module, machine,
// options, segment shape) and the resulting native program is shared by
// every subsequent sandboxed instance. Admission is gated on the SFI
// verifier — every entry is re-checked against the policy it will run
// under before it becomes visible, so the cache can never serve
// unsandboxed code even if the translator (or whoever handed us a
// pre-translated program) is buggy or malicious. This mirrors the
// translator/verifier split of the SFI literature: the translator stays
// outside the trusted computing base, and the cache is the choke point
// where the proof is checked.
//
// Concurrent requests for the same key are deduplicated: one caller
// translates while the rest wait for its result, so a burst of jobs for
// a new module costs one translation, not one per job.
//
// An optional persistent tier (internal/mcache/diskstore) lets warm
// capacity survive restarts: admitted translations are written through
// to disk, and on a memory miss the disk copy is re-admitted — but
// only after re-running the SFI verifier on it. A disk entry that
// fails integrity checks or the verifier is quarantined, never served:
// restart durability never weakens the verified-on-admission contract.
package mcache

import (
	"container/list"
	"errors"
	"fmt"
	"log"
	"sync"
	"sync/atomic"

	"omniware/internal/audit"
	"omniware/internal/mcache/diskstore"
	"omniware/internal/ovm"
	"omniware/internal/sfi"
	"omniware/internal/sfi/absint"
	"omniware/internal/target"
	"omniware/internal/trace"
	"omniware/internal/translate"
	"omniware/internal/wire"
)

// ErrUnsandboxed is returned for requests without SFI enabled: the
// cache only holds programs whose containment the verifier has proved,
// and a translation without sandboxing checks can never pass admission.
// Callers that really want an unsandboxed run translate directly.
var ErrUnsandboxed = errors.New("mcache: refusing to cache a translation without SFI")

// DefaultLimit is the default code-size budget (bytes of cached native
// code, estimated) when New is given a non-positive limit.
const DefaultLimit = 64 << 20

// VerifyMode selects which SFI verifier(s) gate admission. The two
// implementations share nothing but the instruction decoder —
// sfi.Check is a linear scan with a fold-state machine, absint.Check
// an abstract interpreter over the CFG — so running both and
// demanding agreement means a single-verifier soundness bug cannot
// admit an uncontained program on its own.
type VerifyMode int

const (
	// VerifyCheck gates admission on sfi.Check alone — the production
	// default: one linear pass, no CFG construction.
	VerifyCheck VerifyMode = iota
	// VerifyAbsint gates admission on the abstract interpreter alone.
	VerifyAbsint
	// VerifyBoth runs both verifiers and admits only when both accept.
	// A disagreement (either direction) rejects the program and is
	// counted in Stats.Disagreements — it means one of the verifiers
	// has a bug, and the cache refuses to guess which.
	VerifyBoth
)

func (v VerifyMode) String() string {
	switch v {
	case VerifyAbsint:
		return "absint"
	case VerifyBoth:
		return "both"
	default:
		return "check"
	}
}

// instCost estimates the in-memory size of one target.Inst for the
// eviction budget. Exactness doesn't matter; monotonicity in code
// length does.
const instCost = 40

// Stats is a snapshot of the cache counters. Misses equals the number
// of translations the cache performed; Hits counts entries served from
// memory ready-made; DiskHits counts entries re-admitted from the
// persistent tier (verified again, but not retranslated); Coalesced
// counts callers that piggybacked on a lookup already in flight (also
// served without translating).
type Stats struct {
	Lookups   uint64
	Hits      uint64
	Coalesced uint64
	Misses    uint64
	Inserts   uint64
	Evictions uint64
	Rejected  uint64 // admission failures: verifier refused the program
	// Disagreements counts VerifyBoth admissions where the two
	// verifiers returned different verdicts. Every disagreement is
	// also a rejection; a nonzero value means a verifier bug.
	Disagreements uint64
	Entries       int
	CodeBytes     int64

	DiskHits        uint64 // programs served from disk after re-verification
	DiskWrites      uint64 // programs written through to the persistent tier
	DiskQuarantines uint64 // disk entries refused (corrupt or unverifiable) and set aside

	PeerHits        uint64 // programs admitted from a cluster peer (verified again, not retranslated)
	PeerQuarantines uint64 // peer candidates refused by the admission gate or spot check
	SpotChecks      uint64 // peer admissions sampled for retranslation equality
	SpotCheckFails  uint64 // spot checks where the peer's program was not the local translation

	Audits           uint64 // audit pipeline runs (memoization misses)
	AuditHits        uint64 // audit reports served memoized
	AuditDiskWrites  uint64 // audit reports written through to the persistent tier
	AuditQuarantines uint64 // stored audits that disagreed with re-derivation and were set aside
}

// ModuleHash returns the content address of a module: the hex SHA-256
// of its canonical wire (OMW) encoding — the same bytes that travel
// over the network and sit on disk, so a module has one identity
// everywhere. Two modules with the same hash are the same mobile
// program, wherever they came from.
func ModuleHash(mod *ovm.Module) string {
	return wire.HashModule(mod)
}

// key identifies one translation: same module content, same target
// machine, same translator options, same segment shape. Any difference
// in these changes the emitted code (or the SFI masks baked into it),
// so they are all part of the identity. The format is explicit —
// field by field, versioned — because keys outlive the process: the
// persistent tier files entries under them, and a silent key change
// would detach every stored translation.
func key(modHash string, mach *target.Machine, si translate.SegInfo, opt translate.Options) string {
	return fmt.Sprintf("k1|%s|%s|%08x.%08x.%08x.%08x|sfi=%t,sched=%t,gp=%t,peep=%t,hoist=%t,rsfi=%t",
		modHash, mach.Name,
		si.DataBase, si.DataMask, si.GPValue, si.RegSave,
		opt.SFI, opt.Schedule, opt.GlobalPointer, opt.Peephole, opt.SFIHoist, opt.ReadSFI)
}

// Key returns the full cache key for one translation identity — the
// name entries are filed under in memory and in the persistent tier.
// Exported so tests and operator tooling can address stored entries.
func Key(mod *ovm.Module, mach *target.Machine, si translate.SegInfo, opt translate.Options) string {
	return key(ModuleHash(mod), mach, si, opt)
}

type entry struct {
	key  string
	prog *target.Program
	size int64
	// hits counts memory-tier hits on this entry (under the shard
	// lock); the replication layer reads it through Hot to decide what
	// is worth pushing to successor peers.
	hits uint64
	// stamp is the value of the cache's global use clock at this
	// entry's last touch. Per-shard lists keep exact recency order
	// within a shard; stamps order entries across shards so eviction
	// can find the globally least-recently-used candidate.
	stamp uint64
}

type flight struct {
	done chan struct{}
	prog *target.Program
	err  error
}

// numShards splits the index so concurrent lookups for different keys
// do not serialize on one mutex. A power of two; the shard is chosen
// by key hash.
const numShards = 16

// shard is one slice of the index: its own lock, recency list, key
// map, and in-flight table. Everything a warm hit touches lives in
// exactly one shard.
type shard struct {
	mu       sync.Mutex
	lru      list.List // of *entry; front = most recently used in this shard
	byKey    map[string]*list.Element
	inflight map[string]*flight
}

// counters are the monotonic statistics, kept atomic so the sharded
// paths never contend on a stats lock.
type counters struct {
	lookups, hits, coalesced, misses      atomic.Uint64
	inserts, evictions                    atomic.Uint64
	rejected, disagreements               atomic.Uint64
	diskHits, diskWrites, diskQuarantines atomic.Uint64
	peerHits, peerQuarantines             atomic.Uint64
	peerSpotChecks, peerSpotCheckFails    atomic.Uint64
	audits, auditHits                     atomic.Uint64
	auditDiskWrites, auditQuarantines     atomic.Uint64
}

// Cache is a content-addressed translation cache with LRU eviction by
// estimated code size and an optional persistent tier. The zero value
// is not usable; call New or NewWith. All methods are safe for
// concurrent use; the index is sharded by key hash so a worker-pool's
// warm hits on distinct modules proceed in parallel. The code-size
// budget stays global (not per shard): eviction picks the shard whose
// oldest entry has the smallest use stamp, which preserves the
// single-LRU behavior up to races between concurrent touches.
type Cache struct {
	limit     int64
	bytes     atomic.Int64
	clock     atomic.Uint64
	shards    [numShards]shard
	ctr       counters
	disk      *diskstore.Store
	verify    VerifyMode
	peer      PeerSource
	spotEvery int
	spotClock atomic.Uint64
	logf      func(format string, args ...any)

	auditMu sync.Mutex
	audits  map[string]*audit.Report // module hash -> memoized report
}

// shardFor hashes k (FNV-1a, inlined to stay allocation-free) to its
// home shard.
func (c *Cache) shardFor(k string) *shard {
	h := uint64(14695981039346656037)
	for i := 0; i < len(k); i++ {
		h ^= uint64(k[i])
		h *= 1099511628211
	}
	return &c.shards[h%numShards]
}

// Config sizes a cache. The zero value selects an in-memory cache of
// DefaultLimit bytes with no persistent tier.
type Config struct {
	// Limit is the in-memory code-size budget (non-positive =
	// DefaultLimit). The persistent tier is not budgeted here.
	Limit int64
	// Disk, when non-nil, is the persistent tier: admissions write
	// through to it, and memory misses probe it before translating.
	// Disk entries are re-verified on every read; failures are
	// quarantined and logged.
	Disk *diskstore.Store
	// Verify selects the admission gate: sfi.Check alone (the zero
	// value), the abstract interpreter alone, or both-must-agree.
	Verify VerifyMode
	// Peer, when non-nil, is probed on a memory+disk miss for an
	// existing translation before retranslating. Peer candidates pass
	// the same admission gate as disk entries; refusals are counted
	// and reported back per peer.
	Peer PeerSource
	// PeerSpotCheckEvery samples every Nth peer admission for an
	// integrity spot check: the module is retranslated locally and the
	// two programs must match instruction for instruction. 0 disables.
	PeerSpotCheckEvery int
	// Logf receives quarantine and disk-failure reports (default
	// log.Printf). Disk problems never fail a lookup — the cache falls
	// back to translating — so the log is their only trace.
	Logf func(format string, args ...any)
}

// New creates a memory-only cache holding at most limit estimated
// bytes of translated code (non-positive = DefaultLimit).
func New(limit int64) *Cache {
	return NewWith(Config{Limit: limit})
}

// NewWith creates a cache from cfg.
func NewWith(cfg Config) *Cache {
	if cfg.Limit <= 0 {
		cfg.Limit = DefaultLimit
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	c := &Cache{
		limit:     cfg.Limit,
		disk:      cfg.Disk,
		verify:    cfg.Verify,
		peer:      cfg.Peer,
		spotEvery: cfg.PeerSpotCheckEvery,
		logf:      cfg.Logf,
		audits:    map[string]*audit.Report{},
	}
	for i := range c.shards {
		c.shards[i].byKey = map[string]*list.Element{}
		c.shards[i].inflight = map[string]*flight{}
	}
	return c
}

func progSize(p *target.Program) int64 {
	return int64(len(p.Code))*instCost + int64(len(p.OmniToNative))*4
}

// Translate returns the native program for (mod, mach, si, opt),
// translating and admitting it on a miss. The boolean reports whether
// the program was served without a translation in this call (a cache
// hit or a coalesced wait on another caller's translation). Admission
// is mandatory: a program that fails the SFI verifier is never cached
// and the error is returned to every waiting caller.
func (c *Cache) Translate(mod *ovm.Module, mach *target.Machine, si translate.SegInfo, opt translate.Options) (*target.Program, bool, error) {
	return c.TranslateTraced(nil, mod, mach, si, opt)
}

// TranslateTraced is Translate with an omnitrace span: the lookup
// outcome and the timed sub-stages (disk probe, translation with its
// phase split, SFI verification, write-through) are recorded as
// children of sp. A nil sp records nothing and costs nothing.
func (c *Cache) TranslateTraced(sp *trace.Span, mod *ovm.Module, mach *target.Machine, si translate.SegInfo, opt translate.Options) (*target.Program, bool, error) {
	return c.translateTraced(sp, mod, mach, si, opt, true)
}

// TranslateNoPeer is TranslateTraced with the peer tier disabled for
// this lookup: memory, coalescing, disk and local translation only.
// It exists for the peer-serving path — a node filling a probe FROM a
// peer must not probe its own peers in turn (the ring would recurse),
// so the on-demand owner fill translates locally and lets replication
// spread the result.
func (c *Cache) TranslateNoPeer(sp *trace.Span, mod *ovm.Module, mach *target.Machine, si translate.SegInfo, opt translate.Options) (*target.Program, bool, error) {
	return c.translateTraced(sp, mod, mach, si, opt, false)
}

func (c *Cache) translateTraced(sp *trace.Span, mod *ovm.Module, mach *target.Machine, si translate.SegInfo, opt translate.Options, usePeer bool) (*target.Program, bool, error) {
	if !opt.SFI {
		return nil, false, ErrUnsandboxed
	}
	k := key(ModuleHash(mod), mach, si, opt)
	sh := c.shardFor(k)

	c.ctr.lookups.Add(1)
	sh.mu.Lock()
	if el, ok := sh.byKey[k]; ok {
		c.ctr.hits.Add(1)
		sh.lru.MoveToFront(el)
		e := el.Value.(*entry)
		e.stamp = c.clock.Add(1)
		e.hits++
		prog := e.prog
		sh.mu.Unlock()
		sp.Set("result", "hit")
		return prog, true, nil
	}
	if f, ok := sh.inflight[k]; ok {
		c.ctr.coalesced.Add(1)
		sh.mu.Unlock()
		wsp := sp.Child("coalesce_wait")
		<-f.done
		wsp.End()
		sp.Set("result", "coalesced")
		return f.prog, true, f.err
	}
	f := &flight{done: make(chan struct{})}
	sh.inflight[k] = f
	sh.mu.Unlock()

	// Warm tiers first: a verified disk entry — or a peer's verified-
	// on-arrival translation — saves the translation entirely. warm
	// distinguishes "served without translating here" for the caller's
	// accounting; fromDisk additionally skips the redundant
	// write-through (a peer fill does want one).
	prog, fromDisk := c.loadFromDisk(sp, k, mach, si)
	warm := fromDisk
	if fromDisk {
		sp.Set("result", "disk")
	} else if usePeer && c.peer != nil {
		retranslate := func() (*target.Program, error) {
			return translate.Translate(mod, mach, si, opt)
		}
		if p, ok := c.loadFromPeer(sp, k, retranslate, mach, si); ok {
			prog, warm = p, true
			sp.Set("result", "peer")
		}
	}
	var err error
	if !warm {
		c.ctr.misses.Add(1)
		tsp := sp.Child("translate")
		var tim translate.Timings
		prog, tim, err = translate.TranslateTimed(mod, mach, si, opt)
		if err == nil {
			tsp.Set("expand", tim.Expand).Set("sched", tim.Schedule).Set("finish", tim.Finish)
			tsp.Set("insts", len(prog.Code))
		}
		tsp.End()
		if err == nil {
			err = c.admit(sp, prog, mach, si)
		}
		sp.Set("result", "miss")
	}
	f.prog, f.err = prog, err
	if err != nil {
		f.prog = nil
	}

	sh.mu.Lock()
	delete(sh.inflight, k)
	var keep *entry
	if err == nil {
		keep = c.insertLocked(sh, k, prog)
	}
	sh.mu.Unlock()
	if keep != nil {
		c.evict(keep)
	}
	close(f.done)
	if err != nil {
		return nil, false, err
	}
	if !fromDisk {
		c.writeThrough(sp, k, prog)
	}
	return prog, warm, nil
}

// loadFromDisk probes the persistent tier for k and re-verifies
// whatever it finds. Only a program that passes sfi.Check again is
// returned; integrity or verification failures quarantine the entry.
// All failures degrade to a plain miss — the disk tier can lose
// entries, but it can never serve a bad one or fail a lookup.
func (c *Cache) loadFromDisk(sp *trace.Span, k string, mach *target.Machine, si translate.SegInfo) (*target.Program, bool) {
	if c.disk == nil {
		return nil, false
	}
	dsp := sp.Child("disk_read")
	prog, err := c.disk.Get(k)
	dsp.End()
	if errors.Is(err, diskstore.ErrNotFound) {
		return nil, false
	}
	if err == nil {
		err = c.admit(sp, prog, mach, si)
	}
	if err != nil {
		if qerr := c.disk.Quarantine(k); qerr != nil {
			c.logf("mcache: quarantining disk entry for %q: %v", k, qerr)
		}
		c.logf("mcache: disk entry for %q quarantined: %v", k, err)
		c.ctr.diskQuarantines.Add(1)
		return nil, false
	}
	c.ctr.diskHits.Add(1)
	return prog, true
}

// writeThrough persists an admitted translation. Failures are logged,
// not returned: the memory tier already holds the verified program, so
// a sick disk only costs future restarts their warm start.
func (c *Cache) writeThrough(sp *trace.Span, k string, prog *target.Program) {
	if c.disk == nil {
		return
	}
	wsp := sp.Child("disk_write")
	defer wsp.End()
	if err := c.disk.Put(k, prog); err != nil {
		c.logf("mcache: writing %q to disk: %v", k, err)
		return
	}
	c.ctr.diskWrites.Add(1)
}

// Insert admits an externally produced translation — the paper's
// mobile-code scenario where the native program arrives with the module
// instead of being produced locally. The program is verified against
// the policy it would execute under; on failure nothing is cached and
// the verifier's report is returned.
func (c *Cache) Insert(mod *ovm.Module, mach *target.Machine, si translate.SegInfo, opt translate.Options, prog *target.Program) error {
	if !opt.SFI {
		return ErrUnsandboxed
	}
	if err := c.admit(nil, prog, mach, si); err != nil {
		return err
	}
	k := key(ModuleHash(mod), mach, si, opt)
	sh := c.shardFor(k)
	sh.mu.Lock()
	keep := c.insertLocked(sh, k, prog)
	sh.mu.Unlock()
	c.evict(keep)
	c.writeThrough(nil, k, prog)
	return nil
}

// admit is the verifier gate every entry passes through. Which
// verifier(s) run is the cache's VerifyMode; under VerifyBoth the two
// must agree, and a split verdict is rejected and counted as a
// disagreement rather than resolved in either verifier's favor.
func (c *Cache) admit(sp *trace.Span, prog *target.Program, mach *target.Machine, si translate.SegInfo) error {
	vsp := sp.Child("verify")
	vsp.Set("mode", c.verify.String())
	var err error
	if c.verify == VerifyCheck || c.verify == VerifyBoth {
		st, cerr := sfi.CheckStats(prog, mach, si)
		vsp.Set("stores", st.Stores).Set("indirects", st.Indirects).Set("sandbox_ops", st.SandboxOps)
		err = cerr
	}
	if c.verify == VerifyAbsint || c.verify == VerifyBoth {
		st, aerr := absint.CheckStats(prog, mach, si)
		vsp.Set("absint_stores", st.Stores).Set("absint_indirects", st.Indirects).Set("absint_blocks", st.Blocks)
		if c.verify == VerifyBoth && (err == nil) != (aerr == nil) {
			c.ctr.disagreements.Add(1)
			vsp.Set("disagreement", true)
			c.logf("mcache: verifier disagreement (sfi.Check: %v; absint: %v)", err, aerr)
			err = fmt.Errorf("verifier disagreement: sfi.Check says %s, absint says %s (check: %v; absint: %v)",
				verdict(err), verdict(aerr), err, aerr)
		} else if aerr != nil {
			err = aerr
		}
	}
	vsp.End()
	if err != nil {
		c.ctr.rejected.Add(1)
		return fmt.Errorf("mcache: admission rejected: %w", err)
	}
	return nil
}

func verdict(err error) string {
	if err == nil {
		return "accept"
	}
	return "reject"
}

// insertLocked adds an entry to sh (whose lock the caller holds) and
// returns it so the caller can run eviction with the fresh entry
// protected. A raced duplicate keeps the incumbent (identical by
// construction) and refreshes its recency.
func (c *Cache) insertLocked(sh *shard, k string, prog *target.Program) *entry {
	if el, ok := sh.byKey[k]; ok {
		sh.lru.MoveToFront(el)
		e := el.Value.(*entry)
		e.stamp = c.clock.Add(1)
		return e
	}
	e := &entry{key: k, prog: prog, size: progSize(prog), stamp: c.clock.Add(1)}
	sh.byKey[k] = sh.lru.PushFront(e)
	c.bytes.Add(e.size)
	c.ctr.inserts.Add(1)
	return e
}

// evict removes least-recently-used entries until the global budget is
// met, never removing keep (the entry the caller just handed out —
// it survives even if it alone exceeds the limit). Each shard's list
// is exactly ordered, so the globally oldest entry is one of the
// shards' back entries; evict scans those stamps holding one shard
// lock at a time and removes the minimum. Concurrent touches can
// reorder between scan and removal, which costs only approximation,
// never a missing or double-counted entry.
func (c *Cache) evict(keep *entry) {
	for c.bytes.Load() > c.limit {
		var victim *shard
		oldest := ^uint64(0)
		for i := range c.shards {
			sh := &c.shards[i]
			sh.mu.Lock()
			if back := sh.lru.Back(); back != nil {
				e := back.Value.(*entry)
				if e != keep && e.stamp <= oldest {
					oldest, victim = e.stamp, sh
				}
			}
			sh.mu.Unlock()
		}
		if victim == nil {
			return
		}
		victim.mu.Lock()
		back := victim.lru.Back()
		if back == nil || back.Value.(*entry) == keep {
			victim.mu.Unlock()
			continue
		}
		ev := back.Value.(*entry)
		victim.lru.Remove(back)
		delete(victim.byKey, ev.key)
		c.bytes.Add(-ev.size)
		c.ctr.evictions.Add(1)
		victim.mu.Unlock()
	}
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	s := Stats{
		Lookups:         c.ctr.lookups.Load(),
		Hits:            c.ctr.hits.Load(),
		Coalesced:       c.ctr.coalesced.Load(),
		Misses:          c.ctr.misses.Load(),
		Inserts:         c.ctr.inserts.Load(),
		Evictions:       c.ctr.evictions.Load(),
		Rejected:        c.ctr.rejected.Load(),
		Disagreements:   c.ctr.disagreements.Load(),
		DiskHits:        c.ctr.diskHits.Load(),
		DiskWrites:      c.ctr.diskWrites.Load(),
		DiskQuarantines: c.ctr.diskQuarantines.Load(),
		PeerHits:        c.ctr.peerHits.Load(),
		PeerQuarantines: c.ctr.peerQuarantines.Load(),
		SpotChecks:      c.ctr.peerSpotChecks.Load(),
		SpotCheckFails:  c.ctr.peerSpotCheckFails.Load(),

		Audits:           c.ctr.audits.Load(),
		AuditHits:        c.ctr.auditHits.Load(),
		AuditDiskWrites:  c.ctr.auditDiskWrites.Load(),
		AuditQuarantines: c.ctr.auditQuarantines.Load(),

		CodeBytes: c.bytes.Load(),
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		s.Entries += sh.lru.Len()
		sh.mu.Unlock()
	}
	return s
}
