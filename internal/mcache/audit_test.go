package mcache_test

import (
	"strings"
	"testing"

	"omniware/internal/mcache"
	"omniware/internal/mcache/diskstore"
)

func openStore(t *testing.T, dir string) *diskstore.Store {
	t.Helper()
	store, err := diskstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return store
}

// Audit memoizes by module hash, writes through to the persistent
// tier, and — the re-audit invariant — never trusts a stored report: a
// tampered blob is quarantined on the next derivation and the fresh
// report wins.
func TestAuditMemoizeAndPersist(t *testing.T) {
	dir := t.TempDir()
	var logged []string
	c := openCache(t, dir, &logged)
	mod := buildMod(t, prog1)
	hash := mcache.ModuleHash(mod)

	r1, err := c.Audit(mod)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Audit(mod)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatalf("second Audit not memoized")
	}
	st := c.Stats()
	if st.Audits != 1 || st.AuditHits != 1 || st.AuditDiskWrites != 1 {
		t.Fatalf("stats = %+v, want 1 audit, 1 hit, 1 disk write", st)
	}
	if got, ok := c.AuditByHash(hash); !ok || got != r1 {
		t.Fatalf("AuditByHash miss for %s", hash)
	}
	if _, ok := c.AuditByHash("nope"); ok {
		t.Fatalf("AuditByHash hit for unknown hash")
	}

	// "Restart": a fresh cache over the same directory re-derives and
	// confirms the stored blob silently.
	var logged2 []string
	c2 := openCache(t, dir, &logged2)
	if _, err := c2.Audit(mod); err != nil {
		t.Fatal(err)
	}
	if st := c2.Stats(); st.AuditQuarantines != 0 || st.AuditDiskWrites != 0 {
		t.Fatalf("clean restart stats = %+v, want no quarantines, no rewrites", st)
	}

	// Tamper with the stored audit (valid envelope, altered report):
	// the next derivation must quarantine it, count it, and rewrite.
	store := openStore(t, dir)
	if err := store.PutAudit(hash, []byte(`{"hash":"forged"}`)); err != nil {
		t.Fatal(err)
	}
	var logged3 []string
	c3 := openCache(t, dir, &logged3)
	r3, err := c3.Audit(mod)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Digest() != r1.Digest() {
		t.Fatalf("derived report changed across processes")
	}
	st3 := c3.Stats()
	if st3.AuditQuarantines != 1 || st3.AuditDiskWrites != 1 {
		t.Fatalf("tamper stats = %+v, want 1 quarantine, 1 rewrite", st3)
	}
	found := false
	for _, l := range logged3 {
		if strings.Contains(l, "disagrees with re-derivation") {
			found = true
		}
	}
	if !found {
		t.Fatalf("quarantine not logged: %v", logged3)
	}
}

func TestAuditHashMismatchRefused(t *testing.T) {
	c := mcache.New(0)
	mod := buildMod(t, prog1)
	if _, err := c.AuditHashed(mod, "not-the-hash"); err == nil {
		t.Fatal("AuditHashed accepted a wrong hash")
	}
	if _, ok := c.AuditByHash("not-the-hash"); ok {
		t.Fatal("wrong-hash report was memoized")
	}
}
