package mcache_test

import (
	"fmt"
	"strings"
	"testing"

	"omniware/internal/core"
	"omniware/internal/mcache"
	"omniware/internal/mcache/diskstore"
	"omniware/internal/sfi"
	"omniware/internal/sfi/absint"
	"omniware/internal/target"
	"omniware/internal/translate"
)

// The dual-gate contract: under VerifyBoth a program the two verifiers
// disagree on is never admitted — not from an insert, not from a
// translation, and not from the persistent tier. Disagreements are a
// distinct counter (they always mean a verifier bug) and disk entries
// that split the verdict are quarantined exactly like corrupt ones.

// disagreementProgram builds the known-difference shape: a diamond
// whose two arms each mask and rebase the sandbox register before
// falling into a store block that is a branch target. sfi.Check resets
// its facts at the leader and rejects; the abstract interpreter joins
// the two arm states and proves the store. It is the one admission
// where the verifiers legitimately split — exactly what VerifyBoth
// must refuse to serve.
func disagreementProgram(m *target.Machine, si translate.SegInfo) *target.Program {
	no := target.NoReg
	A := m.SFIAddr
	R := m.OmniInt[2]
	var code []target.Inst
	emit := func(in target.Inst) int32 {
		code = append(code, in)
		return int32(len(code) - 1)
	}
	pad := func() {
		if m.HasDelaySlot {
			emit(target.Inst{Op: target.Nop, Rd: no, Rs1: no, Rs2: no})
		}
	}
	loadConst := func(rd target.Reg, val uint32) {
		if rd == no {
			return
		}
		emit(target.Inst{Op: target.Lui, Rd: rd, Rs1: no, Rs2: no, Imm: int32(val >> 16)})
		if lo := val & 0xffff; lo != 0 {
			emit(target.Inst{Op: target.OrI, Rd: rd, Rs1: rd, Rs2: no, Imm: int32(lo)})
		}
	}
	const nOmni = 2
	loadConst(m.SFIMask, si.DataMask)
	loadConst(m.SFIBase, si.DataBase)
	loadConst(m.CodeMask, nOmni-1)
	loadConst(m.GP, si.GPValue)
	jEntry := emit(target.Inst{Op: target.J, Rd: no, Rs1: no, Rs2: no})
	pad()

	entry := int32(len(code))
	code[jEntry].Target = entry
	b := emit(target.Inst{Op: target.Beqz, Rd: no, Rs1: R, Rs2: no})
	pad()
	emit(target.Inst{Op: target.And, Rd: A, Rs1: R, Rs2: m.SFIMask})
	emit(target.Inst{Op: target.Or, Rd: A, Rs1: A, Rs2: m.SFIBase})
	j := emit(target.Inst{Op: target.J, Rd: no, Rs1: no, Rs2: no})
	pad()
	armB := int32(len(code))
	code[b].Target = armB
	emit(target.Inst{Op: target.And, Rd: A, Rs1: R, Rs2: m.SFIMask})
	emit(target.Inst{Op: target.Or, Rd: A, Rs1: A, Rs2: m.SFIBase})
	join := int32(len(code))
	code[j].Target = join
	emit(target.Inst{Op: target.Sw, Rd: R, Rs1: A, Rs2: no, Imm: 0})
	emit(target.Inst{Op: target.Halt, Rd: no, Rs1: no, Rs2: no})
	trap := emit(target.Inst{Op: target.Break, Rd: no, Rs1: no, Rs2: no})
	return &target.Program{
		Arch:         m.Arch,
		Code:         code,
		Entry:        0,
		OmniToNative: []int32{trap, trap},
	}
}

// Every verify mode must admit genuine translator output: the dual
// gate is free hardening on the happy path, not a new failure mode.
func TestVerifyModesAdmitTranslatorOutput(t *testing.T) {
	mod := buildMod(t, prog1)
	m := target.MIPSMachine()
	si := core.SegInfoFor(mod, core.RunConfig{})
	opt := translate.Paper(true)
	for _, mode := range []mcache.VerifyMode{mcache.VerifyCheck, mcache.VerifyAbsint, mcache.VerifyBoth} {
		t.Run(mode.String(), func(t *testing.T) {
			c := mcache.NewWith(mcache.Config{Verify: mode})
			if _, _, err := c.Translate(mod, m, si, opt); err != nil {
				t.Fatalf("mode %s rejected genuine translator output: %v", mode, err)
			}
			if s := c.Stats(); s.Rejected != 0 || s.Disagreements != 0 || s.Entries != 1 {
				t.Errorf("mode %s stats %+v", mode, s)
			}
		})
	}
}

// A program the verifiers split on is rejected by the memory tier and
// counted as a disagreement; a single-verifier cache would have served
// it (absint accepts the diamond), which is exactly the exposure the
// dual gate removes.
func TestVerifierDisagreementRejectedFromMemory(t *testing.T) {
	mod := buildMod(t, prog1)
	m := target.MIPSMachine()
	si := core.SegInfoFor(mod, core.RunConfig{})
	opt := translate.Paper(true)
	prog := disagreementProgram(m, si)

	// Precondition: the shape really does split the verdict.
	if err := sfi.Check(prog, m, si); err == nil {
		t.Fatal("sfi.Check accepted the diamond; the fixture no longer disagrees")
	}
	if err := absint.Check(prog, m, si); err != nil {
		t.Fatalf("absint rejected the diamond (%v); the fixture no longer disagrees", err)
	}

	c := mcache.NewWith(mcache.Config{Verify: mcache.VerifyBoth, Logf: func(string, ...any) {}})
	err := c.Insert(mod, m, si, opt, prog)
	if err == nil {
		t.Fatal("dual gate admitted a program the verifiers disagree on")
	}
	if !strings.Contains(err.Error(), "disagreement") {
		t.Errorf("rejection does not name the disagreement: %v", err)
	}
	s := c.Stats()
	if s.Disagreements != 1 || s.Rejected != 1 || s.Entries != 0 {
		t.Errorf("stats %+v, want 1 disagreement, 1 rejection, 0 entries", s)
	}

	// The key is not poisoned: a later lookup translates fresh and is
	// served the genuine program, never the rejected one.
	got, served, err := c.Translate(mod, m, si, opt)
	if err != nil || served {
		t.Fatalf("lookup after rejection: served=%v err=%v", served, err)
	}
	if got == prog {
		t.Fatal("cache served the rejected program")
	}
	// Under VerifyAbsint alone the same program is admitted — the
	// disagreement counter is specific to the dual gate.
	ca := mcache.NewWith(mcache.Config{Verify: mcache.VerifyAbsint})
	if err := ca.Insert(mod, m, si, opt, prog); err != nil {
		t.Fatalf("absint-only gate rejected what absint accepts: %v", err)
	}
}

// A disk entry the verifiers split on is quarantined like a corrupt
// one: logged, counted, never served, and the lookup falls back to a
// fresh (verified) translation.
func TestVerifierDisagreementOnDiskQuarantined(t *testing.T) {
	dir := t.TempDir()
	store, err := diskstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mod := buildMod(t, prog1)
	m := target.MIPSMachine()
	si := core.SegInfoFor(mod, core.RunConfig{})
	opt := translate.Paper(true)
	k := mcache.Key(mod, m, si, opt)
	if err := store.Put(k, disagreementProgram(m, si)); err != nil {
		t.Fatal(err)
	}

	var logged []string
	c := mcache.NewWith(mcache.Config{
		Disk:   store,
		Verify: mcache.VerifyBoth,
		Logf: func(format string, args ...any) {
			logged = append(logged, fmt.Sprintf(format, args...))
		},
	})
	got, served, err := c.Translate(mod, m, si, opt)
	if err != nil {
		t.Fatalf("lookup over a poisoned disk entry must degrade to a miss, got %v", err)
	}
	if served {
		t.Fatal("poisoned disk entry reported as served")
	}
	if got == nil {
		t.Fatal("no program returned")
	}
	s := c.Stats()
	if s.DiskQuarantines != 1 || s.Disagreements != 1 || s.DiskHits != 0 {
		t.Errorf("stats %+v, want 1 quarantine, 1 disagreement, 0 disk hits", s)
	}
	found := false
	for _, l := range logged {
		if strings.Contains(l, "disagreement") {
			found = true
		}
	}
	if !found {
		t.Errorf("quarantine log does not name the disagreement: %q", logged)
	}
	// The entry is gone from the store, replaced by the write-through
	// of the fresh translation under the same key.
	if _, err := store.Get(k); err != nil {
		t.Errorf("write-through after quarantine did not repopulate the key: %v", err)
	}
}
