package mcache_test

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"omniware/internal/core"
	"omniware/internal/mcache"
	"omniware/internal/mcache/diskstore"
	"omniware/internal/target"
	"omniware/internal/trace"
	"omniware/internal/translate"
)

// fakePeers is an in-process PeerSource: a map of candidate lists plus
// the attribution callbacks recorded for inspection.
type fakePeers struct {
	mu          sync.Mutex
	cands       map[string][]mcache.PeerCandidate
	admitted    []string // "key@peer"
	quarantined []string // "key@peer/reason"
	origins     []mcache.PeerOrigin
}

func (f *fakePeers) Fetch(key string, org mcache.PeerOrigin) []mcache.PeerCandidate {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.origins = append(f.origins, org)
	return f.cands[key]
}

func (f *fakePeers) Admitted(key, peer string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.admitted = append(f.admitted, key+"@"+peer)
}

func (f *fakePeers) Quarantined(key, peer, reason string, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.quarantined = append(f.quarantined, key+"@"+peer+"/"+reason)
}

func stripSandboxMask(t *testing.T, prog *target.Program, m *target.Machine) {
	t.Helper()
	for i := range prog.Code {
		in := &prog.Code[i]
		if in.Op == target.And && in.Rd == m.SFIAddr && in.Rs2 == m.SFIMask {
			in.Op = target.Nop
			in.Rd, in.Rs1, in.Rs2 = target.NoReg, target.NoReg, target.NoReg
			return
		}
	}
	t.Fatal("no sandboxing mask found to strip")
}

// TestPeerFill is the acceptance-criterion path in miniature: a cold
// cache whose peer already holds the translation serves it with zero
// local translations, and the fill is visible in stats and the trace.
func TestPeerFill(t *testing.T) {
	mod := buildMod(t, prog1)
	m := target.MIPSMachine()
	si := core.SegInfoFor(mod, core.RunConfig{})
	opt := translate.Paper(true)

	warmProg, err := translate.Translate(mod, m, si, opt)
	if err != nil {
		t.Fatal(err)
	}
	k := mcache.Key(mod, m, si, opt)
	peers := &fakePeers{cands: map[string][]mcache.PeerCandidate{
		k: {{Prog: warmProg, Peer: "node-b"}},
	}}
	cold := mcache.NewWith(mcache.Config{Peer: peers})

	tr := trace.New("t1", "lookup")
	sp := tr.Root
	prog, served, err := cold.TranslateTraced(sp, mod, m, si, opt)
	tr.Finish("ok")
	if err != nil {
		t.Fatal(err)
	}
	if !served || prog != warmProg {
		t.Errorf("peer fill not served warm (served=%v)", served)
	}
	s := cold.Stats()
	if s.Misses != 0 {
		t.Errorf("peer fill still translated locally: %+v", s)
	}
	if s.PeerHits != 1 || s.PeerQuarantines != 0 {
		t.Errorf("peer counters wrong: %+v", s)
	}
	if len(peers.admitted) != 1 || peers.admitted[0] != k+"@node-b" {
		t.Errorf("admission attribution %v", peers.admitted)
	}
	if sp.Find("peer_fetch") == nil {
		t.Error("no peer_fetch span recorded")
	}
	if len(peers.origins) != 1 || peers.origins[0].TraceID != "t1" {
		t.Errorf("peer probe origin not propagated: %+v", peers.origins)
	}
	if sp.Find("translate") != nil {
		t.Error("translate span recorded on a peer fill")
	}
	// The fill is now a local entry: the next lookup is a plain hit.
	if _, served, _ := cold.Translate(mod, m, si, opt); !served {
		t.Error("entry not installed after peer fill")
	}
}

// TestPeerQuarantine drives the adversarial-peer contract at the cache
// layer under both verify modes: a tampered candidate is quarantined
// and counted, never served, and the lookup degrades to an honest
// local translation. A later honest candidate from another peer is
// still accepted.
func TestPeerQuarantine(t *testing.T) {
	for _, mode := range []mcache.VerifyMode{mcache.VerifyCheck, mcache.VerifyBoth} {
		t.Run(mode.String(), func(t *testing.T) {
			mod := buildMod(t, prog1)
			m := target.MIPSMachine()
			si := core.SegInfoFor(mod, core.RunConfig{})
			opt := translate.Paper(true)

			tampered, err := translate.Translate(mod, m, si, opt)
			if err != nil {
				t.Fatal(err)
			}
			stripSandboxMask(t, tampered, m)
			k := mcache.Key(mod, m, si, opt)
			peers := &fakePeers{cands: map[string][]mcache.PeerCandidate{
				k: {{Prog: tampered, Peer: "evil"}},
			}}
			c := mcache.NewWith(mcache.Config{Peer: peers, Verify: mode})

			prog, served, err := c.Translate(mod, m, si, opt)
			if err != nil {
				t.Fatal(err)
			}
			if served {
				t.Error("tampered peer candidate served as warm")
			}
			if prog == tampered {
				t.Fatal("tampered program escaped quarantine")
			}
			s := c.Stats()
			if s.PeerQuarantines != 1 || s.PeerHits != 0 || s.Misses != 1 {
				t.Errorf("stats %+v", s)
			}
			if len(peers.quarantined) != 1 || peers.quarantined[0] != k+"@evil/"+mcache.QuarantineVerifier {
				t.Errorf("quarantine attribution %v", peers.quarantined)
			}
		})
	}
}

// TestPeerSecondCandidateWins: the first (bad) candidate is
// quarantined and the next owner's honest copy is admitted — the
// probe order degrades per candidate, not per lookup.
func TestPeerSecondCandidateWins(t *testing.T) {
	mod := buildMod(t, prog1)
	m := target.MIPSMachine()
	si := core.SegInfoFor(mod, core.RunConfig{})
	opt := translate.Paper(true)

	good, err := translate.Translate(mod, m, si, opt)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := translate.Translate(mod, m, si, opt)
	if err != nil {
		t.Fatal(err)
	}
	stripSandboxMask(t, bad, m)
	k := mcache.Key(mod, m, si, opt)
	peers := &fakePeers{cands: map[string][]mcache.PeerCandidate{
		k: {{Prog: bad, Peer: "evil"}, {Prog: good, Peer: "honest"}},
	}}
	c := mcache.NewWith(mcache.Config{Peer: peers})

	prog, served, err := c.Translate(mod, m, si, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !served || prog != good {
		t.Errorf("honest second candidate not served (served=%v)", served)
	}
	s := c.Stats()
	if s.PeerHits != 1 || s.PeerQuarantines != 1 || s.Misses != 0 {
		t.Errorf("stats %+v", s)
	}
}

// TestPeerSpotCheck: a candidate that *passes* the SFI gate but is not
// the translation of the requested module (here: translated under
// different options, so containment holds but the code differs) is
// caught by the retranslation spot check.
func TestPeerSpotCheck(t *testing.T) {
	mod := buildMod(t, prog1)
	m := target.MIPSMachine()
	si := core.SegInfoFor(mod, core.RunConfig{})
	opt := translate.Paper(true)

	// Translated without scheduling: still contained (the SFI gate
	// passes it), but not the code the requested identity names.
	unsched := opt
	unsched.Schedule = false
	wrong, err := translate.Translate(mod, m, si, unsched)
	if err != nil {
		t.Fatal(err)
	}
	k := mcache.Key(mod, m, si, opt) // the *scheduled* identity
	peers := &fakePeers{cands: map[string][]mcache.PeerCandidate{
		k: {{Prog: wrong, Peer: "confused"}},
	}}
	c := mcache.NewWith(mcache.Config{Peer: peers, PeerSpotCheckEvery: 1})

	_, served, err := c.Translate(mod, m, si, opt)
	if err != nil {
		t.Fatal(err)
	}
	if served {
		t.Error("wrong-translation candidate served as warm")
	}
	s := c.Stats()
	if s.SpotChecks != 1 || s.SpotCheckFails != 1 || s.PeerQuarantines != 1 || s.PeerHits != 0 {
		t.Errorf("stats %+v", s)
	}
}

func TestParseKeyRoundTrip(t *testing.T) {
	mod := buildMod(t, prog1)
	m := target.SPARCMachine()
	si := core.SegInfoFor(mod, core.RunConfig{})
	opt := translate.Paper(true)
	opt.SFIHoist = true

	k := mcache.Key(mod, m, si, opt)
	gm, gsi, gopt, err := mcache.ParseKey(k)
	if err != nil {
		t.Fatal(err)
	}
	if gm.Name != m.Name || gsi != si || gopt != opt {
		t.Errorf("ParseKey(%q) = %s %+v %+v", k, gm.Name, gsi, gopt)
	}
	h, err := mcache.KeyModuleHash(k)
	if err != nil || h != mcache.ModuleHash(mod) {
		t.Errorf("KeyModuleHash = %q, %v", h, err)
	}
	if mcache.KeyFor(h, m, si, opt) != k {
		t.Error("KeyFor does not rebuild the key")
	}
	for _, bad := range []string{"", "k1", "k2|a|mips|x|y", "k1|h|vax|00000000.00000000.00000000.00000000|sfi=true,sched=true,gp=true,peep=true,hoist=true,rsfi=true"} {
		if _, _, _, err := mcache.ParseKey(bad); err == nil {
			t.Errorf("ParseKey(%q) accepted", bad)
		}
	}
}

// TestPeekAndAdmitKeyed covers the peer-serving read and the
// replication-push write: Peek exposes what is stored without
// verifying or touching recency; AdmitKeyed re-verifies a pushed
// program against the policy its key encodes and, when a retranslate
// function is supplied, demands correspondence on every push.
func TestPeekAndAdmitKeyed(t *testing.T) {
	mod := buildMod(t, prog1)
	m := target.MIPSMachine()
	si := core.SegInfoFor(mod, core.RunConfig{})
	opt := translate.Paper(true)
	prog, err := translate.Translate(mod, m, si, opt)
	if err != nil {
		t.Fatal(err)
	}
	k := mcache.Key(mod, m, si, opt)
	retranslate := func() (*target.Program, error) {
		return translate.Translate(mod, m, si, opt)
	}

	c := mcache.New(0)
	if _, ok := c.Peek(k); ok {
		t.Fatal("Peek hit on an empty cache")
	}
	if err := c.AdmitKeyed(k, prog, retranslate); err != nil {
		t.Fatalf("honest push rejected: %v", err)
	}
	if got, ok := c.Peek(k); !ok || got != prog {
		t.Error("Peek does not see the pushed entry")
	}
	if s := c.Stats(); s.SpotChecks != 1 || s.SpotCheckFails != 0 {
		t.Errorf("push correspondence not checked: %+v", s)
	}

	tampered, err := translate.Translate(mod, m, si, opt)
	if err != nil {
		t.Fatal(err)
	}
	stripSandboxMask(t, tampered, m)
	c2 := mcache.New(0)
	err = c2.AdmitKeyed(k, tampered, retranslate)
	if err == nil || !strings.Contains(err.Error(), "admission rejected") {
		t.Fatalf("tampered push admitted: %v", err)
	}
	if _, ok := c2.Peek(k); ok {
		t.Error("tampered push visible via Peek")
	}
	if err := c2.AdmitKeyed("not-a-key", prog, retranslate); err == nil {
		t.Error("unparseable key accepted")
	}
}

// TestAdmitKeyedCorrespondence: a pushed program that PASSES the SFI
// gate (it is contained) but is not the translation of the module its
// key names must be refused by the push-path correspondence check —
// this runs on every push, not sampled like the fetch path.
func TestAdmitKeyedCorrespondence(t *testing.T) {
	mod := buildMod(t, prog1)
	m := target.MIPSMachine()
	si := core.SegInfoFor(mod, core.RunConfig{})
	opt := translate.Paper(true)

	// Translated without scheduling: contained, but not the code the
	// scheduled identity names.
	unsched := opt
	unsched.Schedule = false
	wrong, err := translate.Translate(mod, m, si, unsched)
	if err != nil {
		t.Fatal(err)
	}
	k := mcache.Key(mod, m, si, opt)
	c := mcache.NewWith(mcache.Config{Logf: t.Logf})
	err = c.AdmitKeyed(k, wrong, func() (*target.Program, error) {
		return translate.Translate(mod, m, si, opt)
	})
	if err == nil || !strings.Contains(err.Error(), "spot check") {
		t.Fatalf("sandboxed-but-wrong push admitted: %v", err)
	}
	if _, ok := c.Peek(k); ok {
		t.Error("wrong push visible via Peek")
	}
	s := c.Stats()
	if s.SpotChecks != 1 || s.SpotCheckFails != 1 || s.PeerQuarantines != 1 {
		t.Errorf("stats %+v", s)
	}
}

// TestAdmitKeyedNeverOverwritesDisk: a push for a key the persistent
// tier already holds must not rewrite the disk entry — a correct
// persisted translation survives whatever a push later claims.
func TestAdmitKeyedNeverOverwritesDisk(t *testing.T) {
	mod := buildMod(t, prog1)
	m := target.MIPSMachine()
	si := core.SegInfoFor(mod, core.RunConfig{})
	opt := translate.Paper(true)
	prog, err := translate.Translate(mod, m, si, opt)
	if err != nil {
		t.Fatal(err)
	}
	k := mcache.Key(mod, m, si, opt)

	store, err := diskstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c := mcache.NewWith(mcache.Config{Disk: store, Logf: t.Logf})
	if err := c.AdmitKeyed(k, prog, nil); err != nil {
		t.Fatalf("first push rejected: %v", err)
	}
	if !store.Has(k) {
		t.Fatal("first push not written through")
	}

	// A different-but-contained program pushed to a fresh cache over
	// the same store (retranslate nil so only the disk guard stands
	// between it and the persisted entry).
	unsched := opt
	unsched.Schedule = false
	other, err := translate.Translate(mod, m, si, unsched)
	if err != nil {
		t.Fatal(err)
	}
	c2 := mcache.NewWith(mcache.Config{Disk: store, Logf: t.Logf})
	if err := c2.AdmitKeyed(k, other, nil); err != nil {
		t.Fatalf("second push rejected: %v", err)
	}
	onDisk, err := store.Get(k)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(onDisk.Code, prog.Code) {
		t.Error("push overwrote the persisted entry")
	}
}

func TestHotRanking(t *testing.T) {
	mod := buildMod(t, prog1)
	other := buildMod(t, `int main(void){ return 7; }`)
	c := mcache.New(0)
	si := core.SegInfoFor(mod, core.RunConfig{})
	sio := core.SegInfoFor(other, core.RunConfig{})
	opt := translate.Paper(true)
	m := target.MIPSMachine()

	for i := 0; i < 4; i++ { // 1 miss + 3 hits
		if _, _, err := c.Translate(mod, m, si, opt); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ { // 1 miss + 1 hit
		if _, _, err := c.Translate(other, m, sio, opt); err != nil {
			t.Fatal(err)
		}
	}
	hot := c.Hot(10)
	if len(hot) != 2 {
		t.Fatalf("Hot = %v, want 2 entries", hot)
	}
	if hot[0].Key != mcache.Key(mod, m, si, opt) || hot[0].Hits != 3 || hot[1].Hits != 1 {
		t.Errorf("Hot ranking wrong: %v", hot)
	}
	if got := c.Hot(1); len(got) != 1 || got[0].Key != hot[0].Key {
		t.Errorf("Hot(1) = %v", got)
	}
}
