package mcache

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"

	"omniware/internal/audit"
	"omniware/internal/mcache/diskstore"
	"omniware/internal/ovm"
	"omniware/internal/trace"
)

// Audit returns the static-analysis report for mod, running the
// pipeline on first sight and memoizing by module hash. The report is
// derived, never loaded: when the persistent tier holds a stored audit
// for the hash, the stored blob is compared against the fresh
// derivation — a mismatch quarantines the stored copy (it is evidence
// of tampering or an analyzer change, either way not servable) and the
// derived report wins. This is the same verified-on-arrival discipline
// translations get: disk and peers supply hints and receipts, but
// every verdict served from this node was computed by this node.
func (c *Cache) Audit(mod *ovm.Module) (*audit.Report, error) {
	return c.AuditTraced(nil, mod, ModuleHash(mod))
}

// AuditHashed is Audit for callers that already hold the module hash.
func (c *Cache) AuditHashed(mod *ovm.Module, hash string) (*audit.Report, error) {
	return c.AuditTraced(nil, mod, hash)
}

// AuditTraced is AuditHashed with an omnitrace span for the analysis
// stage (nil sp records nothing).
func (c *Cache) AuditTraced(sp *trace.Span, mod *ovm.Module, hash string) (*audit.Report, error) {
	c.auditMu.Lock()
	if rep, ok := c.audits[hash]; ok {
		c.auditMu.Unlock()
		c.ctr.auditHits.Add(1)
		return rep, nil
	}
	c.auditMu.Unlock()

	csp := sp.Child("audit")
	rep, err := audit.Analyze(mod)
	csp.End()
	if err != nil {
		return nil, fmt.Errorf("mcache: audit %s: %w", hash, err)
	}
	c.ctr.audits.Add(1)
	if rep.Hash != hash {
		// The caller's hash disagrees with the module bytes; refuse
		// rather than memoize under a name other modules may claim.
		return nil, fmt.Errorf("mcache: audit hash mismatch: module is %s, caller said %s", rep.Hash, hash)
	}
	c.reconcileStoredAudit(hash, rep)

	c.auditMu.Lock()
	if prior, ok := c.audits[hash]; ok {
		// Another deriver won the race; both derivations are equal by
		// determinism, keep the memoized one.
		c.auditMu.Unlock()
		return prior, nil
	}
	c.audits[hash] = rep
	c.auditMu.Unlock()
	return rep, nil
}

// AuditByHash returns the memoized report for a module hash, if this
// node has derived one (it does not touch disk: a report this node
// never derived is a report this node cannot vouch for).
func (c *Cache) AuditByHash(hash string) (*audit.Report, bool) {
	c.auditMu.Lock()
	rep, ok := c.audits[hash]
	c.auditMu.Unlock()
	return rep, ok
}

// reconcileStoredAudit compares the fresh derivation against the
// persistent tier: confirm-or-quarantine on presence, write-through on
// absence.
func (c *Cache) reconcileStoredAudit(hash string, rep *audit.Report) {
	if c.disk == nil {
		return
	}
	fresh, err := json.Marshal(rep)
	if err != nil {
		return
	}
	stored, err := c.disk.GetAudit(hash)
	switch {
	case err == nil:
		if !bytes.Equal(stored, fresh) {
			c.ctr.auditQuarantines.Add(1)
			c.logf("mcache: stored audit for %s disagrees with re-derivation; quarantined", hash)
			if qerr := c.disk.QuarantineAudit(hash); qerr != nil {
				c.logf("mcache: %v", qerr)
			}
			if perr := c.disk.PutAudit(hash, fresh); perr != nil {
				c.logf("mcache: rewriting audit for %s: %v", hash, perr)
			} else {
				c.ctr.auditDiskWrites.Add(1)
			}
		}
	case errors.Is(err, diskstore.ErrNotFound):
		if perr := c.disk.PutAudit(hash, fresh); perr != nil {
			c.logf("mcache: writing audit for %s: %v", hash, perr)
		} else {
			c.ctr.auditDiskWrites.Add(1)
		}
	default:
		// Corrupt envelope: same treatment as a mismatch.
		c.ctr.auditQuarantines.Add(1)
		c.logf("mcache: stored audit for %s unreadable: %v; quarantined", hash, err)
		if qerr := c.disk.QuarantineAudit(hash); qerr != nil {
			c.logf("mcache: %v", qerr)
		}
		if perr := c.disk.PutAudit(hash, fresh); perr != nil {
			c.logf("mcache: rewriting audit for %s: %v", hash, perr)
		} else {
			c.ctr.auditDiskWrites.Add(1)
		}
	}
}
