package mcache_test

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"omniware/internal/cc"
	"omniware/internal/core"
	"omniware/internal/mcache"
	"omniware/internal/ovm"
	"omniware/internal/target"
	"omniware/internal/translate"
)

func buildMod(t *testing.T, src string) *ovm.Module {
	t.Helper()
	mod, err := core.BuildC([]core.SourceFile{{Name: "p.c", Src: src}}, cc.Options{OptLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

const prog1 = `
int g[64];
int main(void) {
	int i, acc = 0;
	for (i = 0; i < 64; i++) { g[i] = i * 3; acc += g[i]; }
	_print_int(acc);
	return acc & 0xff;
}`

func TestHitMissAndSharing(t *testing.T) {
	mod := buildMod(t, prog1)
	c := mcache.New(0)
	m := target.MIPSMachine()
	si := core.SegInfoFor(mod, core.RunConfig{})
	opt := translate.Paper(true)

	p1, served, err := c.Translate(mod, m, si, opt)
	if err != nil {
		t.Fatal(err)
	}
	if served {
		t.Error("first lookup reported as served from cache")
	}
	p2, served, err := c.Translate(mod, m, si, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !served || p2 != p1 {
		t.Errorf("second lookup not a hit on the same program (served=%v)", served)
	}
	s := c.Stats()
	if s.Lookups != 2 || s.Misses != 1 || s.Hits != 1 || s.Entries != 1 {
		t.Errorf("stats %+v", s)
	}

	// The cached program runs correctly in a fresh host and matches the
	// interpreter.
	h, err := core.NewHost(mod, core.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := h.RunInterp()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := core.NewHost(mod, core.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := h2.RunProgram(m, p1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faulted || res.ExitCode != ref.ExitCode || h2.Output() != h.Output() {
		t.Errorf("cached program diverged: %+v vs %+v", res, ref)
	}
}

func TestKeySeparation(t *testing.T) {
	mod := buildMod(t, prog1)
	other := buildMod(t, `int main(void){ return 7; }`)
	c := mcache.New(0)
	si := core.SegInfoFor(mod, core.RunConfig{})
	sio := core.SegInfoFor(other, core.RunConfig{})
	hoist := translate.Paper(true)
	hoist.SFIHoist = true

	lookups := []struct {
		mod *ovm.Module
		m   *target.Machine
		si  translate.SegInfo
		opt translate.Options
	}{
		{mod, target.MIPSMachine(), si, translate.Paper(true)},
		{mod, target.SPARCMachine(), si, translate.Paper(true)},   // machine differs
		{mod, target.MIPSMachine(), si, hoist},                    // options differ
		{other, target.MIPSMachine(), sio, translate.Paper(true)}, // module differs
	}
	for i, l := range lookups {
		if _, served, err := c.Translate(l.mod, l.m, l.si, l.opt); err != nil || served {
			t.Errorf("lookup %d: served=%v err=%v (want distinct miss)", i, served, err)
		}
	}
	if s := c.Stats(); s.Misses != 4 || s.Entries != 4 {
		t.Errorf("stats %+v", s)
	}
}

func TestUnsandboxedRefused(t *testing.T) {
	mod := buildMod(t, prog1)
	c := mcache.New(0)
	si := core.SegInfoFor(mod, core.RunConfig{})
	if _, _, err := c.Translate(mod, target.MIPSMachine(), si, translate.Paper(false)); !errors.Is(err, mcache.ErrUnsandboxed) {
		t.Errorf("non-SFI translation not refused: %v", err)
	}
	if err := c.Insert(mod, target.MIPSMachine(), si, translate.Paper(false), &target.Program{}); !errors.Is(err, mcache.ErrUnsandboxed) {
		t.Errorf("non-SFI insert not refused: %v", err)
	}
}

func TestLRUEvictionByCodeSize(t *testing.T) {
	srcs := []string{
		`int main(void){ return 1; }`,
		`int main(void){ int i, a = 0; for (i = 0; i < 9; i++) a += i; return a; }`,
		`int g[8]; int main(void){ int i; for (i = 0; i < 8; i++) g[i] = i; return g[3]; }`,
	}
	mods := make([]*ovm.Module, len(srcs))
	sis := make([]translate.SegInfo, len(srcs))
	m := target.MIPSMachine()
	opt := translate.Paper(true)
	var sizes []int64
	for i, src := range srcs {
		mods[i] = buildMod(t, src)
		sis[i] = core.SegInfoFor(mods[i], core.RunConfig{})
		p, err := translate.Translate(mods[i], m, sis[i], opt)
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, int64(len(p.Code))*40)
	}
	// Budget for roughly two of the three programs.
	limit := sizes[0] + sizes[1] + sizes[2] - sizes[0]/2
	c := mcache.New(limit)
	for i := range mods {
		if _, _, err := c.Translate(mods[i], m, sis[i], opt); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Stats()
	if s.Evictions == 0 {
		t.Fatalf("no evictions under limit %d: %+v", limit, s)
	}
	if s.CodeBytes > limit {
		t.Errorf("cache over budget: %d > %d", s.CodeBytes, limit)
	}
	// Most recently used entry must still be resident.
	if _, served, err := c.Translate(mods[len(mods)-1], m, sis[len(mods)-1], opt); err != nil || !served {
		t.Errorf("most recent entry evicted (served=%v err=%v)", served, err)
	}
}

func TestSingleflightDeduplication(t *testing.T) {
	mod := buildMod(t, prog1)
	c := mcache.New(0)
	m := target.PPCMachine()
	si := core.SegInfoFor(mod, core.RunConfig{})
	opt := translate.Paper(true)

	const n = 16
	var wg sync.WaitGroup
	progs := make([]*target.Program, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			progs[i], _, errs[i] = c.Translate(mod, m, si, opt)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if progs[i] != progs[0] {
			t.Fatalf("caller %d got a different program", i)
		}
	}
	s := c.Stats()
	if s.Misses != 1 {
		t.Errorf("%d translations for one key (stats %+v)", s.Misses, s)
	}
	if s.Hits+s.Coalesced != n-1 {
		t.Errorf("hits %d + coalesced %d != %d", s.Hits, s.Coalesced, n-1)
	}
}

func TestInsertRejectsTamperedProgram(t *testing.T) {
	mod := buildMod(t, prog1)
	m := target.MIPSMachine()
	si := core.SegInfoFor(mod, core.RunConfig{})
	opt := translate.Paper(true)
	prog, err := translate.Translate(mod, m, si, opt)
	if err != nil {
		t.Fatal(err)
	}
	c := mcache.New(0)
	// The honest translation is admitted.
	if err := c.Insert(mod, m, si, opt, prog); err != nil {
		t.Fatalf("clean translation rejected: %v", err)
	}
	// Strip one sandboxing mask: admission must refuse it.
	tampered, err := translate.Translate(mod, m, si, opt)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for i := range tampered.Code {
		in := &tampered.Code[i]
		if in.Op == target.And && in.Rd == m.SFIAddr && in.Rs2 == m.SFIMask {
			in.Op = target.Nop
			in.Rd, in.Rs1, in.Rs2 = target.NoReg, target.NoReg, target.NoReg
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no sandboxing mask found to strip")
	}
	err = c.Insert(mod, m, si, opt, tampered)
	if err == nil || !strings.Contains(err.Error(), "admission rejected") {
		t.Fatalf("tampered program admitted: %v", err)
	}
	if s := c.Stats(); s.Rejected == 0 {
		t.Errorf("rejection not counted: %+v", s)
	}
}
