package diskstore_test

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"omniware/internal/cc"
	"omniware/internal/core"
	"omniware/internal/mcache/diskstore"
	"omniware/internal/target"
	"omniware/internal/translate"
)

func buildProg(t *testing.T) *target.Program {
	t.Helper()
	mod, err := core.BuildC([]core.SourceFile{{Name: "p.c", Src: `
int main(void) { int i, a = 0; for (i = 0; i < 10; i++) a += i; return a; }`}},
		cc.Options{OptLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := translate.Translate(mod, target.MIPSMachine(),
		core.SegInfoFor(mod, core.RunConfig{}), translate.Paper(true))
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := diskstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	prog := buildProg(t)
	const k = "k1|deadbeef|mips|sfi=true"
	if err := s.Put(k, prog); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(k)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, prog) {
		t.Fatal("program diverged through the store")
	}
	if n, bytes, err := s.Len(); err != nil || n != 1 || bytes == 0 {
		t.Fatalf("Len() = %d, %d, %v", n, bytes, err)
	}
	if _, err := s.Get("no-such-key"); !errors.Is(err, diskstore.ErrNotFound) {
		t.Fatalf("absent key: %v", err)
	}
}

// The store survives reopening — that is its whole purpose.
func TestReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := diskstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	prog := buildProg(t)
	if err := s.Put("key", prog); err != nil {
		t.Fatal(err)
	}
	s2, err := diskstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Get("key")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, prog) {
		t.Fatal("program diverged across reopen")
	}
}

func entryFiles(t *testing.T, dir string) []string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "entries", "*.owp"))
	if err != nil {
		t.Fatal(err)
	}
	return names
}

func TestCorruptionDetectedAndQuarantined(t *testing.T) {
	prog := buildProg(t)
	// Each mutation of the entry file must turn Get into ErrCorrupt.
	mutations := []struct {
		name string
		mut  func(b []byte) []byte
	}{
		{"payload bit flip", func(b []byte) []byte { b[len(b)-3] ^= 0x10; return b }},
		{"header bit flip", func(b []byte) []byte { b[1] ^= 0x10; return b }},
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"wrong key", func(b []byte) []byte { b[9] ^= 0xff; return b }}, // inside the stored key
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := diskstore.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Put("the-key", prog); err != nil {
				t.Fatal(err)
			}
			files := entryFiles(t, dir)
			if len(files) != 1 {
				t.Fatalf("%d entry files", len(files))
			}
			raw, err := os.ReadFile(files[0])
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(files[0], m.mut(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Get("the-key"); !errors.Is(err, diskstore.ErrCorrupt) {
				t.Fatalf("corrupt entry: %v", err)
			}
			if err := s.Quarantine("the-key"); err != nil {
				t.Fatal(err)
			}
			if len(entryFiles(t, dir)) != 0 {
				t.Fatal("entry still live after quarantine")
			}
			qs, _ := filepath.Glob(filepath.Join(dir, diskstore.QuarantineDir, "*.owp"))
			if len(qs) != 1 {
				t.Fatal("quarantine preserved nothing")
			}
			// Quarantining the same (now absent) key again is fine.
			if err := s.Quarantine("the-key"); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Get("the-key"); !errors.Is(err, diskstore.ErrNotFound) {
				t.Fatalf("quarantined key still resolves: %v", err)
			}
		})
	}
}

func TestConcurrentAccess(t *testing.T) {
	s, err := diskstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	prog := buildProg(t)
	done := make(chan error, 16)
	for i := 0; i < 8; i++ {
		go func() { done <- s.Put("shared", prog) }()
		go func() {
			_, err := s.Get("shared")
			if errors.Is(err, diskstore.ErrNotFound) {
				err = nil
			}
			done <- err
		}()
	}
	for i := 0; i < 16; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
