// Package diskstore is the persistent tier under the in-memory
// translation cache: a content-addressed directory of wire-encoded
// native programs, so warm translation capacity survives process
// restarts instead of being rebuilt from scratch after every deploy.
//
// The store is deliberately dumb about trust. Every entry carries the
// full cache key and a SHA-256 of its payload, so bit rot, truncation,
// and file swaps are detected on read — but a clean checksum proves
// only that the bytes are the ones written, not that they are safe.
// The store therefore NEVER vouches for a program: internal/mcache
// re-runs the SFI verifier on every program read back before it can be
// admitted, and calls Quarantine on anything that fails, which moves
// the file aside (never deletes it) for operator inspection. Nothing
// read from disk reaches core.RunProgram unverified.
package diskstore

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"

	"omniware/internal/target"
	"omniware/internal/wire"
)

// entry file layout:
//
//	magic "OWS1" (4)
//	keyLen u32, key bytes        — the full cache key, checked on read
//	paySum [32]byte              — SHA-256 of payload
//	payLen u32, payload          — wire.EncodeProgram bytes
const (
	magic      = "OWS1"
	entryExt   = ".owp"
	maxKeyLen  = 4096
	entriesDir = "entries"
	// QuarantineDir is where Quarantine moves bad entries, relative to
	// the store root.
	QuarantineDir = "quarantine"
)

// ErrNotFound reports a key with no stored entry.
var ErrNotFound = errors.New("diskstore: entry not found")

// ErrCorrupt wraps every integrity failure detected on read; callers
// treat it as grounds for quarantine.
var ErrCorrupt = errors.New("diskstore: corrupt entry")

// Store is a directory of persisted translations. All methods are safe
// for concurrent use. Writes are atomic (temp file + rename), so a
// crash mid-Put leaves either the old entry or none, never a torn one.
type Store struct {
	mu   sync.Mutex
	root string
}

// Open creates (if needed) and opens a store rooted at dir.
func Open(dir string) (*Store, error) {
	for _, d := range []string{filepath.Join(dir, entriesDir), filepath.Join(dir, QuarantineDir)} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("diskstore: %w", err)
		}
	}
	return &Store{root: dir}, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// fileName is the content address of a key on disk: hex SHA-256 so
// arbitrary key bytes never meet the filesystem.
func fileName(key string) string {
	h := sha256.Sum256([]byte(key))
	return hex.EncodeToString(h[:]) + entryExt
}

func (s *Store) entryPath(key string) string {
	return filepath.Join(s.root, entriesDir, fileName(key))
}

// Put persists prog under key. An existing entry for the key is
// replaced (entries are immutable in content, so this only matters
// after a quarantine).
func (s *Store) Put(key string, prog *target.Program) error {
	if len(key) == 0 || len(key) > maxKeyLen {
		return fmt.Errorf("diskstore: key length %d out of range", len(key))
	}
	payload, err := wire.EncodeProgram(prog)
	if err != nil {
		return fmt.Errorf("diskstore: encoding program: %w", err)
	}
	sum := sha256.Sum256(payload)
	buf := make([]byte, 0, len(magic)+4+len(key)+len(sum)+4+len(payload))
	buf = append(buf, magic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(key)))
	buf = append(buf, key...)
	buf = append(buf, sum[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)

	s.mu.Lock()
	defer s.mu.Unlock()
	tmp, err := os.CreateTemp(filepath.Join(s.root, entriesDir), ".put-*")
	if err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return fmt.Errorf("diskstore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.entryPath(key)); err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	return nil
}

// Has reports whether an entry for key exists, without reading or
// validating it — the cheap existence probe the cache uses to avoid
// replacing an already-persisted entry from a replication push.
func (s *Store) Has(key string) bool {
	_, err := os.Stat(s.entryPath(key))
	return err == nil
}

// Get reads the entry for key back. It returns ErrNotFound for absent
// keys and an ErrCorrupt-wrapped error for anything that fails
// integrity or decoding — the caller decides whether to quarantine.
// The returned program passed only structural checks; it must still be
// verified (sfi.Check) before execution.
func (s *Store) Get(key string) (*target.Program, error) {
	s.mu.Lock()
	raw, err := os.ReadFile(s.entryPath(key))
	s.mu.Unlock()
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, ErrNotFound
		}
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	if len(raw) < len(magic)+4 || string(raw[:4]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	rest := raw[4:]
	keyLen := int(binary.LittleEndian.Uint32(rest))
	rest = rest[4:]
	if keyLen <= 0 || keyLen > maxKeyLen || keyLen > len(rest)-36 {
		return nil, fmt.Errorf("%w: key length %d", ErrCorrupt, keyLen)
	}
	if string(rest[:keyLen]) != key {
		return nil, fmt.Errorf("%w: entry holds key %q", ErrCorrupt, rest[:keyLen])
	}
	rest = rest[keyLen:]
	var sum [32]byte
	copy(sum[:], rest)
	rest = rest[32:]
	payLen := int(binary.LittleEndian.Uint32(rest))
	rest = rest[4:]
	if payLen != len(rest) {
		return nil, fmt.Errorf("%w: payload is %d bytes, header promises %d", ErrCorrupt, len(rest), payLen)
	}
	if sha256.Sum256(rest) != sum {
		return nil, fmt.Errorf("%w: payload checksum mismatch", ErrCorrupt)
	}
	prog, err := wire.DecodeProgram(rest)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return prog, nil
}

// Quarantine moves the entry for key out of the serving directory into
// QuarantineDir, preserving the bytes for inspection. Missing entries
// are not an error (a concurrent quarantine may have won).
func (s *Store) Quarantine(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	src := s.entryPath(key)
	dst := filepath.Join(s.root, QuarantineDir, fileName(key))
	if err := os.Rename(src, dst); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("diskstore: quarantine: %w", err)
	}
	return nil
}

// Len reports the number of live entries and their total size in
// bytes. It scans the directory; intended for stats, not hot paths.
func (s *Store) Len() (n int, bytes int64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ents, err := os.ReadDir(filepath.Join(s.root, entriesDir))
	if err != nil {
		return 0, 0, fmt.Errorf("diskstore: %w", err)
	}
	for _, e := range ents {
		if e.IsDir() || filepath.Ext(e.Name()) != entryExt {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		n++
		bytes += info.Size()
	}
	return n, bytes, nil
}
