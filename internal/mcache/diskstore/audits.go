package diskstore

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// Audit entries live beside translations, keyed by module hash: the
// canonical JSON of an audit.Report under the same tamper-evident
// envelope as programs (magic, key echo, payload checksum). Like a
// translation, a stored audit is never trusted on read-back —
// internal/mcache re-derives the report from the module and compares;
// a mismatch quarantines the stored blob and keeps the derived one.
const (
	auditMagic = "OWA1"
	auditsDir  = "audits"
)

func (s *Store) auditPath(key string) string {
	return filepath.Join(s.root, auditsDir, fileName(key))
}

// PutAudit persists the canonical audit blob for key (a module hash).
func (s *Store) PutAudit(key string, blob []byte) error {
	if len(key) == 0 || len(key) > maxKeyLen {
		return fmt.Errorf("diskstore: audit key length %d out of range", len(key))
	}
	sum := sha256.Sum256(blob)
	buf := make([]byte, 0, len(auditMagic)+4+len(key)+len(sum)+4+len(blob))
	buf = append(buf, auditMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(key)))
	buf = append(buf, key...)
	buf = append(buf, sum[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(blob)))
	buf = append(buf, blob...)

	s.mu.Lock()
	defer s.mu.Unlock()
	dir := filepath.Join(s.root, auditsDir)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".put-*")
	if err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return fmt.Errorf("diskstore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.auditPath(key)); err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	return nil
}

// GetAudit reads the stored audit blob for key. ErrNotFound for absent
// keys; ErrCorrupt-wrapped for integrity failures.
func (s *Store) GetAudit(key string) ([]byte, error) {
	s.mu.Lock()
	raw, err := os.ReadFile(s.auditPath(key))
	s.mu.Unlock()
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, ErrNotFound
		}
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	if len(raw) < len(auditMagic)+4 || string(raw[:4]) != auditMagic {
		return nil, fmt.Errorf("%w: bad audit magic", ErrCorrupt)
	}
	rest := raw[4:]
	keyLen := int(binary.LittleEndian.Uint32(rest))
	rest = rest[4:]
	if keyLen <= 0 || keyLen > maxKeyLen || keyLen > len(rest)-36 {
		return nil, fmt.Errorf("%w: audit key length %d", ErrCorrupt, keyLen)
	}
	if string(rest[:keyLen]) != key {
		return nil, fmt.Errorf("%w: audit entry holds key %q", ErrCorrupt, rest[:keyLen])
	}
	rest = rest[keyLen:]
	var sum [32]byte
	copy(sum[:], rest)
	rest = rest[32:]
	payLen := int(binary.LittleEndian.Uint32(rest))
	rest = rest[4:]
	if payLen != len(rest) {
		return nil, fmt.Errorf("%w: audit payload is %d bytes, header promises %d", ErrCorrupt, len(rest), payLen)
	}
	if sha256.Sum256(rest) != sum {
		return nil, fmt.Errorf("%w: audit payload checksum mismatch", ErrCorrupt)
	}
	return rest, nil
}

// QuarantineAudit moves the stored audit for key aside for inspection.
func (s *Store) QuarantineAudit(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	src := s.auditPath(key)
	dst := filepath.Join(s.root, QuarantineDir, "audit-"+fileName(key))
	if err := os.Rename(src, dst); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("diskstore: quarantine audit: %w", err)
	}
	return nil
}
