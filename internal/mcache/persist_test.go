package mcache_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"omniware/internal/core"
	"omniware/internal/mcache"
	"omniware/internal/mcache/diskstore"
	"omniware/internal/ovm"
	"omniware/internal/target"
	"omniware/internal/translate"
)

// openCache builds a disk-backed cache over dir, capturing quarantine
// logs into logged.
func openCache(t *testing.T, dir string, logged *[]string) *mcache.Cache {
	t.Helper()
	store, err := diskstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return mcache.NewWith(mcache.Config{
		Disk: store,
		Logf: func(format string, args ...any) {
			*logged = append(*logged, fmt.Sprintf(format, args...))
		},
	})
}

// The restart-durability contract, end to end: populate a disk-backed
// cache, "restart" (new cache, same directory), corrupt one entry —
// the intact entries are served as disk hits without retranslation,
// the corrupted entry is quarantined and logged, and everything served
// passed the verifier again on the way in.
func TestRestartDurability(t *testing.T) {
	dir := t.TempDir()
	srcs := []string{
		`int main(void){ return 11; }`,
		`int main(void){ int i, a = 0; for (i = 0; i < 6; i++) a += i; return a; }`,
		`int g[4]; int main(void){ g[1] = 9; return g[1]; }`,
	}
	mods := make([]*ovm.Module, len(srcs))
	sis := make([]translate.SegInfo, len(srcs))
	m := target.MIPSMachine()
	opt := translate.Paper(true)

	var log1 []string
	c1 := openCache(t, dir, &log1)
	for i, src := range srcs {
		mods[i] = buildMod(t, src)
		sis[i] = core.SegInfoFor(mods[i], core.RunConfig{})
		if _, served, err := c1.Translate(mods[i], m, sis[i], opt); err != nil || served {
			t.Fatalf("populate %d: served=%v err=%v", i, served, err)
		}
	}
	if s := c1.Stats(); s.DiskWrites != 3 || s.Misses != 3 {
		t.Fatalf("populate stats %+v", s)
	}
	if len(log1) != 0 {
		t.Fatalf("healthy populate logged: %v", log1)
	}

	// "Stop the daemon": drop c1. Corrupt exactly one on-disk entry.
	files, err := filepath.Glob(filepath.Join(dir, "entries", "*.owp"))
	if err != nil || len(files) != 3 {
		t.Fatalf("entry files %v (err=%v)", files, err)
	}
	victim := files[1]
	raw, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-7] ^= 0x20
	if err := os.WriteFile(victim, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh cache over the same directory knows nothing
	// in memory.
	var log2 []string
	c2 := openCache(t, dir, &log2)
	var diskHits, retranslated int
	for i := range mods {
		prog, served, err := c2.Translate(mods[i], m, sis[i], opt)
		if err != nil {
			t.Fatalf("lookup %d after restart: %v", i, err)
		}
		if served {
			diskHits++
		} else {
			retranslated++
		}
		// Whatever path it took, the program must run correctly in a
		// fresh host — nothing unverified reaches core.RunProgram.
		h, err := core.NewHost(mods[i], core.RunConfig{})
		if err != nil {
			t.Fatal(err)
		}
		ref, err := h.RunInterp()
		if err != nil {
			t.Fatal(err)
		}
		h2, err := core.NewHost(mods[i], core.RunConfig{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := h2.RunProgram(m, prog)
		if err != nil {
			t.Fatal(err)
		}
		if res.Faulted || res.ExitCode != ref.ExitCode {
			t.Fatalf("module %d diverged after restart: %+v vs %+v", i, res, ref)
		}
	}
	if diskHits != 2 || retranslated != 1 {
		t.Fatalf("after restart: %d disk hits, %d retranslations (want 2, 1)", diskHits, retranslated)
	}
	s := c2.Stats()
	if s.DiskHits != 2 || s.Misses != 1 || s.DiskQuarantines != 1 {
		t.Fatalf("restart stats %+v", s)
	}
	// The corrupted entry was quarantined — moved aside, not deleted,
	// and replaced by the fresh retranslation's write-through.
	qs, _ := filepath.Glob(filepath.Join(dir, diskstore.QuarantineDir, "*.owp"))
	if len(qs) != 1 {
		t.Fatalf("%d quarantined files, want 1", len(qs))
	}
	var found bool
	for _, line := range log2 {
		if strings.Contains(line, "quarantined") {
			found = true
		}
	}
	if !found {
		t.Fatalf("quarantine not logged: %v", log2)
	}
	// A third incarnation sees all three entries warm again.
	var log3 []string
	c3 := openCache(t, dir, &log3)
	for i := range mods {
		if _, served, err := c3.Translate(mods[i], m, sis[i], opt); err != nil || !served {
			t.Fatalf("lookup %d after heal: served=%v err=%v", i, served, err)
		}
	}
	if s := c3.Stats(); s.DiskHits != 3 || s.Misses != 0 {
		t.Fatalf("healed stats %+v", s)
	}
}

// A disk entry whose bytes are internally consistent (valid checksum,
// valid encoding) but whose program fails the SFI verifier — the
// tampered-at-rest case — must be quarantined on load, never served.
func TestTamperedDiskEntryQuarantined(t *testing.T) {
	dir := t.TempDir()
	mod := buildMod(t, `int g[8]; int main(void){ int i; for (i = 0; i < 8; i++) g[i] = i; return g[2]; }`)
	m := target.MIPSMachine()
	si := core.SegInfoFor(mod, core.RunConfig{})
	opt := translate.Paper(true)

	var logs []string
	c1 := openCache(t, dir, &logs)
	if _, _, err := c1.Translate(mod, m, si, opt); err != nil {
		t.Fatal(err)
	}

	// Forge a perfectly well-formed entry whose program has one
	// sandbox mask stripped, and put it where the real one was. The
	// store itself accepts it — only the verifier can tell.
	tampered, err := translate.Translate(mod, m, si, opt)
	if err != nil {
		t.Fatal(err)
	}
	stripped := false
	for i := range tampered.Code {
		in := &tampered.Code[i]
		if in.Op == target.And && in.Rd == m.SFIAddr && in.Rs2 == m.SFIMask {
			in.Op = target.Nop
			in.Rd, in.Rs1, in.Rs2 = target.NoReg, target.NoReg, target.NoReg
			stripped = true
			break
		}
	}
	if !stripped {
		t.Fatal("no sandbox mask to strip")
	}
	store, err := diskstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := mcache.Key(mod, m, si, opt)
	if err := store.Put(k, tampered); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Get(k); err != nil {
		t.Fatalf("forged entry should pass integrity checks: %v", err)
	}

	// Restart. The lookup must refuse the forged entry, quarantine it,
	// and serve a fresh, verified translation instead.
	var logs2 []string
	c2 := openCache(t, dir, &logs2)
	prog, served, err := c2.Translate(mod, m, si, opt)
	if err != nil {
		t.Fatal(err)
	}
	if served {
		t.Fatal("forged entry was served from disk")
	}
	s := c2.Stats()
	if s.DiskQuarantines != 1 || s.Rejected != 1 || s.Misses != 1 {
		t.Fatalf("stats %+v", s)
	}
	if len(logs2) == 0 || !strings.Contains(strings.Join(logs2, "\n"), "quarantined") {
		t.Fatalf("tampering not logged: %v", logs2)
	}
	// The served program still has its masks.
	masked := false
	for _, in := range prog.Code {
		if in.Op == target.And && in.Rd == m.SFIAddr && in.Rs2 == m.SFIMask {
			masked = true
			break
		}
	}
	if !masked {
		t.Fatal("served program lost its sandbox masks")
	}
}
