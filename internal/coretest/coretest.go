// Package coretest holds the shared differential-parity harness: a
// fixed set of example programs and benchmark workloads, each with its
// host-side input setup and memory-digest hooks, plus the interpreter
// reference runner every execution engine is compared against. It is
// used by the system-level parity tests in internal/core and by the
// concurrency stress tests in internal/serve — one source of truth for
// "what programs must agree with the interpreter".
package coretest

import (
	"fmt"

	"omniware/internal/bench"
	"omniware/internal/cc"
	"omniware/internal/core"
	"omniware/internal/ovm"
)

// Case is one program plus its host-side setup. Setup (optional)
// deposits input into the loaded address space before execution, as
// the example hosts do; Post (optional) digests memory the program
// wrote, so a comparison covers side effects beyond exit and output.
type Case struct {
	Name  string
	Files []core.SourceFile
	Opts  cc.Options
	Setup func(h *core.Host, mod *ovm.Module) error
	Post  func(h *core.Host, mod *ovm.Module) (string, error)
}

// SymAddr resolves a module symbol's address.
func SymAddr(mod *ovm.Module, name string) (uint32, error) {
	if s, ok := ovm.Lookup(mod.Symbols, name); ok {
		return s.Value, nil
	}
	return 0, fmt.Errorf("coretest: symbol %q not found", name)
}

// Outcome is everything a run produces that parity compares.
type Outcome struct {
	Exit    int32
	Faulted bool
	Out     string
	Post    string
}

func (o Outcome) String() string {
	return fmt.Sprintf("exit=%d faulted=%v out=%q post=%q", o.Exit, o.Faulted, o.Out, o.Post)
}

// Run builds a fresh host for mod, applies the case's setup, executes
// run in it, and digests the outcome.
func (c *Case) Run(mod *ovm.Module, run func(h *core.Host) (int32, bool, error)) (Outcome, error) {
	h, err := core.NewHost(mod, core.RunConfig{})
	if err != nil {
		return Outcome{}, err
	}
	if c.Setup != nil {
		if err := c.Setup(h, mod); err != nil {
			return Outcome{}, err
		}
	}
	exit, faulted, err := run(h)
	if err != nil {
		return Outcome{}, err
	}
	o := Outcome{Exit: exit, Faulted: faulted, Out: h.Output()}
	if c.Post != nil {
		o.Post, err = c.Post(h, mod)
		if err != nil {
			return Outcome{}, err
		}
	}
	return o, nil
}

// RunInterp produces the case's interpreter reference outcome for mod.
func (c *Case) RunInterp(mod *ovm.Module) (Outcome, error) {
	return c.Run(mod, func(h *core.Host) (int32, bool, error) {
		res, err := h.RunInterp()
		return res.ExitCode, res.Faulted, err
	})
}

// ExampleCases mirrors the programs shipped in examples/: quickstart's
// fib, docscript's chart renderer, mailfilter's message scorer, and
// faultinject's handler probe (run unprotected here — its protected
// variant, which requires SFI off, is covered by
// internal/interp/exception_parity_test.go).
func ExampleCases() []Case {
	o2 := cc.Options{OptLevel: 2}
	return []Case{
		{
			Name: "quickstart-fib",
			Opts: o2,
			Files: []core.SourceFile{{Name: "fib.c", Src: `
int fib(int n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }

int main(void) {
	int i;
	_puts("fib: ");
	for (i = 1; i <= 10; i++) {
		_print_int(fib(i));
		_putc(' ');
	}
	_putc('\n');
	return fib(10);
}
`}},
		},
		{
			Name: "docscript-chart",
			Opts: o2,
			Files: []core.SourceFile{{Name: "chart.c", Src: `
int values[16];
int nvalues;
char canvas[16 * 34];

void render(void) {
	int row, col, width;
	for (row = 0; row < nvalues; row++) {
		char *line = canvas + row * 34;
		width = values[row];
		if (width > 30) width = 30;
		if (width < 0) width = 0;
		line[0] = '|';
		for (col = 0; col < width; col++) line[1 + col] = '#';
		line[1 + width] = 0;
	}
}

int main(void) {
	render();
	return nvalues;
}
`}},
			Setup: func(h *core.Host, mod *ovm.Module) error {
				data := []uint32{3, 7, 12, 19, 27, 30, 22, 14, 6, 2}
				val, err := SymAddr(mod, "values")
				if err != nil {
					return err
				}
				for i, v := range data {
					if f := h.Mem.StoreU32(val+uint32(i*4), v); f != nil {
						return f
					}
				}
				nv, err := SymAddr(mod, "nvalues")
				if err != nil {
					return err
				}
				if f := h.Mem.StoreU32(nv, uint32(len(data))); f != nil {
					return f
				}
				return nil
			},
			Post: func(h *core.Host, mod *ovm.Module) (string, error) {
				canvas, err := SymAddr(mod, "canvas")
				if err != nil {
					return "", err
				}
				out := ""
				for row := 0; row < 10; row++ {
					line, f := h.Mem.ReadCString(canvas+uint32(row*34), 34)
					if f != nil {
						return "", f
					}
					out += line + "\n"
				}
				return out, nil
			},
		},
		{
			Name: "mailfilter-score",
			Opts: o2,
			Files: []core.SourceFile{{Name: "filter.c", Src: `
int score(char *msg, int len) {
	int i, bangs = 0, urgent = 0;
	for (i = 0; i < len; i++) {
		if (msg[i] == '!') bangs++;
		if (msg[i] == 'U' && i + 5 < len &&
		    msg[i+1] == 'R' && msg[i+2] == 'G' &&
		    msg[i+3] == 'E' && msg[i+4] == 'N' && msg[i+5] == 'T')
			urgent = 1;
	}
	return urgent * 10 + bangs;
}

char buf[512];
int len;

int main(void) {
	return score(buf, len);
}
`}},
			Setup: func(h *core.Host, mod *ovm.Module) error {
				msg := "URGENT: wire funds now!!!"
				buf, err := SymAddr(mod, "buf")
				if err != nil {
					return err
				}
				if f := h.Mem.WriteBytes(buf, []byte(msg)); f != nil {
					return f
				}
				ln, err := SymAddr(mod, "len")
				if err != nil {
					return err
				}
				if f := h.Mem.StoreU32(ln, uint32(len(msg))); f != nil {
					return f
				}
				return nil
			},
		},
		{
			Name: "faultinject-probe",
			Opts: cc.Options{OptLevel: 1},
			Files: []core.SourceFile{{Name: "probe.c", Src: `
int faults;
int done;

void on_fault(void) {
	faults = faults + 1;
	done = 1;
	_puts("module: caught access violation, recovering\n");
	_exit(40 + faults);
}

char page[8192];

int main(void) {
	_set_handler((int)on_fault);
	_puts("module: probing the page...\n");
	page[4096] = 1;
	return 0;
}
`}},
		},
	}
}

// BenchCases builds the four paper workloads at the given scale.
func BenchCases(scale int) ([]Case, error) {
	var cases []Case
	for _, name := range bench.WorkloadNames {
		files, err := bench.Sources(name, scale)
		if err != nil {
			return nil, err
		}
		cases = append(cases, Case{
			Name:  "bench-" + name,
			Files: files,
			Opts:  cc.Options{OptLevel: 2},
		})
	}
	return cases, nil
}
