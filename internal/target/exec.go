package target

import (
	"fmt"
	"math"
	"sync/atomic"

	"omniware/internal/hostapi"
	"omniware/internal/seg"
)

// ErrBudget and ErrInterrupted alias the hostapi sentinels both
// executors wrap, so callers holding only this package can still
// classify run terminations with errors.Is.
var (
	ErrBudget      = hostapi.ErrBudget
	ErrInterrupted = hostapi.ErrInterrupted
)

// Exception kind codes delivered in r1 to a module's access-violation
// handler; the values match internal/interp's ExcKind codes so a
// module sees the same ABI under interpretation and translation.
const (
	excUnmapped  = 1
	excProt      = 2
	excUnaligned = 3
	excDivZero   = 4
	excBadJump   = 5
	excBreak     = 6
)

func faultKind(f *seg.Fault) uint32 {
	switch f.Kind {
	case seg.FaultUnmapped:
		return excUnmapped
	case seg.FaultProt:
		return excProt
	default:
		return excUnaligned
	}
}

// Sim executes a target Program over a segmented address space. It
// simulates the architectural register file, the pipeline cost model
// of its Machine, and the delay-slot semantics of the delay-slot
// architectures; it implements hostapi.CPU so syscalls see the OmniVM
// register state through the machine's register mapping.
type Sim struct {
	M    *Machine
	Prog *Program
	Mem  *seg.Memory
	Env  *hostapi.Env

	// MaxInsts bounds execution (0 = unlimited); exceeding it returns
	// an error mentioning "budget".
	MaxInsts uint64

	// Interrupt, when non-nil, is polled every few thousand executed
	// instructions; once it reports true, Run aborts with an error
	// mentioning "interrupted". The serving layer's per-job timeout
	// watchdog sets it from another goroutine.
	Interrupt *atomic.Bool

	// StoreTrace, when non-nil, observes every store the program
	// itself issues (plain stores and x86 read-modify-write MemDst
	// forms; runtime writes such as syscall results and exception
	// delivery are not program stores and are not traced). faulted
	// reports whether the segment layer refused the access. The SFI
	// differential harness uses this as its soundness oracle: a
	// verifier-accepted program must never complete a store outside
	// its data segment.
	StoreTrace func(addr, size uint32, faulted bool)

	r  [32]uint32  // integer file
	f  [32]float64 // FP file (indexed by reg-32)
	ia uint32      // latched integer compare operands
	ib uint32
	fa float64 // latched FP compare operands
	fb float64

	pc       int32
	insts    uint64
	nextPoll uint64 // insts threshold for the next Interrupt check
	counts   [NumCats]uint64
	pipe     pipe
}

// New prepares a simulator for one run of prog. The OmniVM stack
// pointer and return-address images are initialized exactly as the
// interpreter initializes them.
func New(m *Machine, prog *Program, mem *seg.Memory, env *hostapi.Env) *Sim {
	s := &Sim{M: m, Prog: prog, Mem: mem, Env: env, pc: prog.Entry}
	s.pipe.init(m)
	s.SetIntReg(14, env.Layout.StackTop) // OmniVM sp
	s.SetIntReg(15, 0x7fffffff)          // returning from entry halts
	return s
}

// Reset reinitializes a simulator in place — New without the
// allocation, for callers that embed a Sim and reuse it across runs
// (the serving layer's pooled hosts). The zero-value assignment
// clears every piece of run state (registers, counters, pipeline
// clock); the tail mirrors New exactly.
func (s *Sim) Reset(m *Machine, prog *Program, mem *seg.Memory, env *hostapi.Env) {
	*s = Sim{M: m, Prog: prog, Mem: mem, Env: env, pc: prog.Entry}
	s.pipe.init(m)
	s.SetIntReg(14, env.Layout.StackTop)
	s.SetIntReg(15, 0x7fffffff)
}

// regSaveAddr is the memory slot of OmniVM integer register i.
func (s *Sim) regSaveAddr(i int) uint32 {
	return s.Env.Layout.RegSave + IntSlotOffset(i)
}

// IntReg returns OmniVM integer register i (hostapi.CPU).
func (s *Sim) IntReg(i int) uint32 {
	if r := s.M.OmniInt[i]; r != NoReg {
		return s.r[r]
	}
	v, _ := s.Mem.LoadU32(s.regSaveAddr(i))
	return v
}

// SetIntReg sets OmniVM integer register i (writes to r0 discarded).
func (s *Sim) SetIntReg(i int, v uint32) {
	if i == 0 {
		return
	}
	if r := s.M.OmniInt[i]; r != NoReg {
		s.r[r] = v
		return
	}
	s.Mem.StoreU32(s.regSaveAddr(i), v)
}

// FPReg returns OmniVM FP register i.
func (s *Sim) FPReg(i int) float64 {
	if r := s.M.OmniFP[i]; r != NoReg {
		return s.f[r-32]
	}
	v, _ := s.Mem.LoadU64(s.Env.Layout.RegSave + FPSlotOffset(i))
	return math.Float64frombits(v)
}

// SetFPReg sets OmniVM FP register i.
func (s *Sim) SetFPReg(i int, v float64) {
	if r := s.M.OmniFP[i]; r != NoReg {
		s.f[r-32] = v
		return
	}
	s.Mem.StoreU64(s.Env.Layout.RegSave+FPSlotOffset(i), math.Float64bits(v))
}

// Cycles returns elapsed simulated cycles.
func (s *Sim) Cycles() uint64 { return s.pipe.clock }

// reg reads integer register r (NoReg reads as 0, covering absolute
// addressing and the zero-register image).
func (s *Sim) reg(r Reg) uint32 {
	if r == NoReg {
		return 0
	}
	return s.r[r]
}

// setR writes integer register r; writes to NoReg and to the
// hardwired zero register are discarded.
func (s *Sim) setR(r Reg, v uint32) {
	if r == NoReg || r == s.M.ZeroReg {
		return
	}
	s.r[r] = v
}

func (s *Sim) fp(r Reg) float64 {
	if r < 32 {
		return 0
	}
	return s.f[r-32]
}

func (s *Sim) setF(r Reg, v float64) {
	if r >= 32 {
		s.f[r-32] = v
	}
}

func (s *Sim) result(exit int32, faulted bool, fault string) Result {
	return Result{
		ExitCode: exit,
		Insts:    s.insts,
		Cycles:   s.Cycles(),
		Counts:   s.counts,
		Faulted:  faulted,
		Fault:    fault,
	}
}

// exception delivers an access violation to the module's registered
// handler, or terminates the run. src is the faulting instruction's
// OmniVM index (what the handler sees in r3).
func (s *Sim) exception(kind, addr uint32, src int32, desc string) (Result, bool) {
	h := s.Env.Handler
	var to int32 = -1
	if o2n := s.Prog.OmniToNative; o2n != nil {
		if h >= 0 && int(h) < len(o2n) {
			to = o2n[h]
		}
	} else if h >= 0 && int(h) < len(s.Prog.Code) {
		to = h
	}
	if to < 0 {
		return s.result(-1, true, desc), true
	}
	s.SetIntReg(1, kind)
	s.SetIntReg(2, addr)
	s.SetIntReg(3, uint32(src))
	s.pc = to
	return Result{}, false
}

// account charges one executed instruction to the statistics and the
// pipeline model.
func (s *Sim) account(in *Inst) {
	s.insts++
	s.counts[in.Cat]++
	s.pipe.issue(in)
}

// Run executes until halt, exit, an unhandled exception, or the
// instruction budget.
func (s *Sim) Run() (Result, error) {
	code := s.Prog.Code
	n := int32(len(code))
	for {
		if s.MaxInsts > 0 && s.insts >= s.MaxInsts {
			return Result{}, fmt.Errorf("target/%s: %w (%d) at pc=%d", s.M.Name, hostapi.ErrBudget, s.MaxInsts, s.pc)
		}
		// A threshold (not insts&mask == 0) because delay-slot machines
		// account two instructions per branch iteration: an exact-match
		// poll can step over every multiple of the mask and never fire.
		if s.Interrupt != nil && s.insts >= s.nextPoll {
			s.nextPoll = s.insts + 0x1000
			if s.Interrupt.Load() {
				return Result{}, fmt.Errorf("target/%s: %w at pc=%d after %d instructions", s.M.Name, hostapi.ErrInterrupted, s.pc, s.insts)
			}
		}
		if s.pc < 0 || s.pc >= n {
			if res, done := s.exception(excBadJump, uint32(s.pc), s.pc, fmt.Sprintf("target/%s: pc %d out of code", s.M.Name, s.pc)); done {
				return res, nil
			}
			continue
		}
		in := &code[s.pc]
		op := in.Op

		// Control transfers (with delay-slot execution on the
		// delay-slot machines); everything else is a simple step.
		if op.IsBranch() || op.IsJump() {
			s.account(in)
			taken, tgt, kind, addr := s.resolve(in)
			if kind != 0 {
				if res, done := s.exception(kind, addr, in.Src, fmt.Sprintf("target/%s: bad indirect target %#x", s.M.Name, addr)); done {
					return res, nil
				}
				continue
			}
			next := s.pc + 1
			if s.M.HasDelaySlot {
				next = s.pc + 2
				if s.pc+1 < n {
					slot := &code[s.pc+1]
					if slot.Op.IsBranch() || slot.Op.IsJump() || slot.Op == Syscall {
						return Result{}, fmt.Errorf("target/%s: control transfer in delay slot at %d", s.M.Name, s.pc+1)
					}
					s.account(slot)
					if kind, addr, fault := s.step(slot); fault {
						if res, done := s.exception(kind, addr, slot.Src, fmt.Sprintf("target/%s: fault in delay slot at %d", s.M.Name, s.pc+1)); done {
							return res, nil
						}
						continue
					}
				}
			}
			if taken {
				next = tgt
			}
			s.pc = next
			continue
		}

		switch op {
		case Syscall:
			s.account(in)
			if err := s.Env.Syscall(in.Imm, s); err != nil {
				return Result{}, fmt.Errorf("target/%s: pc=%d: %w", s.M.Name, s.pc, err)
			}
			if s.Env.Exited {
				return s.result(s.Env.ExitCode, false, ""), nil
			}
			s.pc++
		case Break:
			s.account(in)
			if res, done := s.exception(excBreak, uint32(s.pc), in.Src, fmt.Sprintf("target/%s: breakpoint at %d", s.M.Name, s.pc)); done {
				return res, nil
			}
		case Halt:
			s.account(in)
			return s.result(int32(s.IntReg(1)), false, ""), nil
		default:
			s.account(in)
			if kind, addr, fault := s.step(in); fault {
				if res, done := s.exception(kind, addr, in.Src, fmt.Sprintf("target/%s: memory fault at %#x (pc=%d)", s.M.Name, addr, s.pc)); done {
					return res, nil
				}
				continue
			}
			s.pc++
		}
	}
}

// resolve evaluates a branch or jump: whether it is taken, its target
// index, and (for indirect transfers) a pending bad-jump exception.
func (s *Sim) resolve(in *Inst) (taken bool, tgt int32, excKind, excAddr uint32) {
	r := &s.r
	switch in.Op {
	case Bcc:
		return s.intCC(in.CC), in.Target, 0, 0
	case FBcc:
		return fpCC(in.CC, s.fa, s.fb), in.Target, 0, 0
	case Beq:
		return s.reg(in.Rs1) == s.reg(in.Rs2), in.Target, 0, 0
	case Bne:
		return s.reg(in.Rs1) != s.reg(in.Rs2), in.Target, 0, 0
	case Beqz:
		return s.reg(in.Rs1) == 0, in.Target, 0, 0
	case Bnez:
		return s.reg(in.Rs1) != 0, in.Target, 0, 0
	case Bltz:
		return int32(s.reg(in.Rs1)) < 0, in.Target, 0, 0
	case Blez:
		return int32(s.reg(in.Rs1)) <= 0, in.Target, 0, 0
	case Bgtz:
		return int32(s.reg(in.Rs1)) > 0, in.Target, 0, 0
	case Bgez:
		return int32(s.reg(in.Rs1)) >= 0, in.Target, 0, 0
	case J:
		return true, in.Target, 0, 0
	case Jal:
		s.setR(in.Rd, uint32(in.Imm))
		return true, in.Target, 0, 0
	case Jr:
		return s.indirect(r[in.Rs1])
	case Jalr:
		v := r[in.Rs1] // read before the link write: jalr rd, rd is legal
		s.setR(in.Rd, uint32(in.Imm))
		return s.indirect(v)
	}
	return false, 0, 0, 0
}

// indirect maps a runtime code address (an OmniVM index for translated
// programs, a native index otherwise) to a native instruction index.
func (s *Sim) indirect(v uint32) (bool, int32, uint32, uint32) {
	if o2n := s.Prog.OmniToNative; o2n != nil {
		if v >= uint32(len(o2n)) {
			return false, 0, excBadJump, v
		}
		return true, o2n[v], 0, 0
	}
	return true, int32(v), 0, 0
}

func (s *Sim) intCC(cc CC) bool {
	a, b := s.ia, s.ib
	switch cc {
	case CCEq:
		return a == b
	case CCNe:
		return a != b
	case CCLt:
		return int32(a) < int32(b)
	case CCLe:
		return int32(a) <= int32(b)
	case CCGt:
		return int32(a) > int32(b)
	case CCGe:
		return int32(a) >= int32(b)
	case CCLtU:
		return a < b
	case CCLeU:
		return a <= b
	case CCGtU:
		return a > b
	case CCGeU:
		return a >= b
	}
	return false
}

func fpCC(cc CC, a, b float64) bool {
	switch cc {
	case CCEq:
		return a == b
	case CCNe:
		return a != b
	case CCLt, CCLtU:
		return a < b
	case CCLe, CCLeU:
		return a <= b
	case CCGt, CCGtU:
		return a > b
	case CCGe, CCGeU:
		return a >= b
	}
	return false
}

// effAddr computes a load/store address.
func (s *Sim) effAddr(in *Inst) uint32 {
	if in.Indexed {
		return s.reg(in.Rs1) + s.reg(in.Rs2)
	}
	return s.reg(in.Rs1) + uint32(in.Imm)
}

// step executes one non-control instruction. It returns a pending
// exception (kind, addr) with fault=true if a memory access failed or
// a division trapped.
func (s *Sim) step(in *Inst) (kind, addr uint32, fault bool) {
	// The x86 register-memory forms carry ordinary ALU opcodes
	// (register or immediate form) with a memory operand flag.
	if in.MemSrc || in.MemDst {
		return s.memALU(in)
	}
	switch in.Op {
	case Nop:

	// Three-register ALU.
	case Add:
		s.setR(in.Rd, s.reg(in.Rs1)+s.reg(in.Rs2))
	case Sub:
		s.setR(in.Rd, s.reg(in.Rs1)-s.reg(in.Rs2))
	case Mul:
		s.setR(in.Rd, uint32(int32(s.reg(in.Rs1))*int32(s.reg(in.Rs2))))
	case Div, DivU, Rem, RemU:
		b := s.reg(in.Rs2)
		if b == 0 {
			return excDivZero, 0, true
		}
		a := s.reg(in.Rs1)
		switch in.Op {
		case Div:
			s.setR(in.Rd, uint32(int32(a)/int32(b)))
		case DivU:
			s.setR(in.Rd, a/b)
		case Rem:
			s.setR(in.Rd, uint32(int32(a)%int32(b)))
		case RemU:
			s.setR(in.Rd, a%b)
		}
	case And:
		s.setR(in.Rd, s.reg(in.Rs1)&s.reg(in.Rs2))
	case Or:
		s.setR(in.Rd, s.reg(in.Rs1)|s.reg(in.Rs2))
	case Xor:
		s.setR(in.Rd, s.reg(in.Rs1)^s.reg(in.Rs2))
	case Sll:
		s.setR(in.Rd, s.reg(in.Rs1)<<(s.reg(in.Rs2)&31))
	case Srl:
		s.setR(in.Rd, s.reg(in.Rs1)>>(s.reg(in.Rs2)&31))
	case Sra:
		s.setR(in.Rd, uint32(int32(s.reg(in.Rs1))>>(s.reg(in.Rs2)&31)))
	case Slt:
		s.setR(in.Rd, b2u(int32(s.reg(in.Rs1)) < int32(s.reg(in.Rs2))))
	case Sltu:
		s.setR(in.Rd, b2u(s.reg(in.Rs1) < s.reg(in.Rs2)))

	// Register-immediate ALU. The x86 MemSrc and MemDst forms reuse
	// the ALU opcodes with a memory operand.
	case AddI:
		s.setR(in.Rd, s.reg(in.Rs1)+uint32(in.Imm))
	case AndI:
		s.setR(in.Rd, s.reg(in.Rs1)&uint32(in.Imm))
	case OrI:
		s.setR(in.Rd, s.reg(in.Rs1)|uint32(in.Imm))
	case XorI:
		s.setR(in.Rd, s.reg(in.Rs1)^uint32(in.Imm))
	case SllI:
		s.setR(in.Rd, s.reg(in.Rs1)<<(uint32(in.Imm)&31))
	case SrlI:
		s.setR(in.Rd, s.reg(in.Rs1)>>(uint32(in.Imm)&31))
	case SraI:
		s.setR(in.Rd, uint32(int32(s.reg(in.Rs1))>>(uint32(in.Imm)&31)))
	case SltI:
		s.setR(in.Rd, b2u(int32(s.reg(in.Rs1)) < in.Imm))
	case SltuI:
		s.setR(in.Rd, b2u(s.reg(in.Rs1) < uint32(in.Imm)))

	// Constants and moves.
	case MovI:
		s.setR(in.Rd, uint32(in.Imm))
	case Mov:
		s.setR(in.Rd, s.reg(in.Rs1))
	case Lui:
		s.setR(in.Rd, uint32(in.Imm)<<16)
	case Lea:
		s.setR(in.Rd, s.reg(in.Rs1)+uint32(in.Imm))
	case Neg:
		s.setR(in.Rd, -s.reg(in.Rs1))

	// Memory.
	case Lb, Lbu, Lh, Lhu, Lw, Lf, Ld, Sb, Sh, Sw, Sf, Sd:
		return s.mem(in, s.effAddr(in))

	// FP arithmetic: single-precision forms round through float32,
	// exactly as the interpreter does.
	case FaddS:
		s.setF(in.Rd, float64(float32(s.fp(in.Rs1))+float32(s.fp(in.Rs2))))
	case FsubS:
		s.setF(in.Rd, float64(float32(s.fp(in.Rs1))-float32(s.fp(in.Rs2))))
	case FmulS:
		s.setF(in.Rd, float64(float32(s.fp(in.Rs1))*float32(s.fp(in.Rs2))))
	case FdivS:
		s.setF(in.Rd, float64(float32(s.fp(in.Rs1))/float32(s.fp(in.Rs2))))
	case FaddD:
		s.setF(in.Rd, s.fp(in.Rs1)+s.fp(in.Rs2))
	case FsubD:
		s.setF(in.Rd, s.fp(in.Rs1)-s.fp(in.Rs2))
	case FmulD:
		s.setF(in.Rd, s.fp(in.Rs1)*s.fp(in.Rs2))
	case FdivD:
		s.setF(in.Rd, s.fp(in.Rs1)/s.fp(in.Rs2))
	case FnegS:
		s.setF(in.Rd, float64(-float32(s.fp(in.Rs1))))
	case FnegD:
		s.setF(in.Rd, -s.fp(in.Rs1))
	case FabsS:
		s.setF(in.Rd, float64(float32(math.Abs(s.fp(in.Rs1)))))
	case FabsD:
		s.setF(in.Rd, math.Abs(s.fp(in.Rs1)))
	case Fmov:
		s.setF(in.Rd, s.fp(in.Rs1))
	case MovWF:
		s.setF(in.Rd, float64(math.Float32frombits(s.reg(in.Rs1))))
	case MovFW:
		s.setR(in.Rd, math.Float32bits(float32(s.fp(in.Rs1))))

	case CvtWS:
		s.setF(in.Rd, float64(float32(int32(s.reg(in.Rs1)))))
	case CvtWD:
		s.setF(in.Rd, float64(int32(s.reg(in.Rs1))))
	case CvtSW:
		s.setR(in.Rd, uint32(truncToI32(float64(float32(s.fp(in.Rs1))))))
	case CvtDW:
		s.setR(in.Rd, uint32(truncToI32(s.fp(in.Rs1))))
	case CvtSD, CvtDS:
		s.setF(in.Rd, float64(float32(s.fp(in.Rs1))))

	// Compares latch operands; the CC on the branch decides how they
	// are interpreted.
	case Cmp:
		s.ia, s.ib = s.reg(in.Rs1), s.reg(in.Rs2)
	case CmpI, CmpUI:
		s.ia, s.ib = s.reg(in.Rs1), uint32(in.Imm)
	case Fcmp:
		s.fa, s.fb = s.fp(in.Rs1), s.fp(in.Rs2)
	}
	return 0, 0, false
}

// mem executes a plain load or store at addr.
func (s *Sim) mem(in *Inst, addr uint32) (uint32, uint32, bool) {
	var flt *seg.Fault
	switch in.Op {
	case Lb:
		var v uint8
		if v, flt = s.Mem.LoadU8(addr); flt == nil {
			s.setR(in.Rd, uint32(int32(int8(v))))
		}
	case Lbu:
		var v uint8
		if v, flt = s.Mem.LoadU8(addr); flt == nil {
			s.setR(in.Rd, uint32(v))
		}
	case Lh:
		var v uint16
		if v, flt = s.Mem.LoadU16(addr); flt == nil {
			s.setR(in.Rd, uint32(int32(int16(v))))
		}
	case Lhu:
		var v uint16
		if v, flt = s.Mem.LoadU16(addr); flt == nil {
			s.setR(in.Rd, uint32(v))
		}
	case Lw:
		var v uint32
		if v, flt = s.Mem.LoadU32(addr); flt == nil {
			s.setR(in.Rd, v)
		}
	case Lf:
		var v uint32
		if v, flt = s.Mem.LoadU32(addr); flt == nil {
			s.setF(in.Rd, float64(math.Float32frombits(v)))
		}
	case Ld:
		var v uint64
		if v, flt = s.Mem.LoadU64(addr); flt == nil {
			s.setF(in.Rd, math.Float64frombits(v))
		}
	case Sb:
		flt = s.Mem.StoreU8(addr, uint8(s.reg(in.Rd)))
	case Sh:
		flt = s.Mem.StoreU16(addr, uint16(s.reg(in.Rd)))
	case Sw:
		flt = s.Mem.StoreU32(addr, s.reg(in.Rd))
	case Sf:
		flt = s.Mem.StoreU32(addr, math.Float32bits(float32(s.fp(in.Rd))))
	case Sd:
		flt = s.Mem.StoreU64(addr, math.Float64bits(s.fp(in.Rd)))
	}
	if s.StoreTrace != nil && in.Op.IsStore() {
		s.StoreTrace(addr, storeSize(in.Op), flt != nil)
	}
	if flt != nil {
		return faultKind(flt), addr, true
	}
	return 0, 0, false
}

// storeSize is the byte width of a store opcode.
func storeSize(op Op) uint32 {
	switch op {
	case Sb:
		return 1
	case Sh:
		return 2
	case Sd:
		return 8
	}
	return 4
}

// memALU executes the x86 register-memory forms: MemSrc computes
// rd = op(rs1, mem[rs2+imm]); MemDst computes mem[imm] op= operand,
// where the operand is rs1 or (register-free form) Target.
func (s *Sim) memALU(in *Inst) (uint32, uint32, bool) {
	if in.MemSrc {
		addr := s.reg(in.Rs2) + uint32(in.Imm)
		v, flt := s.Mem.LoadU32(addr)
		if flt != nil {
			return faultKind(flt), addr, true
		}
		s.setR(in.Rd, aluApply(in.Op, s.reg(in.Rs1), v))
		return 0, 0, false
	}
	addr := uint32(in.Imm)
	v, flt := s.Mem.LoadU32(addr)
	if flt != nil {
		return faultKind(flt), addr, true
	}
	operand := uint32(in.Target)
	if in.Rs1 != NoReg {
		operand = s.reg(in.Rs1)
	}
	flt = s.Mem.StoreU32(addr, aluApply(in.Op, v, operand))
	if s.StoreTrace != nil {
		s.StoreTrace(addr, 4, flt != nil)
	}
	if flt != nil {
		return faultKind(flt), addr, true
	}
	return 0, 0, false
}

// aluApply evaluates a two-operand ALU operation for the
// register-memory forms (immediate opcodes take the same data path).
func aluApply(op Op, a, b uint32) uint32 {
	switch op {
	case Add, AddI, Lea:
		return a + b
	case Sub:
		return a - b
	case Mul:
		return uint32(int32(a) * int32(b))
	case And, AndI:
		return a & b
	case Or, OrI:
		return a | b
	case Xor, XorI:
		return a ^ b
	case Sll, SllI:
		return a << (b & 31)
	case Srl, SrlI:
		return a >> (b & 31)
	case Sra, SraI:
		return uint32(int32(a) >> (b & 31))
	case Slt, SltI:
		return b2u(int32(a) < int32(b))
	case Sltu, SltuI:
		return b2u(a < b)
	}
	return a
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// truncToI32 converts with the OmniVM's defined float-to-int
// semantics: truncation toward zero, out-of-range clamped, NaN to 0.
func truncToI32(v float64) int32 {
	if math.IsNaN(v) {
		return 0
	}
	if v >= math.MaxInt32 {
		return math.MaxInt32
	}
	if v <= math.MinInt32 {
		return math.MinInt32
	}
	return int32(v)
}
