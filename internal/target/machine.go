package target

// Machine describes one simulated target architecture: its register
// conventions (which physical registers carry the OmniVM register
// images, which are reserved for SFI state and translator scratch),
// its immediate range, and its pipeline cost model.
//
// Integer registers are numbered 0..31 in each architecture's own
// numbering; FP registers are numbered 32+i for architectural FP
// register i, so the two files never collide in dependence analysis.
type Machine struct {
	Name string
	Arch Arch

	// HasDelaySlot: every control transfer executes the following
	// instruction (MIPS, SPARC).
	HasDelaySlot bool

	// ZeroReg is a register hardwired to zero (NoReg on x86). Writes
	// to it are discarded, which is how the OmniVM r0 image works.
	ZeroReg Reg

	// OmniInt[i] is the physical register carrying OmniVM integer
	// register i, or NoReg when the image lives in the register-save
	// area (x86 keeps only 5 OmniVM registers in real registers).
	OmniInt [16]Reg
	// OmniFP[i] is the image of OmniVM FP register i.
	OmniFP [16]Reg

	// Registers the translator reserves (§3.2: "the runtime reserves
	// some registers for its own use"). SFIAddr is the dedicated
	// sandbox register; SFIMask/SFIBase/CodeMask/GP hold the segment
	// constants (NoReg on x86, which uses immediates); Scratch and
	// FScratch stage memory-resident values.
	SFIAddr  Reg
	SFIMask  Reg
	SFIBase  Reg
	CodeMask Reg
	GP       Reg
	Scratch  [2]Reg
	FScratch [2]Reg

	// MaxImm bounds the signed immediate field: v fits iff
	// -MaxImm <= v < MaxImm.
	MaxImm int32

	// Latency is the result latency of an operation in cycles (nil
	// means 1 for everything). The scheduler and the pipeline
	// simulator share this table.
	Latency func(Op) int

	// IssueWidth is the number of instructions the pipeline can issue
	// per cycle (1 for MIPS/SPARC, 2 for the 601 and the Pentium).
	IssueWidth int
	// BranchFolding: branches issue without consuming an issue slot
	// (the 601 folds branches out of the dispatch stream).
	BranchFolding bool
	// Pairing: Pentium U/V pairing rules apply (shifts U-only,
	// branches V-only, FP unpaired, AGI stalls).
	Pairing bool
}

// FitsImm reports whether v fits the architecture's immediate field.
func (m *Machine) FitsImm(v int32) bool { return v >= -m.MaxImm && v < m.MaxImm }

func fpRegs16() [16]Reg {
	var f [16]Reg
	for i := range f {
		f[i] = Reg(32 + i)
	}
	return f
}

// MIPSMachine models an R4400-class MIPS: single-issue, deep pipeline
// with a load-use interlock, architectural branch delay slots, 16-bit
// immediates. OmniVM registers map onto the o/s/t registers; r0 is the
// hardwired zero.
func MIPSMachine() *Machine {
	return &Machine{
		Name:         "mips",
		Arch:         MIPS,
		HasDelaySlot: true,
		ZeroReg:      0,
		OmniInt: [16]Reg{
			0,          // r0: zero
			2, 3, 4, 5, // r1-r4: v0, a0-a2
			6, 7, 8, 9, 10, // r5-r9: a3, t0-t3
			16, 17, 18, 19, // r10-r13: s0-s3 (callee-saved)
			29, // r14: sp
			31, // r15: ra
		},
		OmniFP:     fpRegs16(),
		SFIAddr:    12,
		SFIMask:    13,
		SFIBase:    20,
		CodeMask:   21,
		GP:         28,
		Scratch:    [2]Reg{24, 25},
		FScratch:   [2]Reg{48, 49},
		MaxImm:     32768,
		Latency:    mipsLatency,
		IssueWidth: 1,
	}
}

func mipsLatency(op Op) int {
	switch op {
	case Lb, Lbu, Lh, Lhu, Lw, Lf, Ld:
		return 2
	case Mul:
		return 4
	case Div, DivU, Rem, RemU:
		return 12
	case FaddS, FsubS, FaddD, FsubD, CvtWS, CvtWD, CvtSW, CvtDW, CvtSD, CvtDS:
		return 4
	case FmulS:
		return 7
	case FmulD:
		return 8
	case FdivS:
		return 23
	case FdivD:
		return 36
	}
	return 1
}

// SPARCMachine models a SuperSPARC-class machine: single-issue in our
// model, branch delay slots (with annulment), 13-bit immediates.
// OmniVM registers map onto %o and %l; the %g file holds the reserved
// state.
func SPARCMachine() *Machine {
	return &Machine{
		Name:         "sparc",
		Arch:         SPARC,
		HasDelaySlot: true,
		ZeroReg:      0,
		OmniInt: [16]Reg{
			0,            // r0: %g0
			8, 9, 10, 11, // r1-r4: %o0-%o3
			12, 13, 16, 17, 18, // r5-r9: %o4, %o5, %l0-%l2
			19, 20, 21, 22, // r10-r13: %l3-%l6 (callee-saved)
			14, // r14: %sp (%o6)
			15, // r15: %o7 (call linkage)
		},
		OmniFP:     fpRegs16(),
		SFIAddr:    1, // %g1
		SFIMask:    2,
		SFIBase:    3,
		CodeMask:   4,
		GP:         5,
		Scratch:    [2]Reg{6, 7},
		FScratch:   [2]Reg{48, 49},
		MaxImm:     4096,
		Latency:    sparcLatency,
		IssueWidth: 1,
	}
}

func sparcLatency(op Op) int {
	switch op {
	case Lb, Lbu, Lh, Lhu, Lw, Lf, Ld:
		return 2
	case Mul:
		return 5
	case Div, DivU, Rem, RemU:
		return 18
	case FaddS, FsubS, FaddD, FsubD, CvtWS, CvtWD, CvtSW, CvtDW, CvtSD, CvtDS:
		return 3
	case FmulS:
		return 3
	case FmulD:
		return 4
	case FdivS:
		return 9
	case FdivD:
		return 12
	}
	return 1
}

// PPCMachine models a PowerPC 601: dual-issue with branch folding, no
// delay slots, 16-bit immediates. r0 is treated as a pinned zero in
// our model (the translator never uses its base-register quirk).
func PPCMachine() *Machine {
	return &Machine{
		Name:    "ppc",
		Arch:    PPC,
		ZeroReg: 0,
		OmniInt: [16]Reg{
			0,          // r0: pinned zero in this model
			3, 4, 5, 6, // r1-r4: argument/return registers
			7, 8, 9, 10, 11, // r5-r9: caller-saved
			24, 25, 26, 27, // r10-r13: callee-saved
			1,  // r14: sp (r1 is the PowerPC stack pointer)
			13, // r15: return-address image
		},
		OmniFP:        fpRegs16(),
		SFIAddr:       14,
		SFIMask:       15,
		SFIBase:       16,
		CodeMask:      17,
		GP:            18,
		Scratch:       [2]Reg{19, 20},
		FScratch:      [2]Reg{48, 49},
		MaxImm:        32768,
		Latency:       ppcLatency,
		IssueWidth:    2,
		BranchFolding: true,
	}
}

func ppcLatency(op Op) int {
	switch op {
	case Lb, Lbu, Lh, Lhu, Lw, Lf, Ld:
		return 2
	case Mul:
		return 5
	case Div, DivU, Rem, RemU:
		return 36
	case FaddS, FsubS, FaddD, FsubD, CvtWS, CvtWD, CvtSW, CvtDW, CvtSD, CvtDS:
		return 4
	case FmulS:
		return 4
	case FmulD:
		return 5
	case FdivS:
		return 17
	case FdivD:
		return 31
	}
	return 1
}

// X86Machine models a Pentium: dual-issue U/V pairing with AGI stalls,
// two-operand instructions, 5 OmniVM registers in real registers and
// the rest memory-resident in the register-save area. Register
// numbering: eax=0 ecx=1 edx=2 ebx=3 esp=4 ebp=5 esi=6 edi=7.
func X86Machine() *Machine {
	return &Machine{
		Name:    "x86",
		Arch:    X86,
		ZeroReg: NoReg,
		OmniInt: [16]Reg{
			NoReg,      // r0: zero synthesized with immediates
			0, 1, 2, 3, // r1-r4: eax, ecx, edx, ebx
			NoReg, NoReg, NoReg, NoReg, NoReg, // r5-r9: memory-resident
			NoReg, NoReg, NoReg, NoReg, // r10-r13: memory-resident
			4,     // r14: esp
			NoReg, // r15: memory-resident return address
		},
		OmniFP: [16]Reg{
			32, 33, 34, 35, 36, 37, // f0-f5: FP stack modelled as flat regs
			NoReg, NoReg, NoReg, NoReg, NoReg, NoReg, NoReg, NoReg, NoReg, NoReg,
		},
		SFIAddr:    EBP, // dedicated sandbox register
		SFIMask:    NoReg,
		SFIBase:    NoReg,
		CodeMask:   NoReg,
		GP:         NoReg,
		Scratch:    [2]Reg{6, EDI}, // esi, edi
		FScratch:   [2]Reg{38, 39},
		MaxImm:     1 << 30, // full imm32; never the limiting factor
		Latency:    x86Latency,
		IssueWidth: 2,
		Pairing:    true,
	}
}

func x86Latency(op Op) int {
	switch op {
	case Mul:
		return 10
	case Div, DivU, Rem, RemU:
		return 25
	case FaddS, FsubS, FaddD, FsubD, CvtWS, CvtWD, CvtSW, CvtDW, CvtSD, CvtDS:
		return 3
	case FmulS, FmulD:
		return 3
	case FdivS:
		return 19
	case FdivD:
		return 39
	}
	return 1
}

// Machines returns the four simulated targets in the paper's order.
func Machines() []*Machine {
	return []*Machine{MIPSMachine(), SPARCMachine(), PPCMachine(), X86Machine()}
}

// ByName returns the machine named "mips", "sparc", "ppc" or "x86",
// or nil.
func ByName(name string) *Machine {
	for _, m := range Machines() {
		if m.Name == name {
			return m
		}
	}
	return nil
}
