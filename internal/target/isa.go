// Package target defines the four simulated native architectures the
// load-time translators and baseline compilers emit code for (§3.2,
// §4.1 of the paper): the instruction set common to the back ends, the
// per-architecture machine descriptors with their pipeline cost
// models, and a simulator that executes translated or natively
// compiled programs over the segmented address space.
//
// Target code addresses are instruction indices into Program.Code,
// exactly as OmniVM code addresses are indices into the module text;
// translated programs carry an omni-to-native index map so indirect
// branches (which transfer to OmniVM addresses held in registers)
// land on the right native instruction.
package target

import "fmt"

// Reg is a physical register number. Integer registers occupy 0..31
// and FP registers 32..63, so the two files never alias in dependence
// analysis. NoReg marks an absent operand.
type Reg int8

// NoReg marks an unused register operand (or an OmniVM register with
// no image in the architectural file, kept in the register-save area
// instead).
const NoReg Reg = -1

// x86 register numbers needed outside the descriptor (the native
// compiler adds these to its allocatable set).
const (
	EBP Reg = 5
	EDI Reg = 7
)

// Op is a target instruction opcode. The set is the union of what the
// four back ends need; each machine uses the subset its architecture
// has (e.g. only MIPS emits Beq, only x86 emits MemDst forms).
type Op uint8

const (
	Nop Op = iota

	// Three-register ALU.
	Add
	Sub
	Mul
	Div
	DivU
	Rem
	RemU
	And
	Or
	Xor
	Sll
	Srl
	Sra
	Slt
	Sltu

	// Register-immediate ALU.
	AddI
	AndI
	OrI
	XorI
	SllI
	SrlI
	SraI
	SltI
	SltuI

	// Constants and moves.
	MovI // rd = imm
	Mov  // rd = rs1
	Lui  // rd = imm << 16
	Lea  // rd = rs1 + imm (x86 address arithmetic)
	Neg  // rd = -rs1

	// Loads: rd = mem[rs1 + imm] (or mem[rs1 + rs2] with Indexed).
	Lb
	Lbu
	Lh
	Lhu
	Lw
	Lf // FP single: widened to double in the register
	Ld // FP double

	// Stores: mem[rs1 + imm] = rd (Rd is the value operand).
	Sb
	Sh
	Sw
	Sf
	Sd

	// FP arithmetic. Single-precision forms round through float32,
	// mirroring the OmniVM interpreter.
	FaddS
	FsubS
	FmulS
	FdivS
	FaddD
	FsubD
	FmulD
	FdivD
	FnegS
	FnegD
	FabsS
	FabsD
	Fmov

	// Bit moves between the files.
	MovWF // fd = float of bits rs1
	MovFW // rd = bits of float rs1

	// Conversions (W = int word, S = single, D = double).
	CvtWS
	CvtWD
	CvtSW
	CvtDW
	CvtSD
	CvtDS

	// Compares latching operands into the (simulated) condition state.
	Cmp
	CmpI
	CmpUI
	Fcmp

	// Conditional branches. Bcc/FBcc test the latched compare with the
	// instruction's CC; the rest are the MIPS compare-and-branch forms.
	Bcc
	FBcc
	Beq
	Bne
	Beqz
	Bnez
	Bltz
	Blez
	Bgtz
	Bgez

	// Unconditional transfers.
	J
	Jal
	Jr
	Jalr

	// System.
	Syscall
	Break
	Halt

	NumOps
)

var opNames = [NumOps]string{
	Nop: "nop",
	Add: "add", Sub: "sub", Mul: "mul", Div: "div", DivU: "divu",
	Rem: "rem", RemU: "remu", And: "and", Or: "or", Xor: "xor",
	Sll: "sll", Srl: "srl", Sra: "sra", Slt: "slt", Sltu: "sltu",
	AddI: "addi", AndI: "andi", OrI: "ori", XorI: "xori",
	SllI: "slli", SrlI: "srli", SraI: "srai", SltI: "slti", SltuI: "sltui",
	MovI: "movi", Mov: "mov", Lui: "lui", Lea: "lea", Neg: "neg",
	Lb: "lb", Lbu: "lbu", Lh: "lh", Lhu: "lhu", Lw: "lw", Lf: "lf", Ld: "ld",
	Sb: "sb", Sh: "sh", Sw: "sw", Sf: "sf", Sd: "sd",
	FaddS: "fadds", FsubS: "fsubs", FmulS: "fmuls", FdivS: "fdivs",
	FaddD: "faddd", FsubD: "fsubd", FmulD: "fmuld", FdivD: "fdivd",
	FnegS: "fnegs", FnegD: "fnegd", FabsS: "fabss", FabsD: "fabsd",
	Fmov: "fmov", MovWF: "movwf", MovFW: "movfw",
	CvtWS: "cvtws", CvtWD: "cvtwd", CvtSW: "cvtsw",
	CvtDW: "cvtdw", CvtSD: "cvtsd", CvtDS: "cvtds",
	Cmp: "cmp", CmpI: "cmpi", CmpUI: "cmpui", Fcmp: "fcmp",
	Bcc: "bcc", FBcc: "fbcc", Beq: "beq", Bne: "bne",
	Beqz: "beqz", Bnez: "bnez", Bltz: "bltz", Blez: "blez",
	Bgtz: "bgtz", Bgez: "bgez",
	J: "j", Jal: "jal", Jr: "jr", Jalr: "jalr",
	Syscall: "syscall", Break: "break", Halt: "halt",
}

func (op Op) String() string {
	if op < NumOps && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op%d", int(op))
}

// IsBranch reports whether op is a conditional branch.
func (op Op) IsBranch() bool { return op >= Bcc && op <= Bgez }

// IsJump reports whether op is an unconditional control transfer.
func (op Op) IsJump() bool { return op >= J && op <= Jalr }

// IsLoad reports whether op reads memory through the load unit.
func (op Op) IsLoad() bool { return op >= Lb && op <= Ld }

// IsStore reports whether op writes memory (Rd is the value operand).
func (op Op) IsStore() bool { return op >= Sb && op <= Sd }

// CC is a condition code tested by Bcc/FBcc against the latched
// compare operands. The order matches internal/cc/ir.CC so the native
// back end converts by value.
type CC uint8

const (
	CCEq CC = iota
	CCNe
	CCLt
	CCLe
	CCGt
	CCGe
	CCLtU
	CCLeU
	CCGtU
	CCGeU
)

var ccNames = [...]string{"eq", "ne", "lt", "le", "gt", "ge", "ltu", "leu", "gtu", "geu"}

func (cc CC) String() string {
	if int(cc) < len(ccNames) {
		return ccNames[cc]
	}
	return fmt.Sprintf("cc%d", int(cc))
}

// ExpCat classifies each translated instruction for the paper's
// Figure 1 expansion accounting: the base translation of the OmniVM
// instruction, extra address arithmetic, SFI sandboxing, large-constant
// loading, comparison synthesis, and unfilled branch delay slots.
type ExpCat uint8

const (
	CatBase ExpCat = iota
	CatAddr
	CatSFI
	CatLdi
	CatCmp
	CatBnop
	NumCats
)

var catNames = [NumCats]string{"base", "addr", "sfi", "ldi", "cmp", "bnop"}

func (c ExpCat) String() string {
	if c < NumCats {
		return catNames[c]
	}
	return fmt.Sprintf("cat%d", int(c))
}

// Inst is one target instruction.
type Inst struct {
	Op  Op
	Rd  Reg // destination; for stores, the value operand
	Rs1 Reg // first source / address base
	Rs2 Reg // second source / index register
	Imm int32
	// Target is a code address (instruction index) for branches and
	// jumps; for the x86 immediate-form MemDst it carries the operand.
	Target int32
	CC     CC
	Cat    ExpCat
	// Src is the OmniVM instruction index this instruction was
	// translated from (-1 for stub code); exceptions report it so a
	// module handler sees OmniVM addresses.
	Src int32
	// Sym is back-end-internal: a relocation mark consumed before the
	// program reaches the simulator.
	Sym string
	// x86 addressing forms: MemSrc reads the second ALU operand from
	// mem[rs2+imm]; MemDst read-modify-writes mem[imm] (absolute); on
	// PPC/SPARC Indexed addresses loads/stores with rs1+rs2.
	MemSrc  bool
	MemDst  bool
	Indexed bool
}

func (in Inst) String() string {
	s := in.Op.String()
	if in.Op == Bcc || in.Op == FBcc {
		s += "." + in.CC.String()
	}
	add := func(f string, args ...interface{}) { s += fmt.Sprintf(f, args...) }
	if in.Rd != NoReg {
		add(" r%d", int(in.Rd))
	}
	if in.Rs1 != NoReg {
		add(" r%d", int(in.Rs1))
	}
	if in.Rs2 != NoReg {
		add(" r%d", int(in.Rs2))
	}
	if in.Imm != 0 {
		add(" imm=%d", in.Imm)
	}
	if in.Target != 0 {
		add(" tgt=%d", in.Target)
	}
	if in.MemSrc {
		s += " [memsrc]"
	}
	if in.MemDst {
		s += " [memdst]"
	}
	if in.Indexed {
		s += " [indexed]"
	}
	return s
}

// Arch identifies a simulated architecture.
type Arch uint8

const (
	MIPS Arch = iota
	SPARC
	PPC
	X86
)

func (a Arch) String() string {
	switch a {
	case MIPS:
		return "mips"
	case SPARC:
		return "sparc"
	case PPC:
		return "ppc"
	case X86:
		return "x86"
	}
	return fmt.Sprintf("arch%d", int(a))
}

// Program is translated or natively compiled target code.
type Program struct {
	Arch Arch
	Code []Inst
	// Entry is the index execution starts at.
	Entry int32
	// OmniToNative maps OmniVM code addresses to native indices, for
	// indirect branches; nil for natively compiled programs (whose
	// code pointers are native indices already).
	OmniToNative []int32
	// Static counts the translator's emitted instructions by category
	// (Figure 1's static code expansion).
	Static [NumCats]int
}

// Result is the outcome of a simulated execution.
type Result struct {
	ExitCode int32
	Insts    uint64 // native instructions executed
	Cycles   uint64 // simulated pipeline cycles
	Counts   [NumCats]uint64
	Faulted  bool
	Fault    string
}

// Attribution groups dynamic instruction counts the way the paper's
// overhead tables do: application work (the base translation plus the
// address arithmetic, large-constant and compare-synthesis expansion
// any translator pays), sandboxing checks (the SFI cost the paper
// measures), and scheduling filler (unfilled delay slots / nops).
type Attribution struct {
	App     uint64 `json:"app"`
	Sandbox uint64 `json:"sandbox"`
	Sched   uint64 `json:"sched"`
}

// Attribution buckets the run's per-category counts.
func (r Result) Attribution() Attribution {
	return Attribution{
		App:     r.Counts[CatBase] + r.Counts[CatAddr] + r.Counts[CatLdi] + r.Counts[CatCmp],
		Sandbox: r.Counts[CatSFI],
		Sched:   r.Counts[CatBnop],
	}
}

// Total is the attributed instruction count.
func (a Attribution) Total() uint64 { return a.App + a.Sandbox + a.Sched }

// SandboxPct is the percentage of executed instructions spent on
// sandboxing checks (0 when nothing ran).
func (a Attribution) SandboxPct() float64 {
	t := a.Total()
	if t == 0 {
		return 0
	}
	return 100 * float64(a.Sandbox) / float64(t)
}

// IntSlotOffset is the offset of OmniVM integer register i's slot in
// the register-save area (used for memory-resident registers on x86
// and by the syscall bridge).
func IntSlotOffset(i int) uint32 { return uint32(i) * 4 }

// FPSlotOffset is the offset of OmniVM FP register i's slot in the
// register-save area. The FP slots follow the 16 integer slots.
func FPSlotOffset(i int) uint32 { return 64 + uint32(i)*8 }
