package target

import (
	"testing"

	"omniware/internal/hostapi"
)

func TestMachineDescriptors(t *testing.T) {
	ms := Machines()
	if len(ms) != 4 {
		t.Fatalf("want 4 machines, got %d", len(ms))
	}
	order := []string{"mips", "sparc", "ppc", "x86"}
	for i, m := range ms {
		if m.Name != order[i] {
			t.Errorf("machine %d: %q, want %q (paper order)", i, m.Name, order[i])
		}
		if ByName(m.Name) == nil {
			t.Errorf("ByName(%q) = nil", m.Name)
		}
		if m.IssueWidth < 1 {
			t.Errorf("%s: issue width %d", m.Name, m.IssueWidth)
		}
		if m.Latency == nil {
			t.Errorf("%s: no latency table", m.Name)
		}
		// Every OmniVM register image must be a valid physical register
		// or explicitly memory-resident; images must not collide with
		// the reserved SFI/scratch registers.
		reserved := map[Reg]bool{}
		for _, r := range []Reg{m.SFIAddr, m.SFIMask, m.SFIBase, m.CodeMask, m.GP, m.Scratch[0], m.Scratch[1]} {
			if r != NoReg {
				reserved[r] = true
			}
		}
		seen := map[Reg]bool{}
		for i, r := range m.OmniInt {
			if r == NoReg {
				continue
			}
			if r < 0 || r >= 32 {
				t.Errorf("%s: OmniInt[%d] = %d out of range", m.Name, i, r)
			}
			if reserved[r] {
				t.Errorf("%s: OmniInt[%d] = %d collides with a reserved register", m.Name, i, r)
			}
			if seen[r] && r != m.ZeroReg {
				t.Errorf("%s: OmniInt[%d] = %d mapped twice", m.Name, i, r)
			}
			seen[r] = true
		}
		for i, r := range m.OmniFP {
			if r != NoReg && (r < 32 || r >= 64) {
				t.Errorf("%s: OmniFP[%d] = %d outside the FP numbering", m.Name, i, r)
			}
		}
	}
	if ByName("vax") != nil {
		t.Error("ByName accepted an unknown machine")
	}
	// Fresh descriptors per call: mutating one must not leak.
	a, b := MIPSMachine(), MIPSMachine()
	a.MaxImm = 1
	if b.MaxImm == 1 {
		t.Error("Machines share state")
	}
}

func TestOpPredicates(t *testing.T) {
	for op := Nop; op < NumOps; op++ {
		n := 0
		for _, b := range []bool{op.IsBranch(), op.IsJump(), op.IsLoad(), op.IsStore()} {
			if b {
				n++
			}
		}
		if n > 1 {
			t.Errorf("%s: in multiple opcode classes", op)
		}
		if op.String() == "" {
			t.Errorf("op %d: empty name", op)
		}
	}
	for _, op := range []Op{Bcc, Beq, Bgez} {
		if !op.IsBranch() {
			t.Errorf("%s: not a branch", op)
		}
	}
	for _, op := range []Op{J, Jal, Jr, Jalr} {
		if !op.IsJump() {
			t.Errorf("%s: not a jump", op)
		}
	}
}

func TestFitsImm(t *testing.T) {
	m := MIPSMachine()
	for _, c := range []struct {
		v  int32
		ok bool
	}{{0, true}, {32767, true}, {-32768, true}, {32768, false}, {-32769, false}} {
		if got := m.FitsImm(c.v); got != c.ok {
			t.Errorf("FitsImm(%d) = %v, want %v", c.v, got, c.ok)
		}
	}
}

func TestRegSaveLayout(t *testing.T) {
	// Int slots are 4-byte, FP slots 8-byte starting after all 16 int
	// slots; no overlap.
	if IntSlotOffset(15)+4 > FPSlotOffset(0) {
		t.Errorf("int slots overlap FP slots: %d vs %d", IntSlotOffset(15), FPSlotOffset(0))
	}
	if FPSlotOffset(1)-FPSlotOffset(0) != 8 {
		t.Errorf("FP slot stride %d", FPSlotOffset(1)-FPSlotOffset(0))
	}
}

// charge runs insts through a machine's pipeline model and returns the
// cycle count including the final partially-filled issue slot.
func charge(m *Machine, insts []Inst) uint64 {
	var p pipe
	p.init(m)
	for i := range insts {
		p.issue(&insts[i])
	}
	c := p.clock
	if p.slot > 0 {
		c++
	}
	return c
}

func TestPipelineLoadUseInterlock(t *testing.T) {
	m := MIPSMachine()
	dep := []Inst{
		{Op: Lw, Rd: 2, Rs1: 29, Rs2: NoReg},
		{Op: Add, Rd: 3, Rs1: 2, Rs2: 2}, // waits a cycle on the load
	}
	indep := []Inst{
		{Op: Lw, Rd: 2, Rs1: 29, Rs2: NoReg},
		{Op: Add, Rd: 3, Rs1: 4, Rs2: 4},
	}
	if charge(m, dep) <= charge(m, indep) {
		t.Errorf("load-use interlock not charged: dep %d, indep %d", charge(m, dep), charge(m, indep))
	}
}

func TestPipelinePentiumPairing(t *testing.T) {
	m := X86Machine()
	pairable := []Inst{
		{Op: Add, Rd: 0, Rs1: 0, Rs2: 1},
		{Op: Add, Rd: 2, Rs1: 2, Rs2: 3},
	}
	if c := charge(m, pairable); c != 1 {
		t.Errorf("independent ALU pair took %d cycles, want 1", c)
	}
	shifts := []Inst{
		{Op: SllI, Rd: 0, Rs1: 0, Rs2: NoReg, Imm: 1},
		{Op: SllI, Rd: 2, Rs1: 2, Rs2: NoReg, Imm: 1},
	}
	if c := charge(m, shifts); c < 2 {
		t.Errorf("two U-only shifts paired: %d cycles", c)
	}
}

func TestPipelinePentiumAGIStall(t *testing.T) {
	m := X86Machine()
	agi := []Inst{
		{Op: Add, Rd: 0, Rs1: 0, Rs2: 1},
		{Op: Lw, Rd: 2, Rs1: 0, Rs2: NoReg}, // base computed the cycle before
	}
	noAgi := []Inst{
		{Op: Add, Rd: 0, Rs1: 0, Rs2: 1},
		{Op: Lw, Rd: 2, Rs1: 3, Rs2: NoReg},
	}
	if charge(m, agi) <= charge(m, noAgi) {
		t.Errorf("AGI stall not charged: agi %d, clean %d", charge(m, agi), charge(m, noAgi))
	}
}

func TestPipelinePPCDualIssueAndFolding(t *testing.T) {
	m := PPCMachine()
	two := []Inst{
		{Op: Add, Rd: 3, Rs1: 4, Rs2: 5},
		{Op: Add, Rd: 6, Rs1: 7, Rs2: 8},
	}
	if c := charge(m, two); c != 1 {
		t.Errorf("dual issue: %d cycles for 2 independent adds, want 1", c)
	}
	// A folded branch consumes no issue slot: add+add+branch still one
	// cycle.
	withBranch := append(append([]Inst{}, two...), Inst{Op: J, Rd: NoReg, Rs1: NoReg, Rs2: NoReg, Target: 0})
	if c := charge(m, withBranch); c != 1 {
		t.Errorf("branch folding: %d cycles, want 1", c)
	}
}

func TestDelaySlotControlInstructionFaults(t *testing.T) {
	// A control transfer in a delay slot is illegal on the delay-slot
	// machines; the executor must reject it rather than guess.
	m := MIPSMachine()
	prog := &Program{
		Arch: m.Arch,
		Code: []Inst{
			{Op: J, Rd: NoReg, Rs1: NoReg, Rs2: NoReg, Target: 2},
			{Op: J, Rd: NoReg, Rs1: NoReg, Rs2: NoReg, Target: 0}, // in the slot
			{Op: Halt, Rd: NoReg, Rs1: NoReg, Rs2: NoReg},
		},
	}
	env := &hostapi.Env{Layout: &hostapi.Layout{StackTop: 0x1000}}
	s := New(m, prog, nil, env)
	s.MaxInsts = 100
	if _, err := s.Run(); err == nil {
		t.Error("control transfer in a delay slot executed")
	}
}
