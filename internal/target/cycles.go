package target

// pipe is the cycle-accounting model: a register scoreboard plus each
// machine's issue discipline. It charges the stalls the paper's
// machines exhibit — the R4400 load-use interlock, SuperSPARC result
// latencies, 601 dual dispatch with branch folding, and Pentium U/V
// pairing with AGI stalls — without modelling caches (EXPERIMENTS.md
// measures a perfect-memory pipeline).
type pipe struct {
	m     *Machine
	clock uint64
	// avail[r] is the cycle register r's pending result becomes
	// usable; flag is the same for the latched compare operands.
	avail [64]uint64
	flag  uint64
	// slot counts issue slots consumed in the current cycle on the
	// multi-issue machines.
	slot int
}

func (p *pipe) init(m *Machine) { p.m = m }

// issue charges one instruction: stall until its operands are ready,
// consume an issue slot per the machine's discipline, and record when
// its result will be available.
func (p *pipe) issue(in *Inst) {
	m := p.m
	op := in.Op

	// Operand readiness.
	ready := p.clock
	use := func(r Reg) {
		if r >= 0 && p.avail[r] > ready {
			ready = p.avail[r]
		}
	}
	use(in.Rs1)
	use(in.Rs2)
	// Stores read Rd as the value operand. The Pentium's store buffer
	// picks the data up after issue, so stores there wait only on their
	// address registers.
	if op.IsStore() && !m.Pairing {
		use(in.Rd)
	}
	if op == Bcc || op == FBcc {
		if p.flag > ready {
			ready = p.flag
		}
	}
	// Pentium AGI stall: an address base register produced in the
	// previous cycle delays address generation by one more.
	if m.Pairing && (op.IsLoad() || op.IsStore() || op == Lea || in.MemSrc) {
		base := in.Rs1
		if in.MemSrc {
			base = in.Rs2
		}
		if base >= 0 && p.avail[base]+1 > ready {
			ready = p.avail[base] + 1
		}
	}
	if ready > p.clock {
		p.clock = ready
		p.slot = 0
	}

	// Issue.
	var at uint64
	switch {
	case m.Pairing:
		at = p.issuePentium(in)
	case m.IssueWidth > 1:
		at = p.clock
		if m.BranchFolding && (op.IsBranch() || op.IsJump()) {
			// Folded out of the dispatch stream: no slot consumed.
			break
		}
		p.slot++
		if p.slot >= m.IssueWidth {
			p.clock++
			p.slot = 0
		}
	default:
		at = p.clock
		p.clock++
	}

	// Result availability.
	lat := uint64(1)
	if m.Latency != nil {
		lat = uint64(m.Latency(op))
	}
	switch op {
	case Cmp, CmpI, CmpUI, Fcmp:
		// On the branch-folding 601 the CR result forwards straight to
		// the fold stage; elsewhere the branch sees it a cycle later.
		if m.BranchFolding {
			p.flag = at
		} else {
			p.flag = at + lat
		}
	default:
		if in.Rd >= 0 && !op.IsStore() {
			p.avail[in.Rd] = at + lat
		}
	}
}

// issuePentium applies the U/V pairing rules: simple register ALU,
// moves, leas, loads and stores pair; shifts issue only in U; branches
// end the pair; FP, multiply, divide and the register-memory forms
// issue alone (MemSrc +1 cycle, MemDst +2 for the read-modify-write).
func (p *pipe) issuePentium(in *Inst) uint64 {
	op := in.Op
	// Register-memory ALU forms: the load-op form overlaps its load in
	// the U pipe (no extra cycle beyond losing the pair); the
	// read-modify-write store form pays one extra cycle.
	extra := uint64(0)
	if in.MemDst {
		extra = 1
	}
	switch {
	case in.MemSrc:
		// Load-op: U pipe only, single issue slot.
		if p.slot > 0 {
			p.clock++
			p.slot = 0
		}
		at := p.clock
		p.slot = 1
		return at
	case extra > 0 || !pentiumPairable(op):
		if p.slot > 0 {
			p.clock++
			p.slot = 0
		}
		at := p.clock
		p.clock += 1 + extra
		return at
	case pentiumUOnly(op):
		if p.slot > 0 {
			p.clock++
			p.slot = 0
		}
		at := p.clock
		p.slot = 1 // occupies U; a pairable instruction may still fill V
		return at
	case op.IsBranch() || op.IsJump():
		// Branches pair only as the second (V) instruction and always
		// terminate the pair.
		at := p.clock
		p.clock++
		p.slot = 0
		return at
	default:
		at := p.clock
		p.slot++
		if p.slot >= 2 {
			p.clock++
			p.slot = 0
		}
		return at
	}
}

// pentiumPairable: the simple one-cycle integer instructions.
func pentiumPairable(op Op) bool {
	switch op {
	case Nop, Add, Sub, And, Or, Xor, Slt, Sltu,
		AddI, AndI, OrI, XorI, SltI, SltuI,
		Sll, Srl, Sra, SllI, SrlI, SraI,
		MovI, Mov, Lui, Lea, Neg,
		Lb, Lbu, Lh, Lhu, Lw,
		Sb, Sh, Sw,
		Cmp, CmpI, CmpUI:
		return true
	}
	return op.IsBranch() || op.IsJump()
}

// pentiumUOnly: shifts only issue in the U pipe.
func pentiumUOnly(op Op) bool {
	switch op {
	case Sll, Srl, Sra, SllI, SrlI, SraI:
		return true
	}
	return false
}
