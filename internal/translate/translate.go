// Package translate implements the Omniware load-time translators:
// OmniVM modules are expanded, one instruction at a time, into native
// code for a target machine, with software fault isolation checks
// inlined on unsafe stores and indirect branches (§1, §3). The
// translator performs only cheap machine-dependent optimization —
// local instruction scheduling, delay-slot filling, a global pointer,
// and peephole/FP-pipeline scheduling on x86 — because the heavy
// machine-independent optimization already happened in the compiler.
package translate

import (
	"fmt"
	"time"

	"omniware/internal/ovm"
	"omniware/internal/sched"
	"omniware/internal/target"
)

// Options selects translator behaviour. The zero value is the paper's
// "no translator optimizations" configuration (Table 5) without SFI.
type Options struct {
	SFI           bool // inline software fault isolation checks
	Schedule      bool // local instruction scheduling (MIPS, PPC; harmless elsewhere)
	GlobalPointer bool // use a global pointer for near-global access (SPARC benefit)
	Peephole      bool // x86 peephole + FP pipeline scheduling
	SFIHoist      bool // §4.4: elide redundant sandboxing of a base register reused
	//                    by consecutive stores in a block (expected optimization)
	// ReadSFI additionally sandboxes loads, giving read protection —
	// the capability §1 notes SFI supports but Omniware "does not yet
	// incorporate". Implemented here as the natural extension.
	ReadSFI bool
}

// Paper returns the configuration used for the headline results
// (Tables 1, 3, 4): all translator optimizations on.
func Paper(sfi bool) Options {
	return Options{SFI: sfi, Schedule: true, GlobalPointer: true, Peephole: true}
}

// SegInfo describes the module's segments for SFI mask construction.
type SegInfo struct {
	DataBase uint32 // segment base (power-of-two aligned)
	DataMask uint32 // offset mask within the data segment (2^k - 1)
	GPValue  uint32 // global-pointer value (0 to disable)
	RegSave  uint32 // base of the register-save area (memory-resident OmniVM regs)
}

// Translate converts a linked OmniVM module into a native program for
// mach.
func Translate(mod *ovm.Module, mach *target.Machine, si SegInfo, opt Options) (*target.Program, error) {
	prog, _, err := TranslateTimed(mod, mach, si, opt)
	return prog, err
}

// Timings reports where one load-time translation spent its
// wall-clock: instruction expansion (including SFI inlining),
// instruction scheduling / delay-slot filling, and the linearize-and-
// patch finish. The omnitrace layer attaches these to the translate
// span so a slow translation can be attributed to a phase.
type Timings struct {
	Expand   time.Duration
	Schedule time.Duration
	Finish   time.Duration
}

// TranslateTimed is Translate plus the per-phase timing report.
func TranslateTimed(mod *ovm.Module, mach *target.Machine, si SegInfo, opt Options) (*target.Program, Timings, error) {
	t := &tx{mod: mod, m: mach, si: si, opt: opt, regSaveBase: si.RegSave}
	prog, err := t.run()
	return prog, t.tim, err
}

type tx struct {
	mod *ovm.Module
	m   *target.Machine
	si  SegInfo
	opt Options

	cur         []target.Inst
	src         int32
	static      [target.NumCats]int
	regSaveBase uint32
	tim         Timings

	// SFI sandbox reuse (SFIHoist): the OmniVM base register whose
	// sandboxed form is currently live in SFIAddr, or -1.
	sbBase int
}

func (t *tx) emit(in target.Inst) {
	in.Src = t.src
	t.cur = append(t.cur, in)
	t.static[in.Cat]++
}

func (t *tx) schedEnabled() bool {
	if t.m.Arch == target.X86 {
		return t.opt.Peephole
	}
	return t.opt.Schedule
}

func (t *tx) run() (*target.Program, error) {
	text := t.mod.Text
	n := len(text)
	leaders := t.findLeaders()

	// Entry stub: load the dedicated registers (SFI masks, global
	// pointer) and jump to the module entry. On x86 the masks are
	// immediates and the stub is empty.
	var stub []target.Inst
	loadConst := func(r target.Reg, v uint32) {
		if r == target.NoReg {
			return
		}
		if t.m.Arch == target.X86 {
			stub = append(stub, target.Inst{Op: target.MovI, Rd: r, Rs1: target.NoReg, Rs2: target.NoReg, Imm: int32(v), Src: -1})
			return
		}
		hi, lo := split32(int32(v))
		stub = append(stub, target.Inst{Op: target.Lui, Rd: r, Rs1: target.NoReg, Rs2: target.NoReg, Imm: hi, Src: -1})
		if lo != 0 {
			stub = append(stub, target.Inst{Op: target.OrI, Rd: r, Rs1: r, Rs2: target.NoReg, Imm: lo, Src: -1})
		}
	}
	codeMask := nextPow2(uint32(n)) - 1
	if t.m.Arch != target.X86 {
		loadConst(t.m.SFIMask, t.si.DataMask)
		loadConst(t.m.SFIBase, t.si.DataBase)
		loadConst(t.m.CodeMask, codeMask)
	}
	if t.opt.GlobalPointer && t.si.GPValue != 0 && t.m.GP != target.NoReg {
		loadConst(t.m.GP, t.si.GPValue)
	}
	// The stub ends by jumping to the module entry (patched from an
	// OmniVM index below, like every other branch target).
	stub = append(stub, target.Inst{Op: target.J, Rd: target.NoReg, Rs1: target.NoReg, Rs2: target.NoReg, Target: t.mod.Entry, Src: -1})
	if t.m.HasDelaySlot {
		stub = append(stub, target.Inst{Op: target.Nop, Rd: target.NoReg, Rs1: target.NoReg, Rs2: target.NoReg, Src: -1})
	}

	// Expand block by block.
	type blk struct {
		omniStart int
		insts     []target.Inst
	}
	var blocks []blk
	phase := time.Now()
	for i := 0; i < n; {
		start := i
		t.cur = nil
		t.sbBase = -1
		end := i + 1
		for end < n && !leaders[end] {
			end++
		}
		for j := start; j < end; j++ {
			t.src = int32(j)
			if err := t.expand(text[j], j); err != nil {
				return nil, fmt.Errorf("translate/%s: omni %d (%s): %w", t.m.Name, j, text[j].String(), err)
			}
		}
		t.tim.Expand += time.Since(phase)
		phase = time.Now()
		insts := t.cur
		if t.schedEnabled() {
			insts = sched.Block(insts, t.m)
		}
		insts = sched.FillDelaySlot(insts, t.m, t.schedEnabled())
		t.tim.Schedule += time.Since(phase)
		phase = time.Now()
		blocks = append(blocks, blk{omniStart: start, insts: insts})
		i = end
	}

	// Linearize; build the omni->native map.
	finishStart := time.Now()
	o2n := make([]int32, int(codeMask)+1)
	code := append([]target.Inst(nil), stub...)
	blockNative := make([]int32, len(blocks))
	for bi := range blocks {
		blockNative[bi] = int32(len(code))
		code = append(code, blocks[bi].insts...)
	}
	// Map every omni index: leaders map to their block start;
	// non-leaders approximate to the containing block start (only
	// block-leader targets occur in well-formed modules).
	for bi := range blocks {
		start := blocks[bi].omniStart
		end := n
		if bi+1 < len(blocks) {
			end = blocks[bi+1].omniStart
		}
		for j := start; j < end; j++ {
			o2n[j] = blockNative[bi]
		}
	}
	// Pad the map to the power-of-two size with a trap.
	trap := int32(len(code))
	code = append(code, target.Inst{Op: target.Break, Rd: target.NoReg, Rs1: target.NoReg, Rs2: target.NoReg, Src: -1})
	for j := n; j < len(o2n); j++ {
		o2n[j] = trap
	}

	// Patch branch targets (they currently hold OmniVM indices).
	for i := range code {
		in := &code[i]
		if in.Op.IsBranch() || in.Op == target.J || in.Op == target.Jal {
			if in.Target >= 0 && int(in.Target) < n {
				in.Target = o2n[in.Target]
			}
		}
	}

	t.tim.Finish = time.Since(finishStart)
	return &target.Program{
		Arch:         t.m.Arch,
		Code:         code,
		Entry:        0, // stub runs first
		OmniToNative: o2n,
		Static:       t.static,
	}, nil
}

func (t *tx) findLeaders() []bool {
	text := t.mod.Text
	leaders := make([]bool, len(text))
	if len(text) == 0 {
		return leaders
	}
	leaders[0] = true
	if int(t.mod.Entry) < len(text) {
		leaders[t.mod.Entry] = true
	}
	mark := func(v int32) {
		if v >= 0 && int(v) < len(text) {
			leaders[v] = true
		}
	}
	for i, in := range text {
		switch in.Op.Format() {
		case ovm.FmtBrRR, ovm.FmtBrRI, ovm.FmtJmp, ovm.FmtJal:
			mark(in.Imm2)
			if i+1 < len(text) {
				leaders[i+1] = true
			}
		case ovm.FmtJr, ovm.FmtJalr:
			if i+1 < len(text) {
				leaders[i+1] = true
			}
		}
		switch in.Op {
		case ovm.HALT, ovm.BREAK:
			if i+1 < len(text) {
				leaders[i+1] = true
			}
		case ovm.LDA, ovm.LDI:
			// Any 32-bit constant that could be a code address is a
			// potential indirect target (function pointers).
			mark(in.Imm)
		}
	}
	for _, s := range t.mod.Symbols {
		if s.Section == ovm.SecText {
			mark(int32(s.Value))
		}
	}
	return leaders
}

// split32 decomposes v into (hi, lo) such that (hi<<16)+signext(lo) ==
// v with lo in [-32768, 32767], the standard lui/ori... actually
// lui/addi decomposition. We use an unsigned ori, so keep lo
// non-negative.
func split32(v int32) (hi, lo int32) {
	u := uint32(v)
	return int32(u >> 16), int32(u & 0xffff)
}

func nextPow2(v uint32) uint32 {
	p := uint32(1)
	for p < v {
		p <<= 1
	}
	return p
}
