package translate_test

import (
	"fmt"
	"testing"

	"omniware/internal/cc"
	"omniware/internal/core"
	"omniware/internal/target"
	"omniware/internal/translate"
)

// crossCheck compiles src and verifies that the interpreter and every
// (machine, options) combination produce the same exit code and output.
func crossCheck(t *testing.T, name, src string) {
	t.Helper()
	mod, err := core.BuildC([]core.SourceFile{{Name: name, Src: src}}, cc.Options{OptLevel: 2})
	if err != nil {
		t.Fatalf("%s: build: %v", name, err)
	}

	ih, err := core.NewHost(mod, core.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ih.RunInterp()
	if err != nil {
		t.Fatalf("%s: interp: %v", name, err)
	}
	if want.Faulted {
		t.Fatalf("%s: interp faulted: %s", name, want.Fault)
	}
	wantOut := ih.Output()

	opts := map[string]translate.Options{
		"noopt":     {},
		"sfi":       {SFI: true},
		"opt":       translate.Paper(false),
		"sfi+opt":   translate.Paper(true),
		"sfi+hoist": {SFI: true, Schedule: true, GlobalPointer: true, Peephole: true, SFIHoist: true},
		"sfi+read":  {SFI: true, Schedule: true, GlobalPointer: true, Peephole: true, ReadSFI: true},
	}
	for _, mach := range target.Machines() {
		for oname, o := range opts {
			h, err := core.NewHost(mod, core.RunConfig{})
			if err != nil {
				t.Fatal(err)
			}
			res, _, err := h.RunTranslated(mach, o)
			if err != nil {
				t.Fatalf("%s/%s/%s: %v", name, mach.Name, oname, err)
			}
			if res.Faulted {
				t.Fatalf("%s/%s/%s: faulted: %s", name, mach.Name, oname, res.Fault)
			}
			if res.ExitCode != want.ExitCode {
				t.Errorf("%s/%s/%s: exit %d, interp %d", name, mach.Name, oname, res.ExitCode, want.ExitCode)
			}
			if got := h.Output(); got != wantOut {
				t.Errorf("%s/%s/%s: output %q, interp %q", name, mach.Name, oname, got, wantOut)
			}
		}
	}
}

func TestCrossIntArith(t *testing.T) {
	crossCheck(t, "arith.c", `
int main(void) {
	int acc = 0;
	int i;
	for (i = 1; i <= 50; i++) {
		acc += i * i;
		acc ^= acc >> 3;
		acc = acc % 100000;
	}
	unsigned u = (unsigned)acc * 2654435761u;
	return (int)(u % 251);
}`)
}

func TestCrossMemory(t *testing.T) {
	crossCheck(t, "mem.c", `
int tab[64];
short stab[32];
char ctab[16];
int main(void) {
	int i;
	for (i = 0; i < 64; i++) tab[i] = i * 3;
	for (i = 0; i < 32; i++) stab[i] = (short)(i * -7);
	for (i = 0; i < 16; i++) ctab[i] = (char)(i * 17);
	int acc = 0;
	for (i = 0; i < 64; i += 5) acc += tab[i];
	for (i = 0; i < 32; i += 3) acc += stab[i];
	for (i = 0; i < 16; i += 2) acc += ctab[i];
	_print_int(acc);
	return acc & 0xff;
}`)
}

func TestCrossPointersAndCalls(t *testing.T) {
	crossCheck(t, "ptr.c", `
struct node { int v; struct node *next; };
struct node pool[10];
int sum(struct node *n) {
	int s = 0;
	while (n) { s += n->v; n = n->next; }
	return s;
}
int twice(int x) { return x * 2; }
int (*fp)(int) = twice;
int main(void) {
	int i;
	struct node *head = 0;
	for (i = 0; i < 10; i++) {
		pool[i].v = i + 1;
		pool[i].next = head;
		head = &pool[i];
	}
	return sum(head) + fp(6);
}`)
}

func TestCrossFloat(t *testing.T) {
	crossCheck(t, "fp.c", `
double poly(double x) { return 2.5*x*x - 3.0*x + 0.5; }
int main(void) {
	double acc = 0.0;
	float f = 1.5f;
	int i;
	for (i = 0; i < 20; i++) {
		acc += poly((double)i * 0.25);
		if (acc > 100.0) acc = acc / 2.0;
	}
	acc += (double)f;
	_print_int((int)(acc * 1000.0));
	return (int)acc;
}`)
}

func TestCrossRecursionAndSwitch(t *testing.T) {
	crossCheck(t, "rec.c", `
int fib(int n) { return n < 2 ? n : fib(n-1) + fib(n-2); }
int classify(int x) {
	switch (x & 7) {
	case 0: return 1;
	case 1: case 2: return 2;
	case 3: return 3;
	default: return 4;
	}
}
int main(void) {
	int acc = fib(14);
	int i;
	for (i = 0; i < 16; i++) acc += classify(i);
	return acc & 0x7fff;
}`)
}

func TestCrossStringsAndOutput(t *testing.T) {
	crossCheck(t, "str.c", `
int strlen_(char *s) { int n = 0; while (*s++) n++; return n; }
char buf[32];
int main(void) {
	char *msg = "omniware";
	int i;
	for (i = 0; msg[i]; i++) buf[i] = (char)(msg[i] - 32);
	buf[i] = 0;
	_puts(buf);
	_putc('\n');
	return strlen_(buf);
}`)
}

func TestCrossDivRem(t *testing.T) {
	crossCheck(t, "div.c", `
int main(void) {
	int acc = 0;
	int i;
	for (i = 1; i < 40; i++) {
		acc += 10000 / i;
		acc += 10000 % i;
		acc -= (-10000) / i;
	}
	unsigned u = 4000000000u;
	acc += (int)(u / 3u) & 0xffff;
	acc += (int)(u % 7u);
	return acc & 0xffff;
}`)
}

func TestCrossBigOffsets(t *testing.T) {
	// Large array forces 32-bit offsets beyond imm16/imm13 ranges.
	crossCheck(t, "big.c", `
int big[20000];
int main(void) {
	big[0] = 7;
	big[19999] = 35;
	big[10000] = big[0] + big[19999];
	return big[10000];
}`)
}

func TestCrossHeap(t *testing.T) {
	crossCheck(t, "heap.c", `
char *bump(int n) { return _sbrk(n); }
int main(void) {
	int *a = (int *)bump(400);
	int *b = (int *)bump(400);
	int i;
	for (i = 0; i < 100; i++) { a[i] = i; b[i] = 2 * i; }
	int acc = 0;
	for (i = 0; i < 100; i += 7) acc += a[i] + b[i];
	return acc & 0xff;
}`)
}

// SFI must contain a wild store: without SFI the simulator reports the
// raw fault; with SFI the store is forced into the module's own segment
// and execution completes.
func TestSFIContainsWildStore(t *testing.T) {
	src := `
int canary = 77;
int main(void) {
	int *wild = (int *)0x40000100; /* host segment */
	*wild = 999;
	return canary;
}`
	mod, err := core.BuildC([]core.SourceFile{{Name: "wild.c", Src: src}}, cc.Options{OptLevel: 1})
	if err != nil {
		t.Fatal(err)
	}
	host := make([]byte, 4096)
	for _, mach := range target.Machines() {
		// Without SFI the wild store reaches the (read-only) host
		// segment and faults.
		h, err := core.NewHost(mod, core.RunConfig{HostData: host})
		if err != nil {
			t.Fatal(err)
		}
		res, _, err := h.RunTranslated(mach, translate.Paper(false))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Faulted {
			t.Errorf("%s: wild store without SFI did not fault (exit %d)", mach.Name, res.ExitCode)
		}
		// With SFI the store is sandboxed into the module segment and
		// the program runs to completion; the host segment stays clean.
		h2, err := core.NewHost(mod, core.RunConfig{HostData: host})
		if err != nil {
			t.Fatal(err)
		}
		res2, _, err := h2.RunTranslated(mach, translate.Paper(true))
		if err != nil {
			t.Fatal(err)
		}
		if res2.Faulted {
			t.Errorf("%s: SFI store faulted: %s", mach.Name, res2.Fault)
		}
		if res2.ExitCode != 77 {
			t.Errorf("%s: exit %d", mach.Name, res2.ExitCode)
		}
		for i, b := range h2.HostSeg.Bytes() {
			if b != 0 {
				t.Fatalf("%s: host segment corrupted at %d", mach.Name, i)
			}
		}
	}
}

// Wild indirect jumps must stay inside the code segment under SFI.
func TestSFIContainsWildJump(t *testing.T) {
	src := `
int main(void) {
	int (*f)(void);
	f = (int (*)(void))123456789;
	return f();
}`
	mod, err := core.BuildC([]core.SourceFile{{Name: "wildjmp.c", Src: src}}, cc.Options{OptLevel: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, mach := range target.Machines() {
		h, err := core.NewHost(mod, core.RunConfig{MaxSteps: 200_000})
		if err != nil {
			t.Fatal(err)
		}
		// The sandboxed jump lands somewhere inside the code segment.
		// Any contained outcome is acceptable: a trap, a module fault,
		// a nonsense exit, or even an endless loop (cut off by the
		// budget). What must NOT happen is an escape, which would
		// surface as a Go-level panic or a write to another segment —
		// memory permissions catch that as a fault too.
		res, _, err := h.RunTranslated(mach, translate.Paper(true))
		if err == nil {
			_ = res
		}
	}
}

// Expansion statistics must be self-consistent: base count equals the
// dynamic OmniVM instruction count.
func TestExpansionAccounting(t *testing.T) {
	src := `
int tab[100];
int main(void) {
	int i, acc = 0;
	for (i = 0; i < 100; i++) tab[i] = i;
	for (i = 0; i < 100; i++) acc += tab[i];
	return acc & 0xff;
}`
	mod, err := core.BuildC([]core.SourceFile{{Name: "acct.c", Src: src}}, cc.Options{OptLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	ih, _ := core.NewHost(mod, core.RunConfig{})
	ires, err := ih.RunInterp()
	if err != nil {
		t.Fatal(err)
	}
	for _, mach := range target.Machines() {
		h, _ := core.NewHost(mod, core.RunConfig{})
		res, _, err := h.RunTranslated(mach, translate.Paper(true))
		if err != nil {
			t.Fatal(err)
		}
		var total uint64
		for _, c := range res.Counts {
			total += c
		}
		if total != res.Insts {
			t.Errorf("%s: category sum %d != insts %d", mach.Name, total, res.Insts)
		}
		base := res.Counts[target.CatBase]
		// The stub and nops from the entry are uncategorized base; allow
		// a small slop over the interpreter's instruction count.
		if base < ires.Steps || base > ires.Steps+64 {
			t.Errorf("%s: base count %d vs omni %d", mach.Name, base, ires.Steps)
		}
		if res.Counts[target.CatSFI] == 0 {
			t.Errorf("%s: no SFI instructions counted", mach.Name)
		}
	}
}

func TestTranslatorStaticStats(t *testing.T) {
	mod, err := core.BuildC([]core.SourceFile{{Name: "s.c", Src: "int g; int main(void){ int i; for(i=0;i<3;i++) g+=i; return g; }"}}, cc.Options{OptLevel: 1})
	if err != nil {
		t.Fatal(err)
	}
	h, _ := core.NewHost(mod, core.RunConfig{})
	prog, err := h.Translate(target.MIPSMachine(), translate.Paper(true))
	if err != nil {
		t.Fatal(err)
	}
	if prog.Static[target.CatBase] == 0 {
		t.Error("no static base instructions")
	}
	if len(prog.OmniToNative) < len(mod.Text) {
		t.Error("omni->native map too small")
	}
	if s := fmt.Sprint(prog.Code[0]); s == "" {
		t.Error("empty instruction rendering")
	}
}
