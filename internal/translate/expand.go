package translate

import (
	"fmt"

	"omniware/internal/ovm"
	"omniware/internal/target"
)

// Register helpers. On the RISC targets every OmniVM register has a
// dedicated native register; on x86 some OmniVM registers are
// memory-resident and are staged through scratch registers.

// slotAddr returns the absolute address of a memory-resident OmniVM
// integer register. The register-save area sits at the top of the
// module data segment; its address is DataBase-relative and known at
// translation time via SegInfo... the translator receives it through
// the layout captured in regSaveBase.
func (t *tx) intSlotImm(i int) int32 {
	return int32(t.regSaveBase + target.IntSlotOffset(i))
}

func (t *tx) fpSlotImm(i int) int32 {
	return int32(t.regSaveBase + target.FPSlotOffset(i))
}

// isMapped reports whether OmniVM integer register r has a native home.
func (t *tx) isMapped(r uint8) bool { return t.m.OmniInt[r] != target.NoReg }

// srcInt yields a native register holding OmniVM integer register r,
// loading from the save area into scratch[which] when memory-resident.
func (t *tx) srcInt(r uint8, which int, cat target.ExpCat) target.Reg {
	if m := t.m.OmniInt[r]; m != target.NoReg {
		return m
	}
	s := t.m.Scratch[which]
	t.emit(target.Inst{Op: target.Lw, Rd: s, Rs1: target.NoReg, Rs2: target.NoReg, Imm: t.intSlotImm(int(r)), Cat: cat})
	return s
}

// dstInt yields a native register to compute OmniVM register r into,
// and a flush that stores it back when memory-resident.
func (t *tx) dstInt(r uint8, cat target.ExpCat) (target.Reg, func()) {
	if int(r) == t.sbBase {
		// Redefining a register whose sandboxed form is cached
		// invalidates the cache (SFIHoist).
		t.sbBase = -1
	}
	if m := t.m.OmniInt[r]; m != target.NoReg {
		return m, func() {}
	}
	s := t.m.Scratch[0]
	return s, func() {
		t.emit(target.Inst{Op: target.Sw, Rd: s, Rs1: target.NoReg, Rs2: target.NoReg, Imm: t.intSlotImm(int(r)), Cat: cat})
	}
}

func (t *tx) srcFP(r uint8, which int) target.Reg {
	if m := t.m.OmniFP[r]; m != target.NoReg {
		return m
	}
	s := t.m.FScratch[which]
	t.emit(target.Inst{Op: target.Ld, Rd: s, Rs1: target.NoReg, Rs2: target.NoReg, Imm: t.fpSlotImm(int(r)), Cat: target.CatAddr})
	return s
}

func (t *tx) dstFP(r uint8) (target.Reg, func()) {
	if m := t.m.OmniFP[r]; m != target.NoReg {
		return m, func() {}
	}
	s := t.m.FScratch[0]
	return s, func() {
		t.emit(target.Inst{Op: target.Sd, Rd: s, Rs1: target.NoReg, Rs2: target.NoReg, Imm: t.fpSlotImm(int(r)), Cat: target.CatAddr})
	}
}

// loadImm materializes a 32-bit constant into reg, tagging extra
// instructions with cat.
func (t *tx) loadImm(reg target.Reg, v int32, cat target.ExpCat) {
	if t.m.Arch == target.X86 {
		t.emit(target.Inst{Op: target.MovI, Rd: reg, Rs1: target.NoReg, Rs2: target.NoReg, Imm: v, Cat: target.CatBase})
		return
	}
	if t.m.FitsImm(v) {
		t.emit(target.Inst{Op: target.AddI, Rd: reg, Rs1: t.zero(), Rs2: target.NoReg, Imm: v, Cat: target.CatBase})
		return
	}
	hi, lo := split32(v)
	t.emit(target.Inst{Op: target.Lui, Rd: reg, Rs1: target.NoReg, Rs2: target.NoReg, Imm: hi, Cat: target.CatBase})
	if lo != 0 {
		t.emit(target.Inst{Op: target.OrI, Rd: reg, Rs1: reg, Rs2: target.NoReg, Imm: lo, Cat: cat})
	}
}

func (t *tx) zero() target.Reg {
	if t.m.ZeroReg != target.NoReg {
		return t.m.ZeroReg
	}
	return target.NoReg
}

var aluOpMap = map[ovm.Opcode]target.Op{
	ovm.ADD: target.Add, ovm.SUB: target.Sub, ovm.MUL: target.Mul,
	ovm.DIV: target.Div, ovm.DIVU: target.DivU, ovm.REM: target.Rem,
	ovm.REMU: target.RemU, ovm.AND: target.And, ovm.OR: target.Or,
	ovm.XOR: target.Xor, ovm.SLL: target.Sll, ovm.SRL: target.Srl,
	ovm.SRA: target.Sra, ovm.SLT: target.Slt, ovm.SLTU: target.Sltu,
}

var aluImmMap = map[ovm.Opcode]target.Op{
	ovm.ADDI: target.AddI, ovm.ANDI: target.AndI, ovm.ORI: target.OrI,
	ovm.XORI: target.XorI, ovm.SLLI: target.SllI, ovm.SRLI: target.SrlI,
	ovm.SRAI: target.SraI, ovm.SLTI: target.SltI, ovm.SLTIU: target.SltuI,
}

var aluImmToReg = map[ovm.Opcode]target.Op{
	ovm.ADDI: target.Add, ovm.ANDI: target.And, ovm.ORI: target.Or,
	ovm.XORI: target.Xor, ovm.SLLI: target.Sll, ovm.SRLI: target.Srl,
	ovm.SRAI: target.Sra, ovm.SLTI: target.Slt, ovm.SLTIU: target.Sltu,
	ovm.MULI: target.Mul,
}

var fpOpMap = map[ovm.Opcode]target.Op{
	ovm.FADDS: target.FaddS, ovm.FSUBS: target.FsubS, ovm.FMULS: target.FmulS,
	ovm.FDIVS: target.FdivS, ovm.FADDD: target.FaddD, ovm.FSUBD: target.FsubD,
	ovm.FMULD: target.FmulD, ovm.FDIVD: target.FdivD,
	ovm.FNEGS: target.FnegS, ovm.FNEGD: target.FnegD,
	ovm.FABSS: target.FabsS, ovm.FABSD: target.FabsD, ovm.FMOV: target.Fmov,
}

var cvtMap = map[ovm.Opcode]target.Op{
	ovm.CVTWS: target.CvtWS, ovm.CVTWD: target.CvtWD, ovm.CVTSW: target.CvtSW,
	ovm.CVTDW: target.CvtDW, ovm.CVTSD: target.CvtSD, ovm.CVTDS: target.CvtDS,
	ovm.MOVWF: target.MovWF, ovm.MOVFW: target.MovFW,
}

func (t *tx) expand(in ovm.Inst, idx int) error {
	switch {
	case in.Op == ovm.NOP:
		t.emit(target.Inst{Op: target.Nop, Rd: target.NoReg, Rs1: target.NoReg, Rs2: target.NoReg})
		return nil

	case aluOpMap[in.Op] != 0 || in.Op == ovm.ADD:
		op := aluOpMap[in.Op]
		// x86 memory-destination form: op [slot], reg for the common
		// read-modify-write of a memory-resident register.
		if t.m.Arch == target.X86 && in.Rd == in.Rs1 && !t.isMapped(in.Rd) && memDstOK(op) && t.isMapped(in.Rs2) {
			t.emit(target.Inst{Op: op, Rd: target.NoReg, Rs1: t.m.OmniInt[in.Rs2], Rs2: target.NoReg,
				Imm: t.intSlotImm(int(in.Rd)), MemDst: true})
			return nil
		}
		a := t.srcInt(in.Rs1, 0, target.CatAddr)
		// x86: use a register-memory form when the second operand is
		// memory-resident and the op supports it.
		if t.m.Arch == target.X86 && !t.isMapped(in.Rs2) && memSrcOK(op) {
			rd, flush := t.dstInt(in.Rd, target.CatAddr)
			if rd != a {
				t.emit(target.Inst{Op: target.Mov, Rd: rd, Rs1: a, Rs2: target.NoReg})
				t.emit(target.Inst{Op: op, Rd: rd, Rs1: rd, Rs2: target.NoReg, Imm: t.intSlotImm(int(in.Rs2)), MemSrc: true, Cat: target.CatAddr})
			} else {
				t.emit(target.Inst{Op: op, Rd: rd, Rs1: a, Rs2: target.NoReg, Imm: t.intSlotImm(int(in.Rs2)), MemSrc: true})
			}
			flush()
			return nil
		}
		b := t.srcInt(in.Rs2, 1, target.CatAddr)
		rd, flush := t.dstInt(in.Rd, target.CatAddr)
		t.emit(target.Inst{Op: op, Rd: rd, Rs1: a, Rs2: b})
		flush()
		return nil

	case aluImmMap[in.Op] != 0:
		if t.m.Arch == target.X86 && in.Rd == in.Rs1 && !t.isMapped(in.Rd) && memDstImmOK(in.Op) {
			t.emit(target.Inst{Op: memDstImmTarget(in.Op), Rd: target.NoReg, Rs1: target.NoReg, Rs2: target.NoReg,
				Imm: t.intSlotImm(int(in.Rd)), Target: in.Imm, MemDst: true})
			return nil
		}
		a := t.srcInt(in.Rs1, 0, target.CatAddr)
		rd, flush := t.dstInt(in.Rd, target.CatAddr)
		if t.m.Arch == target.X86 || t.m.FitsImm(in.Imm) || shiftOp(in.Op) {
			t.emit(target.Inst{Op: aluImmMap[in.Op], Rd: rd, Rs1: a, Rs2: target.NoReg, Imm: in.Imm})
			flush()
			return nil
		}
		// Immediate too large: build it in scratch[1], then reg-reg.
		s := t.m.Scratch[1]
		hi, lo := split32(in.Imm)
		t.emit(target.Inst{Op: target.Lui, Rd: s, Rs1: target.NoReg, Rs2: target.NoReg, Imm: hi, Cat: target.CatLdi})
		if lo != 0 {
			t.emit(target.Inst{Op: target.OrI, Rd: s, Rs1: s, Rs2: target.NoReg, Imm: lo, Cat: target.CatLdi})
		}
		t.emit(target.Inst{Op: aluImmToReg[in.Op], Rd: rd, Rs1: a, Rs2: s})
		flush()
		return nil

	case in.Op == ovm.MULI:
		a := t.srcInt(in.Rs1, 0, target.CatAddr)
		rd, flush := t.dstInt(in.Rd, target.CatAddr)
		s := t.m.Scratch[1]
		if t.m.Arch == target.X86 {
			t.emit(target.Inst{Op: target.MovI, Rd: s, Rs1: target.NoReg, Rs2: target.NoReg, Imm: in.Imm, Cat: target.CatLdi})
		} else if t.m.FitsImm(in.Imm) {
			t.emit(target.Inst{Op: target.AddI, Rd: s, Rs1: t.zero(), Rs2: target.NoReg, Imm: in.Imm, Cat: target.CatLdi})
		} else {
			hi, lo := split32(in.Imm)
			t.emit(target.Inst{Op: target.Lui, Rd: s, Rs1: target.NoReg, Rs2: target.NoReg, Imm: hi, Cat: target.CatLdi})
			if lo != 0 {
				t.emit(target.Inst{Op: target.OrI, Rd: s, Rs1: s, Rs2: target.NoReg, Imm: lo, Cat: target.CatLdi})
			}
		}
		t.emit(target.Inst{Op: target.Mul, Rd: rd, Rs1: a, Rs2: s})
		flush()
		return nil

	case in.Op == ovm.LDI || in.Op == ovm.LDA:
		rd, flush := t.dstInt(in.Rd, target.CatAddr)
		t.loadImm(rd, in.Imm, target.CatLdi)
		flush()
		return nil

	case in.Op == ovm.EXTB:
		a := t.srcInt(in.Rs1, 0, target.CatAddr)
		rd, flush := t.dstInt(in.Rd, target.CatAddr)
		sh := (in.Imm & 3) * 8
		if sh != 0 {
			t.emit(target.Inst{Op: target.SrlI, Rd: rd, Rs1: a, Rs2: target.NoReg, Imm: sh})
			t.emit(target.Inst{Op: target.AndI, Rd: rd, Rs1: rd, Rs2: target.NoReg, Imm: 0xff})
		} else {
			t.emit(target.Inst{Op: target.AndI, Rd: rd, Rs1: a, Rs2: target.NoReg, Imm: 0xff})
		}
		flush()
		return nil

	case in.Op == ovm.INSB:
		a := t.srcInt(in.Rs1, 0, target.CatAddr)
		b := t.srcInt(in.Rs2, 1, target.CatAddr)
		rd, flush := t.dstInt(in.Rd, target.CatAddr)
		sh := (in.Imm & 3) * 8
		s := t.m.Scratch[1]
		// s = (b & 0xff) << sh ; rd = (a & ^(0xff<<sh)) | s
		t.emit(target.Inst{Op: target.AndI, Rd: s, Rs1: b, Rs2: target.NoReg, Imm: 0xff})
		if sh != 0 {
			t.emit(target.Inst{Op: target.SllI, Rd: s, Rs1: s, Rs2: target.NoReg, Imm: sh})
		}
		t.emit(target.Inst{Op: target.AndI, Rd: rd, Rs1: a, Rs2: target.NoReg, Imm: int32(^(uint32(0xff) << uint(sh)))})
		t.emit(target.Inst{Op: target.Or, Rd: rd, Rs1: rd, Rs2: s})
		flush()
		return nil

	case in.Op.IsLoad() || in.Op.IsStore():
		return t.memOp(in)

	case fpOpMap[in.Op] != 0:
		op := fpOpMap[in.Op]
		switch in.Op {
		case ovm.FNEGS, ovm.FNEGD, ovm.FABSS, ovm.FABSD, ovm.FMOV:
			a := t.srcFP(in.Rs1, 0)
			rd, flush := t.dstFP(in.Rd)
			t.emit(target.Inst{Op: op, Rd: rd, Rs1: a, Rs2: target.NoReg})
			flush()
		default:
			a := t.srcFP(in.Rs1, 0)
			b := t.srcFP(in.Rs2, 1)
			rd, flush := t.dstFP(in.Rd)
			t.emit(target.Inst{Op: op, Rd: rd, Rs1: a, Rs2: b})
			flush()
		}
		return nil

	case cvtMap[in.Op] != 0:
		op := cvtMap[in.Op]
		switch in.Op {
		case ovm.CVTWS, ovm.CVTWD, ovm.MOVWF:
			a := t.srcInt(in.Rs1, 0, target.CatAddr)
			rd, flush := t.dstFP(in.Rd)
			t.emit(target.Inst{Op: op, Rd: rd, Rs1: a, Rs2: target.NoReg})
			flush()
		case ovm.CVTSW, ovm.CVTDW, ovm.MOVFW:
			a := t.srcFP(in.Rs1, 0)
			rd, flush := t.dstInt(in.Rd, target.CatAddr)
			t.emit(target.Inst{Op: op, Rd: rd, Rs1: a, Rs2: target.NoReg})
			flush()
		default:
			a := t.srcFP(in.Rs1, 0)
			rd, flush := t.dstFP(in.Rd)
			t.emit(target.Inst{Op: op, Rd: rd, Rs1: a, Rs2: target.NoReg})
			flush()
		}
		return nil

	case in.Op.IsBranch():
		return t.branch(in)

	case in.Op == ovm.JMP:
		t.emit(target.Inst{Op: target.J, Rd: target.NoReg, Rs1: target.NoReg, Rs2: target.NoReg, Target: in.Imm2})
		return nil

	case in.Op == ovm.JAL:
		ret := int32(idx + 1)
		if t.isMapped(in.Rd) {
			t.emit(target.Inst{Op: target.Jal, Rd: t.m.OmniInt[in.Rd], Rs1: target.NoReg, Rs2: target.NoReg, Imm: ret, Target: in.Imm2})
			return nil
		}
		// Memory-resident return register (x86): store the return index
		// explicitly, then plain-jump. This is what call's implicit push
		// does on a real x86.
		s := t.m.Scratch[0]
		t.emit(target.Inst{Op: target.MovI, Rd: s, Rs1: target.NoReg, Rs2: target.NoReg, Imm: ret})
		t.emit(target.Inst{Op: target.Sw, Rd: s, Rs1: target.NoReg, Rs2: target.NoReg, Imm: t.intSlotImm(int(in.Rd)), Cat: target.CatAddr})
		t.emit(target.Inst{Op: target.J, Rd: target.NoReg, Rs1: target.NoReg, Rs2: target.NoReg, Target: in.Imm2})
		return nil

	case in.Op == ovm.JR || in.Op == ovm.JALR:
		// For a memory-resident return register (x86), write the return
		// index before staging the jump target so the scratch registers
		// do not collide.
		if in.Op == ovm.JALR && !t.isMapped(in.Rd) {
			ret := int32(idx + 1)
			s := t.m.Scratch[0]
			t.emit(target.Inst{Op: target.MovI, Rd: s, Rs1: target.NoReg, Rs2: target.NoReg, Imm: ret})
			t.emit(target.Inst{Op: target.Sw, Rd: s, Rs1: target.NoReg, Rs2: target.NoReg, Imm: t.intSlotImm(int(in.Rd)), Cat: target.CatAddr})
		}
		tr := t.srcInt(in.Rs1, 1, target.CatAddr)
		jumpReg := tr
		if t.opt.SFI {
			jumpReg = t.sandboxCode(tr)
		}
		if in.Op == ovm.JALR && t.isMapped(in.Rd) {
			t.emit(target.Inst{Op: target.Jalr, Rd: t.m.OmniInt[in.Rd], Rs1: jumpReg, Rs2: target.NoReg, Imm: int32(idx + 1)})
			return nil
		}
		t.emit(target.Inst{Op: target.Jr, Rd: target.NoReg, Rs1: jumpReg, Rs2: target.NoReg})
		return nil

	case in.Op == ovm.SYSCALL:
		t.emit(target.Inst{Op: target.Syscall, Rd: target.NoReg, Rs1: target.NoReg, Rs2: target.NoReg, Imm: in.Imm})
		return nil

	case in.Op == ovm.HALT:
		t.emit(target.Inst{Op: target.Halt, Rd: target.NoReg, Rs1: target.NoReg, Rs2: target.NoReg})
		return nil

	case in.Op == ovm.BREAK:
		t.emit(target.Inst{Op: target.Break, Rd: target.NoReg, Rs1: target.NoReg, Rs2: target.NoReg})
		return nil
	}
	return fmt.Errorf("no expansion for %s", in.Op.Name())
}

func memDstOK(op target.Op) bool {
	switch op {
	case target.Add, target.Sub, target.And, target.Or, target.Xor:
		return true
	}
	return false
}

func memDstImmOK(op ovm.Opcode) bool {
	switch op {
	case ovm.ADDI, ovm.ANDI, ovm.ORI, ovm.XORI:
		return true
	}
	return false
}

func memDstImmTarget(op ovm.Opcode) target.Op {
	switch op {
	case ovm.ADDI:
		return target.Add
	case ovm.ANDI:
		return target.And
	case ovm.ORI:
		return target.Or
	default:
		return target.Xor
	}
}

func memSrcOK(op target.Op) bool {
	switch op {
	case target.Add, target.Sub, target.Mul, target.And, target.Or, target.Xor:
		return true
	}
	return false
}

func shiftOp(op ovm.Opcode) bool {
	switch op {
	case ovm.SLLI, ovm.SRLI, ovm.SRAI:
		return true
	}
	return false
}
