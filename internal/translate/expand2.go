package translate

import (
	"omniware/internal/ovm"
	"omniware/internal/target"
)

var loadOps = map[ovm.Opcode]target.Op{
	ovm.LDB: target.Lb, ovm.LDBU: target.Lbu, ovm.LDH: target.Lh,
	ovm.LDHU: target.Lhu, ovm.LDW: target.Lw,
	ovm.LDBX: target.Lb, ovm.LDBUX: target.Lbu, ovm.LDHX: target.Lh,
	ovm.LDHUX: target.Lhu, ovm.LDWX: target.Lw,
	ovm.LDF: target.Lf, ovm.LDD: target.Ld,
	ovm.LDFX: target.Lf, ovm.LDDX: target.Ld,
}

var storeOps = map[ovm.Opcode]target.Op{
	ovm.STB: target.Sb, ovm.STH: target.Sh, ovm.STW: target.Sw,
	ovm.STBX: target.Sb, ovm.STHX: target.Sh, ovm.STWX: target.Sw,
	ovm.STF: target.Sf, ovm.STD: target.Sd,
	ovm.STFX: target.Sf, ovm.STDX: target.Sd,
}

// memAddr reduces an OmniVM memory operand to a native (base, imm,
// indexed, idx) addressing form, emitting helper instructions as
// needed. scratchHint selects which scratch register address math may
// use.
func (t *tx) memAddr(in ovm.Inst) (base target.Reg, imm int32, indexed bool, idx target.Reg) {
	m := t.m
	if in.Op.IsIndexed() {
		a := t.srcInt(in.Rs1, 0, target.CatAddr)
		b := t.srcInt(in.Rs2, 1, target.CatAddr)
		if m.Arch == target.MIPS {
			// No indexed mode: extra add (Figure 1's "addr" category).
			s := m.Scratch[0]
			t.emit(target.Inst{Op: target.Add, Rd: s, Rs1: a, Rs2: b, Cat: target.CatAddr})
			return s, 0, false, target.NoReg
		}
		return a, 0, true, b
	}
	// Absolute address (base is the zero register).
	if in.Rs1 == ovm.RZero {
		addr := in.Imm
		if m.Arch == target.X86 {
			return target.NoReg, addr, false, target.NoReg
		}
		if t.opt.GlobalPointer && t.si.GPValue != 0 && m.GP != target.NoReg {
			d := int64(addr) - int64(t.si.GPValue)
			if d >= -int64(m.MaxImm) && d < int64(m.MaxImm) {
				return m.GP, int32(d), false, target.NoReg
			}
		}
		hi, lo := split32(addr)
		s := m.Scratch[0]
		t.emit(target.Inst{Op: target.Lui, Rd: s, Rs1: target.NoReg, Rs2: target.NoReg, Imm: hi, Cat: target.CatAddr})
		return s, lo, false, target.NoReg
	}
	b := t.srcInt(in.Rs1, 0, target.CatAddr)
	if m.Arch == target.X86 || m.FitsImm(in.Imm) {
		return b, in.Imm, false, target.NoReg
	}
	// Large offset: build the high part and add the base (the paper's
	// addr/ldi overhead for 32-bit offsets).
	hi, lo := split32(in.Imm)
	s := m.Scratch[0]
	t.emit(target.Inst{Op: target.Lui, Rd: s, Rs1: target.NoReg, Rs2: target.NoReg, Imm: hi, Cat: target.CatLdi})
	t.emit(target.Inst{Op: target.Add, Rd: s, Rs1: s, Rs2: b, Cat: target.CatAddr})
	return s, lo, false, target.NoReg
}

// guardZone is the displacement magnitude covered by the unmapped
// guard regions around a module segment (Wahbe et al.'s guard-zone
// refinement): a sandboxed base plus a displacement within this bound
// cannot reach another segment. Larger displacements are folded into
// the sandboxed quantity instead.
const guardZone = 4096

// storeNeedsSFI decides whether a store must be sandboxed. Stores
// through the stack pointer with small displacements are statically
// safe (sp is kept inside the segment by construction and the guard
// zone covers the displacement). Absolute stores are checked — and if
// necessary sandboxed — at translation time in memOp.
func storeNeedsSFI(in ovm.Inst) bool {
	if in.Op.IsIndexed() {
		return true
	}
	if in.Rs1 == ovm.RSP && in.Imm >= -guardZone && in.Imm <= guardZone {
		return false
	}
	if in.Rs1 == ovm.RZero {
		return false // handled by translation-time verification
	}
	return true
}

func (t *tx) memOp(in ovm.Inst) error {
	isStore := in.Op.IsStore()
	fp := in.Op.IsFP()

	if isStore && t.opt.SFI && storeNeedsSFI(in) {
		return t.sfiStore(in, fp)
	}
	if !isStore && t.opt.SFI && t.opt.ReadSFI && storeNeedsSFI(in) {
		// Read protection: sandbox loads with the same idioms as
		// stores (the "efficient read protection" of Wahbe et al. the
		// paper defers; here it is an option so its cost can be
		// measured).
		return t.sfiLoad(in, fp)
	}
	if (isStore || t.opt.ReadSFI) && t.opt.SFI && in.Rs1 == ovm.RZero {
		// Absolute access: verify the link-time-constant address at
		// translation time; an address outside the data segment is
		// sandboxed into it right here (a constant rewrite — the
		// static analogue of the runtime check).
		addr := uint32(in.Imm)
		if addr < t.si.DataBase || addr > t.si.DataBase+t.si.DataMask {
			in.Imm = int32((addr & t.si.DataMask) | t.si.DataBase)
		}
	}

	base, imm, indexed, idx := t.memAddr(in)
	if isStore {
		// On x86 a slot-resident store value needs scratch 1, which an
		// indexed address may already occupy: collapse the address into
		// scratch 0 first.
		if indexed && !fp && t.m.Arch == target.X86 && !t.isMapped(in.Rd) {
			s0 := t.m.Scratch[0]
			t.emit(target.Inst{Op: target.Add, Rd: s0, Rs1: base, Rs2: idx, Cat: target.CatAddr})
			base, imm, indexed, idx = s0, 0, false, target.NoReg
		}
		var v target.Reg
		if fp {
			v = t.srcFP(in.Rd, 1)
		} else {
			v = t.srcInt(in.Rd, 1, target.CatAddr)
		}
		t.emit(target.Inst{Op: storeOps[in.Op], Rd: v, Rs1: base, Rs2: idx, Imm: imm, Indexed: indexed})
		return nil
	}
	if fp {
		rd, flush := t.dstFP(in.Rd)
		t.emit(target.Inst{Op: loadOps[in.Op], Rd: rd, Rs1: base, Rs2: idx, Imm: imm, Indexed: indexed})
		flush()
		return nil
	}
	rd, flush := t.dstInt(in.Rd, target.CatAddr)
	t.emit(target.Inst{Op: loadOps[in.Op], Rd: rd, Rs1: base, Rs2: idx, Imm: imm, Indexed: indexed})
	flush()
	return nil
}

// sfiStore emits the sandboxed form of a store. The sandbox masks the
// *base* register into the module's data segment; displacements are
// covered by guard zones (Wahbe et al.). Sequences per target:
//
//	MIPS:      and sfi, base, mask ; or sfi, sfi, segbase ; st v, imm(sfi)
//	PPC/SPARC: and sfi, base, mask ; st v, [segbase + sfi]   (imm folded
//	           into the masked register first when nonzero)
//	x86:       and ebp, base, maskimm ; or ebp, ebp, baseimm ; st v, imm(ebp)
//
// With SFIHoist, consecutive stores through the same unmodified base
// reuse the sandboxed register.
func (t *tx) sfiStore(in ovm.Inst, fp bool) error {
	m := t.m
	sfi := m.SFIAddr

	// Compute the base to sandbox (and the displacement that remains).
	// Displacements beyond the guard zone must be folded into the
	// sandboxed quantity, otherwise a huge constant offset would step
	// right over the masked base (the compiler's 32-bit offsets make
	// this reachable from ordinary C).
	var rawBase target.Reg
	imm := int32(0)
	key := -1
	if in.Op.IsIndexed() {
		a := t.srcInt(in.Rs1, 0, target.CatAddr)
		b := t.srcInt(in.Rs2, 1, target.CatAddr)
		t.emit(target.Inst{Op: target.Add, Rd: sfi, Rs1: a, Rs2: b, Cat: target.CatSFI})
		rawBase = sfi
	} else if in.Imm < -guardZone || in.Imm > guardZone {
		base := t.srcInt(in.Rs1, 0, target.CatAddr)
		if m.Arch == target.X86 {
			t.emit(target.Inst{Op: target.Lea, Rd: sfi, Rs1: base, Rs2: target.NoReg, Imm: in.Imm, Cat: target.CatSFI})
		} else if m.FitsImm(in.Imm) {
			t.emit(target.Inst{Op: target.AddI, Rd: sfi, Rs1: base, Rs2: target.NoReg, Imm: in.Imm, Cat: target.CatSFI})
		} else {
			s1 := m.Scratch[1]
			hi, lo := split32(in.Imm)
			t.emit(target.Inst{Op: target.Lui, Rd: s1, Rs1: target.NoReg, Rs2: target.NoReg, Imm: hi, Cat: target.CatLdi})
			if lo != 0 {
				t.emit(target.Inst{Op: target.OrI, Rd: s1, Rs1: s1, Rs2: target.NoReg, Imm: lo, Cat: target.CatLdi})
			}
			t.emit(target.Inst{Op: target.Add, Rd: sfi, Rs1: base, Rs2: s1, Cat: target.CatSFI})
		}
		rawBase = sfi
	} else {
		rawBase = t.srcInt(in.Rs1, 0, target.CatAddr)
		imm = in.Imm
		key = int(in.Rs1)
	}

	reuse := t.opt.SFIHoist && key >= 0 && t.sbBase == key && rawBase != sfi
	if !reuse {
		switch m.Arch {
		case target.X86:
			t.emit(target.Inst{Op: target.AndI, Rd: sfi, Rs1: rawBase, Rs2: target.NoReg, Imm: int32(t.si.DataMask), Cat: target.CatSFI})
			t.emit(target.Inst{Op: target.OrI, Rd: sfi, Rs1: sfi, Rs2: target.NoReg, Imm: int32(t.si.DataBase), Cat: target.CatSFI})
		case target.MIPS:
			t.emit(target.Inst{Op: target.And, Rd: sfi, Rs1: rawBase, Rs2: m.SFIMask, Cat: target.CatSFI})
			t.emit(target.Inst{Op: target.Or, Rd: sfi, Rs1: sfi, Rs2: m.SFIBase, Cat: target.CatSFI})
		default: // PPC, SPARC: masked offset + indexed store via segbase
			t.emit(target.Inst{Op: target.And, Rd: sfi, Rs1: rawBase, Rs2: m.SFIMask, Cat: target.CatSFI})
		}
		if key >= 0 {
			t.sbBase = key
		} else {
			t.sbBase = -1
		}
	}

	var v target.Reg
	if fp {
		v = t.srcFP(in.Rd, 1)
	} else {
		v = t.srcInt(in.Rd, 1, target.CatAddr)
	}

	switch m.Arch {
	case target.X86, target.MIPS:
		t.emit(target.Inst{Op: storeOps[in.Op], Rd: v, Rs1: sfi, Rs2: target.NoReg, Imm: imm})
	default:
		// PPC/SPARC: fold a displacement into the masked register, then
		// store indexed off the segment base register.
		addrReg := sfi
		if imm != 0 {
			t.emit(target.Inst{Op: target.AddI, Rd: sfi, Rs1: sfi, Rs2: target.NoReg, Imm: imm, Cat: target.CatSFI})
			// The displacement invalidates reuse of the sandboxed base.
			t.sbBase = -1
		}
		t.emit(target.Inst{Op: storeOps[in.Op], Rd: v, Rs1: m.SFIBase, Rs2: addrReg, Indexed: true})
	}
	return nil
}

// sfiLoad sandboxes a load exactly like sfiStore sandboxes a store.
func (t *tx) sfiLoad(in ovm.Inst, fp bool) error {
	m := t.m
	sfi := m.SFIAddr

	var rawBase target.Reg
	imm := int32(0)
	key := -1
	switch {
	case in.Op.IsIndexed():
		a := t.srcInt(in.Rs1, 0, target.CatAddr)
		b := t.srcInt(in.Rs2, 1, target.CatAddr)
		t.emit(target.Inst{Op: target.Add, Rd: sfi, Rs1: a, Rs2: b, Cat: target.CatSFI})
		rawBase = sfi
	case in.Imm < -guardZone || in.Imm > guardZone:
		base := t.srcInt(in.Rs1, 0, target.CatAddr)
		if m.Arch == target.X86 {
			t.emit(target.Inst{Op: target.Lea, Rd: sfi, Rs1: base, Rs2: target.NoReg, Imm: in.Imm, Cat: target.CatSFI})
		} else if m.FitsImm(in.Imm) {
			t.emit(target.Inst{Op: target.AddI, Rd: sfi, Rs1: base, Rs2: target.NoReg, Imm: in.Imm, Cat: target.CatSFI})
		} else {
			s1 := m.Scratch[1]
			hi, lo := split32(in.Imm)
			t.emit(target.Inst{Op: target.Lui, Rd: s1, Rs1: target.NoReg, Rs2: target.NoReg, Imm: hi, Cat: target.CatLdi})
			if lo != 0 {
				t.emit(target.Inst{Op: target.OrI, Rd: s1, Rs1: s1, Rs2: target.NoReg, Imm: lo, Cat: target.CatLdi})
			}
			t.emit(target.Inst{Op: target.Add, Rd: sfi, Rs1: base, Rs2: s1, Cat: target.CatSFI})
		}
		rawBase = sfi
	default:
		rawBase = t.srcInt(in.Rs1, 0, target.CatAddr)
		imm = in.Imm
		key = int(in.Rs1)
	}

	reuse := t.opt.SFIHoist && key >= 0 && t.sbBase == key && rawBase != sfi
	if !reuse {
		switch m.Arch {
		case target.X86:
			t.emit(target.Inst{Op: target.AndI, Rd: sfi, Rs1: rawBase, Rs2: target.NoReg, Imm: int32(t.si.DataMask), Cat: target.CatSFI})
			t.emit(target.Inst{Op: target.OrI, Rd: sfi, Rs1: sfi, Rs2: target.NoReg, Imm: int32(t.si.DataBase), Cat: target.CatSFI})
		case target.MIPS:
			t.emit(target.Inst{Op: target.And, Rd: sfi, Rs1: rawBase, Rs2: m.SFIMask, Cat: target.CatSFI})
			t.emit(target.Inst{Op: target.Or, Rd: sfi, Rs1: sfi, Rs2: m.SFIBase, Cat: target.CatSFI})
		default:
			t.emit(target.Inst{Op: target.And, Rd: sfi, Rs1: rawBase, Rs2: m.SFIMask, Cat: target.CatSFI})
		}
		if key >= 0 {
			t.sbBase = key
		} else {
			t.sbBase = -1
		}
	}

	emitLoad := func(base target.Reg, off int32, indexed bool, idx target.Reg) error {
		op := loadOps[in.Op]
		if fp {
			rd, flush := t.dstFP(in.Rd)
			t.emit(target.Inst{Op: op, Rd: rd, Rs1: base, Rs2: idx, Imm: off, Indexed: indexed})
			flush()
			return nil
		}
		rd, flush := t.dstInt(in.Rd, target.CatAddr)
		t.emit(target.Inst{Op: op, Rd: rd, Rs1: base, Rs2: idx, Imm: off, Indexed: indexed})
		flush()
		return nil
	}
	switch m.Arch {
	case target.X86, target.MIPS:
		return emitLoad(sfi, imm, false, target.NoReg)
	default:
		if imm != 0 {
			t.emit(target.Inst{Op: target.AddI, Rd: sfi, Rs1: sfi, Rs2: target.NoReg, Imm: imm, Cat: target.CatSFI})
			t.sbBase = -1
		}
		return emitLoad(m.SFIBase, 0, true, sfi)
	}
}

// sandboxCode masks an indirect branch target into the code segment
// and returns the register to jump through.
func (t *tx) sandboxCode(tr target.Reg) target.Reg {
	m := t.m
	sfi := m.SFIAddr
	t.sbBase = -1 // SFIAddr is clobbered
	if m.Arch == target.X86 {
		mask := int32(nextPow2(uint32(len(t.mod.Text))) - 1)
		t.emit(target.Inst{Op: target.AndI, Rd: sfi, Rs1: tr, Rs2: target.NoReg, Imm: mask, Cat: target.CatSFI})
		return sfi
	}
	t.emit(target.Inst{Op: target.And, Rd: sfi, Rs1: tr, Rs2: m.CodeMask, Cat: target.CatSFI})
	return sfi
}

// branch expands OmniVM compare-and-branch instructions.
func (t *tx) branch(in ovm.Inst) error {
	m := t.m
	// FP branches: compare then branch on every target.
	switch in.Op {
	case ovm.FBEQ, ovm.FBNE, ovm.FBLT, ovm.FBLE:
		a := t.srcFP(in.Rs1, 0)
		b := t.srcFP(in.Rs2, 1)
		cc := map[ovm.Opcode]target.CC{
			ovm.FBEQ: target.CCEq, ovm.FBNE: target.CCNe,
			ovm.FBLT: target.CCLt, ovm.FBLE: target.CCLe,
		}[in.Op]
		t.emit(target.Inst{Op: target.Fcmp, Rd: target.NoReg, Rs1: a, Rs2: b, Cat: target.CatCmp})
		t.emit(target.Inst{Op: target.FBcc, Rd: target.NoReg, Rs1: target.NoReg, Rs2: target.NoReg, CC: cc, Target: in.Imm2})
		return nil
	}

	regForm := in.Op >= ovm.BEQ && in.Op <= ovm.BGEU
	var cc target.CC
	if regForm {
		cc = ovmBrCC(in.Op, ovm.BEQ)
	} else {
		cc = ovmBrCC(in.Op, ovm.BEQI)
	}

	a := t.srcInt(in.Rs1, 0, target.CatAddr)

	if m.Arch == target.MIPS {
		return t.mipsBranch(in, a, cc, regForm)
	}

	// Flag-based targets: PPC, SPARC, x86.
	if regForm {
		b := t.srcInt(in.Rs2, 1, target.CatAddr)
		t.emit(target.Inst{Op: target.Cmp, Rd: target.NoReg, Rs1: a, Rs2: b, Cat: target.CatCmp})
	} else {
		op := target.CmpI
		if cc >= target.CCLtU {
			op = target.CmpUI
		}
		if m.Arch == target.X86 || m.FitsImm(in.Imm) {
			t.emit(target.Inst{Op: op, Rd: target.NoReg, Rs1: a, Rs2: target.NoReg, Imm: in.Imm, Cat: target.CatCmp})
		} else {
			s := m.Scratch[1]
			hi, lo := split32(in.Imm)
			t.emit(target.Inst{Op: target.Lui, Rd: s, Rs1: target.NoReg, Rs2: target.NoReg, Imm: hi, Cat: target.CatLdi})
			if lo != 0 {
				t.emit(target.Inst{Op: target.OrI, Rd: s, Rs1: s, Rs2: target.NoReg, Imm: lo, Cat: target.CatLdi})
			}
			t.emit(target.Inst{Op: target.Cmp, Rd: target.NoReg, Rs1: a, Rs2: s, Cat: target.CatCmp})
		}
	}
	t.emit(target.Inst{Op: target.Bcc, Rd: target.NoReg, Rs1: target.NoReg, Rs2: target.NoReg, CC: cc, Target: in.Imm2})
	return nil
}

// ovmBrCC maps an OmniVM branch opcode (starting at base) to a CC.
func ovmBrCC(op, base ovm.Opcode) target.CC {
	return [...]target.CC{
		target.CCEq, target.CCNe, target.CCLt, target.CCLe, target.CCGt,
		target.CCGe, target.CCLtU, target.CCLeU, target.CCGtU, target.CCGeU,
	}[op-base]
}

// mipsBranch expands branches for MIPS: beq/bne take two registers,
// comparisons against zero have single-instruction forms, everything
// else needs a slt-style compare first (Figure 1's "cmp" category on
// MIPS is small precisely because most branches compare against zero).
func (t *tx) mipsBranch(in ovm.Inst, a target.Reg, cc target.CC, regForm bool) error {
	m := t.m
	emitB := func(op target.Op, rs1, rs2 target.Reg) {
		t.emit(target.Inst{Op: op, Rd: target.NoReg, Rs1: rs1, Rs2: rs2, Target: in.Imm2})
	}
	if regForm {
		b := t.srcInt(in.Rs2, 1, target.CatAddr)
		switch cc {
		case target.CCEq:
			emitB(target.Beq, a, b)
			return nil
		case target.CCNe:
			emitB(target.Bne, a, b)
			return nil
		}
		s := m.Scratch[0]
		// a<b etc via slt + branch on zero/nonzero.
		switch cc {
		case target.CCLt:
			t.emit(target.Inst{Op: target.Slt, Rd: s, Rs1: a, Rs2: b, Cat: target.CatCmp})
			emitB(target.Bnez, s, target.NoReg)
		case target.CCGe:
			t.emit(target.Inst{Op: target.Slt, Rd: s, Rs1: a, Rs2: b, Cat: target.CatCmp})
			emitB(target.Beqz, s, target.NoReg)
		case target.CCGt:
			t.emit(target.Inst{Op: target.Slt, Rd: s, Rs1: b, Rs2: a, Cat: target.CatCmp})
			emitB(target.Bnez, s, target.NoReg)
		case target.CCLe:
			t.emit(target.Inst{Op: target.Slt, Rd: s, Rs1: b, Rs2: a, Cat: target.CatCmp})
			emitB(target.Beqz, s, target.NoReg)
		case target.CCLtU:
			t.emit(target.Inst{Op: target.Sltu, Rd: s, Rs1: a, Rs2: b, Cat: target.CatCmp})
			emitB(target.Bnez, s, target.NoReg)
		case target.CCGeU:
			t.emit(target.Inst{Op: target.Sltu, Rd: s, Rs1: a, Rs2: b, Cat: target.CatCmp})
			emitB(target.Beqz, s, target.NoReg)
		case target.CCGtU:
			t.emit(target.Inst{Op: target.Sltu, Rd: s, Rs1: b, Rs2: a, Cat: target.CatCmp})
			emitB(target.Bnez, s, target.NoReg)
		case target.CCLeU:
			t.emit(target.Inst{Op: target.Sltu, Rd: s, Rs1: b, Rs2: a, Cat: target.CatCmp})
			emitB(target.Beqz, s, target.NoReg)
		}
		return nil
	}

	// Immediate forms.
	imm := in.Imm
	if imm == 0 {
		switch cc {
		case target.CCEq:
			emitB(target.Beqz, a, target.NoReg)
			return nil
		case target.CCNe:
			emitB(target.Bnez, a, target.NoReg)
			return nil
		case target.CCLt:
			emitB(target.Bltz, a, target.NoReg)
			return nil
		case target.CCLe:
			emitB(target.Blez, a, target.NoReg)
			return nil
		case target.CCGt:
			emitB(target.Bgtz, a, target.NoReg)
			return nil
		case target.CCGe:
			emitB(target.Bgez, a, target.NoReg)
			return nil
		}
	}
	s := m.Scratch[0]
	switch cc {
	case target.CCEq, target.CCNe:
		// Load the constant, then beq/bne (the paper's ldi overhead for
		// compare-against-constant branches on MIPS).
		s2 := m.Scratch[1]
		if m.FitsImm(imm) {
			t.emit(target.Inst{Op: target.AddI, Rd: s2, Rs1: m.ZeroReg, Rs2: target.NoReg, Imm: imm, Cat: target.CatLdi})
		} else {
			hi, lo := split32(imm)
			t.emit(target.Inst{Op: target.Lui, Rd: s2, Rs1: target.NoReg, Rs2: target.NoReg, Imm: hi, Cat: target.CatLdi})
			if lo != 0 {
				t.emit(target.Inst{Op: target.OrI, Rd: s2, Rs1: s2, Rs2: target.NoReg, Imm: lo, Cat: target.CatLdi})
			}
		}
		if cc == target.CCEq {
			emitB(target.Beq, a, s2)
		} else {
			emitB(target.Bne, a, s2)
		}
	case target.CCLt, target.CCGe, target.CCLtU, target.CCGeU:
		op := target.SltI
		if cc == target.CCLtU || cc == target.CCGeU {
			op = target.SltuI
		}
		if m.FitsImm(imm) {
			t.emit(target.Inst{Op: op, Rd: s, Rs1: a, Rs2: target.NoReg, Imm: imm, Cat: target.CatCmp})
		} else {
			s2 := m.Scratch[1]
			hi, lo := split32(imm)
			t.emit(target.Inst{Op: target.Lui, Rd: s2, Rs1: target.NoReg, Rs2: target.NoReg, Imm: hi, Cat: target.CatLdi})
			if lo != 0 {
				t.emit(target.Inst{Op: target.OrI, Rd: s2, Rs1: s2, Rs2: target.NoReg, Imm: lo, Cat: target.CatLdi})
			}
			rr := target.Slt
			if op == target.SltuI {
				rr = target.Sltu
			}
			t.emit(target.Inst{Op: rr, Rd: s, Rs1: a, Rs2: s2, Cat: target.CatCmp})
		}
		if cc == target.CCLt || cc == target.CCLtU {
			emitB(target.Bnez, s, target.NoReg)
		} else {
			emitB(target.Beqz, s, target.NoReg)
		}
	case target.CCLe, target.CCGt, target.CCLeU, target.CCGtU:
		// x <= imm  <=>  x < imm+1 (watch overflow).
		op := target.SltI
		uns := cc == target.CCLeU || cc == target.CCGtU
		if uns {
			op = target.SltuI
		}
		overflow := (!uns && imm == 0x7fffffff) || (uns && uint32(imm) == 0xffffffff)
		if !overflow && m.FitsImm(imm+1) {
			t.emit(target.Inst{Op: op, Rd: s, Rs1: a, Rs2: target.NoReg, Imm: imm + 1, Cat: target.CatCmp})
			if cc == target.CCLe || cc == target.CCLeU {
				emitB(target.Bnez, s, target.NoReg)
			} else {
				emitB(target.Beqz, s, target.NoReg)
			}
			return nil
		}
		// General: build constant, compare reg-reg swapped.
		s2 := m.Scratch[1]
		hi, lo := split32(imm)
		t.emit(target.Inst{Op: target.Lui, Rd: s2, Rs1: target.NoReg, Rs2: target.NoReg, Imm: hi, Cat: target.CatLdi})
		if lo != 0 {
			t.emit(target.Inst{Op: target.OrI, Rd: s2, Rs1: s2, Rs2: target.NoReg, Imm: lo, Cat: target.CatLdi})
		}
		rr := target.Slt
		if uns {
			rr = target.Sltu
		}
		t.emit(target.Inst{Op: rr, Rd: s, Rs1: s2, Rs2: a, Cat: target.CatCmp}) // imm < a
		if cc == target.CCGt || cc == target.CCGtU {
			emitB(target.Bnez, s, target.NoReg)
		} else {
			emitB(target.Beqz, s, target.NoReg)
		}
	}
	return nil
}
