// Package audit is the admission-time static analyzer for mobile
// programs: a whole-module pipeline that runs once per upload, before
// any job is accepted against the module, and produces a deterministic
// Report the serving plane can gate on. It discharges four obligations
// the SFI verifiers do not speak to:
//
//  1. an interprocedural call graph — direct calls resolved exactly,
//     indirect calls conservatively bounded by the module's
//     address-taken set (the same jump-table facts the translators and
//     absint use to bound indirect branches);
//  2. a worst-case stack-depth proof over that graph, with recursion
//     detected and reported as unbounded alongside the named cycle;
//  3. per-function and whole-module static instruction-cost upper
//     bounds on every target, priced by the per-machine cycle-latency
//     tables the schedulers already use;
//  4. a host-call capability manifest: the exact set of hostapi entry
//     points reachable from the module's entry.
//
// The analysis is over OmniVM text, so one audit serves all targets;
// only the cost weights are per-machine (derived by translating and
// attributing native latencies back through Inst.Src). Everything is a
// sound over-approximation under two documented discipline assumptions,
// shared with the translators: indirect transfers land on address-taken
// code entries, and `jr ra` is a return. A module that violates them
// cannot escape SFI (the omni-to-native map still confines it); it can
// only make this report conservative, never optimistic about
// capabilities — SYSCALL immediates are static, so the manifest covers
// every syscall instruction reachable under any control flow the
// address-taken bound admits.
package audit

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"omniware/internal/core"
	"omniware/internal/hostapi"
	"omniware/internal/ovm"
	"omniware/internal/sfi/absint"
	"omniware/internal/target"
	"omniware/internal/translate"
	"omniware/internal/wire"
)

// Gate reasons: the closed set of ways a module fails admission.
// Metrics counters and HTTP error bodies use exactly these strings;
// they are pre-registered at zero like the quarantine reasons.
const (
	ReasonStack      = "stack"
	ReasonCost       = "cost"
	ReasonCapability = "capability"
	ReasonRecursion  = "recursion"
)

// GateReasons lists every gate reason, in reporting order.
var GateReasons = []string{ReasonStack, ReasonCost, ReasonCapability, ReasonRecursion}

// Report is the audit result for one module. It is canonical: analyzing
// the same module bytes always yields byte-identical JSON (functions
// sorted by entry, calls by site, capabilities and map keys sorted), so
// peers and the disk tier compare digests to detect tampering.
type Report struct {
	Hash  string `json:"hash"`  // wire.HashModule of the module
	Insts int    `json:"insts"` // OmniVM text length

	Functions []Function `json:"functions"`
	Calls     []CallEdge `json:"calls,omitempty"`

	// AddressTaken is the set of code entries reachable by indirect
	// transfer: values of CodePtrs words plus in-range lda immediates.
	AddressTaken []int32 `json:"address_taken,omitempty"`

	Stack StackBound `json:"stack"`

	// Cost maps target machine name to the whole-module bound (entry
	// function cost plus the translator's one-time stub cost).
	Cost map[string]CostBound `json:"cost"`

	// Capabilities is the manifest: sorted names of every hostapi entry
	// point reachable from the module entry.
	Capabilities []string `json:"capabilities"`

	// Targets records per-machine translation shape (native
	// instruction and basic-block counts, from the shared absint CFG).
	Targets map[string]TargetInfo `json:"targets"`
}

// Function is one call-graph node: a maximal region of text entered
// only at its first instruction.
type Function struct {
	Name  string `json:"name"`
	Entry int32  `json:"entry"`
	Insts int    `json:"insts"`
	// FrameBytes is the deepest stack extension the function itself
	// performs (excluding callees); -1 if not statically bounded.
	FrameBytes int64 `json:"frame_bytes"`
	// StackBytes is the deepest stack extension including callees;
	// -1 if unbounded (recursion or indiscipline).
	StackBytes int64 `json:"stack_bytes"`
	// Cost maps target name to this function's cycle bound including
	// callees; a target is absent when the bound does not exist
	// (the function or a callee loops or recurses).
	Cost map[string]uint64 `json:"cost,omitempty"`
	// Syscalls lists host calls made directly by this function.
	Syscalls []string `json:"syscalls,omitempty"`
}

// CallEdge is one call-graph edge. Tail marks transfers that continue
// on the caller's stack (jumps between functions); Indirect marks edges
// resolved through the address-taken bound rather than a direct target.
type CallEdge struct {
	Caller   string `json:"caller"`
	Callee   string `json:"callee"`
	Site     int32  `json:"site"`
	Indirect bool   `json:"indirect,omitempty"`
	Tail     bool   `json:"tail,omitempty"`
}

// StackBound is the whole-module worst-case stack verdict, from the
// entry point.
type StackBound struct {
	Bounded bool  `json:"bounded"`
	Bytes   int64 `json:"bytes,omitempty"`
	// Reason, when unbounded: "recursion" (Cycle names it), "loop"
	// (a cycle grows the stack each iteration), "sp" (the stack
	// pointer is written in a form the analysis cannot track), or
	// "indirect" (an indirect transfer with an empty address-taken
	// bound).
	Reason string   `json:"reason,omitempty"`
	Cycle  []string `json:"cycle,omitempty"`
}

// CostBound is one target's whole-module cycle bound.
type CostBound struct {
	Bounded bool   `json:"bounded"`
	Cycles  uint64 `json:"cycles,omitempty"`
	// Reason, when unbounded: "loop", "recursion", or "indirect".
	Reason string `json:"reason,omitempty"`
}

// TargetInfo is the per-machine translation shape.
type TargetInfo struct {
	Insts  int `json:"insts"`
	Blocks int `json:"blocks"`
}

// Digest is the canonical identity of a report: hex sha256 over its
// canonical JSON. Peers ship it beside module bytes; receivers re-run
// the analysis and refuse on mismatch.
func (r *Report) Digest() string {
	b, err := json.Marshal(r)
	if err != nil {
		// Report marshaling cannot fail: all fields are plain data.
		panic("audit: report marshal: " + err.Error())
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Limits configures the admission gate. Zero caps disable that check;
// nil Capabilities allows everything.
type Limits struct {
	// MaxStackBytes caps the proven worst-case stack depth. When set,
	// a module whose depth is unbounded (for any reason) or exceeds
	// the cap violates "stack". Recursion is reported as "recursion"
	// whether or not a cap is set.
	MaxStackBytes int64
	// MaxCostCycles caps the whole-module static cycle bound on every
	// target. When set, an unbounded or over-cap target violates
	// "cost". Unset, looping modules (i.e. nearly all real programs)
	// pass.
	MaxCostCycles uint64
	// Capabilities, when non-nil, is the allow-list of hostapi entry
	// point names the module may reach; anything outside it violates
	// "capability".
	Capabilities []string
}

// Violation is one admission-gate failure.
type Violation struct {
	Reason string `json:"reason"` // one of GateReasons
	Detail string `json:"detail"`
}

func (v Violation) String() string { return v.Reason + ": " + v.Detail }

// Violations evaluates the gate. The result is deterministic and
// ordered by GateReasons; empty means the module is admissible under l.
func (r *Report) Violations(l Limits) []Violation {
	var out []Violation
	if !r.Stack.Bounded && r.Stack.Reason != ReasonRecursion {
		if l.MaxStackBytes > 0 {
			out = append(out, Violation{ReasonStack,
				fmt.Sprintf("stack depth not statically bounded (%s)", r.Stack.Reason)})
		}
	} else if r.Stack.Bounded && l.MaxStackBytes > 0 && r.Stack.Bytes > l.MaxStackBytes {
		out = append(out, Violation{ReasonStack,
			fmt.Sprintf("stack bound %d bytes exceeds cap %d", r.Stack.Bytes, l.MaxStackBytes)})
	}
	if l.MaxCostCycles > 0 {
		for _, name := range sortedKeys(r.Cost) {
			c := r.Cost[name]
			if !c.Bounded {
				out = append(out, Violation{ReasonCost,
					fmt.Sprintf("%s: cycle cost not statically bounded (%s)", name, c.Reason)})
			} else if c.Cycles > l.MaxCostCycles {
				out = append(out, Violation{ReasonCost,
					fmt.Sprintf("%s: cost bound %d cycles exceeds cap %d", name, c.Cycles, l.MaxCostCycles)})
			}
		}
	}
	if l.Capabilities != nil {
		allowed := map[string]bool{}
		for _, c := range l.Capabilities {
			allowed[c] = true
		}
		var extra []string
		for _, c := range r.Capabilities {
			if !allowed[c] {
				extra = append(extra, c)
			}
		}
		if len(extra) > 0 {
			out = append(out, Violation{ReasonCapability,
				"module reaches host calls outside the allow-list: " + strings.Join(extra, ", ")})
		}
	}
	if r.Stack.Reason == ReasonRecursion {
		out = append(out, Violation{ReasonRecursion,
			"recursion cycle: " + strings.Join(r.Stack.Cycle, " -> ")})
	}
	sort.SliceStable(out, func(i, j int) bool {
		return reasonRank(out[i].Reason) < reasonRank(out[j].Reason)
	})
	return out
}

func reasonRank(r string) int {
	for i, g := range GateReasons {
		if g == r {
			return i
		}
	}
	return len(GateReasons)
}

func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// ---------------------------------------------------------------------
// Analysis.

// Analyze runs the full pipeline on mod for every registered target
// machine.
func Analyze(mod *ovm.Module) (*Report, error) {
	return AnalyzeTargets(mod, target.Machines())
}

// AnalyzeTargets is Analyze restricted to the given machines (tests use
// a subset; the serving plane audits all four so one report serves any
// exec request).
func AnalyzeTargets(mod *ovm.Module, machines []*target.Machine) (*Report, error) {
	if len(mod.Text) == 0 {
		return nil, fmt.Errorf("audit: empty module")
	}
	a := &analysis{mod: mod, n: len(mod.Text)}
	a.addressTaken()
	a.partition()
	for _, r := range a.regions {
		a.analyzeRegion(r)
	}
	a.condense()

	rep := &Report{
		Hash:         wire.HashModule(mod),
		Insts:        a.n,
		AddressTaken: a.addrTaken,
		Cost:         map[string]CostBound{},
		Targets:      map[string]TargetInfo{},
	}

	// Per-target cost weights: translate with the paper configuration
	// over the deterministic default segment geometry and attribute
	// native latencies back to OmniVM indices through Inst.Src.
	si := core.SegInfoFor(mod, core.RunConfig{})
	type targetCost struct {
		name   string
		weight []uint64 // per OmniVM instruction index
		stub   uint64   // Src == -1 (prologue / out-of-line stubs), charged once
	}
	var costs []targetCost
	for _, m := range machines {
		prog, err := translate.Translate(mod, m, si, translate.Paper(true))
		if err != nil {
			return nil, fmt.Errorf("audit: translate %s: %w", m.Name, err)
		}
		tc := targetCost{name: m.Name, weight: make([]uint64, a.n)}
		for i := range prog.Code {
			in := &prog.Code[i]
			lat := uint64(1)
			if m.Latency != nil {
				lat = uint64(m.Latency(in.Op))
			}
			if in.Src >= 0 && int(in.Src) < a.n {
				tc.weight[in.Src] += lat
			} else {
				tc.stub += lat
			}
		}
		costs = append(costs, tc)
		rep.Targets[m.Name] = TargetInfo{
			Insts:  len(prog.Code),
			Blocks: absint.BuildCFG(prog, m).Blocks(),
		}
	}

	// Stack bounds per region (condensed-DAG propagation), then the
	// module verdict from the entry region.
	a.solveStack()
	entry := a.regionOf[mod.Entry]
	rep.Stack = a.moduleStack(entry)

	// Reachability from entry (over call and tail edges) scopes the
	// capability manifest and the recursion verdict to code that can
	// actually run.
	reach := a.reachable(entry)

	caps := map[string]bool{}
	for ri, r := range a.regions {
		if !reach[ri] {
			continue
		}
		for num := range r.caps {
			caps[hostapi.SyscallName(num)] = true
		}
	}
	rep.Capabilities = make([]string, 0, len(caps))
	for c := range caps {
		rep.Capabilities = append(rep.Capabilities, c)
	}
	sort.Strings(rep.Capabilities)

	// Per-region, per-target cost solve; module bound = entry region
	// plus the one-time stub cost.
	for _, tc := range costs {
		bounds := a.solveCost(tc.weight)
		for ri, r := range a.regions {
			if bounds[ri].Bounded {
				if a.regions[ri].fn.Cost == nil {
					a.regions[ri].fn.Cost = map[string]uint64{}
				}
				r.fn.Cost[tc.name] = bounds[ri].Cycles
			}
		}
		mb := bounds[entry]
		if mb.Bounded {
			mb.Cycles += tc.stub
		}
		rep.Cost[tc.name] = mb
	}

	for _, r := range a.regions {
		rep.Functions = append(rep.Functions, r.fn)
	}
	sort.Slice(rep.Functions, func(i, j int) bool {
		return rep.Functions[i].Entry < rep.Functions[j].Entry
	})
	rep.Calls = a.callEdges()
	return rep, nil
}

// region is one call-graph node during analysis.
type region struct {
	idx        int
	entry, end int32 // [entry, end) in text
	fn         Function

	// Stack-discipline facts.
	spWild    bool    // sp written in an untrackable form, or negative cycle
	disp      []int64 // sp displacement at each offset (entry = 0); dispUnset if unreachable
	local     int64   // deepest stack extension within the region, bytes
	hasLoop   bool    // intra-region CFG cycle
	indirWild bool    // indirect transfer with empty address-taken bound

	calls []edge // JAL / JALR sites
	tails []edge // transfers continuing on the caller's stack
	caps  map[int]bool

	// Condensation results.
	scc        int
	sccRec     bool   // member of a recursive SCC
	sccLoop    bool   // member of a tail-cycle SCC
	sccGrow    bool   // member of a cycle that deepens the stack
	stack      int64  // solved stack bound including callees; -1 unbounded
	stackCycle []int  // recursion cycle (region indices), on the entry path
	stackWhy   string // reason when stack == -1
}

type edge struct {
	site     int32
	targets  []int // region indices
	depth    int64 // stack bytes already held at the site
	indirect bool
}

const dispUnset = int64(-1) << 62

type analysis struct {
	mod       *ovm.Module
	n         int
	addrTaken []int32
	entries   []int32
	regionOf  []int
	regions   []*region

	sccOf    []int
	sccOrder [][]int // SCCs in reverse topological order (callees first)
}

// addressTaken computes the indirect-transfer bound: instruction
// indices stored in CodePtrs data words plus in-range lda immediates
// (a relocated code symbol loaded into a register).
func (a *analysis) addressTaken() {
	set := map[int32]bool{}
	for _, off := range a.mod.CodePtrs {
		if int(off)+4 <= len(a.mod.Data) {
			v := int32(binary.LittleEndian.Uint32(a.mod.Data[off:]))
			if v >= 0 && int(v) < a.n {
				set[v] = true
			}
		}
	}
	for i := range a.mod.Text {
		in := &a.mod.Text[i]
		if in.Op == ovm.LDA && in.Imm >= 0 && int(in.Imm) < a.n {
			// Conservative: a data address that happens to alias a
			// text index only widens the bound.
			set[in.Imm] = true
		}
	}
	a.addrTaken = make([]int32, 0, len(set))
	for v := range set {
		a.addrTaken = append(a.addrTaken, v)
	}
	sort.Slice(a.addrTaken, func(i, j int) bool { return a.addrTaken[i] < a.addrTaken[j] })
}

// partition splits text into regions entered only at their first
// instruction: entries are the module entry, direct call targets, and
// the address-taken set; then, to fixpoint, any branch target that
// crosses a region boundary becomes an entry itself (so every
// interprocedural transfer lands on a region entry).
func (a *analysis) partition() {
	entry := map[int32]bool{}
	add := func(t int32) {
		if t >= 0 && int(t) < a.n {
			entry[t] = true
		}
	}
	add(a.mod.Entry)
	for _, t := range a.addrTaken {
		add(t)
	}
	for i := range a.mod.Text {
		if a.mod.Text[i].Op == ovm.JAL {
			add(a.mod.Text[i].Imm2)
		}
	}
	for {
		a.index(entry)
		changed := false
		for i := range a.mod.Text {
			in := &a.mod.Text[i]
			if !in.Op.IsBranch() && in.Op != ovm.JMP {
				continue
			}
			t := in.Imm2
			if t >= 0 && int(t) < a.n && a.regionOf[t] != a.regionOf[i] && !entry[t] {
				entry[t] = true
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	a.regions = make([]*region, len(a.entries))
	for i, e := range a.entries {
		end := int32(a.n)
		if i+1 < len(a.entries) {
			end = a.entries[i+1]
		}
		a.regions[i] = &region{idx: i, entry: e, end: end}
	}
}

func (a *analysis) index(entry map[int32]bool) {
	a.entries = a.entries[:0]
	for e := range entry {
		a.entries = append(a.entries, e)
	}
	sort.Slice(a.entries, func(i, j int) bool { return a.entries[i] < a.entries[j] })
	a.regionOf = make([]int, a.n)
	ri := -1
	next := 0
	for i := 0; i < a.n; i++ {
		if next < len(a.entries) && a.entries[next] == int32(i) {
			ri++
			next++
		}
		a.regionOf[i] = ri // -1 for a text prefix before the first entry (unreachable)
	}
}

// name resolves the function name for a region entry: the text symbol
// at that index (globals first, then lexicographically smallest for
// determinism), else a synthetic fn@index.
func (a *analysis) name(entry int32) string {
	best := ""
	bestGlobal := false
	for _, s := range a.mod.Symbols {
		if s.Section != ovm.SecText || int32(s.Value) != entry || s.Name == "" {
			continue
		}
		if best == "" || (s.Global && !bestGlobal) || (s.Global == bestGlobal && s.Name < best) {
			best, bestGlobal = s.Name, s.Global
		}
	}
	if best == "" {
		return fmt.Sprintf("fn@%d", entry)
	}
	return best
}

// writesIntReg reports whether in writes integer register r (stores
// read Rd; FP formats write the FP file).
func writesIntReg(in *ovm.Inst, r uint8) bool {
	if in.Op.IsFP() && in.Op != ovm.CVTSW && in.Op != ovm.CVTDW && in.Op != ovm.MOVFW {
		return false
	}
	switch in.Op.Format() {
	case ovm.FmtRRR, ovm.FmtRRI, ovm.FmtRI, ovm.FmtRR, ovm.FmtLoad, ovm.FmtLoadX, ovm.FmtJal, ovm.FmtJalr:
		return in.Rd == r
	}
	return false
}

// analyzeRegion runs the intra-procedural pass: stack-pointer
// displacement to fixpoint (Bellman-Ford style, so a cycle that grows
// the stack is detected), loop detection, call/tail edge extraction,
// and the direct syscall set.
func (a *analysis) analyzeRegion(r *region) {
	text := a.mod.Text
	size := int(r.end - r.entry)
	r.caps = map[int]bool{}
	r.disp = make([]int64, size)
	for i := range r.disp {
		r.disp[i] = dispUnset
	}

	// delta(i): sp change from executing instruction i; wild if sp is
	// written in any form other than addi sp, sp, imm.
	delta := func(i int32) int64 {
		in := &text[i]
		if in.Op == ovm.ADDI && in.Rd == ovm.RSP && in.Rs1 == ovm.RSP {
			return int64(in.Imm)
		}
		if writesIntReg(in, ovm.RSP) {
			r.spWild = true
		}
		return 0
	}

	// Intra successors of i (offsets stay inside the region by the
	// partition fixpoint; anything else is an inter edge handled below).
	intra := func(i int32) []int32 {
		in := &text[i]
		var out []int32
		fall := func() {
			if i+1 < r.end {
				out = append(out, i+1)
			}
		}
		switch {
		case in.Op.IsBranch():
			if a.regionOf[in.Imm2] == r.idx {
				out = append(out, in.Imm2)
			}
			fall()
		case in.Op == ovm.JMP:
			if in.Imm2 >= 0 && int(in.Imm2) < a.n && a.regionOf[in.Imm2] == r.idx {
				out = append(out, in.Imm2)
			}
		case in.Op == ovm.JR, in.Op == ovm.HALT, in.Op == ovm.BREAK:
			// Return / indirect tail / stop: no intra successor.
		default:
			// JAL and JALR return to the next instruction.
			fall()
		}
		return out
	}

	// Displacement fixpoint: disp[s] = min over predecessors of
	// disp[i] + delta(i), Bellman-Ford style. size passes suffice when
	// every cycle conserves the stack pointer; a relaxation on the
	// extra pass is a stack-growing cycle.
	r.disp[0] = 0
	for pass := 0; pass <= size; pass++ {
		changed := false
		for i := r.entry; i < r.end; i++ {
			if r.disp[i-r.entry] == dispUnset {
				continue
			}
			d := r.disp[i-r.entry] + delta(i)
			for _, s := range intra(i) {
				so := s - r.entry
				if r.disp[so] == dispUnset || d < r.disp[so] {
					r.disp[so] = d
					changed = true
				}
			}
		}
		if !changed {
			break
		}
		if pass == size {
			r.spWild = true // negative (stack-growing) cycle
			return
		}
	}

	// Deepest point, edges, capabilities — over reachable offsets.
	for i := r.entry; i < r.end; i++ {
		d := r.disp[i-r.entry]
		if d == dispUnset {
			continue
		}
		in := &text[i]
		after := d + delta(i)
		if -after > r.local {
			r.local = -after
		}
		depth := max64(0, -d)
		switch in.Op {
		case ovm.JAL:
			t := in.Imm2
			if t >= 0 && int(t) < a.n && a.regionOf[t] >= 0 {
				r.calls = append(r.calls, edge{site: i, targets: []int{a.regionOf[t]}, depth: depth})
			}
		case ovm.JALR:
			r.calls = append(r.calls, edge{site: i, targets: a.indirectTargets(), depth: depth, indirect: true})
			if len(a.addrTaken) == 0 {
				r.indirWild = true
			}
		case ovm.JR:
			if in.Rs1 != ovm.RRA {
				r.tails = append(r.tails, edge{site: i, targets: a.indirectTargets(), depth: depth, indirect: true})
				if len(a.addrTaken) == 0 {
					r.indirWild = true
				}
			}
		case ovm.SYSCALL:
			r.caps[int(in.Imm)] = true
		}
		// Inter-region branch / jump / fall-through: a tail edge.
		if in.Op.IsBranch() || in.Op == ovm.JMP {
			t := in.Imm2
			if t >= 0 && int(t) < a.n && a.regionOf[t] != r.idx && a.regionOf[t] >= 0 {
				r.tails = append(r.tails, edge{site: i, targets: []int{a.regionOf[t]}, depth: depth})
			}
		}
		if i == r.end-1 && int(r.end) < a.n && !in.Op.IsTerminator() {
			// Falling off the region end continues at the next entry.
			r.tails = append(r.tails, edge{site: i, targets: []int{a.regionOf[r.end]}, depth: max64(0, -after)})
		}
	}

	// Intra-CFG cycle detection (for the cost bound): iterative DFS
	// with colors from the entry.
	color := make([]uint8, size) // 0 white, 1 gray, 2 black
	type frame struct {
		node int32
		next int
	}
	succs := make([][]int32, size)
	for i := r.entry; i < r.end; i++ {
		if r.disp[i-r.entry] != dispUnset {
			succs[i-r.entry] = intra(i)
		}
	}
	stack := []frame{{node: r.entry}}
	color[0] = 1
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		ss := succs[f.node-r.entry]
		if f.next >= len(ss) {
			color[f.node-r.entry] = 2
			stack = stack[:len(stack)-1]
			continue
		}
		s := ss[f.next]
		f.next++
		switch color[s-r.entry] {
		case 0:
			color[s-r.entry] = 1
			stack = append(stack, frame{node: s})
		case 1:
			r.hasLoop = true
		}
	}

	r.fn = Function{
		Name:       a.name(r.entry),
		Entry:      r.entry,
		Insts:      size,
		FrameBytes: r.local,
	}
	if r.spWild {
		r.fn.FrameBytes = -1
	}
	for num := range r.caps {
		r.fn.Syscalls = append(r.fn.Syscalls, hostapi.SyscallName(num))
	}
	sort.Strings(r.fn.Syscalls)
}

func (a *analysis) indirectTargets() []int {
	out := make([]int, 0, len(a.addrTaken))
	for _, t := range a.addrTaken {
		if ri := a.regionOf[t]; ri >= 0 {
			out = append(out, ri)
		}
	}
	return out
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// condense runs Tarjan's SCC algorithm over the region graph (call and
// tail edges together) and classifies each SCC: recursive (contains a
// call edge), tail-cycle (cycle of jumps, no call), and stack-growing
// (some in-cycle edge departs with stack held).
func (a *analysis) condense() {
	n := len(a.regions)
	adj := make([][]int, n)
	for i, r := range a.regions {
		seen := map[int]bool{}
		for _, e := range append(append([]edge{}, r.calls...), r.tails...) {
			for _, t := range e.targets {
				if !seen[t] {
					seen[t] = true
					adj[i] = append(adj[i], t)
				}
			}
		}
		sort.Ints(adj[i])
	}

	a.sccOf = make([]int, n)
	for i := range a.sccOf {
		a.sccOf[i] = -1
	}
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	next := 0
	type frame struct {
		v, ei int
	}
	for root := 0; root < n; root++ {
		if index[root] != -1 {
			continue
		}
		call := []frame{{v: root}}
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(call) > 0 {
			f := &call[len(call)-1]
			if f.ei < len(adj[f.v]) {
				w := adj[f.v][f.ei]
				f.ei++
				if index[w] == -1 {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					call = append(call, frame{v: w})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			v := f.v
			call = call[:len(call)-1]
			if len(call) > 0 && low[v] < low[call[len(call)-1].v] {
				low[call[len(call)-1].v] = low[v]
			}
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					a.sccOf[w] = len(a.sccOrder)
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				sort.Ints(comp)
				a.sccOrder = append(a.sccOrder, comp)
			}
		}
	}
	// Tarjan emits SCCs in reverse topological order already (a
	// component is completed only after everything it reaches).

	for _, comp := range a.sccOrder {
		in := map[int]bool{}
		for _, v := range comp {
			in[v] = true
		}
		cyclic := len(comp) > 1
		rec, grow := false, false
		for _, v := range comp {
			r := a.regions[v]
			for _, e := range r.calls {
				for _, t := range e.targets {
					if in[t] {
						cyclic, rec = true, true
					}
				}
			}
			for _, e := range r.tails {
				for _, t := range e.targets {
					if in[t] {
						cyclic = true
						if e.depth > 0 {
							grow = true
						}
					}
				}
			}
		}
		if !cyclic {
			continue
		}
		for _, v := range comp {
			a.regions[v].sccRec = a.regions[v].sccRec || rec
			a.regions[v].sccLoop = true
			a.regions[v].sccGrow = a.regions[v].sccGrow || grow
		}
	}
	for i, r := range a.regions {
		r.scc = a.sccOf[i]
	}
}

// solveStack computes each region's worst-case stack extension
// including callees, walking SCCs callees-first.
func (a *analysis) solveStack() {
	for _, comp := range a.sccOrder {
		// Unbounded classification first.
		unb := ""
		var cycle []int
		for _, v := range comp {
			r := a.regions[v]
			switch {
			case r.sccRec:
				unb = ReasonRecursion
				cycle = comp
			case r.spWild && unb == "":
				unb = "sp"
			case r.indirWild && unb == "":
				unb = "indirect"
			case r.sccGrow && unb == "":
				unb = "loop"
			}
		}
		if unb == "" {
			for _, v := range comp {
				r := a.regions[v]
				for _, e := range append(append([]edge{}, r.calls...), r.tails...) {
					for _, t := range e.targets {
						if a.sccOf[t] == a.sccOf[v] {
							continue
						}
						tr := a.regions[t]
						if tr.stack < 0 {
							unb = tr.stackWhy
							cycle = tr.stackCycle
						}
					}
				}
			}
		}
		if unb != "" {
			for _, v := range comp {
				a.regions[v].stack = -1
				a.regions[v].stackWhy = unb
				a.regions[v].stackCycle = cycle
			}
			continue
		}
		// Bounded: max over members of local depth and edge departures.
		var bound int64
		for _, v := range comp {
			r := a.regions[v]
			if r.local > bound {
				bound = r.local
			}
			for _, e := range append(append([]edge{}, r.calls...), r.tails...) {
				for _, t := range e.targets {
					if a.sccOf[t] == a.sccOf[v] {
						continue // in-cycle tail edges carry depth 0 here
					}
					if d := e.depth + a.regions[t].stack; d > bound {
						bound = d
					}
				}
			}
		}
		for _, v := range comp {
			a.regions[v].stack = bound
		}
	}
	for _, r := range a.regions {
		r.fn.StackBytes = r.stack
	}
}

func (a *analysis) moduleStack(entry int) StackBound {
	r := a.regions[entry]
	if r.stack >= 0 {
		return StackBound{Bounded: true, Bytes: r.stack}
	}
	sb := StackBound{Reason: r.stackWhy}
	for _, v := range r.stackCycle {
		sb.Cycle = append(sb.Cycle, a.regions[v].fn.Name)
	}
	if len(sb.Cycle) > 0 {
		// Close the cycle visually: f -> g -> f.
		sb.Cycle = append(sb.Cycle, sb.Cycle[0])
	}
	return sb
}

// solveCost computes each region's cycle bound under the given
// per-instruction weights: the longest acyclic path through the region
// plus every call site's worst callee plus the worst tail continuation.
// Each call site executes at most once per invocation (the region is a
// DAG when bounded), so summing sites is sound.
func (a *analysis) solveCost(weight []uint64) []CostBound {
	out := make([]CostBound, len(a.regions))
	for _, comp := range a.sccOrder {
		why := ""
		for _, v := range comp {
			r := a.regions[v]
			switch {
			case r.sccRec:
				why = ReasonRecursion
			case r.hasLoop || r.sccLoop:
				if why == "" {
					why = "loop"
				}
			case r.indirWild:
				if why == "" {
					why = "indirect"
				}
			}
		}
		if why == "" {
			for _, v := range comp {
				r := a.regions[v]
				for _, e := range append(append([]edge{}, r.calls...), r.tails...) {
					for _, t := range e.targets {
						if a.sccOf[t] != a.sccOf[v] && !out[t].Bounded {
							why = out[t].Reason
						}
					}
				}
			}
		}
		if why != "" {
			for _, v := range comp {
				out[v] = CostBound{Reason: why}
			}
			continue
		}
		// comp is a single region with no cycle: the longest path
		// through its DAG, by memoized post-order from the entry.
		for _, v := range comp {
			r := a.regions[v]
			best := make([]uint64, r.end-r.entry)
			done := make([]bool, r.end-r.entry)
			type cf struct {
				node int32
				next int
			}
			st := []cf{{node: r.entry}}
			for len(st) > 0 {
				f := &st[len(st)-1]
				ss := a.intraSuccs(r, f.node)
				if f.next < len(ss) {
					s := ss[f.next]
					f.next++
					if !done[s-r.entry] {
						st = append(st, cf{node: s})
					}
					continue
				}
				var m uint64
				for _, s := range ss {
					if c := best[s-r.entry]; c > m {
						m = c
					}
				}
				best[f.node-r.entry] = weight[f.node] + m
				done[f.node-r.entry] = true
				st = st[:len(st)-1]
			}
			total := best[0]
			for _, e := range r.calls {
				var m uint64
				for _, t := range e.targets {
					if out[t].Cycles > m {
						m = out[t].Cycles
					}
				}
				total += m
			}
			var tail uint64
			for _, e := range r.tails {
				for _, t := range e.targets {
					if a.sccOf[t] != a.sccOf[v] && out[t].Cycles > tail {
						tail = out[t].Cycles
					}
				}
			}
			out[v] = CostBound{Bounded: true, Cycles: total + tail}
		}
	}
	return out
}

// intraSuccs mirrors the successor function used during region
// analysis (kept in lockstep; the cost solver needs it again after
// region construction).
func (a *analysis) intraSuccs(r *region, i int32) []int32 {
	in := &a.mod.Text[i]
	var out []int32
	fall := func() {
		if i+1 < r.end {
			out = append(out, i+1)
		}
	}
	switch {
	case in.Op.IsBranch():
		if a.regionOf[in.Imm2] == r.idx {
			out = append(out, in.Imm2)
		}
		fall()
	case in.Op == ovm.JMP:
		if in.Imm2 >= 0 && int(in.Imm2) < a.n && a.regionOf[in.Imm2] == r.idx {
			out = append(out, in.Imm2)
		}
	case in.Op == ovm.JR, in.Op == ovm.HALT, in.Op == ovm.BREAK:
	default:
		fall()
	}
	return out
}

// reachable returns the region set reachable from entry over call and
// tail edges.
func (a *analysis) reachable(entry int) []bool {
	out := make([]bool, len(a.regions))
	work := []int{entry}
	out[entry] = true
	for len(work) > 0 {
		v := work[len(work)-1]
		work = work[:len(work)-1]
		r := a.regions[v]
		for _, e := range append(append([]edge{}, r.calls...), r.tails...) {
			for _, t := range e.targets {
				if !out[t] {
					out[t] = true
					work = append(work, t)
				}
			}
		}
	}
	return out
}

// callEdges flattens the graph for the report, sorted by site. An
// indirect edge with k possible targets contributes k entries.
func (a *analysis) callEdges() []CallEdge {
	var out []CallEdge
	for _, r := range a.regions {
		emit := func(e edge, tail bool) {
			for _, t := range e.targets {
				out = append(out, CallEdge{
					Caller:   r.fn.Name,
					Callee:   a.regions[t].fn.Name,
					Site:     e.site,
					Indirect: e.indirect,
					Tail:     tail,
				})
			}
		}
		for _, e := range r.calls {
			emit(e, false)
		}
		for _, e := range r.tails {
			emit(e, true)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Site != out[j].Site {
			return out[i].Site < out[j].Site
		}
		return out[i].Callee < out[j].Callee
	})
	return out
}
