package audit

import (
	"encoding/json"
	"strings"
	"testing"

	"omniware/internal/cc"
	"omniware/internal/core"
	"omniware/internal/coretest"
)

func compile(t *testing.T, src string) *Report {
	t.Helper()
	mod, err := core.BuildC([]core.SourceFile{{Name: "p.c", Src: src}}, cc.Options{OptLevel: 2})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	rep, err := Analyze(mod)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return rep
}

// A loop-free, recursion-free call chain: the stack bound must be
// finite and the cost bound must exist on every target.
const chainSrc = `
int leaf(int x) { return x + 1; }
int mid(int x) { int buf[8]; buf[0] = x; return leaf(buf[0]) + 2; }
int top(int x) { int buf[16]; buf[1] = x; return mid(buf[1]); }
int main(void) { _print_int(top(3)); return 0; }
`

func TestChainBounded(t *testing.T) {
	rep := compile(t, chainSrc)
	if !rep.Stack.Bounded {
		t.Fatalf("stack unbounded: reason=%q cycle=%v", rep.Stack.Reason, rep.Stack.Cycle)
	}
	if rep.Stack.Bytes <= 0 {
		t.Fatalf("stack bound %d, want > 0", rep.Stack.Bytes)
	}
	for name, c := range rep.Cost {
		if !c.Bounded {
			t.Errorf("%s: cost unbounded (%s), want bounded", name, c.Reason)
		} else if c.Cycles == 0 {
			t.Errorf("%s: zero cost bound", name)
		}
	}
	found := false
	for _, c := range rep.Capabilities {
		if c == "print_int" {
			found = true
		}
	}
	if !found {
		t.Errorf("capabilities %v missing print_int", rep.Capabilities)
	}
}

func TestRecursionNamed(t *testing.T) {
	rep := compile(t, `
int fib(int n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }
int main(void) { return fib(10); }
`)
	if rep.Stack.Bounded {
		t.Fatalf("recursive module reported bounded stack %d", rep.Stack.Bytes)
	}
	if rep.Stack.Reason != ReasonRecursion {
		t.Fatalf("reason %q, want %q", rep.Stack.Reason, ReasonRecursion)
	}
	if !containsName(rep.Stack.Cycle, "fib") {
		t.Fatalf("cycle %v does not name fib", rep.Stack.Cycle)
	}
	vs := rep.Violations(Limits{})
	if len(vs) != 1 || vs[0].Reason != ReasonRecursion {
		t.Fatalf("violations %v, want exactly one recursion", vs)
	}
	if !strings.Contains(vs[0].Detail, "fib") {
		t.Fatalf("violation detail %q does not name the cycle", vs[0].Detail)
	}
}

func TestMutualRecursion(t *testing.T) {
	rep := compile(t, `
int odd(int n);
int even(int n) { return n == 0 ? 1 : odd(n - 1); }
int odd(int n) { return n == 0 ? 0 : even(n - 1); }
int main(void) { return even(9); }
`)
	if rep.Stack.Bounded || rep.Stack.Reason != ReasonRecursion {
		t.Fatalf("stack = %+v, want recursion", rep.Stack)
	}
	if !containsName(rep.Stack.Cycle, "even") || !containsName(rep.Stack.Cycle, "odd") {
		t.Fatalf("cycle %v does not name even and odd", rep.Stack.Cycle)
	}
}

func TestLoopCostUnboundedStackBounded(t *testing.T) {
	rep := compile(t, `
int main(void) {
	int i, s = 0;
	for (i = 0; i < 100; i++) s += i;
	return s & 0xff;
}
`)
	if !rep.Stack.Bounded {
		t.Fatalf("stack = %+v, want bounded", rep.Stack)
	}
	for name, c := range rep.Cost {
		if c.Bounded {
			t.Errorf("%s: looping program reported bounded cost %d", name, c.Cycles)
		}
	}
	// Without a cost cap, loops are not a violation.
	if vs := rep.Violations(Limits{MaxStackBytes: 1 << 20}); len(vs) != 0 {
		t.Fatalf("violations %v, want none", vs)
	}
	// With a cost cap, they are.
	vs := rep.Violations(Limits{MaxCostCycles: 1000})
	if len(vs) == 0 || vs[0].Reason != ReasonCost {
		t.Fatalf("violations %v, want cost", vs)
	}
}

func TestIndirectCallBounded(t *testing.T) {
	rep := compile(t, `
int inc(int x) { return x + 1; }
int dec(int x) { return x - 1; }
int (*table[2])(int) = { inc, dec };
int main(void) { return table[0](table[1](5)); }
`)
	if len(rep.AddressTaken) < 2 {
		t.Fatalf("address-taken %v, want at least inc and dec", rep.AddressTaken)
	}
	indirect := 0
	for _, e := range rep.Calls {
		if e.Indirect && !e.Tail {
			indirect++
		}
	}
	if indirect == 0 {
		t.Fatalf("no indirect call edges in %v", rep.Calls)
	}
	if !rep.Stack.Bounded {
		t.Fatalf("stack = %+v, want bounded (indirect targets are leaf functions)", rep.Stack)
	}
}

func TestStackCapViolation(t *testing.T) {
	rep := compile(t, chainSrc)
	vs := rep.Violations(Limits{MaxStackBytes: 8})
	if len(vs) != 1 || vs[0].Reason != ReasonStack {
		t.Fatalf("violations %v, want one stack violation", vs)
	}
	if !strings.Contains(vs[0].Detail, "exceeds cap 8") {
		t.Fatalf("detail %q does not state the cap", vs[0].Detail)
	}
}

func TestCapabilityGate(t *testing.T) {
	rep := compile(t, `int main(void) { _putc('x'); return 0; }`)
	if vs := rep.Violations(Limits{Capabilities: rep.Capabilities}); len(vs) != 0 {
		t.Fatalf("violations %v under exact allow-list, want none", vs)
	}
	vs := rep.Violations(Limits{Capabilities: []string{"exit"}})
	if len(vs) != 1 || vs[0].Reason != ReasonCapability {
		t.Fatalf("violations %v, want one capability violation", vs)
	}
	if !strings.Contains(vs[0].Detail, "putc") {
		t.Fatalf("detail %q does not name putc", vs[0].Detail)
	}
}

// Every example module gets a deterministic report on all four targets:
// two runs produce byte-identical canonical JSON.
func TestExamplesDeterministic(t *testing.T) {
	for _, c := range coretest.ExampleCases() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			mod, err := core.BuildC(c.Files, c.Opts)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			r1, err := Analyze(mod)
			if err != nil {
				t.Fatalf("analyze: %v", err)
			}
			r2, err := Analyze(mod)
			if err != nil {
				t.Fatalf("analyze again: %v", err)
			}
			b1, _ := json.Marshal(r1)
			b2, _ := json.Marshal(r2)
			if string(b1) != string(b2) {
				t.Fatalf("report not deterministic:\n%s\n%s", b1, b2)
			}
			if r1.Digest() != r2.Digest() {
				t.Fatalf("digest not deterministic")
			}
			if len(r1.Targets) != 4 {
				t.Fatalf("targets %v, want 4", r1.Targets)
			}
			for name, ti := range r1.Targets {
				if ti.Insts == 0 || ti.Blocks == 0 {
					t.Errorf("%s: empty target info %+v", name, ti)
				}
			}
			if len(r1.Functions) == 0 || len(r1.Capabilities) == 0 {
				t.Fatalf("empty report: %d functions, %d capabilities", len(r1.Functions), len(r1.Capabilities))
			}
		})
	}
}

func containsName(names []string, want string) bool {
	for _, n := range names {
		if n == want {
			return true
		}
	}
	return false
}
