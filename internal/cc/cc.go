// Package cc is the OmniC compiler driver: it ties together the
// scanner, parser, semantic checker, IR builder, optimizer and OmniVM
// code generator. This plays the role gcc and lcc played for the
// original Omniware system — all machine-independent optimization
// happens here, before load time (§3 of the paper).
package cc

import (
	"fmt"

	"omniware/internal/cc/gen"
	"omniware/internal/cc/ir"
	"omniware/internal/cc/opt"
	"omniware/internal/cc/parse"
	"omniware/internal/cc/sem"
)

// Options configures compilation.
type Options struct {
	// OptLevel 0 disables machine-independent optimization; 1 enables
	// the standard pass pipeline (constant folding/propagation, CSE,
	// DCE, strength reduction, loop-invariant code motion, addressing
	// fusion). 2 additionally runs the pipeline to a fixed point.
	OptLevel int
	// IntRegFile / FPRegFile bound the OmniVM register file the
	// compiler may use (Table 2); 0 means the full 16.
	IntRegFile int
	FPRegFile  int
}

// Result carries the products of compiling one translation unit.
type Result struct {
	Asm   string
	Funcs []*ir.Func // post-optimization IR (for inspection/tests)
}

// Compile compiles OmniC source to OmniVM assembly.
func Compile(filename, source string, opts Options) (*Result, error) {
	file, err := parse.File(filename, source)
	if err != nil {
		return nil, err
	}
	info, err := sem.Check(file)
	if err != nil {
		return nil, err
	}
	var funcs []*ir.Func
	for _, fd := range file.Funcs {
		if fd.Body == nil {
			continue
		}
		f, err := ir.BuildFunc(fd)
		if err != nil {
			return nil, err
		}
		opt.Run(f, opts.OptLevel)
		funcs = append(funcs, f)
	}
	asm, err := gen.File(file, info, funcs, gen.Options{
		IntRegFile: opts.IntRegFile,
		FPRegFile:  opts.FPRegFile,
	})
	if err != nil {
		return nil, err
	}
	return &Result{Asm: asm, Funcs: funcs}, nil
}

// BuildIR compiles source only as far as optimized IR, for the native
// back ends (which select target instructions directly from IR rather
// than going through OmniVM).
func BuildIR(filename, source string, opts Options) ([]*ir.Func, *sem.Info, error) {
	file, err := parse.File(filename, source)
	if err != nil {
		return nil, nil, err
	}
	info, err := sem.Check(file)
	if err != nil {
		return nil, nil, err
	}
	var funcs []*ir.Func
	for _, fd := range file.Funcs {
		if fd.Body == nil {
			continue
		}
		f, err := ir.BuildFunc(fd)
		if err != nil {
			return nil, nil, err
		}
		opt.Run(f, opts.OptLevel)
		funcs = append(funcs, f)
	}
	return funcs, info, nil
}

// Crt0 is the startup stub linked into every executable: it calls main
// and passes the result to the exit host call.
const Crt0 = `# crt0
.text
.globl _start
_start:
	jal r15, main
	syscall 0
	halt
`

// CompileError formats a compilation failure for tool output.
func CompileError(file string, err error) error {
	return fmt.Errorf("omnicc: %s: %w", file, err)
}
