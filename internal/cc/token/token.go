// Package token defines the lexical tokens of OmniC, the C subset the
// Omniware compiler accepts (the role gcc/lcc played for the original
// system).
package token

import "fmt"

// Kind enumerates token kinds.
type Kind int

const (
	EOF Kind = iota
	Ident
	IntLit   // integer literal (value in Token.Int)
	FloatLit // floating literal (value in Token.Float)
	CharLit  // character constant (value in Token.Int)
	StrLit   // string literal (value in Token.Str)

	// Punctuation and operators.
	LParen
	RParen
	LBrace
	RBrace
	LBrack
	RBrack
	Semi
	Comma
	Colon
	Question
	Dot
	Arrow
	Ellipsis

	Plus
	Minus
	Star
	Slash
	Percent
	Amp
	Pipe
	Caret
	Tilde
	Not
	Shl
	Shr
	Lt
	Gt
	Le
	Ge
	EqEq
	NotEq
	AndAnd
	OrOr
	Inc
	Dec

	Assign
	PlusAssign
	MinusAssign
	StarAssign
	SlashAssign
	PercentAssign
	AmpAssign
	PipeAssign
	CaretAssign
	ShlAssign
	ShrAssign

	// Keywords.
	KwVoid
	KwChar
	KwShort
	KwInt
	KwLong
	KwUnsigned
	KwSigned
	KwFloat
	KwDouble
	KwStruct
	KwUnion
	KwEnum
	KwTypedef
	KwIf
	KwElse
	KwWhile
	KwDo
	KwFor
	KwSwitch
	KwCase
	KwDefault
	KwBreak
	KwContinue
	KwReturn
	KwGoto
	KwSizeof
	KwStatic
	KwExtern
	KwConst
	KwRegister
)

var kindNames = map[Kind]string{
	EOF: "EOF", Ident: "identifier", IntLit: "integer literal",
	FloatLit: "float literal", CharLit: "char literal", StrLit: "string literal",
	LParen: "(", RParen: ")", LBrace: "{", RBrace: "}", LBrack: "[", RBrack: "]",
	Semi: ";", Comma: ",", Colon: ":", Question: "?", Dot: ".", Arrow: "->", Ellipsis: "...",
	Plus: "+", Minus: "-", Star: "*", Slash: "/", Percent: "%", Amp: "&", Pipe: "|",
	Caret: "^", Tilde: "~", Not: "!", Shl: "<<", Shr: ">>", Lt: "<", Gt: ">",
	Le: "<=", Ge: ">=", EqEq: "==", NotEq: "!=", AndAnd: "&&", OrOr: "||",
	Inc: "++", Dec: "--",
	Assign: "=", PlusAssign: "+=", MinusAssign: "-=", StarAssign: "*=",
	SlashAssign: "/=", PercentAssign: "%=", AmpAssign: "&=", PipeAssign: "|=",
	CaretAssign: "^=", ShlAssign: "<<=", ShrAssign: ">>=",
	KwVoid: "void", KwChar: "char", KwShort: "short", KwInt: "int", KwLong: "long",
	KwUnsigned: "unsigned", KwSigned: "signed", KwFloat: "float", KwDouble: "double",
	KwStruct: "struct", KwUnion: "union", KwEnum: "enum", KwTypedef: "typedef",
	KwIf: "if", KwElse: "else", KwWhile: "while", KwDo: "do", KwFor: "for",
	KwSwitch: "switch", KwCase: "case", KwDefault: "default", KwBreak: "break",
	KwContinue: "continue", KwReturn: "return", KwGoto: "goto", KwSizeof: "sizeof",
	KwStatic: "static", KwExtern: "extern", KwConst: "const", KwRegister: "register",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

// Keywords maps keyword spellings to kinds.
var Keywords = map[string]Kind{
	"void": KwVoid, "char": KwChar, "short": KwShort, "int": KwInt, "long": KwLong,
	"unsigned": KwUnsigned, "signed": KwSigned, "float": KwFloat, "double": KwDouble,
	"struct": KwStruct, "union": KwUnion, "enum": KwEnum, "typedef": KwTypedef,
	"if": KwIf, "else": KwElse, "while": KwWhile, "do": KwDo, "for": KwFor,
	"switch": KwSwitch, "case": KwCase, "default": KwDefault, "break": KwBreak,
	"continue": KwContinue, "return": KwReturn, "goto": KwGoto, "sizeof": KwSizeof,
	"static": KwStatic, "extern": KwExtern, "const": KwConst, "register": KwRegister,
}

// Pos is a source position.
type Pos struct {
	File string
	Line int
	Col  int
}

func (p Pos) String() string { return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col) }

// Token is one lexical token.
type Token struct {
	Kind  Kind
	Pos   Pos
	Text  string  // identifier spelling
	Int   int64   // IntLit/CharLit value
	Uns   bool    // IntLit had a U suffix or is hex > MaxInt32
	Float float64 // FloatLit value
	IsF32 bool    // FloatLit had an f suffix
	Str   string  // StrLit decoded contents
}

func (t Token) String() string {
	switch t.Kind {
	case Ident:
		return t.Text
	case IntLit:
		return fmt.Sprintf("%d", t.Int)
	case FloatLit:
		return fmt.Sprintf("%g", t.Float)
	case StrLit:
		return fmt.Sprintf("%q", t.Str)
	}
	return t.Kind.String()
}
