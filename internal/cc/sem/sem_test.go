package sem

import (
	"strings"
	"testing"

	"omniware/internal/cc/ast"
	"omniware/internal/cc/parse"
)

func check(t *testing.T, src string) (*ast.File, *Info) {
	t.Helper()
	f, err := parse.File("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := Check(f)
	if err != nil {
		t.Fatal(err)
	}
	return f, info
}

func checkErr(t *testing.T, src, want string) {
	t.Helper()
	f, err := parse.File("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = Check(f)
	if err == nil {
		t.Fatalf("accepted: %s", src)
	}
	if !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not mention %q", err, want)
	}
}

func TestResolveLocalsAndGlobals(t *testing.T) {
	f, info := check(t, `
int g = 3;
int f(int a) {
	int b = a + g;
	{
		int b = 2; /* shadows */
		a = b;
	}
	return b;
}
`)
	fn := f.Funcs[0]
	if len(fn.Locals) != 3 {
		t.Fatalf("locals: %d", len(fn.Locals))
	}
	if !fn.Locals[0].IsParam {
		t.Error("param flag")
	}
	if _, ok := info.Globals["g"]; !ok {
		t.Error("global g missing")
	}
}

func TestImplicitConversions(t *testing.T) {
	f, _ := check(t, `
double d;
int f(char c, int i) {
	d = i;        /* int -> double cast inserted */
	return c + i; /* char promoted */
}
`)
	fn := f.Funcs[0]
	es := fn.Body.List[0].(*ast.ExprStmt)
	as := es.X.(*ast.Assign)
	if _, ok := as.Y.(*ast.Cast); !ok {
		t.Errorf("no cast inserted: %T", as.Y)
	}
	ret := fn.Body.List[1].(*ast.Return)
	bin := ret.X.(*ast.Binary)
	if bin.X.Type() != ast.Int {
		t.Errorf("char not promoted: %v", bin.X.Type())
	}
}

func TestPointerArith(t *testing.T) {
	check(t, `
int f(int *p, int n) {
	int *q = p + n;
	int d = q - p;
	return d + *q + p[n];
}
`)
	checkErr(t, "int f(int *p, double d) { return *(p + d); }", "")
}

func TestArrayDecay(t *testing.T) {
	f, _ := check(t, `
int tab[8];
int *f(void) { return tab; }
`)
	ret := f.Funcs[0].Body.List[0].(*ast.Return)
	if ret.X.Type().Kind != ast.TPtr {
		t.Errorf("array did not decay: %v", ret.X.Type())
	}
}

func TestStructMembers(t *testing.T) {
	f, _ := check(t, `
struct point { int x; int y; };
struct point p;
int f(struct point *q) {
	p.x = 1;
	return q->y + p.x;
}
`)
	fn := f.Funcs[0]
	es := fn.Body.List[0].(*ast.ExprStmt)
	as := es.X.(*ast.Assign)
	mem := as.X.(*ast.Member)
	if mem.Field == nil || mem.Field.Name != "x" {
		t.Errorf("field not resolved: %+v", mem.Field)
	}
}

func TestFunctionPointerCalls(t *testing.T) {
	check(t, `
int add(int a, int b) { return a + b; }
int apply(int (*f)(int, int), int a, int b) { return f(a, b); }
int main(void) {
	int (*g)(int, int);
	g = add;
	return apply(g, 1, 2) + (*g)(3, 4);
}
`)
}

func TestBuiltins(t *testing.T) {
	f, _ := check(t, `
int main(void) {
	_putc(65);
	_print_int(42);
	_puts("hi");
	return 0;
}
`)
	es := f.Funcs[0].Body.List[0].(*ast.ExprStmt)
	call := es.X.(*ast.Call)
	id := call.Fn.(*ast.Ident)
	if id.Kind != ast.SymBuiltin {
		t.Errorf("builtin not resolved: %v", id.Kind)
	}
}

func TestAddrTaken(t *testing.T) {
	f, _ := check(t, `
void g(int *p) {}
int f(void) {
	int a = 1;
	int b = 2;
	g(&a);
	return a + b;
}
`)
	fn := f.Funcs[1]
	var la, lb *ast.Local
	for _, l := range fn.Locals {
		switch l.Name {
		case "a":
			la = l
		case "b":
			lb = l
		}
	}
	if !la.AddrTaken {
		t.Error("a should be address-taken")
	}
	if lb.AddrTaken {
		t.Error("b should not be address-taken")
	}
}

func TestSizeofFolded(t *testing.T) {
	f, _ := check(t, `
struct s { double d; char c; };
int f(void) { return sizeof(struct s) + sizeof(int); }
`)
	ret := f.Funcs[0].Body.List[0].(*ast.Return)
	// sizeof is unsigned, so the sum converts back to int via a cast.
	inner := ret.X
	if cast, ok := inner.(*ast.Cast); ok {
		inner = cast.X
	}
	bin := inner.(*ast.Binary)
	x := bin.X.(*ast.IntLit)
	if x.Val != 16 {
		t.Errorf("sizeof(struct s) = %d", x.Val)
	}
}

func TestStringLabels(t *testing.T) {
	f, _ := check(t, `char *a = "x"; char *b = "y";`)
	if f.Strings[0].Label == "" || f.Strings[0].Label == f.Strings[1].Label {
		t.Errorf("labels: %q %q", f.Strings[0].Label, f.Strings[1].Label)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{"int f(void) { return x; }", "undefined"},
		{"int f(void) { int a; int a; return 0; }", "redeclared"},
		{"int f(int a) { return a(); }", "not a function"},
		{"int g(int a) { return 0; } int f(void) { return g(1, 2); }", "arguments"},
		{"void f(void) { return 3; }", "void function"},
		{"int f(void) { return; }", "missing return"},
		{"int f(void) { 3 = 4; return 0; }", "lvalue"},
		{"int f(double d) { int *p; return *(p + d); }", "invalid operands"},
		{"struct s { int x; }; int f(struct s v) { return v.y; }", "no member"},
		{"int f(void) { goto nowhere; return 0; }", "undefined label"},
		{"int x = 3; double x;", "redeclared with different type"},
		{"int f(void) { return 0; } int f(void) { return 1; }", "redefined"},
		{"int f(int *p) { double d; d = p; return 0; }", "convert"},
		{"int a[3]; int f(void) { a = 0; return 0; }", "array"},
		{"int f(void) { switch (1.5) { } return 0; }", "integer"},
	}
	for _, c := range cases {
		checkErr(t, c.src, c.want)
	}
}

func TestExternAndProto(t *testing.T) {
	_, info := check(t, `
extern int shared;
int helper(int);
int f(void) { return helper(shared); }
int helper(int x) { return x * 2; }
`)
	if info.Funcs["helper"].Body == nil {
		t.Error("definition did not supersede prototype")
	}
}

func TestGlobalInitConst(t *testing.T) {
	check(t, `
int a = 3 + 4;
int tab[2] = {1, 2};
char *s = "hi";
int *p = &a;
int (*fp)(void);
int get(void) { return 1; }
int b[2];
int *q = b;
`)
	checkErr(t, "int g(void) { return 1; } int x = g();", "not constant")
}

func TestVoidPointer(t *testing.T) {
	check(t, `
int f(void *v) {
	int *p = v;
	return *p;
}
`)
	checkErr(t, "int f(void *v) { return *v; }", "void pointer")
}
