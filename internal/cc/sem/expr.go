package sem

import (
	"omniware/internal/cc/ast"
	"omniware/internal/cc/token"
)

// expr type-checks e and returns the (possibly rewritten) expression
// with its type set. Array- and function-typed values decay to
// pointers.
func (c *checker) expr(e ast.Expr) ast.Expr {
	e = c.exprNoDecay(e)
	return c.decay(e)
}

// decay converts array values to pointers to their first element, and
// function designators to function pointers.
func (c *checker) decay(e ast.Expr) ast.Expr {
	t := e.Type()
	if t == nil {
		return e
	}
	switch t.Kind {
	case ast.TArray:
		e.SetType(ast.PtrTo(t.Elem))
	case ast.TFunc:
		e.SetType(ast.PtrTo(t))
	}
	return e
}

func (c *checker) exprNoDecay(e ast.Expr) ast.Expr {
	switch n := e.(type) {
	case *ast.IntLit:
		if n.Type() == nil {
			n.SetType(ast.Int)
		}
		return n
	case *ast.FloatLit:
		if n.Type() == nil {
			n.SetType(ast.Double)
		}
		return n
	case *ast.StrLit:
		n.SetType(ast.PtrTo(ast.Char))
		return n
	case *ast.Ident:
		return c.ident(n)
	case *ast.Unary:
		return c.unary(n)
	case *ast.Postfix:
		n.X = c.expr(n.X)
		if !c.isLvalue(n.X) || !n.X.Type().IsScalar() {
			c.errf(n.Pos(), "operand of %v must be a scalar lvalue", n.Op)
		}
		n.SetType(n.X.Type())
		return n
	case *ast.Binary:
		return c.binary(n)
	case *ast.Assign:
		return c.assign(n)
	case *ast.Cond:
		n.C = c.condition(n.C)
		n.X = c.expr(n.X)
		n.Y = c.expr(n.Y)
		tx, ty := n.X.Type(), n.Y.Type()
		switch {
		case tx.IsArith() && ty.IsArith():
			t := usualArith(tx, ty)
			n.X = c.convert(n.X, t, "conditional")
			n.Y = c.convert(n.Y, t, "conditional")
			n.SetType(t)
		case tx.Kind == ast.TPtr && ty.Kind == ast.TPtr:
			n.SetType(tx)
		case tx.Kind == ast.TPtr && isNullConst(n.Y):
			n.Y = c.convert(n.Y, tx, "conditional")
			n.SetType(tx)
		case ty.Kind == ast.TPtr && isNullConst(n.X):
			n.X = c.convert(n.X, ty, "conditional")
			n.SetType(ty)
		case tx.Kind == ast.TVoid && ty.Kind == ast.TVoid:
			n.SetType(ast.Void)
		default:
			c.errf(n.Pos(), "incompatible conditional types %v and %v", tx, ty)
			n.SetType(tx)
		}
		return n
	case *ast.Call:
		return c.call(n)
	case *ast.Index:
		n.X = c.expr(n.X)
		n.I = c.expr(n.I)
		if n.X.Type().Kind != ast.TPtr {
			// Allow i[p] just like C.
			if n.I.Type().Kind == ast.TPtr {
				n.X, n.I = n.I, n.X
			} else {
				c.errf(n.Pos(), "indexed expression is not a pointer (type %v)", n.X.Type())
				n.SetType(ast.Int)
				return n
			}
		}
		if !n.I.Type().IsInteger() {
			c.errf(n.Pos(), "array index must be integer, got %v", n.I.Type())
		}
		n.I = c.promote(n.I)
		elem := n.X.Type().Elem
		if elem.Kind == ast.TVoid {
			c.errf(n.Pos(), "cannot index void pointer")
		}
		n.SetType(elem)
		return n
	case *ast.Member:
		n.X = c.exprNoDecay(n.X)
		st := n.X.Type()
		if n.PtrDeref {
			n.X = c.decay(n.X)
			st = n.X.Type()
			if st.Kind != ast.TPtr || st.Elem.Kind != ast.TStruct {
				c.errf(n.Pos(), "-> on non-struct-pointer type %v", st)
				n.SetType(ast.Int)
				return n
			}
			st = st.Elem
		} else if st.Kind != ast.TStruct {
			c.errf(n.Pos(), ". on non-struct type %v", st)
			n.SetType(ast.Int)
			return n
		}
		f := st.Field(n.Name)
		if f == nil {
			c.errf(n.Pos(), "struct %s has no member %q", st.Tag, n.Name)
			n.SetType(ast.Int)
			return n
		}
		n.Field = f
		n.SetType(f.Type)
		return n
	case *ast.Cast:
		n.X = c.expr(n.X)
		from, to := n.X.Type(), n.To
		if to.Kind == ast.TVoid {
			n.SetType(to)
			return n
		}
		okFrom := from.IsScalar()
		okTo := to.IsScalar()
		if !okFrom || !okTo {
			c.errf(n.Pos(), "invalid cast from %v to %v", from, to)
		}
		if to.Kind == ast.TPtr && from.IsFloat() || from.Kind == ast.TPtr && to.IsFloat() {
			c.errf(n.Pos(), "cannot cast between pointer and floating type")
		}
		n.SetType(to)
		return n
	case *ast.SizeofType:
		if n.X != nil {
			x := c.exprNoDecay(n.X)
			n.Of = x.Type()
			n.X = nil
		}
		sz := n.Of.Size()
		if sz == 0 && n.Of.Kind != ast.TVoid {
			c.errf(n.Pos(), "sizeof incomplete type %v", n.Of)
		}
		lit := &ast.IntLit{Val: int64(sz)}
		lit.P = n.Pos()
		lit.SetType(ast.UInt)
		return lit
	}
	c.errf(e.Pos(), "unsupported expression %T", e)
	e.SetType(ast.Int)
	return e
}

func (c *checker) ident(n *ast.Ident) ast.Expr {
	if id, ok := c.lookupLocal(n.Name); ok {
		n.Kind = ast.SymLocal
		n.LocalID = id
		n.SetType(c.fn.Locals[id].Ty)
		return n
	}
	if g, ok := c.info.Globals[n.Name]; ok {
		n.Kind = ast.SymGlobal
		n.DeclTy = g.Ty
		n.SetType(g.Ty)
		return n
	}
	if fn, ok := c.info.Funcs[n.Name]; ok {
		n.Kind = ast.SymFunc
		n.SetType(fn.Ty)
		return n
	}
	if b, ok := Builtins[n.Name]; ok {
		n.Kind = ast.SymBuiltin
		n.Builtin = b.Num
		n.SetType(b.Ty)
		return n
	}
	c.errf(n.Pos(), "undefined identifier %q", n.Name)
	n.SetType(ast.Int)
	return n
}

func (c *checker) unary(n *ast.Unary) ast.Expr {
	switch n.Op {
	case token.Minus:
		n.X = c.expr(n.X)
		if !n.X.Type().IsArith() {
			c.errf(n.Pos(), "unary - on non-arithmetic type %v", n.X.Type())
		}
		n.X = c.promote(n.X)
		n.SetType(n.X.Type())
	case token.Tilde:
		n.X = c.expr(n.X)
		if !n.X.Type().IsInteger() {
			c.errf(n.Pos(), "~ on non-integer type %v", n.X.Type())
		}
		n.X = c.promote(n.X)
		n.SetType(n.X.Type())
	case token.Not:
		n.X = c.expr(n.X)
		if !n.X.Type().IsScalar() {
			c.errf(n.Pos(), "! on non-scalar type %v", n.X.Type())
		}
		n.SetType(ast.Int)
	case token.Star:
		n.X = c.expr(n.X)
		t := n.X.Type()
		if t.Kind != ast.TPtr {
			c.errf(n.Pos(), "dereference of non-pointer type %v", t)
			n.SetType(ast.Int)
			return n
		}
		if t.Elem.Kind == ast.TVoid {
			c.errf(n.Pos(), "dereference of void pointer")
			n.SetType(ast.Int)
			return n
		}
		n.SetType(t.Elem)
	case token.Amp:
		n.X = c.exprNoDecay(n.X)
		t := n.X.Type()
		if t.Kind == ast.TFunc {
			n.SetType(ast.PtrTo(t))
			return n
		}
		if !c.isLvalue(n.X) {
			c.errf(n.Pos(), "& requires an lvalue")
			n.SetType(ast.PtrTo(ast.Int))
			return n
		}
		c.markAddrTaken(n.X)
		n.SetType(ast.PtrTo(t))
	case token.Inc, token.Dec:
		n.X = c.expr(n.X)
		if !c.isLvalue(n.X) || !n.X.Type().IsScalar() {
			c.errf(n.Pos(), "operand of %v must be a scalar lvalue", n.Op)
		}
		n.SetType(n.X.Type())
	}
	return n
}

// markAddrTaken records that a local's address escapes, forcing it to a
// stack slot instead of a virtual register.
func (c *checker) markAddrTaken(e ast.Expr) {
	for {
		switch n := e.(type) {
		case *ast.Ident:
			if n.Kind == ast.SymLocal {
				c.fn.Locals[n.LocalID].AddrTaken = true
			}
			return
		case *ast.Member:
			if n.PtrDeref {
				return
			}
			e = n.X
		default:
			return
		}
	}
}

func (c *checker) isLvalue(e ast.Expr) bool {
	switch n := e.(type) {
	case *ast.Ident:
		return n.Kind == ast.SymLocal || n.Kind == ast.SymGlobal
	case *ast.Unary:
		return n.Op == token.Star
	case *ast.Index:
		return true
	case *ast.Member:
		if n.PtrDeref {
			return true
		}
		return c.isLvalue(n.X)
	}
	return false
}

func isNullConst(e ast.Expr) bool {
	lit, ok := e.(*ast.IntLit)
	return ok && lit.Val == 0
}

// promote applies integer promotion (char/short -> int).
func (c *checker) promote(e ast.Expr) ast.Expr {
	t := e.Type()
	switch t.Kind {
	case ast.TChar, ast.TShort:
		return c.convert(e, ast.Int, "promotion")
	case ast.TUChar, ast.TUShort:
		// Both fit in int, which C prescribes.
		return c.convert(e, ast.Int, "promotion")
	}
	return e
}

// usualArith computes the usual arithmetic conversion result type.
func usualArith(a, b *ast.Type) *ast.Type {
	if a.Kind == ast.TDouble || b.Kind == ast.TDouble {
		return ast.Double
	}
	if a.Kind == ast.TFloat || b.Kind == ast.TFloat {
		return ast.Float
	}
	// After promotion everything is int or unsigned.
	if a.Kind == ast.TUInt || b.Kind == ast.TUInt {
		return ast.UInt
	}
	return ast.Int
}

// convert inserts a cast of e to type to if needed; reports an error if
// the implicit conversion is not allowed.
func (c *checker) convert(e ast.Expr, to *ast.Type, what string) ast.Expr {
	from := e.Type()
	if ast.Same(from, to) {
		return e
	}
	ok := false
	switch {
	case from.IsArith() && to.IsArith():
		ok = true
	case from.Kind == ast.TPtr && to.Kind == ast.TPtr:
		// Identical, via void*, or char*-to-anything (OmniC relaxation
		// so a char*-returning allocator works without casts at every
		// call site; real C would warn).
		ok = ast.Same(from.Elem, to.Elem) ||
			from.Elem.Kind == ast.TVoid || to.Elem.Kind == ast.TVoid ||
			from.Elem.Kind == ast.TChar || to.Elem.Kind == ast.TChar
	case to.Kind == ast.TPtr && isNullConst(e):
		ok = true
	case to.Kind == ast.TPtr && from.IsInteger():
		// Integer to pointer requires an explicit cast in C; OmniC
		// refuses it implicitly except the null constant above.
		ok = false
	case to.IsInteger() && from.Kind == ast.TPtr:
		ok = false
	}
	if !ok {
		c.errf(e.Pos(), "cannot convert %v to %v in %s", from, to, what)
		e.SetType(to)
		return e
	}
	// Fold literal conversions immediately.
	if lit, isInt := e.(*ast.IntLit); isInt && to.IsArith() {
		if to.IsFloat() {
			fl := &ast.FloatLit{Val: float64(lit.Val)}
			fl.P = lit.P
			fl.SetType(to)
			return fl
		}
		nl := &ast.IntLit{Val: truncInt(lit.Val, to)}
		nl.P = lit.P
		nl.SetType(to)
		return nl
	}
	cast := &ast.Cast{To: to, X: e}
	cast.P = e.Pos()
	cast.SetType(to)
	return cast
}

func truncInt(v int64, t *ast.Type) int64 {
	switch t.Kind {
	case ast.TChar:
		return int64(int8(v))
	case ast.TUChar:
		return int64(uint8(v))
	case ast.TShort:
		return int64(int16(v))
	case ast.TUShort:
		return int64(uint16(v))
	case ast.TUInt:
		return int64(uint32(v))
	default:
		return int64(int32(v))
	}
}

func (c *checker) binary(n *ast.Binary) ast.Expr {
	if n.Op == token.Comma {
		n.X = c.expr(n.X)
		n.Y = c.expr(n.Y)
		n.SetType(n.Y.Type())
		return n
	}
	if n.Op == token.AndAnd || n.Op == token.OrOr {
		n.X = c.condition(n.X)
		n.Y = c.condition(n.Y)
		n.SetType(ast.Int)
		return n
	}
	n.X = c.expr(n.X)
	n.Y = c.expr(n.Y)
	tx, ty := n.X.Type(), n.Y.Type()

	switch n.Op {
	case token.Plus:
		switch {
		case tx.Kind == ast.TPtr && ty.IsInteger():
			n.Y = c.promote(n.Y)
			n.SetType(tx)
			return n
		case ty.Kind == ast.TPtr && tx.IsInteger():
			n.X, n.Y = n.Y, n.X
			n.Y = c.promote(n.Y)
			n.SetType(n.X.Type())
			return n
		}
	case token.Minus:
		switch {
		case tx.Kind == ast.TPtr && ty.IsInteger():
			n.Y = c.promote(n.Y)
			n.SetType(tx)
			return n
		case tx.Kind == ast.TPtr && ty.Kind == ast.TPtr:
			if !ast.Same(tx.Elem, ty.Elem) {
				c.errf(n.Pos(), "pointer subtraction of incompatible types %v and %v", tx, ty)
			}
			n.SetType(ast.Int)
			return n
		}
	case token.EqEq, token.NotEq, token.Lt, token.Gt, token.Le, token.Ge:
		if tx.Kind == ast.TPtr || ty.Kind == ast.TPtr {
			okPtr := tx.Kind == ast.TPtr && ty.Kind == ast.TPtr ||
				tx.Kind == ast.TPtr && isNullConst(n.Y) ||
				ty.Kind == ast.TPtr && isNullConst(n.X)
			if !okPtr {
				c.errf(n.Pos(), "comparison of %v with %v", tx, ty)
			}
			n.SetType(ast.Int)
			return n
		}
	}

	// Arithmetic and bitwise operators.
	if !tx.IsArith() || !ty.IsArith() {
		c.errf(n.Pos(), "invalid operands to %v: %v and %v", n.Op, tx, ty)
		n.SetType(ast.Int)
		return n
	}
	switch n.Op {
	case token.Percent, token.Amp, token.Pipe, token.Caret, token.Shl, token.Shr:
		if !tx.IsInteger() || !ty.IsInteger() {
			c.errf(n.Pos(), "%v requires integer operands", n.Op)
		}
	}
	if n.Op == token.Shl || n.Op == token.Shr {
		// Shifts do not balance types; the result has the promoted
		// left-operand type.
		n.X = c.promote(n.X)
		n.Y = c.promote(n.Y)
		n.SetType(n.X.Type())
		return n
	}
	t := usualArith(promotedType(tx), promotedType(ty))
	n.X = c.convert(c.promote(n.X), t, "arithmetic")
	n.Y = c.convert(c.promote(n.Y), t, "arithmetic")
	switch n.Op {
	case token.EqEq, token.NotEq, token.Lt, token.Gt, token.Le, token.Ge:
		n.SetType(ast.Int)
	default:
		n.SetType(t)
	}
	return n
}

func promotedType(t *ast.Type) *ast.Type {
	switch t.Kind {
	case ast.TChar, ast.TUChar, ast.TShort, ast.TUShort:
		return ast.Int
	}
	return t
}

func (c *checker) assign(n *ast.Assign) ast.Expr {
	n.X = c.exprNoDecay(n.X)
	n.Y = c.expr(n.Y)
	tx := n.X.Type()
	if tx.Kind == ast.TArray {
		c.errf(n.Pos(), "cannot assign to an array")
		n.SetType(tx)
		return n
	}
	if !c.isLvalue(n.X) {
		c.errf(n.Pos(), "assignment target is not an lvalue")
	}
	if n.Op == token.Assign {
		if tx.Kind == ast.TStruct {
			if !ast.Same(tx, n.Y.Type()) {
				c.errf(n.Pos(), "struct assignment of incompatible types %v and %v", tx, n.Y.Type())
			}
			n.SetType(tx)
			return n
		}
		n.Y = c.convert(n.Y, tx, "assignment")
		n.SetType(tx)
		return n
	}
	// Compound assignment: x op= y behaves like x = x op y.
	if tx.Kind == ast.TPtr {
		if n.Op != token.Plus && n.Op != token.Minus || !n.Y.Type().IsInteger() {
			c.errf(n.Pos(), "invalid compound assignment to pointer")
		}
		n.SetType(tx)
		return n
	}
	if !tx.IsArith() || !n.Y.Type().IsArith() {
		c.errf(n.Pos(), "invalid operands to compound assignment: %v and %v", tx, n.Y.Type())
	}
	switch n.Op {
	case token.Percent, token.Amp, token.Pipe, token.Caret, token.Shl, token.Shr:
		if !tx.IsInteger() || !n.Y.Type().IsInteger() {
			c.errf(n.Pos(), "compound %v requires integer operands", n.Op)
		}
	}
	n.SetType(tx)
	return n
}

func (c *checker) call(n *ast.Call) ast.Expr {
	// Resolve the callee without decaying a direct function name.
	var fnType *ast.Type
	if id, ok := n.Fn.(*ast.Ident); ok {
		c.ident(id)
		switch id.Kind {
		case ast.SymFunc, ast.SymBuiltin:
			fnType = id.Type()
		default:
			id2 := c.decay(id)
			n.Fn = id2
			t := id2.Type()
			if t.Kind == ast.TPtr && t.Elem.Kind == ast.TFunc {
				fnType = t.Elem
			}
		}
	} else {
		n.Fn = c.expr(n.Fn)
		t := n.Fn.Type()
		if t.Kind == ast.TPtr && t.Elem.Kind == ast.TFunc {
			fnType = t.Elem
		} else if t.Kind == ast.TFunc {
			fnType = t
		}
	}
	if fnType == nil {
		c.errf(n.Pos(), "called object is not a function")
		n.SetType(ast.Int)
		return n
	}
	if !fnType.Old {
		if len(n.Args) != len(fnType.Params) {
			c.errf(n.Pos(), "call has %d arguments, want %d", len(n.Args), len(fnType.Params))
		}
	}
	for i, a := range n.Args {
		a = c.expr(a)
		if !fnType.Old && i < len(fnType.Params) {
			a = c.convert(a, fnType.Params[i], "argument")
		} else {
			// Default argument promotions for old-style calls.
			a = c.promote(a)
			if a.Type().Kind == ast.TFloat {
				a = c.convert(a, ast.Double, "argument")
			}
		}
		n.Args[i] = a
	}
	if fnType.Ret.Kind == ast.TStruct {
		c.errf(n.Pos(), "struct return values are not supported in OmniC")
	}
	n.SetType(fnType.Ret)
	return n
}
