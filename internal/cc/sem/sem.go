// Package sem implements OmniC semantic analysis: name resolution,
// type checking, implicit-conversion insertion, and lvalue/constant
// validation. It rewrites the AST in place (inserting ast.Cast nodes
// where conversions occur) so the IR builder can be purely mechanical.
package sem

import (
	"fmt"

	"omniware/internal/cc/ast"
	"omniware/internal/cc/token"
	"omniware/internal/hostapi"
)

// Error is a semantic diagnostic.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Builtin host calls available to every translation unit, keyed by
// name. These compile to single SYSCALL instructions.
var Builtins = map[string]struct {
	Num int
	Ty  *ast.Type
}{
	"_exit":         {hostapi.SysExit, fnType(ast.Void, ast.Int)},
	"_putc":         {hostapi.SysPutc, fnType(ast.Void, ast.Int)},
	"_puts":         {hostapi.SysPuts, fnType(ast.Void, ast.PtrTo(ast.Char))},
	"_print_int":    {hostapi.SysPrintInt, fnType(ast.Void, ast.Int)},
	"_print_uint":   {hostapi.SysPrintUint, fnType(ast.Void, ast.UInt)},
	"_sbrk":         {hostapi.SysSbrk, fnType(ast.PtrTo(ast.Char), ast.Int)},
	"_clock":        {hostapi.SysClock, fnType(ast.UInt)},
	"_print_double": {hostapi.SysPrintFlt, fnType(ast.Void, ast.Double)},
	"_write":        {hostapi.SysWrite, fnType(ast.Int, ast.PtrTo(ast.Char), ast.Int)},
	"_set_handler":  {hostapi.SysSetHandler, fnType(ast.Void, ast.Int)},
}

func fnType(ret *ast.Type, params ...*ast.Type) *ast.Type {
	return &ast.Type{Kind: ast.TFunc, Ret: ret, Params: params}
}

// Sanitize turns a file name into a label-safe identifier fragment.
func Sanitize(name string) string {
	out := make([]byte, 0, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') {
			out = append(out, c)
		} else {
			out = append(out, '_')
		}
	}
	return string(out)
}

// Info is the result of checking a file: the global symbol tables the
// code generator needs.
type Info struct {
	Globals map[string]*ast.VarDecl
	Funcs   map[string]*ast.FuncDecl // definitions and prototypes
}

type checker struct {
	info *Info
	file *ast.File

	fn     *ast.FuncDecl
	scopes []map[string]int // name -> LocalID
	labels map[string]bool

	strCount int
	errs     []error
}

// Check analyzes f, mutating it. On success it returns symbol info.
func Check(f *ast.File) (*Info, error) {
	c := &checker{
		info: &Info{
			Globals: map[string]*ast.VarDecl{},
			Funcs:   map[string]*ast.FuncDecl{},
		},
		file: f,
	}
	// Register file-scope names first (C requires declaration before
	// use; registering per-declaration order enforces that, but mutual
	// recursion with prototypes works because prototypes appear first).
	// We do a single pre-pass to keep diagnostics simple.
	for _, v := range f.Vars {
		if prev, ok := c.info.Globals[v.Name]; ok {
			if !prev.Extern && !v.Extern && (prev.Init != nil || prev.List != nil) && (v.Init != nil || v.List != nil) {
				c.errf(v.Pos(), "global %q redefined", v.Name)
			}
			if !ast.Same(prev.Ty, v.Ty) && !(prev.Ty.Kind == ast.TArray && v.Ty.Kind == ast.TArray && ast.Same(prev.Ty.Elem, v.Ty.Elem)) {
				c.errf(v.Pos(), "global %q redeclared with different type", v.Name)
			}
			if prev.Extern && !v.Extern {
				*prev = *v // definition supersedes extern declaration
			}
			continue
		}
		c.info.Globals[v.Name] = v
	}
	for _, fn := range f.Funcs {
		if prev, ok := c.info.Funcs[fn.Name]; ok {
			if prev.Body != nil && fn.Body != nil {
				c.errf(fn.Pos(), "function %q redefined", fn.Name)
			}
			if !ast.Same(prev.Ty, fn.Ty) && !prev.Ty.Old && !fn.Ty.Old {
				c.errf(fn.Pos(), "function %q redeclared with different type", fn.Name)
			}
			if fn.Body != nil {
				c.info.Funcs[fn.Name] = fn
			}
			continue
		}
		c.info.Funcs[fn.Name] = fn
	}
	// Assign string literal labels, unique across translation units so
	// whole-program consumers (the native back ends) can resolve them
	// from the linked symbol table.
	for i, s := range f.Strings {
		s.Label = fmt.Sprintf(".Lstr_%s_%d", Sanitize(f.Name), i)
		s.SetType(ast.PtrTo(ast.Char))
	}
	// Validate global initializers.
	for _, v := range f.Vars {
		c.checkGlobalInit(v)
	}
	// Check function bodies.
	for _, fn := range f.Funcs {
		if fn.Body != nil {
			c.checkFunc(fn)
		}
	}
	if len(c.errs) > 0 {
		return nil, c.errs[0]
	}
	return c.info, nil
}

func (c *checker) errf(pos token.Pos, format string, args ...any) {
	c.errs = append(c.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// ---- globals ----

func (c *checker) checkGlobalInit(v *ast.VarDecl) {
	if v.Ty.Kind == ast.TFunc {
		c.errf(v.Pos(), "%q declared as variable of function type", v.Name)
		return
	}
	if v.Ty.Kind == ast.TStruct && !v.Ty.Done {
		c.errf(v.Pos(), "%q has incomplete struct type", v.Name)
		return
	}
	check := func(e ast.Expr) {
		if !c.isConstInit(e) {
			c.errf(e.Pos(), "initializer for %q is not constant", v.Name)
		}
	}
	if v.Init != nil {
		check(v.Init)
	}
	for _, e := range v.List {
		check(e)
	}
}

// isConstInit reports whether e is a link-time constant initializer.
func (c *checker) isConstInit(e ast.Expr) bool {
	switch n := e.(type) {
	case *ast.IntLit, *ast.FloatLit, *ast.StrLit:
		return true
	case *ast.Ident:
		// Address of a function or global array.
		if _, ok := c.info.Funcs[n.Name]; ok {
			return true
		}
		if g, ok := c.info.Globals[n.Name]; ok && g.Ty.Kind == ast.TArray {
			return true
		}
		return false
	case *ast.Unary:
		if n.Op == token.Amp {
			if id, ok := n.X.(*ast.Ident); ok {
				_, isG := c.info.Globals[id.Name]
				return isG
			}
		}
		if n.Op == token.Minus {
			return c.isConstInit(n.X)
		}
		return false
	case *ast.Cast:
		return c.isConstInit(n.X)
	case *ast.Binary:
		return c.isConstInit(n.X) && c.isConstInit(n.Y)
	}
	return false
}

// ---- functions ----

func (c *checker) checkFunc(fn *ast.FuncDecl) {
	c.fn = fn
	c.scopes = []map[string]int{{}}
	c.labels = map[string]bool{}
	fn.Locals = nil
	for i, pt := range fn.Ty.Params {
		name := fn.Ty.PNames[i]
		if name == "" {
			c.errf(fn.Pos(), "parameter %d of %q is unnamed", i, fn.Name)
			name = fmt.Sprintf(".p%d", i)
		}
		id := c.addLocal(name, pt, true)
		_ = id
	}
	c.collectLabels(fn.Body)
	c.stmt(fn.Body)
	c.fn = nil
}

func (c *checker) collectLabels(s ast.Stmt) {
	switch n := s.(type) {
	case *ast.Block:
		for _, x := range n.List {
			c.collectLabels(x)
		}
	case *ast.Label:
		c.labels[n.Name] = true
		c.collectLabels(n.Stmt)
	case *ast.If:
		c.collectLabels(n.Then)
		if n.Else != nil {
			c.collectLabels(n.Else)
		}
	case *ast.While:
		c.collectLabels(n.Body)
	case *ast.DoWhile:
		c.collectLabels(n.Body)
	case *ast.For:
		c.collectLabels(n.Body)
	case *ast.Switch:
		c.collectLabels(n.Body)
	}
}

func (c *checker) addLocal(name string, ty *ast.Type, isParam bool) int {
	id := len(c.fn.Locals)
	c.fn.Locals = append(c.fn.Locals, &ast.Local{Name: name, Ty: ty, IsParam: isParam})
	scope := c.scopes[len(c.scopes)-1]
	scope[name] = id
	return id
}

func (c *checker) lookupLocal(name string) (int, bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if id, ok := c.scopes[i][name]; ok {
			return id, true
		}
	}
	return 0, false
}

func (c *checker) push() { c.scopes = append(c.scopes, map[string]int{}) }
func (c *checker) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) stmt(s ast.Stmt) {
	switch n := s.(type) {
	case *ast.Block:
		c.push()
		for _, x := range n.List {
			c.stmt(x)
		}
		c.pop()
	case *ast.ExprStmt:
		n.X = c.expr(n.X)
	case *ast.DeclStmt:
		for _, d := range n.Decls {
			if d.Ty.Kind == ast.TVoid {
				c.errf(d.Pos(), "variable %q has void type", d.Name)
				continue
			}
			if d.Ty.Kind == ast.TStruct && !d.Ty.Done {
				c.errf(d.Pos(), "variable %q has incomplete type", d.Name)
				continue
			}
			if cur, ok := c.scopes[len(c.scopes)-1][d.Name]; ok {
				_ = cur
				c.errf(d.Pos(), "%q redeclared in this scope", d.Name)
			}
			d.LocalID = c.addLocal(d.Name, d.Ty, false)
			if d.Init != nil {
				d.Init = c.expr(d.Init)
				if d.Ty.Kind == ast.TArray {
					if _, ok := d.Init.(*ast.StrLit); !ok {
						c.errf(d.Pos(), "array initializer must be a brace list or string")
					}
				} else {
					d.Init = c.convert(d.Init, d.Ty, "initialization")
				}
			}
			for i, e := range d.ArrInit {
				e = c.expr(e)
				elem := d.Ty
				for elem.Kind == ast.TArray {
					elem = elem.Elem
				}
				if d.Ty.Kind == ast.TStruct {
					// Flattened struct init: match field i.
					if i < len(d.Ty.Fields) {
						elem = d.Ty.Fields[i].Type
					}
				}
				d.ArrInit[i] = c.convert(e, elem, "initialization")
			}
		}
	case *ast.If:
		n.Cond = c.condition(n.Cond)
		c.stmt(n.Then)
		if n.Else != nil {
			c.stmt(n.Else)
		}
	case *ast.While:
		n.Cond = c.condition(n.Cond)
		c.stmt(n.Body)
	case *ast.DoWhile:
		c.stmt(n.Body)
		n.Cond = c.condition(n.Cond)
	case *ast.For:
		c.push()
		if n.Init != nil {
			c.stmt(n.Init)
		}
		if n.Cond != nil {
			n.Cond = c.condition(n.Cond)
		}
		if n.Post != nil {
			n.Post = c.expr(n.Post)
		}
		c.stmt(n.Body)
		c.pop()
	case *ast.Switch:
		n.Tag = c.expr(n.Tag)
		if !n.Tag.Type().IsInteger() {
			c.errf(n.Pos(), "switch expression must be integer, got %v", n.Tag.Type())
		}
		n.Tag = c.promote(n.Tag)
		c.stmt(n.Body)
	case *ast.Case:
		// Structural validation happens in the IR builder, which knows
		// whether it is inside a switch.
	case *ast.Break, *ast.Continue:
	case *ast.Return:
		ret := c.fn.Ty.Ret
		if n.X == nil {
			if ret.Kind != ast.TVoid {
				c.errf(n.Pos(), "missing return value in %q", c.fn.Name)
			}
			return
		}
		if ret.Kind == ast.TVoid {
			c.errf(n.Pos(), "return with value in void function %q", c.fn.Name)
			return
		}
		n.X = c.convert(c.expr(n.X), ret, "return")
	case *ast.Goto:
		if !c.labels[n.Name] {
			c.errf(n.Pos(), "goto undefined label %q", n.Name)
		}
	case *ast.Label:
		c.stmt(n.Stmt)
	}
}

// condition checks a scalar condition expression.
func (c *checker) condition(e ast.Expr) ast.Expr {
	e = c.expr(e)
	if t := e.Type(); t != nil && !t.IsScalar() {
		c.errf(e.Pos(), "condition must be scalar, got %v", t)
	}
	return e
}
