// Package opt implements the machine-independent optimizations the
// paper's §3.1 delegates to the compiler: constant folding and
// propagation, copy propagation, local common-subexpression
// elimination, dead-code elimination, strength reduction,
// loop-invariant code motion, and addressing-mode fusion (folding
// adds into the 32-bit offsets and indexed modes of OmniVM memory
// instructions).
package opt

import "omniware/internal/cc/ir"

// Run applies the pass pipeline at the given level (0 = nothing, 1 =
// one pipeline pass, 2 = iterate to a fixed point).
func Run(f *ir.Func, level int) {
	if level <= 0 {
		terminate(f)
		return
	}
	rounds := 1
	if level >= 2 {
		rounds = 4
	}
	for i := 0; i < rounds; i++ {
		changed := false
		changed = propagate(f) || changed
		changed = localValueNumber(f) || changed
		changed = strengthReduce(f) || changed
		changed = deadCode(f) || changed
		if !changed {
			break
		}
	}
	if level >= 1 {
		licm(f)
		deadCode(f)
		fuseAddressing(f)
		deadCode(f)
	}
	terminate(f)
}

// terminate gives every block a terminator (unreachable empties get a
// void return) so downstream consumers can rely on well-formed blocks.
func terminate(f *ir.Func) {
	for _, b := range f.Blocks {
		if b.Term() == nil {
			b.Insts = append(b.Insts, ir.Inst{Op: ir.Ret, A: ir.NoReg, B: ir.NoReg, Dst: ir.NoReg, Slot: ir.NoSlot})
		}
	}
	f.Recompute()
}

// defCount returns per-vreg definition and use counts.
func defUseCounts(f *ir.Func) (defs, uses []int) {
	defs = make([]int, f.NVReg)
	uses = make([]int, f.NVReg)
	var ubuf []ir.VReg
	for _, b := range f.Blocks {
		for i := range b.Insts {
			in := &b.Insts[i]
			if in.HasDst() {
				defs[in.Dst]++
			}
			ubuf = in.Uses(ubuf[:0])
			for _, u := range ubuf {
				uses[u]++
			}
		}
	}
	// Parameters count as definitions.
	for _, p := range f.Params {
		defs[p]++
	}
	return defs, uses
}
