package opt

import (
	"strings"
	"testing"
	"testing/quick"

	"omniware/internal/cc/ir"
	"omniware/internal/cc/parse"
	"omniware/internal/cc/sem"
)

// buildIR compiles a function body and returns its (unoptimized) IR.
func buildIR(t *testing.T, src string) *ir.Func {
	t.Helper()
	f, err := parse.File("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sem.Check(f); err != nil {
		t.Fatal(err)
	}
	for _, fd := range f.Funcs {
		if fd.Body != nil && fd.Name == "main" {
			fn, err := ir.BuildFunc(fd)
			if err != nil {
				t.Fatal(err)
			}
			return fn
		}
	}
	t.Fatal("no main")
	return nil
}

func countOp(f *ir.Func, op ir.Op) int {
	n := 0
	for _, b := range f.Blocks {
		for i := range b.Insts {
			if b.Insts[i].Op == op {
				n++
			}
		}
	}
	return n
}

func countInsts(f *ir.Func) int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Insts)
	}
	return n
}

func TestConstantFoldingCollapses(t *testing.T) {
	f := buildIR(t, `
int main(void) {
	int a = 3 * 7;
	int b = a + 100 / 4;
	int c = (b << 2) - b;
	return c;
}`)
	Run(f, 2)
	// Everything folds to a single constant return path.
	if n := countOp(f, ir.Mul) + countOp(f, ir.MulI) + countOp(f, ir.Div); n != 0 {
		t.Errorf("arithmetic not folded: %s", f)
	}
}

func TestStrengthReduction(t *testing.T) {
	f := buildIR(t, `
int main(void) {
	int x = 5, acc = 0;
	int i;
	for (i = 0; i < x; i++) {
		acc += i * 8;       /* -> shift */
		acc += i * 3;       /* -> shift+add */
		acc += (unsigned)i / 16u;  /* -> shift */
		acc += (unsigned)i % 32u;  /* -> and */
	}
	return acc;
}`)
	Run(f, 2)
	if n := countOp(f, ir.MulI); n != 0 {
		t.Errorf("muls by constant remain: %d\n%s", n, f)
	}
	if n := countOp(f, ir.DivU) + countOp(f, ir.RemU); n != 0 {
		t.Errorf("unsigned div/rem by power of two remain: %d", n)
	}
}

func TestDeadCodeRemoved(t *testing.T) {
	f := buildIR(t, `
int main(void) {
	int unused = 42 * 17;
	int also = unused + 1;
	return 7;
}`)
	before := countInsts(f)
	Run(f, 1)
	after := countInsts(f)
	if after >= before {
		t.Errorf("DCE removed nothing: %d -> %d", before, after)
	}
	if n := countOp(f, ir.MulI) + countOp(f, ir.Mul); n != 0 {
		t.Errorf("dead multiply survived")
	}
}

func TestCSEEliminatesRecomputation(t *testing.T) {
	f := buildIR(t, `
int g;
int main(void) {
	int a = g * 13;
	int b = g * 13; /* same expression, no intervening store */
	return a + b;
}`)
	Run(f, 2)
	if n := countOp(f, ir.MulI) + countOp(f, ir.Mul); n > 1 {
		t.Errorf("CSE failed: %d multiplies\n%s", n, f)
	}
}

func TestLoadCSEKilledByStore(t *testing.T) {
	f := buildIR(t, `
int g;
int main(void) {
	int a = g;
	g = a + 1; /* store kills the load */
	int b = g;
	return a + b;
}`)
	Run(f, 2)
	if n := countOp(f, ir.Load); n < 2 {
		t.Errorf("load wrongly CSEd across a store: %d loads\n%s", n, f)
	}
}

func TestLICMHoists(t *testing.T) {
	f := buildIR(t, `
int main(void) {
	int x = 3, acc = 0;
	int i;
	for (i = 0; i < 100; i++) {
		acc += x * 1000; /* invariant after propagation */
	}
	return acc;
}`)
	Run(f, 2)
	// With x constant the multiply folds entirely; just verify the
	// function still has its loop and no multiply inside it.
	if n := countOp(f, ir.Mul) + countOp(f, ir.MulI); n != 0 {
		t.Errorf("invariant multiply survived: %s", f)
	}
}

func TestAddressingFusion(t *testing.T) {
	f := buildIR(t, `
int tab[100];
int main(void) {
	int i, acc = 0;
	for (i = 0; i < 100; i++) acc += tab[i];
	return acc;
}`)
	Run(f, 2)
	// The load should use either indexed mode or a fused symbol form.
	fused := false
	for _, b := range f.Blocks {
		for i := range b.Insts {
			in := &b.Insts[i]
			if in.Op == ir.Load && (in.HasIdx || in.Sym != "") {
				fused = true
			}
		}
	}
	if !fused {
		t.Errorf("no fused addressing in:\n%s", f)
	}
}

func TestUnreachableBlocksRemoved(t *testing.T) {
	f := buildIR(t, `
int main(void) {
	return 1;
	return 2;
}`)
	Run(f, 1)
	if len(f.Blocks) > 2 {
		t.Errorf("unreachable blocks survive: %d blocks\n%s", len(f.Blocks), f)
	}
}

// Property: foldConst agrees with direct evaluation for random operand
// pairs across all foldable ops.
func TestFoldConstMatchesSemantics(t *testing.T) {
	type alu struct {
		op   ir.Op
		eval func(a, b int32) (int32, bool)
	}
	cases := []alu{
		{ir.Add, func(a, b int32) (int32, bool) { return a + b, true }},
		{ir.Sub, func(a, b int32) (int32, bool) { return a - b, true }},
		{ir.Mul, func(a, b int32) (int32, bool) { return a * b, true }},
		{ir.And, func(a, b int32) (int32, bool) { return a & b, true }},
		{ir.Or, func(a, b int32) (int32, bool) { return a | b, true }},
		{ir.Xor, func(a, b int32) (int32, bool) { return a ^ b, true }},
		{ir.Shl, func(a, b int32) (int32, bool) { return int32(uint32(a) << (uint32(b) & 31)), true }},
		{ir.Shr, func(a, b int32) (int32, bool) { return int32(uint32(a) >> (uint32(b) & 31)), true }},
		{ir.Sra, func(a, b int32) (int32, bool) { return a >> (uint32(b) & 31), true }},
		{ir.Div, func(a, b int32) (int32, bool) {
			if b == 0 || (a == -1<<31 && b == -1) {
				return 0, false
			}
			return a / b, true
		}},
	}
	check := func(a, b int32) bool {
		for _, c := range cases {
			in := &ir.Inst{Op: c.op, Class: ir.ClassW}
			got, ok := foldConst(in, int64(a), true, int64(b), true)
			want, wantOK := c.eval(a, b)
			if ok != wantOK {
				return false
			}
			if ok && int32(got) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestRunLevelsAreSafe(t *testing.T) {
	src := `
int main(void) {
	int a = 1, b = 2;
	if (a < b) a = b * 3;
	while (a > 0) a -= 2;
	return a + b;
}`
	for lvl := 0; lvl <= 2; lvl++ {
		f := buildIR(t, src)
		Run(f, lvl)
		// Every block must have a terminator.
		for _, blk := range f.Blocks {
			if blk.Term() == nil {
				t.Fatalf("level %d: block %d unterminated:\n%s", lvl, blk.ID, f)
			}
		}
	}
	if !strings.Contains(buildIR(t, src).String(), "func main") {
		t.Error("IR printing broken")
	}
}
