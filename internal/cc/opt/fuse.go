package opt

import "omniware/internal/cc/ir"

// strengthReduce rewrites expensive operations into cheaper ones:
// multiplications by powers of two (and small shift-add patterns),
// unsigned division and remainder by powers of two.
func strengthReduce(f *ir.Func) bool {
	changed := false
	for _, b := range f.Blocks {
		var out []ir.Inst
		for i := range b.Insts {
			in := b.Insts[i]
			switch in.Op {
			case ir.MulI:
				if sh := log2(in.Imm); sh > 0 {
					in.Op = ir.ShlI
					in.Imm = int64(sh)
					changed = true
				} else if in.Imm == 3 || in.Imm == 5 || in.Imm == 9 {
					// x*3 = (x<<1)+x etc. The shift and add are emitted
					// adjacently, so the operand cannot change between
					// them even when it is multiply-defined. The shift
					// must not clobber the operand, hence a fresh temp.
					if in.A != ir.NoReg {
						t := f.NewVReg(ir.ClassW)
						sh := int64(1)
						if in.Imm == 5 {
							sh = 2
						} else if in.Imm == 9 {
							sh = 3
						}
						out = append(out, ir.Inst{Op: ir.ShlI, Class: ir.ClassW, Dst: t, A: in.A, Imm: sh, B: ir.NoReg, Slot: ir.NoSlot})
						in = ir.Inst{Op: ir.Add, Class: ir.ClassW, Dst: in.Dst, A: t, B: in.A, Slot: ir.NoSlot}
						changed = true
					}
				}
			case ir.DivU:
				// handled only for immediate divisors via propagate+fold
			}
			out = append(out, in)
		}
		b.Insts = out
	}
	// Immediate-form unsigned div/rem: DivU/RemU with const B was not
	// converted by propagate (no imm op exists); catch the pattern
	// B = Const 2^k here.
	defs2, _ := defUseCounts(f)
	defInst := make([]*ir.Inst, f.NVReg)
	for _, b := range f.Blocks {
		for i := range b.Insts {
			in := &b.Insts[i]
			if in.HasDst() && defs2[in.Dst] == 1 {
				defInst[in.Dst] = in
			}
		}
	}
	for _, b := range f.Blocks {
		for i := range b.Insts {
			in := &b.Insts[i]
			if in.B == ir.NoReg {
				continue
			}
			d := defInst[in.B]
			if d == nil || d.Op != ir.Const || d.Class != ir.ClassW {
				continue
			}
			switch in.Op {
			case ir.DivU:
				if sh := log2(d.Imm); sh >= 0 {
					*in = ir.Inst{Op: ir.ShrI, Class: ir.ClassW, Dst: in.Dst, A: in.A, Imm: int64(sh), B: ir.NoReg, Slot: ir.NoSlot}
					changed = true
				}
			case ir.RemU:
				if sh := log2(d.Imm); sh >= 0 {
					*in = ir.Inst{Op: ir.AndI, Class: ir.ClassW, Dst: in.Dst, A: in.A, Imm: d.Imm - 1, B: ir.NoReg, Slot: ir.NoSlot}
					changed = true
				}
			}
		}
	}
	return changed
}

func log2(v int64) int {
	for i := 0; i < 31; i++ {
		if v == 1<<i {
			return i
		}
	}
	return -1
}

// fuseAddressing folds address arithmetic into memory instructions:
//
//	t = AddI x, c ; load [t+d]      -> load [x + (c+d)]
//	t = Addr sym/slot, c ; load [t+d] -> load [sym/slot + (c+d)]
//	t = Add x, y ; load [t+0]       -> load [x + y] (indexed mode)
//
// This is what gives OmniVM code its 32-bit-offset and indexed-mode
// character (§3.4, Figure 1 "addr" category).
func fuseAddressing(f *ir.Func) bool {
	changed := false
	defs, _ := defUseCounts(f)
	for _, b := range f.Blocks {
		// version tracks redefinitions within the block so a fused
		// operand is still live at the memory op.
		version := map[ir.VReg]int{}
		type defRec struct {
			inst ir.Inst
			aVer int
			bVer int
		}
		defd := map[ir.VReg]defRec{}
		for i := range b.Insts {
			in := &b.Insts[i]
			if in.Op == ir.Load || in.Op == ir.Store {
				for in.A != ir.NoReg && !in.HasIdx && in.Sym == "" && in.Slot == ir.NoSlot {
					d, ok := defd[in.A]
					if !ok || defs[in.A] != 1 {
						break
					}
					di := d.inst
					switch di.Op {
					case ir.AddI:
						if di.A == ir.NoReg || version[di.A] != d.aVer {
							break
						}
						in.A = di.A
						in.Imm += di.Imm
						changed = true
						continue
					case ir.Addr:
						if di.A != ir.NoReg {
							break
						}
						in.A = ir.NoReg
						in.Sym = di.Sym
						in.Slot = di.Slot
						in.Imm += di.Imm
						changed = true
						continue
					case ir.Add:
						if in.Imm != 0 || di.Class != ir.ClassW {
							break
						}
						if version[di.A] != d.aVer || version[di.B] != d.bVer {
							break
						}
						in.HasIdx = true
						in.A = di.A
						in.Idx = di.B
						changed = true
					}
					break
				}
			}
			if in.HasDst() {
				version[in.Dst]++
				switch in.Op {
				case ir.AddI, ir.Addr, ir.Add:
					rec := defRec{inst: *in}
					if in.A != ir.NoReg {
						rec.aVer = version[in.A]
					}
					if in.B != ir.NoReg {
						rec.bVer = version[in.B]
					}
					defd[in.Dst] = rec
				default:
					delete(defd, in.Dst)
				}
			}
		}
	}
	return changed
}
