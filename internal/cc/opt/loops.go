package opt

import (
	"sort"

	"omniware/internal/cc/ir"
)

// licm hoists loop-invariant pure computations into the block that
// enters the loop. It identifies natural loops via dominators and
// hoists into the unique out-of-loop predecessor of the header when one
// exists (the IR builder's loop shapes always produce one).
func licm(f *ir.Func) bool {
	f.Recompute()
	idom := dominators(f)
	defs, _ := defUseCounts(f)

	// Definition sites for single-def vregs: block id.
	defBlock := make([]int, f.NVReg)
	for i := range defBlock {
		defBlock[i] = -1
	}
	for _, b := range f.Blocks {
		for i := range b.Insts {
			in := &b.Insts[i]
			if in.HasDst() && defs[in.Dst] == 1 {
				defBlock[in.Dst] = b.ID
			}
		}
	}

	changed := false
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			if !dominates(idom, s, b.ID) {
				continue
			}
			// Back edge b -> s: natural loop with header s.
			body := naturalLoop(f, s, b.ID)
			changed = hoistLoop(f, s, body, defs, defBlock) || changed
		}
	}
	return changed
}

// naturalLoop returns the set of blocks in the loop with header h and
// back-edge source tail.
func naturalLoop(f *ir.Func, h, tail int) map[int]bool {
	body := map[int]bool{h: true}
	stack := []int{tail}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if body[n] {
			continue
		}
		body[n] = true
		for _, p := range f.Blocks[n].Preds {
			stack = append(stack, p)
		}
	}
	return body
}

func hoistLoop(f *ir.Func, header int, body map[int]bool, defs []int, defBlock []int) bool {
	// Find the unique predecessor of the header outside the loop.
	pre := -1
	for _, p := range f.Blocks[header].Preds {
		if body[p] {
			continue
		}
		if pre >= 0 {
			return false // multiple entries; skip
		}
		pre = p
	}
	if pre < 0 {
		return false
	}
	preB := f.Blocks[pre]
	t := preB.Term()
	if t == nil || t.Op != ir.Jmp || t.Then != header {
		// Only hoist into a block that unconditionally enters the loop.
		return false
	}

	hoisted := map[ir.VReg]bool{}
	invariant := func(v ir.VReg) bool {
		if v == ir.NoReg {
			return true
		}
		if hoisted[v] {
			return true
		}
		if defs[v] != 1 || defBlock[v] < 0 {
			return false
		}
		return !body[defBlock[v]]
	}

	changed := false
	var moved []ir.Inst
	// Iterate body blocks in a fixed order: hoisting order decides the
	// preheader's instruction sequence, which must not vary between runs
	// of the same compilation.
	ids := make([]int, 0, len(body))
	for id := range body {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		blk := f.Blocks[id]
		out := blk.Insts[:0]
		for i := range blk.Insts {
			in := blk.Insts[i]
			ok := in.Pure() && in.HasDst() && defs[in.Dst] == 1 &&
				invariant(in.A) && invariant(in.B) &&
				(!in.HasIdx || invariant(in.Idx))
			// FP constants and address materializations are the common
			// profitable cases; all pure single-def ops qualify.
			if ok {
				moved = append(moved, in)
				hoisted[in.Dst] = true
				changed = true
				continue
			}
			out = append(out, in)
		}
		blk.Insts = out
	}
	if len(moved) == 0 {
		return false
	}
	// Order moved instructions so operands precede uses.
	ordered := orderByDeps(moved)
	// Insert before the preheader's terminator.
	term := preB.Insts[len(preB.Insts)-1]
	preB.Insts = append(preB.Insts[:len(preB.Insts)-1], ordered...)
	preB.Insts = append(preB.Insts, term)
	return changed
}

// orderByDeps topologically sorts hoisted instructions by operand
// dependence.
func orderByDeps(insts []ir.Inst) []ir.Inst {
	defIdx := map[ir.VReg]int{}
	for i := range insts {
		defIdx[insts[i].Dst] = i
	}
	state := make([]int, len(insts)) // 0 unvisited, 1 visiting, 2 done
	var out []ir.Inst
	var visit func(i int)
	visit = func(i int) {
		if state[i] != 0 {
			return
		}
		state[i] = 1
		deps := []ir.VReg{insts[i].A, insts[i].B}
		if insts[i].HasIdx {
			deps = append(deps, insts[i].Idx)
		}
		for _, d := range deps {
			if d == ir.NoReg {
				continue
			}
			if j, ok := defIdx[d]; ok && state[j] == 0 {
				visit(j)
			}
		}
		state[i] = 2
		out = append(out, insts[i])
	}
	for i := range insts {
		visit(i)
	}
	return out
}

// dominators computes immediate dominators with the iterative
// algorithm (Cooper/Harvey/Kennedy), using reverse-postorder.
func dominators(f *ir.Func) []int {
	n := len(f.Blocks)
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	if n == 0 {
		return idom
	}
	// Reverse postorder.
	order := make([]int, 0, n)
	mark := make([]bool, n)
	var dfs func(int)
	dfs = func(id int) {
		mark[id] = true
		for _, s := range f.Blocks[id].Succs {
			if !mark[s] {
				dfs(s)
			}
		}
		order = append(order, id)
	}
	dfs(0)
	rpo := make([]int, 0, len(order))
	for i := len(order) - 1; i >= 0; i-- {
		rpo = append(rpo, order[i])
	}
	rpoNum := make([]int, n)
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	for i, id := range rpo {
		rpoNum[id] = i
	}

	idom[0] = 0
	for changed := true; changed; {
		changed = false
		for _, id := range rpo {
			if id == 0 {
				continue
			}
			newIdom := -1
			for _, p := range f.Blocks[id].Preds {
				if rpoNum[p] < 0 || idom[p] < 0 {
					continue
				}
				if newIdom < 0 {
					newIdom = p
				} else {
					newIdom = intersect(idom, rpoNum, p, newIdom)
				}
			}
			if newIdom >= 0 && idom[id] != newIdom {
				idom[id] = newIdom
				changed = true
			}
		}
	}
	return idom
}

func intersect(idom, rpoNum []int, a, b int) int {
	for a != b {
		for rpoNum[a] > rpoNum[b] {
			a = idom[a]
		}
		for rpoNum[b] > rpoNum[a] {
			b = idom[b]
		}
	}
	return a
}

// dominates reports whether a dominates b.
func dominates(idom []int, a, b int) bool {
	for {
		if a == b {
			return true
		}
		if b == 0 || idom[b] < 0 {
			return false
		}
		nb := idom[b]
		if nb == b {
			return false
		}
		b = nb
	}
}
