package opt

import (
	"math"

	"omniware/internal/cc/ir"
)

// propagate performs global constant and copy propagation over
// single-definition vregs (expression temporaries are single-def by
// construction, so this catches most of what SSA-based SCCP would).
func propagate(f *ir.Func) bool {
	defs, _ := defUseCounts(f)
	defInst := make([]*ir.Inst, f.NVReg)
	for _, b := range f.Blocks {
		for i := range b.Insts {
			in := &b.Insts[i]
			if in.HasDst() && defs[in.Dst] == 1 {
				defInst[in.Dst] = in
			}
		}
	}
	constOf := func(v ir.VReg) (int64, bool) {
		if v == ir.NoReg {
			return 0, false
		}
		d := defInst[v]
		if d != nil && d.Op == ir.Const && d.Class == ir.ClassW {
			return d.Imm, true
		}
		return 0, false
	}
	// copyOf resolves chains of single-def copies.
	copyOf := func(v ir.VReg) ir.VReg {
		for i := 0; i < 8; i++ {
			d := defInst[v]
			if d == nil || d.Op != ir.Copy {
				return v
			}
			src := d.A
			if defs[src] != 1 {
				return v
			}
			v = src
		}
		return v
	}

	changed := false
	immOp := map[ir.Op]ir.Op{
		ir.Add: ir.AddI, ir.Mul: ir.MulI, ir.And: ir.AndI,
		ir.Or: ir.OrI, ir.Xor: ir.XorI, ir.Shl: ir.ShlI,
		ir.Shr: ir.ShrI, ir.Sra: ir.SraI,
	}
	for _, b := range f.Blocks {
		for i := range b.Insts {
			in := &b.Insts[i]
			// Copy propagation on all operands.
			rw := func(v *ir.VReg) {
				if *v == ir.NoReg {
					return
				}
				if nv := copyOf(*v); nv != *v {
					*v = nv
					changed = true
				}
			}
			rw(&in.A)
			rw(&in.B)
			if in.HasIdx {
				rw(&in.Idx)
			}
			for j := range in.Args {
				rw(&in.Args[j])
			}

			// Constant forms.
			switch in.Op {
			case ir.Add, ir.Mul, ir.And, ir.Or, ir.Xor:
				if imm, ok := constOf(in.B); ok {
					in.Op = immOp[in.Op]
					in.Imm = int64(int32(imm))
					in.B = ir.NoReg
					changed = true
				} else if imm, ok := constOf(in.A); ok {
					in.A = in.B
					in.B = ir.NoReg
					in.Op = immOp[in.Op]
					in.Imm = int64(int32(imm))
					changed = true
				}
			case ir.Sub:
				if imm, ok := constOf(in.B); ok {
					in.Op = ir.AddI
					in.Imm = int64(int32(-imm))
					in.B = ir.NoReg
					changed = true
				}
			case ir.Shl, ir.Shr, ir.Sra:
				if imm, ok := constOf(in.B); ok {
					in.Op = immOp[in.Op]
					in.Imm = imm & 31
					in.B = ir.NoReg
					changed = true
				}
			case ir.Set:
				if in.Class == ir.ClassW {
					if imm, ok := constOf(in.B); ok {
						in.Op = ir.SetI
						in.Imm = int64(int32(imm))
						in.B = ir.NoReg
						changed = true
					} else if imm, ok := constOf(in.A); ok {
						in.Op = ir.SetI
						in.A = in.B
						in.B = ir.NoReg
						in.CC = in.CC.Swap()
						in.Imm = int64(int32(imm))
						changed = true
					}
				}
			case ir.Br:
				if in.Class == ir.ClassW {
					if imm, ok := constOf(in.B); ok {
						in.Op = ir.BrI
						in.Imm = int64(int32(imm))
						in.B = ir.NoReg
						changed = true
					} else if imm, ok := constOf(in.A); ok {
						in.Op = ir.BrI
						in.A = in.B
						in.B = ir.NoReg
						in.CC = in.CC.Swap()
						in.Imm = int64(int32(imm))
						changed = true
					}
				}
			case ir.AddI:
				// Fold AddI chains: AddI(AddI(x, a), b) -> AddI(x, a+b).
				// Both links must be single-def so the inner operand
				// cannot change between the two adds.
				if in.A != ir.NoReg {
					if d := defInst[in.A]; d != nil && d.Op == ir.AddI && d.A != ir.NoReg && defs[d.A] == 1 {
						in.A = d.A
						in.Imm = int64(int32(in.Imm + d.Imm))
						changed = true
					}
				}
			case ir.Copy:
				if in.Class == ir.ClassW {
					if imm, ok := constOf(in.A); ok {
						in.Op = ir.Const
						in.Imm = imm
						in.A = ir.NoReg
						changed = true
					}
				}
			}

			// Global constant folding: immediate-form ALU over a
			// known-constant operand collapses to a constant even when
			// the definition lives in another block (LVN only sees one
			// block at a time).
			switch in.Op {
			case ir.AddI, ir.MulI, ir.AndI, ir.OrI, ir.XorI,
				ir.ShlI, ir.ShrI, ir.SraI, ir.Neg, ir.SetI:
				if av, ok := constOf(in.A); ok {
					if folded, ok2 := foldConst(in, av, true, 0, false); ok2 {
						*in = ir.Inst{Op: ir.Const, Class: ir.ClassW, Dst: in.Dst, Imm: folded, A: ir.NoReg, B: ir.NoReg, Slot: ir.NoSlot}
						changed = true
					}
				}
			}
		}
	}
	return changed
}

// localValueNumber performs per-block value numbering: constant
// folding, algebraic identities, common subexpression elimination, and
// redundant-load elimination within a block.
func localValueNumber(f *ir.Func) bool {
	changed := false
	for _, b := range f.Blocks {
		changed = lvnBlock(f, b) || changed
	}
	return changed
}

type vnKey struct {
	op    ir.Op
	class ir.Class
	a, bb int
	imm   int64
	fbits uint64
	cc    ir.CC
	mem   ir.MemOp
	cvt   ir.CvtKind
	sym   string
	slot  int
	epoch int
}

func lvnBlock(f *ir.Func, b *ir.Block) bool {
	changed := false
	vn := map[ir.VReg]int{} // register -> value number
	nextVN := 1
	constVal := map[int]int64{} // value number -> known W constant
	type tabEnt struct {
		reg ir.VReg
		n   int
	}
	table := map[vnKey]tabEnt{}
	epoch := 0

	num := func(v ir.VReg) int {
		if v == ir.NoReg {
			return 0
		}
		if n, ok := vn[v]; ok {
			return n
		}
		nextVN++
		vn[v] = nextVN
		return nextVN
	}
	newVal := func(v ir.VReg) int {
		nextVN++
		vn[v] = nextVN
		return nextVN
	}

	for i := range b.Insts {
		in := &b.Insts[i]
		switch in.Op {
		case ir.Call, ir.Syscall:
			epoch++ // calls may write memory
			if in.HasDst() {
				newVal(in.Dst)
			}
			continue
		case ir.Store:
			epoch++
			continue
		}
		if !in.HasDst() {
			continue
		}

		// Constant folding.
		aN := num(in.A)
		bN := num(in.B)
		if in.Class == ir.ClassW {
			av, aOK := constVal[aN]
			bv, bOK := constVal[bN]
			if folded, ok := foldConst(in, av, aOK, bv, bOK); ok {
				*in = ir.Inst{Op: ir.Const, Class: ir.ClassW, Dst: in.Dst, Imm: folded, A: ir.NoReg, B: ir.NoReg, Slot: ir.NoSlot}
				n := newVal(in.Dst)
				constVal[n] = folded
				changed = true
				continue
			}
			if simplified := algebraic(in, av, aOK, bv, bOK); simplified {
				changed = true
				// fallthrough to CSE with the rewritten form
				aN = num(in.A)
				bN = num(in.B)
			}
		}

		if in.Op == ir.Const && in.Class == ir.ClassW {
			key := vnKey{op: ir.Const, class: in.Class, imm: in.Imm}
			if prev, ok := table[key]; ok && vn[prev.reg] == prev.n {
				// Reuse: rewrite to copy (propagate pass will clean up).
				*in = ir.Inst{Op: ir.Copy, Class: in.Class, Dst: in.Dst, A: prev.reg, B: ir.NoReg, Slot: ir.NoSlot}
				vn[in.Dst] = prev.n
				changed = true
				continue
			}
			n := newVal(in.Dst)
			constVal[n] = in.Imm
			table[key] = tabEnt{reg: in.Dst, n: n}
			continue
		}

		if !in.Pure() && in.Op != ir.Load {
			newVal(in.Dst)
			continue
		}
		key := vnKey{
			op: in.Op, class: in.Class, a: aN, bb: bN, imm: in.Imm,
			fbits: math.Float64bits(in.FImm),
			cc:    in.CC, mem: in.Mem, cvt: in.Cvt, sym: in.Sym, slot: in.Slot,
		}
		if in.HasIdx {
			key.imm = key.imm ^ int64(num(in.Idx))<<32
		}
		if in.Op == ir.Load {
			key.epoch = epoch
		}
		if in.Op == ir.Copy {
			vn[in.Dst] = aN
			continue
		}
		if prev, ok := table[key]; ok && vn[prev.reg] == prev.n {
			*in = ir.Inst{Op: ir.Copy, Class: in.Class, Dst: in.Dst, A: prev.reg, B: ir.NoReg, Slot: ir.NoSlot}
			vn[in.Dst] = prev.n
			changed = true
			continue
		}
		n := newVal(in.Dst)
		table[key] = tabEnt{reg: in.Dst, n: n}
	}
	return changed
}

// foldConst evaluates an ALU op when enough operands are constant.
func foldConst(in *ir.Inst, av int64, aOK bool, bv int64, bOK bool) (int64, bool) {
	w := func(x int64) int64 { return int64(int32(x)) }
	u := func(x int64) uint32 { return uint32(int32(x)) }
	switch in.Op {
	case ir.AddI:
		if aOK {
			return w(av + in.Imm), true
		}
	case ir.MulI:
		if aOK {
			return w(av * in.Imm), true
		}
	case ir.AndI:
		if aOK {
			return w(av & in.Imm), true
		}
	case ir.OrI:
		if aOK {
			return w(av | in.Imm), true
		}
	case ir.XorI:
		if aOK {
			return w(av ^ in.Imm), true
		}
	case ir.ShlI:
		if aOK {
			return w(int64(u(av) << uint(in.Imm&31))), true
		}
	case ir.ShrI:
		if aOK {
			return w(int64(u(av) >> uint(in.Imm&31))), true
		}
	case ir.SraI:
		if aOK {
			return w(int64(int32(av) >> uint(in.Imm&31))), true
		}
	case ir.Neg:
		if aOK {
			return w(-av), true
		}
	case ir.SetI:
		if aOK {
			return b2i(evalCC(in.CC, int32(av), int32(in.Imm))), true
		}
	}
	if !aOK || !bOK {
		return 0, false
	}
	switch in.Op {
	case ir.Add:
		return w(av + bv), true
	case ir.Sub:
		return w(av - bv), true
	case ir.Mul:
		return w(av * bv), true
	case ir.Div:
		if bv != 0 && !(int32(av) == -1<<31 && int32(bv) == -1) {
			return w(int64(int32(av) / int32(bv))), true
		}
	case ir.DivU:
		if bv != 0 {
			return w(int64(u(av) / u(bv))), true
		}
	case ir.Rem:
		if bv != 0 && !(int32(av) == -1<<31 && int32(bv) == -1) {
			return w(int64(int32(av) % int32(bv))), true
		}
	case ir.RemU:
		if bv != 0 {
			return w(int64(u(av) % u(bv))), true
		}
	case ir.And:
		return w(av & bv), true
	case ir.Or:
		return w(av | bv), true
	case ir.Xor:
		return w(av ^ bv), true
	case ir.Shl:
		return w(int64(u(av) << (u(bv) & 31))), true
	case ir.Shr:
		return w(int64(u(av) >> (u(bv) & 31))), true
	case ir.Sra:
		return w(int64(int32(av) >> (u(bv) & 31))), true
	case ir.Set:
		return b2i(evalCC(in.CC, int32(av), int32(bv))), true
	}
	return 0, false
}

func evalCC(cc ir.CC, a, b int32) bool {
	ua, ub := uint32(a), uint32(b)
	switch cc {
	case ir.CCEq:
		return a == b
	case ir.CCNe:
		return a != b
	case ir.CCLt:
		return a < b
	case ir.CCLe:
		return a <= b
	case ir.CCGt:
		return a > b
	case ir.CCGe:
		return a >= b
	case ir.CCLtU:
		return ua < ub
	case ir.CCLeU:
		return ua <= ub
	case ir.CCGtU:
		return ua > ub
	default:
		return ua >= ub
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// algebraic applies identities: x+0, x*1, x*0, x&0, x|0, x^0, shifts
// by 0. Returns true if the instruction was rewritten.
func algebraic(in *ir.Inst, av int64, aOK bool, bv int64, bOK bool) bool {
	_ = av
	_ = aOK
	_ = bv
	_ = bOK
	toCopy := func() {
		*in = ir.Inst{Op: ir.Copy, Class: in.Class, Dst: in.Dst, A: in.A, B: ir.NoReg, Slot: ir.NoSlot}
	}
	toConst := func(v int64) {
		*in = ir.Inst{Op: ir.Const, Class: in.Class, Dst: in.Dst, Imm: v, A: ir.NoReg, B: ir.NoReg, Slot: ir.NoSlot}
	}
	switch in.Op {
	case ir.AddI, ir.OrI, ir.XorI, ir.ShlI, ir.ShrI, ir.SraI:
		if in.Imm == 0 {
			toCopy()
			return true
		}
	case ir.MulI:
		switch in.Imm {
		case 0:
			toConst(0)
			return true
		case 1:
			toCopy()
			return true
		}
	case ir.AndI:
		if in.Imm == 0 {
			toConst(0)
			return true
		}
		if in.Imm == -1 {
			toCopy()
			return true
		}
	}
	return false
}

// deadCode removes pure instructions with unused results and
// unreachable blocks, iterating to a fixed point.
func deadCode(f *ir.Func) bool {
	changed := false
	for {
		_, uses := defUseCounts(f)
		removed := false
		for _, b := range f.Blocks {
			out := b.Insts[:0]
			for i := range b.Insts {
				in := b.Insts[i]
				if in.HasDst() && uses[in.Dst] == 0 && (in.Pure() || in.Op == ir.Load) {
					removed = true
					continue
				}
				out = append(out, in)
			}
			b.Insts = out
		}
		if !removed {
			break
		}
		changed = true
	}
	changed = removeUnreachable(f) || changed
	return changed
}

// removeUnreachable drops blocks not reachable from the entry and
// renumbers the rest.
func removeUnreachable(f *ir.Func) bool {
	f.Recompute()
	seen := make([]bool, len(f.Blocks))
	stack := []int{0}
	seen[0] = true
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range f.Blocks[id].Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	all := true
	for _, s := range seen {
		if !s {
			all = false
			break
		}
	}
	if all {
		return false
	}
	remap := make([]int, len(f.Blocks))
	var kept []*ir.Block
	for i, b := range f.Blocks {
		if seen[i] {
			remap[i] = len(kept)
			b.ID = len(kept)
			kept = append(kept, b)
		}
	}
	for _, b := range kept {
		if t := b.Term(); t != nil {
			switch t.Op {
			case ir.Jmp:
				t.Then = remap[t.Then]
			case ir.Br, ir.BrI:
				t.Then = remap[t.Then]
				t.Else = remap[t.Else]
			}
		}
	}
	f.Blocks = kept
	f.Recompute()
	return true
}
