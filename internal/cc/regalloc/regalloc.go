// Package regalloc implements a linear-scan register allocator over the
// OmniC IR. The allocatable register set is a parameter, which is how
// the repository reproduces Table 2 of the paper (OmniVM register-file
// sizes of 8..16) and how the native back ends get larger files than
// the 16-register OmniVM mapping.
package regalloc

import (
	"fmt"
	"sort"

	"omniware/internal/cc/ir"
)

// Config selects the physical register set.
type Config struct {
	// IntRegs and FPRegs list allocatable physical registers in
	// preference order. Registers listed in CalleeSaved survive calls.
	IntRegs []int
	FPRegs  []int

	IntCalleeSaved map[int]bool
	FPCalleeSaved  map[int]bool
}

// LocKind distinguishes where a vreg lives.
type LocKind uint8

const (
	InReg LocKind = iota
	Spilled
)

// Loc is a vreg's assigned location.
type Loc struct {
	Kind LocKind
	Reg  int // physical register (InReg)
	Slot int // spill slot index into Func.Slots (Spilled)
}

// Result reports the allocation.
type Result struct {
	Loc           []Loc // per vreg
	UsedIntCallee []int // callee-saved int regs the function must save
	UsedFPCallee  []int
	SpillSlots    int
	ScratchInt    [2]int // reserved scratch registers for spill traffic
	ScratchFP     [2]int
	HasCalls      bool
	NumInsts      int
}

type interval struct {
	v          ir.VReg
	start, end int
	crossCall  bool
	fp         bool
	weight     int // spill priority: uses count (higher = keep)
}

// Allocate assigns locations to every vreg of f. It may add spill slots
// to f.Slots. The caller rewrites instructions using Result.Loc.
func Allocate(f *ir.Func, cfg Config) (*Result, error) {
	if len(cfg.IntRegs) < 4 || len(cfg.FPRegs) < 3 {
		return nil, fmt.Errorf("regalloc: register file too small (%d int, %d fp)", len(cfg.IntRegs), len(cfg.FPRegs))
	}
	res := &Result{Loc: make([]Loc, f.NVReg)}

	// Reserve the last two registers of each class as spill scratch.
	intRegs := append([]int(nil), cfg.IntRegs...)
	fpRegs := append([]int(nil), cfg.FPRegs...)
	res.ScratchInt = [2]int{intRegs[len(intRegs)-1], intRegs[len(intRegs)-2]}
	res.ScratchFP = [2]int{fpRegs[len(fpRegs)-1], fpRegs[len(fpRegs)-2]}
	intRegs = intRegs[:len(intRegs)-2]
	fpRegs = fpRegs[:len(fpRegs)-2]

	// Number instructions in block order; record call positions.
	pos := 0
	type blkRange struct{ start, end int }
	ranges := make([]blkRange, len(f.Blocks))
	var callPos []int
	for _, b := range f.Blocks {
		ranges[b.ID] = blkRange{start: pos, end: pos + len(b.Insts)}
		for i := range b.Insts {
			op := b.Insts[i].Op
			if op == ir.Call || op == ir.Syscall {
				callPos = append(callPos, pos+i)
				res.HasCalls = true
			}
		}
		pos += len(b.Insts)
	}
	res.NumInsts = pos

	// Liveness.
	liveIn, liveOut := liveness(f)

	// Intervals: coarse [min position, max position] across live ranges.
	starts := make([]int, f.NVReg)
	ends := make([]int, f.NVReg)
	weight := make([]int, f.NVReg)
	for i := range starts {
		starts[i] = 1 << 30
		ends[i] = -1
	}
	touch := func(v ir.VReg, p int) {
		if int(v) < 0 {
			return
		}
		if p < starts[v] {
			starts[v] = p
		}
		if p > ends[v] {
			ends[v] = p
		}
	}
	// Parameters are defined at entry, before the first instruction.
	// Using -1 (not 0) matters: if the first instruction is a call, a
	// parameter live across it must be seen as call-crossing.
	for _, p := range f.Params {
		touch(p, -1)
	}
	var usebuf []ir.VReg
	for _, b := range f.Blocks {
		r := ranges[b.ID]
		for v := range liveIn[b.ID] {
			touch(v, r.start)
		}
		for v := range liveOut[b.ID] {
			// Live-out extends to the end of the block.
			touch(v, r.end)
		}
		for i := range b.Insts {
			in := &b.Insts[i]
			p := r.start + i
			if in.HasDst() {
				touch(in.Dst, p)
				weight[in.Dst]++
			}
			usebuf = in.Uses(usebuf[:0])
			for _, u := range usebuf {
				touch(u, p)
				weight[u] += 2
			}
		}
	}

	var ivs []interval
	for v := 0; v < f.NVReg; v++ {
		if ends[v] < 0 {
			continue // never used
		}
		iv := interval{
			v: ir.VReg(v), start: starts[v], end: ends[v],
			fp: f.VClass[v].IsFP(), weight: weight[v],
		}
		for _, cp := range callPos {
			if iv.start < cp && cp < iv.end {
				iv.crossCall = true
				break
			}
		}
		ivs = append(ivs, iv)
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].start < ivs[j].start })

	// Two independent scans, one per class.
	usedCallee := map[int]bool{}
	scan := func(regs []int, calleeSaved map[int]bool, fp bool) {
		type active struct {
			iv  interval
			reg int
		}
		var act []active
		free := map[int]bool{}
		for _, r := range regs {
			free[r] = true
		}
		expire := func(p int) {
			out := act[:0]
			for _, a := range act {
				if a.iv.end < p {
					free[a.reg] = true
				} else {
					out = append(out, a)
				}
			}
			act = out
		}
		for _, iv := range ivs {
			if iv.fp != fp {
				continue
			}
			expire(iv.start)
			// Pick a register honoring call-crossing constraints.
			pick := -1
			for _, r := range regs {
				if !free[r] {
					continue
				}
				if iv.crossCall && !calleeSaved[r] {
					continue
				}
				pick = r
				break
			}
			if pick < 0 && !iv.crossCall {
				// Any free register will do for a call-free interval.
				for _, r := range regs {
					if free[r] {
						pick = r
						break
					}
				}
			}
			if pick >= 0 {
				free[pick] = false
				act = append(act, active{iv: iv, reg: pick})
				res.Loc[iv.v] = Loc{Kind: InReg, Reg: pick}
				if calleeSaved[pick] {
					usedCallee[encode(fp, pick)] = true
				}
				continue
			}
			// Spill: choose between this interval and the active one
			// with the lowest weight among compatible candidates.
			victim := -1
			for i, a := range act {
				if iv.crossCall && !calleeSaved[a.reg] {
					continue
				}
				if victim < 0 || a.iv.weight < act[victim].iv.weight {
					victim = i
				}
			}
			if victim >= 0 && act[victim].iv.weight < iv.weight {
				// Steal the victim's register.
				a := act[victim]
				slot := spillSlot(f, a.iv.v)
				res.Loc[a.iv.v] = Loc{Kind: Spilled, Slot: slot}
				res.SpillSlots++
				res.Loc[iv.v] = Loc{Kind: InReg, Reg: a.reg}
				act[victim] = active{iv: iv, reg: a.reg}
				if calleeSaved[a.reg] {
					usedCallee[encode(fp, a.reg)] = true
				}
			} else {
				slot := spillSlot(f, iv.v)
				res.Loc[iv.v] = Loc{Kind: Spilled, Slot: slot}
				res.SpillSlots++
			}
		}
	}
	scan(intRegs, cfg.IntCalleeSaved, false)
	scan(fpRegs, cfg.FPCalleeSaved, true)

	for k := range usedCallee {
		fp, r := decode(k)
		if fp {
			res.UsedFPCallee = append(res.UsedFPCallee, r)
		} else {
			res.UsedIntCallee = append(res.UsedIntCallee, r)
		}
	}
	sort.Ints(res.UsedIntCallee)
	sort.Ints(res.UsedFPCallee)
	return res, nil
}

func encode(fp bool, r int) int {
	if fp {
		return r | 1<<16
	}
	return r
}

func decode(k int) (bool, int) { return k&(1<<16) != 0, k &^ (1 << 16) }

func spillSlot(f *ir.Func, v ir.VReg) int {
	size := 4
	if f.VClass[v].IsFP() {
		size = 8
	}
	return f.NewSlot(fmt.Sprintf(".spill%d", v), size, size)
}

// liveness computes per-block live-in/out sets.
func liveness(f *ir.Func) (liveIn, liveOut []map[ir.VReg]bool) {
	n := len(f.Blocks)
	liveIn = make([]map[ir.VReg]bool, n)
	liveOut = make([]map[ir.VReg]bool, n)
	use := make([]map[ir.VReg]bool, n)
	def := make([]map[ir.VReg]bool, n)
	var ubuf []ir.VReg
	for _, b := range f.Blocks {
		u := map[ir.VReg]bool{}
		d := map[ir.VReg]bool{}
		for i := range b.Insts {
			in := &b.Insts[i]
			ubuf = in.Uses(ubuf[:0])
			for _, v := range ubuf {
				if !d[v] {
					u[v] = true
				}
			}
			if in.HasDst() {
				d[in.Dst] = true
			}
		}
		use[b.ID] = u
		def[b.ID] = d
		liveIn[b.ID] = map[ir.VReg]bool{}
		liveOut[b.ID] = map[ir.VReg]bool{}
	}
	f.Recompute()
	for changed := true; changed; {
		changed = false
		for i := n - 1; i >= 0; i-- {
			b := f.Blocks[i]
			out := liveOut[b.ID]
			for _, s := range b.Succs {
				for v := range liveIn[s] {
					if !out[v] {
						out[v] = true
						changed = true
					}
				}
			}
			in := liveIn[b.ID]
			for v := range use[b.ID] {
				if !in[v] {
					in[v] = true
					changed = true
				}
			}
			for v := range out {
				if !def[b.ID][v] && !in[v] {
					in[v] = true
					changed = true
				}
			}
		}
	}
	return liveIn, liveOut
}
