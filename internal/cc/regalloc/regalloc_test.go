package regalloc

import (
	"testing"

	"omniware/internal/cc/ir"
)

// tiny builds a one-block function: dst vregs computed from params.
func cfg(k int) Config {
	var regs []int
	for r := 1; r <= k; r++ {
		regs = append(regs, r)
	}
	return Config{
		IntRegs:        regs,
		FPRegs:         []int{1, 2, 3, 4, 5},
		IntCalleeSaved: map[int]bool{k: true, k - 1: true},
		FPCalleeSaved:  map[int]bool{},
	}
}

func TestDistinctLiveValuesGetDistinctRegs(t *testing.T) {
	f := &ir.Func{Name: "t"}
	b := f.NewBlock()
	v1 := f.NewVReg(ir.ClassW)
	v2 := f.NewVReg(ir.ClassW)
	v3 := f.NewVReg(ir.ClassW)
	b.Insts = append(b.Insts,
		ir.Inst{Op: ir.Const, Class: ir.ClassW, Dst: v1, Imm: 1, A: ir.NoReg, B: ir.NoReg, Slot: ir.NoSlot},
		ir.Inst{Op: ir.Const, Class: ir.ClassW, Dst: v2, Imm: 2, A: ir.NoReg, B: ir.NoReg, Slot: ir.NoSlot},
		ir.Inst{Op: ir.Add, Class: ir.ClassW, Dst: v3, A: v1, B: v2, Slot: ir.NoSlot},
		ir.Inst{Op: ir.Ret, Class: ir.ClassW, A: v3, Dst: ir.NoReg, B: ir.NoReg, Slot: ir.NoSlot},
	)
	res, err := Allocate(f, cfg(8))
	if err != nil {
		t.Fatal(err)
	}
	l1, l2 := res.Loc[v1], res.Loc[v2]
	if l1.Kind != InReg || l2.Kind != InReg {
		t.Fatalf("spilled with plenty of registers: %+v", res.Loc)
	}
	if l1.Reg == l2.Reg {
		t.Errorf("overlapping values share register %d", l1.Reg)
	}
}

func TestParamLiveAcrossLeadingCall(t *testing.T) {
	// The regression behind the xlisp bug: a parameter used after a
	// call that is the very first instruction must not be assigned a
	// caller-saved register.
	f := &ir.Func{Name: "t"}
	b := f.NewBlock()
	p := f.NewVReg(ir.ClassW)
	f.Params = []ir.VReg{p}
	f.PClasses = []ir.Class{ir.ClassW}
	ret := f.NewVReg(ir.ClassW)
	sum := f.NewVReg(ir.ClassW)
	b.Insts = append(b.Insts,
		ir.Inst{Op: ir.Call, Class: ir.ClassW, Sym: "g", Dst: ret, A: ir.NoReg, B: ir.NoReg, Slot: ir.NoSlot},
		ir.Inst{Op: ir.Add, Class: ir.ClassW, Dst: sum, A: p, B: ret, Slot: ir.NoSlot},
		ir.Inst{Op: ir.Ret, Class: ir.ClassW, A: sum, Dst: ir.NoReg, B: ir.NoReg, Slot: ir.NoSlot},
	)
	c := cfg(8)
	res, err := Allocate(f, c)
	if err != nil {
		t.Fatal(err)
	}
	lp := res.Loc[p]
	if lp.Kind == InReg && !c.IntCalleeSaved[lp.Reg] {
		t.Errorf("call-crossing parameter in caller-saved register r%d", lp.Reg)
	}
}

func TestSpillUnderPressure(t *testing.T) {
	f := &ir.Func{Name: "t"}
	b := f.NewBlock()
	// 10 simultaneously live values with only 6 allocatable (8 minus 2
	// scratch): some must spill, and slots must be allocated.
	var vs []ir.VReg
	for i := 0; i < 10; i++ {
		v := f.NewVReg(ir.ClassW)
		vs = append(vs, v)
		b.Insts = append(b.Insts, ir.Inst{Op: ir.Const, Class: ir.ClassW, Dst: v, Imm: int64(i), A: ir.NoReg, B: ir.NoReg, Slot: ir.NoSlot})
	}
	acc := f.NewVReg(ir.ClassW)
	b.Insts = append(b.Insts, ir.Inst{Op: ir.Const, Class: ir.ClassW, Dst: acc, A: ir.NoReg, B: ir.NoReg, Slot: ir.NoSlot})
	for _, v := range vs {
		nacc := f.NewVReg(ir.ClassW)
		b.Insts = append(b.Insts, ir.Inst{Op: ir.Add, Class: ir.ClassW, Dst: nacc, A: acc, B: v, Slot: ir.NoSlot})
		acc = nacc
	}
	b.Insts = append(b.Insts, ir.Inst{Op: ir.Ret, Class: ir.ClassW, A: acc, Dst: ir.NoReg, B: ir.NoReg, Slot: ir.NoSlot})

	res, err := Allocate(f, cfg(8))
	if err != nil {
		t.Fatal(err)
	}
	if res.SpillSlots == 0 {
		t.Error("no spills under heavy pressure")
	}
	if len(f.Slots) < res.SpillSlots {
		t.Error("spill slots not allocated in the function frame")
	}
	// No two InReg locations with overlapping lifetimes may collide:
	// check pairwise among the first 10 (all live simultaneously).
	used := map[int][]ir.VReg{}
	for _, v := range vs {
		l := res.Loc[v]
		if l.Kind == InReg {
			used[l.Reg] = append(used[l.Reg], v)
		}
	}
	for r, shared := range used {
		if len(shared) > 1 {
			t.Errorf("register %d shared by concurrently live %v", r, shared)
		}
	}
}

func TestTooSmallFileRejected(t *testing.T) {
	f := &ir.Func{Name: "t"}
	b := f.NewBlock()
	b.Insts = append(b.Insts, ir.Inst{Op: ir.Ret, A: ir.NoReg, Dst: ir.NoReg, B: ir.NoReg, Slot: ir.NoSlot})
	_, err := Allocate(f, Config{IntRegs: []int{1, 2}, FPRegs: []int{1, 2, 3}})
	if err == nil {
		t.Error("accepted a 2-register file")
	}
}
