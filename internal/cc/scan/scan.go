// Package scan implements the OmniC lexical scanner. OmniC has no
// preprocessor; // and /* */ comments are skipped, and a tiny subset of
// directives (#line markers emitted by tools) are tolerated and ignored.
package scan

import (
	"fmt"
	"strconv"
	"strings"

	"omniware/internal/cc/token"
)

// Error is a scan diagnostic.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Scanner produces tokens from source text.
type Scanner struct {
	src  string
	file string
	off  int
	line int
	col  int
}

// New creates a scanner for src; file is used in positions.
func New(file, src string) *Scanner {
	return &Scanner{src: src, file: file, line: 1, col: 1}
}

func (s *Scanner) pos() token.Pos { return token.Pos{File: s.file, Line: s.line, Col: s.col} }

func (s *Scanner) errf(format string, args ...any) error {
	return &Error{Pos: s.pos(), Msg: fmt.Sprintf(format, args...)}
}

func (s *Scanner) peek() byte {
	if s.off >= len(s.src) {
		return 0
	}
	return s.src[s.off]
}

func (s *Scanner) peek2() byte {
	if s.off+1 >= len(s.src) {
		return 0
	}
	return s.src[s.off+1]
}

func (s *Scanner) advance() byte {
	c := s.src[s.off]
	s.off++
	if c == '\n' {
		s.line++
		s.col = 1
	} else {
		s.col++
	}
	return c
}

func (s *Scanner) skipSpace() error {
	for s.off < len(s.src) {
		c := s.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			s.advance()
		case c == '/' && s.peek2() == '/':
			for s.off < len(s.src) && s.peek() != '\n' {
				s.advance()
			}
		case c == '/' && s.peek2() == '*':
			s.advance()
			s.advance()
			closed := false
			for s.off < len(s.src) {
				if s.peek() == '*' && s.peek2() == '/' {
					s.advance()
					s.advance()
					closed = true
					break
				}
				s.advance()
			}
			if !closed {
				return s.errf("unterminated comment")
			}
		case c == '#':
			// Tolerate and skip line-oriented directives.
			for s.off < len(s.src) && s.peek() != '\n' {
				s.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentCont(c byte) bool { return isIdentStart(c) || isDigit(c) }

// Next returns the next token.
func (s *Scanner) Next() (token.Token, error) {
	if err := s.skipSpace(); err != nil {
		return token.Token{}, err
	}
	pos := s.pos()
	if s.off >= len(s.src) {
		return token.Token{Kind: token.EOF, Pos: pos}, nil
	}
	c := s.peek()
	switch {
	case isIdentStart(c):
		start := s.off
		for s.off < len(s.src) && isIdentCont(s.peek()) {
			s.advance()
		}
		text := s.src[start:s.off]
		if k, ok := token.Keywords[text]; ok {
			return token.Token{Kind: k, Pos: pos, Text: text}, nil
		}
		return token.Token{Kind: token.Ident, Pos: pos, Text: text}, nil

	case isDigit(c) || (c == '.' && isDigit(s.peek2())):
		return s.number(pos)

	case c == '\'':
		return s.charLit(pos)

	case c == '"':
		return s.strLit(pos)
	}

	// Operators and punctuation (longest match).
	two := ""
	if s.off+1 < len(s.src) {
		two = s.src[s.off : s.off+2]
	}
	three := ""
	if s.off+2 < len(s.src) {
		three = s.src[s.off : s.off+3]
	}
	mk := func(k token.Kind, n int) (token.Token, error) {
		for i := 0; i < n; i++ {
			s.advance()
		}
		return token.Token{Kind: k, Pos: pos}, nil
	}
	switch three {
	case "<<=":
		return mk(token.ShlAssign, 3)
	case ">>=":
		return mk(token.ShrAssign, 3)
	case "...":
		return mk(token.Ellipsis, 3)
	}
	switch two {
	case "->":
		return mk(token.Arrow, 2)
	case "++":
		return mk(token.Inc, 2)
	case "--":
		return mk(token.Dec, 2)
	case "<<":
		return mk(token.Shl, 2)
	case ">>":
		return mk(token.Shr, 2)
	case "<=":
		return mk(token.Le, 2)
	case ">=":
		return mk(token.Ge, 2)
	case "==":
		return mk(token.EqEq, 2)
	case "!=":
		return mk(token.NotEq, 2)
	case "&&":
		return mk(token.AndAnd, 2)
	case "||":
		return mk(token.OrOr, 2)
	case "+=":
		return mk(token.PlusAssign, 2)
	case "-=":
		return mk(token.MinusAssign, 2)
	case "*=":
		return mk(token.StarAssign, 2)
	case "/=":
		return mk(token.SlashAssign, 2)
	case "%=":
		return mk(token.PercentAssign, 2)
	case "&=":
		return mk(token.AmpAssign, 2)
	case "|=":
		return mk(token.PipeAssign, 2)
	case "^=":
		return mk(token.CaretAssign, 2)
	}
	switch c {
	case '(':
		return mk(token.LParen, 1)
	case ')':
		return mk(token.RParen, 1)
	case '{':
		return mk(token.LBrace, 1)
	case '}':
		return mk(token.RBrace, 1)
	case '[':
		return mk(token.LBrack, 1)
	case ']':
		return mk(token.RBrack, 1)
	case ';':
		return mk(token.Semi, 1)
	case ',':
		return mk(token.Comma, 1)
	case ':':
		return mk(token.Colon, 1)
	case '?':
		return mk(token.Question, 1)
	case '.':
		return mk(token.Dot, 1)
	case '+':
		return mk(token.Plus, 1)
	case '-':
		return mk(token.Minus, 1)
	case '*':
		return mk(token.Star, 1)
	case '/':
		return mk(token.Slash, 1)
	case '%':
		return mk(token.Percent, 1)
	case '&':
		return mk(token.Amp, 1)
	case '|':
		return mk(token.Pipe, 1)
	case '^':
		return mk(token.Caret, 1)
	case '~':
		return mk(token.Tilde, 1)
	case '!':
		return mk(token.Not, 1)
	case '<':
		return mk(token.Lt, 1)
	case '>':
		return mk(token.Gt, 1)
	case '=':
		return mk(token.Assign, 1)
	}
	return token.Token{}, s.errf("unexpected character %q", c)
}

func (s *Scanner) number(pos token.Pos) (token.Token, error) {
	start := s.off
	isHex := false
	if s.peek() == '0' && (s.peek2() == 'x' || s.peek2() == 'X') {
		isHex = true
		s.advance()
		s.advance()
		for s.off < len(s.src) && isHexDigit(s.peek()) {
			s.advance()
		}
	} else {
		for s.off < len(s.src) && isDigit(s.peek()) {
			s.advance()
		}
	}
	isFloat := false
	if !isHex && s.off < len(s.src) && s.peek() == '.' {
		isFloat = true
		s.advance()
		for s.off < len(s.src) && isDigit(s.peek()) {
			s.advance()
		}
	}
	if !isHex && s.off < len(s.src) && (s.peek() == 'e' || s.peek() == 'E') {
		save := s.off
		s.advance()
		if s.peek() == '+' || s.peek() == '-' {
			s.advance()
		}
		if isDigit(s.peek()) {
			isFloat = true
			for s.off < len(s.src) && isDigit(s.peek()) {
				s.advance()
			}
		} else {
			s.off = save // not an exponent
		}
	}
	text := s.src[start:s.off]
	if isFloat {
		isF32 := false
		if s.off < len(s.src) && (s.peek() == 'f' || s.peek() == 'F') {
			s.advance()
			isF32 = true
		}
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return token.Token{}, s.errf("bad float literal %q", text)
		}
		return token.Token{Kind: token.FloatLit, Pos: pos, Float: v, IsF32: isF32}, nil
	}
	uns := false
	for s.off < len(s.src) {
		switch s.peek() {
		case 'u', 'U':
			uns = true
			s.advance()
			continue
		case 'l', 'L':
			s.advance()
			continue
		}
		break
	}
	v, err := strconv.ParseUint(text, 0, 64)
	if err != nil || v > 0xffffffff {
		return token.Token{}, s.errf("integer literal %q out of 32-bit range", text)
	}
	if v > 0x7fffffff {
		uns = true
	}
	return token.Token{Kind: token.IntLit, Pos: pos, Int: int64(v), Uns: uns}, nil
}

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func (s *Scanner) charLit(pos token.Pos) (token.Token, error) {
	s.advance() // '
	if s.off >= len(s.src) {
		return token.Token{}, s.errf("unterminated char literal")
	}
	var v int64
	c := s.advance()
	if c == '\\' {
		e, err := s.escape()
		if err != nil {
			return token.Token{}, err
		}
		v = int64(e)
	} else if c == '\'' {
		return token.Token{}, s.errf("empty char literal")
	} else {
		v = int64(c)
	}
	if s.off >= len(s.src) || s.advance() != '\'' {
		return token.Token{}, s.errf("unterminated char literal")
	}
	return token.Token{Kind: token.CharLit, Pos: pos, Int: v}, nil
}

func (s *Scanner) escape() (byte, error) {
	if s.off >= len(s.src) {
		return 0, s.errf("unterminated escape")
	}
	c := s.advance()
	switch c {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case '0':
		return 0, nil
	case 'a':
		return 7, nil
	case 'b':
		return 8, nil
	case 'f':
		return 12, nil
	case 'v':
		return 11, nil
	case '\\', '\'', '"':
		return c, nil
	case 'x':
		var v int
		n := 0
		for s.off < len(s.src) && isHexDigit(s.peek()) && n < 2 {
			d := s.advance()
			v = v*16 + hexVal(d)
			n++
		}
		if n == 0 {
			return 0, s.errf("bad hex escape")
		}
		return byte(v), nil
	}
	return 0, s.errf("unknown escape \\%c", c)
}

func hexVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	default:
		return int(c-'A') + 10
	}
}

func (s *Scanner) strLit(pos token.Pos) (token.Token, error) {
	s.advance() // "
	var b strings.Builder
	for {
		if s.off >= len(s.src) {
			return token.Token{}, s.errf("unterminated string literal")
		}
		c := s.advance()
		if c == '"' {
			break
		}
		if c == '\n' {
			return token.Token{}, s.errf("newline in string literal")
		}
		if c == '\\' {
			e, err := s.escape()
			if err != nil {
				return token.Token{}, err
			}
			b.WriteByte(e)
			continue
		}
		b.WriteByte(c)
	}
	return token.Token{Kind: token.StrLit, Pos: pos, Str: b.String()}, nil
}

// All scans the entire source, concatenating adjacent string literals
// (the one piece of token-level C semantics OmniC keeps).
func All(file, src string) ([]token.Token, error) {
	s := New(file, src)
	var out []token.Token
	for {
		t, err := s.Next()
		if err != nil {
			return nil, err
		}
		if t.Kind == token.StrLit && len(out) > 0 && out[len(out)-1].Kind == token.StrLit {
			out[len(out)-1].Str += t.Str
			continue
		}
		out = append(out, t)
		if t.Kind == token.EOF {
			return out, nil
		}
	}
}
