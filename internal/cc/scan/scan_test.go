package scan

import (
	"testing"

	"omniware/internal/cc/token"
)

func kinds(t *testing.T, src string) []token.Kind {
	t.Helper()
	toks, err := All("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	var out []token.Kind
	for _, tk := range toks {
		out = append(out, tk.Kind)
	}
	return out
}

func TestOperators(t *testing.T) {
	got := kinds(t, "a <<= b >> c <= d ... -> ++ -- && || != ==")
	want := []token.Kind{
		token.Ident, token.ShlAssign, token.Ident, token.Shr, token.Ident,
		token.Le, token.Ident, token.Ellipsis, token.Arrow, token.Inc,
		token.Dec, token.AndAnd, token.OrOr, token.NotEq, token.EqEq,
		token.EOF,
	}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("tok %d: %v want %v", i, got[i], want[i])
		}
	}
}

func TestNumbers(t *testing.T) {
	toks, err := All("t.c", "0 42 0x7fffffff 0xff 3000000000u 2147483648 1.5 2.5e3 1e-2 7.f 3f")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Int != 0 || toks[1].Int != 42 || toks[2].Int != 0x7fffffff || toks[3].Int != 255 {
		t.Errorf("ints: %v", toks[:4])
	}
	if !toks[4].Uns {
		t.Error("u suffix lost")
	}
	if !toks[5].Uns {
		t.Error("2147483648 should be unsigned")
	}
	if toks[6].Kind != token.FloatLit || toks[6].Float != 1.5 {
		t.Errorf("float: %+v", toks[6])
	}
	if toks[7].Float != 2500 {
		t.Errorf("exponent: %+v", toks[7])
	}
	if toks[8].Float != 0.01 {
		t.Errorf("negative exponent: %+v", toks[8])
	}
	if !toks[9].IsF32 {
		t.Errorf("f suffix: %+v", toks[9])
	}
}

func TestCharAndString(t *testing.T) {
	toks, err := All("t.c", `'a' '\n' '\0' '\xff' "hi\tthere" , "a" "b"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Int != 'a' || toks[1].Int != 10 || toks[2].Int != 0 || toks[3].Int != 255 {
		t.Errorf("chars: %+v", toks[:4])
	}
	if toks[4].Str != "hi\tthere" {
		t.Errorf("string: %q", toks[4].Str)
	}
	// Adjacent literals concatenate (toks[5] is the comma).
	if toks[6].Str != "ab" {
		t.Errorf("concat: %q", toks[6].Str)
	}
}

func TestCommentsAndDirectives(t *testing.T) {
	got := kinds(t, `
// line comment
x /* block
comment */ y
#include <foo.h>
z`)
	want := []token.Kind{token.Ident, token.Ident, token.Ident, token.EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
}

func TestScanErrors(t *testing.T) {
	bad := []string{
		"'",             // unterminated char
		"''",            // empty char
		`"abc`,          // unterminated string
		"\"a\nb\"",      // newline in string
		"/* open",       // unterminated comment
		"'\\q'",         // unknown escape
		"9999999999999", // out of range
		"@",             // stray byte
	}
	for _, src := range bad {
		if _, err := All("t.c", src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestPositions(t *testing.T) {
	toks, err := All("f.c", "a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("b at %v", toks[1].Pos)
	}
}

func TestKeywords(t *testing.T) {
	toks, _ := All("t.c", "while whiles")
	if toks[0].Kind != token.KwWhile {
		t.Error("while not a keyword")
	}
	if toks[1].Kind != token.Ident {
		t.Error("whiles wrongly a keyword")
	}
}
