package ast

import "omniware/internal/cc/token"

// Node is implemented by all AST nodes.
type Node interface {
	Pos() token.Pos
}

// Expr is an expression node. After semantic analysis every expression
// carries its type in T.
type Expr interface {
	Node
	Type() *Type
	SetType(*Type)
}

type ExprBase struct {
	P token.Pos
	T *Type
}

func (e *ExprBase) Pos() token.Pos  { return e.P }
func (e *ExprBase) Type() *Type     { return e.T }
func (e *ExprBase) SetType(t *Type) { e.T = t }

// ScopeKind classifies what an identifier resolved to.
type ScopeKind int

const (
	SymUnresolved ScopeKind = iota
	SymLocal                // function-local variable or parameter
	SymGlobal               // file-scope variable
	SymFunc                 // function
	SymEnumConst            // enumeration constant
	SymBuiltin              // host-call builtin (_putc etc.)
)

// Ident is a name use.
type Ident struct {
	ExprBase
	Name string
	// Resolution (set by sem):
	Kind    ScopeKind
	LocalID int   // SymLocal: index into the function's Locals
	EnumVal int64 // SymEnumConst
	Builtin int   // SymBuiltin: syscall number
	DeclTy  *Type // SymGlobal: declared (pre-decay) type
}

// IntLit is an integer (or character) literal.
type IntLit struct {
	ExprBase
	Val int64
}

// FloatLit is a floating literal.
type FloatLit struct {
	ExprBase
	Val float64
}

// StrLit is a string literal; sem assigns it a data label.
type StrLit struct {
	ExprBase
	Val   string
	Label string
}

// Unary is a prefix operator: - ~ ! & * ++ --.
type Unary struct {
	ExprBase
	Op token.Kind
	X  Expr
}

// Postfix is x++ or x--.
type Postfix struct {
	ExprBase
	Op token.Kind
	X  Expr
}

// Binary is a binary operator (arithmetic, relational, logical, comma).
type Binary struct {
	ExprBase
	Op   token.Kind
	X, Y Expr
}

// Assign is x = y or a compound assignment (Op is the compound
// operator's base, e.g. Plus for +=; token.Assign for plain).
type Assign struct {
	ExprBase
	Op   token.Kind
	X, Y Expr
}

// Cond is x ? y : z.
type Cond struct {
	ExprBase
	C, X, Y Expr
}

// Call is a function call; Fn is an Ident for direct calls or any
// expression of function-pointer type.
type Call struct {
	ExprBase
	Fn   Expr
	Args []Expr
}

// Index is x[i].
type Index struct {
	ExprBase
	X, I Expr
}

// Member is x.f (PtrDeref false) or x->f (PtrDeref true).
type Member struct {
	ExprBase
	X        Expr
	Name     string
	PtrDeref bool
	Field    *Field // set by sem
}

// Cast is (T)x.
type Cast struct {
	ExprBase
	To *Type
	X  Expr
}

// SizeofType is sizeof(T); sizeof expr is folded to this by the parser
// after sem computes the operand type.
type SizeofType struct {
	ExprBase
	Of *Type
	X  Expr // non-nil for sizeof expr before sem resolves it
}

// Stmt is a statement node.
type Stmt interface{ Node }

type StmtBase struct{ P token.Pos }

func (s *StmtBase) Pos() token.Pos { return s.P }

// ExprStmt is an expression statement.
type ExprStmt struct {
	StmtBase
	X Expr
}

// DeclStmt declares locals.
type DeclStmt struct {
	StmtBase
	Decls []*LocalDecl
}

// LocalDecl is one declared local with optional initializer.
type LocalDecl struct {
	P       token.Pos
	Name    string
	Ty      *Type
	Init    Expr
	ArrInit []Expr // brace initializer for arrays (scalar elements)
	LocalID int    // set by sem
}

func (d *LocalDecl) Pos() token.Pos { return d.P }

// If statement.
type If struct {
	StmtBase
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// While statement.
type While struct {
	StmtBase
	Cond Expr
	Body Stmt
}

// DoWhile statement.
type DoWhile struct {
	StmtBase
	Body Stmt
	Cond Expr
}

// For statement.
type For struct {
	StmtBase
	Init Stmt // ExprStmt, DeclStmt or nil
	Cond Expr // may be nil
	Post Expr // may be nil
	Body Stmt
}

// Switch statement. Cases are collected by sem.
type Switch struct {
	StmtBase
	Tag  Expr
	Body Stmt
}

// Case label inside a switch.
type Case struct {
	StmtBase
	Val  Expr // nil for default
	Int  int64
	Body []Stmt // statements until next case (filled by parser)
}

// Break statement.
type Break struct{ StmtBase }

// Continue statement.
type Continue struct{ StmtBase }

// Return statement.
type Return struct {
	StmtBase
	X Expr // may be nil
}

// Goto and Label support the benchmark sources' occasional jumps.
type Goto struct {
	StmtBase
	Name string
}

// Label is name: stmt.
type Label struct {
	StmtBase
	Name string
	Stmt Stmt
}

// Block is { ... }.
type Block struct {
	StmtBase
	List []Stmt
}

// Top-level declarations.

// Local describes one local slot of a function (params first).
type Local struct {
	Name      string
	Ty        *Type
	IsParam   bool
	AddrTaken bool
}

// FuncDecl is a function definition or prototype.
type FuncDecl struct {
	P      token.Pos
	Name   string
	Ty     *Type // TFunc
	Body   *Block
	Locals []*Local // set by sem; params first
	Static bool
}

func (d *FuncDecl) Pos() token.Pos { return d.P }

// VarDecl is a file-scope variable.
type VarDecl struct {
	P      token.Pos
	Name   string
	Ty     *Type
	Init   Expr   // scalar initializer
	List   []Expr // brace initializer elements (arrays/structs, flattened)
	Extern bool
	Static bool
}

func (d *VarDecl) Pos() token.Pos { return d.P }

// File is a parsed translation unit.
type File struct {
	Name    string
	Funcs   []*FuncDecl
	Vars    []*VarDecl
	Strings []*StrLit // interned string literals in appearance order
}

// NewIdent makes an identifier expression (used by tests and lowering).
func NewIdent(pos token.Pos, name string) *Ident {
	return &Ident{ExprBase: ExprBase{P: pos}, Name: name}
}

// NewInt makes an int literal with type int.
func NewInt(pos token.Pos, v int64) *IntLit {
	return &IntLit{ExprBase: ExprBase{P: pos, T: Int}, Val: v}
}
