// Package ast defines the abstract syntax tree and type representation
// for OmniC.
package ast

import (
	"fmt"
	"strings"
)

// TypeKind enumerates OmniC types. OmniVM defines the sizes of basic
// types (8/16/32-bit integers, IEEE single and double), which lets the
// compiler fix data layout and emit explicit address arithmetic — the
// property §3.3 of the paper relies on for optimization.
type TypeKind int

const (
	TVoid TypeKind = iota
	TChar
	TUChar
	TShort
	TUShort
	TInt
	TUInt
	TFloat
	TDouble
	TPtr
	TArray
	TStruct
	TFunc
)

// Type is an OmniC type. Types are interned only for basics; derived
// types compare structurally via Same.
type Type struct {
	Kind   TypeKind
	Elem   *Type    // Ptr, Array
	Len    int      // Array length
	Tag    string   // Struct tag
	Fields []Field  // Struct (nil until defined)
	Done   bool     // Struct definition completed
	Ret    *Type    // Func
	Params []*Type  // Func
	PNames []string // Func parameter names (parallel to Params)
	Old    bool     // Func declared with empty parameter list ()
}

// Field is a struct member.
type Field struct {
	Name   string
	Type   *Type
	Offset int
}

// Basic type singletons.
var (
	Void   = &Type{Kind: TVoid}
	Char   = &Type{Kind: TChar}
	UChar  = &Type{Kind: TUChar}
	Short  = &Type{Kind: TShort}
	UShort = &Type{Kind: TUShort}
	Int    = &Type{Kind: TInt}
	UInt   = &Type{Kind: TUInt}
	Float  = &Type{Kind: TFloat}
	Double = &Type{Kind: TDouble}
)

// PtrTo returns a pointer type to t.
func PtrTo(t *Type) *Type { return &Type{Kind: TPtr, Elem: t} }

// ArrayOf returns an array type.
func ArrayOf(t *Type, n int) *Type { return &Type{Kind: TArray, Elem: t, Len: n} }

// Size returns the size of t in bytes (0 for void, functions and
// incomplete structs).
func (t *Type) Size() int {
	switch t.Kind {
	case TChar, TUChar:
		return 1
	case TShort, TUShort:
		return 2
	case TInt, TUInt, TFloat, TPtr:
		return 4
	case TDouble:
		return 8
	case TArray:
		return t.Elem.Size() * t.Len
	case TStruct:
		if !t.Done {
			return 0
		}
		size := 0
		align := t.Align()
		if len(t.Fields) > 0 {
			last := t.Fields[len(t.Fields)-1]
			size = last.Offset + last.Type.Size()
		}
		if align > 0 {
			size = (size + align - 1) &^ (align - 1)
		}
		return size
	}
	return 0
}

// Align returns the alignment of t in bytes.
func (t *Type) Align() int {
	switch t.Kind {
	case TChar, TUChar:
		return 1
	case TShort, TUShort:
		return 2
	case TInt, TUInt, TFloat, TPtr:
		return 4
	case TDouble:
		return 8
	case TArray:
		return t.Elem.Align()
	case TStruct:
		a := 1
		for _, f := range t.Fields {
			if fa := f.Type.Align(); fa > a {
				a = fa
			}
		}
		return a
	}
	return 1
}

// Layout assigns field offsets for a completed struct.
func (t *Type) Layout() {
	off := 0
	for i := range t.Fields {
		a := t.Fields[i].Type.Align()
		off = (off + a - 1) &^ (a - 1)
		t.Fields[i].Offset = off
		off += t.Fields[i].Type.Size()
	}
	t.Done = true
}

// Field returns the named field, or nil.
func (t *Type) Field(name string) *Field {
	for i := range t.Fields {
		if t.Fields[i].Name == name {
			return &t.Fields[i]
		}
	}
	return nil
}

// IsInteger reports whether t is an integer type.
func (t *Type) IsInteger() bool {
	switch t.Kind {
	case TChar, TUChar, TShort, TUShort, TInt, TUInt:
		return true
	}
	return false
}

// IsUnsigned reports whether t is an unsigned integer type (pointers
// compare unsigned but are not included here).
func (t *Type) IsUnsigned() bool {
	switch t.Kind {
	case TUChar, TUShort, TUInt:
		return true
	}
	return false
}

// IsFloat reports whether t is float or double.
func (t *Type) IsFloat() bool { return t.Kind == TFloat || t.Kind == TDouble }

// IsArith reports whether t is arithmetic.
func (t *Type) IsArith() bool { return t.IsInteger() || t.IsFloat() }

// IsScalar reports whether t is arithmetic or a pointer.
func (t *Type) IsScalar() bool { return t.IsArith() || t.Kind == TPtr }

// Same reports structural type equality.
func Same(a, b *Type) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil || a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case TPtr:
		return Same(a.Elem, b.Elem)
	case TArray:
		return a.Len == b.Len && Same(a.Elem, b.Elem)
	case TStruct:
		return a.Tag != "" && a.Tag == b.Tag || a == b
	case TFunc:
		if !Same(a.Ret, b.Ret) || len(a.Params) != len(b.Params) {
			return false
		}
		for i := range a.Params {
			if !Same(a.Params[i], b.Params[i]) {
				return false
			}
		}
		return true
	}
	return true
}

func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	switch t.Kind {
	case TVoid:
		return "void"
	case TChar:
		return "char"
	case TUChar:
		return "unsigned char"
	case TShort:
		return "short"
	case TUShort:
		return "unsigned short"
	case TInt:
		return "int"
	case TUInt:
		return "unsigned int"
	case TFloat:
		return "float"
	case TDouble:
		return "double"
	case TPtr:
		return t.Elem.String() + "*"
	case TArray:
		return fmt.Sprintf("%s[%d]", t.Elem, t.Len)
	case TStruct:
		if t.Tag != "" {
			return "struct " + t.Tag
		}
		return "struct {...}"
	case TFunc:
		var ps []string
		for _, p := range t.Params {
			ps = append(ps, p.String())
		}
		return fmt.Sprintf("%s(%s)", t.Ret, strings.Join(ps, ", "))
	}
	return "?"
}
