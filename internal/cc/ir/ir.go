// Package ir defines the OmniC compiler's intermediate representation:
// a typed three-address form over virtual registers, organized into
// basic blocks with explicit control-flow edges. Compare-and-branch is
// a single instruction, mirroring OmniVM (§3.4), and memory operands
// carry symbol+offset so full 32-bit address immediates survive to code
// generation.
package ir

import (
	"fmt"
	"strings"
)

// Class is a value class.
type Class uint8

const (
	ClassW Class = iota // 32-bit integer or pointer
	ClassF              // IEEE single
	ClassD              // IEEE double
)

func (c Class) String() string {
	switch c {
	case ClassW:
		return "w"
	case ClassF:
		return "f"
	default:
		return "d"
	}
}

// IsFP reports whether the class lives in the FP register file.
func (c Class) IsFP() bool { return c != ClassW }

// VReg is a virtual register id; NoReg means absent.
type VReg int32

// NoReg marks an unused register operand.
const NoReg VReg = -1

// Op enumerates IR operations.
type Op uint8

const (
	Nop Op = iota

	Const // Dst = Imm (ClassW) or FImm (ClassF/D)
	Copy  // Dst = A

	// Integer ALU, register-register.
	Add
	Sub
	Mul
	Div
	DivU
	Rem
	RemU
	And
	Or
	Xor
	Shl
	Shr // logical
	Sra // arithmetic
	Neg

	// Integer ALU, register-immediate.
	AddI
	MulI
	AndI
	OrI
	XorI
	ShlI
	ShrI
	SraI

	// Comparisons producing 0/1.
	Set  // Dst = A cc B (operand class in Class)
	SetI // Dst = A cc Imm (integer only)

	// Floating point (Class F or D).
	FAdd
	FSub
	FMul
	FDiv
	FNeg

	Cvt // Dst = convert(A), kind in CvtKind

	Load  // Dst = mem[addr]; addr = A + Sym + Slot + Imm (see AddrOf)
	Store // mem[addr] = B
	Addr  // Dst = addr (materialize an address)

	Call    // call Sym (direct) or A (indirect), Args, optional Dst
	Syscall // host call Imm, Args, optional Dst

	// Terminators.
	Ret // return optional A
	Br  // if A cc B then Then else Else
	BrI // if A cc Imm then Then else Else
	Jmp // goto Then
)

var opNames = [...]string{
	Nop: "nop", Const: "const", Copy: "copy",
	Add: "add", Sub: "sub", Mul: "mul", Div: "div", DivU: "divu",
	Rem: "rem", RemU: "remu", And: "and", Or: "or", Xor: "xor",
	Shl: "shl", Shr: "shr", Sra: "sra", Neg: "neg",
	AddI: "addi", MulI: "muli", AndI: "andi", OrI: "ori", XorI: "xori",
	ShlI: "shli", ShrI: "shri", SraI: "srai",
	Set: "set", SetI: "seti",
	FAdd: "fadd", FSub: "fsub", FMul: "fmul", FDiv: "fdiv", FNeg: "fneg",
	Cvt: "cvt", Load: "load", Store: "store", Addr: "addr",
	Call: "call", Syscall: "syscall",
	Ret: "ret", Br: "br", BrI: "bri", Jmp: "jmp",
}

func (o Op) String() string { return opNames[o] }

// IsTerm reports whether o terminates a block.
func (o Op) IsTerm() bool { return o == Ret || o == Br || o == BrI || o == Jmp }

// CC is a comparison condition.
type CC uint8

const (
	CCEq CC = iota
	CCNe
	CCLt
	CCLe
	CCGt
	CCGe
	CCLtU
	CCLeU
	CCGtU
	CCGeU
)

var ccNames = [...]string{"eq", "ne", "lt", "le", "gt", "ge", "ltu", "leu", "gtu", "geu"}

func (c CC) String() string { return ccNames[c] }

// Invert returns the negated condition.
func (c CC) Invert() CC {
	switch c {
	case CCEq:
		return CCNe
	case CCNe:
		return CCEq
	case CCLt:
		return CCGe
	case CCLe:
		return CCGt
	case CCGt:
		return CCLe
	case CCGe:
		return CCLt
	case CCLtU:
		return CCGeU
	case CCLeU:
		return CCGtU
	case CCGtU:
		return CCLeU
	default:
		return CCLtU
	}
}

// Swap returns the condition with operands exchanged.
func (c CC) Swap() CC {
	switch c {
	case CCLt:
		return CCGt
	case CCLe:
		return CCGe
	case CCGt:
		return CCLt
	case CCGe:
		return CCLe
	case CCLtU:
		return CCGtU
	case CCLeU:
		return CCGeU
	case CCGtU:
		return CCLtU
	case CCGeU:
		return CCLeU
	}
	return c
}

// MemOp describes a memory access width and extension.
type MemOp uint8

const (
	MemB MemOp = iota // signed byte
	MemBU
	MemH // signed halfword
	MemHU
	MemW
	MemF // single
	MemD // double
)

var memNames = [...]string{"b", "bu", "h", "hu", "w", "f", "d"}

func (m MemOp) String() string { return memNames[m] }

// Size returns the access width in bytes.
func (m MemOp) Size() int {
	switch m {
	case MemB, MemBU:
		return 1
	case MemH, MemHU:
		return 2
	case MemD:
		return 8
	default:
		return 4
	}
}

// Class returns the value class loaded/stored.
func (m MemOp) Class() Class {
	switch m {
	case MemF:
		return ClassF
	case MemD:
		return ClassD
	default:
		return ClassW
	}
}

// CvtKind enumerates conversions.
type CvtKind uint8

const (
	CvtWtoD CvtKind = iota // signed int -> double
	CvtWtoF
	CvtDtoW // double -> int (truncate)
	CvtFtoW
	CvtDtoF
	CvtFtoD
	CvtUtoD // unsigned int -> double (via 64-bit intermediate)
	CvtDtoU
)

var cvtNames = [...]string{"w2d", "w2f", "d2w", "f2w", "d2f", "f2d", "u2d", "d2u"}

func (k CvtKind) String() string { return cvtNames[k] }

// NoSlot marks an instruction with no stack-slot operand.
const NoSlot = -1

// Inst is one IR instruction. Which fields are meaningful depends on Op.
type Inst struct {
	Op     Op
	Class  Class // result class; for Set/Br: operand class
	Dst    VReg
	A, B   VReg
	Imm    int64   // integer immediate / syscall number
	FImm   float64 // Const F/D
	Sym    string  // global symbol (Load/Store/Addr/Call)
	Slot   int     // stack slot (Load/Store/Addr), NoSlot if none
	CC     CC
	Mem    MemOp
	Cvt    CvtKind
	HasIdx bool // indexed addressing mem[A + Idx] (set by the fusion pass)
	Idx    VReg
	Args   []VReg
	ACls   []Class
	Then   int // target block id
	Else   int
	Line   int32 // source line, for debug output
}

// Uses appends the vregs read by the instruction.
func (in *Inst) Uses(dst []VReg) []VReg {
	if in.A != NoReg {
		dst = append(dst, in.A)
	}
	if in.B != NoReg {
		dst = append(dst, in.B)
	}
	if in.HasIdx {
		dst = append(dst, in.Idx)
	}
	for _, a := range in.Args {
		dst = append(dst, a)
	}
	return dst
}

// HasDst reports whether the instruction defines Dst.
func (in *Inst) HasDst() bool { return in.Dst != NoReg }

// Pure reports whether the instruction has no side effects and can be
// removed if its result is unused (loads are impure: a module may read
// a protected page deliberately to trigger an exception).
func (in *Inst) Pure() bool {
	switch in.Op {
	case Const, Copy, Add, Sub, Mul, And, Or, Xor, Shl, Shr, Sra, Neg,
		AddI, MulI, AndI, OrI, XorI, ShlI, ShrI, SraI,
		Set, SetI, FAdd, FSub, FMul, FNeg, Cvt, Addr:
		return true
	case Div, DivU, Rem, RemU, FDiv:
		// Integer division can trap; float division cannot but keep it
		// symmetric and conservative only for the integer forms.
		return in.Op == FDiv
	}
	return false
}

// Block is a basic block.
type Block struct {
	ID    int
	Insts []Inst
	// Preds/Succs are recomputed by Func.Renumber.
	Preds, Succs []int
}

// Term returns the terminator (last instruction), or nil.
func (b *Block) Term() *Inst {
	if len(b.Insts) == 0 {
		return nil
	}
	t := &b.Insts[len(b.Insts)-1]
	if !t.Op.IsTerm() {
		return nil
	}
	return t
}

// SlotInfo describes one stack slot.
type SlotInfo struct {
	Name  string
	Size  int
	Align int
}

// Func is an IR function.
type Func struct {
	Name     string
	Blocks   []*Block
	NVReg    int
	VClass   []Class // class per vreg
	Slots    []SlotInfo
	Params   []VReg  // parameter vregs in order
	PClasses []Class // parameter classes
	RetClass Class
	HasRet   bool // returns a value
}

// NewVReg allocates a virtual register of class c.
func (f *Func) NewVReg(c Class) VReg {
	v := VReg(f.NVReg)
	f.NVReg++
	f.VClass = append(f.VClass, c)
	return v
}

// NewSlot allocates a stack slot.
func (f *Func) NewSlot(name string, size, align int) int {
	f.Slots = append(f.Slots, SlotInfo{Name: name, Size: size, Align: align})
	return len(f.Slots) - 1
}

// NewBlock appends a new empty block.
func (f *Func) NewBlock() *Block {
	b := &Block{ID: len(f.Blocks)}
	f.Blocks = append(f.Blocks, b)
	return b
}

// Recompute rebuilds predecessor/successor lists.
func (f *Func) Recompute() {
	for _, b := range f.Blocks {
		b.Preds = b.Preds[:0]
		b.Succs = b.Succs[:0]
	}
	for _, b := range f.Blocks {
		t := b.Term()
		if t == nil {
			continue
		}
		add := func(id int) {
			b.Succs = append(b.Succs, id)
			f.Blocks[id].Preds = append(f.Blocks[id].Preds, b.ID)
		}
		switch t.Op {
		case Jmp:
			add(t.Then)
		case Br, BrI:
			add(t.Then)
			if t.Else != t.Then {
				add(t.Else)
			}
		}
	}
}

// String renders the function for debugging and golden tests.
func (f *Func) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s(", f.Name)
	for i, p := range f.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "v%d:%s", p, f.PClasses[i])
	}
	b.WriteString(")\n")
	for _, blk := range f.Blocks {
		fmt.Fprintf(&b, "b%d:\n", blk.ID)
		for i := range blk.Insts {
			fmt.Fprintf(&b, "\t%s\n", instString(&blk.Insts[i]))
		}
	}
	return b.String()
}

func instString(in *Inst) string {
	var b strings.Builder
	if in.HasDst() {
		fmt.Fprintf(&b, "v%d = ", in.Dst)
	}
	fmt.Fprintf(&b, "%s.%s", in.Op, in.Class)
	switch in.Op {
	case Const:
		if in.Class == ClassW {
			fmt.Fprintf(&b, " %d", in.Imm)
		} else {
			fmt.Fprintf(&b, " %g", in.FImm)
		}
	case Load, Store, Addr:
		fmt.Fprintf(&b, ".%s [", in.Mem)
		sep := ""
		if in.A != NoReg {
			fmt.Fprintf(&b, "v%d", in.A)
			sep = "+"
		}
		if in.Sym != "" {
			fmt.Fprintf(&b, "%s%s", sep, in.Sym)
			sep = "+"
		}
		if in.Slot != NoSlot {
			fmt.Fprintf(&b, "%sslot%d", sep, in.Slot)
			sep = "+"
		}
		if in.Imm != 0 || sep == "" {
			fmt.Fprintf(&b, "%s%d", sep, in.Imm)
		}
		b.WriteString("]")
		if in.Op == Store {
			fmt.Fprintf(&b, " v%d", in.B)
		}
	case Set, Br:
		fmt.Fprintf(&b, " v%d %s v%d", in.A, in.CC, in.B)
		if in.Op == Br {
			fmt.Fprintf(&b, " -> b%d b%d", in.Then, in.Else)
		}
	case SetI, BrI:
		fmt.Fprintf(&b, " v%d %s %d", in.A, in.CC, in.Imm)
		if in.Op == BrI {
			fmt.Fprintf(&b, " -> b%d b%d", in.Then, in.Else)
		}
	case Jmp:
		fmt.Fprintf(&b, " -> b%d", in.Then)
	case Call:
		if in.Sym != "" {
			fmt.Fprintf(&b, " %s", in.Sym)
		} else {
			fmt.Fprintf(&b, " *v%d", in.A)
		}
		b.WriteString("(")
		for i, a := range in.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "v%d", a)
		}
		b.WriteString(")")
	case Syscall:
		fmt.Fprintf(&b, " %d(", in.Imm)
		for i, a := range in.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "v%d", a)
		}
		b.WriteString(")")
	case Cvt:
		fmt.Fprintf(&b, ".%s v%d", in.Cvt, in.A)
	case Ret:
		if in.A != NoReg {
			fmt.Fprintf(&b, " v%d", in.A)
		}
	default:
		if in.A != NoReg {
			fmt.Fprintf(&b, " v%d", in.A)
		}
		if in.B != NoReg {
			fmt.Fprintf(&b, ", v%d", in.B)
		}
		switch in.Op {
		case AddI, MulI, AndI, OrI, XorI, ShlI, ShrI, SraI:
			fmt.Fprintf(&b, ", %d", in.Imm)
		}
	}
	return b.String()
}
