package ir

import (
	"fmt"

	"omniware/internal/cc/ast"
	"omniware/internal/cc/token"
)

// BuildError is an IR construction diagnostic (internal errors or
// constructs sem lets through that the builder rejects structurally,
// like break outside a loop).
type BuildError struct {
	Pos token.Pos
	Msg string
}

func (e *BuildError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// BuildFunc lowers one checked function to IR.
func BuildFunc(fd *ast.FuncDecl) (f *Func, err error) {
	defer func() {
		if r := recover(); r != nil {
			if be, ok := r.(*BuildError); ok {
				f, err = nil, be
				return
			}
			panic(r)
		}
	}()
	b := &builder{
		astFn:     fd,
		localVReg: map[int]VReg{},
		localSlot: map[int]int{},
		labels:    map[string]*Block{},
	}
	b.fn = &Func{Name: fd.Name}
	if fd.Ty.Ret.Kind != ast.TVoid {
		b.fn.HasRet = true
		b.fn.RetClass = classOf(fd.Ty.Ret)
	}
	b.cur = b.fn.NewBlock()

	// Parameters: scalars that never escape live in vregs; the rest get
	// slots with an entry-time store.
	for i, l := range fd.Locals {
		if !l.IsParam {
			continue
		}
		cls := classOf(l.Ty)
		v := b.fn.NewVReg(cls)
		b.fn.Params = append(b.fn.Params, v)
		b.fn.PClasses = append(b.fn.PClasses, cls)
		if l.AddrTaken || !isVRegType(l.Ty) {
			slot := b.fn.NewSlot(l.Name, max(l.Ty.Size(), 4), max(l.Ty.Align(), 4))
			b.localSlot[i] = slot
			b.emit(Inst{Op: Store, Class: cls, Mem: memOf(l.Ty), Slot: slot, A: NoReg, B: v, Dst: NoReg})
		} else {
			b.localVReg[i] = v
		}
	}

	b.stmt(fd.Body)
	// Fall-off-the-end: synthesize a return.
	if b.cur != nil && b.cur.Term() == nil {
		if b.fn.HasRet {
			z := b.newTmp(b.fn.RetClass)
			b.emit(Inst{Op: Const, Class: b.fn.RetClass, Dst: z, A: NoReg, B: NoReg, Slot: NoSlot})
			b.emit(Inst{Op: Ret, Class: b.fn.RetClass, A: z, Dst: NoReg, B: NoReg, Slot: NoSlot})
		} else {
			b.emit(Inst{Op: Ret, A: NoReg, Dst: NoReg, B: NoReg, Slot: NoSlot})
		}
	}
	b.fn.Recompute()
	return b.fn, nil
}

type loopCtx struct {
	brk, cont int
}

type builder struct {
	fn    *Func
	cur   *Block // nil after a terminator until a new block starts
	astFn *ast.FuncDecl

	localVReg map[int]VReg
	localSlot map[int]int
	loops     []loopCtx
	labels    map[string]*Block

	switchDepth int
}

func (b *builder) fail(pos token.Pos, format string, args ...any) {
	panic(&BuildError{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func classOf(t *ast.Type) Class {
	switch t.Kind {
	case ast.TFloat:
		return ClassF
	case ast.TDouble:
		return ClassD
	default:
		return ClassW
	}
}

func memOf(t *ast.Type) MemOp {
	switch t.Kind {
	case ast.TChar:
		return MemB
	case ast.TUChar:
		return MemBU
	case ast.TShort:
		return MemH
	case ast.TUShort:
		return MemHU
	case ast.TFloat:
		return MemF
	case ast.TDouble:
		return MemD
	default:
		return MemW
	}
}

// isVRegType reports whether a local of type t can live in a register.
func isVRegType(t *ast.Type) bool { return t.IsScalar() }

func (b *builder) emit(in Inst) *Inst {
	if in.Slot == 0 && in.Op != Load && in.Op != Store && in.Op != Addr {
		in.Slot = NoSlot
	}
	if b.cur == nil {
		// Unreachable code after a terminator: drop it into a fresh
		// block so builds stay well formed; cleanup removes it.
		b.cur = b.fn.NewBlock()
	}
	b.cur.Insts = append(b.cur.Insts, in)
	if in.Op.IsTerm() {
		b.cur = nil
	}
	if b.cur == nil {
		return nil
	}
	return &b.cur.Insts[len(b.cur.Insts)-1]
}

func (b *builder) newTmp(c Class) VReg { return b.fn.NewVReg(c) }

// start begins (or continues into) the given block.
func (b *builder) start(blk *Block) {
	if b.cur != nil && b.cur.Term() == nil {
		b.emit(Inst{Op: Jmp, Then: blk.ID, Dst: NoReg, A: NoReg, B: NoReg, Slot: NoSlot})
	}
	b.cur = blk
}

// jumpTo emits a jump to blk if the current block is open.
func (b *builder) jumpTo(blk *Block) {
	if b.cur != nil && b.cur.Term() == nil {
		b.emit(Inst{Op: Jmp, Then: blk.ID, Dst: NoReg, A: NoReg, B: NoReg, Slot: NoSlot})
	}
	b.cur = nil
}

func (b *builder) constW(v int64) VReg {
	t := b.newTmp(ClassW)
	b.emit(Inst{Op: Const, Class: ClassW, Dst: t, Imm: int64(int32(v)), A: NoReg, B: NoReg, Slot: NoSlot})
	return t
}

// ---- statements ----

func (b *builder) stmt(s ast.Stmt) {
	switch n := s.(type) {
	case *ast.Block:
		for _, x := range n.List {
			b.stmt(x)
		}
	case *ast.ExprStmt:
		b.expr(n.X)
	case *ast.DeclStmt:
		for _, d := range n.Decls {
			b.localDecl(d)
		}
	case *ast.If:
		thenB := b.fn.NewBlock()
		var elseB *Block
		joinB := b.fn.NewBlock()
		if n.Else != nil {
			elseB = b.fn.NewBlock()
			b.cond(n.Cond, thenB.ID, elseB.ID)
		} else {
			b.cond(n.Cond, thenB.ID, joinB.ID)
		}
		b.cur = thenB
		b.stmt(n.Then)
		b.jumpTo(joinB)
		if n.Else != nil {
			b.cur = elseB
			b.stmt(n.Else)
			b.jumpTo(joinB)
		}
		b.cur = joinB
	case *ast.While:
		head := b.fn.NewBlock()
		body := b.fn.NewBlock()
		exit := b.fn.NewBlock()
		b.start(head)
		b.cond(n.Cond, body.ID, exit.ID)
		b.cur = body
		b.loops = append(b.loops, loopCtx{brk: exit.ID, cont: head.ID})
		b.stmt(n.Body)
		b.loops = b.loops[:len(b.loops)-1]
		b.jumpTo(head)
		b.cur = exit
	case *ast.DoWhile:
		body := b.fn.NewBlock()
		check := b.fn.NewBlock()
		exit := b.fn.NewBlock()
		b.start(body)
		b.loops = append(b.loops, loopCtx{brk: exit.ID, cont: check.ID})
		b.stmt(n.Body)
		b.loops = b.loops[:len(b.loops)-1]
		b.start(check)
		b.cond(n.Cond, body.ID, exit.ID)
		b.cur = exit
	case *ast.For:
		if n.Init != nil {
			b.stmt(n.Init)
		}
		head := b.fn.NewBlock()
		body := b.fn.NewBlock()
		post := b.fn.NewBlock()
		exit := b.fn.NewBlock()
		b.start(head)
		if n.Cond != nil {
			b.cond(n.Cond, body.ID, exit.ID)
		} else {
			b.jumpTo(body)
		}
		b.cur = body
		b.loops = append(b.loops, loopCtx{brk: exit.ID, cont: post.ID})
		b.stmt(n.Body)
		b.loops = b.loops[:len(b.loops)-1]
		b.start(post)
		if n.Post != nil {
			b.expr(n.Post)
		}
		b.jumpTo(head)
		b.cur = exit
	case *ast.Switch:
		b.switchStmt(n)
	case *ast.Break:
		if len(b.loops) == 0 {
			b.fail(n.Pos(), "break outside loop or switch")
		}
		b.emit(Inst{Op: Jmp, Then: b.loops[len(b.loops)-1].brk, Dst: NoReg, A: NoReg, B: NoReg, Slot: NoSlot})
	case *ast.Continue:
		// continue skips switch contexts.
		for i := len(b.loops) - 1; i >= 0; i-- {
			if b.loops[i].cont >= 0 {
				b.emit(Inst{Op: Jmp, Then: b.loops[i].cont, Dst: NoReg, A: NoReg, B: NoReg, Slot: NoSlot})
				return
			}
		}
		b.fail(n.Pos(), "continue outside loop")
	case *ast.Return:
		if n.X == nil {
			b.emit(Inst{Op: Ret, A: NoReg, Dst: NoReg, B: NoReg, Slot: NoSlot})
			return
		}
		v, cls := b.expr(n.X)
		b.emit(Inst{Op: Ret, Class: cls, A: v, Dst: NoReg, B: NoReg, Slot: NoSlot})
	case *ast.Goto:
		b.emit(Inst{Op: Jmp, Then: b.labelBlock(n.Name).ID, Dst: NoReg, A: NoReg, B: NoReg, Slot: NoSlot})
	case *ast.Label:
		blk := b.labelBlock(n.Name)
		b.start(blk)
		b.stmt(n.Stmt)
	case *ast.Case:
		b.fail(n.Pos(), "case label outside switch")
	default:
		b.fail(s.Pos(), "unsupported statement %T", s)
	}
}

func (b *builder) labelBlock(name string) *Block {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.fn.NewBlock()
	b.labels[name] = blk
	return blk
}

func (b *builder) localDecl(d *ast.LocalDecl) {
	l := b.astFn.Locals[d.LocalID]
	if l.AddrTaken || !isVRegType(l.Ty) {
		slot, ok := b.localSlot[d.LocalID]
		if !ok {
			slot = b.fn.NewSlot(l.Name, max(l.Ty.Size(), 4), max(l.Ty.Align(), 4))
			b.localSlot[d.LocalID] = slot
		}
		if d.Init != nil {
			if s, ok := d.Init.(*ast.StrLit); ok && l.Ty.Kind == ast.TArray {
				// char a[] = "str": copy bytes including NUL.
				for i := 0; i <= len(s.Val); i++ {
					var ch int64
					if i < len(s.Val) {
						ch = int64(s.Val[i])
					}
					cv := b.constW(ch)
					b.emit(Inst{Op: Store, Class: ClassW, Mem: MemB, Slot: slot, Imm: int64(i), A: NoReg, B: cv, Dst: NoReg})
				}
				return
			}
			v, _ := b.expr(d.Init)
			b.emit(Inst{Op: Store, Class: classOf(l.Ty), Mem: memOf(l.Ty), Slot: slot, A: NoReg, B: v, Dst: NoReg})
			return
		}
		if len(d.ArrInit) > 0 {
			b.initAggregate(slot, l.Ty, d.ArrInit)
		}
		return
	}
	// Register-resident scalar.
	v, ok := b.localVReg[d.LocalID]
	if !ok {
		v = b.fn.NewVReg(classOf(l.Ty))
		b.localVReg[d.LocalID] = v
	}
	if d.Init != nil {
		rv, _ := b.expr(d.Init)
		rv = b.truncateFor(rv, l.Ty)
		b.emit(Inst{Op: Copy, Class: classOf(l.Ty), Dst: v, A: rv, B: NoReg, Slot: NoSlot})
	}
}

// initAggregate stores flattened initializer elements into slot.
func (b *builder) initAggregate(slot int, t *ast.Type, elems []ast.Expr) {
	// Determine element layout positions by walking the type.
	type fieldPos struct {
		off int
		ty  *ast.Type
	}
	var flat []fieldPos
	var walk func(off int, ty *ast.Type)
	walk = func(off int, ty *ast.Type) {
		switch ty.Kind {
		case ast.TArray:
			esz := ty.Elem.Size()
			for i := 0; i < ty.Len; i++ {
				walk(off+i*esz, ty.Elem)
			}
		case ast.TStruct:
			for _, f := range ty.Fields {
				walk(off+f.Offset, f.Type)
			}
		default:
			flat = append(flat, fieldPos{off, ty})
		}
	}
	walk(0, t)
	for i, e := range elems {
		if i >= len(flat) {
			b.fail(e.Pos(), "too many initializers")
		}
		v, _ := b.expr(e)
		fp := flat[i]
		b.emit(Inst{Op: Store, Class: classOf(fp.ty), Mem: memOf(fp.ty), Slot: slot, Imm: int64(fp.off), A: NoReg, B: v, Dst: NoReg})
	}
}

func (b *builder) switchStmt(n *ast.Switch) {
	tag, _ := b.expr(n.Tag)
	body, ok := n.Body.(*ast.Block)
	if !ok {
		b.fail(n.Pos(), "switch body must be a block")
	}
	exit := b.fn.NewBlock()

	// Collect case labels and create a block for each.
	type caseEnt struct {
		val   int64
		blk   *Block
		isDef bool
	}
	var cases []caseEnt
	caseBlocks := map[int]*Block{} // index in body.List -> block
	for i, s := range body.List {
		if c, ok := s.(*ast.Case); ok {
			blk := b.fn.NewBlock()
			caseBlocks[i] = blk
			cases = append(cases, caseEnt{val: c.Int, blk: blk, isDef: c.Val == nil})
		}
	}
	// Dispatch chain.
	defTarget := exit.ID
	for _, c := range cases {
		if c.isDef {
			defTarget = c.blk.ID
		}
	}
	for _, c := range cases {
		if c.isDef {
			continue
		}
		nextTest := b.fn.NewBlock()
		b.emit(Inst{Op: BrI, Class: ClassW, A: tag, CC: CCEq, Imm: c.val, Then: c.blk.ID, Else: nextTest.ID, Dst: NoReg, B: NoReg, Slot: NoSlot})
		b.cur = nextTest
	}
	b.jumpTo(b.fn.Blocks[defTarget])

	// Body with fallthrough.
	b.loops = append(b.loops, loopCtx{brk: exit.ID, cont: -1})
	b.cur = nil
	for i, s := range body.List {
		if blk, ok := caseBlocks[i]; ok {
			b.start(blk)
			continue
		}
		if b.cur == nil {
			// Statements before any case label are unreachable.
			b.cur = b.fn.NewBlock()
		}
		b.stmt(s)
	}
	b.loops = b.loops[:len(b.loops)-1]
	b.jumpTo(exit)
	b.cur = exit
}
