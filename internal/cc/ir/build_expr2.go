package ir

import (
	"omniware/internal/cc/ast"
	"omniware/internal/cc/token"
)

// ccOf maps a comparison token to a condition code, using unsigned
// codes when the operand type is unsigned or a pointer.
func ccOf(op token.Kind, t *ast.Type) CC {
	uns := t.IsUnsigned() || t.Kind == ast.TPtr
	switch op {
	case token.EqEq:
		return CCEq
	case token.NotEq:
		return CCNe
	case token.Lt:
		if uns {
			return CCLtU
		}
		return CCLt
	case token.Le:
		if uns {
			return CCLeU
		}
		return CCLe
	case token.Gt:
		if uns {
			return CCGtU
		}
		return CCGt
	default:
		if uns {
			return CCGeU
		}
		return CCGe
	}
}

func isCmp(op token.Kind) bool {
	switch op {
	case token.EqEq, token.NotEq, token.Lt, token.Le, token.Gt, token.Ge:
		return true
	}
	return false
}

// cond emits control flow for a boolean expression.
func (b *builder) cond(e ast.Expr, tID, fID int) {
	switch n := e.(type) {
	case *ast.IntLit:
		if n.Val != 0 {
			b.emit(Inst{Op: Jmp, Then: tID, Dst: NoReg, A: NoReg, B: NoReg, Slot: NoSlot})
		} else {
			b.emit(Inst{Op: Jmp, Then: fID, Dst: NoReg, A: NoReg, B: NoReg, Slot: NoSlot})
		}
		return
	case *ast.Unary:
		if n.Op == token.Not {
			b.cond(n.X, fID, tID)
			return
		}
	case *ast.Binary:
		switch n.Op {
		case token.AndAnd:
			mid := b.fn.NewBlock()
			b.cond(n.X, mid.ID, fID)
			b.cur = mid
			b.cond(n.Y, tID, fID)
			return
		case token.OrOr:
			mid := b.fn.NewBlock()
			b.cond(n.X, tID, mid.ID)
			b.cur = mid
			b.cond(n.Y, tID, fID)
			return
		}
		if isCmp(n.Op) {
			opT := n.X.Type()
			cc := ccOf(n.Op, opT)
			cls := classOf(opT)
			xv, _ := b.expr(n.X)
			if cls == ClassW {
				if imm, ok := constIntExpr(n.Y); ok {
					b.emit(Inst{Op: BrI, Class: cls, A: xv, CC: cc, Imm: int64(int32(imm)), Then: tID, Else: fID, Dst: NoReg, B: NoReg, Slot: NoSlot})
					return
				}
			}
			yv, _ := b.expr(n.Y)
			b.emit(Inst{Op: Br, Class: cls, A: xv, B: yv, CC: cc, Then: tID, Else: fID, Dst: NoReg, Slot: NoSlot})
			return
		}
	}
	// Generic scalar: compare against zero.
	v, cls := b.expr(e)
	if cls == ClassW {
		b.emit(Inst{Op: BrI, Class: ClassW, A: v, CC: CCNe, Imm: 0, Then: tID, Else: fID, Dst: NoReg, B: NoReg, Slot: NoSlot})
		return
	}
	z := b.newTmp(cls)
	b.emit(Inst{Op: Const, Class: cls, Dst: z, FImm: 0, A: NoReg, B: NoReg, Slot: NoSlot})
	b.emit(Inst{Op: Br, Class: cls, A: v, B: z, CC: CCNe, Then: tID, Else: fID, Dst: NoReg, Slot: NoSlot})
}

var binOpW = map[token.Kind]Op{
	token.Plus: Add, token.Minus: Sub, token.Star: Mul,
	token.Amp: And, token.Pipe: Or, token.Caret: Xor,
	token.Shl: Shl,
}

var binOpImmW = map[token.Kind]Op{
	token.Plus: AddI, token.Star: MulI,
	token.Amp: AndI, token.Pipe: OrI, token.Caret: XorI,
	token.Shl: ShlI,
}

var binOpF = map[token.Kind]Op{
	token.Plus: FAdd, token.Minus: FSub, token.Star: FMul, token.Slash: FDiv,
}

func (b *builder) binary(n *ast.Binary) (VReg, Class) {
	switch n.Op {
	case token.Comma:
		b.expr(n.X)
		return b.expr(n.Y)
	case token.AndAnd, token.OrOr:
		tmp := b.newTmp(ClassW)
		tB := b.fn.NewBlock()
		fB := b.fn.NewBlock()
		join := b.fn.NewBlock()
		b.cond(n, tB.ID, fB.ID)
		b.cur = tB
		b.emit(Inst{Op: Const, Class: ClassW, Dst: tmp, Imm: 1, A: NoReg, B: NoReg, Slot: NoSlot})
		b.jumpTo(join)
		b.cur = fB
		b.emit(Inst{Op: Const, Class: ClassW, Dst: tmp, Imm: 0, A: NoReg, B: NoReg, Slot: NoSlot})
		b.jumpTo(join)
		b.cur = join
		return tmp, ClassW
	}

	if isCmp(n.Op) {
		opT := n.X.Type()
		cc := ccOf(n.Op, opT)
		cls := classOf(opT)
		xv, _ := b.expr(n.X)
		dst := b.newTmp(ClassW)
		if cls == ClassW {
			if imm, ok := constIntExpr(n.Y); ok {
				b.emit(Inst{Op: SetI, Class: cls, Dst: dst, A: xv, CC: cc, Imm: int64(int32(imm)), B: NoReg, Slot: NoSlot})
				return dst, ClassW
			}
		}
		yv, _ := b.expr(n.Y)
		b.emit(Inst{Op: Set, Class: cls, Dst: dst, A: xv, B: yv, CC: cc, Slot: NoSlot})
		return dst, ClassW
	}

	tx, ty := n.X.Type(), n.Y.Type()

	// Pointer arithmetic.
	if tx.Kind == ast.TPtr && n.Op == token.Plus {
		base, _ := b.expr(n.X)
		size := int64(tx.Elem.Size())
		if imm, ok := constIntExpr(n.Y); ok {
			dst := b.newTmp(ClassW)
			b.emit(Inst{Op: AddI, Class: ClassW, Dst: dst, A: base, Imm: imm * size, B: NoReg, Slot: NoSlot})
			return dst, ClassW
		}
		iv, _ := b.expr(n.Y)
		scaled := b.scale(iv, size)
		dst := b.newTmp(ClassW)
		b.emit(Inst{Op: Add, Class: ClassW, Dst: dst, A: base, B: scaled, Slot: NoSlot})
		return dst, ClassW
	}
	if tx.Kind == ast.TPtr && n.Op == token.Minus {
		if ty.Kind == ast.TPtr {
			xv, _ := b.expr(n.X)
			yv, _ := b.expr(n.Y)
			diff := b.newTmp(ClassW)
			b.emit(Inst{Op: Sub, Class: ClassW, Dst: diff, A: xv, B: yv, Slot: NoSlot})
			size := int64(tx.Elem.Size())
			if size == 1 {
				return diff, ClassW
			}
			dst := b.newTmp(ClassW)
			if sh := log2(size); sh >= 0 {
				b.emit(Inst{Op: SraI, Class: ClassW, Dst: dst, A: diff, Imm: int64(sh), B: NoReg, Slot: NoSlot})
			} else {
				sz := b.constW(size)
				b.emit(Inst{Op: Div, Class: ClassW, Dst: dst, A: diff, B: sz, Slot: NoSlot})
			}
			return dst, ClassW
		}
		base, _ := b.expr(n.X)
		size := int64(tx.Elem.Size())
		if imm, ok := constIntExpr(n.Y); ok {
			dst := b.newTmp(ClassW)
			b.emit(Inst{Op: AddI, Class: ClassW, Dst: dst, A: base, Imm: -imm * size, B: NoReg, Slot: NoSlot})
			return dst, ClassW
		}
		iv, _ := b.expr(n.Y)
		scaled := b.scale(iv, size)
		dst := b.newTmp(ClassW)
		b.emit(Inst{Op: Sub, Class: ClassW, Dst: dst, A: base, B: scaled, Slot: NoSlot})
		return dst, ClassW
	}

	cls := classOf(n.Type())
	if cls != ClassW {
		op, ok := binOpF[n.Op]
		if !ok {
			b.fail(n.Pos(), "invalid FP operator %v", n.Op)
		}
		xv, _ := b.expr(n.X)
		yv, _ := b.expr(n.Y)
		dst := b.newTmp(cls)
		b.emit(Inst{Op: op, Class: cls, Dst: dst, A: xv, B: yv, Slot: NoSlot})
		return dst, cls
	}

	uns := n.Type().IsUnsigned()
	xv, _ := b.expr(n.X)

	// Immediate forms for commutative/shift ops.
	if imm, ok := constIntExpr(n.Y); ok {
		if op, ok2 := binOpImmW[n.Op]; ok2 {
			dst := b.newTmp(ClassW)
			b.emit(Inst{Op: op, Class: ClassW, Dst: dst, A: xv, Imm: int64(int32(imm)), B: NoReg, Slot: NoSlot})
			return dst, ClassW
		}
		switch n.Op {
		case token.Minus:
			dst := b.newTmp(ClassW)
			b.emit(Inst{Op: AddI, Class: ClassW, Dst: dst, A: xv, Imm: int64(int32(-imm)), B: NoReg, Slot: NoSlot})
			return dst, ClassW
		case token.Shr:
			dst := b.newTmp(ClassW)
			op := SraI
			if uns {
				op = ShrI
			}
			b.emit(Inst{Op: op, Class: ClassW, Dst: dst, A: xv, Imm: imm & 31, B: NoReg, Slot: NoSlot})
			return dst, ClassW
		}
	}

	yv, _ := b.expr(n.Y)
	var op Op
	switch n.Op {
	case token.Slash:
		op = Div
		if uns {
			op = DivU
		}
	case token.Percent:
		op = Rem
		if uns {
			op = RemU
		}
	case token.Shr:
		op = Sra
		if uns {
			op = Shr
		}
	default:
		var ok bool
		op, ok = binOpW[n.Op]
		if !ok {
			b.fail(n.Pos(), "unsupported binary operator %v", n.Op)
		}
	}
	dst := b.newTmp(ClassW)
	b.emit(Inst{Op: op, Class: ClassW, Dst: dst, A: xv, B: yv, Slot: NoSlot})
	return dst, ClassW
}

// cvtVal converts a value between C types, emitting Cvt or truncation
// instructions as needed.
func (b *builder) cvtVal(v VReg, from, to *ast.Type) VReg {
	fc, tc := classOf(from), classOf(to)
	switch {
	case fc == ClassW && tc == ClassW:
		// Integer/pointer to integer/pointer: only narrowing matters.
		if to.IsInteger() && to.Size() < 4 {
			return b.truncateFor(v, to)
		}
		return v
	case fc == ClassW && tc == ClassD:
		dst := b.newTmp(ClassD)
		k := CvtWtoD
		if from.IsUnsigned() {
			k = CvtUtoD
		}
		b.emit(Inst{Op: Cvt, Class: ClassD, Cvt: k, Dst: dst, A: v, B: NoReg, Slot: NoSlot})
		return dst
	case fc == ClassW && tc == ClassF:
		if from.IsUnsigned() {
			d := b.newTmp(ClassD)
			b.emit(Inst{Op: Cvt, Class: ClassD, Cvt: CvtUtoD, Dst: d, A: v, B: NoReg, Slot: NoSlot})
			dst := b.newTmp(ClassF)
			b.emit(Inst{Op: Cvt, Class: ClassF, Cvt: CvtDtoF, Dst: dst, A: d, B: NoReg, Slot: NoSlot})
			return dst
		}
		dst := b.newTmp(ClassF)
		b.emit(Inst{Op: Cvt, Class: ClassF, Cvt: CvtWtoF, Dst: dst, A: v, B: NoReg, Slot: NoSlot})
		return dst
	case fc == ClassD && tc == ClassW:
		dst := b.newTmp(ClassW)
		k := CvtDtoW
		if to.IsUnsigned() && to.Size() == 4 {
			k = CvtDtoU
		}
		b.emit(Inst{Op: Cvt, Class: ClassW, Cvt: k, Dst: dst, A: v, B: NoReg, Slot: NoSlot})
		if to.IsInteger() && to.Size() < 4 {
			return b.truncateFor(dst, to)
		}
		return dst
	case fc == ClassF && tc == ClassW:
		dst := b.newTmp(ClassW)
		b.emit(Inst{Op: Cvt, Class: ClassW, Cvt: CvtFtoW, Dst: dst, A: v, B: NoReg, Slot: NoSlot})
		if to.IsInteger() && to.Size() < 4 {
			return b.truncateFor(dst, to)
		}
		return dst
	case fc == ClassF && tc == ClassD:
		dst := b.newTmp(ClassD)
		b.emit(Inst{Op: Cvt, Class: ClassD, Cvt: CvtFtoD, Dst: dst, A: v, B: NoReg, Slot: NoSlot})
		return dst
	case fc == ClassD && tc == ClassF:
		dst := b.newTmp(ClassF)
		b.emit(Inst{Op: Cvt, Class: ClassF, Cvt: CvtDtoF, Dst: dst, A: v, B: NoReg, Slot: NoSlot})
		return dst
	}
	return v
}

func (b *builder) cast(n *ast.Cast) (VReg, Class) {
	v, _ := b.expr(n.X)
	out := b.cvtVal(v, n.X.Type(), n.To)
	return out, classOf(n.To)
}

func (b *builder) assign(n *ast.Assign) (VReg, Class) {
	tx := n.X.Type()

	// Struct assignment: block copy.
	if tx.Kind == ast.TStruct && n.Op == token.Assign {
		dst, _ := b.addr(n.X)
		srcReg, _ := b.expr(n.Y) // struct value = its address
		b.blockCopy(dst, srcReg, tx.Size())
		return b.materialize(dst), ClassW
	}

	if n.Op == token.Assign {
		v, _ := b.expr(n.Y)
		return b.storeLHS(n.X, v), classOf(tx)
	}

	// Compound assignment: x op= y  =>  x = (T)(op(conv(x), conv(y))).
	ty := n.Y.Type()
	var opT *ast.Type
	if tx.Kind == ast.TPtr {
		opT = tx
	} else {
		opT = arithResult(tx, ty)
	}

	// Read old value.
	var old VReg
	var lhsA aref
	var lhsT *ast.Type
	var inReg bool
	var regV VReg
	if id, ok := n.X.(*ast.Ident); ok && id.Kind == ast.SymLocal {
		if v, r := b.localVReg[id.LocalID]; r {
			inReg, regV = true, v
			old = v
			lhsT = b.astFn.Locals[id.LocalID].Ty
		}
	}
	if !inReg {
		lhsA, lhsT = b.addr(n.X)
		old = b.loadFrom(lhsA, lhsT)
	}

	var res VReg
	if tx.Kind == ast.TPtr {
		size := int64(tx.Elem.Size())
		neg := n.Op == token.Minus
		if imm, ok := constIntExpr(n.Y); ok {
			d := imm * size
			if neg {
				d = -d
			}
			res = b.newTmp(ClassW)
			b.emit(Inst{Op: AddI, Class: ClassW, Dst: res, A: old, Imm: d, B: NoReg, Slot: NoSlot})
		} else {
			iv, _ := b.expr(n.Y)
			scaled := b.scale(iv, size)
			res = b.newTmp(ClassW)
			op := Add
			if neg {
				op = Sub
			}
			b.emit(Inst{Op: op, Class: ClassW, Dst: res, A: old, B: scaled, Slot: NoSlot})
		}
	} else {
		oldC := b.cvtVal(old, lhsT, opT)
		yv, _ := b.expr(n.Y)
		yc := b.cvtVal(yv, ty, opT)
		cls := classOf(opT)
		res = b.newTmp(cls)
		if cls == ClassW {
			uns := opT.IsUnsigned()
			var op Op
			switch n.Op {
			case token.Plus:
				op = Add
			case token.Minus:
				op = Sub
			case token.Star:
				op = Mul
			case token.Slash:
				op = Div
				if uns {
					op = DivU
				}
			case token.Percent:
				op = Rem
				if uns {
					op = RemU
				}
			case token.Amp:
				op = And
			case token.Pipe:
				op = Or
			case token.Caret:
				op = Xor
			case token.Shl:
				op = Shl
			case token.Shr:
				op = Sra
				if tx.IsUnsigned() {
					op = Shr
				}
			default:
				b.fail(n.Pos(), "unsupported compound operator %v", n.Op)
			}
			b.emit(Inst{Op: op, Class: cls, Dst: res, A: oldC, B: yc, Slot: NoSlot})
		} else {
			op, ok := binOpF[n.Op]
			if !ok {
				b.fail(n.Pos(), "invalid FP compound operator %v", n.Op)
			}
			b.emit(Inst{Op: op, Class: cls, Dst: res, A: oldC, B: yc, Slot: NoSlot})
		}
		res = b.cvtVal(res, opT, lhsT)
	}

	if inReg {
		b.emit(Inst{Op: Copy, Class: classOf(lhsT), Dst: regV, A: res, B: NoReg, Slot: NoSlot})
		return regV, classOf(lhsT)
	}
	b.storeTo(lhsA, lhsT, res)
	return res, classOf(lhsT)
}

// arithResult mirrors sem's usual arithmetic conversions for compound
// assignments.
func arithResult(a, bt *ast.Type) *ast.Type {
	if a.Kind == ast.TDouble || bt.Kind == ast.TDouble {
		return ast.Double
	}
	if a.Kind == ast.TFloat || bt.Kind == ast.TFloat {
		return ast.Float
	}
	if a.Kind == ast.TUInt || bt.Kind == ast.TUInt {
		return ast.UInt
	}
	return ast.Int
}

// storeLHS stores v into the lvalue lhs, returning the stored value
// register.
func (b *builder) storeLHS(lhs ast.Expr, v VReg) VReg {
	t := lhs.Type()
	if id, ok := lhs.(*ast.Ident); ok && id.Kind == ast.SymLocal {
		if dst, inReg := b.localVReg[id.LocalID]; inReg {
			lt := b.astFn.Locals[id.LocalID].Ty
			v = b.truncateFor(v, lt)
			b.emit(Inst{Op: Copy, Class: classOf(lt), Dst: dst, A: v, B: NoReg, Slot: NoSlot})
			return dst
		}
	}
	a, at := b.addr(lhs)
	_ = t
	b.storeTo(a, at, v)
	return v
}

// blockCopy copies size bytes from the address in src to dst.
func (b *builder) blockCopy(dst aref, src VReg, size int) {
	off := 0
	copyN := func(n int, mem MemOp) {
		for size-off >= n {
			t := b.newTmp(mem.Class())
			b.emit(Inst{Op: Load, Class: mem.Class(), Mem: mem, Dst: t, A: src, Imm: int64(off), B: NoReg, Slot: NoSlot})
			d := dst
			d.off += int64(off)
			b.emit(Inst{Op: Store, Class: mem.Class(), Mem: mem, A: d.base, B: t, Sym: d.sym, Slot: d.slot, Imm: d.off, Dst: NoReg})
			off += n
		}
	}
	copyN(4, MemW)
	copyN(2, MemHU)
	copyN(1, MemBU)
}

func (b *builder) call(n *ast.Call) (VReg, Class) {
	// Arguments first.
	var args []VReg
	var acls []Class
	for _, a := range n.Args {
		v, c := b.expr(a)
		args = append(args, v)
		acls = append(acls, c)
	}
	retT := n.Type()
	hasRet := retT.Kind != ast.TVoid
	var dst VReg = NoReg
	var cls Class = ClassW
	if hasRet {
		cls = classOf(retT)
		dst = b.newTmp(cls)
	}
	if id, ok := n.Fn.(*ast.Ident); ok {
		switch id.Kind {
		case ast.SymBuiltin:
			b.emit(Inst{Op: Syscall, Class: cls, Imm: int64(id.Builtin), Dst: dst, Args: args, ACls: acls, A: NoReg, B: NoReg, Slot: NoSlot})
			return dst, cls
		case ast.SymFunc:
			b.emit(Inst{Op: Call, Class: cls, Sym: id.Name, Dst: dst, Args: args, ACls: acls, A: NoReg, B: NoReg, Slot: NoSlot})
			return dst, cls
		}
	}
	fv, _ := b.expr(n.Fn)
	b.emit(Inst{Op: Call, Class: cls, A: fv, Dst: dst, Args: args, ACls: acls, B: NoReg, Slot: NoSlot})
	return dst, cls
}
