package ir

import (
	"omniware/internal/cc/ast"
	"omniware/internal/cc/token"
)

// aref is an address expression: base register (or NoReg) + symbol +
// stack slot + constant offset. At most one of sym/slot is set.
type aref struct {
	base VReg
	sym  string
	slot int
	off  int64
}

func (b *builder) loadFrom(a aref, t *ast.Type) VReg {
	dst := b.newTmp(classOf(t))
	b.emit(Inst{Op: Load, Class: classOf(t), Mem: memOf(t), Dst: dst,
		A: a.base, B: NoReg, Sym: a.sym, Slot: a.slot, Imm: a.off})
	return dst
}

func (b *builder) storeTo(a aref, t *ast.Type, v VReg) {
	b.emit(Inst{Op: Store, Class: classOf(t), Mem: memOf(t),
		A: a.base, B: v, Dst: NoReg, Sym: a.sym, Slot: a.slot, Imm: a.off})
}

// materialize turns an aref into a register holding the address.
func (b *builder) materialize(a aref) VReg {
	if a.base != NoReg && a.sym == "" && a.slot == NoSlot && a.off == 0 {
		return a.base
	}
	dst := b.newTmp(ClassW)
	b.emit(Inst{Op: Addr, Class: ClassW, Dst: dst, A: a.base, B: NoReg,
		Sym: a.sym, Slot: a.slot, Imm: a.off})
	return dst
}

// expr evaluates e for its value.
func (b *builder) expr(e ast.Expr) (VReg, Class) {
	switch n := e.(type) {
	case *ast.IntLit:
		cls := classOf(n.Type())
		dst := b.newTmp(cls)
		if cls == ClassW {
			b.emit(Inst{Op: Const, Class: cls, Dst: dst, Imm: int64(int32(n.Val)), A: NoReg, B: NoReg, Slot: NoSlot})
		} else {
			b.emit(Inst{Op: Const, Class: cls, Dst: dst, FImm: float64(n.Val), A: NoReg, B: NoReg, Slot: NoSlot})
		}
		return dst, cls

	case *ast.FloatLit:
		cls := classOf(n.Type())
		dst := b.newTmp(cls)
		b.emit(Inst{Op: Const, Class: cls, Dst: dst, FImm: n.Val, A: NoReg, B: NoReg, Slot: NoSlot})
		return dst, cls

	case *ast.StrLit:
		return b.materialize(aref{base: NoReg, sym: n.Label, slot: NoSlot}), ClassW

	case *ast.Ident:
		switch n.Kind {
		case ast.SymLocal:
			if v, ok := b.localVReg[n.LocalID]; ok {
				return v, b.fn.VClass[v]
			}
			slot := b.slotOf(n)
			l := b.astFn.Locals[n.LocalID]
			if l.Ty.Kind == ast.TArray || l.Ty.Kind == ast.TStruct {
				// Decayed: the value is the address.
				return b.materialize(aref{base: NoReg, sym: "", slot: slot}), ClassW
			}
			return b.loadFrom(aref{base: NoReg, slot: slot}, l.Ty), classOf(l.Ty)
		case ast.SymGlobal:
			dt := b.declaredType(n)
			if dt.Kind == ast.TArray || dt.Kind == ast.TStruct {
				// Arrays decay to their address; structs evaluate to
				// their address for member access and copies.
				return b.materialize(aref{base: NoReg, sym: n.Name, slot: NoSlot}), ClassW
			}
			return b.loadFrom(aref{base: NoReg, sym: n.Name, slot: NoSlot}, dt), classOf(dt)
		case ast.SymFunc:
			return b.materialize(aref{base: NoReg, sym: n.Name, slot: NoSlot}), ClassW
		default:
			b.fail(n.Pos(), "cannot evaluate identifier %q (builtin used as value?)", n.Name)
		}

	case *ast.Unary:
		return b.unary(n)

	case *ast.Postfix:
		return b.incDec(n.X, n.Op == token.Inc, true)

	case *ast.Binary:
		return b.binary(n)

	case *ast.Assign:
		return b.assign(n)

	case *ast.Cond:
		cls := classOf(n.Type())
		tmp := b.newTmp(cls)
		tB := b.fn.NewBlock()
		fB := b.fn.NewBlock()
		join := b.fn.NewBlock()
		b.cond(n.C, tB.ID, fB.ID)
		b.cur = tB
		xv, _ := b.expr(n.X)
		b.emit(Inst{Op: Copy, Class: cls, Dst: tmp, A: xv, B: NoReg, Slot: NoSlot})
		b.jumpTo(join)
		b.cur = fB
		yv, _ := b.expr(n.Y)
		b.emit(Inst{Op: Copy, Class: cls, Dst: tmp, A: yv, B: NoReg, Slot: NoSlot})
		b.jumpTo(join)
		b.cur = join
		return tmp, cls

	case *ast.Call:
		return b.call(n)

	case *ast.Index, *ast.Member:
		a, t := b.addr(e)
		if t.Kind == ast.TArray || t.Kind == ast.TStruct {
			return b.materialize(a), ClassW
		}
		return b.loadFrom(a, t), classOf(t)

	case *ast.Cast:
		return b.cast(n)
	}
	b.fail(e.Pos(), "unsupported expression %T", e)
	return NoReg, ClassW
}

func (b *builder) slotOf(n *ast.Ident) int {
	slot, ok := b.localSlot[n.LocalID]
	if !ok {
		l := b.astFn.Locals[n.LocalID]
		slot = b.fn.NewSlot(l.Name, max(l.Ty.Size(), 4), max(l.Ty.Align(), 4))
		b.localSlot[n.LocalID] = slot
	}
	return slot
}

// addr computes the address of an lvalue; returns the aref and the
// *unqualified* object type at that address.
func (b *builder) addr(e ast.Expr) (aref, *ast.Type) {
	switch n := e.(type) {
	case *ast.Ident:
		switch n.Kind {
		case ast.SymLocal:
			l := b.astFn.Locals[n.LocalID]
			if _, inReg := b.localVReg[n.LocalID]; inReg {
				b.fail(n.Pos(), "internal: address of register-resident %q", n.Name)
			}
			return aref{base: NoReg, slot: b.slotOf(n)}, l.Ty
		case ast.SymGlobal:
			return aref{base: NoReg, sym: n.Name, slot: NoSlot}, b.declaredType(n)
		case ast.SymFunc:
			return aref{base: NoReg, sym: n.Name, slot: NoSlot}, n.Type()
		}
	case *ast.StrLit:
		return aref{base: NoReg, sym: n.Label, slot: NoSlot}, ast.ArrayOf(ast.Char, len(n.Val)+1)
	case *ast.Unary:
		if n.Op == token.Star {
			v, _ := b.expr(n.X)
			// The object type is the pointee of the (decayed) operand
			// type; n.Type() may itself have decayed if the pointee is
			// an array.
			return aref{base: v, slot: NoSlot}, n.X.Type().Elem
		}
	case *ast.Index:
		base, _ := b.expr(n.X) // pointer value
		// Element type comes from the pointer operand, not n.Type(),
		// which sem decays for arrays (e.g. m[i] of int[3][4] has
		// decayed type int* but the element is int[4]).
		elem := n.X.Type().Elem
		size := int64(elem.Size())
		if lit, ok := constIntExpr(n.I); ok {
			return aref{base: base, slot: NoSlot, off: lit * size}, elem
		}
		iv, _ := b.expr(n.I)
		scaled := b.scale(iv, size)
		sum := b.newTmp(ClassW)
		b.emit(Inst{Op: Add, Class: ClassW, Dst: sum, A: base, B: scaled, Slot: NoSlot})
		return aref{base: sum, slot: NoSlot}, elem
	case *ast.Member:
		if n.PtrDeref {
			base, _ := b.expr(n.X)
			return aref{base: base, slot: NoSlot, off: int64(n.Field.Offset)}, n.Field.Type
		}
		a, _ := b.addr(n.X)
		a.off += int64(n.Field.Offset)
		return a, n.Field.Type
	}
	b.fail(e.Pos(), "expression is not addressable (%T)", e)
	return aref{}, nil
}

// declaredType returns the declared (pre-decay) type of a global.
func (b *builder) declaredType(n *ast.Ident) *ast.Type {
	if n.DeclTy != nil {
		return n.DeclTy
	}
	return n.Type()
}

// scale multiplies an index by an element size.
func (b *builder) scale(v VReg, size int64) VReg {
	if size == 1 {
		return v
	}
	dst := b.newTmp(ClassW)
	if sh := log2(size); sh >= 0 {
		b.emit(Inst{Op: ShlI, Class: ClassW, Dst: dst, A: v, Imm: int64(sh), B: NoReg, Slot: NoSlot})
	} else {
		b.emit(Inst{Op: MulI, Class: ClassW, Dst: dst, A: v, Imm: size, B: NoReg, Slot: NoSlot})
	}
	return dst
}

func log2(v int64) int {
	for i := 0; i < 31; i++ {
		if v == 1<<i {
			return i
		}
	}
	return -1
}

func constIntExpr(e ast.Expr) (int64, bool) {
	if lit, ok := e.(*ast.IntLit); ok {
		return lit.Val, true
	}
	if c, ok := e.(*ast.Cast); ok {
		if lit, ok := c.X.(*ast.IntLit); ok && c.To.IsInteger() {
			return lit.Val, true
		}
	}
	return 0, false
}

func (b *builder) unary(n *ast.Unary) (VReg, Class) {
	switch n.Op {
	case token.Minus:
		v, cls := b.expr(n.X)
		dst := b.newTmp(cls)
		if cls == ClassW {
			b.emit(Inst{Op: Neg, Class: cls, Dst: dst, A: v, B: NoReg, Slot: NoSlot})
		} else {
			b.emit(Inst{Op: FNeg, Class: cls, Dst: dst, A: v, B: NoReg, Slot: NoSlot})
		}
		return dst, cls
	case token.Tilde:
		v, _ := b.expr(n.X)
		dst := b.newTmp(ClassW)
		b.emit(Inst{Op: XorI, Class: ClassW, Dst: dst, A: v, Imm: -1, B: NoReg, Slot: NoSlot})
		return dst, ClassW
	case token.Not:
		// !x as a value: materialize via SetI eq 0 for ints; floats need
		// a comparison against 0.0.
		v, cls := b.expr(n.X)
		dst := b.newTmp(ClassW)
		if cls == ClassW {
			b.emit(Inst{Op: SetI, Class: ClassW, Dst: dst, A: v, CC: CCEq, Imm: 0, B: NoReg, Slot: NoSlot})
			return dst, ClassW
		}
		z := b.newTmp(cls)
		b.emit(Inst{Op: Const, Class: cls, Dst: z, FImm: 0, A: NoReg, B: NoReg, Slot: NoSlot})
		b.emit(Inst{Op: Set, Class: cls, Dst: dst, A: v, B: z, CC: CCEq, Slot: NoSlot})
		return dst, ClassW
	case token.Star:
		a, t := b.addr(n)
		if t.Kind == ast.TArray || t.Kind == ast.TStruct || t.Kind == ast.TFunc {
			return b.materialize(a), ClassW
		}
		return b.loadFrom(a, t), classOf(t)
	case token.Amp:
		if id, ok := n.X.(*ast.Ident); ok && id.Kind == ast.SymFunc {
			return b.materialize(aref{base: NoReg, sym: id.Name, slot: NoSlot}), ClassW
		}
		a, _ := b.addr(n.X)
		return b.materialize(a), ClassW
	case token.Inc, token.Dec:
		return b.incDec(n.X, n.Op == token.Inc, false)
	}
	b.fail(n.Pos(), "unsupported unary %v", n.Op)
	return NoReg, ClassW
}

// incDec implements ++/-- (pre and post) on scalars and pointers.
func (b *builder) incDec(lhs ast.Expr, inc, post bool) (VReg, Class) {
	t := lhs.Type()
	delta := int64(1)
	if t.Kind == ast.TPtr {
		delta = int64(t.Elem.Size())
	}
	if !inc {
		delta = -delta
	}
	cls := classOf(t)

	// Register-resident local: operate in place.
	if id, ok := lhs.(*ast.Ident); ok && id.Kind == ast.SymLocal {
		if v, inReg := b.localVReg[id.LocalID]; inReg {
			var old VReg
			if post {
				old = b.newTmp(cls)
				b.emit(Inst{Op: Copy, Class: cls, Dst: old, A: v, B: NoReg, Slot: NoSlot})
			}
			if cls == ClassW {
				b.emit(Inst{Op: AddI, Class: cls, Dst: v, A: v, Imm: delta, B: NoReg, Slot: NoSlot})
				b.truncateInPlace(v, t)
			} else {
				one := b.newTmp(cls)
				b.emit(Inst{Op: Const, Class: cls, Dst: one, FImm: float64(delta), A: NoReg, B: NoReg, Slot: NoSlot})
				b.emit(Inst{Op: FAdd, Class: cls, Dst: v, A: v, B: one, Slot: NoSlot})
			}
			if post {
				return old, cls
			}
			return v, cls
		}
	}
	a, at := b.addr(lhs)
	old := b.loadFrom(a, at)
	nw := b.newTmp(cls)
	if cls == ClassW {
		b.emit(Inst{Op: AddI, Class: cls, Dst: nw, A: old, Imm: delta, B: NoReg, Slot: NoSlot})
	} else {
		one := b.newTmp(cls)
		b.emit(Inst{Op: Const, Class: cls, Dst: one, FImm: float64(delta), A: NoReg, B: NoReg, Slot: NoSlot})
		b.emit(Inst{Op: FAdd, Class: cls, Dst: nw, A: old, B: one, Slot: NoSlot})
	}
	b.storeTo(a, at, nw)
	if post {
		return old, cls
	}
	return nw, cls
}

// truncateFor narrows v to fit type t when t is a sub-word integer and
// returns the truncated register (or v unchanged).
func (b *builder) truncateFor(v VReg, t *ast.Type) VReg {
	switch t.Kind {
	case ast.TChar:
		s1 := b.newTmp(ClassW)
		b.emit(Inst{Op: ShlI, Class: ClassW, Dst: s1, A: v, Imm: 24, B: NoReg, Slot: NoSlot})
		s2 := b.newTmp(ClassW)
		b.emit(Inst{Op: SraI, Class: ClassW, Dst: s2, A: s1, Imm: 24, B: NoReg, Slot: NoSlot})
		return s2
	case ast.TUChar:
		s := b.newTmp(ClassW)
		b.emit(Inst{Op: AndI, Class: ClassW, Dst: s, A: v, Imm: 0xff, B: NoReg, Slot: NoSlot})
		return s
	case ast.TShort:
		s1 := b.newTmp(ClassW)
		b.emit(Inst{Op: ShlI, Class: ClassW, Dst: s1, A: v, Imm: 16, B: NoReg, Slot: NoSlot})
		s2 := b.newTmp(ClassW)
		b.emit(Inst{Op: SraI, Class: ClassW, Dst: s2, A: s1, Imm: 16, B: NoReg, Slot: NoSlot})
		return s2
	case ast.TUShort:
		s := b.newTmp(ClassW)
		b.emit(Inst{Op: AndI, Class: ClassW, Dst: s, A: v, Imm: 0xffff, B: NoReg, Slot: NoSlot})
		return s
	}
	return v
}

// truncateInPlace narrows a register-resident sub-word local after
// arithmetic.
func (b *builder) truncateInPlace(v VReg, t *ast.Type) {
	switch t.Kind {
	case ast.TChar:
		b.emit(Inst{Op: ShlI, Class: ClassW, Dst: v, A: v, Imm: 24, B: NoReg, Slot: NoSlot})
		b.emit(Inst{Op: SraI, Class: ClassW, Dst: v, A: v, Imm: 24, B: NoReg, Slot: NoSlot})
	case ast.TUChar:
		b.emit(Inst{Op: AndI, Class: ClassW, Dst: v, A: v, Imm: 0xff, B: NoReg, Slot: NoSlot})
	case ast.TShort:
		b.emit(Inst{Op: ShlI, Class: ClassW, Dst: v, A: v, Imm: 16, B: NoReg, Slot: NoSlot})
		b.emit(Inst{Op: SraI, Class: ClassW, Dst: v, A: v, Imm: 16, B: NoReg, Slot: NoSlot})
	case ast.TUShort:
		b.emit(Inst{Op: AndI, Class: ClassW, Dst: v, A: v, Imm: 0xffff, B: NoReg, Slot: NoSlot})
	}
}
