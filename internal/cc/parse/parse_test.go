package parse

import (
	"strings"
	"testing"

	"omniware/internal/cc/ast"
	"omniware/internal/cc/token"
)

func mustParse(t *testing.T, src string) *ast.File {
	t.Helper()
	f, err := File("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFunctionAndVars(t *testing.T) {
	f := mustParse(t, `
int g;
int arr[10];
char *msg = "hi";
static unsigned counter = 5;

int add(int a, int b) {
	return a + b;
}
`)
	if len(f.Funcs) != 1 || f.Funcs[0].Name != "add" {
		t.Fatalf("funcs: %+v", f.Funcs)
	}
	fd := f.Funcs[0]
	if fd.Ty.Ret != ast.Int || len(fd.Ty.Params) != 2 {
		t.Errorf("type: %v", fd.Ty)
	}
	if fd.Ty.PNames[0] != "a" || fd.Ty.PNames[1] != "b" {
		t.Errorf("pnames: %v", fd.Ty.PNames)
	}
	if len(f.Vars) != 4 {
		t.Fatalf("vars: %d", len(f.Vars))
	}
	if f.Vars[1].Ty.Kind != ast.TArray || f.Vars[1].Ty.Len != 10 {
		t.Errorf("arr: %v", f.Vars[1].Ty)
	}
	if f.Vars[2].Ty.Kind != ast.TPtr || f.Vars[2].Init == nil {
		t.Errorf("msg: %+v", f.Vars[2])
	}
	if !f.Vars[3].Static || f.Vars[3].Ty != ast.UInt {
		t.Errorf("counter: %+v", f.Vars[3])
	}
}

func TestStructAndTypedef(t *testing.T) {
	f := mustParse(t, `
typedef struct node Node;
struct node {
	int val;
	double d;
	struct node *next;
};
Node *head;

int use(Node *n) { return n->val + n->next->val; }
`)
	head := f.Vars[0]
	st := head.Ty.Elem
	if st.Kind != ast.TStruct || st.Tag != "node" || !st.Done {
		t.Fatalf("struct: %v done=%v", st, st.Done)
	}
	if len(st.Fields) != 3 {
		t.Fatalf("fields: %d", len(st.Fields))
	}
	// Layout: val@0, d@8 (align), next@16, size 24.
	if st.Fields[1].Offset != 8 || st.Fields[2].Offset != 16 {
		t.Errorf("offsets: %+v", st.Fields)
	}
	if st.Size() != 24 || st.Align() != 8 {
		t.Errorf("size %d align %d", st.Size(), st.Align())
	}
}

func TestEnumsAndConstExpr(t *testing.T) {
	f := mustParse(t, `
enum { A, B, C = 10, D };
int arr[C + 2];
int pick(int x) {
	switch (x) {
	case A: return 1;
	case D: return 2;
	default: return 3;
	}
}
`)
	if f.Vars[0].Ty.Len != 12 {
		t.Errorf("array size: %d", f.Vars[0].Ty.Len)
	}
	fn := f.Funcs[0]
	sw := fn.Body.List[0].(*ast.Switch)
	blk := sw.Body.(*ast.Block)
	c1 := blk.List[0].(*ast.Case)
	if c1.Int != 0 {
		t.Errorf("case A: %d", c1.Int)
	}
	c2 := blk.List[2].(*ast.Case)
	if c2.Int != 11 {
		t.Errorf("case D: %d", c2.Int)
	}
}

func TestExpressions(t *testing.T) {
	f := mustParse(t, `
int f(int a, int b) {
	int c = a * b + 3;
	c += a << 2;
	c = a ? b : c;
	c = (a + b) % 7;
	c++;
	--c;
	return c == 0 ? -1 : ~c;
}
`)
	body := f.Funcs[0].Body
	if len(body.List) != 7 {
		t.Fatalf("stmts: %d", len(body.List))
	}
	// a * b + 3 parses as (a*b)+3
	ds := body.List[0].(*ast.DeclStmt)
	bin := ds.Decls[0].Init.(*ast.Binary)
	if bin.Op != token.Plus {
		t.Errorf("prec: %v", bin.Op)
	}
	if inner, ok := bin.X.(*ast.Binary); !ok || inner.Op != token.Star {
		t.Errorf("prec inner")
	}
}

func TestPointerOps(t *testing.T) {
	f := mustParse(t, `
int f(int *p, int n) {
	int sum = 0;
	int *q = p + n;
	while (p < q) {
		sum += *p++;
	}
	return sum;
}
`)
	_ = f.Funcs[0]
}

func TestFunctionPointers(t *testing.T) {
	f := mustParse(t, `
typedef int (*binop)(int, int);
int apply(binop f, int a, int b) { return f(a, b); }
int add(int a, int b) { return a + b; }
int (*table[2])(int, int);
int main(void) {
	binop f;
	f = add;
	table[0] = add;
	return apply(f, 2, 3) + table[0](1, 1);
}
`)
	tab := f.Vars[0]
	if tab.Ty.Kind != ast.TArray || tab.Ty.Len != 2 {
		t.Fatalf("table type: %v", tab.Ty)
	}
	if tab.Ty.Elem.Kind != ast.TPtr || tab.Ty.Elem.Elem.Kind != ast.TFunc {
		t.Fatalf("table elem: %v", tab.Ty.Elem)
	}
}

func TestCasts(t *testing.T) {
	f := mustParse(t, `
double g(int n) {
	char c = (char)n;
	unsigned u = (unsigned)c;
	double d = (double)n / 2.0;
	int *p = (int *)0;
	void *v = (void *)p;
	return d + (double)(long)u;
}
`)
	body := f.Funcs[0].Body
	if len(body.List) != 6 {
		t.Fatalf("stmts: %d", len(body.List))
	}
}

func TestArrayInitializers(t *testing.T) {
	f := mustParse(t, `
int tab[] = {1, 2, 3, 4};
int mat[2][2] = {{1, 2}, {3, 4}};
char s[] = "abc";
double w[3] = {1.0, 2.5};
`)
	if f.Vars[0].Ty.Len != 4 {
		t.Errorf("tab len %d", f.Vars[0].Ty.Len)
	}
	if len(f.Vars[1].List) != 4 {
		t.Errorf("mat flattened: %d", len(f.Vars[1].List))
	}
	if f.Vars[2].Ty.Len != 4 { // "abc" + NUL
		t.Errorf("s len %d", f.Vars[2].Ty.Len)
	}
}

func TestControlFlow(t *testing.T) {
	mustParse(t, `
int f(int n) {
	int i, acc = 0;
	for (i = 0; i < n; i++) {
		if (i % 2 == 0) continue;
		acc += i;
		if (acc > 100) break;
	}
	do { acc--; } while (acc > 50);
	goto out;
	acc = -1;
out:
	return acc;
}
`)
}

func TestForWithDecl(t *testing.T) {
	f := mustParse(t, `
int f(int n) {
	int acc = 0;
	for (int i = 0; i < n; i++) acc += i;
	return acc;
}
`)
	forStmt := f.Funcs[0].Body.List[1].(*ast.For)
	if _, ok := forStmt.Init.(*ast.DeclStmt); !ok {
		t.Errorf("for init: %T", forStmt.Init)
	}
}

func TestSizeof(t *testing.T) {
	f := mustParse(t, `
struct pair { int a; double b; };
int s1 = sizeof(int);
int s2 = sizeof(struct pair);
int s3 = sizeof(int *);
int arr[sizeof(struct pair)];
`)
	if f.Vars[3].Ty.Len != 16 {
		t.Errorf("sizeof(struct pair) = %d", f.Vars[3].Ty.Len)
	}
}

func TestStringConcat(t *testing.T) {
	f := mustParse(t, `char *s = "a" "b" "c";`)
	lit := f.Vars[0].Init.(*ast.StrLit)
	if lit.Val != "abc" {
		t.Errorf("concat: %q", lit.Val)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"int f( {",
		"int f(int a,) { return a; }",
		"int x = ;",
		"int f(void) { return 1 }",
		"struct s { struct s inner; };", // incomplete member
		"union u { int a; };",
		"int f(int a, ...) { return a; }",
		"long long x;",
		"int a[-3];",
		"int $bad;",
		"int f(void) { int x = 07779; }",
	}
	for _, src := range cases {
		if _, err := File("bad.c", src); err == nil {
			t.Errorf("accepted: %q", src)
		}
	}
}

func TestCommentsAndDirectives(t *testing.T) {
	mustParse(t, `
// line comment
/* block
   comment */
#include <ignored.h>
#define ALSO_IGNORED 1
int x = 3; // trailing
`)
}

func TestConstEvalOperators(t *testing.T) {
	f := mustParse(t, `
int a[(4 + 4) * 2];
int b[1 << 4];
int c[100 / 10 % 7];
int d[~0 & 7];
int e[(2 > 1) ? 5 : 9];
int g[-(-6)];
`)
	want := []int{16, 16, 3, 7, 5, 6}
	for i, w := range want {
		if f.Vars[i].Ty.Len != w {
			t.Errorf("var %d: len %d want %d", i, f.Vars[i].Ty.Len, w)
		}
	}
}

func TestCaseInsensitiveKeywordsNot(t *testing.T) {
	// "Int" is an identifier, not a keyword; with no typedef it fails.
	if _, err := File("t.c", "Int x;"); err == nil {
		t.Error("accepted 'Int x;' without typedef")
	}
}

func TestErrorHasPosition(t *testing.T) {
	_, err := File("pos.c", "int x;\nint y = @;")
	if err == nil {
		t.Fatal("no error")
	}
	if !strings.Contains(err.Error(), "pos.c:2") {
		t.Errorf("error position: %v", err)
	}
}
