// Package parse implements the OmniC recursive-descent parser. It
// produces an ast.File; name resolution and type checking happen in
// internal/cc/sem. The parser evaluates the constant expressions that
// the grammar itself needs (array sizes, enum values, case labels).
package parse

import (
	"fmt"

	"omniware/internal/cc/ast"
	"omniware/internal/cc/scan"
	"omniware/internal/cc/token"
)

// Error is a parse diagnostic.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

type parser struct {
	toks []token.Token
	pos  int

	typedefs map[string]*ast.Type
	tags     map[string]*ast.Type
	enums    map[string]int64

	file *ast.File
}

// File parses a translation unit.
func File(name, src string) (*ast.File, error) {
	toks, err := scan.All(name, src)
	if err != nil {
		return nil, err
	}
	p := &parser{
		toks:     toks,
		typedefs: map[string]*ast.Type{},
		tags:     map[string]*ast.Type{},
		enums:    map[string]int64{},
		file:     &ast.File{Name: name},
	}
	if err := p.unit(); err != nil {
		return nil, err
	}
	return p.file, nil
}

func (p *parser) tok() token.Token     { return p.toks[p.pos] }
func (p *parser) kind() token.Kind     { return p.toks[p.pos].Kind }
func (p *parser) at(k token.Kind) bool { return p.kind() == k }

func (p *parser) peekKind(n int) token.Kind {
	if p.pos+n >= len(p.toks) {
		return token.EOF
	}
	return p.toks[p.pos+n].Kind
}

func (p *parser) next() token.Token {
	t := p.toks[p.pos]
	if t.Kind != token.EOF {
		p.pos++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	return &Error{Pos: p.tok().Pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(k token.Kind) (token.Token, error) {
	if p.kind() != k {
		return token.Token{}, p.errf("expected %v, found %v", k, p.tok())
	}
	return p.next(), nil
}

// ---- declarations ----

func (p *parser) unit() error {
	for !p.at(token.EOF) {
		if err := p.topDecl(); err != nil {
			return err
		}
	}
	return nil
}

type storage struct {
	typedef bool
	static  bool
	extern  bool
}

// isTypeStart reports whether the current token can begin declaration
// specifiers.
func (p *parser) isTypeStart() bool {
	switch p.kind() {
	case token.KwVoid, token.KwChar, token.KwShort, token.KwInt, token.KwLong,
		token.KwUnsigned, token.KwSigned, token.KwFloat, token.KwDouble,
		token.KwStruct, token.KwUnion, token.KwEnum, token.KwConst,
		token.KwStatic, token.KwExtern, token.KwTypedef, token.KwRegister:
		return true
	case token.Ident:
		_, ok := p.typedefs[p.tok().Text]
		return ok
	}
	return false
}

func (p *parser) topDecl() error {
	base, sto, err := p.declSpecifiers()
	if err != nil {
		return err
	}
	// "struct S { ... };" or "enum {...};" alone.
	if p.at(token.Semi) {
		p.next()
		return nil
	}
	first := true
	for {
		pos := p.tok().Pos
		name, ty, err := p.declarator(base)
		if err != nil {
			return err
		}
		if name == "" {
			return &Error{Pos: pos, Msg: "declarator requires a name"}
		}
		if sto.typedef {
			p.typedefs[name] = ty
			if !p.at(token.Semi) {
				if _, err := p.expect(token.Comma); err != nil {
					return err
				}
				continue
			}
			p.next()
			return nil
		}
		if ty.Kind == ast.TFunc {
			if first && p.at(token.LBrace) {
				body, err := p.block()
				if err != nil {
					return err
				}
				p.file.Funcs = append(p.file.Funcs, &ast.FuncDecl{
					P: pos, Name: name, Ty: ty, Body: body, Static: sto.static,
				})
				return nil
			}
			// Prototype.
			p.file.Funcs = append(p.file.Funcs, &ast.FuncDecl{
				P: pos, Name: name, Ty: ty, Static: sto.static,
			})
		} else {
			vd := &ast.VarDecl{P: pos, Name: name, Ty: ty, Extern: sto.extern, Static: sto.static}
			if p.at(token.Assign) {
				p.next()
				if err := p.initializer(vd, ty); err != nil {
					return err
				}
			}
			p.file.Vars = append(p.file.Vars, vd)
		}
		first = false
		if p.at(token.Comma) {
			p.next()
			continue
		}
		if _, err := p.expect(token.Semi); err != nil {
			return err
		}
		return nil
	}
}

// initializer parses a variable initializer into vd. Brace lists are
// flattened; char arrays accept string literals. If ty is an array of
// unknown length, the length is set from the initializer.
func (p *parser) initializer(vd *ast.VarDecl, ty *ast.Type) error {
	if p.at(token.LBrace) {
		p.next()
		var list []ast.Expr
		for !p.at(token.RBrace) {
			if p.at(token.LBrace) {
				// Nested braces (struct elements or rows): flatten.
				sub := &ast.VarDecl{}
				if err := p.initializer(sub, nil); err != nil {
					return err
				}
				list = append(list, sub.List...)
			} else {
				e, err := p.assignExpr()
				if err != nil {
					return err
				}
				list = append(list, e)
			}
			if p.at(token.Comma) {
				p.next()
				continue
			}
			break
		}
		if _, err := p.expect(token.RBrace); err != nil {
			return err
		}
		vd.List = list
		if ty != nil && ty.Kind == ast.TArray && ty.Len == 0 {
			n := len(list)
			elems := 1
			if ty.Elem.Kind == ast.TArray && ty.Elem.Len > 0 {
				elems = ty.Elem.Len
			}
			ty.Len = (n + elems - 1) / elems
		}
		return nil
	}
	e, err := p.assignExpr()
	if err != nil {
		return err
	}
	if s, ok := e.(*ast.StrLit); ok && ty != nil && ty.Kind == ast.TArray {
		if ty.Len == 0 {
			ty.Len = len(s.Val) + 1
		}
	}
	vd.Init = e
	return nil
}

// declSpecifiers parses storage class + type specifiers.
func (p *parser) declSpecifiers() (*ast.Type, storage, error) {
	var sto storage
	var (
		seenUnsigned, seenSigned bool
		base                     *ast.Type
		nLong                    int
	)
	for {
		switch p.kind() {
		case token.KwTypedef:
			sto.typedef = true
			p.next()
		case token.KwStatic:
			sto.static = true
			p.next()
		case token.KwExtern:
			sto.extern = true
			p.next()
		case token.KwConst, token.KwRegister:
			p.next() // accepted, ignored
		case token.KwVoid:
			base = ast.Void
			p.next()
		case token.KwChar:
			base = ast.Char
			p.next()
		case token.KwShort:
			base = ast.Short
			p.next()
		case token.KwInt:
			if base == nil || base == ast.Int {
				base = ast.Int
			} // "short int", "long int", "unsigned int" keep the modifier
			p.next()
		case token.KwLong:
			nLong++
			p.next()
		case token.KwFloat:
			base = ast.Float
			p.next()
		case token.KwDouble:
			base = ast.Double
			p.next()
		case token.KwUnsigned:
			seenUnsigned = true
			p.next()
		case token.KwSigned:
			seenSigned = true
			p.next()
		case token.KwStruct, token.KwUnion:
			if base != nil {
				return nil, sto, p.errf("multiple type specifiers")
			}
			t, err := p.structSpecifier()
			if err != nil {
				return nil, sto, err
			}
			base = t
		case token.KwEnum:
			if base != nil {
				return nil, sto, p.errf("multiple type specifiers")
			}
			if err := p.enumSpecifier(); err != nil {
				return nil, sto, err
			}
			base = ast.Int
		case token.Ident:
			if t, ok := p.typedefs[p.tok().Text]; ok && base == nil && !seenUnsigned && !seenSigned && nLong == 0 {
				base = t
				p.next()
				continue
			}
			goto done
		default:
			goto done
		}
	}
done:
	if base == nil {
		if seenUnsigned || seenSigned || nLong > 0 {
			base = ast.Int
		} else {
			return nil, sto, p.errf("expected type specifier, found %v", p.tok())
		}
	}
	if nLong > 1 {
		return nil, sto, p.errf("long long is not supported (OmniVM is 32-bit)")
	}
	_ = seenSigned
	if seenUnsigned {
		switch base.Kind {
		case ast.TChar:
			base = ast.UChar
		case ast.TShort:
			base = ast.UShort
		case ast.TInt:
			base = ast.UInt
		default:
			return nil, sto, p.errf("unsigned %v not supported", base)
		}
	}
	return base, sto, nil
}

func (p *parser) structSpecifier() (*ast.Type, error) {
	isUnion := p.kind() == token.KwUnion
	if isUnion {
		return nil, p.errf("union is not supported in OmniC")
	}
	p.next() // struct
	tag := ""
	if p.at(token.Ident) {
		tag = p.next().Text
	}
	var t *ast.Type
	if tag != "" {
		if prev, ok := p.tags[tag]; ok {
			t = prev
		} else {
			t = &ast.Type{Kind: ast.TStruct, Tag: tag}
			p.tags[tag] = t
		}
	} else {
		t = &ast.Type{Kind: ast.TStruct}
	}
	if !p.at(token.LBrace) {
		return t, nil
	}
	if t.Done {
		return nil, p.errf("struct %s redefined", tag)
	}
	p.next()
	for !p.at(token.RBrace) {
		base, sto, err := p.declSpecifiers()
		if err != nil {
			return nil, err
		}
		if sto.typedef || sto.static || sto.extern {
			return nil, p.errf("storage class in struct member")
		}
		for {
			name, fty, err := p.declarator(base)
			if err != nil {
				return nil, err
			}
			if name == "" {
				return nil, p.errf("unnamed struct member")
			}
			if fty.Kind == ast.TStruct && !fty.Done {
				return nil, p.errf("member %q has incomplete type", name)
			}
			t.Fields = append(t.Fields, ast.Field{Name: name, Type: fty})
			if p.at(token.Comma) {
				p.next()
				continue
			}
			break
		}
		if _, err := p.expect(token.Semi); err != nil {
			return nil, err
		}
	}
	p.next() // }
	t.Layout()
	return t, nil
}

func (p *parser) enumSpecifier() error {
	p.next() // enum
	if p.at(token.Ident) {
		p.next() // tag, unused
	}
	if !p.at(token.LBrace) {
		return nil
	}
	p.next()
	var val int64
	for !p.at(token.RBrace) {
		name, err := p.expect(token.Ident)
		if err != nil {
			return err
		}
		if p.at(token.Assign) {
			p.next()
			e, err := p.condExpr()
			if err != nil {
				return err
			}
			v, err := p.constEval(e)
			if err != nil {
				return err
			}
			val = v
		}
		p.enums[name.Text] = val
		val++
		if p.at(token.Comma) {
			p.next()
			continue
		}
		break
	}
	_, err := p.expect(token.RBrace)
	return err
}

// declarator parses pointers, the direct declarator, and suffixes.
// Returns the declared name ("" for abstract declarators) and full type.
func (p *parser) declarator(base *ast.Type) (string, *ast.Type, error) {
	ty := base
	for p.at(token.Star) {
		p.next()
		for p.kind() == token.KwConst {
			p.next()
		}
		ty = ast.PtrTo(ty)
	}
	return p.directDeclarator(ty)
}

func (p *parser) directDeclarator(ty *ast.Type) (string, *ast.Type, error) {
	name := ""
	// Parenthesized declarator: we support the function-pointer idiom
	// (*name)(params) and (*name[n])(params).
	if p.at(token.LParen) && (p.peekKind(1) == token.Star) {
		p.next() // (
		p.next() // *
		inner := "p"
		if p.at(token.Ident) {
			inner = p.next().Text
		}
		name = inner
		// Optional array suffix inside the parens: (*f[4]).
		var arrLens []int
		for p.at(token.LBrack) {
			p.next()
			n := 0
			if !p.at(token.RBrack) {
				e, err := p.condExpr()
				if err != nil {
					return "", nil, err
				}
				v, err := p.constEval(e)
				if err != nil {
					return "", nil, err
				}
				n = int(v)
			}
			if _, err := p.expect(token.RBrack); err != nil {
				return "", nil, err
			}
			arrLens = append(arrLens, n)
		}
		if _, err := p.expect(token.RParen); err != nil {
			return "", nil, err
		}
		// Now the suffix applies to the *inner* pointer: (*f)(params)
		// declares f as pointer-to-function-returning-ty.
		suffixed, err := p.declSuffix(ty)
		if err != nil {
			return "", nil, err
		}
		res := ast.PtrTo(suffixed)
		for i := len(arrLens) - 1; i >= 0; i-- {
			res = ast.ArrayOf(res, arrLens[i])
		}
		return name, res, nil
	}
	if p.at(token.Ident) {
		name = p.next().Text
	}
	ty, err := p.declSuffix(ty)
	return name, ty, err
}

// declSuffix parses [n]... and (params).
func (p *parser) declSuffix(ty *ast.Type) (*ast.Type, error) {
	if p.at(token.LParen) {
		p.next()
		ft := &ast.Type{Kind: ast.TFunc, Ret: ty}
		if p.at(token.RParen) {
			ft.Old = true
			p.next()
		} else if p.kind() == token.KwVoid && p.peekKind(1) == token.RParen {
			p.next()
			p.next()
		} else {
			for {
				pbase, psto, err := p.declSpecifiers()
				if err != nil {
					return nil, err
				}
				if psto.typedef || psto.static || psto.extern {
					return nil, p.errf("storage class in parameter")
				}
				pname, pty, err := p.declarator(pbase)
				if err != nil {
					return nil, err
				}
				// Array parameters decay to pointers.
				if pty.Kind == ast.TArray {
					pty = ast.PtrTo(pty.Elem)
				}
				if pty.Kind == ast.TFunc {
					pty = ast.PtrTo(pty)
				}
				ft.Params = append(ft.Params, pty)
				ft.PNames = append(ft.PNames, pname)
				if p.at(token.Comma) {
					p.next()
					if p.at(token.Ellipsis) {
						return nil, p.errf("varargs are not supported in OmniC")
					}
					continue
				}
				break
			}
			if _, err := p.expect(token.RParen); err != nil {
				return nil, err
			}
		}
		return ft, nil
	}
	// Arrays (possibly multidimensional).
	if p.at(token.LBrack) {
		p.next()
		n := 0
		if !p.at(token.RBrack) {
			e, err := p.condExpr()
			if err != nil {
				return nil, err
			}
			v, err := p.constEval(e)
			if err != nil {
				return nil, err
			}
			if v <= 0 {
				return nil, p.errf("array size %d must be positive", v)
			}
			n = int(v)
		}
		if _, err := p.expect(token.RBrack); err != nil {
			return nil, err
		}
		inner, err := p.declSuffix(ty)
		if err != nil {
			return nil, err
		}
		return ast.ArrayOf(inner, n), nil
	}
	return ty, nil
}

// typeName parses a type-name (for casts and sizeof).
func (p *parser) typeName() (*ast.Type, error) {
	base, sto, err := p.declSpecifiers()
	if err != nil {
		return nil, err
	}
	if sto.typedef || sto.static || sto.extern {
		return nil, p.errf("storage class in type name")
	}
	ty := base
	for p.at(token.Star) {
		p.next()
		ty = ast.PtrTo(ty)
	}
	// Abstract function-pointer type: T (*)(params).
	if p.at(token.LParen) && p.peekKind(1) == token.Star && p.peekKind(2) == token.RParen {
		p.next()
		p.next()
		p.next()
		ft, err := p.declSuffix(ty)
		if err != nil {
			return nil, err
		}
		return ast.PtrTo(ft), nil
	}
	for p.at(token.LBrack) {
		p.next()
		e, err := p.condExpr()
		if err != nil {
			return nil, err
		}
		v, err := p.constEval(e)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RBrack); err != nil {
			return nil, err
		}
		ty = ast.ArrayOf(ty, int(v))
	}
	return ty, nil
}
