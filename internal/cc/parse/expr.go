package parse

import (
	"fmt"

	"omniware/internal/cc/ast"
	"omniware/internal/cc/token"
)

// expr parses a full expression including the comma operator.
func (p *parser) expr() (ast.Expr, error) {
	e, err := p.assignExpr()
	if err != nil {
		return nil, err
	}
	for p.at(token.Comma) {
		pos := p.next().Pos
		r, err := p.assignExpr()
		if err != nil {
			return nil, err
		}
		e = &ast.Binary{ExprBase: ast.ExprBase{P: pos}, Op: token.Comma, X: e, Y: r}
	}
	return e, nil
}

var assignBase = map[token.Kind]token.Kind{
	token.Assign:        token.Assign,
	token.PlusAssign:    token.Plus,
	token.MinusAssign:   token.Minus,
	token.StarAssign:    token.Star,
	token.SlashAssign:   token.Slash,
	token.PercentAssign: token.Percent,
	token.AmpAssign:     token.Amp,
	token.PipeAssign:    token.Pipe,
	token.CaretAssign:   token.Caret,
	token.ShlAssign:     token.Shl,
	token.ShrAssign:     token.Shr,
}

func (p *parser) assignExpr() (ast.Expr, error) {
	lhs, err := p.condExpr()
	if err != nil {
		return nil, err
	}
	if base, ok := assignBase[p.kind()]; ok {
		pos := p.next().Pos
		rhs, err := p.assignExpr()
		if err != nil {
			return nil, err
		}
		return &ast.Assign{ExprBase: ast.ExprBase{P: pos}, Op: base, X: lhs, Y: rhs}, nil
	}
	return lhs, nil
}

func (p *parser) condExpr() (ast.Expr, error) {
	c, err := p.binExpr(0)
	if err != nil {
		return nil, err
	}
	if !p.at(token.Question) {
		return c, nil
	}
	pos := p.next().Pos
	x, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.Colon); err != nil {
		return nil, err
	}
	y, err := p.condExpr()
	if err != nil {
		return nil, err
	}
	return &ast.Cond{ExprBase: ast.ExprBase{P: pos}, C: c, X: x, Y: y}, nil
}

// Binary operator precedence (C levels, || lowest here).
var binPrec = map[token.Kind]int{
	token.OrOr:   1,
	token.AndAnd: 2,
	token.Pipe:   3,
	token.Caret:  4,
	token.Amp:    5,
	token.EqEq:   6, token.NotEq: 6,
	token.Lt: 7, token.Gt: 7, token.Le: 7, token.Ge: 7,
	token.Shl: 8, token.Shr: 8,
	token.Plus: 9, token.Minus: 9,
	token.Star: 10, token.Slash: 10, token.Percent: 10,
}

func (p *parser) binExpr(minPrec int) (ast.Expr, error) {
	lhs, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		prec, ok := binPrec[p.kind()]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		op := p.next()
		rhs, err := p.binExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &ast.Binary{ExprBase: ast.ExprBase{P: op.Pos}, Op: op.Kind, X: lhs, Y: rhs}
	}
}

// isCastStart reports whether "(" begins a cast, looking one token in.
func (p *parser) isCastStart() bool {
	if !p.at(token.LParen) {
		return false
	}
	switch p.peekKind(1) {
	case token.KwVoid, token.KwChar, token.KwShort, token.KwInt, token.KwLong,
		token.KwUnsigned, token.KwSigned, token.KwFloat, token.KwDouble,
		token.KwStruct, token.KwEnum, token.KwConst:
		return true
	case token.Ident:
		if p.pos+1 < len(p.toks) {
			_, ok := p.typedefs[p.toks[p.pos+1].Text]
			return ok
		}
	}
	return false
}

func (p *parser) unaryExpr() (ast.Expr, error) {
	pos := p.tok().Pos
	switch p.kind() {
	case token.Plus:
		p.next()
		return p.unaryExpr()
	case token.Minus, token.Tilde, token.Not, token.Star, token.Amp:
		op := p.next().Kind
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &ast.Unary{ExprBase: ast.ExprBase{P: pos}, Op: op, X: x}, nil
	case token.Inc, token.Dec:
		op := p.next().Kind
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &ast.Unary{ExprBase: ast.ExprBase{P: pos}, Op: op, X: x}, nil
	case token.KwSizeof:
		p.next()
		if p.isCastStart() {
			p.next() // (
			ty, err := p.typeName()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(token.RParen); err != nil {
				return nil, err
			}
			return &ast.SizeofType{ExprBase: ast.ExprBase{P: pos}, Of: ty}, nil
		}
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &ast.SizeofType{ExprBase: ast.ExprBase{P: pos}, X: x}, nil
	}
	if p.isCastStart() {
		p.next() // (
		ty, err := p.typeName()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RParen); err != nil {
			return nil, err
		}
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &ast.Cast{ExprBase: ast.ExprBase{P: pos}, To: ty, X: x}, nil
	}
	return p.postfixExpr()
}

func (p *parser) postfixExpr() (ast.Expr, error) {
	x, err := p.primaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		pos := p.tok().Pos
		switch p.kind() {
		case token.LBrack:
			p.next()
			i, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(token.RBrack); err != nil {
				return nil, err
			}
			x = &ast.Index{ExprBase: ast.ExprBase{P: pos}, X: x, I: i}
		case token.LParen:
			p.next()
			call := &ast.Call{ExprBase: ast.ExprBase{P: pos}, Fn: x}
			for !p.at(token.RParen) {
				a, err := p.assignExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if p.at(token.Comma) {
					p.next()
					continue
				}
				break
			}
			if _, err := p.expect(token.RParen); err != nil {
				return nil, err
			}
			x = call
		case token.Dot, token.Arrow:
			ptr := p.next().Kind == token.Arrow
			name, err := p.expect(token.Ident)
			if err != nil {
				return nil, err
			}
			x = &ast.Member{ExprBase: ast.ExprBase{P: pos}, X: x, Name: name.Text, PtrDeref: ptr}
		case token.Inc, token.Dec:
			op := p.next().Kind
			x = &ast.Postfix{ExprBase: ast.ExprBase{P: pos}, Op: op, X: x}
		default:
			return x, nil
		}
	}
}

func (p *parser) primaryExpr() (ast.Expr, error) {
	t := p.tok()
	switch t.Kind {
	case token.Ident:
		p.next()
		if v, ok := p.enums[t.Text]; ok {
			lit := &ast.IntLit{ExprBase: ast.ExprBase{P: t.Pos}, Val: v}
			return lit, nil
		}
		return &ast.Ident{ExprBase: ast.ExprBase{P: t.Pos}, Name: t.Text}, nil
	case token.IntLit, token.CharLit:
		p.next()
		lit := &ast.IntLit{ExprBase: ast.ExprBase{P: t.Pos}, Val: t.Int}
		if t.Uns {
			lit.SetType(ast.UInt)
		}
		return lit, nil
	case token.FloatLit:
		p.next()
		return &ast.FloatLit{ExprBase: ast.ExprBase{P: t.Pos}, Val: t.Float}, nil
	case token.StrLit:
		p.next()
		s := &ast.StrLit{ExprBase: ast.ExprBase{P: t.Pos}, Val: t.Str}
		p.file.Strings = append(p.file.Strings, s)
		return s, nil
	case token.LParen:
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RParen); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, p.errf("expected expression, found %v", t)
}

// constEval evaluates an integer constant expression (literals, enum
// constants folded by primaryExpr, sizeof, unary and binary operators,
// ?:). Used for array sizes, enum values and case labels.
func (p *parser) constEval(e ast.Expr) (int64, error) {
	v, err := constEval(e)
	if err != nil {
		return 0, &Error{Pos: e.Pos(), Msg: err.Error()}
	}
	return v, nil
}

func constEval(e ast.Expr) (int64, error) {
	switch n := e.(type) {
	case *ast.IntLit:
		return n.Val, nil
	case *ast.SizeofType:
		if n.Of != nil {
			return int64(n.Of.Size()), nil
		}
		return 0, fmt.Errorf("sizeof expr is not constant here")
	case *ast.Unary:
		x, err := constEval(n.X)
		if err != nil {
			return 0, err
		}
		switch n.Op {
		case token.Minus:
			return -x, nil
		case token.Tilde:
			return int64(int32(^uint32(x))), nil
		case token.Not:
			if x == 0 {
				return 1, nil
			}
			return 0, nil
		}
		return 0, fmt.Errorf("operator not allowed in constant expression")
	case *ast.Cast:
		return constEval(n.X)
	case *ast.Cond:
		c, err := constEval(n.C)
		if err != nil {
			return 0, err
		}
		if c != 0 {
			return constEval(n.X)
		}
		return constEval(n.Y)
	case *ast.Binary:
		a, err := constEval(n.X)
		if err != nil {
			return 0, err
		}
		b, err := constEval(n.Y)
		if err != nil {
			return 0, err
		}
		switch n.Op {
		case token.Plus:
			return int64(int32(a + b)), nil
		case token.Minus:
			return int64(int32(a - b)), nil
		case token.Star:
			return int64(int32(a * b)), nil
		case token.Slash:
			if b == 0 {
				return 0, fmt.Errorf("division by zero in constant expression")
			}
			return a / b, nil
		case token.Percent:
			if b == 0 {
				return 0, fmt.Errorf("division by zero in constant expression")
			}
			return a % b, nil
		case token.Shl:
			return int64(int32(uint32(a) << (uint32(b) & 31))), nil
		case token.Shr:
			return int64(int32(a) >> (uint32(b) & 31)), nil
		case token.Amp:
			return a & b, nil
		case token.Pipe:
			return a | b, nil
		case token.Caret:
			return a ^ b, nil
		case token.EqEq:
			return b2i(a == b), nil
		case token.NotEq:
			return b2i(a != b), nil
		case token.Lt:
			return b2i(a < b), nil
		case token.Gt:
			return b2i(a > b), nil
		case token.Le:
			return b2i(a <= b), nil
		case token.Ge:
			return b2i(a >= b), nil
		case token.AndAnd:
			return b2i(a != 0 && b != 0), nil
		case token.OrOr:
			return b2i(a != 0 || b != 0), nil
		}
	}
	return 0, fmt.Errorf("expression is not constant")
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
