package parse

import (
	"omniware/internal/cc/ast"
	"omniware/internal/cc/token"
)

func (p *parser) block() (*ast.Block, error) {
	pos := p.tok().Pos
	if _, err := p.expect(token.LBrace); err != nil {
		return nil, err
	}
	b := &ast.Block{StmtBase: ast.StmtBase{P: pos}}
	for !p.at(token.RBrace) {
		if p.at(token.EOF) {
			return nil, p.errf("unexpected EOF in block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.List = append(b.List, s)
	}
	p.next()
	return b, nil
}

func (p *parser) stmt() (ast.Stmt, error) {
	pos := p.tok().Pos
	switch p.kind() {
	case token.LBrace:
		return p.block()

	case token.Semi:
		p.next()
		return &ast.Block{StmtBase: ast.StmtBase{P: pos}}, nil

	case token.KwIf:
		p.next()
		if _, err := p.expect(token.LParen); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RParen); err != nil {
			return nil, err
		}
		then, err := p.stmt()
		if err != nil {
			return nil, err
		}
		var els ast.Stmt
		if p.at(token.KwElse) {
			p.next()
			if els, err = p.stmt(); err != nil {
				return nil, err
			}
		}
		return &ast.If{StmtBase: ast.StmtBase{P: pos}, Cond: cond, Then: then, Else: els}, nil

	case token.KwWhile:
		p.next()
		if _, err := p.expect(token.LParen); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RParen); err != nil {
			return nil, err
		}
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		return &ast.While{StmtBase: ast.StmtBase{P: pos}, Cond: cond, Body: body}, nil

	case token.KwDo:
		p.next()
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.KwWhile); err != nil {
			return nil, err
		}
		if _, err := p.expect(token.LParen); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(token.Semi); err != nil {
			return nil, err
		}
		return &ast.DoWhile{StmtBase: ast.StmtBase{P: pos}, Body: body, Cond: cond}, nil

	case token.KwFor:
		p.next()
		if _, err := p.expect(token.LParen); err != nil {
			return nil, err
		}
		var init ast.Stmt
		if !p.at(token.Semi) {
			if p.isTypeStart() {
				d, err := p.declStmt()
				if err != nil {
					return nil, err
				}
				init = d
			} else {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				init = &ast.ExprStmt{StmtBase: ast.StmtBase{P: pos}, X: e}
				if _, err := p.expect(token.Semi); err != nil {
					return nil, err
				}
			}
		} else {
			p.next()
		}
		var cond ast.Expr
		var err error
		if !p.at(token.Semi) {
			if cond, err = p.expr(); err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(token.Semi); err != nil {
			return nil, err
		}
		var post ast.Expr
		if !p.at(token.RParen) {
			if post, err = p.expr(); err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(token.RParen); err != nil {
			return nil, err
		}
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		return &ast.For{StmtBase: ast.StmtBase{P: pos}, Init: init, Cond: cond, Post: post, Body: body}, nil

	case token.KwSwitch:
		p.next()
		if _, err := p.expect(token.LParen); err != nil {
			return nil, err
		}
		tag, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RParen); err != nil {
			return nil, err
		}
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		return &ast.Switch{StmtBase: ast.StmtBase{P: pos}, Tag: tag, Body: body}, nil

	case token.KwCase:
		p.next()
		e, err := p.condExpr()
		if err != nil {
			return nil, err
		}
		v, err := p.constEval(e)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.Colon); err != nil {
			return nil, err
		}
		return &ast.Case{StmtBase: ast.StmtBase{P: pos}, Val: e, Int: v}, nil

	case token.KwDefault:
		p.next()
		if _, err := p.expect(token.Colon); err != nil {
			return nil, err
		}
		return &ast.Case{StmtBase: ast.StmtBase{P: pos}}, nil

	case token.KwBreak:
		p.next()
		if _, err := p.expect(token.Semi); err != nil {
			return nil, err
		}
		return &ast.Break{StmtBase: ast.StmtBase{P: pos}}, nil

	case token.KwContinue:
		p.next()
		if _, err := p.expect(token.Semi); err != nil {
			return nil, err
		}
		return &ast.Continue{StmtBase: ast.StmtBase{P: pos}}, nil

	case token.KwReturn:
		p.next()
		var x ast.Expr
		var err error
		if !p.at(token.Semi) {
			if x, err = p.expr(); err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(token.Semi); err != nil {
			return nil, err
		}
		return &ast.Return{StmtBase: ast.StmtBase{P: pos}, X: x}, nil

	case token.KwGoto:
		p.next()
		name, err := p.expect(token.Ident)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.Semi); err != nil {
			return nil, err
		}
		return &ast.Goto{StmtBase: ast.StmtBase{P: pos}, Name: name.Text}, nil

	case token.Ident:
		// Label?
		if p.peekKind(1) == token.Colon {
			name := p.next().Text
			p.next() // :
			s, err := p.stmt()
			if err != nil {
				return nil, err
			}
			return &ast.Label{StmtBase: ast.StmtBase{P: pos}, Name: name, Stmt: s}, nil
		}
	}

	if p.isTypeStart() {
		return p.declStmt()
	}

	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.Semi); err != nil {
		return nil, err
	}
	return &ast.ExprStmt{StmtBase: ast.StmtBase{P: pos}, X: e}, nil
}

// declStmt parses a local declaration list, consuming the semicolon.
func (p *parser) declStmt() (*ast.DeclStmt, error) {
	pos := p.tok().Pos
	base, sto, err := p.declSpecifiers()
	if err != nil {
		return nil, err
	}
	if sto.typedef || sto.extern {
		return nil, p.errf("typedef/extern not supported at block scope")
	}
	ds := &ast.DeclStmt{StmtBase: ast.StmtBase{P: pos}}
	for {
		dpos := p.tok().Pos
		name, ty, err := p.declarator(base)
		if err != nil {
			return nil, err
		}
		if name == "" {
			return nil, p.errf("declarator requires a name")
		}
		if ty.Kind == ast.TFunc {
			return nil, p.errf("local function declarations not supported")
		}
		ld := &ast.LocalDecl{P: dpos, Name: name, Ty: ty}
		if p.at(token.Assign) {
			p.next()
			if p.at(token.LBrace) {
				vd := &ast.VarDecl{}
				if err := p.initializer(vd, ty); err != nil {
					return nil, err
				}
				ld.ArrInit = vd.List
			} else {
				e, err := p.assignExpr()
				if err != nil {
					return nil, err
				}
				if s, ok := e.(*ast.StrLit); ok && ty.Kind == ast.TArray && ty.Len == 0 {
					ty.Len = len(s.Val) + 1
				}
				ld.Init = e
			}
		}
		if ty.Kind == ast.TArray && ty.Len == 0 {
			return nil, p.errf("array %q has unknown size", name)
		}
		ds.Decls = append(ds.Decls, ld)
		if p.at(token.Comma) {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(token.Semi); err != nil {
		return nil, err
	}
	return ds, nil
}
