package gen

import (
	"fmt"

	"omniware/internal/cc/ir"
	"omniware/internal/cc/regalloc"
)

var aluNames = map[ir.Op]string{
	ir.Add: "add", ir.Sub: "sub", ir.Mul: "mul", ir.Div: "div",
	ir.DivU: "divu", ir.Rem: "rem", ir.RemU: "remu",
	ir.And: "and", ir.Or: "or", ir.Xor: "xor",
	ir.Shl: "sll", ir.Shr: "srl", ir.Sra: "sra",
}

var aluImmNames = map[ir.Op]string{
	ir.AddI: "addi", ir.MulI: "muli", ir.AndI: "andi", ir.OrI: "ori",
	ir.XorI: "xori", ir.ShlI: "slli", ir.ShrI: "srli", ir.SraI: "srai",
}

var fpNames = map[ir.Op][2]string{ // [ClassF, ClassD]
	ir.FAdd: {"fadds", "faddd"},
	ir.FSub: {"fsubs", "fsubd"},
	ir.FMul: {"fmuls", "fmuld"},
	ir.FDiv: {"fdivs", "fdivd"},
	ir.FNeg: {"fnegs", "fnegd"},
}

var brNames = map[ir.CC]string{
	ir.CCEq: "beq", ir.CCNe: "bne", ir.CCLt: "blt", ir.CCLe: "ble",
	ir.CCGt: "bgt", ir.CCGe: "bge", ir.CCLtU: "bltu", ir.CCLeU: "bleu",
	ir.CCGtU: "bgtu", ir.CCGeU: "bgeu",
}

// symOff renders sym+off / sym-off for the assembler.
func symOff(sym string, off int64) string {
	if off < 0 {
		return fmt.Sprintf("%s-%d", sym, -off)
	}
	return fmt.Sprintf("%s+%d", sym, off)
}

var memLoadNames = map[ir.MemOp]string{
	ir.MemB: "ldb", ir.MemBU: "ldbu", ir.MemH: "ldh", ir.MemHU: "ldhu",
	ir.MemW: "ldw", ir.MemF: "ldf", ir.MemD: "ldd",
}

var memStoreNames = map[ir.MemOp]string{
	ir.MemB: "stb", ir.MemBU: "stb", ir.MemH: "sth", ir.MemHU: "sth",
	ir.MemW: "stw", ir.MemF: "stf", ir.MemD: "std",
}

// memOperand renders the address operand of a Load/Store/Addr and
// returns (operandString, baseRegName). For indexed accesses it returns
// the "(rA+rB)" form.
func (c *fctx) memOperand(in *ir.Inst) string {
	if in.HasIdx {
		a := c.intUse(in.A, 0)
		x := c.intUse(in.Idx, 1)
		return fmt.Sprintf("(%s+%s)", a, x)
	}
	switch {
	case in.Sym != "":
		if in.Imm != 0 {
			return fmt.Sprintf("%s(r0)", symOff(in.Sym, in.Imm))
		}
		return fmt.Sprintf("%s(r0)", in.Sym)
	case in.Slot != ir.NoSlot:
		return fmt.Sprintf("%d(r14)", c.slotAddr(in.Slot, in.Imm))
	default:
		base := c.intUse(in.A, 0)
		return fmt.Sprintf("%d(%s)", in.Imm, base)
	}
}

func (c *fctx) inst(in *ir.Inst, blockIdx int) error {
	suffix := func(cls ir.Class) int {
		if cls == ir.ClassD {
			return 1
		}
		return 0
	}
	switch in.Op {
	case ir.Nop:

	case ir.Const:
		if in.Class == ir.ClassW {
			rd, flush := c.intDef(in.Dst)
			c.emitf("ldi %s, %d", rd, int32(in.Imm))
			flush()
		} else {
			fd, flush := c.fpDef(in.Dst)
			lbl := c.g.fconst(in.Class, in.FImm)
			if in.Class == ir.ClassD {
				c.emitf("ldd %s, %s(r0)", fd, lbl)
			} else {
				c.emitf("ldf %s, %s(r0)", fd, lbl)
			}
			flush()
		}

	case ir.Copy:
		if in.Class == ir.ClassW {
			rs := c.intUse(in.A, 0)
			rd, flush := c.intDef(in.Dst)
			if rd != rs {
				c.emitf("mov %s, %s", rd, rs)
			}
			flush()
		} else {
			fs := c.fpUse(in.A, 0)
			fd, flush := c.fpDef(in.Dst)
			if fd != fs {
				c.emitf("fmov %s, %s", fd, fs)
			}
			flush()
		}

	case ir.Add, ir.Sub, ir.Mul, ir.Div, ir.DivU, ir.Rem, ir.RemU,
		ir.And, ir.Or, ir.Xor, ir.Shl, ir.Shr, ir.Sra:
		ra := c.intUse(in.A, 0)
		rb := c.intUse(in.B, 1)
		rd, flush := c.intDef(in.Dst)
		c.emitf("%s %s, %s, %s", aluNames[in.Op], rd, ra, rb)
		flush()

	case ir.Neg:
		ra := c.intUse(in.A, 0)
		rd, flush := c.intDef(in.Dst)
		c.emitf("sub %s, r0, %s", rd, ra)
		flush()

	case ir.AddI, ir.MulI, ir.AndI, ir.OrI, ir.XorI, ir.ShlI, ir.ShrI, ir.SraI:
		ra := c.intUse(in.A, 0)
		rd, flush := c.intDef(in.Dst)
		c.emitf("%s %s, %s, %d", aluImmNames[in.Op], rd, ra, int32(in.Imm))
		flush()

	case ir.Set:
		if in.Class == ir.ClassW {
			c.setReg(in)
		} else {
			c.setFP(in)
		}

	case ir.SetI:
		c.setImm(in)

	case ir.FAdd, ir.FSub, ir.FMul, ir.FDiv:
		fa := c.fpUse(in.A, 0)
		fb := c.fpUse(in.B, 1)
		fd, flush := c.fpDef(in.Dst)
		c.emitf("%s %s, %s, %s", fpNames[in.Op][suffix(in.Class)], fd, fa, fb)
		flush()

	case ir.FNeg:
		fa := c.fpUse(in.A, 0)
		fd, flush := c.fpDef(in.Dst)
		c.emitf("%s %s, %s", fpNames[in.Op][suffix(in.Class)], fd, fa)
		flush()

	case ir.Cvt:
		c.cvt(in)

	case ir.Load:
		op := memLoadNames[in.Mem]
		if in.HasIdx {
			op += "x"
		}
		if in.Mem == ir.MemF || in.Mem == ir.MemD {
			fd, flush := c.fpDef(in.Dst)
			c.emitf("%s %s, %s", op, fd, c.memOperand(in))
			flush()
		} else {
			rd, flush := c.intDef(in.Dst)
			c.emitf("%s %s, %s", op, rd, c.memOperand(in))
			flush()
		}

	case ir.Store:
		op := memStoreNames[in.Mem]
		if in.HasIdx {
			op += "x"
		}
		// Value register uses scratch slot 1 if spilled? The address may
		// already use scratch 0 (base) and 1 (index). An indexed store
		// with a spilled value cannot happen: the fusion pass skips
		// stores whose value is spilled... it cannot know. Use the
		// second scratch for the value; indexed+spilled-value falls
		// back to the non-indexed form.
		if in.HasIdx && c.loc(in.B).Kind == regalloc.Spilled {
			a := c.intUse(in.A, 0)
			x := c.intUse(in.Idx, 1)
			c.emitf("add r%d, %s, %s", c.ra.ScratchInt[0], a, x)
			if in.Mem == ir.MemF || in.Mem == ir.MemD {
				fv := c.fpUse(in.B, 0)
				c.emitf("%s %s, 0(r%d)", memStoreNames[in.Mem], fv, c.ra.ScratchInt[0])
			} else {
				v := c.intUse(in.B, 1)
				c.emitf("%s %s, 0(r%d)", memStoreNames[in.Mem], v, c.ra.ScratchInt[0])
			}
			return nil
		}
		if in.Mem == ir.MemF || in.Mem == ir.MemD {
			fv := c.fpUse(in.B, 1)
			c.emitf("%s %s, %s", op, fv, c.memOperand(in))
		} else {
			// Render the value first so the address can use scratch 0.
			v := c.intUse(in.B, 1)
			c.emitf("%s %s, %s", op, v, c.memOperand(in))
		}

	case ir.Addr:
		rd, flush := c.intDef(in.Dst)
		switch {
		case in.Sym != "":
			if in.Imm != 0 {
				c.emitf("lda %s, %s", rd, symOff(in.Sym, in.Imm))
			} else {
				c.emitf("lda %s, %s", rd, in.Sym)
			}
		case in.Slot != ir.NoSlot:
			c.emitf("addi %s, r14, %d", rd, c.slotAddr(in.Slot, in.Imm))
		default:
			ra := c.intUse(in.A, 1)
			c.emitf("addi %s, %s, %d", rd, ra, in.Imm)
		}
		flush()

	case ir.Call:
		var fnReg string
		if in.Sym == "" {
			// Capture the target before argument moves clobber ABI regs.
			src := c.intUse(in.A, 0)
			fnReg = fmt.Sprintf("r%d", c.ra.ScratchInt[0])
			if src != fnReg {
				c.emitf("mov %s, %s", fnReg, src)
			}
		}
		c.callSetup(in)
		if in.Sym != "" {
			c.emitf("call %s", in.Sym)
		} else {
			c.emitf("jalr r15, %s", fnReg)
		}
		c.moveResult(in)

	case ir.Syscall:
		c.callSetup(in)
		c.emitf("syscall %d", in.Imm)
		c.moveResult(in)

	case ir.Ret:
		if in.A != ir.NoReg {
			if in.Class.IsFP() {
				fs := c.fpUse(in.A, 0)
				if fs != fmt.Sprintf("f%d", fpRet) {
					c.emitf("fmov f%d, %s", fpRet, fs)
				}
			} else {
				rs := c.intUse(in.A, 0)
				if rs != fmt.Sprintf("r%d", regRet) {
					c.emitf("mov r%d, %s", regRet, rs)
				}
			}
		}
		c.emitf("jmp %s", c.retLabel)

	case ir.Br:
		if in.Class == ir.ClassW {
			ra := c.intUse(in.A, 0)
			rb := c.intUse(in.B, 1)
			c.branch(brNames[in.CC], ra, rb, in, blockIdx)
		} else {
			c.fpBranch(in, blockIdx)
		}

	case ir.BrI:
		ra := c.intUse(in.A, 0)
		c.branch(brNames[in.CC]+"i", ra, fmt.Sprintf("%d", int32(in.Imm)), in, blockIdx)

	case ir.Jmp:
		if !c.isNext(in.Then, blockIdx) {
			c.emitf("jmp %s", c.blockLabel(in.Then))
		}

	default:
		return fmt.Errorf("unhandled IR op %v", in.Op)
	}
	return nil
}

// isNext reports whether block id is laid out immediately after the
// block at blockIdx.
func (c *fctx) isNext(id, blockIdx int) bool {
	return blockIdx+1 < len(c.fn.Blocks) && c.fn.Blocks[blockIdx+1].ID == id
}

// branch emits a conditional branch followed by a jump to the else
// block when it does not fall through.
func (c *fctx) branch(op, a, b string, in *ir.Inst, blockIdx int) {
	if c.isNext(in.Then, blockIdx) && !c.isNext(in.Else, blockIdx) {
		// Invert so the fall-through is the then-block.
		inv := brNames[in.CC.Invert()]
		if in.Op == ir.BrI {
			inv = brNames[in.CC.Invert()] + "i"
		}
		c.emitf("%s %s, %s, %s", inv, a, b, c.blockLabel(in.Else))
		return
	}
	c.emitf("%s %s, %s, %s", op, a, b, c.blockLabel(in.Then))
	if !c.isNext(in.Else, blockIdx) {
		c.emitf("jmp %s", c.blockLabel(in.Else))
	}
}

// fpBranch emits FP compare-and-branch; OmniVM provides eq/ne/lt/le, so
// gt/ge swap operands.
func (c *fctx) fpBranch(in *ir.Inst, blockIdx int) {
	fa := c.fpUse(in.A, 0)
	fb := c.fpUse(in.B, 1)
	cc := in.CC
	a, b := fa, fb
	switch cc {
	case ir.CCGt:
		cc, a, b = ir.CCLt, fb, fa
	case ir.CCGe:
		cc, a, b = ir.CCLe, fb, fa
	}
	var op string
	switch cc {
	case ir.CCEq:
		op = "fbeq"
	case ir.CCNe:
		op = "fbne"
	case ir.CCLt:
		op = "fblt"
	case ir.CCLe:
		op = "fble"
	default:
		op = "fbne"
	}
	if c.isNext(in.Then, blockIdx) && !c.isNext(in.Else, blockIdx) {
		// Invert: eq<->ne, lt -> ge (swap to le), le -> gt (swap to lt).
		switch op {
		case "fbeq":
			op = "fbne"
		case "fbne":
			op = "fbeq"
		case "fblt":
			op, a, b = "fble", b, a
		case "fble":
			op, a, b = "fblt", b, a
		}
		c.emitf("%s %s, %s, %s", op, a, b, c.blockLabel(in.Else))
		return
	}
	c.emitf("%s %s, %s, %s", op, a, b, c.blockLabel(in.Then))
	if !c.isNext(in.Else, blockIdx) {
		c.emitf("jmp %s", c.blockLabel(in.Else))
	}
}

// moveResult moves r1/f1 into the call's destination.
func (c *fctx) moveResult(in *ir.Inst) {
	if !in.HasDst() {
		return
	}
	if in.Class.IsFP() {
		fd, flush := c.fpDef(in.Dst)
		if fd != fmt.Sprintf("f%d", fpRet) {
			c.emitf("fmov %s, f%d", fd, fpRet)
		}
		flush()
	} else {
		rd, flush := c.intDef(in.Dst)
		if rd != fmt.Sprintf("r%d", regRet) {
			c.emitf("mov %s, r%d", rd, regRet)
		}
		flush()
	}
}

// setReg materializes an integer comparison result.
func (c *fctx) setReg(in *ir.Inst) {
	ra := c.intUse(in.A, 0)
	rb := c.intUse(in.B, 1)
	rd, flush := c.intDef(in.Dst)
	switch in.CC {
	case ir.CCEq:
		c.emitf("xor %s, %s, %s", rd, ra, rb)
		c.emitf("sltiu %s, %s, 1", rd, rd)
	case ir.CCNe:
		c.emitf("xor %s, %s, %s", rd, ra, rb)
		c.emitf("sltu %s, r0, %s", rd, rd)
	case ir.CCLt:
		c.emitf("slt %s, %s, %s", rd, ra, rb)
	case ir.CCLtU:
		c.emitf("sltu %s, %s, %s", rd, ra, rb)
	case ir.CCGt:
		c.emitf("slt %s, %s, %s", rd, rb, ra)
	case ir.CCGtU:
		c.emitf("sltu %s, %s, %s", rd, rb, ra)
	case ir.CCLe:
		c.emitf("slt %s, %s, %s", rd, rb, ra)
		c.emitf("xori %s, %s, 1", rd, rd)
	case ir.CCLeU:
		c.emitf("sltu %s, %s, %s", rd, rb, ra)
		c.emitf("xori %s, %s, 1", rd, rd)
	case ir.CCGe:
		c.emitf("slt %s, %s, %s", rd, ra, rb)
		c.emitf("xori %s, %s, 1", rd, rd)
	case ir.CCGeU:
		c.emitf("sltu %s, %s, %s", rd, ra, rb)
		c.emitf("xori %s, %s, 1", rd, rd)
	}
	flush()
}

// setImm materializes comparison-with-immediate.
func (c *fctx) setImm(in *ir.Inst) {
	ra := c.intUse(in.A, 0)
	rd, flush := c.intDef(in.Dst)
	imm := int32(in.Imm)
	switch in.CC {
	case ir.CCEq:
		c.emitf("xori %s, %s, %d", rd, ra, imm)
		c.emitf("sltiu %s, %s, 1", rd, rd)
	case ir.CCNe:
		c.emitf("xori %s, %s, %d", rd, ra, imm)
		c.emitf("sltu %s, r0, %s", rd, rd)
	case ir.CCLt:
		c.emitf("slti %s, %s, %d", rd, ra, imm)
	case ir.CCLtU:
		c.emitf("sltiu %s, %s, %d", rd, ra, imm)
	case ir.CCGe:
		c.emitf("slti %s, %s, %d", rd, ra, imm)
		c.emitf("xori %s, %s, 1", rd, rd)
	case ir.CCGeU:
		c.emitf("sltiu %s, %s, %d", rd, ra, imm)
		c.emitf("xori %s, %s, 1", rd, rd)
	case ir.CCLe:
		if imm == 0x7fffffff {
			c.emitf("ldi %s, 1", rd)
		} else {
			c.emitf("slti %s, %s, %d", rd, ra, imm+1)
		}
	case ir.CCLeU:
		if uint32(imm) == 0xffffffff {
			c.emitf("ldi %s, 1", rd)
		} else {
			c.emitf("sltiu %s, %s, %d", rd, ra, imm+1)
		}
	case ir.CCGt:
		if imm == 0x7fffffff {
			c.emitf("ldi %s, 0", rd)
		} else {
			c.emitf("slti %s, %s, %d", rd, ra, imm+1)
			c.emitf("xori %s, %s, 1", rd, rd)
		}
	case ir.CCGtU:
		if uint32(imm) == 0xffffffff {
			c.emitf("ldi %s, 0", rd)
		} else {
			c.emitf("sltiu %s, %s, %d", rd, ra, imm+1)
			c.emitf("xori %s, %s, 1", rd, rd)
		}
	}
	flush()
}

// setFP materializes an FP comparison via a short branch.
func (c *fctx) setFP(in *ir.Inst) {
	fa := c.fpUse(in.A, 0)
	fb := c.fpUse(in.B, 1)
	rd, flush := c.intDef(in.Dst)
	lbl := c.g.newLabel(c.fn.Name)
	cc := in.CC
	a, b := fa, fb
	switch cc {
	case ir.CCGt:
		cc, a, b = ir.CCLt, fb, fa
	case ir.CCGe:
		cc, a, b = ir.CCLe, fb, fa
	}
	op := map[ir.CC]string{ir.CCEq: "fbeq", ir.CCNe: "fbne", ir.CCLt: "fblt", ir.CCLe: "fble"}[cc]
	c.emitf("ldi %s, 1", rd)
	c.emitf("%s %s, %s, %s", op, a, b, lbl)
	c.emitf("ldi %s, 0", rd)
	fmt.Fprintf(c.b, "%s:\n", lbl)
	flush()
}

// cvt emits conversions. Unsigned<->double conversions need short
// branchy sequences since OmniVM converts signed words only.
func (c *fctx) cvt(in *ir.Inst) {
	switch in.Cvt {
	case ir.CvtWtoD:
		ra := c.intUse(in.A, 0)
		fd, flush := c.fpDef(in.Dst)
		c.emitf("cvtwd %s, %s", fd, ra)
		flush()
	case ir.CvtWtoF:
		ra := c.intUse(in.A, 0)
		fd, flush := c.fpDef(in.Dst)
		c.emitf("cvtws %s, %s", fd, ra)
		flush()
	case ir.CvtDtoW:
		fa := c.fpUse(in.A, 0)
		rd, flush := c.intDef(in.Dst)
		c.emitf("cvtdw %s, %s", rd, fa)
		flush()
	case ir.CvtFtoW:
		fa := c.fpUse(in.A, 0)
		rd, flush := c.intDef(in.Dst)
		c.emitf("cvtsw %s, %s", rd, fa)
		flush()
	case ir.CvtDtoF:
		fa := c.fpUse(in.A, 0)
		fd, flush := c.fpDef(in.Dst)
		c.emitf("cvtds %s, %s", fd, fa)
		flush()
	case ir.CvtFtoD:
		fa := c.fpUse(in.A, 0)
		fd, flush := c.fpDef(in.Dst)
		c.emitf("cvtsd %s, %s", fd, fa)
		flush()
	case ir.CvtUtoD:
		// double(u) = double(int(u)) + (u < 0 signed ? 2^32 : 0).
		ra := c.intUse(in.A, 0)
		fd, flush := c.fpDef(in.Dst)
		ft := fmt.Sprintf("f%d", c.ra.ScratchFP[1])
		lbl := c.g.newLabel(c.fn.Name)
		c.emitf("cvtwd %s, %s", fd, ra)
		c.emitf("bgei %s, 0, %s", ra, lbl)
		c.emitf("ldd %s, %s(r0)", ft, c.g.fconst(ir.ClassD, 4294967296.0))
		c.emitf("faddd %s, %s, %s", fd, fd, ft)
		fmt.Fprintf(c.b, "%s:\n", lbl)
		flush()
	case ir.CvtDtoU:
		// u = d < 2^31 ? int(d) : int(d - 2^31) + 0x80000000.
		fa := c.fpUse(in.A, 0)
		rd, flush := c.intDef(in.Dst)
		ft := fmt.Sprintf("f%d", c.ra.ScratchFP[1])
		big := c.g.fconst(ir.ClassD, 2147483648.0)
		l1 := c.g.newLabel(c.fn.Name)
		l2 := c.g.newLabel(c.fn.Name)
		c.emitf("ldd %s, %s(r0)", ft, big)
		c.emitf("fble %s, %s, %s", ft, fa, l1)
		c.emitf("cvtdw %s, %s", rd, fa)
		c.emitf("jmp %s", l2)
		fmt.Fprintf(c.b, "%s:\n", l1)
		c.emitf("fsubd %s, %s, %s", ft, fa, ft)
		c.emitf("cvtdw %s, %s", rd, ft)
		c.emitf("xori %s, %s, %d", rd, rd, -2147483648)
		fmt.Fprintf(c.b, "%s:\n", l2)
		flush()
	}
}
