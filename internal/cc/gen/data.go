package gen

import (
	"fmt"
	"math"
	"strings"

	"omniware/internal/cc/ast"
	"omniware/internal/cc/token"
)

// initVal is one evaluated constant initializer element.
type initVal struct {
	isAddr bool
	sym    string
	addend int64
	i      int64
	f      float64
	isF    bool
}

// evalInit evaluates a constant initializer expression (sem has already
// validated constness).
func evalInit(e ast.Expr) (initVal, error) {
	switch n := e.(type) {
	case *ast.IntLit:
		return initVal{i: n.Val}, nil
	case *ast.FloatLit:
		return initVal{f: n.Val, isF: true}, nil
	case *ast.StrLit:
		return initVal{isAddr: true, sym: n.Label}, nil
	case *ast.Ident:
		return initVal{isAddr: true, sym: n.Name}, nil
	case *ast.Unary:
		switch n.Op {
		case token.Amp:
			if id, ok := n.X.(*ast.Ident); ok {
				return initVal{isAddr: true, sym: id.Name}, nil
			}
		case token.Minus:
			v, err := evalInit(n.X)
			if err != nil {
				return v, err
			}
			if v.isF {
				v.f = -v.f
			} else {
				v.i = -v.i
			}
			return v, nil
		}
	case *ast.Cast:
		v, err := evalInit(n.X)
		if err != nil {
			return v, err
		}
		// int<->float literal casts.
		if n.To.IsFloat() && !v.isF && !v.isAddr {
			return initVal{f: float64(v.i), isF: true}, nil
		}
		if n.To.IsInteger() && v.isF {
			return initVal{i: int64(v.f)}, nil
		}
		return v, nil
	case *ast.Binary:
		a, err := evalInit(n.X)
		if err != nil {
			return a, err
		}
		b, err := evalInit(n.Y)
		if err != nil {
			return b, err
		}
		if a.isAddr && !b.isAddr && !b.isF {
			switch n.Op {
			case token.Plus:
				a.addend += b.i
				return a, nil
			case token.Minus:
				a.addend -= b.i
				return a, nil
			}
		}
		if !a.isAddr && !b.isAddr && !a.isF && !b.isF {
			switch n.Op {
			case token.Plus:
				return initVal{i: a.i + b.i}, nil
			case token.Minus:
				return initVal{i: a.i - b.i}, nil
			case token.Star:
				return initVal{i: a.i * b.i}, nil
			case token.Slash:
				if b.i != 0 {
					return initVal{i: a.i / b.i}, nil
				}
			case token.Shl:
				return initVal{i: int64(int32(a.i) << (uint32(b.i) & 31))}, nil
			case token.Pipe:
				return initVal{i: a.i | b.i}, nil
			case token.Amp:
				return initVal{i: a.i & b.i}, nil
			}
		}
	}
	return initVal{}, fmt.Errorf("unsupported constant initializer %T", e)
}

// scalarDirective emits one scalar of type t with value v.
func scalarDirective(b *strings.Builder, t *ast.Type, v initVal) error {
	switch t.Kind {
	case ast.TChar, ast.TUChar:
		fmt.Fprintf(b, "\t.byte %d\n", uint8(v.i))
	case ast.TShort, ast.TUShort:
		fmt.Fprintf(b, "\t.half %d\n", uint16(v.i))
	case ast.TFloat:
		x := v.f
		if !v.isF {
			x = float64(v.i)
		}
		fmt.Fprintf(b, "\t.float %g\n", float32(x))
	case ast.TDouble:
		x := v.f
		if !v.isF {
			x = float64(v.i)
		}
		if x == math.Trunc(x) && math.Abs(x) < 1e15 {
			fmt.Fprintf(b, "\t.double %.1f\n", x)
		} else {
			fmt.Fprintf(b, "\t.double %v\n", x)
		}
	default: // int, unsigned, pointers
		if v.isAddr {
			if v.addend != 0 {
				fmt.Fprintf(b, "\t.word %s+%d\n", v.sym, v.addend)
			} else {
				fmt.Fprintf(b, "\t.word %s\n", v.sym)
			}
		} else {
			fmt.Fprintf(b, "\t.word %d\n", uint32(v.i))
		}
	}
	return nil
}

// flatFields returns the scalar element types of t in layout order with
// their offsets.
func flatFields(t *ast.Type) []struct {
	off int
	ty  *ast.Type
} {
	var out []struct {
		off int
		ty  *ast.Type
	}
	var walk func(off int, ty *ast.Type)
	walk = func(off int, ty *ast.Type) {
		switch ty.Kind {
		case ast.TArray:
			for i := 0; i < ty.Len; i++ {
				walk(off+i*ty.Elem.Size(), ty.Elem)
			}
		case ast.TStruct:
			for _, f := range ty.Fields {
				walk(off+f.Offset, f.Type)
			}
		default:
			out = append(out, struct {
				off int
				ty  *ast.Type
			}{off, ty})
		}
	}
	walk(0, t)
	return out
}

func (g *generator) emitData(b *strings.Builder) {
	wroteData := false
	dataHeader := func() {
		if !wroteData {
			b.WriteString("\n.data\n")
			wroteData = true
		}
	}

	// String literals.
	for _, s := range g.file.Strings {
		dataHeader()
		fmt.Fprintf(b, "%s:\n\t.asciz %q\n", s.Label, s.Val)
	}

	// Float constant pool.
	if len(g.fconstSeq) > 0 {
		dataHeader()
		b.WriteString("\t.align 8\n")
		for _, key := range g.fconstSeq {
			lbl := g.fconsts[key]
			var bits uint64
			fmt.Sscanf(key[2:], "%x", &bits)
			v := math.Float64frombits(bits)
			if key[0] == 'd' {
				if v == math.Trunc(v) && math.Abs(v) < 1e15 {
					fmt.Fprintf(b, "%s:\n\t.double %.1f\n", lbl, v)
				} else {
					fmt.Fprintf(b, "%s:\n\t.double %v\n", lbl, v)
				}
			} else {
				fmt.Fprintf(b, "%s:\n\t.float %v\n", lbl, v)
			}
		}
	}

	// Globals: initialized to .data, uninitialized to .bss. Extern
	// declarations emit nothing.
	var bssVars []*ast.VarDecl
	for _, v := range g.file.Vars {
		if v.Extern {
			continue
		}
		if v.Init == nil && len(v.List) == 0 {
			bssVars = append(bssVars, v)
			continue
		}
		dataHeader()
		fmt.Fprintf(b, "\t.align %d\n", max(v.Ty.Align(), 4))
		if !v.Static {
			fmt.Fprintf(b, ".globl %s\n", v.Name)
		}
		fmt.Fprintf(b, "%s:\n", v.Name)
		g.emitInitialized(b, v)
	}
	if len(bssVars) > 0 {
		b.WriteString("\n.bss\n")
		for _, v := range bssVars {
			fmt.Fprintf(b, "\t.align %d\n", max(v.Ty.Align(), 4))
			if !v.Static {
				fmt.Fprintf(b, ".globl %s\n", v.Name)
			}
			fmt.Fprintf(b, "%s:\n\t.space %d\n", v.Name, max(v.Ty.Size(), 4))
		}
	}
}

func (g *generator) emitInitialized(b *strings.Builder, v *ast.VarDecl) {
	// char array initialized from a string literal.
	if s, ok := v.Init.(*ast.StrLit); ok && v.Ty.Kind == ast.TArray {
		fmt.Fprintf(b, "\t.asciz %q\n", s.Val)
		if pad := v.Ty.Size() - (len(s.Val) + 1); pad > 0 {
			fmt.Fprintf(b, "\t.space %d\n", pad)
		}
		return
	}
	if v.Init != nil {
		val, err := evalInit(v.Init)
		if err != nil {
			fmt.Fprintf(b, "\t.word 0 # init error: %v\n", err)
			return
		}
		scalarDirective(b, v.Ty, val)
		return
	}
	// Brace list over the flattened scalar layout.
	fields := flatFields(v.Ty)
	emitted := 0
	for i, e := range v.List {
		if i >= len(fields) {
			break
		}
		// Pad gap between previous element end and this offset.
		if gap := fields[i].off - emitted; gap > 0 {
			fmt.Fprintf(b, "\t.space %d\n", gap)
			emitted += gap
		}
		val, err := evalInit(e)
		if err != nil {
			fmt.Fprintf(b, "\t.word 0 # init error: %v\n", err)
		} else {
			scalarDirective(b, fields[i].ty, val)
		}
		emitted += fields[i].ty.Size()
	}
	if rest := v.Ty.Size() - emitted; rest > 0 {
		fmt.Fprintf(b, "\t.space %d\n", rest)
	}
}
