package gen

import (
	"fmt"
	"strings"

	"omniware/internal/cc/ir"
	"omniware/internal/cc/regalloc"
)

// fctx is per-function emission state.
type fctx struct {
	g  *generator
	fn *ir.Func
	ra *regalloc.Result
	fr *frame
	b  *strings.Builder

	retLabel string
}

func (g *generator) genFunc(b *strings.Builder, fn *ir.Func) error {
	intRegs, intCallee := g.intRegConfig()
	fpRegs, fpCallee := g.fpRegConfig()
	ra, err := regalloc.Allocate(fn, regalloc.Config{
		IntRegs:        intRegs,
		FPRegs:         fpRegs,
		IntCalleeSaved: intCallee,
		FPCalleeSaved:  fpCallee,
	})
	if err != nil {
		return fmt.Errorf("gen: %s: %w", fn.Name, err)
	}
	fr := buildFrame(fn, ra)
	c := &fctx{g: g, fn: fn, ra: ra, fr: fr, b: b, retLabel: fmt.Sprintf(".Lret_%s", fn.Name)}

	fmt.Fprintf(b, "\n.globl %s\n%s:\n", fn.Name, fn.Name)
	// Prologue.
	c.emitf("addi r14, r14, %d", -fr.size)
	c.emitf("stw r15, %d(r14)", fr.raOff)
	for _, s := range fr.intSaves {
		c.emitf("stw r%d, %d(r14)", s.reg, s.off)
	}
	for _, s := range fr.fpSaves {
		c.emitf("std f%d, %d(r14)", s.reg, s.off)
	}
	c.prologueParams()

	for bi, blk := range fn.Blocks {
		fmt.Fprintf(b, ".L%s_%d:\n", fn.Name, blk.ID)
		for i := range blk.Insts {
			if err := c.inst(&blk.Insts[i], bi); err != nil {
				return fmt.Errorf("gen: %s: %w", fn.Name, err)
			}
		}
	}

	// Epilogue.
	fmt.Fprintf(b, "%s:\n", c.retLabel)
	for _, s := range fr.fpSaves {
		c.emitf("ldd f%d, %d(r14)", s.reg, s.off)
	}
	for _, s := range fr.intSaves {
		c.emitf("ldw r%d, %d(r14)", s.reg, s.off)
	}
	c.emitf("ldw r15, %d(r14)", fr.raOff)
	c.emitf("addi r14, r14, %d", fr.size)
	c.emitf("jr r15")
	return nil
}

func (c *fctx) emitf(format string, args ...any) {
	c.b.WriteByte('\t')
	fmt.Fprintf(c.b, format, args...)
	c.b.WriteByte('\n')
}

func (c *fctx) blockLabel(id int) string { return fmt.Sprintf(".L%s_%d", c.fn.Name, id) }

// slotAddr returns the sp-relative offset of slot index s plus extra.
func (c *fctx) slotAddr(s int, extra int64) int64 {
	return int64(c.fr.slotOff[s]) + extra
}

// ---- value access ----

func (c *fctx) loc(v ir.VReg) regalloc.Loc { return c.ra.Loc[v] }

// intUse returns the register name holding integer vreg v, loading a
// spilled value into scratch (0 or 1) if needed.
func (c *fctx) intUse(v ir.VReg, scratch int) string {
	l := c.loc(v)
	if l.Kind == regalloc.InReg {
		return fmt.Sprintf("r%d", l.Reg)
	}
	s := c.ra.ScratchInt[scratch]
	c.emitf("ldw r%d, %d(r14)", s, c.slotAddr(l.Slot, 0))
	return fmt.Sprintf("r%d", s)
}

// intDef returns the register name to compute integer vreg v into and a
// flush function storing it back if spilled.
func (c *fctx) intDef(v ir.VReg) (string, func()) {
	l := c.loc(v)
	if l.Kind == regalloc.InReg {
		return fmt.Sprintf("r%d", l.Reg), func() {}
	}
	s := c.ra.ScratchInt[0]
	return fmt.Sprintf("r%d", s), func() {
		c.emitf("stw r%d, %d(r14)", s, c.slotAddr(l.Slot, 0))
	}
}

func (c *fctx) fpUse(v ir.VReg, scratch int) string {
	l := c.loc(v)
	if l.Kind == regalloc.InReg {
		return fmt.Sprintf("f%d", l.Reg)
	}
	s := c.ra.ScratchFP[scratch]
	c.emitf("ldd f%d, %d(r14)", s, c.slotAddr(l.Slot, 0))
	return fmt.Sprintf("f%d", s)
}

func (c *fctx) fpDef(v ir.VReg) (string, func()) {
	l := c.loc(v)
	if l.Kind == regalloc.InReg {
		return fmt.Sprintf("f%d", l.Reg), func() {}
	}
	s := c.ra.ScratchFP[0]
	return fmt.Sprintf("f%d", s), func() {
		c.emitf("std f%d, %d(r14)", s, c.slotAddr(l.Slot, 0))
	}
}

// ---- parallel moves ----

// mv is one pending move for the resolver. Exactly one of the src
// fields and one of the dst fields is active (reg >= 0 or slot >= 0).
type mv struct {
	fp              bool
	srcReg, srcSlot int // srcSlot is an sp offset (already resolved)
	dstReg, dstSlot int // dstSlot is an sp offset
}

// resolveMoves emits a set of parallel moves. scratchI/scratchF break
// cycles.
func (c *fctx) resolveMoves(moves []mv, scratchI, scratchF int) {
	// Slot destinations never conflict; emit them first.
	var regMoves []mv
	for _, m := range moves {
		if m.dstSlot >= 0 {
			if m.fp {
				src := m.srcReg
				if m.srcSlot >= 0 {
					c.emitf("ldd f%d, %d(r14)", scratchF, m.srcSlot)
					src = scratchF
				}
				c.emitf("std f%d, %d(r14)", src, m.dstSlot)
			} else {
				src := m.srcReg
				if m.srcSlot >= 0 {
					c.emitf("ldw r%d, %d(r14)", scratchI, m.srcSlot)
					src = scratchI
				}
				c.emitf("stw r%d, %d(r14)", src, m.dstSlot)
			}
			continue
		}
		if m.srcSlot < 0 && m.srcReg == m.dstReg {
			continue // no-op
		}
		regMoves = append(regMoves, m)
	}
	for len(regMoves) > 0 {
		progress := false
		for i := 0; i < len(regMoves); i++ {
			m := regMoves[i]
			// Can we emit m? Its dst must not be the src of another
			// pending move of the same class.
			blocked := false
			for j, o := range regMoves {
				if j == i || o.fp != m.fp {
					continue
				}
				if o.srcSlot < 0 && o.srcReg == m.dstReg {
					blocked = true
					break
				}
			}
			if blocked {
				continue
			}
			c.emitMv(m)
			regMoves = append(regMoves[:i], regMoves[i+1:]...)
			progress = true
			i--
		}
		if progress {
			continue
		}
		// Cycle: rotate through scratch. Pick the first reg-reg move,
		// stash its source.
		m := regMoves[0]
		if m.fp {
			c.emitf("fmov f%d, f%d", scratchF, m.srcReg)
		} else {
			c.emitf("mov r%d, r%d", scratchI, m.srcReg)
		}
		for i := range regMoves {
			if regMoves[i].fp == m.fp && regMoves[i].srcSlot < 0 && regMoves[i].srcReg == m.srcReg {
				if m.fp {
					regMoves[i].srcReg = scratchF
				} else {
					regMoves[i].srcReg = scratchI
				}
			}
		}
	}
}

func (c *fctx) emitMv(m mv) {
	if m.fp {
		if m.srcSlot >= 0 {
			c.emitf("ldd f%d, %d(r14)", m.dstReg, m.srcSlot)
		} else if m.srcReg != m.dstReg {
			c.emitf("fmov f%d, f%d", m.dstReg, m.srcReg)
		}
		return
	}
	if m.srcSlot >= 0 {
		c.emitf("ldw r%d, %d(r14)", m.dstReg, m.srcSlot)
	} else if m.srcReg != m.dstReg {
		c.emitf("mov r%d, r%d", m.dstReg, m.srcReg)
	}
}

// prologueParams moves incoming parameters (ABI regs / caller stack)
// into their allocated homes.
func (c *fctx) prologueParams() {
	regs, stackOffs := paramHomes(c.fn)
	var moves []mv
	for i, p := range c.fn.Params {
		l := c.loc(p)
		fp := c.fn.PClasses[i].IsFP()
		m := mv{fp: fp, srcReg: -1, srcSlot: -1, dstReg: -1, dstSlot: -1}
		if regs[i] >= 0 {
			m.srcReg = regs[i]
		} else {
			m.srcSlot = c.fr.size + stackOffs[i]
		}
		if l.Kind == regalloc.InReg {
			m.dstReg = l.Reg
		} else {
			m.dstSlot = int(c.slotAddr(l.Slot, 0))
		}
		if m.srcReg >= 0 && m.dstReg == m.srcReg {
			continue
		}
		moves = append(moves, m)
	}
	c.resolveMoves(moves, c.ra.ScratchInt[1], c.ra.ScratchFP[1])
}

// callSetup moves argument values into ABI registers / the outgoing
// stack area, then returns.
func (c *fctx) callSetup(in *ir.Inst) {
	intMap, fpMap, _ := splitArgs(in)
	var moves []mv
	for i, a := range in.Args {
		cls := ir.ClassW
		if i < len(in.ACls) {
			cls = in.ACls[i]
		}
		l := c.loc(a)
		m := mv{fp: cls.IsFP(), srcReg: -1, srcSlot: -1, dstReg: -1, dstSlot: -1}
		if l.Kind == regalloc.InReg {
			m.srcReg = l.Reg
		} else {
			m.srcSlot = int(c.slotAddr(l.Slot, 0))
		}
		code := intMap[i]
		if cls.IsFP() {
			code = fpMap[i]
		}
		if code >= 0 {
			m.dstReg = code
		} else {
			m.dstSlot = -2 - code // outgoing area is at sp+0
		}
		moves = append(moves, m)
	}
	c.resolveMoves(moves, c.ra.ScratchInt[1], c.ra.ScratchFP[1])
}
