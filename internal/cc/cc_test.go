package cc

import (
	"strings"
	"testing"

	"omniware/internal/asm"
	"omniware/internal/hostapi"
	"omniware/internal/interp"
	"omniware/internal/link"
	"omniware/internal/ovm"
	"omniware/internal/seg"
)

// runC compiles, assembles, links and interprets an OmniC program,
// returning the exit code and captured output.
func runC(t *testing.T, src string, opts Options) (int32, string) {
	t.Helper()
	res, err := Compile("test.c", src, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	obj, err := asm.Assemble("test.s", res.Asm)
	if err != nil {
		t.Fatalf("assemble: %v\n--- asm ---\n%s", err, res.Asm)
	}
	crt, err := asm.Assemble("crt0.s", Crt0)
	if err != nil {
		t.Fatalf("crt0: %v", err)
	}
	mod, err := link.Link([]*ovm.Object{crt, obj}, link.Options{})
	if err != nil {
		t.Fatalf("link: %v\n--- asm ---\n%s", err, res.Asm)
	}
	var mem seg.Memory
	lay, err := hostapi.Load(&mem, mod, 1<<20, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	env := hostapi.NewEnv(&mem, lay, &out)
	mc := interp.New(mod, &mem, env)
	mc.MaxSteps = 50_000_000
	r, err := mc.Run()
	if err != nil {
		t.Fatalf("run: %v\n--- asm ---\n%s", err, res.Asm)
	}
	if r.Faulted {
		t.Fatalf("faulted: %s\n--- asm ---\n%s", r.Fault, res.Asm)
	}
	return r.ExitCode, out.String()
}

// runBoth runs at -O0 and -O2 and checks both agree with want.
func runBoth(t *testing.T, src string, want int32) {
	t.Helper()
	for _, lvl := range []int{0, 1, 2} {
		got, _ := runC(t, src, Options{OptLevel: lvl})
		if got != want {
			t.Errorf("O%d: got %d, want %d", lvl, got, want)
		}
	}
}

func TestReturnConstant(t *testing.T) {
	runBoth(t, "int main(void) { return 42; }", 42)
}

func TestArith(t *testing.T) {
	runBoth(t, `
int main(void) {
	int a = 6, b = 7;
	int c = a * b - 2;       /* 40 */
	int d = c / 3;           /* 13 */
	int e = c % 3;           /* 1 */
	return d * 3 + e + 2;    /* 42 */
}`, 42)
}

func TestUnsignedOps(t *testing.T) {
	runBoth(t, `
int main(void) {
	unsigned a = 0x80000000u;
	unsigned b = a >> 31;          /* 1 */
	int c = (int)a >> 31;          /* -1 */
	unsigned d = 4000000000u % 7u; /* 4000000000 % 7 = 3 */
	unsigned e = 4000000000u / 1000000000u; /* 4 */
	return (int)(b + d + e) + (c + 1); /* 1+3+4+0 = 8 */
}`, 8)
}

func TestGlobalsAndArrays(t *testing.T) {
	runBoth(t, `
int tab[5] = {1, 2, 3, 4, 5};
int sum;
int main(void) {
	int i;
	for (i = 0; i < 5; i++) sum += tab[i];
	return sum;
}`, 15)
}

func TestPointers(t *testing.T) {
	runBoth(t, `
int swap(int *a, int *b) {
	int t = *a;
	*a = *b;
	*b = t;
	return *a - *b;
}
int main(void) {
	int x = 3, y = 10;
	swap(&x, &y);
	return x * 10 + y;  /* 103 */
}`, 103)
}

func TestPointerWalk(t *testing.T) {
	runBoth(t, `
int data[6] = {1, 2, 3, 4, 5, 6};
int main(void) {
	int *p = data;
	int *end = data + 6;
	int acc = 0;
	while (p < end) acc += *p++;
	return acc + (end - data);  /* 21 + 6 */
}`, 27)
}

func TestStrings(t *testing.T) {
	code, out := runC(t, `
int len(char *s) {
	int n = 0;
	while (*s++) n++;
	return n;
}
int main(void) {
	char *msg = "hello";
	_puts(msg);
	return len(msg);
}`, Options{OptLevel: 2})
	if code != 5 || out != "hello" {
		t.Errorf("code=%d out=%q", code, out)
	}
}

func TestStructs(t *testing.T) {
	runBoth(t, `
struct point { int x; int y; };
struct rect { struct point a; struct point b; };
struct rect r = {{1, 2}, {10, 20}};
int area(struct rect *p) {
	return (p->b.x - p->a.x) * (p->b.y - p->a.y);
}
int main(void) {
	struct rect local;
	local = r;
	local.b.y = 22;
	return area(&local);  /* 9 * 20 = 180 */
}`, 180)
}

func TestLinkedList(t *testing.T) {
	runBoth(t, `
struct node { int val; struct node *next; };
struct node nodes[5];
int main(void) {
	int i;
	struct node *head = 0;
	for (i = 0; i < 5; i++) {
		nodes[i].val = i + 1;
		nodes[i].next = head;
		head = &nodes[i];
	}
	int sum = 0;
	while (head) {
		sum = sum * 10 + head->val;
		head = head->next;
	}
	return sum % 10000;  /* 54321 % 10000 = 4321 */
}`, 4321)
}

func TestRecursion(t *testing.T) {
	runBoth(t, `
int fib(int n) {
	if (n < 2) return n;
	return fib(n - 1) + fib(n - 2);
}
int main(void) { return fib(15); }  /* 610 */
`, 610)
}

func TestManyArgs(t *testing.T) {
	runBoth(t, `
int sum8(int a, int b, int c, int d, int e, int f, int g, int h) {
	return a + 2*b + 3*c + 4*d + 5*e + 6*f + 7*g + 8*h;
}
int main(void) {
	return sum8(1, 1, 1, 1, 1, 1, 1, 1);  /* 36 */
}`, 36)
}

func TestDoubles(t *testing.T) {
	runBoth(t, `
double half(double x) { return x / 2.0; }
int main(void) {
	double a = 10.5;
	double b = half(a) + 0.75;  /* 6.0 */
	float f = 2.5f;
	b = b * (double)f;          /* 15.0 */
	return (int)b;
}`, 15)
}

func TestFPCompareAndMixedArgs(t *testing.T) {
	runBoth(t, `
int classify(double x, int scale, double y) {
	if (x * (double)scale > y) return 1;
	if (x < 0.0) return -1;
	return 0;
}
int main(void) {
	return classify(1.5, 4, 5.0) + classify(-2.0, 1, 5.0) + 1; /* 1 + -1 + 1 */
}`, 1)
}

func TestUnsignedDoubleConv(t *testing.T) {
	runBoth(t, `
int main(void) {
	unsigned u = 3000000000u;
	double d = (double)u;
	unsigned v = (unsigned)d;
	return v == u && d > 2.9e9;
}`, 1)
}

func TestSwitch(t *testing.T) {
	runBoth(t, `
int pick(int x) {
	switch (x) {
	case 0: return 10;
	case 1:
	case 2: return 20;
	case 5: return 50;
	default: return -1;
	}
}
int fall(int x) {
	int acc = 0;
	switch (x) {
	case 1: acc += 1;
	case 2: acc += 2;
	case 3: acc += 3; break;
	case 4: acc += 100;
	}
	return acc;
}
int main(void) {
	return pick(0) + pick(2) + pick(5) + pick(9) + fall(1) + fall(3);
	/* 10+20+50-1+6+3 = 88 */
}`, 88)
}

func TestShortCircuit(t *testing.T) {
	runBoth(t, `
int calls;
int bump(int v) { calls++; return v; }
int main(void) {
	calls = 0;
	int a = bump(0) && bump(1);  /* 1 call */
	int b = bump(1) || bump(1);  /* 1 call */
	int c = bump(1) && bump(2);  /* 2 calls */
	return calls * 100 + a * 10 + b + c;  /* 400 + 0 + 1 + 1 */
}`, 402)
}

func TestTernaryAndComma(t *testing.T) {
	runBoth(t, `
int main(void) {
	int i, acc = 0;
	for (i = 0; i < 6; i++, acc += 2) {
		acc += (i % 2 == 0) ? 10 : 1;
	}
	return acc;  /* 3*10 + 3*1 + 12 = 45 */
}`, 45)
}

func TestCharShortTypes(t *testing.T) {
	runBoth(t, `
int main(void) {
	char c = 200;        /* -56 */
	unsigned char uc = 200;
	short s = 40000;     /* -25536 */
	unsigned short us = 40000;
	int r = 0;
	if (c < 0) r += 1;
	if (uc == 200) r += 2;
	if (s < 0) r += 4;
	if (us == 40000) r += 8;
	c = c + 100;         /* 44 */
	if (c == 44) r += 16;
	return r;
}`, 31)
}

func TestGotoAndLabels(t *testing.T) {
	runBoth(t, `
int main(void) {
	int i = 0, acc = 0;
loop:
	acc += i;
	i++;
	if (i < 10) goto loop;
	return acc;  /* 45 */
}`, 45)
}

func TestFunctionPointers(t *testing.T) {
	runBoth(t, `
int add(int a, int b) { return a + b; }
int mul(int a, int b) { return a * b; }
int (*ops[2])(int, int) = {add, mul};
int apply(int (*f)(int, int), int a, int b) { return f(a, b); }
int main(void) {
	int r = apply(ops[0], 3, 4);   /* 7 */
	r += apply(ops[1], 3, 4);      /* +12 */
	int (*g)(int, int) = mul;
	r += (*g)(2, 5);               /* +10 */
	return r;
}`, 29)
}

func TestSbrkMalloc(t *testing.T) {
	runBoth(t, `
char *alloc(int n) {
	char *p = _sbrk(n);
	return p;
}
int main(void) {
	int *a = (int *)alloc(40);
	int i;
	for (i = 0; i < 10; i++) a[i] = i * i;
	int sum = 0;
	for (i = 0; i < 10; i++) sum += a[i];
	return sum;  /* 285 */
}`, 285)
}

func TestLocalArraysAndInit(t *testing.T) {
	runBoth(t, `
int main(void) {
	int tab[4] = {10, 20, 30, 40};
	char name[] = "abc";
	int i, acc = 0;
	for (i = 0; i < 4; i++) acc += tab[i];
	for (i = 0; name[i]; i++) acc += name[i] - 'a';
	return acc;  /* 100 + 0+1+2 */
}`, 103)
}

func TestMultiDimArrays(t *testing.T) {
	runBoth(t, `
int m[3][4];
int main(void) {
	int i, j;
	for (i = 0; i < 3; i++)
		for (j = 0; j < 4; j++)
			m[i][j] = i * 4 + j;
	int acc = 0;
	for (i = 0; i < 3; i++) acc += m[i][i];
	return acc + m[2][3];  /* 0+5+10 + 11 = 26 */
}`, 26)
}

func TestCompoundAssign(t *testing.T) {
	runBoth(t, `
int main(void) {
	int a = 100;
	a += 5; a -= 3; a *= 2; a /= 4; a %= 40;  /* 204/4=51 %40=11 */
	a <<= 3; a >>= 1;  /* 44 */
	a |= 3; a &= 0x3e; a ^= 2;  /* 47 & 0x3e = 46 ^2 = 44 */
	unsigned u = 0x80000000u;
	u >>= 4;
	double d = 3.0;
	d *= 2.0; d += 1.5;  /* 7.5 */
	return a + (int)(u >> 24) + (int)d;  /* 44 + 8 + 7 */
}`, 59)
}

func TestSideEffectsInConditions(t *testing.T) {
	runBoth(t, `
int main(void) {
	int n = 0, acc = 0;
	while (n++ < 5) acc += n;
	/* n: 1..5 added -> 15 */
	int i = 10;
	do { acc += --i; } while (i > 7);
	/* 9+8+7 = 24 */
	return acc;  /* 39 */
}`, 39)
}

func TestStaticsAndScope(t *testing.T) {
	runBoth(t, `
static int counter = 5;
static int bump(void) { return ++counter; }
int main(void) {
	bump(); bump();
	{ int counter = 100; counter++; }
	return counter;  /* 7 */
}`, 7)
}

func TestTypedefEnum(t *testing.T) {
	runBoth(t, `
typedef unsigned int uint;
typedef struct pair { int a; int b; } Pair;
enum { RED, GREEN = 5, BLUE };
int main(void) {
	Pair p;
	uint x = 3;
	p.a = RED; p.b = BLUE;
	return p.a + p.b + (int)x + GREEN;  /* 0+6+3+5 */
}`, 14)
}

func TestWriteAndClock(t *testing.T) {
	code, out := runC(t, `
int main(void) {
	unsigned t0 = _clock();
	_write("xyz", 3);
	unsigned t1 = _clock();
	return t1 >= t0;
}`, Options{OptLevel: 2})
	if code != 1 || out != "xyz" {
		t.Errorf("code=%d out=%q", code, out)
	}
}

func TestOptimizationPreservesOutput(t *testing.T) {
	// A mixed workload with output; -O0 and -O2 must match exactly.
	src := `
int buf[64];
int hash(int x) { return (x * 2654435761u) >> 24; }
int main(void) {
	int i;
	for (i = 0; i < 64; i++) buf[i] = hash(i) ^ (i << 2);
	int acc = 0;
	for (i = 0; i < 64; i += 3) acc += buf[i];
	_print_int(acc);
	_putc('\n');
	return acc & 0x7f;
}`
	c0, o0 := runC(t, src, Options{OptLevel: 0})
	c2, o2 := runC(t, src, Options{OptLevel: 2})
	if c0 != c2 || o0 != o2 {
		t.Errorf("O0: %d %q, O2: %d %q", c0, o0, c2, o2)
	}
}

func TestRegisterPressure(t *testing.T) {
	// Many simultaneously live values force spills.
	src := `
int main(void) {
	int a = 1, b = 2, c = 3, d = 4, e = 5, f = 6, g = 7, h = 8;
	int i = 9, j = 10, k = 11, l = 12, m = 13, n = 14, o = 15, p = 16;
	int q = a*b + c, r = d*e + f, s = g*h + i, t = j*k + l;
	int u = m*n + o, v = p + q + r;
	return a+b+c+d+e+f+g+h+i+j+k+l+m+n+o+p+q+r+s+t+u+v;
}`
	// sums: 1..16=136, q=5,r=26,s=65,t=122,u=197,v=47 => 136+5+26+65+122+197+47=598
	runBoth(t, src, 598)
}

func TestSmallRegisterFile(t *testing.T) {
	src := `
int fib(int n) {
	if (n < 2) return n;
	return fib(n - 1) + fib(n - 2);
}
int main(void) {
	int acc = fib(10);          /* 55 */
	int i;
	for (i = 0; i < 4; i++) acc += i * i;  /* +14 */
	return acc;
}`
	for _, k := range []int{8, 10, 12, 14, 16} {
		got, _ := runC(t, src, Options{OptLevel: 2, IntRegFile: k})
		if got != 69 {
			t.Errorf("K=%d: got %d, want 69", k, got)
		}
	}
}

func TestTwoUnitLink(t *testing.T) {
	src1 := `
extern int shared;
int helper(int);
int main(void) { shared = 3; return helper(4); }
`
	src2 := `
int shared;
int helper(int x) { return shared * 10 + x; }
`
	r1, err := Compile("a.c", src1, Options{OptLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Compile("b.c", src2, Options{OptLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	o1, err := asm.Assemble("a.s", r1.Asm)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := asm.Assemble("b.s", r2.Asm)
	if err != nil {
		t.Fatal(err)
	}
	crt, _ := asm.Assemble("crt0.s", Crt0)
	mod, err := link.Link([]*ovm.Object{crt, o1, o2}, link.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var mem seg.Memory
	lay, _ := hostapi.Load(&mem, mod, 1<<20, 1<<20)
	env := hostapi.NewEnv(&mem, lay, &strings.Builder{})
	mc := interp.New(mod, &mem, env)
	mc.MaxSteps = 1_000_000
	r, err := mc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.ExitCode != 34 {
		t.Errorf("exit %d", r.ExitCode)
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := Compile("bad.c", "int main(void) { return x; }", Options{}); err == nil {
		t.Error("undefined identifier accepted")
	}
	if _, err := Compile("bad.c", "int main(void { return 0; }", Options{}); err == nil {
		t.Error("syntax error accepted")
	}
}
