package cc

import (
	"strings"
	"testing"
)

// asmFor compiles and returns the generated OmniVM assembly.
func asmFor(t *testing.T, src string, opts Options) string {
	t.Helper()
	res, err := Compile("t.c", src, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res.Asm
}

func TestAsmUses32BitOffsets(t *testing.T) {
	// §3.4: a memory access instruction carries a full 32-bit offset —
	// global accesses must be single instructions with symbol+offset,
	// not address-computation sequences.
	asm := asmFor(t, `
struct s { int pad[1000]; int field; };
struct s g;
int main(void) { g.field = 7; return g.field; }
`, Options{OptLevel: 2})
	if !strings.Contains(asm, "g+4000(r0)") {
		t.Errorf("field access not folded into a 32-bit offset:\n%s", asm)
	}
}

func TestAsmUsesIndexedMode(t *testing.T) {
	asm := asmFor(t, `
int tab[100];
int sum(int *p, int n) {
	int i, acc = 0;
	for (i = 0; i < n; i++) acc += p[i];
	return acc;
}
int main(void) { return sum(tab, 100); }
`, Options{OptLevel: 2})
	if !strings.Contains(asm, "ldwx") {
		t.Errorf("no indexed load generated:\n%s", asm)
	}
}

func TestAsmCompareAndBranch(t *testing.T) {
	// §3.4: general compare-and-branch instructions — conditions should
	// compile to single branch instructions, not slt+branch pairs.
	asm := asmFor(t, `
int main(void) {
	int i, acc = 0;
	for (i = 0; i < 100; i++) {
		if (acc > 50) acc -= 3;
		acc += i;
	}
	return acc;
}
`, Options{OptLevel: 2})
	for _, op := range []string{"slt"} {
		for _, line := range strings.Split(asm, "\n") {
			trimmed := strings.TrimSpace(line)
			if strings.HasPrefix(trimmed, op+" ") {
				t.Errorf("compare materialized instead of fused into a branch: %q", trimmed)
			}
		}
	}
	if !strings.Contains(asm, "blti") && !strings.Contains(asm, "bgei") {
		t.Errorf("no immediate compare-and-branch:\n%s", asm)
	}
}

func TestRegisterFileKnobChangesCode(t *testing.T) {
	src := `
int work(int a, int b, int c, int d) {
	int e = a*b, f = c*d, g = a+c, h = b+d;
	int i = e+f, j = g+h, k = e-g, l = f-h;
	return i*j + k*l + e + f + g + h;
}
int main(void) { return work(1, 2, 3, 4); }
`
	full := asmFor(t, src, Options{OptLevel: 2, IntRegFile: 16})
	tiny := asmFor(t, src, Options{OptLevel: 2, IntRegFile: 8})
	// The restricted file must spill: more stack traffic.
	count := func(s, op string) int { return strings.Count(s, "\t"+op+" ") }
	fullMem := count(full, "ldw") + count(full, "stw")
	tinyMem := count(tiny, "ldw") + count(tiny, "stw")
	if tinyMem <= fullMem {
		t.Errorf("8-register file did not increase memory traffic (%d vs %d)", tinyMem, fullMem)
	}
	// And must not use registers beyond r5 + sp/ra... r(8-3)=r5 is the
	// highest allocatable; r6..r13 must not appear as operands.
	for _, bad := range []string{"r6,", "r7,", "r8,", "r9,", "r10,", "r11,", "r12,", "r13,"} {
		for _, line := range strings.Split(tiny, "\n") {
			if strings.Contains(line, bad) && !strings.Contains(line, "#") {
				t.Errorf("restricted build uses %s: %q", strings.TrimSuffix(bad, ","), line)
			}
		}
	}
}

func TestAsmAssemblesCleanly(t *testing.T) {
	// The generated text must be accepted by the assembler for a
	// feature-covering program (regression net for emission syntax).
	src := `
struct pt { double x; double y; };
struct pt pts[4];
double dot(struct pt *a, struct pt *b) { return a->x*b->x + a->y*b->y; }
int main(void) {
	int i;
	for (i = 0; i < 4; i++) { pts[i].x = (double)i; pts[i].y = (double)(i*i); }
	double acc = 0.0;
	for (i = 1; i < 4; i++) acc += dot(&pts[i-1], &pts[i]);
	unsigned u = (unsigned)acc;
	return (int)(u % 251u);
}
`
	for _, lvl := range []int{0, 1, 2} {
		res, err := Compile("t.c", src, Options{OptLevel: lvl})
		if err != nil {
			t.Fatal(err)
		}
		if res.Asm == "" || len(res.Funcs) != 2 {
			t.Errorf("level %d: unexpected result shape", lvl)
		}
	}
}
