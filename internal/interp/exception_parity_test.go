package interp_test

import (
	"testing"

	"omniware/internal/cc"
	"omniware/internal/core"
	"omniware/internal/seg"
	"omniware/internal/target"
	"omniware/internal/translate"
)

// The exception model must behave equivalently on the interpreter and
// on translated targets: a module that registers a handler, trips a
// host-imposed write protection, and exits from the handler must
// produce the same exit code everywhere. (Handlers that jump to a
// label — rather than resuming at the faulting instruction — are exact
// on translated code too; see DESIGN.md.)
func TestExceptionParityAcrossTargets(t *testing.T) {
	src := `
int g;

void on_fault(void) {
	_exit(55);
}

char arr[8192];

int main(void) {
	_set_handler((int)on_fault);
	arr[4096] = 1; /* protected by the host below */
	return 1;      /* unreached */
}
`
	mod, err := core.BuildC([]core.SourceFile{{Name: "e.c", Src: src}}, cc.Options{OptLevel: 1})
	if err != nil {
		t.Fatal(err)
	}
	protect := func(h *core.Host) {
		var base uint32
		for _, s := range mod.Symbols {
			if s.Name == "arr" {
				base = s.Value
			}
		}
		page := (base + 4096) &^ (seg.PageSize - 1)
		if err := h.Mem.Protect(page, seg.PageSize, seg.Read); err != nil {
			t.Fatal(err)
		}
	}

	hi, err := core.NewHost(mod, core.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	protect(hi)
	ires, err := hi.RunInterp()
	if err != nil {
		t.Fatal(err)
	}
	if ires.Faulted || ires.ExitCode != 55 {
		t.Fatalf("interp: %+v", ires)
	}

	for _, m := range target.Machines() {
		h, err := core.NewHost(mod, core.RunConfig{})
		if err != nil {
			t.Fatal(err)
		}
		protect(h)
		// Note: SFI must be off for this test — the sandbox would
		// redirect the store away from the protected page (it is inside
		// the module's own segment, but the host's page protection is a
		// separate, tighter policy the unsandboxed store hits). Use the
		// plain translation to exercise the exception path itself.
		res, _, err := h.RunTranslated(m, translate.Options{Schedule: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Faulted || res.ExitCode != 55 {
			t.Errorf("%s: %+v (want handler exit 55)", m.Name, res)
		}
	}
}

// Without a handler the same fault terminates the module on every
// engine.
func TestUnhandledExceptionParity(t *testing.T) {
	src := `
char arr[8192];
int main(void) {
	arr[4096] = 1;
	return 1;
}
`
	mod, err := core.BuildC([]core.SourceFile{{Name: "e.c", Src: src}}, cc.Options{OptLevel: 1})
	if err != nil {
		t.Fatal(err)
	}
	protect := func(h *core.Host) {
		var base uint32
		for _, s := range mod.Symbols {
			if s.Name == "arr" {
				base = s.Value
			}
		}
		page := (base + 4096) &^ (seg.PageSize - 1)
		if err := h.Mem.Protect(page, seg.PageSize, seg.Read); err != nil {
			t.Fatal(err)
		}
	}
	hi, _ := core.NewHost(mod, core.RunConfig{})
	protect(hi)
	ires, err := hi.RunInterp()
	if err != nil {
		t.Fatal(err)
	}
	if !ires.Faulted {
		t.Fatalf("interp did not fault: %+v", ires)
	}
	for _, m := range target.Machines() {
		h, _ := core.NewHost(mod, core.RunConfig{})
		protect(h)
		res, _, err := h.RunTranslated(m, translate.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Faulted {
			t.Errorf("%s did not fault: %+v", m.Name, res)
		}
	}
}
