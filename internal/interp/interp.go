// Package interp executes OmniVM modules by abstract-machine
// interpretation. This is the classic "safe but slow" mobile-code
// baseline the paper compares against (§2, §4.4): every memory access is
// checked through the segmented memory model and every instruction pays
// a dispatch cost. Cycle accounting charges DispatchCPI virtual cycles
// per instruction so interpreted and translated execution times are
// directly comparable.
package interp

import (
	"fmt"
	"math"

	"omniware/internal/hostapi"
	"omniware/internal/ovm"
	"omniware/internal/seg"
)

// DispatchCPI is the virtual cycle cost charged per interpreted
// instruction: decode-dispatch plus operand handling, typical of a
// threaded-code interpreter on a 90s RISC.
const DispatchCPI = 12

// ExcKind codes delivered to a module's access-violation handler in r1.
const (
	ExcUnmapped  = 1
	ExcProt      = 2
	ExcUnaligned = 3
	ExcDivZero   = 4
	ExcBadJump   = 5
	ExcBreak     = 6
)

// Result summarizes a finished execution.
type Result struct {
	ExitCode int32
	Steps    uint64 // OmniVM instructions executed
	Cycles   uint64 // Steps * DispatchCPI
	Stores   uint64 // dynamic store instructions executed (int, FP, indexed)
	Faulted  bool   // terminated by an unhandled exception
	Fault    string // description when Faulted
}

// Machine is an OmniVM interpreter instance.
type Machine struct {
	Text []ovm.Inst
	Mem  *seg.Memory
	Env  *hostapi.Env

	PC     int32
	Reg    [ovm.NumIntRegs]uint32
	FReg   [ovm.NumFPRegs]float64
	steps  uint64
	stores uint64

	// MaxSteps bounds execution (0 = no bound).
	MaxSteps uint64
}

// New prepares a machine for module m, with its data already loaded by
// hostapi.Load.
func New(m *ovm.Module, mem *seg.Memory, env *hostapi.Env) *Machine {
	mc := &Machine{Text: m.Text, Mem: mem, Env: env, PC: m.Entry}
	mc.Reg[ovm.RSP] = env.Layout.StackTop
	mc.Reg[ovm.RRA] = int32max // returning from entry halts
	return mc
}

const int32max = 0x7fffffff

// CPU interface for hostapi.

// IntReg returns integer register i.
func (m *Machine) IntReg(i int) uint32 { return m.Reg[i] }

// SetIntReg sets integer register i (writes to r0 are discarded).
func (m *Machine) SetIntReg(i int, v uint32) {
	if i != ovm.RZero {
		m.Reg[i] = v
	}
}

// FPReg returns FP register i.
func (m *Machine) FPReg(i int) float64 { return m.FReg[i] }

// SetFPReg sets FP register i.
func (m *Machine) SetFPReg(i int, v float64) { m.FReg[i] = v }

// Cycles returns elapsed virtual cycles.
func (m *Machine) Cycles() uint64 { return m.steps * DispatchCPI }

// exception delivers an access violation to the module handler, or
// terminates.
func (m *Machine) exception(kind uint32, addr uint32, desc string) (Result, bool) {
	if m.Env.Handler >= 0 && m.Env.Handler < int32(len(m.Text)) {
		m.Reg[1] = kind
		m.Reg[2] = addr
		m.Reg[3] = uint32(m.PC)
		m.PC = m.Env.Handler
		return Result{}, false
	}
	return Result{
		ExitCode: -1,
		Steps:    m.steps,
		Cycles:   m.Cycles(),
		Stores:   m.stores,
		Faulted:  true,
		Fault:    desc,
	}, true
}

func faultKind(f *seg.Fault) uint32 {
	switch f.Kind {
	case seg.FaultUnmapped:
		return ExcUnmapped
	case seg.FaultProt:
		return ExcProt
	default:
		return ExcUnaligned
	}
}

// Run executes until HALT, exit, an unhandled exception, or MaxSteps.
func (m *Machine) Run() (Result, error) {
	text := m.Text
	n := int32(len(text))
	for {
		if m.MaxSteps > 0 && m.steps >= m.MaxSteps {
			return Result{}, fmt.Errorf("interp: %w (%d steps) at pc=%d", hostapi.ErrBudget, m.MaxSteps, m.PC)
		}
		if m.PC < 0 || m.PC >= n {
			if r, done := m.exception(ExcBadJump, uint32(m.PC), fmt.Sprintf("interp: pc %d out of text", m.PC)); done {
				return r, nil
			}
			continue
		}
		in := text[m.PC]
		m.steps++
		next := m.PC + 1
		r := &m.Reg
		f := &m.FReg

		switch in.Op {
		case ovm.NOP:
		case ovm.ADD:
			m.set(in.Rd, r[in.Rs1]+r[in.Rs2])
		case ovm.SUB:
			m.set(in.Rd, r[in.Rs1]-r[in.Rs2])
		case ovm.MUL:
			m.set(in.Rd, uint32(int32(r[in.Rs1])*int32(r[in.Rs2])))
		case ovm.DIV, ovm.DIVU, ovm.REM, ovm.REMU:
			if r[in.Rs2] == 0 {
				if res, done := m.exception(ExcDivZero, 0, "interp: division by zero"); done {
					return res, nil
				}
				continue
			}
			switch in.Op {
			case ovm.DIV:
				m.set(in.Rd, uint32(int32(r[in.Rs1])/int32(r[in.Rs2])))
			case ovm.DIVU:
				m.set(in.Rd, r[in.Rs1]/r[in.Rs2])
			case ovm.REM:
				m.set(in.Rd, uint32(int32(r[in.Rs1])%int32(r[in.Rs2])))
			case ovm.REMU:
				m.set(in.Rd, r[in.Rs1]%r[in.Rs2])
			}
		case ovm.AND:
			m.set(in.Rd, r[in.Rs1]&r[in.Rs2])
		case ovm.OR:
			m.set(in.Rd, r[in.Rs1]|r[in.Rs2])
		case ovm.XOR:
			m.set(in.Rd, r[in.Rs1]^r[in.Rs2])
		case ovm.SLL:
			m.set(in.Rd, r[in.Rs1]<<(r[in.Rs2]&31))
		case ovm.SRL:
			m.set(in.Rd, r[in.Rs1]>>(r[in.Rs2]&31))
		case ovm.SRA:
			m.set(in.Rd, uint32(int32(r[in.Rs1])>>(r[in.Rs2]&31)))
		case ovm.SLT:
			m.set(in.Rd, b2u(int32(r[in.Rs1]) < int32(r[in.Rs2])))
		case ovm.SLTU:
			m.set(in.Rd, b2u(r[in.Rs1] < r[in.Rs2]))

		case ovm.ADDI:
			m.set(in.Rd, r[in.Rs1]+uint32(in.Imm))
		case ovm.MULI:
			m.set(in.Rd, uint32(int32(r[in.Rs1])*in.Imm))
		case ovm.ANDI:
			m.set(in.Rd, r[in.Rs1]&uint32(in.Imm))
		case ovm.ORI:
			m.set(in.Rd, r[in.Rs1]|uint32(in.Imm))
		case ovm.XORI:
			m.set(in.Rd, r[in.Rs1]^uint32(in.Imm))
		case ovm.SLLI:
			m.set(in.Rd, r[in.Rs1]<<(uint32(in.Imm)&31))
		case ovm.SRLI:
			m.set(in.Rd, r[in.Rs1]>>(uint32(in.Imm)&31))
		case ovm.SRAI:
			m.set(in.Rd, uint32(int32(r[in.Rs1])>>(uint32(in.Imm)&31)))
		case ovm.SLTI:
			m.set(in.Rd, b2u(int32(r[in.Rs1]) < in.Imm))
		case ovm.SLTIU:
			m.set(in.Rd, b2u(r[in.Rs1] < uint32(in.Imm)))

		case ovm.LDI, ovm.LDA:
			m.set(in.Rd, uint32(in.Imm))

		case ovm.EXTB:
			m.set(in.Rd, (r[in.Rs1]>>(8*uint32(in.Imm&3)))&0xff)
		case ovm.INSB:
			sh := 8 * uint32(in.Imm&3)
			m.set(in.Rd, (r[in.Rs1]&^(0xff<<sh))|((r[in.Rs2]&0xff)<<sh))

		case ovm.LDB, ovm.LDBU, ovm.LDH, ovm.LDHU, ovm.LDW,
			ovm.LDBX, ovm.LDBUX, ovm.LDHX, ovm.LDHUX, ovm.LDWX:
			addr := m.effAddr(in)
			v, flt := m.load(in.Op, addr)
			if flt != nil {
				if res, done := m.exception(faultKind(flt), addr, flt.Error()); done {
					return res, nil
				}
				continue
			}
			m.set(in.Rd, v)

		case ovm.STB, ovm.STH, ovm.STW, ovm.STBX, ovm.STHX, ovm.STWX:
			m.stores++
			addr := m.effAddr(in)
			var flt *seg.Fault
			switch in.Op.MemSize() {
			case 1:
				flt = m.Mem.StoreU8(addr, uint8(r[in.Rd]))
			case 2:
				flt = m.Mem.StoreU16(addr, uint16(r[in.Rd]))
			default:
				flt = m.Mem.StoreU32(addr, r[in.Rd])
			}
			if flt != nil {
				if res, done := m.exception(faultKind(flt), addr, flt.Error()); done {
					return res, nil
				}
				continue
			}

		case ovm.LDF, ovm.LDFX:
			addr := m.effAddr(in)
			v, flt := m.Mem.LoadU32(addr)
			if flt != nil {
				if res, done := m.exception(faultKind(flt), addr, flt.Error()); done {
					return res, nil
				}
				continue
			}
			f[in.Rd] = float64(math.Float32frombits(v))
		case ovm.LDD, ovm.LDDX:
			addr := m.effAddr(in)
			v, flt := m.Mem.LoadU64(addr)
			if flt != nil {
				if res, done := m.exception(faultKind(flt), addr, flt.Error()); done {
					return res, nil
				}
				continue
			}
			f[in.Rd] = math.Float64frombits(v)
		case ovm.STF, ovm.STFX:
			m.stores++
			addr := m.effAddr(in)
			if flt := m.Mem.StoreU32(addr, math.Float32bits(float32(f[in.Rd]))); flt != nil {
				if res, done := m.exception(faultKind(flt), addr, flt.Error()); done {
					return res, nil
				}
				continue
			}
		case ovm.STD, ovm.STDX:
			m.stores++
			addr := m.effAddr(in)
			if flt := m.Mem.StoreU64(addr, math.Float64bits(f[in.Rd])); flt != nil {
				if res, done := m.exception(faultKind(flt), addr, flt.Error()); done {
					return res, nil
				}
				continue
			}

		case ovm.FADDS:
			f[in.Rd] = float64(float32(f[in.Rs1]) + float32(f[in.Rs2]))
		case ovm.FSUBS:
			f[in.Rd] = float64(float32(f[in.Rs1]) - float32(f[in.Rs2]))
		case ovm.FMULS:
			f[in.Rd] = float64(float32(f[in.Rs1]) * float32(f[in.Rs2]))
		case ovm.FDIVS:
			f[in.Rd] = float64(float32(f[in.Rs1]) / float32(f[in.Rs2]))
		case ovm.FADDD:
			f[in.Rd] = f[in.Rs1] + f[in.Rs2]
		case ovm.FSUBD:
			f[in.Rd] = f[in.Rs1] - f[in.Rs2]
		case ovm.FMULD:
			f[in.Rd] = f[in.Rs1] * f[in.Rs2]
		case ovm.FDIVD:
			f[in.Rd] = f[in.Rs1] / f[in.Rs2]
		case ovm.FNEGS:
			f[in.Rd] = float64(-float32(f[in.Rs1]))
		case ovm.FNEGD:
			f[in.Rd] = -f[in.Rs1]
		case ovm.FABSS:
			f[in.Rd] = float64(float32(math.Abs(f[in.Rs1])))
		case ovm.FABSD:
			f[in.Rd] = math.Abs(f[in.Rs1])
		case ovm.FMOV:
			f[in.Rd] = f[in.Rs1]

		case ovm.CVTWS:
			f[in.Rd] = float64(float32(int32(r[in.Rs1])))
		case ovm.CVTWD:
			f[in.Rd] = float64(int32(r[in.Rs1]))
		case ovm.CVTSW:
			m.set(in.Rd, uint32(truncToI32(float64(float32(f[in.Rs1])))))
		case ovm.CVTDW:
			m.set(in.Rd, uint32(truncToI32(f[in.Rs1])))
		case ovm.CVTSD:
			f[in.Rd] = float64(float32(f[in.Rs1]))
		case ovm.CVTDS:
			f[in.Rd] = float64(float32(f[in.Rs1]))
		case ovm.MOVWF:
			f[in.Rd] = float64(math.Float32frombits(r[in.Rs1]))
		case ovm.MOVFW:
			m.set(in.Rd, math.Float32bits(float32(f[in.Rs1])))

		case ovm.BEQ:
			if r[in.Rs1] == r[in.Rs2] {
				next = in.Imm2
			}
		case ovm.BNE:
			if r[in.Rs1] != r[in.Rs2] {
				next = in.Imm2
			}
		case ovm.BLT:
			if int32(r[in.Rs1]) < int32(r[in.Rs2]) {
				next = in.Imm2
			}
		case ovm.BLE:
			if int32(r[in.Rs1]) <= int32(r[in.Rs2]) {
				next = in.Imm2
			}
		case ovm.BGT:
			if int32(r[in.Rs1]) > int32(r[in.Rs2]) {
				next = in.Imm2
			}
		case ovm.BGE:
			if int32(r[in.Rs1]) >= int32(r[in.Rs2]) {
				next = in.Imm2
			}
		case ovm.BLTU:
			if r[in.Rs1] < r[in.Rs2] {
				next = in.Imm2
			}
		case ovm.BLEU:
			if r[in.Rs1] <= r[in.Rs2] {
				next = in.Imm2
			}
		case ovm.BGTU:
			if r[in.Rs1] > r[in.Rs2] {
				next = in.Imm2
			}
		case ovm.BGEU:
			if r[in.Rs1] >= r[in.Rs2] {
				next = in.Imm2
			}

		case ovm.BEQI:
			if int32(r[in.Rs1]) == in.Imm {
				next = in.Imm2
			}
		case ovm.BNEI:
			if int32(r[in.Rs1]) != in.Imm {
				next = in.Imm2
			}
		case ovm.BLTI:
			if int32(r[in.Rs1]) < in.Imm {
				next = in.Imm2
			}
		case ovm.BLEI:
			if int32(r[in.Rs1]) <= in.Imm {
				next = in.Imm2
			}
		case ovm.BGTI:
			if int32(r[in.Rs1]) > in.Imm {
				next = in.Imm2
			}
		case ovm.BGEI:
			if int32(r[in.Rs1]) >= in.Imm {
				next = in.Imm2
			}
		case ovm.BLTUI:
			if r[in.Rs1] < uint32(in.Imm) {
				next = in.Imm2
			}
		case ovm.BLEUI:
			if r[in.Rs1] <= uint32(in.Imm) {
				next = in.Imm2
			}
		case ovm.BGTUI:
			if r[in.Rs1] > uint32(in.Imm) {
				next = in.Imm2
			}
		case ovm.BGEUI:
			if r[in.Rs1] >= uint32(in.Imm) {
				next = in.Imm2
			}

		case ovm.FBEQ:
			if f[in.Rs1] == f[in.Rs2] {
				next = in.Imm2
			}
		case ovm.FBNE:
			if f[in.Rs1] != f[in.Rs2] {
				next = in.Imm2
			}
		case ovm.FBLT:
			if f[in.Rs1] < f[in.Rs2] {
				next = in.Imm2
			}
		case ovm.FBLE:
			if f[in.Rs1] <= f[in.Rs2] {
				next = in.Imm2
			}

		case ovm.JMP:
			next = in.Imm2
		case ovm.JAL:
			m.set(in.Rd, uint32(m.PC+1))
			next = in.Imm2
		case ovm.JALR:
			t := int32(r[in.Rs1])
			m.set(in.Rd, uint32(m.PC+1))
			next = t
		case ovm.JR:
			next = int32(r[in.Rs1])

		case ovm.SYSCALL:
			if err := m.Env.Syscall(in.Imm, m); err != nil {
				return Result{}, fmt.Errorf("interp: pc=%d: %w", m.PC, err)
			}
			if m.Env.Exited {
				return Result{ExitCode: m.Env.ExitCode, Steps: m.steps, Cycles: m.Cycles(), Stores: m.stores}, nil
			}
		case ovm.BREAK:
			if res, done := m.exception(ExcBreak, uint32(m.PC), "interp: breakpoint"); done {
				return res, nil
			}
			continue
		case ovm.HALT:
			return Result{ExitCode: int32(r[ovm.RRet]), Steps: m.steps, Cycles: m.Cycles(), Stores: m.stores}, nil

		default:
			return Result{}, fmt.Errorf("interp: pc=%d: unimplemented opcode %s", m.PC, in.Op.Name())
		}
		m.PC = next
	}
}

func (m *Machine) set(rd uint8, v uint32) {
	if rd != ovm.RZero {
		m.Reg[rd] = v
	}
}

func (m *Machine) effAddr(in ovm.Inst) uint32 {
	if in.Op.IsIndexed() {
		return m.Reg[in.Rs1] + m.Reg[in.Rs2]
	}
	return m.Reg[in.Rs1] + uint32(in.Imm)
}

func (m *Machine) load(op ovm.Opcode, addr uint32) (uint32, *seg.Fault) {
	switch op {
	case ovm.LDB, ovm.LDBX:
		v, f := m.Mem.LoadU8(addr)
		return uint32(int32(int8(v))), f
	case ovm.LDBU, ovm.LDBUX:
		v, f := m.Mem.LoadU8(addr)
		return uint32(v), f
	case ovm.LDH, ovm.LDHX:
		v, f := m.Mem.LoadU16(addr)
		return uint32(int32(int16(v))), f
	case ovm.LDHU, ovm.LDHUX:
		v, f := m.Mem.LoadU16(addr)
		return uint32(v), f
	default:
		return m.Mem.LoadU32(addr)
	}
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// truncToI32 converts with C semantics: truncation toward zero, with
// out-of-range values clamped (defined behaviour for the VM even though
// C leaves it undefined).
func truncToI32(v float64) int32 {
	if math.IsNaN(v) {
		return 0
	}
	if v >= math.MaxInt32 {
		return math.MaxInt32
	}
	if v <= math.MinInt32 {
		return math.MinInt32
	}
	return int32(v)
}
