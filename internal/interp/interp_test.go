package interp

import (
	"strings"
	"testing"

	"omniware/internal/asm"
	"omniware/internal/hostapi"
	"omniware/internal/link"
	"omniware/internal/ovm"
	"omniware/internal/seg"
)

// run assembles, links, loads and executes src, returning the result and
// captured output.
func run(t *testing.T, src string) (Result, string) {
	t.Helper()
	o, err := asm.Assemble("t.s", src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := link.Link([]*ovm.Object{o}, link.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var mem seg.Memory
	lay, err := hostapi.Load(&mem, m, 1<<20, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	env := hostapi.NewEnv(&mem, lay, &out)
	mc := New(m, &mem, env)
	mc.MaxSteps = 10_000_000
	res, err := mc.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res, out.String()
}

func TestArithmetic(t *testing.T) {
	res, _ := run(t, `
.text
.globl main
main:
	ldi r1, 6
	ldi r2, 7
	mul r3, r1, r2      # 42
	ldi r4, 5
	div r5, r3, r4      # 8
	rem r6, r3, r4      # 2
	add r1, r5, r6      # 10
	slli r1, r1, 2      # 40
	addi r1, r1, 2      # 42
	halt
`)
	if res.ExitCode != 42 {
		t.Errorf("exit %d", res.ExitCode)
	}
	if res.Steps != 10 {
		t.Errorf("steps %d", res.Steps)
	}
	if res.Cycles != 10*DispatchCPI {
		t.Errorf("cycles %d", res.Cycles)
	}
}

func TestSignedUnsigned(t *testing.T) {
	res, _ := run(t, `
.text
.globl main
main:
	ldi r1, -8
	ldi r2, 2
	div r3, r1, r2       # -4
	srai r4, r1, 1       # -4
	bne r3, r4, fail
	srli r5, r1, 28      # 15
	bnei r5, 15, fail
	sltu r6, r2, r1      # 2 <u -8: 1
	bnei r6, 1, fail
	slt r7, r1, r2       # -8 < 2: 1
	bnei r7, 1, fail
	ldi r1, 0
	halt
fail:
	ldi r1, 1
	halt
`)
	if res.ExitCode != 0 {
		t.Errorf("exit %d", res.ExitCode)
	}
}

func TestLoop(t *testing.T) {
	res, _ := run(t, `
.text
.globl main
main:
	ldi r1, 0
	ldi r2, 0
loop:
	add r1, r1, r2
	addi r2, r2, 1
	blei r2, 100, loop
	halt              # sum 0..100 = 5050
`)
	if res.ExitCode != 5050 {
		t.Errorf("exit %d", res.ExitCode)
	}
}

func TestMemoryAndData(t *testing.T) {
	res, out := run(t, `
.text
.globl main
main:
	lda r5, tab
	ldw r1, 0(r5)
	ldw r2, 4(r5)
	add r1, r1, r2
	ldi r3, 8
	ldwx r4, (r5+r3)
	add r1, r1, r4
	lda r6, msg
	mov r1, r6
	syscall 2          # puts
	ldh r7, half(r0)
	ldb r8, bytes(r0)
	ldbu r9, bytes+1(r0)
	add r1, r7, r8
	add r1, r1, r9
	halt
.data
tab:	.word 10, 20, 30
half:	.half -2
	.half 0
msg:	.asciz "ok"
bytes:	.byte -1, 255
`)
	// -2 + -1 + 255 = 252
	if res.ExitCode != 252 {
		t.Errorf("exit %d", res.ExitCode)
	}
	if out != "ok" {
		t.Errorf("out %q", out)
	}
}

func TestStoresAndBSS(t *testing.T) {
	res, _ := run(t, `
.text
.globl main
main:
	lda r5, buf
	ldi r1, 0x12345678
	stw r1, 0(r5)
	ldb r2, 0(r5)       # 0x78 (little-endian)
	ldi r3, -1
	stb r3, 3(r5)
	ldw r4, 0(r5)
	srli r4, r4, 24     # 0xff
	add r1, r2, r4      # 0x78 + 0xff = 0x177 = 375
	sth r1, 4(r5)
	ldhu r1, 4(r5)
	halt
.bss
buf: .space 16
`)
	if res.ExitCode != 375 {
		t.Errorf("exit %d", res.ExitCode)
	}
}

func TestCallsAndStack(t *testing.T) {
	res, _ := run(t, `
.text
.globl main
main:
	addi r14, r14, -8
	stw r15, 0(r14)
	ldi r1, 10
	call fact
	ldw r15, 0(r14)
	addi r14, r14, 8
	halt
fact:                     # recursive factorial... iterative to keep it short
	ldi r2, 1
floop:
	blei r1, 1, fdone
	mul r2, r2, r1
	addi r1, r1, -1
	jmp floop
fdone:
	mov r1, r2
	ret
`)
	if res.ExitCode != 3628800 {
		t.Errorf("exit %d", res.ExitCode)
	}
}

func TestRecursion(t *testing.T) {
	res, _ := run(t, `
.text
.globl main
main:
	ldi r1, 12
	call fib
	halt
fib:                      # fib(n): n<2 -> n
	bgei r1, 2, frec
	ret
frec:
	addi r14, r14, -12
	stw r15, 0(r14)
	stw r10, 4(r14)
	stw r1, 8(r14)
	addi r1, r1, -1
	call fib
	mov r10, r1
	ldw r1, 8(r14)
	addi r1, r1, -2
	call fib
	add r1, r1, r10
	ldw r15, 0(r14)
	ldw r10, 4(r14)
	addi r14, r14, 12
	ret
`)
	if res.ExitCode != 144 {
		t.Errorf("fib(12) = %d", res.ExitCode)
	}
}

func TestIndirectCall(t *testing.T) {
	res, _ := run(t, `
.text
.globl main
main:
	ldw r5, fp(r0)
	jalr r15, r5
	halt
target:
	ldi r1, 99
	ret
.data
fp:	.word target
`)
	if res.ExitCode != 99 {
		t.Errorf("exit %d", res.ExitCode)
	}
}

func TestFloat(t *testing.T) {
	res, out := run(t, `
.text
.globl main
main:
	ldd f1, pi(r0)
	ldd f2, two(r0)
	fmuld f3, f1, f2
	cvtdw r1, f3          # 6
	syscall 3             # print_int
	ldi r2, 10
	cvtwd f4, r2
	faddd f5, f4, f3      # 16.28...
	cvtdw r1, f5
	fblt f2, f1, less     # 2.0 < pi: taken
	halt
less:
	addi r1, r1, 100      # 116
	halt
.data
.align 8
pi:	.double 3.14159265358979
two:	.double 2.0
`)
	if res.ExitCode != 116 {
		t.Errorf("exit %d", res.ExitCode)
	}
	if out != "6" {
		t.Errorf("out %q", out)
	}
}

func TestFloatSingle(t *testing.T) {
	res, _ := run(t, `
.text
.globl main
main:
	ldf f1, x(r0)
	ldf f2, y(r0)
	fadds f3, f1, f2
	lda r5, buf
	stf f3, 0(r5)
	ldf f4, 0(r5)
	cvtsw r1, f4
	halt
.data
x:	.float 1.5
y:	.float 2.75
.bss
buf: .space 8
`)
	if res.ExitCode != 4 { // trunc(4.25)
		t.Errorf("exit %d", res.ExitCode)
	}
}

func TestSyscalls(t *testing.T) {
	res, out := run(t, `
.text
.globl main
main:
	ldi r1, 72
	syscall 1            # putc 'H'
	ldi r1, -5
	syscall 3            # print_int
	ldi r1, 4000000000
	syscall 4            # print_uint
	lda r1, msg
	ldi r2, 3
	syscall 8            # write
	ldi r1, 0
	syscall 0            # exit
	ldi r1, 9            # unreachable
	halt
.data
msg: .asciz "abcdef"
`)
	if res.ExitCode != 0 {
		t.Errorf("exit %d", res.ExitCode)
	}
	if out != "H-54000000000abc" {
		t.Errorf("out %q", out)
	}
}

func TestSbrk(t *testing.T) {
	res, _ := run(t, `
.text
.globl main
main:
	ldi r1, 64
	syscall 5            # sbrk(64)
	mov r5, r1
	ldi r1, 64
	syscall 5
	sub r1, r1, r5       # second break - first = 64
	halt
`)
	if res.ExitCode != 64 {
		t.Errorf("exit %d", res.ExitCode)
	}
}

func TestUnhandledFault(t *testing.T) {
	res, _ := run(t, `
.text
.globl main
main:
	ldi r5, 0x00000100   # unmapped low memory
	ldw r1, 0(r5)
	halt
`)
	if !res.Faulted {
		t.Fatal("no fault")
	}
	if !strings.Contains(res.Fault, "unmapped") {
		t.Errorf("fault %q", res.Fault)
	}
}

func TestHandledFault(t *testing.T) {
	res, _ := run(t, `
.text
.globl main
main:
	lda r1, handler
	syscall 9            # set_handler
	ldi r5, 0x00000100
	ldw r6, 0(r5)        # faults; handler resumes after
	halt                 # not reached with r1==save
handler:
	# r1=kind, r2=addr, r3=faulting pc. Skip the faulting instruction.
	mov r7, r1
	addi r3, r3, 1
	jr r3
`)
	// After resume, falls into halt with r1 = kind (moved to r7... r1 still kind).
	if res.Faulted {
		t.Fatalf("fault not handled: %s", res.Fault)
	}
	if res.ExitCode != ExcUnmapped {
		t.Errorf("exit %d", res.ExitCode)
	}
}

func TestDivZeroFault(t *testing.T) {
	res, _ := run(t, `
.text
.globl main
main:
	ldi r1, 3
	ldi r2, 0
	div r3, r1, r2
	halt
`)
	if !res.Faulted || !strings.Contains(res.Fault, "division") {
		t.Errorf("res %+v", res)
	}
}

func TestBadIndirectJump(t *testing.T) {
	res, _ := run(t, `
.text
.globl main
main:
	ldi r5, 100000
	jr r5
	halt
`)
	if !res.Faulted {
		t.Error("wild jump not caught")
	}
}

func TestWriteProtectedPage(t *testing.T) {
	// Build manually to protect a page after load.
	o, err := asm.Assemble("t.s", `
.text
.globl main
main:
	lda r5, buf
	ldi r1, 1
	stw r1, 0(r5)
	halt
.bss
.align 4096
.globl buf
buf: .space 4096
`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := link.Link([]*ovm.Object{o}, link.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var mem seg.Memory
	lay, err := hostapi.Load(&mem, m, 1<<20, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	buf, _ := ovm.Lookup(m.Symbols, "buf")
	if err := mem.Protect(buf.Value, seg.PageSize, seg.Read); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	env := hostapi.NewEnv(&mem, lay, &out)
	mc := New(m, &mem, env)
	mc.MaxSteps = 1000
	res, err := mc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Faulted || !strings.Contains(res.Fault, "access violation") {
		t.Errorf("res %+v", res)
	}
}

func TestR0IsZero(t *testing.T) {
	res, _ := run(t, `
.text
.globl main
main:
	ldi r0, 55
	add r1, r0, r0
	halt
`)
	if res.ExitCode != 0 {
		t.Errorf("r0 written: %d", res.ExitCode)
	}
}

func TestEndianNeutralOps(t *testing.T) {
	res, _ := run(t, `
.text
.globl main
main:
	ldi r1, 0x11223344
	extb r2, r1, 2        # 0x22
	ldi r3, 0xAA
	insb r1, r1, r3       # lane from Imm... insb uses Imm lane 0
	andi r1, r1, 0xff     # 0xAA
	add r1, r1, r2        # 0xCC = 204
	halt
`)
	if res.ExitCode != 204 {
		t.Errorf("exit %d", res.ExitCode)
	}
}

func TestStepBudget(t *testing.T) {
	o, _ := asm.Assemble("t.s", ".text\n.globl main\nmain:\n\tjmp main\n")
	m, _ := link.Link([]*ovm.Object{o}, link.Options{})
	var mem seg.Memory
	lay, _ := hostapi.Load(&mem, m, 1<<16, 1<<16)
	env := hostapi.NewEnv(&mem, lay, &strings.Builder{})
	mc := New(m, &mem, env)
	mc.MaxSteps = 100
	if _, err := mc.Run(); err == nil {
		t.Error("infinite loop not bounded")
	}
}
