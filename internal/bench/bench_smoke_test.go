package bench

import (
	"testing"

	"omniware/internal/cc"
	"omniware/internal/native"
	"omniware/internal/target"
	"omniware/internal/translate"
)

// The four workloads must build and agree across the interpreter, a
// translated target, and a native baseline at the small test scale.
func TestWorkloadsCrossAgree(t *testing.T) {
	for _, name := range WorkloadNames {
		b, err := Build(name, 1, cc.Options{OptLevel: 2})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		t.Logf("%s: interp %d omni insts, exit %d, out %q", name, b.Interp.Insts, b.RefExit, b.RefOut)
		if b.Interp.Insts < 50_000 {
			t.Errorf("%s: workload too small (%d insts)", name, b.Interp.Insts)
		}
		for _, mach := range []*target.Machine{target.MIPSMachine(), target.X86Machine()} {
			if _, err := b.Translated(mach, translate.Paper(true)); err != nil {
				t.Errorf("%v", err)
			}
			if _, err := b.Native(mach, native.ProfCC); err != nil {
				t.Errorf("%v", err)
			}
		}
	}
}

func TestWorkloadsAtO0AgreeWithO2(t *testing.T) {
	for _, name := range WorkloadNames {
		b2, err := Build(name, 1, cc.Options{OptLevel: 2})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b0, err := Build(name, 1, cc.Options{OptLevel: 0})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if b0.RefExit != b2.RefExit || b0.RefOut != b2.RefOut {
			t.Errorf("%s: O0 (%d,%q) != O2 (%d,%q)", name, b0.RefExit, b0.RefOut, b2.RefExit, b2.RefOut)
		}
		if b0.Interp.Insts <= b2.Interp.Insts {
			t.Errorf("%s: optimization did not reduce instruction count (O0 %d, O2 %d)",
				name, b0.Interp.Insts, b2.Interp.Insts)
		}
	}
}
