/*
 * Minimal OmniC runtime library shared by the benchmark workloads:
 * a first-fit allocator over _sbrk, memory and string primitives, and
 * a deterministic LCG so every run is reproducible.
 */

enum { HDRW = 2 }; /* header words: size, free flag */

static unsigned *free_list = 0;

char *malloc(int n) {
	unsigned *p;
	unsigned words;
	unsigned *prev;

	if (n <= 0) n = 4;
	words = (unsigned)((n + 3) / 4) + HDRW;

	/* First fit over the free list. */
	prev = 0;
	p = free_list;
	while (p) {
		if (p[0] >= words) {
			if (prev) prev[1] = p[1];
			else free_list = (unsigned *)p[1];
			p[1] = 0; /* in use */
			return (char *)(p + HDRW);
		}
		prev = p;
		p = (unsigned *)p[1];
	}
	p = (unsigned *)_sbrk((int)(words * 4));
	if ((int)p == -1) {
		_puts("malloc: out of memory\n");
		_exit(9);
	}
	p[0] = words;
	p[1] = 0;
	return (char *)(p + HDRW);
}

void free(char *q) {
	unsigned *p;
	if (!q) return;
	p = (unsigned *)q - HDRW;
	p[1] = (unsigned)free_list;
	free_list = p;
}

void memset_(char *d, int c, int n) {
	int i;
	for (i = 0; i < n; i++) d[i] = (char)c;
}

void memcpy_(char *d, char *s, int n) {
	int i;
	for (i = 0; i < n; i++) d[i] = s[i];
}

int strlen_(char *s) {
	int n = 0;
	while (s[n]) n++;
	return n;
}

int strcmp_(char *a, char *b) {
	while (*a && *a == *b) { a++; b++; }
	return (int)(unsigned char)*a - (int)(unsigned char)*b;
}

void strcpy_(char *d, char *s) {
	while ((*d++ = *s++) != 0) ;
}

static unsigned lcg_state = 12345;

void srand_(unsigned seed) {
	lcg_state = seed;
	if (lcg_state == 0) lcg_state = 1;
}

unsigned rand_(void) {
	lcg_state = lcg_state * 1103515245u + 12345u;
	return (lcg_state >> 8) & 0x7fffff;
}

int abs_(int x) {
	return x < 0 ? -x : x;
}
