/*
 * compress — LZW compression and decompression over a synthetic buffer
 * with realistic repetition, 12-bit codes and an open-hash code table.
 * Bit manipulation and table lookups dominated, like SPEC92 compress.
 */

unsigned rand_(void);
void srand_(unsigned seed);

enum { SCALE = 3 };

enum {
	NBITS = 12,
	TABSIZE = 5003,          /* prime > 2^12 */
	MAXCODE = 4096,
	BUFLEN = 24000,
	FIRST = 257,             /* first free code (256 = clear) */
	CLEAR = 256
};

char input[BUFLEN];
char output[BUFLEN * 2];
char decoded[BUFLEN];

int htab[TABSIZE];     /* packed (prefix<<8)|ch key, or -1 */
int codetab[TABSIZE];  /* code for that key */

/* Decompressor tables. */
int dprefix[MAXCODE];
char dsuffix[MAXCODE];
char dstack[MAXCODE];

int outbits;     /* bit position in output */

void putcode(int code) {
	int byte = outbits >> 3;
	int off = outbits & 7;
	output[byte] = (char)(output[byte] | (code << off));
	output[byte + 1] = (char)(code >> (8 - off));
	if (off > 4) output[byte + 2] = (char)(code >> (16 - off));
	outbits += NBITS;
}

int inbits;

int getcode(void) {
	int byte = inbits >> 3;
	int off = inbits & 7;
	unsigned v;
	v = (unsigned char)output[byte];
	v |= (unsigned)(unsigned char)output[byte + 1] << 8;
	v |= (unsigned)(unsigned char)output[byte + 2] << 16;
	inbits += NBITS;
	return (int)((v >> off) & (MAXCODE - 1));
}

void gen_input(int n) {
	int i, j, runlen, start;
	/* Mix of random bytes and copied earlier runs (compressible). */
	i = 0;
	while (i < n) {
		if (i > 64 && (rand_() & 3) != 0) {
			runlen = 4 + (int)(rand_() % 60);
			start = (int)(rand_() % (unsigned)(i - runlen > 0 ? i - runlen : 1));
			for (j = 0; j < runlen && i < n; j++) input[i++] = input[start + j];
		} else {
			input[i++] = (char)(rand_() % 37 + 'a' - 10);
		}
	}
}

int compress(int n) {
	int i, c, fcode, h, disp, ent, freecode;

	for (i = 0; i < TABSIZE; i++) htab[i] = -1;
	outbits = 0;
	freecode = FIRST;

	ent = (unsigned char)input[0];
	for (i = 1; i < n; i++) {
		c = (unsigned char)input[i];
		fcode = (ent << 8) | c;
		h = ((c << 4) ^ ent) % TABSIZE;
		disp = h == 0 ? 1 : TABSIZE - h;
		for (;;) {
			if (htab[h] == fcode) {
				ent = codetab[h];
				break;
			}
			if (htab[h] < 0) {
				putcode(ent);
				if (freecode < MAXCODE) {
					htab[h] = fcode;
					codetab[h] = freecode++;
				}
				ent = c;
				break;
			}
			h -= disp;
			if (h < 0) h += TABSIZE;
		}
	}
	putcode(ent);
	return (outbits + 7) / 8;
}

int decompress(int n) {
	int code, oldcode, incode, finchar, freecode;
	int sp, outn;

	inbits = 0;
	freecode = FIRST;
	outn = 0;

	oldcode = getcode();
	finchar = oldcode;
	decoded[outn++] = (char)finchar;

	while (outn < n) {
		code = getcode();
		incode = code;
		sp = 0;
		if (code >= freecode) {
			/* KwKwK case. */
			dstack[sp++] = (char)finchar;
			code = oldcode;
		}
		while (code >= 256) {
			dstack[sp++] = dsuffix[code];
			code = dprefix[code];
		}
		finchar = code;
		dstack[sp++] = (char)finchar;
		while (sp > 0) {
			decoded[outn++] = dstack[--sp];
			if (outn >= n) break;
		}
		if (freecode < MAXCODE) {
			dprefix[freecode] = oldcode;
			dsuffix[freecode] = (char)finchar;
			freecode++;
		}
		oldcode = incode;
	}
	return outn;
}

int main(void) {
	int round, i, n, packed, outn, check = 0;

	srand_(42);
	for (round = 0; round < SCALE; round++) {
		n = BUFLEN - (round * 1000);
		gen_input(n);
		packed = compress(n);
		outn = decompress(n);
		if (outn != n) { _puts("length mismatch\n"); return 1; }
		for (i = 0; i < n; i++) {
			if (decoded[i] != input[i]) {
				_puts("roundtrip mismatch at ");
				_print_int(i);
				_putc(10);
				return 2;
			}
		}
		check += packed;
	}
	_print_int(check);
	_putc(10);
	return check & 0x7f;
}
