/*
 * eqntott — converts boolean equations (sum-of-products form) into a
 * sorted truth table. Dominated by the row-comparison function inside
 * the sort, exactly like SPEC92 eqntott (whose hot spot was cmppt).
 */

unsigned rand_(void);
void srand_(unsigned seed);

enum { SCALE = 2 };

enum { NVARS = 11, NROWS = 2048, NTERMS = 24, NOUTS = 3 };

/* A product term: for each variable, 0 = negated, 1 = plain, 2 = don't
 * care; one term list per output. */
char terms[NOUTS][NTERMS][NVARS];
int nterms[NOUTS];

/* Truth table rows: inputs packed in a word plus output bits; rows are
 * stored as indices into value arrays and sorted with a comparison that
 * walks the bits (SPEC eqntott represents bits per short). */
short rowbits[NROWS][NVARS + NOUTS];
int perm[NROWS];

void gen_equations(void) {
	int o, t, v;
	for (o = 0; o < NOUTS; o++) {
		nterms[o] = 4 + (int)(rand_() % (NTERMS - 4));
		for (t = 0; t < nterms[o]; t++) {
			for (v = 0; v < NVARS; v++) {
				unsigned r = rand_() % 10;
				if (r < 3) terms[o][t][v] = 0;
				else if (r < 6) terms[o][t][v] = 1;
				else terms[o][t][v] = 2;
			}
		}
	}
}

int eval_output(int o, int assignment) {
	int t, v, ok;
	for (t = 0; t < nterms[o]; t++) {
		ok = 1;
		for (v = 0; v < NVARS; v++) {
			int bit = (assignment >> v) & 1;
			char want = terms[o][t][v];
			if (want != 2 && (int)want != bit) { ok = 0; break; }
		}
		if (ok) return 1;
	}
	return 0;
}

void build_table(void) {
	int row, v, o;
	for (row = 0; row < NROWS; row++) {
		for (v = 0; v < NVARS; v++) {
			rowbits[row][v] = (short)((row >> v) & 1);
		}
		for (o = 0; o < NOUTS; o++) {
			rowbits[row][NVARS + o] = (short)eval_output(o, row);
		}
		perm[row] = row;
	}
}

/* cmppt: compare rows output-bits-first then inputs, walking shorts —
 * the branchy hot loop of the benchmark. */
int cmppt(int a, int b) {
	int i;
	short *pa = rowbits[a];
	short *pb = rowbits[b];
	for (i = NVARS + NOUTS - 1; i >= 0; i--) {
		if (pa[i] != pb[i]) {
			return pa[i] < pb[i] ? -1 : 1;
		}
	}
	return 0;
}

/* Quicksort with insertion-sort finish over the permutation array. */
void qsort_rows(int lo, int hi) {
	int i, j, pivot, tmp;
	while (hi - lo > 8) {
		pivot = perm[(lo + hi) / 2];
		i = lo;
		j = hi;
		while (i <= j) {
			while (cmppt(perm[i], pivot) < 0) i++;
			while (cmppt(perm[j], pivot) > 0) j--;
			if (i <= j) {
				tmp = perm[i]; perm[i] = perm[j]; perm[j] = tmp;
				i++;
				j--;
			}
		}
		if (j - lo < hi - i) {
			qsort_rows(lo, j);
			lo = i;
		} else {
			qsort_rows(i, hi);
			hi = j;
		}
	}
	for (i = lo + 1; i <= hi; i++) {
		tmp = perm[i];
		for (j = i - 1; j >= lo && cmppt(perm[j], tmp) > 0; j--) {
			perm[j + 1] = perm[j];
		}
		perm[j + 1] = tmp;
	}
}

/* Merge adjacent identical-output rows (the "pt reduction" flavour). */
int count_groups(void) {
	int row, o, groups = 1, diff;
	for (row = 1; row < NROWS; row++) {
		diff = 0;
		for (o = 0; o < NOUTS; o++) {
			if (rowbits[perm[row]][NVARS + o] != rowbits[perm[row - 1]][NVARS + o]) {
				diff = 1;
				break;
			}
		}
		if (diff) groups++;
	}
	return groups;
}

int main(void) {
	int round, check = 0, row;

	srand_(123);
	for (round = 0; round < SCALE; round++) {
		gen_equations();
		build_table();
		qsort_rows(0, NROWS - 1);
		check += count_groups();
		/* Checksum over sorted order. */
		for (row = 0; row < NROWS; row += 97) {
			check += perm[row] * (row + 1);
			check %= 1000000007;
		}
	}
	_print_int(check);
	_putc(10);
	return check & 0x7f;
}
