/*
 * alvinn — a back-propagation neural network trained on synthetic
 * "road images", floating-point loops over weight matrices, like SPEC92
 * alvinn (which trained a steering network).
 */

unsigned rand_(void);
void srand_(unsigned seed);

enum { SCALE = 2 };

enum { NIN = 96, NHID = 24, NOUT = 8, NPAT = 12 };

double w1[NHID][NIN];    /* input -> hidden */
double w2[NOUT][NHID];   /* hidden -> output */
double b1[NHID];
double b2[NOUT];

double pat_in[NPAT][NIN];
double pat_out[NPAT][NOUT];

double hid[NHID];
double out[NOUT];
double dhid[NHID];
double dout[NOUT];

double frand(void) {
	/* uniform in [-0.5, 0.5) */
	return ((double)(int)(rand_() % 10000u) / 10000.0) - 0.5;
}

/* Rational approximation of the logistic squash (SPEC alvinn uses
 * tanh-like squashing; a divide keeps the FP divide unit busy). */
double squash(double x) {
	double ax = x < 0.0 ? -x : x;
	double v = x / (1.0 + ax);
	return 0.5 + 0.5 * v;
}

void init(void) {
	int i, j, p;
	for (i = 0; i < NHID; i++) {
		for (j = 0; j < NIN; j++) w1[i][j] = frand() * 0.3;
		b1[i] = frand() * 0.1;
	}
	for (i = 0; i < NOUT; i++) {
		for (j = 0; j < NHID; j++) w2[i][j] = frand() * 0.3;
		b2[i] = frand() * 0.1;
	}
	/* Synthetic road patterns: a bright band whose position encodes the
	 * desired steering output. */
	for (p = 0; p < NPAT; p++) {
		int center = (p * NIN) / NPAT;
		for (j = 0; j < NIN; j++) {
			int d = j - center;
			if (d < 0) d = -d;
			pat_in[p][j] = d < 6 ? 1.0 - (double)d * 0.15 : 0.05;
		}
		for (i = 0; i < NOUT; i++) pat_out[p][i] = 0.1;
		pat_out[p][(p * NOUT) / NPAT] = 0.9;
	}
}

void forward(double *in) {
	int i, j;
	double s;
	for (i = 0; i < NHID; i++) {
		s = b1[i];
		for (j = 0; j < NIN; j++) s += w1[i][j] * in[j];
		hid[i] = squash(s);
	}
	for (i = 0; i < NOUT; i++) {
		s = b2[i];
		for (j = 0; j < NHID; j++) s += w2[i][j] * hid[j];
		out[i] = squash(s);
	}
}

double train_epoch(double rate) {
	int p, i, j;
	double err, e, s;

	err = 0.0;
	for (p = 0; p < NPAT; p++) {
		forward(pat_in[p]);
		/* Output deltas. */
		for (i = 0; i < NOUT; i++) {
			e = pat_out[p][i] - out[i];
			err += e * e;
			dout[i] = e * out[i] * (1.0 - out[i]);
		}
		/* Hidden deltas. */
		for (j = 0; j < NHID; j++) {
			s = 0.0;
			for (i = 0; i < NOUT; i++) s += dout[i] * w2[i][j];
			dhid[j] = s * hid[j] * (1.0 - hid[j]);
		}
		/* Weight updates. */
		for (i = 0; i < NOUT; i++) {
			for (j = 0; j < NHID; j++) w2[i][j] += rate * dout[i] * hid[j];
			b2[i] += rate * dout[i];
		}
		for (i = 0; i < NHID; i++) {
			for (j = 0; j < NIN; j++) w1[i][j] += rate * dhid[i] * pat_in[p][j];
			b1[i] += rate * dhid[i];
		}
	}
	return err;
}

int main(void) {
	int epoch, i, best;
	double err, bestv;
	int check;

	srand_(7);
	init();
	err = 0.0;
	for (epoch = 0; epoch < 12 * SCALE; epoch++) {
		err = train_epoch(0.3);
	}
	/* Evaluate: classify each pattern by the strongest output. */
	check = 0;
	for (i = 0; i < NPAT; i++) {
		int k;
		forward(pat_in[i]);
		best = 0;
		bestv = out[0];
		for (k = 1; k < NOUT; k++) {
			if (out[k] > bestv) { bestv = out[k]; best = k; }
		}
		check = check * 10 + best;
		check %= 100000000;
	}
	_print_int(check);
	_putc(10);
	_print_int((int)(err * 10000.0));
	_putc(10);
	return check & 0x7f;
}
