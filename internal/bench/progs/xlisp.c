/*
 * xlisp — the "li" workload: a small Lisp interpreter with cons cells,
 * an association-list environment, a mark/sweep garbage collector and a
 * recursive evaluator. Pointer-chasing and recursion dominated, like
 * SPEC92 li.
 */

int strcmp_(char *a, char *b);
int strlen_(char *s);

enum { SCALE = 3 };

enum { TINT = 1, TSYM = 2, TCONS = 3, TLAMBDA = 4 };

enum { NCELLS = 6000, NSYMS = 64, NAMELEN = 12, NROOTS = 8192 };

struct cell {
	int tag;
	int val;           /* TINT value or TSYM id */
	struct cell *car;
	struct cell *cdr;
	int mark;
};

struct cell pool[NCELLS];
struct cell *freep;
int gc_count;
int alloc_count;

char symname[NSYMS][NAMELEN];
int nsyms;

/* Root stack for GC safety during evaluation. */
struct cell *roots[NROOTS];
int nroots;

struct cell *global_env;

void push_root(struct cell *c) {
	if (nroots >= NROOTS) { _puts("root overflow\n"); _exit(2); }
	roots[nroots++] = c;
}

void pop_roots(int n) { nroots -= n; }

void mark(struct cell *c) {
	while (c && !c->mark) {
		c->mark = 1;
		if (c->tag == TCONS || c->tag == TLAMBDA) {
			mark(c->car);
			c = c->cdr;
		} else {
			return;
		}
	}
}

void gc(void) {
	int i;
	gc_count++;
	for (i = 0; i < NCELLS; i++) pool[i].mark = 0;
	mark(global_env);
	for (i = 0; i < nroots; i++) mark(roots[i]);
	freep = 0;
	for (i = 0; i < NCELLS; i++) {
		if (!pool[i].mark) {
			pool[i].tag = 0;
			pool[i].cdr = freep;
			freep = &pool[i];
		}
	}
	if (!freep) { _puts("heap exhausted\n"); _exit(3); }
}

struct cell *alloc(void) {
	struct cell *c;
	if (!freep) gc();
	c = freep;
	freep = c->cdr;
	c->car = 0;
	c->cdr = 0;
	alloc_count++;
	return c;
}

struct cell *mkint(int v) {
	struct cell *c = alloc();
	c->tag = TINT;
	c->val = v;
	return c;
}

struct cell *cons(struct cell *a, struct cell *d) {
	struct cell *c;
	push_root(a);
	push_root(d);
	c = alloc();
	c->tag = TCONS;
	c->car = a;
	c->cdr = d;
	pop_roots(2);
	return c;
}

int intern(char *name) {
	int i, j;
	for (i = 0; i < nsyms; i++) {
		if (strcmp_(symname[i], name) == 0) return i;
	}
	if (nsyms >= NSYMS) { _puts("too many symbols\n"); _exit(4); }
	for (j = 0; name[j] && j < NAMELEN - 1; j++) symname[nsyms][j] = name[j];
	symname[nsyms][j] = 0;
	return nsyms++;
}

struct cell *mksym(int id) {
	struct cell *c = alloc();
	c->tag = TSYM;
	c->val = id;
	return c;
}

/* ---- reader ---- */

char *rdp; /* read position */

void skipws(void) {
	while (*rdp == ' ' || *rdp == '\n' || *rdp == '\t') rdp++;
}

struct cell *read_expr(void);

struct cell *read_list(void) {
	struct cell *head = 0, *tail = 0, *e;
	skipws();
	while (*rdp && *rdp != ')') {
		/* The partial list must survive allocations inside read_expr. */
		push_root(head);
		e = read_expr();
		e = cons(e, 0);
		pop_roots(1);
		if (!head) {
			head = e;
			tail = e;
		} else {
			tail->cdr = e;
			tail = e;
		}
		skipws();
	}
	if (*rdp == ')') rdp++;
	return head;
}

struct cell *read_expr(void) {
	char buf[NAMELEN];
	int n, neg, v;
	skipws();
	if (*rdp == '(') {
		rdp++;
		return read_list();
	}
	if ((*rdp >= '0' && *rdp <= '9') || (*rdp == '-' && rdp[1] >= '0' && rdp[1] <= '9')) {
		neg = 0;
		if (*rdp == '-') { neg = 1; rdp++; }
		v = 0;
		while (*rdp >= '0' && *rdp <= '9') v = v * 10 + (*rdp++ - '0');
		return mkint(neg ? -v : v);
	}
	n = 0;
	while (*rdp && *rdp != ' ' && *rdp != '\n' && *rdp != '\t' && *rdp != '(' && *rdp != ')' && n < NAMELEN - 1) {
		buf[n++] = *rdp++;
	}
	buf[n] = 0;
	return mksym(intern(buf));
}

/* ---- evaluator ---- */

int s_quote, s_if, s_define, s_lambda, s_plus, s_minus, s_times;
int s_lt, s_eq, s_cons, s_car, s_cdr, s_null, s_t, s_while, s_set;

struct cell *assq(int sym, struct cell *env) {
	while (env) {
		if (env->car && env->car->car && env->car->car->val == sym) return env->car;
		env = env->cdr;
	}
	return 0;
}

struct cell *eval(struct cell *e, struct cell *env);

struct cell *evlist(struct cell *l, struct cell *env) {
	struct cell *head = 0, *tail = 0, *v, *node;
	push_root(l);
	push_root(env);
	while (l) {
		push_root(head);
		v = eval(l->car, env);
		push_root(v);
		node = cons(v, 0);
		pop_roots(2);
		if (!head) { head = node; tail = node; }
		else { tail->cdr = node; tail = node; }
		l = l->cdr;
	}
	pop_roots(2);
	return head;
}

int require_int(struct cell *c) {
	if (!c || c->tag != TINT) { _puts("type error: int\n"); _exit(5); }
	return c->val;
}

struct cell *apply(struct cell *fn, struct cell *args, struct cell *env);

struct cell *eval(struct cell *e, struct cell *env) {
	struct cell *p, *fn, *args, *v;
	int op;

	if (!e) return 0;
	if (e->tag == TINT) return e;
	if (e->tag == TSYM) {
		p = assq(e->val, env);
		if (!p) p = assq(e->val, global_env);
		if (!p) { _puts("unbound: "); _puts(symname[e->val]); _putc(10); _exit(6); }
		return p->cdr;
	}
	/* A list: special forms first. */
	if (e->car && e->car->tag == TSYM) {
		op = e->car->val;
		if (op == s_quote) return e->cdr->car;
		if (op == s_if) {
			push_root(e);
			push_root(env);
			v = eval(e->cdr->car, env);
			pop_roots(2);
			if (v && !(v->tag == TINT && v->val == 0)) {
				return eval(e->cdr->cdr->car, env);
			}
			if (e->cdr->cdr->cdr) return eval(e->cdr->cdr->cdr->car, env);
			return 0;
		}
		if (op == s_define) {
			/* (define (name args...) body) or (define name expr) */
			struct cell *sig = e->cdr->car;
			push_root(e);
			if (sig->tag == TCONS) {
				struct cell *lam = alloc();
				lam->tag = TLAMBDA;
				lam->car = sig->cdr;        /* params */
				lam->cdr = e->cdr->cdr->car; /* body */
				push_root(lam);
				global_env = cons(cons(mksym(sig->car->val), lam), global_env);
				pop_roots(1);
			} else {
				v = eval(e->cdr->cdr->car, env);
				push_root(v);
				global_env = cons(cons(mksym(sig->val), v), global_env);
				pop_roots(1);
			}
			pop_roots(1);
			return 0;
		}
		if (op == s_lambda) {
			struct cell *lam = alloc();
			lam->tag = TLAMBDA;
			lam->car = e->cdr->car;
			lam->cdr = e->cdr->cdr->car;
			return lam;
		}
	}
	/* Application. */
	push_root(e);
	push_root(env);
	fn = eval(e->car, env);
	push_root(fn);
	args = evlist(e->cdr, env);
	push_root(args);
	v = apply(fn, args, env);
	pop_roots(4);
	return v;
}

struct cell *apply(struct cell *fn, struct cell *args, struct cell *env) {
	int op, a, b;
	struct cell *newenv, *params;

	if (fn && fn->tag == TSYM) {
		op = fn->val;
		if (op == s_cons) return cons(args->car, args->cdr->car);
		if (op == s_car) return args->car ? args->car->car : 0;
		if (op == s_cdr) return args->car ? args->car->cdr : 0;
		if (op == s_null) return mkint(args->car == 0);
		a = require_int(args->car);
		if (args->cdr) {
			b = require_int(args->cdr->car);
		} else {
			b = 0;
		}
		if (op == s_plus) return mkint(a + b);
		if (op == s_minus) return mkint(a - b);
		if (op == s_times) return mkint(a * b);
		if (op == s_lt) return mkint(a < b);
		if (op == s_eq) return mkint(a == b);
		_puts("bad primitive\n");
		_exit(7);
	}
	if (!fn || fn->tag != TLAMBDA) { _puts("not a function\n"); _exit(8); }
	newenv = env;
	params = fn->car;
	push_root(fn);
	push_root(args);
	while (params && args) {
		push_root(newenv);
		newenv = cons(cons(mksym(params->car->val), args->car), newenv);
		pop_roots(1);
		params = params->cdr;
		args = args->cdr;
	}
	push_root(newenv);
	{
		struct cell *v = eval(fn->cdr, newenv);
		pop_roots(3);
		return v;
	}
}

/* Bind a primitive: the value is the symbol itself (tag dispatch). */
void defprim(char *name) {
	int id = intern(name);
	global_env = cons(cons(mksym(id), mksym(id)), global_env);
}

char *program =
	"(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))"
	"(define (tak x y z) (if (< y x)"
	"  (tak (tak (- x 1) y z) (tak (- y 1) z x) (tak (- z 1) x y)) z))"
	"(define (range n) (if (= n 0) (quote ()) (cons n (range (- n 1)))))"
	"(define (len l) (if (null l) 0 (+ 1 (len (cdr l)))))"
	"(define (append2 a b) (if (null a) b (cons (car a) (append2 (cdr a) b))))"
	"(define (rev l) (if (null l) (quote ()) (append2 (rev (cdr l)) (cons (car l) (quote ())))))"
	"(define (sum l) (if (null l) 0 (+ (car l) (sum (cdr l))))) ";

int run_queries(int n) {
	int check = 0;
	char qbuf[64];
	struct cell *e, *v;
	int i;

	/* (fib 11+k%3), (tak ...), list ops */
	for (i = 0; i < n; i++) {
		rdp = "(fib 11)";
		e = read_expr();
		push_root(e);
		v = eval(e, 0);
		pop_roots(1);
		check += require_int(v);

		rdp = "(tak 9 6 3)";
		e = read_expr();
		push_root(e);
		v = eval(e, 0);
		pop_roots(1);
		check += require_int(v);

		rdp = "(sum (rev (range 40)))";
		e = read_expr();
		push_root(e);
		v = eval(e, 0);
		pop_roots(1);
		check += require_int(v);

		rdp = "(len (append2 (range 25) (range 30)))";
		e = read_expr();
		push_root(e);
		v = eval(e, 0);
		pop_roots(1);
		check += require_int(v);
	}
	(void)qbuf;
	return check;
}

int main(void) {
	int i;
	struct cell *e;
	int check;

	/* Build the free list. */
	freep = 0;
	for (i = 0; i < NCELLS; i++) {
		pool[i].cdr = freep;
		freep = &pool[i];
	}

	s_quote = intern("quote");
	s_if = intern("if");
	s_define = intern("define");
	s_lambda = intern("lambda");
	s_plus = intern("+");
	s_minus = intern("-");
	s_times = intern("*");
	s_lt = intern("<");
	s_eq = intern("=");
	s_cons = intern("cons");
	s_car = intern("car");
	s_cdr = intern("cdr");
	s_null = intern("null");

	defprim("+");
	defprim("-");
	defprim("*");
	defprim("<");
	defprim("=");
	defprim("cons");
	defprim("car");
	defprim("cdr");
	defprim("null");

	/* Load the program. */
	rdp = program;
	for (;;) {
		char *save = rdp;
		skipws();
		if (!*rdp) break;
		rdp = save;
		skipws();
		e = read_expr();
		push_root(e);
		eval(e, 0);
		pop_roots(1);
	}

	check = run_queries(SCALE);
	_print_int(check);
	_putc(10);
	_print_int(gc_count);
	_putc(10);
	return check & 0x7f;
}
