// Package bench reproduces the paper's evaluation (§4): it builds the
// four SPEC92-style workloads (li/xlisp, compress, alvinn, eqntott),
// runs them through every execution path — OmniVM interpretation,
// load-time translation with and without SFI and translator
// optimizations, and the native cc/gcc baselines — and regenerates each
// table and figure. Execution time is simulated cycles; every
// measurement cross-checks the workload's exit code and output against
// the interpreter, so a wrong number cannot silently masquerade as a
// fast one.
package bench

import (
	"embed"
	"fmt"
	"regexp"
	"strconv"

	"omniware/internal/cc"
	"omniware/internal/cc/ir"
	"omniware/internal/core"
	"omniware/internal/native"
	"omniware/internal/ovm"
	"omniware/internal/target"
	"omniware/internal/translate"
)

//go:embed progs/*.c
var progsFS embed.FS

// WorkloadNames lists the benchmark programs in the paper's row order.
var WorkloadNames = []string{"li", "compress", "alvinn", "eqntott"}

var progFile = map[string]string{
	"li":       "progs/xlisp.c",
	"compress": "progs/compress.c",
	"alvinn":   "progs/alvinn.c",
	"eqntott":  "progs/eqntott.c",
}

var scaleRe = regexp.MustCompile(`enum \{ SCALE = \d+ \};`)

// Sources returns the translation units of a workload. scale <= 0
// keeps each program's built-in size; otherwise the SCALE constant is
// overridden (1 is used by the test suite for speed).
func Sources(name string, scale int) ([]core.SourceFile, error) {
	prog, ok := progFile[name]
	if !ok {
		return nil, fmt.Errorf("bench: unknown workload %q", name)
	}
	src, err := progsFS.ReadFile(prog)
	if err != nil {
		return nil, err
	}
	libc, err := progsFS.ReadFile("progs/libc.c")
	if err != nil {
		return nil, err
	}
	text := string(src)
	if scale > 0 {
		text = scaleRe.ReplaceAllString(text, "enum { SCALE = "+strconv.Itoa(scale)+" };")
	}
	return []core.SourceFile{
		{Name: name + ".c", Src: text},
		{Name: "libc.c", Src: string(libc)},
	}, nil
}

// Built is a workload compiled once and ready to measure.
type Built struct {
	Name  string
	Files []core.SourceFile
	Mod   *ovm.Module
	Funcs []*ir.Func

	RefExit int32
	RefOut  string
	Interp  Measurement
}

// Measurement is one execution's cost.
type Measurement struct {
	Cycles uint64
	Insts  uint64
	Counts [target.NumCats]uint64
}

// Build compiles a workload at the given optimization level and
// register-file size, and establishes the interpreter reference run.
func Build(name string, scale int, opts cc.Options) (*Built, error) {
	files, err := Sources(name, scale)
	if err != nil {
		return nil, err
	}
	mod, err := core.BuildC(files, opts)
	if err != nil {
		return nil, fmt.Errorf("bench: %s: %w", name, err)
	}
	funcs, err := core.BuildIRFuncs(files, opts)
	if err != nil {
		return nil, fmt.Errorf("bench: %s IR: %w", name, err)
	}
	b := &Built{Name: name, Files: files, Mod: mod, Funcs: funcs}

	h, err := core.NewHost(mod, core.RunConfig{})
	if err != nil {
		return nil, err
	}
	res, err := h.RunInterp()
	if err != nil {
		return nil, fmt.Errorf("bench: %s interp: %w", name, err)
	}
	if res.Faulted {
		return nil, fmt.Errorf("bench: %s interp faulted: %s", name, res.Fault)
	}
	b.RefExit = res.ExitCode
	b.RefOut = h.Output()
	b.Interp = Measurement{Cycles: res.Cycles, Insts: res.Steps}
	return b, nil
}

func (b *Built) validate(kind string, exit int32, out string) error {
	if exit != b.RefExit || out != b.RefOut {
		return fmt.Errorf("bench: %s/%s: wrong answer (exit %d want %d, out %q want %q)",
			b.Name, kind, exit, b.RefExit, out, b.RefOut)
	}
	return nil
}

// Translated measures the load-time-translated execution.
func (b *Built) Translated(mach *target.Machine, opt translate.Options) (Measurement, error) {
	h, err := core.NewHost(b.Mod, core.RunConfig{})
	if err != nil {
		return Measurement{}, err
	}
	res, _, err := h.RunTranslated(mach, opt)
	if err != nil {
		return Measurement{}, fmt.Errorf("bench: %s/%s translated: %w", b.Name, mach.Name, err)
	}
	if res.Faulted {
		return Measurement{}, fmt.Errorf("bench: %s/%s translated faulted: %s", b.Name, mach.Name, res.Fault)
	}
	if err := b.validate("translated/"+mach.Name, res.ExitCode, h.Output()); err != nil {
		return Measurement{}, err
	}
	return Measurement{Cycles: res.Cycles, Insts: res.Insts, Counts: res.Counts}, nil
}

// Native measures a baseline-compiler execution.
func (b *Built) Native(mach *target.Machine, prof native.Profile) (Measurement, error) {
	h, err := core.NewHost(b.Mod, core.RunConfig{})
	if err != nil {
		return Measurement{}, err
	}
	res, err := h.RunNative(mach, prof, b.Funcs)
	if err != nil {
		return Measurement{}, fmt.Errorf("bench: %s/%s native %s: %w", b.Name, mach.Name, prof, err)
	}
	if res.Faulted {
		return Measurement{}, fmt.Errorf("bench: %s/%s native %s faulted: %s", b.Name, mach.Name, prof, res.Fault)
	}
	if err := b.validate("native-"+prof.String()+"/"+mach.Name, res.ExitCode, h.Output()); err != nil {
		return Measurement{}, err
	}
	return Measurement{Cycles: res.Cycles, Insts: res.Insts, Counts: res.Counts}, nil
}

// Suite bundles the four built workloads plus memoized measurements.
type Suite struct {
	Scale    int
	Workload []*Built
	memo     map[string]Measurement
}

// NewSuite builds all four workloads.
func NewSuite(scale int) (*Suite, error) {
	s := &Suite{Scale: scale, memo: map[string]Measurement{}}
	for _, name := range WorkloadNames {
		b, err := Build(name, scale, cc.Options{OptLevel: 2})
		if err != nil {
			return nil, err
		}
		s.Workload = append(s.Workload, b)
	}
	return s, nil
}

func (s *Suite) get(key string, f func() (Measurement, error)) (Measurement, error) {
	if m, ok := s.memo[key]; ok {
		return m, nil
	}
	m, err := f()
	if err != nil {
		return m, err
	}
	s.memo[key] = m
	return m, nil
}

// T returns the translated measurement for (workload, machine, config).
func (s *Suite) T(b *Built, mach *target.Machine, opt translate.Options) (Measurement, error) {
	key := fmt.Sprintf("t/%s/%s/%+v", b.Name, mach.Name, opt)
	return s.get(key, func() (Measurement, error) { return b.Translated(mach, opt) })
}

// N returns the native measurement for (workload, machine, profile).
func (s *Suite) N(b *Built, mach *target.Machine, prof native.Profile) (Measurement, error) {
	key := fmt.Sprintf("n/%s/%s/%s", b.Name, mach.Name, prof)
	return s.get(key, func() (Measurement, error) { return b.Native(mach, prof) })
}
