package native

import (
	"fmt"

	"omniware/internal/cc/ir"
	"omniware/internal/cc/regalloc"
	"omniware/internal/target"
)

func (e *emitter) loc(v ir.VReg) regalloc.Loc { return e.ra.Loc[v] }

func (e *emitter) slotAddr(slot int, extra int64) int32 {
	return int32(e.fr.slotOff[slot]) + int32(extra)
}

func (e *emitter) intUse(v ir.VReg, sc int) target.Reg {
	l := e.loc(v)
	if l.Kind == regalloc.InReg {
		return target.Reg(l.Reg)
	}
	s := target.Reg(e.ra.ScratchInt[sc])
	e.emit(target.Inst{Op: target.Lw, Rd: s, Rs1: e.sp(), Rs2: target.NoReg, Imm: e.slotAddr(l.Slot, 0)})
	return s
}

func (e *emitter) intDef(v ir.VReg) (target.Reg, func()) {
	l := e.loc(v)
	if l.Kind == regalloc.InReg {
		return target.Reg(l.Reg), func() {}
	}
	s := target.Reg(e.ra.ScratchInt[0])
	return s, func() {
		e.emit(target.Inst{Op: target.Sw, Rd: s, Rs1: e.sp(), Rs2: target.NoReg, Imm: e.slotAddr(l.Slot, 0)})
	}
}

func (e *emitter) fpUse(v ir.VReg, sc int) target.Reg {
	l := e.loc(v)
	if l.Kind == regalloc.InReg {
		return target.Reg(l.Reg)
	}
	s := target.Reg(e.ra.ScratchFP[sc])
	e.emit(target.Inst{Op: target.Ld, Rd: s, Rs1: e.sp(), Rs2: target.NoReg, Imm: e.slotAddr(l.Slot, 0)})
	return s
}

func (e *emitter) fpDef(v ir.VReg) (target.Reg, func()) {
	l := e.loc(v)
	if l.Kind == regalloc.InReg {
		return target.Reg(l.Reg), func() {}
	}
	s := target.Reg(e.ra.ScratchFP[0])
	return s, func() {
		e.emit(target.Inst{Op: target.Sd, Rd: s, Rs1: e.sp(), Rs2: target.NoReg, Imm: e.slotAddr(l.Slot, 0)})
	}
}

func (e *emitter) zero() target.Reg { return e.c.m.ZeroReg }

// loadImm materializes a 32-bit constant.
func (e *emitter) loadImm(rd target.Reg, v int32) {
	m := e.c.m
	if m.Arch == target.X86 {
		e.emit(target.Inst{Op: target.MovI, Rd: rd, Rs1: target.NoReg, Rs2: target.NoReg, Imm: v})
		return
	}
	if m.FitsImm(v) {
		e.emit(target.Inst{Op: target.AddI, Rd: rd, Rs1: m.ZeroReg, Rs2: target.NoReg, Imm: v})
		return
	}
	hi := int32(uint32(v) >> 16)
	lo := int32(uint32(v) & 0xffff)
	e.emit(target.Inst{Op: target.Lui, Rd: rd, Rs1: target.NoReg, Rs2: target.NoReg, Imm: hi})
	if lo != 0 {
		e.emit(target.Inst{Op: target.OrI, Rd: rd, Rs1: rd, Rs2: target.NoReg, Imm: lo})
	}
}

var irALU = map[ir.Op]target.Op{
	ir.Add: target.Add, ir.Sub: target.Sub, ir.Mul: target.Mul,
	ir.Div: target.Div, ir.DivU: target.DivU, ir.Rem: target.Rem,
	ir.RemU: target.RemU, ir.And: target.And, ir.Or: target.Or,
	ir.Xor: target.Xor, ir.Shl: target.Sll, ir.Shr: target.Srl,
	ir.Sra: target.Sra,
}

var irALUImm = map[ir.Op]struct {
	imm target.Op
	reg target.Op
}{
	ir.AddI: {target.AddI, target.Add},
	ir.AndI: {target.AndI, target.And},
	ir.OrI:  {target.OrI, target.Or},
	ir.XorI: {target.XorI, target.Xor},
	ir.ShlI: {target.SllI, target.Sll},
	ir.ShrI: {target.SrlI, target.Srl},
	ir.SraI: {target.SraI, target.Sra},
	ir.MulI: {target.Nop, target.Mul}, // no immediate multiply
}

var irFP = map[ir.Op][2]target.Op{
	ir.FAdd: {target.FaddS, target.FaddD},
	ir.FSub: {target.FsubS, target.FsubD},
	ir.FMul: {target.FmulS, target.FmulD},
	ir.FDiv: {target.FdivS, target.FdivD},
	ir.FNeg: {target.FnegS, target.FnegD},
}

func fpIdx(c ir.Class) int {
	if c == ir.ClassD {
		return 1
	}
	return 0
}

var irMemLoad = map[ir.MemOp]target.Op{
	ir.MemB: target.Lb, ir.MemBU: target.Lbu, ir.MemH: target.Lh,
	ir.MemHU: target.Lhu, ir.MemW: target.Lw, ir.MemF: target.Lf, ir.MemD: target.Ld,
}

var irMemStore = map[ir.MemOp]target.Op{
	ir.MemB: target.Sb, ir.MemBU: target.Sb, ir.MemH: target.Sh,
	ir.MemHU: target.Sh, ir.MemW: target.Sw, ir.MemF: target.Sf, ir.MemD: target.Sd,
}

func (e *emitter) inst(in *ir.Inst) error {
	m := e.c.m
	switch in.Op {
	case ir.Nop:

	case ir.Const:
		if in.Class == ir.ClassW {
			rd, fl := e.intDef(in.Dst)
			e.loadImm(rd, int32(in.Imm))
			fl()
			return nil
		}
		fd, fl := e.fpDef(in.Dst)
		off := e.c.fpConst(in.FImm)
		e.emit(target.Inst{Op: target.Ld, Rd: fd, Rs1: target.NoReg, Rs2: target.NoReg, Imm: off, Sym: fpPoolSym})
		fl()

	case ir.Copy:
		if in.Class == ir.ClassW {
			a := e.intUse(in.A, 0)
			rd, fl := e.intDef(in.Dst)
			if rd != a {
				e.emit(target.Inst{Op: target.Mov, Rd: rd, Rs1: a, Rs2: target.NoReg})
			}
			fl()
			return nil
		}
		a := e.fpUse(in.A, 0)
		fd, fl := e.fpDef(in.Dst)
		if fd != a {
			e.emit(target.Inst{Op: target.Fmov, Rd: fd, Rs1: a, Rs2: target.NoReg})
		}
		fl()

	case ir.Add, ir.Sub, ir.Mul, ir.Div, ir.DivU, ir.Rem, ir.RemU,
		ir.And, ir.Or, ir.Xor, ir.Shl, ir.Shr, ir.Sra:
		a := e.intUse(in.A, 0)
		op := irALU[in.Op]
		// x86 cc profile: fold a spilled second operand into a
		// register-memory form.
		if m.Arch == target.X86 && e.c.prof == ProfCC && memFoldable(op) {
			if l := e.loc(in.B); l.Kind == regalloc.Spilled {
				rd, fl := e.intDef(in.Dst)
				if rd != a {
					e.emit(target.Inst{Op: target.Mov, Rd: rd, Rs1: a, Rs2: target.NoReg})
				}
				e.emit(target.Inst{Op: op, Rd: rd, Rs1: rd, Rs2: e.sp(), Imm: e.slotAddr(l.Slot, 0), MemSrc: true})
				fl()
				return nil
			}
		}
		b := e.intUse(in.B, 1)
		rd, fl := e.intDef(in.Dst)
		e.emit(target.Inst{Op: op, Rd: rd, Rs1: a, Rs2: b})
		fl()

	case ir.Neg:
		a := e.intUse(in.A, 0)
		rd, fl := e.intDef(in.Dst)
		if m.ZeroReg != target.NoReg {
			e.emit(target.Inst{Op: target.Sub, Rd: rd, Rs1: m.ZeroReg, Rs2: a})
		} else {
			e.emit(target.Inst{Op: target.Neg, Rd: rd, Rs1: a, Rs2: target.NoReg})
		}
		fl()

	case ir.AddI, ir.AndI, ir.OrI, ir.XorI, ir.ShlI, ir.ShrI, ir.SraI, ir.MulI:
		a := e.intUse(in.A, 0)
		rd, fl := e.intDef(in.Dst)
		pair := irALUImm[in.Op]
		imm := int32(in.Imm)
		isShift := in.Op == ir.ShlI || in.Op == ir.ShrI || in.Op == ir.SraI
		if pair.imm != target.Nop && (isShift || m.Arch == target.X86 || m.FitsImm(imm)) {
			e.emit(target.Inst{Op: pair.imm, Rd: rd, Rs1: a, Rs2: target.NoReg, Imm: imm})
			fl()
			return nil
		}
		s := target.Reg(e.ra.ScratchInt[1])
		e.loadImm(s, imm)
		e.emit(target.Inst{Op: pair.reg, Rd: rd, Rs1: a, Rs2: s})
		fl()

	case ir.Set:
		if in.Class == ir.ClassW {
			e.setReg(in)
		} else {
			e.setFP(in)
		}

	case ir.SetI:
		e.setImm(in)

	case ir.FAdd, ir.FSub, ir.FMul, ir.FDiv:
		a := e.fpUse(in.A, 0)
		b := e.fpUse(in.B, 1)
		rd, fl := e.fpDef(in.Dst)
		e.emit(target.Inst{Op: irFP[in.Op][fpIdx(in.Class)], Rd: rd, Rs1: a, Rs2: b})
		fl()

	case ir.FNeg:
		a := e.fpUse(in.A, 0)
		rd, fl := e.fpDef(in.Dst)
		e.emit(target.Inst{Op: irFP[in.Op][fpIdx(in.Class)], Rd: rd, Rs1: a, Rs2: target.NoReg})
		fl()

	case ir.Cvt:
		e.cvt(in)

	case ir.Load:
		base, imm, indexed, idx, err := e.memAddr(in)
		if err != nil {
			return err
		}
		op := irMemLoad[in.Mem]
		if in.Mem == ir.MemF || in.Mem == ir.MemD {
			rd, fl := e.fpDef(in.Dst)
			e.emit(target.Inst{Op: op, Rd: rd, Rs1: base, Rs2: idx, Imm: imm, Indexed: indexed})
			fl()
			return nil
		}
		rd, fl := e.intDef(in.Dst)
		e.emit(target.Inst{Op: op, Rd: rd, Rs1: base, Rs2: idx, Imm: imm, Indexed: indexed})
		fl()

	case ir.Store:
		base, imm, indexed, idx, err := e.memAddr(in)
		if err != nil {
			return err
		}
		op := irMemStore[in.Mem]
		if in.Mem == ir.MemF || in.Mem == ir.MemD {
			v := e.fpUse(in.B, 1)
			e.emit(target.Inst{Op: op, Rd: v, Rs1: base, Rs2: idx, Imm: imm, Indexed: indexed})
			return nil
		}
		// The value register may need scratch 1, which an indexed
		// address may hold: collapse the address first.
		if indexed && e.loc(in.B).Kind == regalloc.Spilled {
			s0 := target.Reg(e.ra.ScratchInt[0])
			e.emit(target.Inst{Op: target.Add, Rd: s0, Rs1: base, Rs2: idx})
			base, imm, indexed, idx = s0, 0, false, target.NoReg
		}
		v := e.intUse(in.B, 1)
		e.emit(target.Inst{Op: op, Rd: v, Rs1: base, Rs2: idx, Imm: imm, Indexed: indexed})

	case ir.Addr:
		rd, fl := e.intDef(in.Dst)
		switch {
		case in.Sym != "":
			if e.c.isFunc(in.Sym) {
				e.emit(target.Inst{Op: target.MovI, Rd: rd, Rs1: target.NoReg, Rs2: target.NoReg, Sym: in.Sym})
			} else {
				addr, ok := e.c.symAddr(in.Sym)
				if !ok {
					return fmt.Errorf("unresolved symbol %q", in.Sym)
				}
				e.loadImm(rd, int32(addr)+int32(in.Imm))
			}
		case in.Slot != ir.NoSlot:
			e.emit(target.Inst{Op: target.AddI, Rd: rd, Rs1: e.sp(), Rs2: target.NoReg, Imm: e.slotAddr(in.Slot, in.Imm)})
		default:
			a := e.intUse(in.A, 1)
			imm := int32(in.Imm)
			if m.Arch == target.X86 || m.FitsImm(imm) {
				e.emit(target.Inst{Op: target.AddI, Rd: rd, Rs1: a, Rs2: target.NoReg, Imm: imm})
			} else {
				s := target.Reg(e.ra.ScratchInt[0])
				if s == a {
					s = target.Reg(e.ra.ScratchInt[1])
				}
				e.loadImm(s, imm)
				e.emit(target.Inst{Op: target.Add, Rd: rd, Rs1: a, Rs2: s})
			}
		}
		fl()

	case ir.Call, ir.Syscall:
		e.call(in)

	case ir.Ret:
		if in.A != ir.NoReg {
			if in.Class.IsFP() {
				fs := e.fpUse(in.A, 0)
				ret := m.OmniFP[1]
				if ret == target.NoReg {
					e.emit(target.Inst{Op: target.Sd, Rd: fs, Rs1: target.NoReg, Rs2: target.NoReg, Imm: int32(e.c.regsave + target.FPSlotOffset(1))})
				} else if fs != ret {
					e.emit(target.Inst{Op: target.Fmov, Rd: ret, Rs1: fs, Rs2: target.NoReg})
				}
			} else {
				rs := e.intUse(in.A, 0)
				ret := m.OmniInt[1]
				if ret == target.NoReg {
					e.emit(target.Inst{Op: target.Sw, Rd: rs, Rs1: target.NoReg, Rs2: target.NoReg, Imm: int32(regSaveAddr(e.c.regsave, 1))})
				} else if rs != ret {
					e.emit(target.Inst{Op: target.Mov, Rd: ret, Rs1: rs, Rs2: target.NoReg})
				}
			}
		}
		e.emit(target.Inst{Op: target.J, Rd: target.NoReg, Rs1: target.NoReg, Rs2: target.NoReg, Sym: epiMark})
		e.beginUnit()

	case ir.Br, ir.BrI:
		e.branch(in)
		e.beginUnit()

	case ir.Jmp:
		e.emit(target.Inst{Op: target.J, Rd: target.NoReg, Rs1: target.NoReg, Rs2: target.NoReg, Target: int32(in.Then), Sym: blkMark})
		e.beginUnit()

	default:
		return fmt.Errorf("unhandled IR op %v", in.Op)
	}
	return nil
}

func memFoldable(op target.Op) bool {
	switch op {
	case target.Add, target.Sub, target.Mul, target.And, target.Or, target.Xor:
		return true
	}
	return false
}

// memAddr resolves an IR memory operand.
func (e *emitter) memAddr(in *ir.Inst) (base target.Reg, imm int32, indexed bool, idx target.Reg, err error) {
	m := e.c.m
	switch {
	case in.Sym != "":
		addr, ok := e.c.symAddr(in.Sym)
		if !ok {
			return 0, 0, false, target.NoReg, fmt.Errorf("unresolved symbol %q", in.Sym)
		}
		abs := int32(addr) + int32(in.Imm)
		if m.Arch == target.X86 {
			return target.NoReg, abs, false, target.NoReg, nil
		}
		// The GP register is allocatable in native code, so globals go
		// through the standard hi/lo decomposition here; the global
		// pointer belongs to the translated path. (Real compilers have
		// gp too; giving native code the extra register instead keeps
		// the comparison fair in the other direction.)
		hi := int32((uint32(abs) + 0x8000) >> 16)
		lo := abs - hi<<16
		s := target.Reg(e.ra.ScratchInt[0])
		e.emit(target.Inst{Op: target.Lui, Rd: s, Rs1: target.NoReg, Rs2: target.NoReg, Imm: hi})
		return s, lo, false, target.NoReg, nil
	case in.Slot != ir.NoSlot:
		return e.sp(), e.slotAddr(in.Slot, in.Imm), false, target.NoReg, nil
	}
	b := e.intUse(in.A, 0)
	if in.HasIdx {
		ix := e.intUse(in.Idx, 1)
		if m.Arch == target.MIPS {
			s := target.Reg(e.ra.ScratchInt[0])
			e.emit(target.Inst{Op: target.Add, Rd: s, Rs1: b, Rs2: ix})
			return s, int32(in.Imm), false, target.NoReg, nil
		}
		if in.Imm != 0 {
			// Indexed with displacement: fold the displacement.
			s := target.Reg(e.ra.ScratchInt[0])
			if s == b || s == ix {
				s = target.Reg(e.ra.ScratchInt[1])
			}
			if s == b || s == ix {
				e.emit(target.Inst{Op: target.Add, Rd: s, Rs1: b, Rs2: ix})
				return s, int32(in.Imm), false, target.NoReg, nil
			}
			e.emit(target.Inst{Op: target.AddI, Rd: s, Rs1: b, Rs2: target.NoReg, Imm: int32(in.Imm)})
			return s, 0, true, ix, nil
		}
		return b, 0, true, ix, nil
	}
	imm = int32(in.Imm)
	if m.Arch == target.X86 || m.FitsImm(imm) {
		return b, imm, false, target.NoReg, nil
	}
	hi2 := int32((uint32(imm) + 0x8000) >> 16)
	lo2 := imm - hi2<<16
	s := target.Reg(e.ra.ScratchInt[0])
	if s == b {
		s = target.Reg(e.ra.ScratchInt[1])
	}
	e.emit(target.Inst{Op: target.Lui, Rd: s, Rs1: target.NoReg, Rs2: target.NoReg, Imm: hi2})
	e.emit(target.Inst{Op: target.Add, Rd: s, Rs1: s, Rs2: b})
	return s, lo2, false, target.NoReg, nil
}
