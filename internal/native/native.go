// Package native compiles OmniC IR directly to target code — the
// stand-in for the paper's vendor cc and gcc baselines (Tables 3-6).
// Unlike the load-time translator it sees whole functions (not single
// OmniVM instructions), may use the full architectural register file,
// needs no SFI, and applies machine-dependent optimization whose
// aggressiveness depends on the profile:
//
//   - ProfCC  — the vendor compiler: local scheduling + delay-slot
//     filling, PPC compare folding (branch on a just-computed value
//     without an explicit cmp, modelling record forms), x86
//     register-memory ALU fusion.
//   - ProfGCC — weaker machine-dependent optimization: no scheduling,
//     unfilled delay slots on MIPS, explicit compares everywhere.
//
// The data image still comes from the linked OmniVM module (layout is
// compiler-controlled either way); function pointers in data are
// patched from OmniVM indices to native indices via Result.FuncEntry.
package native

import (
	"fmt"
	"math"

	"omniware/internal/cc/ir"
	"omniware/internal/ovm"
	"omniware/internal/target"
)

// Profile selects the baseline compiler being modelled.
type Profile int

const (
	ProfCC Profile = iota
	ProfGCC
)

func (p Profile) String() string {
	if p == ProfCC {
		return "cc"
	}
	return "gcc"
}

// Result is a natively compiled program.
type Result struct {
	Prog      *target.Program
	FuncEntry map[string]int32
	FPPool    []float64 // constants to place in memory; see Bind
}

// Bind finalizes pool-relative FP-constant loads once the runtime has
// chosen a pool base address, and returns the pool bytes to install
// there.
func (r *Result) Bind(poolBase uint32) []byte {
	for i := range r.Prog.Code {
		in := &r.Prog.Code[i]
		if in.Sym == fpPoolSym {
			in.Imm += int32(poolBase)
			in.Sym = ""
		}
	}
	out := make([]byte, 8*len(r.FPPool))
	for i, v := range r.FPPool {
		putF64(out[i*8:], v)
	}
	return out
}

const fpPoolSym = "$fppool"

func putF64(b []byte, v float64) {
	bits := f64bits(v)
	for i := 0; i < 8; i++ {
		b[i] = byte(bits >> (8 * i))
	}
}

// Compile compiles all functions of a program against the linked
// module's data layout. regSave is the load-time address of the
// register-save area (used for the memory-resident return register on
// x86); pass hostapi.Layout.RegSave.
func Compile(funcs []*ir.Func, mod *ovm.Module, mach *target.Machine, prof Profile, regSave uint32) (*Result, error) {
	cc := &compiler{
		funcs:   funcs,
		mod:     mod,
		m:       mach,
		prof:    prof,
		regsave: regSave,
		syms:    map[string]ovm.Symbol{},
		fpool:   map[uint64]int{},
	}
	for _, s := range mod.Symbols {
		if _, dup := cc.syms[s.Name]; !dup {
			cc.syms[s.Name] = s
		}
	}
	return cc.run()
}

type compiler struct {
	funcs []*ir.Func
	mod   *ovm.Module
	m     *target.Machine
	prof  Profile

	regsave uint32
	syms    map[string]ovm.Symbol
	fpool   map[uint64]int
	pool    []float64

	// Per-function emission state lives in emitter.
}

// regConfig builds the allocatable register lists for this machine.
// The native compiler may use registers the translated path must
// reserve (SFI dedicated registers, translator scratch) — the concrete
// form of "the runtime reserves some registers" from §3.2.
func (c *compiler) regConfig() (ints []int, intCallee map[int]bool, fps []int, fpCallee map[int]bool) {
	m := c.m
	intCallee = map[int]bool{}
	fpCallee = map[int]bool{}
	seen := map[int]bool{}
	add := func(r target.Reg, callee bool) {
		n := int(r)
		if r == target.NoReg || seen[n] {
			return
		}
		seen[n] = true
		ints = append(ints, n)
		if callee {
			intCallee[n] = true
		}
	}
	// Caller-saved images of OmniVM r5..r9 and r1..r4 first, then
	// callee-saved images of r10..r13, then the reserved registers the
	// native compiler is free to use.
	for i := 5; i <= 9; i++ {
		add(m.OmniInt[i], false)
	}
	for i := 1; i <= 4; i++ {
		add(m.OmniInt[i], false)
	}
	for i := 10; i <= 13; i++ {
		add(m.OmniInt[i], true)
	}
	// Extra registers beyond the OmniVM images: the cc profile uses the
	// full architectural file; the gcc profile models the era's weaker
	// register allocation by leaving most of them idle (least effective
	// on PPC, adequate on SPARC — the spread Table 6 reports).
	extras := 7
	if c.prof == ProfGCC {
		switch m.Arch {
		case target.PPC:
			extras = 0
		case target.MIPS:
			extras = 2
		case target.X86:
			extras = 0
		default: // SPARC: near parity
			extras = 6
		}
	}
	if m.Arch != target.X86 {
		pool := []target.Reg{m.SFIAddr, m.SFIMask, m.SFIBase, m.CodeMask, m.GP, m.Scratch[0], m.Scratch[1]}
		callee := map[target.Reg]bool{m.SFIBase: true, m.CodeMask: true, m.GP: true, m.Scratch[0]: true, m.Scratch[1]: true}
		for i, r := range pool {
			if i >= extras {
				break
			}
			add(r, callee[r])
		}
	} else if extras > 0 {
		add(target.EDI, true)
		add(target.EBP, true)
	}

	for i := 0; i <= 7; i++ {
		if r := m.OmniFP[i]; r != target.NoReg {
			fps = append(fps, int(r))
		}
	}
	for i := 8; i <= 15; i++ {
		if r := m.OmniFP[i]; r != target.NoReg {
			fps = append(fps, int(r))
			fpCallee[int(r)] = true
		}
	}
	if m.Arch != target.X86 {
		fps = append(fps, int(m.FScratch[0]), int(m.FScratch[1]))
	} else {
		fps = append(fps, int(m.FScratch[0]), int(m.FScratch[1]))
	}
	return
}

func (c *compiler) run() (*Result, error) {
	res := &Result{FuncEntry: map[string]int32{}}

	// Startup stub: call main, then exit with its result.
	var code []target.Inst
	type callFix struct {
		idx  int
		name string
	}
	var fixes []callFix

	stubCall := len(code)
	code = append(code, target.Inst{Op: target.Jal, Rd: c.raRegOrScratch(), Rs1: target.NoReg, Rs2: target.NoReg, Src: -1})
	if c.m.OmniInt[15] == target.NoReg {
		// Memory-resident return register: the stub uses the explicit
		// store + jump form (see emitter.call).
		code = code[:stubCall]
		s := c.m.Scratch[0]
		code = append(code,
			target.Inst{Op: target.MovI, Rd: s, Rs1: target.NoReg, Rs2: target.NoReg, Src: -1}, // Imm patched below
			target.Inst{Op: target.Sw, Rd: s, Rs1: target.NoReg, Rs2: target.NoReg, Imm: 0, Src: -1},
			target.Inst{Op: target.J, Rd: target.NoReg, Rs1: target.NoReg, Rs2: target.NoReg, Src: -1},
		)
		fixes = append(fixes, callFix{idx: len(code) - 1, name: "main"})
	} else {
		fixes = append(fixes, callFix{idx: stubCall, name: "main"})
	}
	if c.m.HasDelaySlot {
		code = append(code, target.Inst{Op: target.Nop, Rd: target.NoReg, Rs1: target.NoReg, Rs2: target.NoReg, Src: -1})
	}
	code = append(code,
		target.Inst{Op: target.Syscall, Rd: target.NoReg, Rs1: target.NoReg, Rs2: target.NoReg, Imm: 0, Src: -1},
		target.Inst{Op: target.Halt, Rd: target.NoReg, Rs1: target.NoReg, Rs2: target.NoReg, Src: -1},
	)
	retIdx := stubCall + 1
	if c.m.OmniInt[15] == target.NoReg {
		retIdx = stubCall + 3 // after MovI/Sw/J
		code[stubCall].Imm = int32(retIdx)
		code[stubCall+1].Imm = int32(c.regSave() + 15*4)
	} else {
		code[stubCall].Imm = int32(retIdx)
		if c.m.HasDelaySlot {
			code[stubCall].Imm = int32(stubCall + 2)
		}
	}

	// Compile each function.
	for _, f := range c.funcs {
		e, err := c.emitFunc(f)
		if err != nil {
			return nil, fmt.Errorf("native/%s: %s: %w", c.m.Name, f.Name, err)
		}
		entry := int32(len(code))
		res.FuncEntry[f.Name] = entry
		// Relocate unit-relative targets and record call fixups.
		for i := range e.code {
			in := e.code[i]
			if in.Op.IsBranch() || in.Op == target.J || in.Op == target.Jal {
				if in.Sym != "" && in.Sym != fpPoolSym {
					fixes = append(fixes, callFix{idx: len(code), name: in.Sym})
					in.Sym = ""
				} else if in.Target >= 0 {
					in.Target += entry
				}
			}
			if in.Op == target.MovI && in.Sym != "" && in.Sym != fpPoolSym && in.Sym != retMark {
				// Address of a function.
				fixes = append(fixes, callFix{idx: len(code), name: in.Sym})
				in.Sym = ""
			}
			// Return-index arithmetic for calls: Jal.Imm was emitted
			// function-relative.
			if (in.Op == target.Jal || in.Op == target.Jalr) && in.Imm >= 0 {
				in.Imm += entry
			}
			if in.Op == target.MovI && in.Sym == retMark {
				in.Sym = ""
				in.Imm += entry
			}
			code = append(code, in)
		}
	}

	// Apply call fixups.
	for _, fx := range fixes {
		entry, ok := res.FuncEntry[fx.name]
		if !ok {
			return nil, fmt.Errorf("native/%s: undefined function %q", c.m.Name, fx.name)
		}
		in := &code[fx.idx]
		if in.Op == target.MovI {
			in.Imm = entry
		} else {
			in.Target = entry
		}
	}

	res.FPPool = c.pool
	res.Prog = &target.Program{Arch: c.m.Arch, Code: code, Entry: 0}
	return res, nil
}

const retMark = "$ret"

func (c *compiler) raRegOrScratch() target.Reg {
	if r := c.m.OmniInt[15]; r != target.NoReg {
		return r
	}
	return c.m.Scratch[0]
}

func (c *compiler) regSave() uint32 { return c.regsave }

// fpConst interns an FP constant into the pool and returns its offset.
func (c *compiler) fpConst(v float64) int32 {
	bits := f64bits(v)
	if i, ok := c.fpool[bits]; ok {
		return int32(i * 8)
	}
	i := len(c.pool)
	c.fpool[bits] = i
	c.pool = append(c.pool, v)
	return int32(i * 8)
}

// symAddr resolves a data symbol to its absolute address.
func (c *compiler) symAddr(name string) (uint32, bool) {
	s, ok := c.syms[name]
	if !ok || s.Section == ovm.SecText {
		return 0, false
	}
	return s.Value, true
}

// funcSym reports whether name is a compiled function.
func (c *compiler) isFunc(name string) bool {
	for _, f := range c.funcs {
		if f.Name == name {
			return true
		}
	}
	return false
}

func f64bits(v float64) uint64 { return math.Float64bits(v) }
