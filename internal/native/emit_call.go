package native

import (
	"omniware/internal/cc/ir"
	"omniware/internal/cc/regalloc"
	"omniware/internal/target"
)

// mv is one pending parallel move. Sources and destinations are a
// register, an sp-relative slot, or an absolute address (the OmniVM
// register-save area, for machines that keep ABI registers in memory).
type mv struct {
	fp      bool
	srcReg  target.Reg // NoReg when source is in memory
	srcSlot int32      // sp offset; -1 if unused
	srcAbs  int64      // absolute address; -1 if unused
	dstReg  target.Reg
	dstSlot int32
	dstAbs  int64
}

func newMv(fp bool) mv {
	return mv{fp: fp, srcReg: target.NoReg, srcSlot: -1, srcAbs: -1, dstReg: target.NoReg, dstSlot: -1, dstAbs: -1}
}

// resolveMoves emits parallel moves using the given scratch registers
// to break cycles.
func (e *emitter) resolveMoves(moves []mv, scratchI, scratchF target.Reg) {
	sp := e.sp()
	// loadSrc stages a memory source into a register.
	loadSrc := func(m mv, into target.Reg) target.Reg {
		if m.srcReg != target.NoReg {
			return m.srcReg
		}
		if m.fp {
			if m.srcAbs >= 0 {
				e.emit(target.Inst{Op: target.Ld, Rd: into, Rs1: target.NoReg, Rs2: target.NoReg, Imm: int32(m.srcAbs)})
			} else {
				e.emit(target.Inst{Op: target.Ld, Rd: into, Rs1: sp, Rs2: target.NoReg, Imm: m.srcSlot})
			}
			return into
		}
		if m.srcAbs >= 0 {
			e.emit(target.Inst{Op: target.Lw, Rd: into, Rs1: target.NoReg, Rs2: target.NoReg, Imm: int32(m.srcAbs)})
		} else {
			e.emit(target.Inst{Op: target.Lw, Rd: into, Rs1: sp, Rs2: target.NoReg, Imm: m.srcSlot})
		}
		return into
	}
	var regMoves []mv
	for _, m := range moves {
		if m.dstSlot >= 0 || m.dstAbs >= 0 {
			scratch := scratchI
			if m.fp {
				scratch = scratchF
			}
			src := loadSrc(m, scratch)
			op := target.Sw
			if m.fp {
				op = target.Sd
			}
			if m.dstAbs >= 0 {
				e.emit(target.Inst{Op: op, Rd: src, Rs1: target.NoReg, Rs2: target.NoReg, Imm: int32(m.dstAbs)})
			} else {
				e.emit(target.Inst{Op: op, Rd: src, Rs1: sp, Rs2: target.NoReg, Imm: m.dstSlot})
			}
			continue
		}
		if m.srcSlot < 0 && m.srcAbs < 0 && m.srcReg == m.dstReg {
			continue
		}
		regMoves = append(regMoves, m)
	}
	for len(regMoves) > 0 {
		progress := false
		for i := 0; i < len(regMoves); i++ {
			m := regMoves[i]
			blocked := false
			for j, o := range regMoves {
				if j == i || o.fp != m.fp {
					continue
				}
				if o.srcReg != target.NoReg && o.srcReg == m.dstReg {
					blocked = true
					break
				}
			}
			if blocked {
				continue
			}
			e.emitMove(m)
			regMoves = append(regMoves[:i], regMoves[i+1:]...)
			progress = true
			i--
		}
		if progress {
			continue
		}
		// Cycle: stash the first source in scratch.
		m := regMoves[0]
		if m.fp {
			e.emit(target.Inst{Op: target.Fmov, Rd: scratchF, Rs1: m.srcReg, Rs2: target.NoReg})
		} else {
			e.emit(target.Inst{Op: target.Mov, Rd: scratchI, Rs1: m.srcReg, Rs2: target.NoReg})
		}
		for i := range regMoves {
			if regMoves[i].fp == m.fp && regMoves[i].srcReg != target.NoReg && regMoves[i].srcReg == m.srcReg {
				if m.fp {
					regMoves[i].srcReg = scratchF
				} else {
					regMoves[i].srcReg = scratchI
				}
			}
		}
	}
}

func (e *emitter) emitMove(m mv) {
	sp := e.sp()
	if m.fp {
		switch {
		case m.srcAbs >= 0:
			e.emit(target.Inst{Op: target.Ld, Rd: m.dstReg, Rs1: target.NoReg, Rs2: target.NoReg, Imm: int32(m.srcAbs)})
		case m.srcSlot >= 0:
			e.emit(target.Inst{Op: target.Ld, Rd: m.dstReg, Rs1: sp, Rs2: target.NoReg, Imm: m.srcSlot})
		default:
			e.emit(target.Inst{Op: target.Fmov, Rd: m.dstReg, Rs1: m.srcReg, Rs2: target.NoReg})
		}
		return
	}
	switch {
	case m.srcAbs >= 0:
		e.emit(target.Inst{Op: target.Lw, Rd: m.dstReg, Rs1: target.NoReg, Rs2: target.NoReg, Imm: int32(m.srcAbs)})
	case m.srcSlot >= 0:
		e.emit(target.Inst{Op: target.Lw, Rd: m.dstReg, Rs1: sp, Rs2: target.NoReg, Imm: m.srcSlot})
	default:
		e.emit(target.Inst{Op: target.Mov, Rd: m.dstReg, Rs1: m.srcReg, Rs2: target.NoReg})
	}
}

// paramMoves relocates incoming arguments to their allocated homes.
func (e *emitter) paramMoves() {
	m := e.c.m
	ni, nf, off := 0, 0, 0
	var moves []mv
	for i, p := range e.f.Params {
		fp := e.f.PClasses[i].IsFP()
		l := e.loc(p)
		mvv := newMv(fp)
		if fp {
			if nf < 4 {
				mvv.srcReg = m.OmniFP[nf+1]
				if mvv.srcReg == target.NoReg {
					mvv.srcAbs = int64(e.c.regsave + target.FPSlotOffset(nf+1))
				}
				nf++
			} else {
				o := (off + 7) &^ 7
				mvv.srcSlot = int32(e.fr.size + o)
				off = o + 8
			}
		} else {
			if ni < 4 {
				mvv.srcReg = m.OmniInt[ni+1]
				if mvv.srcReg == target.NoReg {
					mvv.srcAbs = int64(regSaveAddr(e.c.regsave, ni+1))
				}
				ni++
			} else {
				mvv.srcSlot = int32(e.fr.size + off)
				off += 4
			}
		}
		if l.Kind == regalloc.InReg {
			mvv.dstReg = target.Reg(l.Reg)
		} else {
			mvv.dstSlot = e.slotAddr(l.Slot, 0)
		}
		moves = append(moves, mvv)
	}
	e.resolveMoves(moves, e.abiScratch(1), target.Reg(e.ra.ScratchFP[1]))
}

// call emits IR Call and Syscall instructions.
func (e *emitter) call(in *ir.Inst) {
	m := e.c.m

	// For an indirect call, capture the target before argument moves
	// clobber its register.
	var fnReg target.Reg = target.NoReg
	if in.Op == ir.Call && in.Sym == "" {
		src := e.intUse(in.A, 0)
		fnReg = e.abiScratch(0)
		if src != fnReg {
			e.emit(target.Inst{Op: target.Mov, Rd: fnReg, Rs1: src, Rs2: target.NoReg})
		}
	}

	// Argument moves.
	intIdx, fpIdx, _ := splitArgs(in)
	var moves []mv
	for i, a := range in.Args {
		cls := ir.ClassW
		if i < len(in.ACls) {
			cls = in.ACls[i]
		}
		l := e.loc(a)
		mvv := newMv(cls.IsFP())
		if l.Kind == regalloc.InReg {
			mvv.srcReg = target.Reg(l.Reg)
		} else {
			mvv.srcSlot = e.slotAddr(l.Slot, 0)
		}
		code := intIdx[i]
		if cls.IsFP() {
			code = fpIdx[i]
		}
		if code >= 0 {
			if cls.IsFP() {
				mvv.dstReg = m.OmniFP[code]
				if mvv.dstReg == target.NoReg {
					mvv.dstAbs = int64(e.c.regsave + target.FPSlotOffset(code))
				}
			} else {
				mvv.dstReg = m.OmniInt[code]
				if mvv.dstReg == target.NoReg {
					mvv.dstAbs = int64(regSaveAddr(e.c.regsave, code))
				}
			}
		} else {
			mvv.dstSlot = int32(-2 - code) // outgoing area at sp+0
		}
		moves = append(moves, mvv)
	}
	e.resolveMoves(moves, e.abiScratch(1), target.Reg(e.ra.ScratchFP[1]))

	// Transfer.
	switch {
	case in.Op == ir.Syscall:
		e.emit(target.Inst{Op: target.Syscall, Rd: target.NoReg, Rs1: target.NoReg, Rs2: target.NoReg, Imm: int32(in.Imm)})
	case in.Sym != "":
		e.emitCallTo(in.Sym, target.NoReg)
	default:
		e.emitCallTo("", fnReg)
	}

	// Result.
	if in.HasDst() {
		if in.Class.IsFP() {
			fd, fl := e.fpDef(in.Dst)
			ret := m.OmniFP[1]
			if ret == target.NoReg {
				e.emit(target.Inst{Op: target.Ld, Rd: fd, Rs1: target.NoReg, Rs2: target.NoReg, Imm: int32(e.c.regsave + target.FPSlotOffset(1))})
			} else if fd != ret {
				e.emit(target.Inst{Op: target.Fmov, Rd: fd, Rs1: ret, Rs2: target.NoReg})
			}
			fl()
		} else {
			rd, fl := e.intDef(in.Dst)
			ret := m.OmniInt[1]
			if ret == target.NoReg {
				e.emit(target.Inst{Op: target.Lw, Rd: rd, Rs1: target.NoReg, Rs2: target.NoReg, Imm: int32(regSaveAddr(e.c.regsave, 1))})
			} else if rd != ret {
				e.emit(target.Inst{Op: target.Mov, Rd: rd, Rs1: ret, Rs2: target.NoReg})
			}
			fl()
		}
	}
}

// emitCallTo emits the control transfer of a call; sym names a direct
// target, otherwise fnReg holds the target index. The continuation
// starts a fresh unit whose id rides in Jal.Imm until finalize.
func (e *emitter) emitCallTo(sym string, fnReg target.Reg) {
	ra := e.raReg()
	if ra != target.NoReg {
		if sym != "" {
			e.emit(target.Inst{Op: target.Jal, Rd: ra, Rs1: target.NoReg, Rs2: target.NoReg, Sym: sym, Imm: -1})
		} else {
			e.emit(target.Inst{Op: target.Jalr, Rd: ra, Rs1: fnReg, Rs2: target.NoReg, Imm: -1})
		}
		cont := e.beginUnit()
		// Patch the Jal/Jalr continuation id.
		prev := e.units[len(e.units)-1]
		prev[len(prev)-1].Imm = int32(cont)
		return
	}
	// Memory-resident return register (x86): explicit store then jump.
	s := e.abiScratch(1)
	e.emit(target.Inst{Op: target.MovI, Rd: s, Rs1: target.NoReg, Rs2: target.NoReg, Sym: retMark, Imm: -1})
	e.emit(target.Inst{Op: target.Sw, Rd: s, Rs1: target.NoReg, Rs2: target.NoReg, Imm: int32(regSaveAddr(e.c.regsave, 15))})
	if sym != "" {
		e.emit(target.Inst{Op: target.J, Rd: target.NoReg, Rs1: target.NoReg, Rs2: target.NoReg, Sym: sym})
	} else {
		e.emit(target.Inst{Op: target.Jr, Rd: target.NoReg, Rs1: fnReg, Rs2: target.NoReg})
	}
	cont := e.beginUnit()
	prev := e.units[len(e.units)-1]
	for i := range prev {
		if prev[i].Op == target.MovI && prev[i].Sym == retMark && prev[i].Imm == -1 {
			prev[i].Imm = int32(cont)
		}
	}
}
