package native

import (
	"omniware/internal/cc/ir"
	"omniware/internal/target"
)

func irCC(cc ir.CC) target.CC { return target.CC(cc) }

// setReg materializes an integer reg-reg comparison result (0/1) using
// slt-style sequences.
func (e *emitter) setReg(in *ir.Inst) {
	a := e.intUse(in.A, 0)
	b := e.intUse(in.B, 1)
	rd, fl := e.intDef(in.Dst)
	emit := func(op target.Op, x, y target.Reg) {
		e.emit(target.Inst{Op: op, Rd: rd, Rs1: x, Rs2: y})
	}
	switch in.CC {
	case ir.CCEq:
		emit(target.Xor, a, b)
		e.emit(target.Inst{Op: target.SltuI, Rd: rd, Rs1: rd, Rs2: target.NoReg, Imm: 1})
	case ir.CCNe:
		emit(target.Xor, a, b)
		if z := e.zero(); z != target.NoReg {
			e.emit(target.Inst{Op: target.Sltu, Rd: rd, Rs1: z, Rs2: rd})
		} else {
			// 0 < rd unsigned == rd != 0: use (rd != 0) via two ops.
			e.emit(target.Inst{Op: target.SltuI, Rd: rd, Rs1: rd, Rs2: target.NoReg, Imm: 1})
			e.emit(target.Inst{Op: target.XorI, Rd: rd, Rs1: rd, Rs2: target.NoReg, Imm: 1})
		}
	case ir.CCLt:
		emit(target.Slt, a, b)
	case ir.CCLtU:
		emit(target.Sltu, a, b)
	case ir.CCGt:
		emit(target.Slt, b, a)
	case ir.CCGtU:
		emit(target.Sltu, b, a)
	case ir.CCLe:
		emit(target.Slt, b, a)
		e.emit(target.Inst{Op: target.XorI, Rd: rd, Rs1: rd, Rs2: target.NoReg, Imm: 1})
	case ir.CCLeU:
		emit(target.Sltu, b, a)
		e.emit(target.Inst{Op: target.XorI, Rd: rd, Rs1: rd, Rs2: target.NoReg, Imm: 1})
	case ir.CCGe:
		emit(target.Slt, a, b)
		e.emit(target.Inst{Op: target.XorI, Rd: rd, Rs1: rd, Rs2: target.NoReg, Imm: 1})
	case ir.CCGeU:
		emit(target.Sltu, a, b)
		e.emit(target.Inst{Op: target.XorI, Rd: rd, Rs1: rd, Rs2: target.NoReg, Imm: 1})
	}
	fl()
}

// setImm materializes comparison-with-immediate results.
func (e *emitter) setImm(in *ir.Inst) {
	m := e.c.m
	a := e.intUse(in.A, 0)
	imm := int32(in.Imm)
	// Large immediates: build in scratch and reuse the reg-reg path.
	if !m.FitsImm(imm) && m.Arch != target.X86 {
		s := target.Reg(e.ra.ScratchInt[1])
		e.loadImm(s, imm)
		rd, fl := e.intDef(in.Dst)
		e.setRegOps(rd, a, s, in.CC)
		fl()
		return
	}
	rd, fl := e.intDef(in.Dst)
	defer fl()
	switch in.CC {
	case ir.CCEq:
		e.emit(target.Inst{Op: target.XorI, Rd: rd, Rs1: a, Rs2: target.NoReg, Imm: imm})
		e.emit(target.Inst{Op: target.SltuI, Rd: rd, Rs1: rd, Rs2: target.NoReg, Imm: 1})
	case ir.CCNe:
		e.emit(target.Inst{Op: target.XorI, Rd: rd, Rs1: a, Rs2: target.NoReg, Imm: imm})
		e.emit(target.Inst{Op: target.SltuI, Rd: rd, Rs1: rd, Rs2: target.NoReg, Imm: 1})
		e.emit(target.Inst{Op: target.XorI, Rd: rd, Rs1: rd, Rs2: target.NoReg, Imm: 1})
	case ir.CCLt:
		e.emit(target.Inst{Op: target.SltI, Rd: rd, Rs1: a, Rs2: target.NoReg, Imm: imm})
	case ir.CCLtU:
		e.emit(target.Inst{Op: target.SltuI, Rd: rd, Rs1: a, Rs2: target.NoReg, Imm: imm})
	case ir.CCGe:
		e.emit(target.Inst{Op: target.SltI, Rd: rd, Rs1: a, Rs2: target.NoReg, Imm: imm})
		e.emit(target.Inst{Op: target.XorI, Rd: rd, Rs1: rd, Rs2: target.NoReg, Imm: 1})
	case ir.CCGeU:
		e.emit(target.Inst{Op: target.SltuI, Rd: rd, Rs1: a, Rs2: target.NoReg, Imm: imm})
		e.emit(target.Inst{Op: target.XorI, Rd: rd, Rs1: rd, Rs2: target.NoReg, Imm: 1})
	case ir.CCLe:
		if imm == 0x7fffffff {
			e.loadImm(rd, 1)
		} else {
			e.emit(target.Inst{Op: target.SltI, Rd: rd, Rs1: a, Rs2: target.NoReg, Imm: imm + 1})
		}
	case ir.CCLeU:
		if uint32(imm) == 0xffffffff {
			e.loadImm(rd, 1)
		} else {
			e.emit(target.Inst{Op: target.SltuI, Rd: rd, Rs1: a, Rs2: target.NoReg, Imm: imm + 1})
		}
	case ir.CCGt:
		if imm == 0x7fffffff {
			e.loadImm(rd, 0)
		} else {
			e.emit(target.Inst{Op: target.SltI, Rd: rd, Rs1: a, Rs2: target.NoReg, Imm: imm + 1})
			e.emit(target.Inst{Op: target.XorI, Rd: rd, Rs1: rd, Rs2: target.NoReg, Imm: 1})
		}
	case ir.CCGtU:
		if uint32(imm) == 0xffffffff {
			e.loadImm(rd, 0)
		} else {
			e.emit(target.Inst{Op: target.SltuI, Rd: rd, Rs1: a, Rs2: target.NoReg, Imm: imm + 1})
			e.emit(target.Inst{Op: target.XorI, Rd: rd, Rs1: rd, Rs2: target.NoReg, Imm: 1})
		}
	}
}

// setRegOps is the reg-reg comparison body used by setImm's fallback.
func (e *emitter) setRegOps(rd, a, b target.Reg, cc ir.CC) {
	swap := false
	invert := false
	var op target.Op
	switch cc {
	case ir.CCEq, ir.CCNe:
		e.emit(target.Inst{Op: target.Xor, Rd: rd, Rs1: a, Rs2: b})
		e.emit(target.Inst{Op: target.SltuI, Rd: rd, Rs1: rd, Rs2: target.NoReg, Imm: 1})
		if cc == ir.CCNe {
			e.emit(target.Inst{Op: target.XorI, Rd: rd, Rs1: rd, Rs2: target.NoReg, Imm: 1})
		}
		return
	case ir.CCLt:
		op = target.Slt
	case ir.CCLtU:
		op = target.Sltu
	case ir.CCGt:
		op, swap = target.Slt, true
	case ir.CCGtU:
		op, swap = target.Sltu, true
	case ir.CCLe:
		op, swap, invert = target.Slt, true, true
	case ir.CCLeU:
		op, swap, invert = target.Sltu, true, true
	case ir.CCGe:
		op, invert = target.Slt, true
	case ir.CCGeU:
		op, invert = target.Sltu, true
	}
	x, y := a, b
	if swap {
		x, y = b, a
	}
	e.emit(target.Inst{Op: op, Rd: rd, Rs1: x, Rs2: y})
	if invert {
		e.emit(target.Inst{Op: target.XorI, Rd: rd, Rs1: rd, Rs2: target.NoReg, Imm: 1})
	}
}

// setFP materializes an FP comparison via a short branch diamond.
func (e *emitter) setFP(in *ir.Inst) {
	a := e.fpUse(in.A, 0)
	b := e.fpUse(in.B, 1)
	rd, fl := e.intDef(in.Dst)
	cc := irCC(in.CC)
	x, y := a, b
	switch cc {
	case target.CCGt:
		cc, x, y = target.CCLt, b, a
	case target.CCGe:
		cc, x, y = target.CCLe, b, a
	}
	e.loadImm(rd, 1)
	e.emit(target.Inst{Op: target.Fcmp, Rd: target.NoReg, Rs1: x, Rs2: y})
	skip := len(e.units) + 2 // the unit after the zero-case unit
	e.emit(target.Inst{Op: target.FBcc, Rd: target.NoReg, Rs1: target.NoReg, Rs2: target.NoReg, CC: cc, Target: int32(skip), Sym: unitMark})
	e.beginUnit()
	e.loadImm(rd, 0)
	next := e.beginUnit()
	if next != skip {
		// The skip target is exactly the unit we just started.
		panic("native: setFP unit accounting")
	}
	fl()
}

// branch emits IR Br/BrI.
func (e *emitter) branch(in *ir.Inst) {
	m := e.c.m

	// FP compare-and-branch.
	if in.Class != ir.ClassW {
		a := e.fpUse(in.A, 0)
		b := e.fpUse(in.B, 1)
		cc := irCC(in.CC)
		x, y := a, b
		switch cc {
		case target.CCGt:
			cc, x, y = target.CCLt, b, a
		case target.CCGe:
			cc, x, y = target.CCLe, b, a
		}
		e.emit(target.Inst{Op: target.Fcmp, Rd: target.NoReg, Rs1: x, Rs2: y})
		e.emit(target.Inst{Op: target.FBcc, Rd: target.NoReg, Rs1: target.NoReg, Rs2: target.NoReg, CC: cc, Target: int32(in.Then), Sym: blkMark})
		e.emit(target.Inst{Op: target.J, Rd: target.NoReg, Rs1: target.NoReg, Rs2: target.NoReg, Target: int32(in.Else), Sym: blkMark})
		return
	}

	a := e.intUse(in.A, 0)
	cc := irCC(in.CC)

	emitBr := func(op target.Op, rs1, rs2 target.Reg, bcc target.CC) {
		e.emit(target.Inst{Op: op, Rd: target.NoReg, Rs1: rs1, Rs2: rs2, CC: bcc, Target: int32(in.Then), Sym: blkMark})
		e.emit(target.Inst{Op: target.J, Rd: target.NoReg, Rs1: target.NoReg, Rs2: target.NoReg, Target: int32(in.Else), Sym: blkMark})
	}

	zeroFold := map[ir.CC]target.Op{
		ir.CCEq: target.Beqz, ir.CCNe: target.Bnez, ir.CCLt: target.Bltz,
		ir.CCLe: target.Blez, ir.CCGt: target.Bgtz, ir.CCGe: target.Bgez,
	}

	if in.Op == ir.BrI {
		imm := int32(in.Imm)
		// Branch-on-zero folding: MIPS has these architecturally; on
		// PPC the cc profile models record-form folding.
		if imm == 0 {
			if op, ok := zeroFold[in.CC]; ok && (m.Arch == target.MIPS || (m.Arch == target.PPC && e.c.prof == ProfCC)) {
				emitBr(op, a, target.NoReg, 0)
				return
			}
		}
		if m.Arch == target.MIPS {
			e.mipsBranchImm(in, a, imm)
			return
		}
		op := target.CmpI
		if cc >= target.CCLtU {
			op = target.CmpUI
		}
		if m.Arch == target.X86 || m.FitsImm(imm) {
			e.emit(target.Inst{Op: op, Rd: target.NoReg, Rs1: a, Rs2: target.NoReg, Imm: imm})
		} else {
			s := target.Reg(e.ra.ScratchInt[1])
			e.loadImm(s, imm)
			e.emit(target.Inst{Op: target.Cmp, Rd: target.NoReg, Rs1: a, Rs2: s})
		}
		emitBr(target.Bcc, target.NoReg, target.NoReg, cc)
		return
	}

	b := e.intUse(in.B, 1)
	if m.Arch == target.MIPS {
		e.mipsBranchReg(in, a, b)
		return
	}
	e.emit(target.Inst{Op: target.Cmp, Rd: target.NoReg, Rs1: a, Rs2: b})
	emitBr(target.Bcc, target.NoReg, target.NoReg, cc)
}

func (e *emitter) mipsBranchReg(in *ir.Inst, a, b target.Reg) {
	then, els := int32(in.Then), int32(in.Else)
	emitBr := func(op target.Op, rs1, rs2 target.Reg) {
		e.emit(target.Inst{Op: op, Rd: target.NoReg, Rs1: rs1, Rs2: rs2, Target: then, Sym: blkMark})
		e.emit(target.Inst{Op: target.J, Rd: target.NoReg, Rs1: target.NoReg, Rs2: target.NoReg, Target: els, Sym: blkMark})
	}
	s := target.Reg(e.ra.ScratchInt[0])
	switch in.CC {
	case ir.CCEq:
		emitBr(target.Beq, a, b)
	case ir.CCNe:
		emitBr(target.Bne, a, b)
	case ir.CCLt:
		e.emit(target.Inst{Op: target.Slt, Rd: s, Rs1: a, Rs2: b})
		emitBr(target.Bnez, s, target.NoReg)
	case ir.CCGe:
		e.emit(target.Inst{Op: target.Slt, Rd: s, Rs1: a, Rs2: b})
		emitBr(target.Beqz, s, target.NoReg)
	case ir.CCGt:
		e.emit(target.Inst{Op: target.Slt, Rd: s, Rs1: b, Rs2: a})
		emitBr(target.Bnez, s, target.NoReg)
	case ir.CCLe:
		e.emit(target.Inst{Op: target.Slt, Rd: s, Rs1: b, Rs2: a})
		emitBr(target.Beqz, s, target.NoReg)
	case ir.CCLtU:
		e.emit(target.Inst{Op: target.Sltu, Rd: s, Rs1: a, Rs2: b})
		emitBr(target.Bnez, s, target.NoReg)
	case ir.CCGeU:
		e.emit(target.Inst{Op: target.Sltu, Rd: s, Rs1: a, Rs2: b})
		emitBr(target.Beqz, s, target.NoReg)
	case ir.CCGtU:
		e.emit(target.Inst{Op: target.Sltu, Rd: s, Rs1: b, Rs2: a})
		emitBr(target.Bnez, s, target.NoReg)
	case ir.CCLeU:
		e.emit(target.Inst{Op: target.Sltu, Rd: s, Rs1: b, Rs2: a})
		emitBr(target.Beqz, s, target.NoReg)
	}
}

func (e *emitter) mipsBranchImm(in *ir.Inst, a target.Reg, imm int32) {
	m := e.c.m
	then, els := int32(in.Then), int32(in.Else)
	emitBr := func(op target.Op, rs1, rs2 target.Reg) {
		e.emit(target.Inst{Op: op, Rd: target.NoReg, Rs1: rs1, Rs2: rs2, Target: then, Sym: blkMark})
		e.emit(target.Inst{Op: target.J, Rd: target.NoReg, Rs1: target.NoReg, Rs2: target.NoReg, Target: els, Sym: blkMark})
	}
	s := target.Reg(e.ra.ScratchInt[0])
	s2 := target.Reg(e.ra.ScratchInt[1])
	uns := in.CC >= ir.CCLtU
	sltI, sltR := target.SltI, target.Slt
	if uns {
		sltI, sltR = target.SltuI, target.Sltu
	}
	switch in.CC {
	case ir.CCEq, ir.CCNe:
		e.loadImm(s2, imm)
		if in.CC == ir.CCEq {
			emitBr(target.Beq, a, s2)
		} else {
			emitBr(target.Bne, a, s2)
		}
	case ir.CCLt, ir.CCLtU:
		e.cmpImm(sltI, sltR, s, a, imm)
		emitBr(target.Bnez, s, target.NoReg)
	case ir.CCGe, ir.CCGeU:
		e.cmpImm(sltI, sltR, s, a, imm)
		emitBr(target.Beqz, s, target.NoReg)
	case ir.CCLe, ir.CCLeU:
		overflow := (!uns && imm == 0x7fffffff) || (uns && uint32(imm) == 0xffffffff)
		if !overflow && m.FitsImm(imm+1) {
			e.emit(target.Inst{Op: sltI, Rd: s, Rs1: a, Rs2: target.NoReg, Imm: imm + 1})
			emitBr(target.Bnez, s, target.NoReg)
			return
		}
		e.loadImm(s2, imm)
		e.emit(target.Inst{Op: sltR, Rd: s, Rs1: s2, Rs2: a}) // imm < a
		emitBr(target.Beqz, s, target.NoReg)
	case ir.CCGt, ir.CCGtU:
		overflow := (!uns && imm == 0x7fffffff) || (uns && uint32(imm) == 0xffffffff)
		if !overflow && m.FitsImm(imm+1) {
			e.emit(target.Inst{Op: sltI, Rd: s, Rs1: a, Rs2: target.NoReg, Imm: imm + 1})
			emitBr(target.Beqz, s, target.NoReg)
			return
		}
		e.loadImm(s2, imm)
		e.emit(target.Inst{Op: sltR, Rd: s, Rs1: s2, Rs2: a})
		emitBr(target.Bnez, s, target.NoReg)
	}
}

// cmpImm emits slt-with-immediate, building the constant in a register
// when the immediate does not fit.
func (e *emitter) cmpImm(immOp, regOp target.Op, rd, a target.Reg, imm int32) {
	if e.c.m.FitsImm(imm) {
		e.emit(target.Inst{Op: immOp, Rd: rd, Rs1: a, Rs2: target.NoReg, Imm: imm})
		return
	}
	s2 := target.Reg(e.ra.ScratchInt[1])
	e.loadImm(s2, imm)
	e.emit(target.Inst{Op: regOp, Rd: rd, Rs1: a, Rs2: s2})
}

// cvt emits conversions, expanding the unsigned forms with branch
// diamonds and pool constants.
func (e *emitter) cvt(in *ir.Inst) {
	simple := map[ir.CvtKind]target.Op{
		ir.CvtWtoD: target.CvtWD, ir.CvtWtoF: target.CvtWS,
		ir.CvtDtoW: target.CvtDW, ir.CvtFtoW: target.CvtSW,
		ir.CvtDtoF: target.CvtDS, ir.CvtFtoD: target.CvtSD,
	}
	if op, ok := simple[in.Cvt]; ok {
		switch in.Cvt {
		case ir.CvtWtoD, ir.CvtWtoF:
			a := e.intUse(in.A, 0)
			fd, fl := e.fpDef(in.Dst)
			e.emit(target.Inst{Op: op, Rd: fd, Rs1: a, Rs2: target.NoReg})
			fl()
		case ir.CvtDtoW, ir.CvtFtoW:
			a := e.fpUse(in.A, 0)
			rd, fl := e.intDef(in.Dst)
			e.emit(target.Inst{Op: op, Rd: rd, Rs1: a, Rs2: target.NoReg})
			fl()
		default:
			a := e.fpUse(in.A, 0)
			fd, fl := e.fpDef(in.Dst)
			e.emit(target.Inst{Op: op, Rd: fd, Rs1: a, Rs2: target.NoReg})
			fl()
		}
		return
	}
	switch in.Cvt {
	case ir.CvtUtoD:
		// fd = double(int(a)); if a < 0 (as signed) fd += 2^32.
		a := e.intUse(in.A, 0)
		fd, fl := e.fpDef(in.Dst)
		ft := target.Reg(e.ra.ScratchFP[1])
		e.emit(target.Inst{Op: target.CvtWD, Rd: fd, Rs1: a, Rs2: target.NoReg})
		skip := len(e.units) + 2
		e.emit(target.Inst{Op: target.Bgez, Rd: target.NoReg, Rs1: a, Rs2: target.NoReg, Target: int32(skip), Sym: unitMark})
		e.beginUnit()
		off := e.c.fpConst(4294967296.0)
		e.emit(target.Inst{Op: target.Ld, Rd: ft, Rs1: target.NoReg, Rs2: target.NoReg, Imm: off, Sym: fpPoolSym})
		e.emit(target.Inst{Op: target.FaddD, Rd: fd, Rs1: fd, Rs2: ft})
		if e.beginUnit() != skip {
			panic("native: cvt unit accounting")
		}
		fl()
	case ir.CvtDtoU:
		// u = d < 2^31 ? int(d) : int(d - 2^31) ^ 0x80000000.
		a := e.fpUse(in.A, 0)
		rd, fl := e.intDef(in.Dst)
		ft := target.Reg(e.ra.ScratchFP[1])
		off := e.c.fpConst(2147483648.0)
		e.emit(target.Inst{Op: target.Ld, Rd: ft, Rs1: target.NoReg, Rs2: target.NoReg, Imm: off, Sym: fpPoolSym})
		e.emit(target.Inst{Op: target.Fcmp, Rd: target.NoReg, Rs1: ft, Rs2: a})
		big := len(e.units) + 2
		e.emit(target.Inst{Op: target.FBcc, Rd: target.NoReg, Rs1: target.NoReg, Rs2: target.NoReg, CC: target.CCLe, Target: int32(big), Sym: unitMark})
		e.beginUnit() // small case
		e.emit(target.Inst{Op: target.CvtDW, Rd: rd, Rs1: a, Rs2: target.NoReg})
		done := len(e.units) + 2 // skip over the big-case unit
		e.emit(target.Inst{Op: target.J, Rd: target.NoReg, Rs1: target.NoReg, Rs2: target.NoReg, Target: int32(done), Sym: unitMark})
		if e.beginUnit() != big {
			panic("native: cvt unit accounting")
		}
		e.emit(target.Inst{Op: target.FsubD, Rd: ft, Rs1: a, Rs2: ft})
		e.emit(target.Inst{Op: target.CvtDW, Rd: rd, Rs1: ft, Rs2: target.NoReg})
		e.emit(target.Inst{Op: target.XorI, Rd: rd, Rs1: rd, Rs2: target.NoReg, Imm: -2147483648})
		if e.beginUnit() != done {
			panic("native: cvt unit accounting")
		}
		fl()
	}
}
