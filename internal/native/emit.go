package native

import (
	"fmt"

	"omniware/internal/cc/ir"
	"omniware/internal/cc/regalloc"
	"omniware/internal/sched"
	"omniware/internal/target"
)

// Internal target markers used during emission (resolved before the
// code leaves the emitter).
const (
	blkMark  = "$blk"  // Target is an IR block id
	unitMark = "$unit" // Target is an emission-unit id
	epiMark  = "$epi"  // jump to the function epilogue
)

type savedReg struct {
	reg target.Reg
	off int
}

type frame struct {
	size     int
	slotOff  []int
	raOff    int
	intSaves []savedReg
	fpSaves  []savedReg
	outArgs  int
}

type emitter struct {
	c  *compiler
	f  *ir.Func
	ra *regalloc.Result
	fr *frame

	units       [][]target.Inst
	cur         []target.Inst
	unitOfBlock []int
	epiUnit     int

	code []target.Inst // final, function-relative
}

func (c *compiler) emitFunc(f *ir.Func) (*emitter, error) {
	ints, intCallee, fps, fpCallee := c.regConfig()
	ra, err := regalloc.Allocate(f, regalloc.Config{
		IntRegs:        ints,
		FPRegs:         fps,
		IntCalleeSaved: intCallee,
		FPCalleeSaved:  fpCallee,
	})
	if err != nil {
		return nil, err
	}
	e := &emitter{c: c, f: f, ra: ra, unitOfBlock: make([]int, len(f.Blocks))}
	for i := range e.unitOfBlock {
		e.unitOfBlock[i] = -1
	}
	e.fr = e.buildFrame()

	// Unit 0: prologue.
	e.prologue()

	for _, b := range f.Blocks {
		e.unitOfBlock[b.ID] = e.beginUnit()
		for i := range b.Insts {
			if err := e.inst(&b.Insts[i]); err != nil {
				return nil, fmt.Errorf("block %d: %w", b.ID, err)
			}
		}
	}

	// Final unit: the shared epilogue every Ret jumps to.
	e.epiUnit = e.beginUnit()
	e.epilogueBody()
	e.endUnit()

	e.finalize()
	return e, nil
}

// endUnit closes the unit under construction.
func (e *emitter) endUnit() {
	e.units = append(e.units, e.cur)
	e.cur = nil
}

// beginUnit closes the current unit and returns the id of the next one
// (the one subsequent emits build).
func (e *emitter) beginUnit() int {
	e.endUnit()
	return len(e.units)
}

func (e *emitter) emit(in target.Inst) {
	in.Src = -1
	e.cur = append(e.cur, in)
}

// finalize schedules each unit, fills delay slots, linearizes and
// patches unit/block references.
func (e *emitter) finalize() {
	m := e.c.m
	doSched := e.c.prof == ProfCC
	fill := doSched || m.Arch == target.SPARC // gcc fills SPARC slots too
	for i, u := range e.units {
		if len(u) == 0 {
			continue
		}
		if doSched {
			u = sched.Block(u, m)
		}
		u = sched.FillDelaySlot(u, m, fill)
		e.units[i] = u
	}
	unitStart := make([]int32, len(e.units)+1)
	pos := int32(0)
	for i, u := range e.units {
		unitStart[i] = pos
		pos += int32(len(u))
	}
	unitStart[len(e.units)] = pos

	resolve := func(id int32, sym string) int32 {
		switch sym {
		case blkMark:
			return unitStart[e.unitOfBlock[id]]
		case epiMark:
			return unitStart[e.epiUnit]
		}
		return unitStart[id]
	}
	for ui, u := range e.units {
		for i := range u {
			in := &u[i]
			switch {
			case in.Sym == blkMark || in.Sym == unitMark || in.Sym == epiMark:
				in.Target = resolve(in.Target, in.Sym)
				in.Sym = ""
			}
			if (in.Op == target.Jal || in.Op == target.Jalr) && in.Imm >= 0 {
				// Imm holds a continuation unit id.
				in.Imm = unitStart[in.Imm]
			}
			if in.Op == target.MovI && in.Sym == retMark {
				in.Imm = unitStart[in.Imm]
			}
		}
		_ = ui
	}
	e.code = e.code[:0]
	for _, u := range e.units {
		e.code = append(e.code, u...)
	}
}

// ---- frame ----

func (e *emitter) buildFrame() *frame {
	f, ra := e.f, e.ra
	fr := &frame{}
	maxOut := 0
	for _, b := range f.Blocks {
		for i := range b.Insts {
			in := &b.Insts[i]
			if in.Op != ir.Call && in.Op != ir.Syscall {
				continue
			}
			_, _, n := splitArgs(in)
			if n > maxOut {
				maxOut = n
			}
		}
	}
	fr.outArgs = (maxOut + 7) &^ 7
	off := fr.outArgs
	fr.slotOff = make([]int, len(f.Slots))
	for i, s := range f.Slots {
		al := s.Align
		if al < 4 {
			al = 4
		}
		off = (off + al - 1) &^ (al - 1)
		fr.slotOff[i] = off
		off += (s.Size + 3) &^ 3
	}
	off = (off + 7) &^ 7
	for _, r := range ra.UsedFPCallee {
		fr.fpSaves = append(fr.fpSaves, savedReg{reg: target.Reg(r), off: off})
		off += 8
	}
	for _, r := range ra.UsedIntCallee {
		fr.intSaves = append(fr.intSaves, savedReg{reg: target.Reg(r), off: off})
		off += 4
	}
	fr.raOff = off
	off += 4
	fr.size = (off + 7) &^ 7
	return fr
}

func (e *emitter) sp() target.Reg { return e.c.m.OmniInt[14] }

// abiScratch returns the i'th integer scratch register for the ABI
// sequences (prologue/epilogue return-address staging, call argument
// moves, indirect-call targets). These run while the ABI argument
// registers hold live values, so the scratch must avoid them: the
// regalloc scratch set does everywhere except x86, whose four-register
// allocatable file makes ScratchInt coincide with the argument
// registers — there the translator scratch pair (esi/edi), which the
// native compiler never allocates, serves instead.
func (e *emitter) abiScratch(i int) target.Reg {
	if e.c.m.Arch == target.X86 {
		return e.c.m.Scratch[i]
	}
	return target.Reg(e.ra.ScratchInt[i])
}

// raReg returns the link register, or NoReg when it is memory-resident.
func (e *emitter) raReg() target.Reg { return e.c.m.OmniInt[15] }

func (e *emitter) prologue() {
	sp := e.sp()
	e.emit(target.Inst{Op: target.AddI, Rd: sp, Rs1: sp, Rs2: target.NoReg, Imm: int32(-e.fr.size)})
	s0 := e.abiScratch(0)
	if ra := e.raReg(); ra != target.NoReg {
		e.emit(target.Inst{Op: target.Sw, Rd: ra, Rs1: sp, Rs2: target.NoReg, Imm: int32(e.fr.raOff)})
	} else {
		// x86: the return index lives in the register-save area.
		e.emit(target.Inst{Op: target.Lw, Rd: s0, Rs1: target.NoReg, Rs2: target.NoReg, Imm: int32(regSaveAddr(e.c.regsave, 15))})
		e.emit(target.Inst{Op: target.Sw, Rd: s0, Rs1: sp, Rs2: target.NoReg, Imm: int32(e.fr.raOff)})
	}
	for _, sv := range e.fr.intSaves {
		e.emit(target.Inst{Op: target.Sw, Rd: sv.reg, Rs1: sp, Rs2: target.NoReg, Imm: int32(sv.off)})
	}
	for _, sv := range e.fr.fpSaves {
		e.emit(target.Inst{Op: target.Sd, Rd: sv.reg, Rs1: sp, Rs2: target.NoReg, Imm: int32(sv.off)})
	}
	e.paramMoves()
}

func (e *emitter) epilogueBody() {
	sp := e.sp()
	for _, sv := range e.fr.fpSaves {
		e.emit(target.Inst{Op: target.Ld, Rd: sv.reg, Rs1: sp, Rs2: target.NoReg, Imm: int32(sv.off)})
	}
	for _, sv := range e.fr.intSaves {
		e.emit(target.Inst{Op: target.Lw, Rd: sv.reg, Rs1: sp, Rs2: target.NoReg, Imm: int32(sv.off)})
	}
	if ra := e.raReg(); ra != target.NoReg {
		e.emit(target.Inst{Op: target.Lw, Rd: ra, Rs1: sp, Rs2: target.NoReg, Imm: int32(e.fr.raOff)})
		e.emit(target.Inst{Op: target.AddI, Rd: sp, Rs1: sp, Rs2: target.NoReg, Imm: int32(e.fr.size)})
		e.emit(target.Inst{Op: target.Jr, Rd: target.NoReg, Rs1: ra, Rs2: target.NoReg})
		return
	}
	s0 := e.abiScratch(0)
	e.emit(target.Inst{Op: target.Lw, Rd: s0, Rs1: sp, Rs2: target.NoReg, Imm: int32(e.fr.raOff)})
	e.emit(target.Inst{Op: target.AddI, Rd: sp, Rs1: sp, Rs2: target.NoReg, Imm: int32(e.fr.size)})
	e.emit(target.Inst{Op: target.Jr, Rd: target.NoReg, Rs1: s0, Rs2: target.NoReg})
}

// ---- ABI ----

// splitArgs mirrors the OmniVM calling convention on the native ABI:
// the first four integer-class args in the images of r1..r4, the first
// four FP-class args in the images of f1..f4, the rest on the stack.
func splitArgs(in *ir.Inst) (intIdx, fpIdx []int, stackBytes int) {
	intIdx = make([]int, len(in.Args))
	fpIdx = make([]int, len(in.Args))
	ni, nf, off := 0, 0, 0
	for i := range in.Args {
		intIdx[i], fpIdx[i] = -1, -1
		cls := ir.ClassW
		if i < len(in.ACls) {
			cls = in.ACls[i]
		}
		if cls.IsFP() {
			if nf < 4 {
				fpIdx[i] = nf + 1 // OmniVM f1..f4
				nf++
			} else {
				off = (off + 7) &^ 7
				fpIdx[i] = -2 - off
				off += 8
			}
		} else {
			if ni < 4 {
				intIdx[i] = ni + 1 // OmniVM r1..r4
				ni++
			} else {
				intIdx[i] = -2 - off
				off += 4
			}
		}
	}
	return intIdx, fpIdx, off
}

// regSaveAddr gives the absolute address of a memory-resident OmniVM
// register slot.
func regSaveAddr(base uint32, i int) uint32 { return base + target.IntSlotOffset(i) }
