package native_test

import (
	"testing"

	"omniware/internal/cc"
	"omniware/internal/core"
	"omniware/internal/native"
	"omniware/internal/target"
)

// nativeCheck compiles src with both baseline profiles on every target
// and verifies exit code and output against the interpreter.
func nativeCheck(t *testing.T, name, src string) {
	t.Helper()
	files := []core.SourceFile{{Name: name, Src: src}}
	mod, err := core.BuildC(files, cc.Options{OptLevel: 2})
	if err != nil {
		t.Fatalf("%s: build: %v", name, err)
	}
	funcs, err := core.BuildIRFuncs(files, cc.Options{OptLevel: 2})
	if err != nil {
		t.Fatalf("%s: IR: %v", name, err)
	}

	ih, err := core.NewHost(mod, core.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ih.RunInterp()
	if err != nil {
		t.Fatalf("%s: interp: %v", name, err)
	}
	if want.Faulted {
		t.Fatalf("%s: interp faulted: %s", name, want.Fault)
	}
	wantOut := ih.Output()

	for _, mach := range target.Machines() {
		for _, prof := range []native.Profile{native.ProfCC, native.ProfGCC} {
			h, err := core.NewHost(mod, core.RunConfig{})
			if err != nil {
				t.Fatal(err)
			}
			res, err := h.RunNative(mach, prof, funcs)
			if err != nil {
				t.Fatalf("%s/%s/%s: %v", name, mach.Name, prof, err)
			}
			if res.Faulted {
				t.Fatalf("%s/%s/%s: faulted: %s", name, mach.Name, prof, res.Fault)
			}
			if res.ExitCode != want.ExitCode {
				t.Errorf("%s/%s/%s: exit %d, interp %d", name, mach.Name, prof, res.ExitCode, want.ExitCode)
			}
			if got := h.Output(); got != wantOut {
				t.Errorf("%s/%s/%s: output %q, interp %q", name, mach.Name, prof, got, wantOut)
			}
		}
	}
}

func TestNativeArith(t *testing.T) {
	nativeCheck(t, "arith.c", `
int main(void) {
	int acc = 0, i;
	for (i = 1; i <= 60; i++) {
		acc += i * i;
		acc ^= acc >> 5;
		acc %= 1000007;
	}
	unsigned u = (unsigned)acc * 2654435761u;
	return (int)(u % 249);
}`)
}

func TestNativeMemoryMix(t *testing.T) {
	nativeCheck(t, "mem.c", `
int tab[64];
short stab[32];
char ctab[16];
char msg[12];
int main(void) {
	int i;
	for (i = 0; i < 64; i++) tab[i] = i * 3 - 7;
	for (i = 0; i < 32; i++) stab[i] = (short)(i * -9);
	for (i = 0; i < 16; i++) ctab[i] = (char)(i * 21);
	int acc = 0;
	for (i = 0; i < 64; i += 3) acc += tab[i];
	for (i = 0; i < 32; i += 5) acc += stab[i];
	for (i = 0; i < 16; i += 2) acc += ctab[i];
	_print_int(acc);
	_putc('\n');
	return acc & 0xff;
}`)
}

func TestNativeCallsAndPointers(t *testing.T) {
	nativeCheck(t, "ptr.c", `
struct node { int v; struct node *next; };
struct node pool[12];
int sum(struct node *n) {
	int s = 0;
	while (n) { s += n->v; n = n->next; }
	return s;
}
int twice(int x) { return x * 2; }
int thrice(int x) { return x * 3; }
int (*ops[2])(int) = {twice, thrice};
int many(int a, int b, int c, int d, int e, int f, int g) {
	return a + 2*b + 3*c + 4*d + 5*e + 6*f + 7*g;
}
int main(void) {
	int i;
	struct node *head = 0;
	for (i = 0; i < 12; i++) {
		pool[i].v = i * i;
		pool[i].next = head;
		head = &pool[i];
	}
	int acc = sum(head);
	acc += ops[0](5) + ops[1](5);
	acc += many(1, 1, 1, 1, 1, 1, 1);
	return acc & 0x3ff;
}`)
}

func TestNativeFloat(t *testing.T) {
	nativeCheck(t, "fp.c", `
double poly(double x) { return 1.25*x*x - 2.0*x + 0.75; }
float mix(float a, float b) { return a * 0.5f + b; }
int main(void) {
	double acc = 0.0;
	int i;
	for (i = 0; i < 25; i++) {
		acc += poly((double)i * 0.5);
		if (acc > 200.0) acc *= 0.25;
	}
	acc += (double)mix(3.0f, 1.5f);
	unsigned u = 3123456789u;
	double du = (double)u;
	unsigned v = (unsigned)du;
	if (v != u) return 1;
	_print_int((int)(acc * 100.0));
	return ((int)acc) & 0x7f;
}`)
}

func TestNativeRecursionSwitch(t *testing.T) {
	nativeCheck(t, "rec.c", `
int fib(int n) { return n < 2 ? n : fib(n-1) + fib(n-2); }
int cat(int x) {
	switch (x % 5) {
	case 0: return 3;
	case 1: case 2: return 7;
	case 3: return 11;
	default: return 13;
	}
}
int main(void) {
	int acc = fib(13);
	int i;
	for (i = 0; i < 20; i++) acc += cat(i);
	return acc & 0xfff;
}`)
}

func TestNativeStrings(t *testing.T) {
	nativeCheck(t, "str.c", `
char buf[64];
int main(void) {
	char *a = "native ";
	char *b = "baseline";
	int i = 0, j;
	for (j = 0; a[j]; j++) buf[i++] = a[j];
	for (j = 0; b[j]; j++) buf[i++] = b[j];
	buf[i] = 0;
	_puts(buf);
	_putc(10);
	return i;
}`)
}

func TestNativeSbrk(t *testing.T) {
	nativeCheck(t, "heap.c", `
int main(void) {
	int *a = (int *)_sbrk(256);
	int i, acc = 0;
	for (i = 0; i < 64; i++) a[i] = i ^ 21;
	for (i = 0; i < 64; i += 3) acc += a[i];
	return acc & 0xff;
}`)
}

func TestNativeBigFrameAndSpills(t *testing.T) {
	nativeCheck(t, "spill.c", `
int work(int a, int b, int c, int d, int e, int f) {
	int g = a*b, h = c*d, i = e*f;
	int j = a+b, k = c+d, l = e+f;
	int m = g+h+i, n = j+k+l;
	int o = m*n, p = m-n, q = m^n;
	return o + p + q + g + h + i + j + k + l;
}
int main(void) {
	int acc = 0, i;
	for (i = 1; i < 8; i++) acc += work(i, i+1, i+2, i+3, i+4, i+5);
	return acc & 0xffff;
}`)
}
