package cluster

import (
	"errors"
	"fmt"
	"log"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"omniware/internal/mcache"
	"omniware/internal/netserve"
	"omniware/internal/serve/metrics"
	"omniware/internal/target"
	"omniware/internal/trace"
	"omniware/internal/wire"
)

// DefaultPeerTimeout bounds every peer-to-peer HTTP call when
// Config.HTTP is nil. Peer fetches run inside the cache's singleflight
// on the exec path, so a hung (not merely dead) peer must fail fast —
// an unbounded call there would wedge the translating worker and every
// coalesced waiter behind it.
const DefaultPeerTimeout = 5 * time.Second

// Config describes one node's view of the cluster. Self must appear
// in Members; every node must be configured with the same Members
// list (membership is static — there is no gossip or discovery).
type Config struct {
	Self    string   // this node's advertised base URL
	Members []string // all nodes' base URLs, including Self
	// Secret is the shared peer-auth secret (required): every member
	// must be configured with the same value, and every /v1/peer/*
	// request carries it. Without it any client reachable on the
	// listener could push translations or scrape peer state.
	Secret string
	// Fanout is how many owners each module hash has on the ring
	// (default 2): the nodes an exec routes to, a miss peer-fills
	// from, and replication pushes to.
	Fanout int
	// HotK caps how many of this node's hottest cache entries each
	// replication round offers to their owners (default 8).
	HotK int
	// ReplicateEvery is the replication period (default 2s).
	// Negative disables the background replicator; ReplicateOnce
	// still works.
	ReplicateEvery time.Duration
	Vnodes         int          // ring points per member (default DefaultVnodes)
	HTTP           *http.Client // peer HTTP client (default: DefaultPeerTimeout-bounded)
	Logf           func(format string, args ...any)
}

// peerCounters is one remote member's attribution, updated lock-free
// from the serving hot path. reasons is built once at New with every
// quarantine reason pre-registered, so updates are pure atomic adds
// (no map writes) and the metrics exposition always shows the full
// label set, zeros included.
type peerCounters struct {
	hits        atomic.Uint64
	quarantines atomic.Uint64
	errors      atomic.Uint64
	pushes      atomic.Uint64
	reasons     map[string]*atomic.Uint64
	// lastContact is the unix-nano time this peer last answered
	// anything — including a clean miss; 0 means never.
	lastContact atomic.Int64
}

func newPeerCounters() *peerCounters {
	pc := &peerCounters{reasons: map[string]*atomic.Uint64{}}
	for _, r := range mcache.QuarantineReasons {
		pc.reasons[r] = &atomic.Uint64{}
	}
	return pc
}

// touch records that the peer answered (success or clean miss).
func (pc *peerCounters) touch() {
	if pc != nil {
		pc.lastContact.Store(time.Now().UnixNano())
	}
}

// quarantine counts one refusal under its reason; unknown reasons
// still count in the total so nothing is lost off the closed set.
func (pc *peerCounters) quarantine(reason string) {
	if pc == nil {
		return
	}
	pc.quarantines.Add(1)
	if ctr, ok := pc.reasons[reason]; ok {
		ctr.Add(1)
	}
}

// Peers is a node's cluster engine: it implements mcache.PeerSource
// (the translation peer-fill path) and netserve.PeerHooks (the module
// fetch path), and runs the hot-entry replicator. One Peers is shared
// by the node's cache and its HTTP handler.
type Peers struct {
	cfg   Config
	ring  *Ring
	stats map[string]*peerCounters // fixed key set: every member but self

	failovers atomic.Uint64

	mu    sync.Mutex
	cache *mcache.Cache // bound by Start
	// pushed remembers when each (key, peer) pair was last replicated
	// so a hot entry is offered to an owner once per pushedTTL, not
	// once per tick. Entries expire (a peer that restarted and lost
	// its cache gets re-offered) and the map is capped at pushedMax so
	// a long-running node's memory stays bounded.
	pushed map[string]time.Time

	stop    chan struct{}
	stopped sync.Once
	wg      sync.WaitGroup
}

// New validates cfg and builds the node's cluster engine. The
// returned Peers is inert until Start binds it to the node's cache.
func New(cfg Config) (*Peers, error) {
	if cfg.Self == "" {
		return nil, errors.New("cluster: Config.Self is required")
	}
	if cfg.Secret == "" {
		return nil, errors.New("cluster: Config.Secret is required (the shared peer-auth secret; every member must use the same value)")
	}
	if cfg.HTTP == nil {
		cfg.HTTP = &http.Client{Timeout: DefaultPeerTimeout}
	}
	if cfg.Fanout <= 0 {
		cfg.Fanout = 2
	}
	if cfg.HotK <= 0 {
		cfg.HotK = 8
	}
	if cfg.ReplicateEvery == 0 {
		cfg.ReplicateEvery = 2 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	ring := NewRing(cfg.Members, cfg.Vnodes)
	self := false
	stats := map[string]*peerCounters{}
	for _, m := range ring.Members() {
		if m == cfg.Self {
			self = true
		} else {
			stats[m] = newPeerCounters()
		}
	}
	if !self {
		return nil, fmt.Errorf("cluster: Self %q not in Members %v", cfg.Self, ring.Members())
	}
	return &Peers{
		cfg:    cfg,
		ring:   ring,
		stats:  stats,
		pushed: map[string]time.Time{},
		stop:   make(chan struct{}),
	}, nil
}

// Ring exposes the node's ring (clients and CLIs build their own; the
// lists agree, so the rings agree).
func (p *Peers) Ring() *Ring { return p.ring }

// Self returns this node's advertised address.
func (p *Peers) Self() string { return p.cfg.Self }

// Members returns the full static membership, including self — the
// set the fleet aggregation endpoint fans out over.
func (p *Peers) Members() []string { return p.ring.Members() }

// Owners returns the failover-ordered owner set for a module hash.
func (p *Peers) Owners(modHash string) []string {
	return p.ring.Owners(modHash, p.cfg.Fanout)
}

func (p *Peers) client(peer string) *netserve.Client {
	return &netserve.Client{Base: peer, HTTP: p.cfg.HTTP, PeerAuth: p.cfg.Secret}
}

// isMiss reports whether err is a clean 404 — the peer is healthy but
// does not have the artifact. Anything else is a peer fault.
func isMiss(err error) bool {
	var se *netserve.StatusError
	return errors.As(err, &se) && se.Code == http.StatusNotFound
}

// Fetch implements mcache.PeerSource: on a local memory+disk miss,
// probe the owning peers for an existing translation. Every candidate
// returned here is still untrusted — the cache re-verifies before
// admission and reports the outcome through Admitted/Quarantined.
//
// A frame that fails to decode, binds a different key, or carries an
// undecodable program never reaches the cache; it is quarantined here
// with the same per-peer attribution.
func (p *Peers) Fetch(key string, org mcache.PeerOrigin) []mcache.PeerCandidate {
	modHash, err := mcache.KeyModuleHash(key)
	if err != nil {
		return nil
	}
	mach, _, _, err := mcache.ParseKey(key)
	if err != nil {
		return nil
	}
	var cands []mcache.PeerCandidate
	for _, peer := range p.Owners(modHash) {
		if peer == p.cfg.Self {
			continue
		}
		st := p.stats[peer]
		frame, remote, err := p.client(peer).PeerTranslation(modHash, mach.Name, key, p.cfg.Self, org)
		if err != nil {
			if !isMiss(err) {
				st.errors.Add(1)
				p.failovers.Add(1)
				p.cfg.Logf("cluster: peer %s translation fetch failed: %v", peer, err)
				continue
			}
			st.touch() // a clean miss is still a live peer
			continue
		}
		st.touch()
		gotKey, payload, err := wire.DecodePeerFrame(frame)
		reason := mcache.QuarantineFrame
		if err == nil && gotKey != key {
			reason = mcache.QuarantineKeyMismatch
			err = fmt.Errorf("frame bound to key %q, asked for %q", gotKey, key)
		}
		var prog *target.Program
		if err == nil {
			prog, err = wire.DecodeProgram(payload)
			if err != nil {
				reason = mcache.QuarantineFrame
			}
		}
		if err != nil {
			st.quarantine(reason)
			p.cfg.Logf("cluster: peer %s served a bad translation frame (quarantined, %s): %v", peer, reason, err)
			continue
		}
		cands = append(cands, mcache.PeerCandidate{Prog: prog, Peer: peer, Remote: remote})
	}
	return cands
}

// Admitted implements mcache.PeerSource: a peer candidate passed the
// local verifier and was admitted.
func (p *Peers) Admitted(key, peer string) {
	if st := p.stats[peer]; st != nil {
		st.hits.Add(1)
	}
}

// Quarantined implements mcache.PeerSource: a peer candidate failed
// the local admission gate (verifier refusal or spot-check mismatch);
// reason is one of the mcache.Quarantine* constants.
func (p *Peers) Quarantined(key, peer, reason string, err error) {
	p.stats[peer].quarantine(reason)
	p.cfg.Logf("cluster: translation from peer %s for %s quarantined (%s): %v", peer, key, reason, err)
}

// FetchModule implements netserve.PeerHooks: pull a module's
// canonical bytes from whichever member has it, owners first. The
// content address is checked here (and again by the registering
// handler); a peer serving different bytes under the name is
// quarantined and the next member is tried. The serving peer's span
// subtree, address, and advertised audit digest come back with the
// blob — the digest is advisory only; the registering handler
// re-derives the audit and compares.
func (p *Peers) FetchModule(hash string, org mcache.PeerOrigin) ([]byte, *trace.Span, string, string, bool) {
	tried := map[string]bool{p.cfg.Self: true}
	order := append(p.Owners(hash), p.ring.Members()...)
	for _, peer := range order {
		if tried[peer] {
			continue
		}
		tried[peer] = true
		st := p.stats[peer]
		blob, remote, digest, err := p.client(peer).PeerModule(hash, p.cfg.Self, org)
		if err != nil {
			if !isMiss(err) {
				st.errors.Add(1)
				p.failovers.Add(1)
				p.cfg.Logf("cluster: peer %s module fetch failed: %v", peer, err)
				continue
			}
			st.touch() // a clean miss is still a live peer
			continue
		}
		st.touch()
		if got := wire.Hash(blob); got != hash {
			st.quarantine(mcache.QuarantineHash)
			p.cfg.Logf("cluster: peer %s served module %s under name %s (quarantined, %s)", peer, got, hash, mcache.QuarantineHash)
			continue
		}
		return blob, remote, peer, digest, true
	}
	return nil, nil, "", "", false
}

// Start binds the engine to the node's cache and, unless disabled,
// launches the background replicator.
func (p *Peers) Start(c *mcache.Cache) {
	p.mu.Lock()
	p.cache = c
	p.mu.Unlock()
	if p.cfg.ReplicateEvery < 0 {
		return
	}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		t := time.NewTicker(p.cfg.ReplicateEvery)
		defer t.Stop()
		for {
			select {
			case <-p.stop:
				return
			case <-t.C:
				p.ReplicateOnce()
			}
		}
	}()
}

// Close stops the replicator. Safe to call more than once.
func (p *Peers) Close() {
	p.stopped.Do(func() { close(p.stop) })
	p.wg.Wait()
}

// ReplicateOnce pushes this node's hottest translations to their ring
// owners (once per (entry, owner) pair per pushedTTL; refused or
// failed pushes are retried on a later round). Returns the number of
// successful pushes.
// The receiver re-verifies before admission, so replication spreads
// warmth, never trust.
func (p *Peers) ReplicateOnce() int {
	p.mu.Lock()
	c := p.cache
	p.mu.Unlock()
	if c == nil {
		return 0
	}
	pushes := 0
	for _, hot := range c.Hot(p.cfg.HotK) {
		modHash, err := mcache.KeyModuleHash(hot.Key)
		if err != nil {
			continue
		}
		mach, _, _, err := mcache.ParseKey(hot.Key)
		if err != nil {
			continue
		}
		var payload []byte
		for _, peer := range p.Owners(modHash) {
			if peer == p.cfg.Self || p.alreadyPushed(hot.Key, peer) {
				continue
			}
			if payload == nil {
				prog, ok := c.Peek(hot.Key)
				if !ok {
					break // evicted since Hot
				}
				if payload, err = wire.EncodeProgram(prog); err != nil {
					break
				}
			}
			st := p.stats[peer]
			if err := p.client(peer).PushPeerTranslation(modHash, mach.Name, hot.Key, payload, p.cfg.Self); err != nil {
				st.errors.Add(1)
				p.cfg.Logf("cluster: replication push to %s failed: %v", peer, err)
				continue
			}
			st.pushes.Add(1)
			p.markPushed(hot.Key, peer)
			pushes++
		}
	}
	return pushes
}

// pushedTTL is how long a successful push suppresses re-offering the
// same entry to the same owner; after it a hot entry is pushed again,
// which revives owners that restarted with a cold cache (the receiver
// acknowledges pushes it already holds without re-verifying).
const pushedTTL = 5 * time.Minute

// pushedMax caps the suppression map. Far above HotK × members for any
// sane config; hitting it drops the oldest records, which only costs
// an early re-offer.
const pushedMax = 4096

func (p *Peers) alreadyPushed(key, peer string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	t, ok := p.pushed[key+"\x00"+peer]
	return ok && time.Since(t) < pushedTTL
}

func (p *Peers) markPushed(key, peer string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := time.Now()
	p.pushed[key+"\x00"+peer] = now
	if len(p.pushed) <= pushedMax {
		return
	}
	for k, t := range p.pushed {
		if now.Sub(t) >= pushedTTL {
			delete(p.pushed, k)
		}
	}
	for len(p.pushed) > pushedMax {
		var oldestK string
		var oldestT time.Time
		for k, t := range p.pushed {
			if oldestK == "" || t.Before(oldestT) {
				oldestK, oldestT = k, t
			}
		}
		delete(p.pushed, oldestK)
	}
}

// Snapshot returns the cluster section of the node's metrics: ring
// membership plus per-peer hit/quarantine/error/push attribution.
// Wire it into the serving layer with serve.Server.SetClusterSnapshot.
func (p *Peers) Snapshot() metrics.ClusterSnapshot {
	snap := metrics.ClusterSnapshot{
		Self:      p.cfg.Self,
		Members:   p.ring.Members(),
		Failovers: p.failovers.Load(),
	}
	for _, m := range snap.Members {
		st := p.stats[m]
		if st == nil { // self
			continue
		}
		byReason := make(map[string]uint64, len(st.reasons))
		for r, ctr := range st.reasons {
			byReason[r] = ctr.Load()
		}
		staleness := int64(-1)
		if lc := st.lastContact.Load(); lc != 0 {
			staleness = time.Since(time.Unix(0, lc)).Milliseconds()
		}
		snap.Peers = append(snap.Peers, metrics.PeerStats{
			Peer:                m,
			Hits:                st.hits.Load(),
			Quarantines:         st.quarantines.Load(),
			QuarantinesByReason: byReason,
			Errors:              st.errors.Load(),
			Pushes:              st.pushes.Load(),
			StalenessMs:         staleness,
		})
	}
	return snap
}
