package cluster

import (
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"omniware/internal/netserve"
	"omniware/internal/wire"
)

// DefaultClientTimeout bounds each per-node HTTP call when
// ClientConfig.HTTP is nil: generous enough for the longest exec a
// default server allows (60s deadline plus queueing), but finite — a
// hung member must become a failover to the next one, not a caller
// stuck forever.
const DefaultClientTimeout = 2 * time.Minute

// ClientConfig describes a cluster from the outside: the member
// addresses (the same list the nodes were configured with) and the
// routing fanout. Zero values select the node-side defaults so client
// and cluster agree on ownership.
type ClientConfig struct {
	Addrs  []string
	Fanout int // owners tried before spilling to the rest (default 2)
	Vnodes int
	HTTP   *http.Client         // per-node HTTP client (default: DefaultClientTimeout-bounded)
	Retry  netserve.RetryPolicy // per-node shed-retry policy
}

// Client routes requests across a cluster: uploads and execs go to a
// module's ring owners first, and transport failures or shed
// responses fail over to the next member instead of failing the
// caller. It is safe for concurrent use.
type Client struct {
	cfg  ClientConfig
	ring *Ring

	failovers atomic.Uint64
}

// NewClient builds a cluster-aware client over addrs.
func NewClient(cfg ClientConfig) (*Client, error) {
	if len(cfg.Addrs) == 0 {
		return nil, errors.New("cluster: no member addresses")
	}
	if cfg.Fanout <= 0 {
		cfg.Fanout = 2
	}
	if cfg.HTTP == nil {
		cfg.HTTP = &http.Client{Timeout: DefaultClientTimeout}
	}
	return &Client{cfg: cfg, ring: NewRing(cfg.Addrs, cfg.Vnodes)}, nil
}

// Ring exposes the client's view of the ring (omnictl cluster ring).
func (c *Client) Ring() *Ring { return c.ring }

// Node returns a plain single-node client for one member.
func (c *Client) Node(addr string) *netserve.Client {
	return &netserve.Client{Base: addr, HTTP: c.cfg.HTTP}
}

// Failovers reports how many times this client abandoned one node for
// the next (dead node, transport error, or persistent shedding).
func (c *Client) Failovers() uint64 { return c.failovers.Load() }

// route is the failover order for a module hash: its owners, then
// every other member. Deterministic, so retries are stable.
func (c *Client) route(modHash string) []string {
	order := c.ring.Owners(modHash, c.cfg.Fanout)
	seen := map[string]bool{}
	for _, a := range order {
		seen[a] = true
	}
	for _, a := range c.ring.Members() {
		if !seen[a] {
			order = append(order, a)
		}
	}
	return order
}

// failoverWorthy reports whether err means "try another node": any
// transport error, plus shed/unavailable statuses that survived the
// per-node retry budget. 4xx misuse is the caller's bug on every
// node, so it is returned immediately.
func failoverWorthy(err error) bool {
	var se *netserve.StatusError
	if !errors.As(err, &se) {
		return true // transport-level failure
	}
	return se.Code == http.StatusTooManyRequests ||
		se.Code == http.StatusServiceUnavailable ||
		se.Code/100 == 5
}

// Upload sends a module to its ring owners (each owner gets a copy,
// so single-node loss does not lose the module), failing over past
// dead owners. It succeeds if at least one owner accepted the module.
// A deterministic refusal (4xx misuse — corrupt or oversized module)
// would be the same on every member, so it is returned immediately,
// not retried around the ring or counted as a failover.
func (c *Client) Upload(blob []byte) (*netserve.UploadResponse, error) {
	hash := wire.Hash(blob)
	var out *netserve.UploadResponse
	var lastErr error
	for i, addr := range c.route(hash) {
		isOwner := i < c.cfg.Fanout
		if !isOwner && out != nil {
			break // owners handled; non-owners only matter if all owners failed
		}
		resp, err := c.Node(addr).Upload(blob)
		if err != nil {
			if !failoverWorthy(err) {
				return nil, err
			}
			lastErr = err
			c.failovers.Add(1)
			continue
		}
		if out == nil {
			out = resp
		}
	}
	if out == nil {
		return nil, fmt.Errorf("cluster: upload failed on every member: %w", lastErr)
	}
	return out, nil
}

// Exec routes a job to the module's owners and fails over on node
// death or persistent shedding. In cluster mode a non-owner can still
// serve the job (it peer-fetches the module and peer-fills the
// translation), so the spill list is every member.
func (c *Client) Exec(r netserve.ExecRequest) (*netserve.ExecResponse, error) {
	return c.ExecWithPolicy(r, c.cfg.Retry)
}

// ExecWithPolicy is Exec with a per-call shed-retry policy (the load
// generator threads its shed accounting through the policy's Sleep).
func (c *Client) ExecWithPolicy(r netserve.ExecRequest, pol netserve.RetryPolicy) (*netserve.ExecResponse, error) {
	var lastErr error
	for _, addr := range c.route(r.Module) {
		resp, err := c.Node(addr).ExecRetry(r, pol)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if !failoverWorthy(err) {
			return nil, err
		}
		c.failovers.Add(1)
	}
	return nil, fmt.Errorf("cluster: exec failed on every member: %w", lastErr)
}
