// Package cluster shards translation serving across a static set of
// omniserved instances. Each module hash has a small ordered set of
// owner nodes on a consistent-hash ring; clients route execs to
// owners, nodes fill cache misses from the owners before paying for a
// retranslation, and hot translations are replicated owner-to-owner.
//
// The trust model does not change with clustering: a peer is just
// another untrusted source of bytes. Modules are content-addressed
// (the receiver recomputes the hash), and translations pass the same
// SFI admission gate as disk-cache entries before a single
// instruction is served. A compromised peer can cause extra local
// translation work; it cannot cause unverified code to run.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// DefaultVnodes is the number of ring points per member. 64 keeps the
// per-member load imbalance low for the handful-of-nodes clusters
// this targets while keeping Owners a cheap binary search.
const DefaultVnodes = 64

// Ring is an immutable consistent-hash ring over the member
// addresses. Every node and every client builds the same ring from
// the same member list, so routing agrees cluster-wide without any
// coordination traffic.
type Ring struct {
	members []string
	points  []ringPoint // sorted by hash
}

type ringPoint struct {
	hash   uint64
	member string
}

func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// NewRing builds a ring from members (order-insensitive, duplicates
// collapsed) with vnodes points per member (non-positive selects
// DefaultVnodes).
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	seen := map[string]bool{}
	var uniq []string
	for _, m := range members {
		if m != "" && !seen[m] {
			seen[m] = true
			uniq = append(uniq, m)
		}
	}
	sort.Strings(uniq)
	r := &Ring{members: uniq}
	for _, m := range uniq {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{ringHash(fmt.Sprintf("%s#%d", m, i)), m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
	return r
}

// Members returns the member addresses, sorted.
func (r *Ring) Members() []string {
	out := make([]string, len(r.members))
	copy(out, r.members)
	return out
}

// Owners returns the first n distinct members clockwise from key's
// ring position — the nodes responsible for holding key. n is clamped
// to the member count; the order is the failover order.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.members) == 0 {
		return nil
	}
	if n <= 0 {
		n = 1
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := map[string]bool{}
	out := make([]string, 0, n)
	for i := 0; len(out) < n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, p.member)
		}
	}
	return out
}
