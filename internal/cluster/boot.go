package cluster

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net"
	"net/http"
	"time"

	"omniware/internal/mcache"
	"omniware/internal/netserve"
	"omniware/internal/serve"
)

// BootConfig sizes an in-process cluster (BootLocal): N full
// omniserved stacks — cache, worker pool, HTTP layer, cluster engine
// — on loopback listeners. This is what `omniload -cluster` and the
// cluster tests run against; the binary daemons wire the same pieces
// together from flags.
type BootConfig struct {
	Nodes              int // member count (default 3)
	Fanout             int
	HotK               int
	ReplicateEvery     time.Duration // 0 = node default; negative = manual (ReplicateOnce)
	Vnodes             int
	Workers            int     // per-node worker pool size
	QueueCap           int     // per-node admission queue cap (0 = default)
	CacheLimit         int64   // per-node in-memory cache budget
	Rate               float64 // per-client rate limit (0 = netserve default)
	Burst              float64 // per-client burst allowance
	Verify             mcache.VerifyMode
	PeerSpotCheckEvery int
	// Audit is every node's admission-gate policy (zero value = off).
	Audit netserve.AuditConfig
	// Secret is the shared peer-auth secret every node is configured
	// with; empty generates a random one (the members are all in this
	// process, so nobody else needs to know it).
	Secret string
	Logf   func(format string, args ...any)
}

// Node is one member of an in-process cluster.
type Node struct {
	Addr    string
	Server  *serve.Server
	Handler *netserve.Handler
	Peers   *Peers

	httpSrv *http.Server
	lis     net.Listener
}

// Close shuts the node down: replicator, HTTP listener, then the
// worker pool. Idempotent enough for test cleanup (double Close on
// the HTTP server returns ErrServerClosed, which is ignored).
func (n *Node) Close() {
	n.Peers.Close()
	_ = n.httpSrv.Close()
	n.Server.Close()
}

// Kill drops the node's listener without any draining or cleanup —
// the closest in-process stand-in for SIGKILL, for failover tests.
// The dead node's goroutines are reaped by Close.
func (n *Node) Kill() {
	_ = n.httpSrv.Close()
}

// Local is a running in-process cluster.
type Local struct {
	Nodes []*Node
}

// Addrs lists the member base URLs in node order.
func (l *Local) Addrs() []string {
	out := make([]string, len(l.Nodes))
	for i, n := range l.Nodes {
		out[i] = n.Addr
	}
	return out
}

// Close shuts every node down.
func (l *Local) Close() {
	for _, n := range l.Nodes {
		n.Close()
	}
}

// Client builds a cluster-aware client over the cluster's members
// with the same fanout the nodes use.
func (l *Local) Client(fanout int) *Client {
	cl, err := NewClient(ClientConfig{Addrs: l.Addrs(), Fanout: fanout})
	if err != nil {
		panic(err) // unreachable: Addrs is non-empty for a booted cluster
	}
	return cl
}

// BootLocal starts an in-process cluster on loopback. Listeners are
// bound first so every node knows the full member list before any
// node is constructed; then each node gets its own cache (with the
// cluster engine as its peer source), worker pool, and HTTP layer.
func BootLocal(cfg BootConfig) (*Local, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 3
	}
	if cfg.Secret == "" {
		var b [16]byte
		if _, err := rand.Read(b[:]); err != nil {
			return nil, fmt.Errorf("cluster: generating peer secret: %w", err)
		}
		cfg.Secret = hex.EncodeToString(b[:])
	}
	liss := make([]net.Listener, 0, cfg.Nodes)
	members := make([]string, 0, cfg.Nodes)
	fail := func(err error) (*Local, error) {
		for _, l := range liss {
			_ = l.Close()
		}
		return nil, err
	}
	for i := 0; i < cfg.Nodes; i++ {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return fail(fmt.Errorf("cluster: binding node %d: %w", i, err))
		}
		liss = append(liss, lis)
		members = append(members, "http://"+lis.Addr().String())
	}

	l := &Local{}
	for i := 0; i < cfg.Nodes; i++ {
		peers, err := New(Config{
			Self:           members[i],
			Members:        members,
			Secret:         cfg.Secret,
			Fanout:         cfg.Fanout,
			HotK:           cfg.HotK,
			ReplicateEvery: cfg.ReplicateEvery,
			Vnodes:         cfg.Vnodes,
			Logf:           cfg.Logf,
		})
		if err != nil {
			l.Close()
			return fail(err)
		}
		cache := mcache.NewWith(mcache.Config{
			Limit:              cfg.CacheLimit,
			Verify:             cfg.Verify,
			Peer:               peers,
			PeerSpotCheckEvery: cfg.PeerSpotCheckEvery,
			Logf:               cfg.Logf,
		})
		srv := serve.New(serve.Config{Workers: cfg.Workers, QueueCap: cfg.QueueCap, Cache: cache})
		srv.SetClusterSnapshot(peers.Snapshot)
		h, err := netserve.New(netserve.Config{
			Server:   srv,
			Peer:     peers,
			PeerAuth: cfg.Secret,
			Rate:     cfg.Rate,
			Burst:    cfg.Burst,
			Audit:    cfg.Audit,
			Logf:     cfg.Logf,
		})
		if err != nil {
			srv.Close()
			l.Close()
			return fail(err)
		}
		peers.Start(cache)
		node := &Node{
			Addr:    members[i],
			Server:  srv,
			Handler: h,
			Peers:   peers,
			httpSrv: &http.Server{Handler: h},
			lis:     liss[i],
		}
		go func() { _ = node.httpSrv.Serve(node.lis) }()
		l.Nodes = append(l.Nodes, node)
	}
	return l, nil
}
