package cluster_test

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"omniware/internal/cc"
	"omniware/internal/cluster"
	"omniware/internal/core"
	"omniware/internal/mcache"
	"omniware/internal/netserve"
	"omniware/internal/ovm"
	"omniware/internal/serve/metrics"
	"omniware/internal/target"
	"omniware/internal/trace"
	"omniware/internal/translate"
	"omniware/internal/wire"
)

const prog1 = `
int g[64];
int main(void) {
	int i, acc = 0;
	for (i = 0; i < 64; i++) { g[i] = i * 3; acc += g[i]; }
	_print_int(acc);
	return acc & 0xff;
}`

func buildMod(t *testing.T, src string) *ovm.Module {
	t.Helper()
	mod, err := core.BuildC([]core.SourceFile{{Name: "p.c", Src: src}}, cc.Options{OptLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

func encodeMod(t *testing.T, mod *ovm.Module) []byte {
	t.Helper()
	blob, err := wire.EncodeModule(mod)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

func bootCluster(t *testing.T, n int, verify mcache.VerifyMode) *cluster.Local {
	t.Helper()
	l, err := cluster.BootLocal(cluster.BootConfig{
		Nodes:          n,
		Fanout:         2,
		ReplicateEvery: -1, // replication driven manually by the tests
		Workers:        2,
		Verify:         verify,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(l.Close)
	return l
}

func nodeByAddr(t *testing.T, l *cluster.Local, addr string) *cluster.Node {
	t.Helper()
	for _, n := range l.Nodes {
		if n.Addr == addr {
			return n
		}
	}
	t.Fatalf("no node at %s in %v", addr, l.Addrs())
	return nil
}

// The tentpole acceptance path: a module uploaded to one node and
// executed on its owner is then served by a cold node with ZERO local
// translations — the translation arrives by peer fill, re-verified,
// and the fill is visible in the trace and the metrics.
func TestPeerFillAcrossNodes(t *testing.T) {
	l := bootCluster(t, 3, mcache.VerifyCheck)
	blob := buildAndEncode(t)
	hash := wire.Hash(blob)

	// Upload via the first ring owner only, then warm it with one
	// exec. Uploading to the owner itself keeps the warm translation
	// local and deterministic: the OTHER owner holds no module bytes,
	// so it cannot answer the warm node's probe with an owner fill
	// (§13) — which it otherwise would whenever the upload node
	// happened to land on the ring as the second owner.
	owners := l.Nodes[0].Peers.Owners(hash)
	warm := nodeByAddr(t, l, owners[0])
	if _, err := l.Client(2).Node(warm.Addr).Upload(blob); err != nil {
		t.Fatal(err)
	}
	warmRes, err := l.Client(2).Node(warm.Addr).Exec(netserve.ExecRequest{Module: hash, Target: "mips"})
	if err != nil {
		t.Fatal(err)
	}
	wm, err := l.Client(2).Node(warm.Addr).Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if wm.Translations != 1 {
		t.Fatalf("warm node translations = %d, want 1", wm.Translations)
	}

	// A node that is neither the upload node nor the warm owner. With
	// three nodes at least one remains.
	var cold *cluster.Node
	for _, n := range l.Nodes {
		if n != warm && n != l.Nodes[0] {
			cold = n
		}
	}
	if cold == nil {
		cold = l.Nodes[1]
	}
	res, err := l.Client(2).Node(cold.Addr).Exec(netserve.ExecRequest{Module: hash, Target: "mips", Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != "ok" || res.Exit != warmRes.Exit || res.Output != warmRes.Output {
		t.Fatalf("cold node result %+v, warm %+v", res, warmRes)
	}
	if !res.Cached {
		t.Error("cold node exec not served warm")
	}
	if res.Trace == nil || res.Trace.Root.Find("peer_fetch") == nil {
		t.Error("cold node trace missing the peer_fetch span")
	}
	if sp := res.Trace.Root.Find("translate"); sp != nil {
		t.Error("cold node trace contains a translate span — retranslated instead of peer-filling")
	}

	cm, err := l.Client(2).Node(cold.Addr).Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if cm.Translations != 0 {
		t.Errorf("cold node performed %d translations, want 0", cm.Translations)
	}
	if cm.CachePeerHits != 1 {
		t.Errorf("cold node peer hits = %d, want 1", cm.CachePeerHits)
	}
	if cm.Cluster == nil {
		t.Fatal("cold node snapshot has no cluster section")
	}
	var hitPeer string
	for _, ps := range cm.Cluster.Peers {
		if ps.Hits > 0 {
			hitPeer = ps.Peer
		}
	}
	if hitPeer != warm.Addr {
		t.Errorf("peer hit attributed to %q, want %q", hitPeer, warm.Addr)
	}
}

func buildAndEncode(t *testing.T) []byte {
	t.Helper()
	return encodeMod(t, buildMod(t, prog1))
}

// stripSandboxMask turns a verified program into a valid-but-
// unverifiable one: the translation still decodes cleanly but its
// sandboxing mask is gone, so the SFI verifier must refuse it.
func stripSandboxMask(t *testing.T, prog *target.Program, m *target.Machine) {
	t.Helper()
	for i := range prog.Code {
		in := &prog.Code[i]
		if in.Op == target.And && in.Rd == m.SFIAddr && in.Rs2 == m.SFIMask {
			in.Op = target.Nop
			in.Rd, in.Rs1, in.Rs2 = target.NoReg, target.NoReg, target.NoReg
			return
		}
	}
	t.Fatal("no sandboxing mask found to strip")
}

// The adversarial-peer harness: a fake cluster member serves
// corrupted, truncated, mis-keyed, and valid-but-unverifiable
// translation frames. In every case the victim node must quarantine
// the response, fall back to a local translation, and serve correct
// results — an adversarial peer can cost work, never safety.
func TestAdversarialPeers(t *testing.T) {
	mod := buildMod(t, prog1)
	m := target.ByName("mips")
	si := core.SegInfoFor(mod, core.RunConfig{})
	opt := translate.Paper(true)

	honest, err := translate.Translate(mod, m, si, opt)
	if err != nil {
		t.Fatal(err)
	}
	tampered := *honest
	tampered.Code = append([]target.Inst(nil), honest.Code...)
	stripSandboxMask(t, &tampered, m)
	tamperedBytes, err := wire.EncodeProgram(&tampered)
	if err != nil {
		t.Fatal(err)
	}

	frameFor := func(t *testing.T, key string, payload []byte) []byte {
		t.Helper()
		f, err := wire.EncodePeerFrame(key, payload)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}

	// Each case maps the requested key to the evil server's response;
	// reason is the quarantine label the refusal must land under.
	cases := []struct {
		name string
		body func(t *testing.T, key string) []byte
		// cacheQuarantine: the candidate reached the cache's admission
		// gate (frame was well-formed) and was refused there.
		cacheQuarantine bool
		reason          string
	}{
		{"corrupted", func(t *testing.T, key string) []byte {
			return []byte("OPF1 this is not a frame at all....")
		}, false, mcache.QuarantineFrame},
		{"truncated", func(t *testing.T, key string) []byte {
			f := frameFor(t, key, tamperedBytes)
			return f[:len(f)/2]
		}, false, mcache.QuarantineFrame},
		{"wrong-key", func(t *testing.T, key string) []byte {
			return frameFor(t, key+"-other", tamperedBytes)
		}, false, mcache.QuarantineKeyMismatch},
		{"unverifiable", func(t *testing.T, key string) []byte {
			return frameFor(t, key, tamperedBytes)
		}, true, mcache.QuarantineVerifier},
	}

	for _, mode := range []mcache.VerifyMode{mcache.VerifyCheck, mcache.VerifyBoth} {
		for _, tc := range cases {
			t.Run(tc.name+"/"+mode.String(), func(t *testing.T) {
				evil := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
					if !strings.Contains(r.URL.Path, "/v1/peer/translation/") {
						http.NotFound(w, r)
						return
					}
					w.Header().Set("Content-Type", "application/octet-stream")
					_, _ = w.Write(tc.body(t, r.URL.Query().Get("key")))
				}))
				defer evil.Close()

				self := "http://self.invalid"
				peers, err := cluster.New(cluster.Config{
					Self:           self,
					Members:        []string{self, evil.URL},
					Secret:         "test-peer-secret",
					Fanout:         2,
					ReplicateEvery: -1,
					Logf:           t.Logf,
				})
				if err != nil {
					t.Fatal(err)
				}
				defer peers.Close()
				c := mcache.NewWith(mcache.Config{Verify: mode, Peer: peers, Logf: t.Logf})

				prog, warm, err := c.Translate(mod, m, si, opt)
				if err != nil {
					t.Fatalf("lookup failed instead of falling back: %v", err)
				}
				if warm {
					t.Fatal("adversarial candidate was served as a peer fill")
				}
				// The served program is the honest local translation
				// — its sandboxing mask is intact.
				if !hasSandboxMask(prog, m) {
					t.Error("served program lacks the sandboxing mask")
				}
				st := c.Stats()
				if st.PeerHits != 0 {
					t.Errorf("peer hits = %d, want 0", st.PeerHits)
				}
				if st.Misses != 1 {
					t.Errorf("misses = %d, want 1 (local retranslation)", st.Misses)
				}
				if tc.cacheQuarantine && st.PeerQuarantines != 1 {
					t.Errorf("cache peer quarantines = %d, want 1", st.PeerQuarantines)
				}
				snap := peers.Snapshot()
				if len(snap.Peers) != 1 || snap.Peers[0].Peer != evil.URL {
					t.Fatalf("cluster snapshot peers %+v", snap.Peers)
				}
				if q := snap.Peers[0].Quarantines; q != 1 {
					t.Errorf("per-peer quarantines = %d, want 1", q)
				}
				if got := snap.Peers[0].QuarantinesByReason[tc.reason]; got != 1 {
					t.Errorf("quarantines under reason %q = %d, want 1 (map %v)",
						tc.reason, got, snap.Peers[0].QuarantinesByReason)
				}
				var reasonTotal uint64
				for _, v := range snap.Peers[0].QuarantinesByReason {
					reasonTotal += v
				}
				if reasonTotal != snap.Peers[0].Quarantines {
					t.Errorf("reason-split sum %d != total quarantines %d",
						reasonTotal, snap.Peers[0].Quarantines)
				}
				if h := snap.Peers[0].Hits; h != 0 {
					t.Errorf("per-peer hits = %d, want 0", h)
				}
				if snap.Peers[0].StalenessMs < 0 {
					t.Error("peer answered (with garbage) but staleness says never contacted")
				}
			})
		}
	}
}

// Hot-entry replication: after a node serves a module twice, one
// replication round pushes the translation to the module's ring
// owners, which then serve it warm with zero translations of their
// own. Pushes are per-(entry, owner) idempotent.
func TestReplication(t *testing.T) {
	l := bootCluster(t, 3, mcache.VerifyCheck)
	blob := buildAndEncode(t)
	hash := wire.Hash(blob)

	src := l.Nodes[0]
	cl := l.Client(2).Node(src.Addr)
	if _, err := cl.Upload(blob); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ { // miss then hit: gives the entry a hot rank
		if _, err := cl.Exec(netserve.ExecRequest{Module: hash, Target: "mips"}); err != nil {
			t.Fatal(err)
		}
	}

	pushes := src.Peers.ReplicateOnce()
	if pushes < 1 {
		t.Fatalf("ReplicateOnce pushed %d entries, want >= 1", pushes)
	}
	if again := src.Peers.ReplicateOnce(); again != 0 {
		t.Errorf("second replication round re-pushed %d entries", again)
	}

	key := src.Server.Cache().Hot(1)[0].Key
	for _, owner := range src.Peers.Owners(hash) {
		if owner == src.Addr {
			continue
		}
		n := nodeByAddr(t, l, owner)
		if _, ok := n.Server.Cache().Peek(key); !ok {
			t.Errorf("owner %s missing replicated entry", owner)
			continue
		}
		res, err := l.Client(2).Node(owner).Exec(netserve.ExecRequest{Module: hash, Target: "mips"})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Cached {
			t.Errorf("owner %s exec not warm after replication", owner)
		}
		om, err := l.Client(2).Node(owner).Metrics()
		if err != nil {
			t.Fatal(err)
		}
		if om.Translations != 0 {
			t.Errorf("owner %s translated %d times after replication, want 0", owner, om.Translations)
		}
	}
	if snap := src.Peers.Snapshot(); snapPushes(snap.Peers) != uint64(pushes) {
		t.Errorf("snapshot pushes %d, want %d", snapPushes(snap.Peers), pushes)
	}
}

func snapPushes(ps []metrics.PeerStats) uint64 {
	var n uint64
	for _, p := range ps {
		n += p.Pushes
	}
	return n
}

func hasSandboxMask(prog *target.Program, m *target.Machine) bool {
	for _, in := range prog.Code {
		if in.Op == target.And && in.Rd == m.SFIAddr && in.Rs2 == m.SFIMask {
			return true
		}
	}
	return false
}

// The omniscope acceptance path: an exec on a cold non-owner stitches
// the remote owner's own spans — node-annotated cache, translate and
// verify work — into ONE trace fetchable by id from the origin, and
// /v1/cluster/metrics on any node reports fleet-summed histograms
// equal bucket-wise to the sum of the members' local snapshots.
func TestStitchedTraceAndFleetMetrics(t *testing.T) {
	l := bootCluster(t, 3, mcache.VerifyCheck)
	blob := buildAndEncode(t)
	hash := wire.Hash(blob)

	// Register the module on EVERY node but translate nowhere: the
	// owner's first translation happens inside its peer-serve fill.
	for _, n := range l.Nodes {
		if _, err := l.Client(2).Node(n.Addr).Upload(blob); err != nil {
			t.Fatal(err)
		}
	}
	owners := l.Nodes[0].Peers.Owners(hash)
	isOwner := map[string]bool{}
	for _, o := range owners {
		isOwner[o] = true
	}
	var origin *cluster.Node
	for _, n := range l.Nodes {
		if !isOwner[n.Addr] {
			origin = n
		}
	}
	if origin == nil {
		t.Fatal("no non-owner node with 3 nodes and fanout 2")
	}

	cl := l.Client(2).Node(origin.Addr)
	res, err := cl.Exec(netserve.ExecRequest{Module: hash, Target: "mips", Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != "ok" {
		t.Fatalf("exec: %+v", res)
	}
	if !res.Cached {
		t.Error("cold non-owner exec was not peer-filled")
	}

	// The stitched tree must be fetchable BY ID from the origin — not
	// only inline in the exec response.
	tr, err := cl.Trace(res.ID)
	if err != nil {
		t.Fatal(err)
	}
	remote := tr.Root.Find("peer_serve")
	if remote == nil {
		t.Fatalf("no remote peer_serve subtree in stitched trace:\n%s", tr.Render())
	}
	nodeAttr := func(s *trace.Span) string {
		for _, a := range s.Attrs {
			if a.Key == "node" {
				return a.Val
			}
		}
		return ""
	}
	owner := nodeAttr(remote)
	if !isOwner[owner] {
		t.Errorf("remote subtree annotated node=%q, want one of the owners %v", owner, owners)
	}
	for _, name := range []string{"cache", "translate", "verify"} {
		s := remote.Find(name)
		if s == nil {
			t.Errorf("remote subtree missing the owner's %s span:\n%s", name, tr.Render())
			continue
		}
		if nodeAttr(s) != owner {
			t.Errorf("remote %s span not annotated with node=%s", name, owner)
		}
	}
	om, err := cl.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if om.Translations != 0 {
		t.Errorf("origin translated %d times, want 0 (the owner fill did the work)", om.Translations)
	}

	// Fleet aggregation: every node's fan-out equals the bucket-wise
	// sum of the three locals.
	var want metrics.Snapshot
	for i, n := range l.Nodes {
		s, err := l.Client(2).Node(n.Addr).Metrics()
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = *s
		} else {
			want = metrics.MergeSnapshots(want, *s)
		}
	}
	if want.Translations == 0 || want.JobsRun == 0 {
		t.Fatalf("fleet locals show no work: %+v", want)
	}
	for _, n := range l.Nodes {
		fleet, err := l.Client(2).Node(n.Addr).ClusterMetrics()
		if err != nil {
			t.Fatal(err)
		}
		if len(fleet.Nodes) != 3 {
			t.Fatalf("fleet from %s has %d node reports, want 3", n.Addr, len(fleet.Nodes))
		}
		for _, nr := range fleet.Nodes {
			if nr.Err != "" {
				t.Errorf("node %s reported error %q", nr.Node, nr.Err)
			}
		}
		got := fleet.Fleet
		if got == nil {
			t.Fatal("fleet view has no merged snapshot")
		}
		if got.JobsRun != want.JobsRun || got.Translations != want.Translations ||
			got.CachePeerHits != want.CachePeerHits {
			t.Errorf("fleet counters from %s: run=%d translations=%d peer_hits=%d, want %d/%d/%d",
				n.Addr, got.JobsRun, got.Translations, got.CachePeerHits,
				want.JobsRun, want.Translations, want.CachePeerHits)
		}
		for name, ws := range want.Stages {
			gs, ok := got.Stages[name]
			if !ok {
				t.Errorf("fleet from %s missing stage %q", n.Addr, name)
				continue
			}
			if gs.Hist.Count != ws.Hist.Count || !reflect.DeepEqual(gs.Hist.Counts, ws.Hist.Counts) {
				t.Errorf("stage %q fleet hist != bucket-wise sum of locals (got count=%d, want %d)",
					name, gs.Hist.Count, ws.Hist.Count)
			}
		}
	}
}

// The cluster client survives node death: with the module on both
// owners, killing one mid-stream fails over with zero caller-visible
// errors.
func TestClientFailover(t *testing.T) {
	l := bootCluster(t, 3, mcache.VerifyCheck)
	cl := l.Client(2)
	blob := buildAndEncode(t)

	up, err := cl.Upload(blob)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Exec(netserve.ExecRequest{Module: up.Hash, Target: "mips"}); err != nil {
		t.Fatal(err)
	}

	owners := cl.Ring().Owners(up.Hash, 2)
	nodeByAddr(t, l, owners[0]).Kill()

	for i := 0; i < 5; i++ {
		res, err := cl.Exec(netserve.ExecRequest{Module: up.Hash, Target: "mips"})
		if err != nil {
			t.Fatalf("exec %d after node death: %v", i, err)
		}
		if res.Status != "ok" {
			t.Fatalf("exec %d after node death: %+v", i, res)
		}
	}
	if cl.Failovers() == 0 {
		t.Error("no failovers recorded despite a dead owner")
	}

	// Client misuse is not retried around the ring: an unknown module
	// fails fast with the server's 404. The failover counter may move
	// at most once — skipping the dead owner — never a full sweep.
	before := cl.Failovers()
	_, err = cl.Exec(netserve.ExecRequest{Module: strings.Repeat("0", 64), Target: "mips"})
	var se *netserve.StatusError
	if !errors.As(err, &se) || se.Code != http.StatusNotFound {
		t.Errorf("unknown module exec error = %v, want a 404", err)
	}
	if d := cl.Failovers() - before; d > 1 {
		t.Errorf("404 consumed %d failovers, want at most the dead owner's", d)
	}
}
