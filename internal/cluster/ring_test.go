package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

func TestRingOwners(t *testing.T) {
	members := []string{"http://c:3", "http://a:1", "http://b:2"}
	r := NewRing(members, 0)
	if got := r.Members(); !reflect.DeepEqual(got, []string{"http://a:1", "http://b:2", "http://c:3"}) {
		t.Fatalf("Members() = %v", got)
	}

	// Deterministic and order-insensitive: every permutation of the
	// member list yields the same owners for every key.
	r2 := NewRing([]string{"http://b:2", "http://c:3", "http://a:1"}, 0)
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("hash-%d", i)
		o1, o2 := r.Owners(key, 2), r2.Owners(key, 2)
		if !reflect.DeepEqual(o1, o2) {
			t.Fatalf("key %q: owners %v vs %v across member orderings", key, o1, o2)
		}
		if len(o1) != 2 || o1[0] == o1[1] {
			t.Fatalf("key %q: owners not 2 distinct members: %v", key, o1)
		}
	}

	// n is clamped to the member count; n<=0 means one owner.
	if got := r.Owners("k", 10); len(got) != 3 {
		t.Fatalf("Owners(k, 10) = %v, want all 3 members", got)
	}
	if got := r.Owners("k", 0); len(got) != 1 {
		t.Fatalf("Owners(k, 0) = %v, want 1 member", got)
	}
}

// Consistent hashing's point: removing one member only remaps keys
// that member owned. Keys whose primary owner survives keep it.
func TestRingStability(t *testing.T) {
	all := []string{"http://a:1", "http://b:2", "http://c:3", "http://d:4"}
	full := NewRing(all, 0)
	less := NewRing(all[:3], 0) // d removed
	moved := 0
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("hash-%d", i)
		before := full.Owners(key, 1)[0]
		after := less.Owners(key, 1)[0]
		if before == "http://d:4" {
			continue // had to move
		}
		if before != after {
			moved++
		}
	}
	if moved != 0 {
		t.Errorf("%d keys moved although their owner survived", moved)
	}
}

// Load spread sanity: with vnodes, no member owns a wildly
// disproportionate share.
func TestRingSpread(t *testing.T) {
	r := NewRing([]string{"http://a:1", "http://b:2", "http://c:3"}, 0)
	counts := map[string]int{}
	const n = 900
	for i := 0; i < n; i++ {
		counts[r.Owners(fmt.Sprintf("hash-%d", i), 1)[0]]++
	}
	for m, c := range counts {
		if c < n/9 || c > n*6/9 {
			t.Errorf("member %s owns %d of %d keys — spread too skewed: %v", m, c, n, counts)
		}
	}
}

func TestEmptyRing(t *testing.T) {
	if got := NewRing(nil, 0).Owners("k", 2); got != nil {
		t.Fatalf("empty ring returned owners %v", got)
	}
}
