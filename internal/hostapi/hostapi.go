// Package hostapi defines the host side of the Omniware runtime: the
// set of library functions a host program safely exports to dynamically
// loaded modules (memory management, console I/O, timing), the module
// memory layout, and the exception-delivery contract. Both the
// abstract-machine interpreter and the translated-code simulators call
// into this package through the SYSCALL gateway.
package hostapi

import (
	"errors"
	"fmt"
	"io"

	"omniware/internal/ovm"
	"omniware/internal/seg"
)

// Sentinel errors for the two ways the host terminates a module run
// from the outside. Both executors (the OmniVM interpreter and the
// translated-code simulators) wrap these, and callers classify them
// with errors.Is — the serving layer's fault-containment accounting
// depends on the classification, so the errors are typed rather than
// matched by message text (which a rewording would silently break).
// core re-exports them as core.ErrBudget and core.ErrInterrupted.
var (
	// ErrBudget: the instruction budget (MaxSteps / Sim.MaxInsts) ran
	// out before the module finished.
	ErrBudget = errors.New("instruction budget exhausted")
	// ErrInterrupted: the Interrupt flag was set mid-run (the serving
	// layer's per-job deadline watchdog).
	ErrInterrupted = errors.New("run interrupted")
)

// Syscall numbers. Arguments are passed in r1..r4 (doubles in f1) and
// results return in r1 (f1 for doubles), matching the OmniVM calling
// convention.
const (
	SysExit       = 0 // exit(status r1)
	SysPutc       = 1 // putc(char r1)
	SysPuts       = 2 // puts(addr r1): NUL-terminated
	SysPrintInt   = 3 // print_int(v r1): signed decimal
	SysPrintUint  = 4 // print_uint(v r1)
	SysSbrk       = 5 // sbrk(incr r1) -> old break, or -1 on exhaustion
	SysClock      = 6 // clock() -> elapsed virtual cycles (low 32 bits)
	SysPrintFlt   = 7 // print_double(f1)
	SysWrite      = 8 // write(addr r1, len r2) -> bytes written
	SysSetHandler = 9 // set_handler(code index r1): access-violation hook
	NumSyscalls   = 10
)

// syscallNames indexes the host API by number; these names are the
// capability vocabulary the audit manifest and admission allow-lists
// speak, so they are part of the wire format and must stay stable.
var syscallNames = [NumSyscalls]string{
	SysExit:       "exit",
	SysPutc:       "putc",
	SysPuts:       "puts",
	SysPrintInt:   "print_int",
	SysPrintUint:  "print_uint",
	SysSbrk:       "sbrk",
	SysClock:      "clock",
	SysPrintFlt:   "print_flt",
	SysWrite:      "write",
	SysSetHandler: "set_handler",
}

// SyscallName names syscall num for reports and manifests. Unknown
// numbers (statically present in a module but refused at run time)
// render as "sys?N".
func SyscallName(num int) string {
	if num >= 0 && num < NumSyscalls {
		return syscallNames[num]
	}
	return fmt.Sprintf("sys?%d", num)
}

// SyscallByName inverts SyscallName for admission allow-lists;
// ok is false for names outside the host API.
func SyscallByName(name string) (int, bool) {
	for i, n := range syscallNames {
		if n == name {
			return i, true
		}
	}
	return 0, false
}

// CPU is the register-file view a syscall needs, implemented by the
// interpreter and by each target simulator (which maps OmniVM register
// numbers to its own state).
type CPU interface {
	IntReg(i int) uint32
	SetIntReg(i int, v uint32)
	FPReg(i int) float64
	SetFPReg(i int, v float64)
	Cycles() uint64
}

// Layout records where the loader placed the pieces of a module's data
// segment: [data | bss | heap ... | guard | stack].
type Layout struct {
	Seg       *seg.Segment
	HeapBase  uint32
	Brk       uint32 // current program break (moved by sbrk)
	HeapLimit uint32
	StackTop  uint32 // initial stack pointer
	// RegSave is a 256-byte area at the top of the data segment used by
	// targets that keep some OmniVM registers in memory (x86) and by
	// the simulators' syscall bridge.
	RegSave uint32
}

// DefaultHeapSize and DefaultStackSize size a module's data segment.
const (
	DefaultHeapSize  = 8 << 20
	DefaultStackSize = 1 << 20
	guardSize        = seg.PageSize
)

// Plan is the geometry Load will give a module's data segment,
// computable without touching an address space. The translation cache
// uses it to derive a module's SFI segment description (and hence its
// cache key) before any host exists.
type Plan struct {
	SegSize   uint32 // total data-segment size (a power of two)
	HeapBase  uint32
	HeapLimit uint32
	StackTop  uint32
	RegSave   uint32
}

// PlanLayout computes the layout Load(mem, m, heapSize, stackSize)
// will produce. It is deterministic in (module, heapSize, stackSize),
// which is what makes translations shareable across hosts: every host
// loading the same module with the same budgets sees the same segment
// geometry, so one SFI-checked translation fits them all.
func PlanLayout(m *ovm.Module, heapSize, stackSize uint32) Plan {
	if heapSize == 0 {
		heapSize = DefaultHeapSize
	}
	if stackSize == 0 {
		stackSize = DefaultStackSize
	}
	static := uint32(len(m.Data)) + m.BSSSize
	total := static + heapSize + guardSize + stackSize
	// Round the segment to a power of two so SFI sandboxing can mask
	// addresses into it; the slack goes to the heap.
	p := uint32(seg.PageSize)
	for p < total {
		p <<= 1
	}
	total = p
	end := m.DataBase + total
	const regSaveSize = 256
	regSave := end - regSaveSize
	return Plan{
		SegSize:   total,
		HeapBase:  (m.DataBase + static + 7) &^ 7,
		HeapLimit: end - stackSize - guardSize,
		StackTop:  regSave - 16,
		RegSave:   regSave,
	}
}

// Load maps a module's data image into mem at the module's linked base
// and returns the layout. The code itself is not placed in data memory:
// OmniVM code addresses are instruction indices into the text section,
// and the (virtual or translated) code segment is execute-only by
// construction.
func Load(mem *seg.Memory, m *ovm.Module, heapSize, stackSize uint32) (*Layout, error) {
	p := PlanLayout(m, heapSize, stackSize)
	s, err := mem.Map("module-data", m.DataBase, p.SegSize, seg.Read|seg.Write)
	if err != nil {
		return nil, fmt.Errorf("hostapi: mapping module data: %w", err)
	}
	copy(s.Bytes(), m.Data)
	lay := &Layout{
		Seg:       s,
		HeapBase:  p.HeapBase,
		Brk:       p.HeapBase,
		HeapLimit: p.HeapLimit,
		StackTop:  p.StackTop,
		RegSave:   p.RegSave,
	}
	// The guard page between heap and stack stays unmapped in spirit:
	// revoke all access so runaway heap writes fault.
	if err := mem.Protect(lay.HeapLimit&^uint32(seg.PageSize-1), guardSize, 0); err != nil {
		return nil, fmt.Errorf("hostapi: guard page: %w", err)
	}
	return lay, nil
}

// LoadInto is Load against a caller-provided reusable segment (see
// seg.NewPooledSegment): the segment is recycled to pristine state
// under the module's identity, attached to mem, and given the data
// image — the allocation-free half of the serving layer's host pool.
// The segment's size must equal the module's planned geometry (the
// pool keys on it). Returns the layout by value so the caller can
// embed it without a heap allocation.
func LoadInto(mem *seg.Memory, s *seg.Segment, m *ovm.Module, heapSize, stackSize uint32) (Layout, error) {
	p := PlanLayout(m, heapSize, stackSize)
	if s.Size() != p.SegSize {
		return Layout{}, fmt.Errorf("hostapi: pooled segment size %#x does not fit module plan %#x", s.Size(), p.SegSize)
	}
	s.Recycle("module-data", m.DataBase, seg.Read|seg.Write)
	if err := mem.Attach(s); err != nil {
		return Layout{}, fmt.Errorf("hostapi: attaching module data: %w", err)
	}
	copy(s.Bytes(), m.Data)
	s.MarkDirty(0, uint32(len(m.Data)))
	lay := Layout{
		Seg:       s,
		HeapBase:  p.HeapBase,
		Brk:       p.HeapBase,
		HeapLimit: p.HeapLimit,
		StackTop:  p.StackTop,
		RegSave:   p.RegSave,
	}
	if err := mem.Protect(lay.HeapLimit&^uint32(seg.PageSize-1), guardSize, 0); err != nil {
		return Layout{}, fmt.Errorf("hostapi: guard page: %w", err)
	}
	return lay, nil
}

// Env is the per-module host environment. An Env — like the Memory
// and Layout it wraps — belongs to exactly one module instance and is
// not safe for concurrent use: a server running many jobs gives each
// job its own address space and Env (see internal/serve), sharing only
// immutable state (the Module and its cached translations) between
// them.
type Env struct {
	Mem    *seg.Memory
	Out    io.Writer
	Layout *Layout

	Exited   bool
	ExitCode int32

	// Handler is the module-registered access-violation handler
	// (instruction index), or -1.
	Handler int32

	// Stats
	SyscallCount [NumSyscalls]uint64
}

// NewEnv creates an environment writing module output to out.
func NewEnv(mem *seg.Memory, lay *Layout, out io.Writer) *Env {
	return &Env{Mem: mem, Out: out, Layout: lay, Handler: -1}
}

// Reset reinitializes an environment in place for a new module run —
// the reuse path equivalent of NewEnv, clearing exit state, the
// violation handler, and the syscall counters without allocating.
func (e *Env) Reset(mem *seg.Memory, lay *Layout, out io.Writer) {
	*e = Env{Mem: mem, Out: out, Layout: lay, Handler: -1}
}

// Syscall dispatches host call num. It returns an error only for
// malformed requests that the host refuses (bad syscall number, bad
// buffer); module-visible failures are returned in r1 per the ABI.
func (e *Env) Syscall(num int32, cpu CPU) error {
	if num < 0 || num >= NumSyscalls {
		return fmt.Errorf("hostapi: bad syscall %d", num)
	}
	e.SyscallCount[num]++
	switch num {
	case SysExit:
		e.Exited = true
		e.ExitCode = int32(cpu.IntReg(ovm.RArg0))
	case SysPutc:
		fmt.Fprintf(e.Out, "%c", byte(cpu.IntReg(ovm.RArg0)))
	case SysPuts:
		s, f := e.Mem.ReadCString(cpu.IntReg(ovm.RArg0), 1<<20)
		if f != nil {
			return f
		}
		io.WriteString(e.Out, s)
	case SysPrintInt:
		fmt.Fprintf(e.Out, "%d", int32(cpu.IntReg(ovm.RArg0)))
	case SysPrintUint:
		fmt.Fprintf(e.Out, "%d", cpu.IntReg(ovm.RArg0))
	case SysSbrk:
		incr := int32(cpu.IntReg(ovm.RArg0))
		old := e.Layout.Brk
		nw := uint32(int64(old) + int64(incr))
		if nw < e.Layout.HeapBase || nw > e.Layout.HeapLimit {
			cpu.SetIntReg(ovm.RRet, 0xffffffff)
			return nil
		}
		e.Layout.Brk = nw
		cpu.SetIntReg(ovm.RRet, old)
	case SysClock:
		cpu.SetIntReg(ovm.RRet, uint32(cpu.Cycles()))
	case SysPrintFlt:
		fmt.Fprintf(e.Out, "%g", cpu.FPReg(1))
	case SysWrite:
		addr, n := cpu.IntReg(ovm.RArg0), cpu.IntReg(ovm.RArg1)
		if n > 1<<20 {
			return fmt.Errorf("hostapi: write length %d too large", n)
		}
		b, f := e.Mem.ReadBytes(addr, int(n))
		if f != nil {
			return f
		}
		e.Out.Write(b)
		cpu.SetIntReg(ovm.RRet, n)
	case SysSetHandler:
		e.Handler = int32(cpu.IntReg(ovm.RArg0))
	}
	return nil
}
