package hostapi

import (
	"strings"
	"testing"

	"omniware/internal/ovm"
	"omniware/internal/seg"
)

type fakeCPU struct {
	r [16]uint32
	f [16]float64
}

func (c *fakeCPU) IntReg(i int) uint32       { return c.r[i] }
func (c *fakeCPU) SetIntReg(i int, v uint32) { c.r[i] = v }
func (c *fakeCPU) FPReg(i int) float64       { return c.f[i] }
func (c *fakeCPU) SetFPReg(i int, v float64) { c.f[i] = v }
func (c *fakeCPU) Cycles() uint64            { return 1234 }

func newEnv(t *testing.T) (*Env, *seg.Memory, *fakeCPU) {
	t.Helper()
	var mem seg.Memory
	mod := &ovm.Module{
		Text:     []ovm.Inst{{Op: ovm.HALT}},
		Data:     []byte("hello\x00"),
		BSSSize:  64,
		DataBase: 0x20000000,
	}
	lay, err := Load(&mem, mod, 1<<16, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	env := NewEnv(&mem, lay, &out)
	return env, &mem, &fakeCPU{}
}

func output(e *Env) string { return e.Out.(*strings.Builder).String() }

func TestLoadLayout(t *testing.T) {
	env, mem, _ := newEnv(t)
	lay := env.Layout
	if lay.Seg.Base != 0x20000000 {
		t.Errorf("base %#x", lay.Seg.Base)
	}
	// Power-of-two segment (needed by SFI masks).
	if s := lay.Seg.Size(); s&(s-1) != 0 {
		t.Errorf("segment size %#x not a power of two", s)
	}
	if lay.StackTop <= lay.HeapBase || lay.StackTop >= lay.Seg.End() {
		t.Errorf("stack top %#x out of place", lay.StackTop)
	}
	if lay.RegSave != lay.Seg.End()-256 {
		t.Errorf("regsave %#x", lay.RegSave)
	}
	// Data image copied in.
	b, f := mem.ReadCString(0x20000000, 16)
	if f != nil || b != "hello" {
		t.Errorf("data image: %q %v", b, f)
	}
	// Guard page between heap and stack rejects access.
	if fault := mem.StoreU8(lay.HeapLimit, 1); fault == nil {
		t.Error("guard page writable")
	}
}

func TestPlanLayoutMatchesLoad(t *testing.T) {
	mod := &ovm.Module{
		Text:     []ovm.Inst{{Op: ovm.HALT}},
		Data:     make([]byte, 777),
		BSSSize:  1 << 14,
		DataBase: 0x20000000,
	}
	for _, budgets := range [][2]uint32{{0, 0}, {1 << 16, 1 << 16}, {3 << 20, 1 << 18}} {
		p := PlanLayout(mod, budgets[0], budgets[1])
		var mem seg.Memory
		lay, err := Load(&mem, mod, budgets[0], budgets[1])
		if err != nil {
			t.Fatal(err)
		}
		if p.SegSize != lay.Seg.Size() || p.HeapBase != lay.HeapBase ||
			p.HeapLimit != lay.HeapLimit || p.StackTop != lay.StackTop ||
			p.RegSave != lay.RegSave {
			t.Errorf("budgets %v: plan %+v disagrees with load %+v", budgets, p, lay)
		}
		// Deterministic: a second plan is identical.
		if p2 := PlanLayout(mod, budgets[0], budgets[1]); p2 != p {
			t.Errorf("budgets %v: plan not deterministic: %+v vs %+v", budgets, p, p2)
		}
	}
}

func TestSyscallOutput(t *testing.T) {
	env, _, cpu := newEnv(t)
	cpu.SetIntReg(ovm.RArg0, 'A')
	if err := env.Syscall(SysPutc, cpu); err != nil {
		t.Fatal(err)
	}
	cpu.SetIntReg(ovm.RArg0, 0x20000000) // "hello"
	if err := env.Syscall(SysPuts, cpu); err != nil {
		t.Fatal(err)
	}
	neg42 := int32(-42)
	cpu.SetIntReg(ovm.RArg0, uint32(neg42))
	if err := env.Syscall(SysPrintInt, cpu); err != nil {
		t.Fatal(err)
	}
	cpu.SetIntReg(ovm.RArg0, 4000000000)
	if err := env.Syscall(SysPrintUint, cpu); err != nil {
		t.Fatal(err)
	}
	cpu.SetFPReg(1, 2.5)
	if err := env.Syscall(SysPrintFlt, cpu); err != nil {
		t.Fatal(err)
	}
	want := "Ahello-4240000000002.5"
	if got := output(env); got != want {
		t.Errorf("output %q, want %q", got, want)
	}
}

func TestSyscallSbrk(t *testing.T) {
	env, _, cpu := newEnv(t)
	start := env.Layout.Brk
	cpu.SetIntReg(ovm.RArg0, 128)
	env.Syscall(SysSbrk, cpu)
	if cpu.IntReg(ovm.RRet) != start {
		t.Errorf("first sbrk returned %#x, want %#x", cpu.IntReg(ovm.RRet), start)
	}
	cpu.SetIntReg(ovm.RArg0, 0)
	env.Syscall(SysSbrk, cpu)
	if cpu.IntReg(ovm.RRet) != start+128 {
		t.Errorf("brk did not advance")
	}
	// Exhaustion returns -1 and does not move the break.
	cpu.SetIntReg(ovm.RArg0, 0x7fffffff)
	env.Syscall(SysSbrk, cpu)
	if cpu.IntReg(ovm.RRet) != 0xffffffff {
		t.Errorf("exhaustion returned %#x", cpu.IntReg(ovm.RRet))
	}
	if env.Layout.Brk != start+128 {
		t.Errorf("break moved on failure")
	}
}

func TestSyscallClockAndHandler(t *testing.T) {
	env, _, cpu := newEnv(t)
	env.Syscall(SysClock, cpu)
	if cpu.IntReg(ovm.RRet) != 1234 {
		t.Errorf("clock %d", cpu.IntReg(ovm.RRet))
	}
	if env.Handler != -1 {
		t.Errorf("default handler %d", env.Handler)
	}
	cpu.SetIntReg(ovm.RArg0, 7)
	env.Syscall(SysSetHandler, cpu)
	if env.Handler != 7 {
		t.Errorf("handler %d", env.Handler)
	}
}

func TestSyscallWriteAndExit(t *testing.T) {
	env, _, cpu := newEnv(t)
	cpu.SetIntReg(ovm.RArg0, 0x20000000)
	cpu.SetIntReg(ovm.RArg1, 5)
	if err := env.Syscall(SysWrite, cpu); err != nil {
		t.Fatal(err)
	}
	if cpu.IntReg(ovm.RRet) != 5 || output(env) != "hello" {
		t.Errorf("write: ret=%d out=%q", cpu.IntReg(ovm.RRet), output(env))
	}
	neg := int32(-3)
	cpu.SetIntReg(ovm.RArg0, uint32(neg))
	env.Syscall(SysExit, cpu)
	if !env.Exited || env.ExitCode != -3 {
		t.Errorf("exit: %v %d", env.Exited, env.ExitCode)
	}
}

func TestSyscallErrors(t *testing.T) {
	env, _, cpu := newEnv(t)
	if err := env.Syscall(99, cpu); err == nil {
		t.Error("bad syscall number accepted")
	}
	cpu.SetIntReg(ovm.RArg0, 0x00000010) // unmapped
	if err := env.Syscall(SysPuts, cpu); err == nil {
		t.Error("puts from unmapped memory accepted")
	}
	cpu.SetIntReg(ovm.RArg0, 0x20000000)
	cpu.SetIntReg(ovm.RArg1, 1<<24)
	if err := env.Syscall(SysWrite, cpu); err == nil {
		t.Error("giant write accepted")
	}
}

func TestSyscallCounts(t *testing.T) {
	env, _, cpu := newEnv(t)
	cpu.SetIntReg(ovm.RArg0, 'x')
	env.Syscall(SysPutc, cpu)
	env.Syscall(SysPutc, cpu)
	if env.SyscallCount[SysPutc] != 2 {
		t.Errorf("count %d", env.SyscallCount[SysPutc])
	}
}
