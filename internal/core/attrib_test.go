package core_test

import (
	"fmt"
	"testing"

	"omniware/internal/cc"
	"omniware/internal/core"
	"omniware/internal/target"
	"omniware/internal/translate"
)

// storeProg performs n unsafe stores (through a computed pointer) and
// returns 0. Varying n varies exactly the unsafe-store count: the
// call/return and loop structure stay fixed, so deltas between two
// scales isolate the per-store cost.
func storeProg(t *testing.T, n int) *core.Host {
	t.Helper()
	src := fmt.Sprintf(`
int buf[256];
int main(void) {
	int i;
	int *p = buf;
	for (i = 0; i < %d; i++) p[i] = i;
	return 0;
}
`, n)
	mod, err := core.BuildC([]core.SourceFile{{Name: "stores.c", Src: src}}, cc.Options{OptLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	h, err := core.NewHost(mod, core.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// The sandbox-overhead attribution counters are the live equivalent of
// the paper's overhead tables, so they must be trustworthy: on every
// target, a module that performs unsafe stores must report nonzero
// dynamic CatSFI instructions under SFI (and zero without), and the
// dynamic sandbox cost must scale as an exact integer multiple of the
// interpreter's dynamic store count — the verifier-independent
// reference for "how many unsafe stores actually executed".
func TestSandboxAttributionMatchesInterpreterStores(t *testing.T) {
	const n1, n2 = 32, 96

	// Interpreter reference: dynamic store counts at both scales.
	h1, h2 := storeProg(t, n1), storeProg(t, n2)
	ref1, err := h1.RunInterp()
	if err != nil {
		t.Fatal(err)
	}
	ref2, err := h2.RunInterp()
	if err != nil {
		t.Fatal(err)
	}
	dStores := ref2.Stores - ref1.Stores
	if dStores < uint64(n2-n1) {
		t.Fatalf("interpreter store delta %d, want >= %d", dStores, n2-n1)
	}

	for _, m := range target.Machines() {
		t.Run(m.Name, func(t *testing.T) {
			run := func(n int, sfi bool) target.Result {
				h := storeProg(t, n)
				res, _, err := h.RunTranslated(m, translate.Paper(sfi))
				if err != nil {
					t.Fatal(err)
				}
				if res.Faulted {
					t.Fatalf("faulted: %s", res.Fault)
				}
				return res
			}

			r1, r2 := run(n1, true), run(n2, true)
			a1 := r1.Attribution()
			if a1.Sandbox == 0 {
				t.Fatal("unsafe stores executed but dynamic sandbox count is zero")
			}
			if a1.SandboxPct() <= 0 {
				t.Fatalf("sandbox pct %v, want > 0", a1.SandboxPct())
			}
			if got := a1.Total(); got != r1.Insts {
				t.Fatalf("attribution total %d != executed insts %d", got, r1.Insts)
			}

			// Consistency with the interpreter: the extra sandbox
			// instructions for the extra stores must be an exact
			// per-store integer multiple of the interpreter's extra
			// dynamic stores.
			dSFI := r2.Counts[target.CatSFI] - r1.Counts[target.CatSFI]
			if dSFI == 0 {
				t.Fatal("more stores executed but sandbox count did not grow")
			}
			if dSFI%dStores != 0 {
				t.Fatalf("sandbox delta %d not a multiple of interpreter store delta %d", dSFI, dStores)
			}
			if per := dSFI / dStores; per < 1 || per > 8 {
				t.Fatalf("implausible per-store sandbox cost %d", per)
			}

			// Without SFI nothing may be attributed to sandboxing.
			if off := run(n1, false); off.Counts[target.CatSFI] != 0 {
				t.Fatalf("SFI off but %d sandbox insts counted", off.Counts[target.CatSFI])
			}
		})
	}
}
