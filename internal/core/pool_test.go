package core

import (
	"fmt"
	"testing"

	"omniware/internal/cc"
	"omniware/internal/target"
	"omniware/internal/translate"
)

func buildMod(t *testing.T, src string) *Host {
	t.Helper()
	mod, err := BuildC([]SourceFile{{Name: "p.c", Src: src}}, cc.Options{OptLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	h, err := AcquireHost(mod, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// A recycled address space must be indistinguishable from a fresh one:
// a module that scribbles over a large BSS region, then a second module
// that sums its own (C-guaranteed zero) BSS. If Release/Acquire failed
// to scrub the pages the writer dirtied, the reader sees the garbage.
func TestPooledHostScrubsBetweenJobs(t *testing.T) {
	writer := `
char buf[100000];
int main(void) {
	int i;
	for (i = 0; i < 100000; i++) buf[i] = 7;
	return buf[99999];
}`
	reader := `
char buf[100000];
int main(void) {
	int i, s = 0;
	for (i = 0; i < 100000; i++) s += buf[i];
	return s == 0 ? 42 : 1;
}`
	m := target.MIPSMachine()

	hw := buildMod(t, writer)
	res, _, err := hw.RunTranslated(m, translate.Paper(true))
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 7 {
		t.Fatalf("writer exit %d, want 7", res.ExitCode)
	}
	hw.Release()

	hr := buildMod(t, reader)
	defer hr.Release()
	res, _, err = hr.RunTranslated(m, translate.Paper(true))
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 42 {
		t.Fatalf("reader saw non-zero BSS after recycle: exit %d, want 42", res.ExitCode)
	}
}

// Repeated acquire/run/release cycles over the same module must agree
// with a fresh host run on every dimension a job reports: exit code,
// captured output, instruction count.
func TestPooledHostMatchesFreshHost(t *testing.T) {
	src := `
int fib(int n) { return n < 2 ? n : fib(n-1) + fib(n-2); }
int main(void) {
	_print_int(fib(15));
	return fib(10) & 0xff;
}`
	mod, err := BuildC([]SourceFile{{Name: "p.c", Src: src}}, cc.Options{OptLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	m := target.SPARCMachine()
	fresh, err := NewHost(mod, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	want, prog, err := fresh.RunTranslated(m, translate.Paper(true))
	if err != nil {
		t.Fatal(err)
	}
	wantOut := fresh.Output()

	for i := 0; i < 3; i++ {
		h, err := AcquireHost(mod, RunConfig{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := h.RunProgram(m, prog)
		if err != nil {
			t.Fatal(err)
		}
		if got.ExitCode != want.ExitCode || got.Insts != want.Insts {
			t.Fatalf("cycle %d: pooled run (exit %d, %d insts) != fresh (exit %d, %d insts)",
				i, got.ExitCode, got.Insts, want.ExitCode, want.Insts)
		}
		if h.Output() != wantOut {
			t.Fatalf("cycle %d: output %q, want %q", i, h.Output(), wantOut)
		}
		h.Release()
	}
}

// The warm-cache serving path — acquire a pooled host, run a cached
// translation, release — must not allocate at all. This is the
// regression guard behind BENCH_*.json's exec_pooled_host stat; any
// new allocation on this path shows up here before it shows up in a
// benchmark run.
func TestPooledExecAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	mod, err := BuildC([]SourceFile{{Name: "p.c", Src: "int main(void){ return 0; }"}}, cc.Options{OptLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	mach := target.MIPSMachine()
	h0, err := NewHost(mod, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := h0.Translate(mach, translate.Paper(true))
	if err != nil {
		t.Fatal(err)
	}
	var runErr error
	avg := testing.AllocsPerRun(100, func() {
		h, err := AcquireHost(mod, RunConfig{})
		if err != nil {
			runErr = err
			return
		}
		res, err := h.RunProgram(mach, prog)
		h.Release()
		if err != nil {
			runErr = err
		} else if res.ExitCode != 0 {
			runErr = fmt.Errorf("exit %d", res.ExitCode)
		}
	})
	if runErr != nil {
		t.Fatal(runErr)
	}
	if avg != 0 {
		t.Fatalf("pooled execute path allocates %.2f allocs/op, want 0", avg)
	}
}

// HostData jobs cannot share pooled address spaces (the extra segment
// geometry is caller-chosen); AcquireHost must fall back to an
// unpooled host for them, and Release must be a no-op.
func TestAcquireHostHostDataFallback(t *testing.T) {
	mod, err := BuildC([]SourceFile{{Name: "p.c", Src: "int main(void){ return 0; }"}}, cc.Options{OptLevel: 0})
	if err != nil {
		t.Fatal(err)
	}
	h, err := AcquireHost(mod, RunConfig{HostData: []byte{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if h.pool != nil {
		t.Fatal("HostData host came from the pool")
	}
	if h.HostSeg == nil {
		t.Fatal("host segment not mapped")
	}
	h.Release() // must not panic or pool the host
	if _, _, err := h.RunTranslated(target.X86Machine(), translate.Paper(true)); err != nil {
		t.Fatalf("host unusable after no-op Release: %v", err)
	}
}
