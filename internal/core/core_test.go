package core

import (
	"strings"
	"sync/atomic"
	"testing"

	"omniware/internal/cc"
	"omniware/internal/native"
	"omniware/internal/target"
	"omniware/internal/translate"
)

const prog = `
int square(int x) { return x * x; }
int main(void) {
	int i, acc = 0;
	for (i = 0; i < 10; i++) acc += square(i);
	_print_int(acc);
	return acc & 0xff;
}`

func build(t *testing.T) *Host {
	t.Helper()
	mod, err := BuildC([]SourceFile{{Name: "p.c", Src: prog}}, cc.Options{OptLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHost(mod, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestAllPathsAgree(t *testing.T) {
	h := build(t)
	ires, err := h.RunInterp()
	if err != nil {
		t.Fatal(err)
	}
	if ires.ExitCode != 285&0xff || h.Output() != "285" {
		t.Fatalf("interp: %d %q", ires.ExitCode, h.Output())
	}
	funcs, err := BuildIRFuncs([]SourceFile{{Name: "p.c", Src: prog}}, cc.Options{OptLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range target.Machines() {
		ht := build(t)
		tres, _, err := ht.RunTranslated(m, translate.Paper(true))
		if err != nil {
			t.Fatal(err)
		}
		if tres.ExitCode != ires.ExitCode || ht.Output() != "285" {
			t.Errorf("%s translated: %d %q", m.Name, tres.ExitCode, ht.Output())
		}
		hn := build(t)
		nres, err := hn.RunNative(m, native.ProfCC, funcs)
		if err != nil {
			t.Fatal(err)
		}
		if nres.ExitCode != ires.ExitCode || hn.Output() != "285" {
			t.Errorf("%s native: %d %q", m.Name, nres.ExitCode, hn.Output())
		}
	}
}

func TestBuildAsm(t *testing.T) {
	mod, err := BuildAsm([]SourceFile{{Name: "m.s", Src: `
.text
.globl main
main:
	ldi r1, 5
	ret
`}}, true)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHost(mod, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.RunInterp()
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 5 {
		t.Errorf("exit %d", res.ExitCode)
	}
}

func TestHostSegmentIsReadOnly(t *testing.T) {
	mod, err := BuildC([]SourceFile{{Name: "p.c", Src: `
int main(void) {
	int *p = (int *)0x40000000;
	return *p; /* reads are allowed in this policy */
}`}}, cc.Options{OptLevel: 1})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 4096)
	data[0] = 77
	h, err := NewHost(mod, RunConfig{HostData: data})
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.RunInterp()
	if err != nil {
		t.Fatal(err)
	}
	if res.Faulted || res.ExitCode != 77 {
		t.Errorf("read of host segment: %+v", res)
	}
}

func TestRunConfigBudget(t *testing.T) {
	mod, err := BuildC([]SourceFile{{Name: "p.c", Src: "int main(void){ for(;;); return 0; }"}}, cc.Options{OptLevel: 0})
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHost(mod, RunConfig{MaxSteps: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.RunInterp(); err == nil || !strings.Contains(err.Error(), "budget") {
		t.Errorf("expected budget exhaustion, got %v", err)
	}
}

func TestSegInfo(t *testing.T) {
	h := build(t)
	si := h.SegInfo()
	if si.DataBase != h.Mod.DataBase {
		t.Errorf("base %#x", si.DataBase)
	}
	if (si.DataMask+1)&si.DataMask != 0 {
		t.Errorf("mask %#x not 2^k-1", si.DataMask)
	}
	if si.RegSave <= si.DataBase || si.RegSave >= si.DataBase+si.DataMask {
		t.Errorf("regsave %#x outside segment", si.RegSave)
	}
}

func TestSegInfoForMatchesHost(t *testing.T) {
	for _, cfg := range []RunConfig{{}, {Heap: 1 << 16, Stack: 1 << 16}} {
		mod, err := BuildC([]SourceFile{{Name: "p.c", Src: prog}}, cc.Options{OptLevel: 2})
		if err != nil {
			t.Fatal(err)
		}
		want := SegInfoFor(mod, cfg)
		h, err := NewHost(mod, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := h.SegInfo(); got != want {
			t.Errorf("cfg %+v: SegInfoFor %+v != host SegInfo %+v", cfg, want, got)
		}
	}
}

// A cached program translated by one host must run unchanged in a
// fresh host of the same module and budgets.
func TestRunProgramFromAnotherHost(t *testing.T) {
	h1 := build(t)
	m := target.MIPSMachine()
	prog, err := h1.Translate(m, translate.Paper(true))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := NewHost(h1.Mod, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := h2.RunProgram(m, prog)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := h1.RunInterp()
	if err != nil {
		t.Fatal(err)
	}
	if res.Faulted || res.ExitCode != ref.ExitCode || h2.Output() != h1.Output() {
		t.Errorf("cached program diverged: %+v vs interp %+v", res, ref)
	}
	// Wrong machine for the program is refused, not misexecuted.
	if _, err := h2.RunProgram(target.SPARCMachine(), prog); err == nil {
		t.Error("mips program accepted by sparc simulator")
	}
}

func TestInterruptAbortsRun(t *testing.T) {
	mod, err := BuildC([]SourceFile{{Name: "p.c", Src: "int main(void){ for(;;); return 0; }"}}, cc.Options{OptLevel: 0})
	if err != nil {
		t.Fatal(err)
	}
	var stop atomic.Bool
	stop.Store(true)
	h, err := NewHost(mod, RunConfig{Interrupt: &stop})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := h.RunTranslated(target.MIPSMachine(), translate.Paper(true)); err == nil || !strings.Contains(err.Error(), "interrupted") {
		t.Errorf("expected interruption, got %v", err)
	}
}

func TestDuplicateFunctionAcrossUnits(t *testing.T) {
	_, err := BuildIRFuncs([]SourceFile{
		{Name: "a.c", Src: "int f(void){return 1;} int main(void){return f();}"},
		{Name: "b.c", Src: "int f(void){return 2;}"},
	}, cc.Options{})
	if err == nil {
		t.Error("duplicate function across units accepted")
	}
}
