//go:build race

package core

// raceEnabled skips the allocation-count guards: the race detector
// changes the allocation profile, and sync.Pool intentionally drops
// items under it, so allocs-per-run is not meaningful there.
const raceEnabled = true
