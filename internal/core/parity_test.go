package core_test

import (
	"testing"

	"omniware/internal/cc"
	"omniware/internal/core"
	"omniware/internal/coretest"
	"omniware/internal/target"
	"omniware/internal/translate"
)

// Differential parity: every example program and every benchmark
// workload must produce the identical exit code and output on the
// OmniVM interpreter and on all four translated targets, across the
// translator's option space — from the bare unoptimized translation to
// the full paper configuration with sandbox hoisting. This is the
// system-level analogue of the per-construct cross-checks in
// internal/translate: the interpreter is the semantic reference, and a
// translator or executor bug on any machine shows up as a divergence.
//
// The cases themselves live in internal/coretest, shared with the
// serving-layer stress tests in internal/serve.

// optionMatrix is the configuration space each program runs under.
var optionMatrix = []struct {
	name string
	opt  translate.Options
}{
	{"noopt", translate.Options{}},
	{"paper", translate.Paper(false)},
	{"paper+sfi", translate.Paper(true)},
	{"sfi+hoist", translate.Options{SFI: true, Schedule: true, GlobalPointer: true, Peephole: true, SFIHoist: true}},
}

func checkParity(t *testing.T, cases []coretest.Case) {
	for i := range cases {
		c := &cases[i]
		t.Run(c.Name, func(t *testing.T) {
			mod, err := core.BuildC(c.Files, c.Opts)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := c.RunInterp(mod)
			if err != nil {
				t.Fatal(err)
			}
			if ref.Faulted {
				t.Fatalf("interpreter reference faulted: %s", ref)
			}
			for _, m := range target.Machines() {
				for _, oc := range optionMatrix {
					m, oc := m, oc
					t.Run(m.Name+"/"+oc.name, func(t *testing.T) {
						got, err := c.Run(mod, func(h *core.Host) (int32, bool, error) {
							res, _, err := h.RunTranslated(m, oc.opt)
							return res.ExitCode, res.Faulted, err
						})
						if err != nil {
							t.Fatal(err)
						}
						if got != ref {
							t.Errorf("diverged from interpreter:\n  interp:     %s\n  translated: %s", ref, got)
						}
					})
				}
			}
		})
	}
}

func TestExampleParity(t *testing.T) {
	checkParity(t, coretest.ExampleCases())
}

func TestBenchWorkloadParity(t *testing.T) {
	if testing.Short() {
		t.Skip("workload parity sweep skipped in -short mode")
	}
	cases, err := coretest.BenchCases(1)
	if err != nil {
		t.Fatal(err)
	}
	checkParity(t, cases)
}

// The malicious mailfilter module writes through the host segment's
// address. Its outcome legitimately differs by engine — the policies
// differ, not the semantics — so it gets its own oracle per engine:
// without SFI every engine faults on the read-only host segment; with
// SFI the stores are forced into the module's own sandbox, the module
// runs to completion, and the host data survives bit-for-bit.
func TestEvilFilterContainmentParity(t *testing.T) {
	mod, err := core.BuildC([]core.SourceFile{{Name: "evil.c", Src: `
int main(void) {
	int i;
	int *host = (int *)0x40000000;
	for (i = 0; i < 64; i++) host[i] = 0xdeadbeef;
	return 0;
}
`}}, cc.Options{OptLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	store := []byte("server message store v1")
	newHost := func() *core.Host {
		data := make([]byte, 4096)
		copy(data, store)
		h, err := core.NewHost(mod, core.RunConfig{HostData: data})
		if err != nil {
			t.Fatal(err)
		}
		return h
	}

	hi := newHost()
	ires, err := hi.RunInterp()
	if err != nil {
		t.Fatal(err)
	}
	if !ires.Faulted {
		t.Fatalf("interpreter allowed a host-segment write: %+v", ires)
	}

	for _, m := range target.Machines() {
		for _, oc := range optionMatrix {
			h := newHost()
			res, _, err := h.RunTranslated(m, oc.opt)
			if err != nil {
				t.Fatal(err)
			}
			if oc.opt.SFI {
				if res.Faulted || res.ExitCode != 0 {
					t.Errorf("%s/%s: SFI run not contained: %+v", m.Name, oc.name, res)
				}
			} else if !res.Faulted {
				t.Errorf("%s/%s: unsandboxed host-segment write did not fault", m.Name, oc.name)
			}
			if got := string(h.HostSeg.Bytes()[:len(store)]); got != string(store) {
				t.Errorf("%s/%s: host segment corrupted: %q", m.Name, oc.name, got)
			}
		}
	}
}
