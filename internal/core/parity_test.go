package core_test

import (
	"fmt"
	"testing"

	"omniware/internal/bench"
	"omniware/internal/cc"
	"omniware/internal/core"
	"omniware/internal/ovm"
	"omniware/internal/target"
	"omniware/internal/translate"
)

// Differential parity: every example program and every benchmark
// workload must produce the identical exit code and output on the
// OmniVM interpreter and on all four translated targets, across the
// translator's option space — from the bare unoptimized translation to
// the full paper configuration with sandbox hoisting. This is the
// system-level analogue of the per-construct cross-checks in
// internal/translate: the interpreter is the semantic reference, and a
// translator or executor bug on any machine shows up as a divergence.

// optionMatrix is the configuration space each program runs under.
var optionMatrix = []struct {
	name string
	opt  translate.Options
}{
	{"noopt", translate.Options{}},
	{"paper", translate.Paper(false)},
	{"paper+sfi", translate.Paper(true)},
	{"sfi+hoist", translate.Options{SFI: true, Schedule: true, GlobalPointer: true, Peephole: true, SFIHoist: true}},
}

// parityCase is one program plus its host-side setup. setup (optional)
// deposits input into the loaded address space before execution, as
// the example hosts do; post (optional) digests memory the program
// wrote, so the comparison covers side effects beyond exit/output.
type parityCase struct {
	name  string
	files []core.SourceFile
	opts  cc.Options
	setup func(t *testing.T, h *core.Host, mod *ovm.Module)
	post  func(t *testing.T, h *core.Host, mod *ovm.Module) string
}

func symAddr(t *testing.T, mod *ovm.Module, name string) uint32 {
	t.Helper()
	for _, s := range mod.Symbols {
		if s.Name == name {
			return s.Value
		}
	}
	t.Fatalf("symbol %q not found", name)
	return 0
}

// exampleCases mirrors the programs shipped in examples/: quickstart's
// fib, docscript's chart renderer, mailfilter's message scorer, and
// faultinject's handler probe (run unprotected here — its protected
// variant, which requires SFI off, is covered by
// internal/interp/exception_parity_test.go).
func exampleCases() []parityCase {
	o2 := cc.Options{OptLevel: 2}
	return []parityCase{
		{
			name: "quickstart-fib",
			opts: o2,
			files: []core.SourceFile{{Name: "fib.c", Src: `
int fib(int n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }

int main(void) {
	int i;
	_puts("fib: ");
	for (i = 1; i <= 10; i++) {
		_print_int(fib(i));
		_putc(' ');
	}
	_putc('\n');
	return fib(10);
}
`}},
		},
		{
			name: "docscript-chart",
			opts: o2,
			files: []core.SourceFile{{Name: "chart.c", Src: `
int values[16];
int nvalues;
char canvas[16 * 34];

void render(void) {
	int row, col, width;
	for (row = 0; row < nvalues; row++) {
		char *line = canvas + row * 34;
		width = values[row];
		if (width > 30) width = 30;
		if (width < 0) width = 0;
		line[0] = '|';
		for (col = 0; col < width; col++) line[1 + col] = '#';
		line[1 + width] = 0;
	}
}

int main(void) {
	render();
	return nvalues;
}
`}},
			setup: func(t *testing.T, h *core.Host, mod *ovm.Module) {
				data := []uint32{3, 7, 12, 19, 27, 30, 22, 14, 6, 2}
				val := symAddr(t, mod, "values")
				for i, v := range data {
					if f := h.Mem.StoreU32(val+uint32(i*4), v); f != nil {
						t.Fatal(f)
					}
				}
				if f := h.Mem.StoreU32(symAddr(t, mod, "nvalues"), uint32(len(data))); f != nil {
					t.Fatal(f)
				}
			},
			post: func(t *testing.T, h *core.Host, mod *ovm.Module) string {
				canvas := symAddr(t, mod, "canvas")
				out := ""
				for row := 0; row < 10; row++ {
					line, f := h.Mem.ReadCString(canvas+uint32(row*34), 34)
					if f != nil {
						t.Fatal(f)
					}
					out += line + "\n"
				}
				return out
			},
		},
		{
			name: "mailfilter-score",
			opts: o2,
			files: []core.SourceFile{{Name: "filter.c", Src: `
int score(char *msg, int len) {
	int i, bangs = 0, urgent = 0;
	for (i = 0; i < len; i++) {
		if (msg[i] == '!') bangs++;
		if (msg[i] == 'U' && i + 5 < len &&
		    msg[i+1] == 'R' && msg[i+2] == 'G' &&
		    msg[i+3] == 'E' && msg[i+4] == 'N' && msg[i+5] == 'T')
			urgent = 1;
	}
	return urgent * 10 + bangs;
}

char buf[512];
int len;

int main(void) {
	return score(buf, len);
}
`}},
			setup: func(t *testing.T, h *core.Host, mod *ovm.Module) {
				msg := "URGENT: wire funds now!!!"
				if f := h.Mem.WriteBytes(symAddr(t, mod, "buf"), []byte(msg)); f != nil {
					t.Fatal(f)
				}
				if f := h.Mem.StoreU32(symAddr(t, mod, "len"), uint32(len(msg))); f != nil {
					t.Fatal(f)
				}
			},
		},
		{
			name: "faultinject-probe",
			opts: cc.Options{OptLevel: 1},
			files: []core.SourceFile{{Name: "probe.c", Src: `
int faults;
int done;

void on_fault(void) {
	faults = faults + 1;
	done = 1;
	_puts("module: caught access violation, recovering\n");
	_exit(40 + faults);
}

char page[8192];

int main(void) {
	_set_handler((int)on_fault);
	_puts("module: probing the page...\n");
	page[4096] = 1;
	return 0;
}
`}},
		},
	}
}

// benchCases builds the four paper workloads at scale 1.
func benchCases(t *testing.T) []parityCase {
	var cases []parityCase
	for _, name := range bench.WorkloadNames {
		files, err := bench.Sources(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, parityCase{
			name:  "bench-" + name,
			files: files,
			opts:  cc.Options{OptLevel: 2},
		})
	}
	return cases
}

// outcome is everything a run produces that parity compares.
type outcome struct {
	exit    int32
	faulted bool
	out     string
	post    string
}

func (o outcome) String() string {
	return fmt.Sprintf("exit=%d faulted=%v out=%q post=%q", o.exit, o.faulted, o.out, o.post)
}

func runCase(t *testing.T, c *parityCase, mod *ovm.Module, run func(h *core.Host) (int32, bool, error)) outcome {
	t.Helper()
	h, err := core.NewHost(mod, core.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if c.setup != nil {
		c.setup(t, h, mod)
	}
	exit, faulted, err := run(h)
	if err != nil {
		t.Fatal(err)
	}
	o := outcome{exit: exit, faulted: faulted, out: h.Output()}
	if c.post != nil {
		o.post = c.post(t, h, mod)
	}
	return o
}

func checkParity(t *testing.T, cases []parityCase) {
	for i := range cases {
		c := &cases[i]
		t.Run(c.name, func(t *testing.T) {
			mod, err := core.BuildC(c.files, c.opts)
			if err != nil {
				t.Fatal(err)
			}
			ref := runCase(t, c, mod, func(h *core.Host) (int32, bool, error) {
				res, err := h.RunInterp()
				return res.ExitCode, res.Faulted, err
			})
			if ref.faulted {
				t.Fatalf("interpreter reference faulted: %s", ref)
			}
			for _, m := range target.Machines() {
				for _, oc := range optionMatrix {
					m, oc := m, oc
					t.Run(m.Name+"/"+oc.name, func(t *testing.T) {
						got := runCase(t, c, mod, func(h *core.Host) (int32, bool, error) {
							res, _, err := h.RunTranslated(m, oc.opt)
							return res.ExitCode, res.Faulted, err
						})
						if got != ref {
							t.Errorf("diverged from interpreter:\n  interp:     %s\n  translated: %s", ref, got)
						}
					})
				}
			}
		})
	}
}

func TestExampleParity(t *testing.T) {
	checkParity(t, exampleCases())
}

func TestBenchWorkloadParity(t *testing.T) {
	if testing.Short() {
		t.Skip("workload parity sweep skipped in -short mode")
	}
	checkParity(t, benchCases(t))
}

// The malicious mailfilter module writes through the host segment's
// address. Its outcome legitimately differs by engine — the policies
// differ, not the semantics — so it gets its own oracle per engine:
// without SFI every engine faults on the read-only host segment; with
// SFI the stores are forced into the module's own sandbox, the module
// runs to completion, and the host data survives bit-for-bit.
func TestEvilFilterContainmentParity(t *testing.T) {
	mod, err := core.BuildC([]core.SourceFile{{Name: "evil.c", Src: `
int main(void) {
	int i;
	int *host = (int *)0x40000000;
	for (i = 0; i < 64; i++) host[i] = 0xdeadbeef;
	return 0;
}
`}}, cc.Options{OptLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	store := []byte("server message store v1")
	newHost := func() *core.Host {
		data := make([]byte, 4096)
		copy(data, store)
		h, err := core.NewHost(mod, core.RunConfig{HostData: data})
		if err != nil {
			t.Fatal(err)
		}
		return h
	}

	hi := newHost()
	ires, err := hi.RunInterp()
	if err != nil {
		t.Fatal(err)
	}
	if !ires.Faulted {
		t.Fatalf("interpreter allowed a host-segment write: %+v", ires)
	}

	for _, m := range target.Machines() {
		for _, oc := range optionMatrix {
			h := newHost()
			res, _, err := h.RunTranslated(m, oc.opt)
			if err != nil {
				t.Fatal(err)
			}
			if oc.opt.SFI {
				if res.Faulted || res.ExitCode != 0 {
					t.Errorf("%s/%s: SFI run not contained: %+v", m.Name, oc.name, res)
				}
			} else if !res.Faulted {
				t.Errorf("%s/%s: unsandboxed host-segment write did not fault", m.Name, oc.name)
			}
			if got := string(h.HostSeg.Bytes()[:len(store)]); got != string(store) {
				t.Errorf("%s/%s: host segment corrupted: %q", m.Name, oc.name, got)
			}
		}
	}
}
