// Package core is the Omniware system itself: the host-side runtime
// that compiles OmniC to OmniVM modules, loads modules into a segmented
// address space, and executes them either by abstract-machine
// interpretation or by load-time translation (with software fault
// isolation) to one of the four simulated targets. The public omniware
// package at the repository root is a thin facade over this package.
package core

import (
	"fmt"
	"io"
	"math/bits"
	"strings"
	"sync"
	"sync/atomic"

	"omniware/internal/asm"
	"omniware/internal/cc"
	"omniware/internal/cc/ir"
	"omniware/internal/hostapi"
	"omniware/internal/interp"
	"omniware/internal/link"
	"omniware/internal/native"
	"omniware/internal/ovm"
	"omniware/internal/seg"
	"omniware/internal/target"
	"omniware/internal/translate"
)

// ErrBudget and ErrInterrupted re-export the hostapi sentinels for the
// two host-initiated run terminations: instruction-budget exhaustion
// and the external interrupt (the serving layer's deadline watchdog).
// Both executors wrap them; classify with errors.Is.
var (
	ErrBudget      = hostapi.ErrBudget
	ErrInterrupted = hostapi.ErrInterrupted
)

// SourceFile is one OmniC translation unit.
type SourceFile struct {
	Name string
	Src  string
}

// BuildC compiles OmniC sources, assembles them, links in the startup
// stub, and returns the executable module — the full producer-side
// pipeline of the paper's Figure 2.
func BuildC(files []SourceFile, opts cc.Options) (*ovm.Module, error) {
	objs := []*ovm.Object{}
	crt, err := asm.Assemble("crt0.s", cc.Crt0)
	if err != nil {
		return nil, fmt.Errorf("core: crt0: %w", err)
	}
	objs = append(objs, crt)
	for _, f := range files {
		res, err := cc.Compile(f.Name, f.Src, opts)
		if err != nil {
			return nil, err
		}
		obj, err := asm.Assemble(f.Name+".s", res.Asm)
		if err != nil {
			return nil, fmt.Errorf("core: assembling output of %s: %w", f.Name, err)
		}
		objs = append(objs, obj)
	}
	return link.Link(objs, link.Options{})
}

// BuildAsm assembles and links OmniVM assembly sources (first file may
// define _start; otherwise the crt0 stub is prepended).
func BuildAsm(files []SourceFile, withCrt0 bool) (*ovm.Module, error) {
	var objs []*ovm.Object
	if withCrt0 {
		crt, err := asm.Assemble("crt0.s", cc.Crt0)
		if err != nil {
			return nil, err
		}
		objs = append(objs, crt)
	}
	for _, f := range files {
		o, err := asm.Assemble(f.Name, f.Src)
		if err != nil {
			return nil, err
		}
		objs = append(objs, o)
	}
	return link.Link(objs, link.Options{})
}

// RunConfig controls module execution.
type RunConfig struct {
	Heap     uint32 // heap size (0 = default)
	Stack    uint32
	MaxSteps uint64 // instruction budget (0 = default 2e9)
	// Out receives module output. nil does NOT discard: it captures
	// into an internal buffer readable with Host.Output, which is what
	// tests and the parity harness rely on. Callers that truly want to
	// drop output pass io.Discard.
	Out io.Writer

	// Interrupt, when non-nil, is polled by the translated-code
	// simulators; once it reports true the run aborts with an error.
	// This is the serving layer's per-job timeout hook (the simulators
	// otherwise run until exit or budget exhaustion).
	Interrupt *atomic.Bool

	// HostData, when non-nil, maps an additional "host" segment at
	// HostBase that the module has no write permission for — used by
	// the safety demos and fault-injection tests.
	HostData []byte
	HostBase uint32

	// StoreTrace, when non-nil, is installed on the native simulator
	// (target.Sim.StoreTrace) so every store the program issues is
	// observed. The SFI differential harness uses it as its soundness
	// oracle. Interpreter runs ignore it.
	StoreTrace func(addr, size uint32, faulted bool)
}

func (c *RunConfig) maxSteps() uint64 {
	if c.MaxSteps == 0 {
		return 2_000_000_000
	}
	return c.MaxSteps
}

// Host is a loaded execution environment for one module.
type Host struct {
	Mod     *ovm.Module
	Mem     seg.Memory
	Lay     *hostapi.Layout
	Env     *hostapi.Env
	HostSeg *seg.Segment
	out     *strings.Builder
	cfg     RunConfig

	// Pooled-host state (AcquireHost). pool is nil for hosts built with
	// NewHost; such hosts ignore Release. A pooled host permanently owns
	// dseg, a dirty-tracked data segment scrubbed on reuse, and embeds
	// its layout, environment, and simulator by value so a warm-cache
	// job allocates nothing.
	pool    *sync.Pool
	dseg    *seg.Segment
	layv    hostapi.Layout
	envv    hostapi.Env
	sim     target.Sim
	capture bool
}

// hostPools holds recycled hosts bucketed by log2 of the data-segment
// size: layout geometry is deterministic in (module, heap, stack) and
// segment sizes are powers of two, so a host whose segment matches the
// planned size fits the module exactly.
var hostPools [33]sync.Pool

// AcquireHost returns a host loaded for mod, reusing a pooled address
// space when one of the right size class is available. The fast path
// allocates nothing: the pooled segment is scrubbed page-by-page using
// its dirty bitmap rather than reallocated (16 MB of zeroing and GC
// pressure per job otherwise — the dominant per-job fixed cost the
// load benchmarks expose). Callers must Release the host when done;
// hosts needing a HostData segment fall back to NewHost semantics and
// Release is a no-op for them.
func AcquireHost(mod *ovm.Module, cfg RunConfig) (*Host, error) {
	if cfg.HostData != nil {
		return NewHost(mod, cfg)
	}
	p := hostapi.PlanLayout(mod, cfg.Heap, cfg.Stack)
	if p.SegSize == 0 || p.SegSize&(p.SegSize-1) != 0 {
		return nil, fmt.Errorf("core: planned segment size %#x is not a power of two; refusing to derive an SFI mask", p.SegSize)
	}
	pool := &hostPools[bits.TrailingZeros32(p.SegSize)]
	h, _ := pool.Get().(*Host)
	if h == nil {
		h = &Host{out: &strings.Builder{}}
		s, err := seg.NewPooledSegment("module-data", mod.DataBase, p.SegSize, seg.Read|seg.Write)
		if err != nil {
			return nil, err
		}
		h.dseg = s
	}
	h.pool = pool
	h.Mod = mod
	h.cfg = cfg
	h.Mem.Reset()
	lay, err := hostapi.LoadInto(&h.Mem, h.dseg, mod, cfg.Heap, cfg.Stack)
	if err != nil {
		h.pool = nil
		return nil, err
	}
	h.layv = lay
	h.Lay = &h.layv
	out := cfg.Out
	h.capture = out == nil
	if h.capture {
		h.out.Reset()
		out = h.out
	}
	h.envv.Reset(&h.Mem, h.Lay, out)
	h.Env = &h.envv
	return h, nil
}

// Release returns a pooled host's address space for reuse. It clears
// every reference to the job's module and config so the pool does not
// pin them; the segment itself stays with the host and is scrubbed on
// the next Acquire. Safe to call on NewHost-built hosts (no-op) and
// on nil.
func (h *Host) Release() {
	if h == nil || h.pool == nil {
		return
	}
	pool := h.pool
	h.pool = nil
	h.Mod = nil
	h.cfg = RunConfig{}
	h.Lay = nil
	h.Env = nil
	h.layv = hostapi.Layout{}
	h.envv = hostapi.Env{}
	h.sim = target.Sim{}
	h.Mem.Reset()
	h.out.Reset()
	h.capture = false
	pool.Put(h)
}

// NewHost loads the module's data segment (and optional host segment)
// into a fresh address space.
func NewHost(mod *ovm.Module, cfg RunConfig) (*Host, error) {
	h := &Host{Mod: mod, cfg: cfg}
	lay, err := hostapi.Load(&h.Mem, mod, cfg.Heap, cfg.Stack)
	if err != nil {
		return nil, err
	}
	// The SFI sandbox masks addresses into the data segment with
	// DataMask = size-1, which is only a mask if the size is a power of
	// two. The loader rounds sizes up to guarantee that, but a corrupt
	// mask would silently break every SFI proof, so check here rather
	// than trust the invariant.
	if sz := lay.Seg.Size(); sz == 0 || sz&(sz-1) != 0 {
		return nil, fmt.Errorf("core: data segment size %#x is not a power of two; refusing to derive an SFI mask", sz)
	}
	h.Lay = lay
	out := cfg.Out
	if out == nil {
		h.out = &strings.Builder{}
		out = h.out
		h.capture = true
	}
	h.Env = hostapi.NewEnv(&h.Mem, lay, out)
	if cfg.HostData != nil {
		base := cfg.HostBase
		if base == 0 {
			base = 0x40000000
		}
		s, err := h.Mem.Map("host", base, uint32(len(cfg.HostData)), seg.Read)
		if err != nil {
			return nil, err
		}
		copy(s.Bytes(), cfg.HostData)
		h.HostSeg = s
	}
	return h, nil
}

// Output returns captured module output (when cfg.Out was nil).
func (h *Host) Output() string {
	if h.out == nil || !h.capture {
		return ""
	}
	return h.out.String()
}

// SegInfo derives the translator's segment description.
func (h *Host) SegInfo() translate.SegInfo {
	return translate.SegInfo{
		DataBase: h.Lay.Seg.Base,
		DataMask: h.Lay.Seg.Size() - 1,
		GPValue:  h.Mod.DataBase + 0x8000,
		RegSave:  h.Lay.RegSave,
	}
}

// SegInfoFor computes the segment description NewHost(mod, cfg) will
// produce, without building a host. Hosts of the same module and the
// same heap/stack budgets share it, so a program translated against it
// is valid in every such host — the property the translation cache is
// keyed on.
func SegInfoFor(mod *ovm.Module, cfg RunConfig) translate.SegInfo {
	p := hostapi.PlanLayout(mod, cfg.Heap, cfg.Stack)
	return translate.SegInfo{
		DataBase: mod.DataBase,
		DataMask: p.SegSize - 1,
		GPValue:  mod.DataBase + 0x8000,
		RegSave:  p.RegSave,
	}
}

// RunInterp executes the module on the OmniVM interpreter.
func (h *Host) RunInterp() (interp.Result, error) {
	mc := interp.New(h.Mod, &h.Mem, h.Env)
	mc.MaxSteps = h.cfg.maxSteps()
	return mc.Run()
}

// Translate runs the load-time translator for mach.
func (h *Host) Translate(mach *target.Machine, opt translate.Options) (*target.Program, error) {
	return translate.Translate(h.Mod, mach, h.SegInfo(), opt)
}

// RunProgram executes a translated (or natively compiled) program.
// The program need not have been produced by this host: any program
// translated for the same module, machine and SegInfo runs unchanged —
// this is the run-from-cached-program path the serving layer uses to
// pay translation cost once across many sandboxed instances. Programs
// are read-only during execution, so one may run in any number of
// hosts concurrently.
func (h *Host) RunProgram(mach *target.Machine, prog *target.Program) (target.Result, error) {
	if prog.Arch != mach.Arch {
		return target.Result{}, fmt.Errorf("core: program compiled for %s cannot run on %s", prog.Arch, mach.Arch)
	}
	s := &h.sim
	if h.pool == nil {
		// Unpooled hosts may share programs across goroutines; give each
		// run its own simulator as before.
		s = target.New(mach, prog, &h.Mem, h.Env)
	} else {
		s.Reset(mach, prog, &h.Mem, h.Env)
	}
	s.MaxInsts = h.cfg.maxSteps()
	s.Interrupt = h.cfg.Interrupt
	s.StoreTrace = h.cfg.StoreTrace
	return s.Run()
}

// RunTranslated is the one-call path: translate then execute.
func (h *Host) RunTranslated(mach *target.Machine, opt translate.Options) (target.Result, *target.Program, error) {
	prog, err := h.Translate(mach, opt)
	if err != nil {
		return target.Result{}, nil, err
	}
	res, err := h.RunProgram(mach, prog)
	return res, prog, err
}

// BuildIRFuncs compiles OmniC sources to optimized IR for the native
// back ends (the cc/gcc baselines), mirroring the front half of BuildC.
func BuildIRFuncs(files []SourceFile, opts cc.Options) ([]*ir.Func, error) {
	var funcs []*ir.Func
	names := map[string]bool{}
	for _, f := range files {
		fs, _, err := cc.BuildIR(f.Name, f.Src, opts)
		if err != nil {
			return nil, err
		}
		for _, fn := range fs {
			if names[fn.Name] {
				return nil, fmt.Errorf("core: function %q defined in multiple units", fn.Name)
			}
			names[fn.Name] = true
		}
		funcs = append(funcs, fs...)
	}
	return funcs, nil
}

// CompileNative produces a native program (the vendor-compiler
// baseline) against this host's loaded module, binds its FP constant
// pool into the heap, and patches code pointers in the data image from
// OmniVM indices to native indices.
func (h *Host) CompileNative(mach *target.Machine, prof native.Profile, funcs []*ir.Func) (*target.Program, error) {
	res, err := native.Compile(funcs, h.Mod, mach, prof, h.Lay.RegSave)
	if err != nil {
		return nil, err
	}
	// FP constant pool: carve space from the heap.
	poolBase := (h.Lay.Brk + 7) &^ 7
	bytes := res.Bind(poolBase)
	if len(bytes) > 0 {
		newBrk := poolBase + uint32(len(bytes))
		if newBrk > h.Lay.HeapLimit {
			return nil, fmt.Errorf("core: FP constant pool exceeds heap")
		}
		h.Lay.Brk = newBrk
		if f := h.Mem.WriteBytes(poolBase, bytes); f != nil {
			return nil, f
		}
	}
	// Patch code pointers in the data image.
	if len(h.Mod.CodePtrs) > 0 {
		omniToName := map[uint32]string{}
		for _, s := range h.Mod.Symbols {
			if s.Section == ovm.SecText {
				omniToName[s.Value] = s.Name
			}
		}
		for _, off := range h.Mod.CodePtrs {
			addr := h.Mod.DataBase + off
			w, f := h.Mem.LoadU32(addr)
			if f != nil {
				return nil, f
			}
			name, ok := omniToName[w]
			if !ok {
				return nil, fmt.Errorf("core: code pointer at %#x references unknown index %d", addr, w)
			}
			entry, ok := res.FuncEntry[name]
			if !ok {
				return nil, fmt.Errorf("core: code pointer to %q has no native entry", name)
			}
			if f := h.Mem.StoreU32(addr, uint32(entry)); f != nil {
				return nil, f
			}
		}
	}
	return res.Prog, nil
}

// RunNative compiles with the given baseline profile and executes.
func (h *Host) RunNative(mach *target.Machine, prof native.Profile, funcs []*ir.Func) (target.Result, error) {
	prog, err := h.CompileNative(mach, prof, funcs)
	if err != nil {
		return target.Result{}, err
	}
	return h.RunProgram(mach, prog)
}
