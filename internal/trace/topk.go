package trace

import (
	"sort"
	"sync"
)

// TopK retains the K slowest finished traces ever Added — the
// slow-trace exemplar store behind /v1/trace/slow and the fleet
// aggregation endpoint. Unlike the Recorder's recency ring, admission
// here is by duration: a trace displaces the current fastest member
// only if it is slower, so the K worst cases survive arbitrarily long
// runs in bounded memory. Safe for concurrent use; Add only finished
// traces (readers access them without synchronization).
type TopK struct {
	mu  sync.Mutex
	cap int
	// min-heap on duration: buf[0] is the fastest retained trace, the
	// first to be displaced.
	buf []*Trace
}

// DefaultTopKCap is the retention when NewTopK is given a non-positive
// capacity.
const DefaultTopKCap = 32

// NewTopK returns a store retaining the capacity slowest traces.
func NewTopK(capacity int) *TopK {
	if capacity <= 0 {
		capacity = DefaultTopKCap
	}
	return &TopK{cap: capacity}
}

// Add offers a finished trace; it is retained iff it is among the K
// slowest seen. Nil traces are ignored.
func (k *TopK) Add(t *Trace) {
	if t == nil {
		return
	}
	d := t.Duration()
	k.mu.Lock()
	defer k.mu.Unlock()
	if len(k.buf) < k.cap {
		k.buf = append(k.buf, t)
		k.up(len(k.buf) - 1)
		return
	}
	if d <= k.buf[0].Duration() {
		return
	}
	k.buf[0] = t
	k.down(0)
}

// List returns the retained traces, slowest first.
func (k *TopK) List() []*Trace {
	k.mu.Lock()
	out := append([]*Trace(nil), k.buf...)
	k.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Duration() > out[j].Duration() })
	return out
}

// Len reports how many traces are retained.
func (k *TopK) Len() int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return len(k.buf)
}

func (k *TopK) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if k.buf[p].Duration() <= k.buf[i].Duration() {
			return
		}
		k.buf[p], k.buf[i] = k.buf[i], k.buf[p]
		i = p
	}
}

func (k *TopK) down(i int) {
	n := len(k.buf)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && k.buf[l].Duration() < k.buf[small].Duration() {
			small = l
		}
		if r < n && k.buf[r].Duration() < k.buf[small].Duration() {
			small = r
		}
		if small == i {
			return
		}
		k.buf[i], k.buf[small] = k.buf[small], k.buf[i]
		i = small
	}
}
