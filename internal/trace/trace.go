// Package trace is omnitrace: the lightweight structured span layer
// threaded through the serving pipeline — wire decode, SFI
// verification, translation, cache tiers, scheduling and execution all
// record where a job's wall-clock went. A Trace is one job's (or one
// upload's) span tree plus its dynamic instruction attribution: how
// many executed target instructions were application work, sandboxing
// checks, or scheduling filler — the live, per-job equivalent of the
// paper's overhead tables. A Recorder keeps a bounded ring of recent
// finished traces for the daemon's /v1/trace endpoints.
//
// Span methods are nil-receiver safe so the pipeline can thread an
// optional span without guarding every call site: a nil span swallows
// children, attributes and End() silently.
package trace

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span (cache outcome, counts,
// sub-phase timings).
type Attr struct {
	Key string `json:"key"`
	Val string `json:"val"`
}

// Span is one timed stage of a trace. Offsets and durations are
// nanoseconds relative to the owning trace's origin, measured on the
// monotonic clock. Spans are built by one goroutine at a time (the
// pipeline hands a job between goroutines through channels, which
// order the accesses); they are immutable once their trace is
// finished.
type Span struct {
	Name     string  `json:"name"`
	StartNs  int64   `json:"start_ns"`
	DurNs    int64   `json:"dur_ns"`
	Attrs    []Attr  `json:"attrs,omitempty"`
	Children []*Span `json:"children,omitempty"`

	origin time.Time // trace origin, for offset computation
	began  time.Time // when this span started

	// traceID/reqID are the owning trace's identity, inherited by every
	// child — how deep pipeline layers (the cache's peer probe) learn
	// which trace and originating request they are working for without
	// threading extra parameters through every call.
	traceID string
	reqID   string
}

// TraceID returns the owning trace's ID ("" for detached spans).
// Nil-safe.
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.traceID
}

// RequestID returns the originating request ID threaded onto the
// owning trace, or "". Nil-safe.
func (s *Span) RequestID() string {
	if s == nil {
		return ""
	}
	return s.reqID
}

// Child starts a sub-span now. Safe on a nil receiver (returns nil).
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{
		Name:    name,
		origin:  s.origin,
		began:   time.Now(),
		StartNs: time.Since(s.origin).Nanoseconds(),
		traceID: s.traceID,
		reqID:   s.reqID,
	}
	s.Children = append(s.Children, c)
	return c
}

// ChildSpan adds an already-measured child covering [start,
// start+dur] relative to the trace origin — for stages timed outside
// the span API, like queue wait measured across goroutines.
func (s *Span) ChildSpan(name string, start, dur time.Duration) *Span {
	if s == nil {
		return nil
	}
	c := &Span{
		Name:    name,
		origin:  s.origin,
		StartNs: start.Nanoseconds(),
		DurNs:   clampDur(dur).Nanoseconds(),
		traceID: s.traceID,
		reqID:   s.reqID,
	}
	s.Children = append(s.Children, c)
	return c
}

// AttachRemote grafts a span subtree produced on another node under s:
// every remote span is annotated with node=<node>, and the subtree's
// offsets are shifted so its root starts where s starts — clocks on
// different machines are not comparable, but durations are, and the
// shift keeps JSON consumers from seeing offsets from a foreign
// monotonic clock. The remote tree must be finished (it came off the
// wire); s keeps ownership after the call. Nil-safe in both arguments.
func (s *Span) AttachRemote(remote *Span, node string) {
	if s == nil || remote == nil {
		return
	}
	shift := s.StartNs - remote.StartNs
	var walk func(*Span)
	walk = func(r *Span) {
		r.StartNs += shift
		if node != "" {
			r.Attrs = append(r.Attrs, Attr{Key: "node", Val: node})
		}
		for _, c := range r.Children {
			walk(c)
		}
	}
	walk(remote)
	s.Children = append(s.Children, remote)
}

// End closes the span and returns its duration. Durations are clamped
// to at least 1ns so a recorded stage is never reported as zero-width
// (clock granularity floor). Nil-safe.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := clampDur(time.Since(s.began))
	s.DurNs = d.Nanoseconds()
	return d
}

// Set appends a key/value attribute and returns the span for
// chaining. Nil-safe.
func (s *Span) Set(key string, val any) *Span {
	if s == nil {
		return nil
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Val: fmt.Sprint(val)})
	return s
}

// Dur returns the span duration.
func (s *Span) Dur() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.DurNs)
}

// Find returns the first span named name in this span's subtree
// (including itself), or nil — how callers pull a stage's timing back
// out of a finished tree.
func (s *Span) Find(name string) *Span {
	if s == nil {
		return nil
	}
	if s.Name == name {
		return s
	}
	for _, c := range s.Children {
		if m := c.Find(name); m != nil {
			return m
		}
	}
	return nil
}

func clampDur(d time.Duration) time.Duration {
	if d <= 0 {
		return time.Nanosecond
	}
	return d
}

// Trace is one traced operation: a span tree plus identity and the
// final dynamic instruction attribution. All exported fields survive a
// JSON round trip, so the daemon can serve a trace and the client can
// render it.
type Trace struct {
	ID     string    `json:"id"`
	Kind   string    `json:"kind"`             // "exec", "upload", ...
	Target string    `json:"target,omitempty"` // machine name for exec traces
	Module string    `json:"module,omitempty"` // module content hash (or prefix)
	Status string    `json:"status,omitempty"` // "ok", "fault(contained)", "error"
	Begin  time.Time `json:"begin"`
	Root   *Span     `json:"root"`

	// Dynamic instruction attribution (the paper's Tables 3–5, per
	// job): application work, sandboxing checks, scheduling filler.
	Insts        uint64 `json:"insts,omitempty"`
	AppInsts     uint64 `json:"app_insts,omitempty"`
	SandboxInsts uint64 `json:"sandbox_insts,omitempty"`
	SchedInsts   uint64 `json:"sched_insts,omitempty"`
}

// New starts a trace whose root span opens now.
func New(id, kind string) *Trace {
	now := time.Now()
	return &Trace{
		ID:    id,
		Kind:  kind,
		Begin: now,
		Root:  &Span{Name: kind, origin: now, began: now, traceID: id},
	}
}

// SetRequestID threads the originating HTTP request ID onto the trace:
// spans created from the root after this call inherit it (Span.
// RequestID), which is how the peer-fetch path forwards the origin's
// X-Omni-Request-Id instead of minting a new one per hop. Call it
// before building the span tree. Nil-safe.
func (t *Trace) SetRequestID(rid string) {
	if t == nil || t.Root == nil {
		return
	}
	t.Root.reqID = rid
}

// Finish sets the final status and closes the root span. Nil-safe.
func (t *Trace) Finish(status string) {
	if t == nil {
		return
	}
	t.Status = status
	t.Root.End()
}

// Duration is the root span's duration.
func (t *Trace) Duration() time.Duration {
	if t == nil {
		return 0
	}
	return t.Root.Dur()
}

// SandboxPct is the percentage of executed instructions that were
// sandboxing checks — the live equivalent of the paper's SFI overhead
// columns. 0 when nothing was counted.
func (t *Trace) SandboxPct() float64 {
	if t == nil || t.Insts == 0 {
		return 0
	}
	return 100 * float64(t.SandboxInsts) / float64(t.Insts)
}

// Render draws the trace as an indented span tree with durations and
// the sandbox-overhead line — what `omnictl trace` prints.
func (t *Trace) Render() string {
	if t == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s  kind=%s", t.ID, t.Kind)
	if t.Target != "" {
		fmt.Fprintf(&b, "  target=%s", t.Target)
	}
	if t.Status != "" {
		fmt.Fprintf(&b, "  status=%s", t.Status)
	}
	fmt.Fprintf(&b, "  total=%s\n", t.Duration())
	if t.Insts > 0 {
		fmt.Fprintf(&b, "insts %d  app %d  sandbox %d (%.2f%%)  sched %d\n",
			t.Insts, t.AppInsts, t.SandboxInsts, t.SandboxPct(), t.SchedInsts)
	}
	renderSpan(&b, t.Root, "", true)
	return b.String()
}

func renderSpan(b *strings.Builder, s *Span, prefix string, last bool) {
	if s == nil {
		return
	}
	connector, childPrefix := "├─ ", prefix+"│  "
	if last {
		connector, childPrefix = "└─ ", prefix+"   "
	}
	fmt.Fprintf(b, "%s%s%s  %s", prefix, connector, s.Name, time.Duration(s.DurNs))
	if len(s.Attrs) > 0 {
		parts := make([]string, len(s.Attrs))
		for i, a := range s.Attrs {
			parts[i] = a.Key + "=" + a.Val
		}
		fmt.Fprintf(b, "  [%s]", strings.Join(parts, " "))
	}
	b.WriteByte('\n')
	for i, c := range s.Children {
		renderSpan(b, c, childPrefix, i == len(s.Children)-1)
	}
}

// Recorder is a bounded ring of recent finished traces, safe for
// concurrent use. Add only finished traces: readers returned by Get
// and Recent access them without synchronization.
type Recorder struct {
	mu   sync.Mutex
	buf  []*Trace
	next int
	byID map[string]*Trace
}

// DefaultRecorderCap is the ring size when NewRecorder is given a
// non-positive capacity.
const DefaultRecorderCap = 256

// NewRecorder returns a ring holding the last capacity traces.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultRecorderCap
	}
	return &Recorder{
		buf:  make([]*Trace, capacity),
		byID: make(map[string]*Trace, capacity),
	}
}

// Add records a finished trace, evicting the oldest when the ring is
// full. Nil traces are ignored.
func (r *Recorder) Add(t *Trace) {
	if t == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if old := r.buf[r.next]; old != nil {
		delete(r.byID, old.ID)
	}
	r.buf[r.next] = t
	r.byID[t.ID] = t
	r.next = (r.next + 1) % len(r.buf)
}

// Get returns the trace with the given ID, or nil if it has been
// evicted (or never recorded).
func (r *Recorder) Get(id string) *Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.byID[id]
}

// Recent returns up to n traces, newest first (n <= 0 means all
// retained).
func (r *Recorder) Recent(n int) []*Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n <= 0 || n > len(r.buf) {
		n = len(r.buf)
	}
	out := make([]*Trace, 0, n)
	for i := 1; i <= len(r.buf) && len(out) < n; i++ {
		t := r.buf[(r.next-i+len(r.buf))%len(r.buf)]
		if t == nil {
			break
		}
		out = append(out, t)
	}
	return out
}

// Len reports how many traces the ring currently retains.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.byID)
}
