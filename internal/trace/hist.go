package trace

import (
	"sync/atomic"
	"time"
)

// NumBuckets is the number of finite latency buckets. Bucket i covers
// durations up to BucketBound(i): 1µs, 2µs, 4µs, ... doubling to
// BucketBound(NumBuckets-1) ≈ 33.5s. One extra overflow bucket counts
// everything beyond the last bound.
const NumBuckets = 26

// BucketBound returns the inclusive upper bound of finite bucket i.
func BucketBound(i int) time.Duration {
	return time.Microsecond << i
}

// Histogram is a fixed-bucket latency histogram with lock-free
// recording — the serving hot path calls Observe concurrently from
// every worker. The zero value is ready to use.
type Histogram struct {
	n      atomic.Uint64
	sum    atomic.Int64 // total nanoseconds
	counts [NumBuckets + 1]atomic.Uint64
}

// Observe records one duration (negatives clamp to zero).
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.n.Add(1)
	h.sum.Add(int64(d))
	for i := 0; i < NumBuckets; i++ {
		if d <= BucketBound(i) {
			h.counts[i].Add(1)
			return
		}
	}
	h.counts[NumBuckets].Add(1)
}

// HistSnapshot is a point-in-time copy of a histogram. Counts has
// NumBuckets+1 entries; the last is the overflow bucket.
type HistSnapshot struct {
	Count  uint64   `json:"count"`
	SumNs  int64    `json:"sum_ns"`
	Counts []uint64 `json:"counts,omitempty"`
}

// Snapshot copies the histogram. Like the metrics counters it is
// consistent enough for reporting, not transactionally exact against
// concurrent Observe calls.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Count:  h.n.Load(),
		SumNs:  h.sum.Load(),
		Counts: make([]uint64, NumBuckets+1),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Sub returns the interval histogram between two snapshots of the
// same histogram: s minus an earlier snapshot prev, bucket-wise.
// Counters only grow, so a negative difference means the snapshots
// are from different histograms (or swapped); those clamp to zero
// rather than poisoning the quantiles.
func (s HistSnapshot) Sub(prev HistSnapshot) HistSnapshot {
	d := HistSnapshot{Counts: make([]uint64, NumBuckets+1)}
	if s.Count > prev.Count {
		d.Count = s.Count - prev.Count
	}
	if s.SumNs > prev.SumNs {
		d.SumNs = s.SumNs - prev.SumNs
	}
	for i := range d.Counts {
		var a, b uint64
		if i < len(s.Counts) {
			a = s.Counts[i]
		}
		if i < len(prev.Counts) {
			b = prev.Counts[i]
		}
		if a > b {
			d.Counts[i] = a - b
		}
	}
	return d
}

// Add returns the bucket-wise sum of two snapshots — the fleet
// aggregation primitive: histograms from different nodes merge by
// adding counts per bucket, and quantiles are recomputed from the
// merged buckets, never averaged. Add and Sub round-trip exactly:
// a.Add(b).Sub(b) == a for any snapshots with full bucket slices.
func (s HistSnapshot) Add(other HistSnapshot) HistSnapshot {
	out := HistSnapshot{
		Count:  s.Count + other.Count,
		SumNs:  s.SumNs + other.SumNs,
		Counts: make([]uint64, NumBuckets+1),
	}
	for i := range out.Counts {
		if i < len(s.Counts) {
			out.Counts[i] += s.Counts[i]
		}
		if i < len(other.Counts) {
			out.Counts[i] += other.Counts[i]
		}
	}
	return out
}

// Quantile estimates the q-th quantile (0 < q <= 1) by linear
// interpolation within the bucket holding the target rank. Defined
// edge behaviour, pinned by tests:
//
//   - an empty histogram reports 0;
//   - a sample is attributed its bucket's span, so a single
//     observation reports its bucket's upper bound;
//   - ranks landing in the overflow bucket report the last finite
//     bound (the histogram cannot resolve beyond it).
func (s HistSnapshot) Quantile(q float64) time.Duration {
	total := uint64(0)
	for _, c := range s.Counts {
		total += c
	}
	if total == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(total))
	if rank == 0 {
		rank = 1
	}
	seen := uint64(0)
	for i, c := range s.Counts {
		if seen+c < rank {
			seen += c
			continue
		}
		if i >= NumBuckets {
			return BucketBound(NumBuckets - 1)
		}
		lo := time.Duration(0)
		if i > 0 {
			lo = BucketBound(i - 1)
		}
		hi := BucketBound(i)
		// Interpolate the in-bucket position of the target rank.
		frac := float64(rank-seen) / float64(c)
		return lo + time.Duration(frac*float64(hi-lo))
	}
	return BucketBound(NumBuckets - 1)
}

// P50, P95 and P99 are the quantiles the metrics snapshot reports.
func (s HistSnapshot) P50() time.Duration { return s.Quantile(0.50) }
func (s HistSnapshot) P95() time.Duration { return s.Quantile(0.95) }
func (s HistSnapshot) P99() time.Duration { return s.Quantile(0.99) }

// Mean is the average observed duration (0 when empty).
func (s HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNs / int64(s.Count))
}
