package trace

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func mkTrace(id string, d time.Duration) *Trace {
	tr := New(id, "exec")
	tr.Root.DurNs = int64(d)
	tr.Status = "ok"
	return tr
}

// Admission is by duration, not recency: the K slowest traces ever
// offered survive, everything faster is dropped regardless of order.
func TestTopKRetention(t *testing.T) {
	k := NewTopK(3)
	k.Add(mkTrace("a", 5*time.Millisecond))
	k.Add(mkTrace("b", time.Millisecond))
	k.Add(mkTrace("c", 3*time.Millisecond))
	k.Add(mkTrace("d", 2*time.Millisecond)) // displaces b
	k.Add(mkTrace("e", 500*time.Microsecond))
	k.Add(nil) // ignored

	if k.Len() != 3 {
		t.Fatalf("retained %d, want 3", k.Len())
	}
	list := k.List()
	want := []string{"a", "c", "d"} // slowest first
	for i, id := range want {
		if list[i].ID != id {
			t.Fatalf("List[%d] = %s, want %s (full: %v)", i, list[i].ID, id, traceIDs(list))
		}
	}
	if NewTopK(0).cap != DefaultTopKCap {
		t.Errorf("non-positive capacity did not default")
	}
}

// Concurrent offers: run under -race, and the heap must still retain
// exactly the slowest overall.
func TestTopKConcurrent(t *testing.T) {
	k := NewTopK(8)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				// Unique duration per trace: g*1000+i microseconds.
				k.Add(mkTrace(fmt.Sprintf("g%d-%d", g, i), time.Duration(g*1000+i)*time.Microsecond))
				if i%50 == 0 {
					k.List()
					k.Len()
				}
			}
		}(g)
	}
	wg.Wait()
	if k.Len() != 8 {
		t.Fatalf("retained %d, want 8", k.Len())
	}
	list := k.List()
	// The slowest 8 offered were g3 i=192..199.
	if list[0].ID != "g3-199" {
		t.Fatalf("slowest retained is %s, want g3-199", list[0].ID)
	}
	for _, tr := range list {
		if tr.Duration() < time.Duration(3192)*time.Microsecond {
			t.Errorf("retained %s (%v) is not among the 8 slowest", tr.ID, tr.Duration())
		}
	}
}
