package trace

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTree(t *testing.T) {
	tr := New("job-1", "job")
	load := tr.Root.Child("load")
	time.Sleep(time.Millisecond)
	load.End()
	cache := tr.Root.Child("cache").Set("result", "miss")
	v := cache.Child("verify")
	v.End()
	cache.End()
	tr.Finish("ok")

	if got := len(tr.Root.Children); got != 2 {
		t.Fatalf("root has %d children, want 2", got)
	}
	if load.DurNs < int64(time.Millisecond) {
		t.Errorf("load duration %d ns, want >= 1ms", load.DurNs)
	}
	if cache.StartNs < load.StartNs+load.DurNs {
		t.Errorf("cache started at %d, before load ended at %d", cache.StartNs, load.StartNs+load.DurNs)
	}
	if tr.Duration() <= 0 {
		t.Error("finished trace has no duration")
	}
	if f := tr.Root.Find("verify"); f != v {
		t.Error("Find did not locate the nested verify span")
	}
	if f := tr.Root.Find("nope"); f != nil {
		t.Error("Find invented a span")
	}
}

// Every recorded span must report a nonzero duration, even if the
// stage was faster than the clock granularity.
func TestSpanDurationNeverZero(t *testing.T) {
	tr := New("j", "job")
	sp := tr.Root.Child("instant")
	sp.End()
	if sp.DurNs <= 0 {
		t.Fatalf("instant span duration %d, want > 0", sp.DurNs)
	}
	back := tr.Root.ChildSpan("queue_wait", 0, 0)
	if back.DurNs <= 0 {
		t.Fatalf("backdated zero-width span duration %d, want > 0", back.DurNs)
	}
}

// The pipeline threads optional spans; nil receivers must be inert.
func TestNilSpanSafe(t *testing.T) {
	var s *Span
	c := s.Child("x")
	if c != nil {
		t.Fatal("nil.Child returned a span")
	}
	c.Set("k", "v")
	c.ChildSpan("y", 0, time.Second)
	if d := c.End(); d != 0 {
		t.Fatalf("nil.End = %v", d)
	}
	if c.Find("x") != nil || c.Dur() != 0 {
		t.Fatal("nil span misbehaved")
	}
	var tr *Trace
	tr.Finish("ok")
	if tr.SandboxPct() != 0 || tr.Duration() != 0 || tr.Render() != "" {
		t.Fatal("nil trace misbehaved")
	}
}

func TestTraceJSONRoundTrip(t *testing.T) {
	tr := New("exec-1-abc-mips", "exec")
	tr.Target = "mips"
	tr.Module = "abc"
	tr.Root.Child("execute").Set("insts", 42).End()
	tr.Insts, tr.SandboxInsts, tr.AppInsts = 100, 10, 88
	tr.Finish("ok")

	raw, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var back Trace
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.ID != tr.ID || back.Target != "mips" || back.Status != "ok" {
		t.Fatalf("round trip lost identity: %+v", back)
	}
	sp := back.Root.Find("execute")
	if sp == nil || sp.DurNs != tr.Root.Children[0].DurNs {
		t.Fatalf("round trip lost the span tree: %+v", back.Root)
	}
	if len(sp.Attrs) != 1 || sp.Attrs[0].Val != "42" {
		t.Fatalf("round trip lost attrs: %+v", sp.Attrs)
	}
	if back.SandboxPct() != 10 {
		t.Fatalf("SandboxPct after round trip = %v, want 10", back.SandboxPct())
	}
}

func TestRender(t *testing.T) {
	tr := New("exec-7", "exec")
	tr.Target = "sparc"
	tr.Root.Child("queue_wait").End()
	c := tr.Root.Child("cache").Set("result", "miss")
	c.Child("translate").End()
	c.Child("verify").Set("stores", 3).End()
	c.End()
	tr.Root.Child("execute").End()
	tr.Insts, tr.SandboxInsts = 200, 25
	tr.Finish("ok")

	out := tr.Render()
	for _, want := range []string{
		"trace exec-7", "target=sparc", "status=ok",
		"queue_wait", "cache", "translate", "verify", "execute",
		"[result=miss]", "[stores=3]",
		"sandbox 25 (12.50%)",
		"└─", "├─",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// verify is nested under cache: deeper indentation.
	lines := strings.Split(out, "\n")
	var cacheIndent, verifyIndent int
	for _, ln := range lines {
		if strings.Contains(ln, "cache ") {
			cacheIndent = strings.Index(ln, "cache")
		}
		if strings.Contains(ln, "verify ") {
			verifyIndent = strings.Index(ln, "verify")
		}
	}
	if verifyIndent <= cacheIndent {
		t.Errorf("verify (col %d) not nested under cache (col %d):\n%s", verifyIndent, cacheIndent, out)
	}
}

func TestRecorderRing(t *testing.T) {
	r := NewRecorder(3)
	var ids []string
	for i := 0; i < 5; i++ {
		id := fmt.Sprintf("t%d", i)
		ids = append(ids, id)
		tr := New(id, "exec")
		tr.Finish("ok")
		r.Add(tr)
	}
	if r.Len() != 3 {
		t.Fatalf("ring holds %d, want 3", r.Len())
	}
	// Oldest two evicted, newest three retrievable.
	for _, id := range ids[:2] {
		if r.Get(id) != nil {
			t.Errorf("%s should be evicted", id)
		}
	}
	for _, id := range ids[2:] {
		if r.Get(id) == nil {
			t.Errorf("%s should be retained", id)
		}
	}
	recent := r.Recent(0)
	if len(recent) != 3 || recent[0].ID != "t4" || recent[2].ID != "t2" {
		t.Fatalf("Recent order wrong: %v", traceIDs(recent))
	}
	if got := r.Recent(2); len(got) != 2 || got[0].ID != "t4" {
		t.Fatalf("Recent(2) = %v", traceIDs(got))
	}
	r.Add(nil) // ignored
	if r.Len() != 3 {
		t.Fatal("nil Add changed the ring")
	}
}

func traceIDs(ts []*Trace) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.ID
	}
	return out
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(16)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				tr := New(fmt.Sprintf("g%d-%d", g, i), "exec")
				tr.Finish("ok")
				r.Add(tr)
				r.Get(tr.ID)
				r.Recent(4)
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if r.Len() != 16 {
		t.Fatalf("ring holds %d, want 16", r.Len())
	}
}

// AttachRemote grafts a subtree recorded on another node: every remote
// span gains a node annotation, the subtree is shifted to start where
// the local span starts (foreign monotonic clocks are meaningless
// here), and relative offsets and durations inside the subtree are
// preserved.
func TestAttachRemote(t *testing.T) {
	local := New("exec-1", "exec")
	pf := local.Root.Child("peer_fetch")

	remote := New("peer-1", "peer_serve")
	remote.Root.Child("cache").Set("result", "hit").End()
	remote.Root.Child("verify").End()
	remote.Finish("ok")
	// Simulate the foreign clock: displace the whole remote tree by an
	// offset no local span could have.
	var displace func(*Span)
	displace = func(s *Span) {
		s.StartNs += 1e15
		for _, c := range s.Children {
			displace(c)
		}
	}
	displace(remote.Root)
	cacheRel := remote.Root.Find("cache").StartNs - remote.Root.StartNs
	verifyDur := remote.Root.Find("verify").DurNs

	pf.AttachRemote(remote.Root, "http://owner:1")
	pf.End()
	local.Finish("ok")

	got := local.Root.Find("peer_serve")
	if got == nil {
		t.Fatalf("remote subtree not reachable from the local root:\n%s", local.Render())
	}
	if got.StartNs != pf.StartNs {
		t.Errorf("remote root starts at %d, want the local span's %d", got.StartNs, pf.StartNs)
	}
	if rel := got.Find("cache").StartNs - got.StartNs; rel != cacheRel {
		t.Errorf("relative offset inside subtree changed: %d, want %d", rel, cacheRel)
	}
	if d := got.Find("verify").DurNs; d != verifyDur {
		t.Errorf("remote duration changed across attach: %d, want %d", d, verifyDur)
	}
	nodeOf := func(s *Span) string {
		for _, a := range s.Attrs {
			if a.Key == "node" {
				return a.Val
			}
		}
		return ""
	}
	for _, name := range []string{"peer_serve", "cache", "verify"} {
		if n := nodeOf(got.Find(name)); n != "http://owner:1" {
			t.Errorf("remote span %s annotated node=%q, want the peer address", name, n)
		}
	}
	// The local spans must NOT be node-annotated: the annotation is how
	// a renderer tells foreign work apart.
	if n := nodeOf(pf); n != "" {
		t.Errorf("local span gained a node attr: %q", n)
	}
	// Nil-safety both ways.
	var nilSpan *Span
	nilSpan.AttachRemote(remote.Root, "x")
	before := len(pf.Children)
	pf.AttachRemote(nil, "x")
	if len(pf.Children) != before {
		t.Error("attaching a nil subtree changed the tree")
	}
}

// The trace ring under concurrent eviction churn: a capacity far
// smaller than the add volume forces every Add to evict while other
// goroutines Get and iterate. Run under -race in CI; the assertions
// pin map/ring consistency after the churn.
func TestRecorderEvictionRace(t *testing.T) {
	r := NewRecorder(4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				id := fmt.Sprintf("g%d-%d", g, i)
				tr := New(id, "exec")
				tr.Finish("ok")
				r.Add(tr)
				r.Get(id) // may or may not still be resident
				for _, got := range r.Recent(0) {
					if got == nil {
						t.Error("Recent returned a nil trace")
						return
					}
				}
				r.Len()
			}
		}(g)
	}
	wg.Wait()
	if r.Len() != 4 {
		t.Fatalf("ring holds %d after churn, want 4", r.Len())
	}
	// Every retained trace is still reachable by ID — the byID map and
	// the ring agree after ~4000 concurrent evictions.
	for _, tr := range r.Recent(0) {
		if r.Get(tr.ID) != tr {
			t.Errorf("retained trace %s not reachable by ID", tr.ID)
		}
	}
}
