package trace

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// Bucket boundary semantics: bounds are inclusive upper limits; one
// past the bound goes in the next bucket; beyond the last finite
// bound goes to overflow.
func TestHistogramBucketBoundaries(t *testing.T) {
	var h Histogram
	cases := []struct {
		d    time.Duration
		want int // bucket index
	}{
		{0, 0},
		{-time.Second, 0}, // negatives clamp to 0
		{time.Microsecond, 0},
		{time.Microsecond + 1, 1},
		{2 * time.Microsecond, 1},
		{2*time.Microsecond + 1, 2},
		{BucketBound(10), 10},
		{BucketBound(10) + 1, 11},
		{BucketBound(NumBuckets - 1), NumBuckets - 1},
		{BucketBound(NumBuckets-1) + 1, NumBuckets}, // overflow
		{24 * time.Hour, NumBuckets},
	}
	for _, c := range cases {
		h.Observe(c.d)
	}
	s := h.Snapshot()
	if s.Count != uint64(len(cases)) {
		t.Fatalf("count %d, want %d", s.Count, len(cases))
	}
	want := make([]uint64, NumBuckets+1)
	for _, c := range cases {
		want[c.want]++
	}
	for i := range want {
		if s.Counts[i] != want[i] {
			t.Errorf("bucket %d: count %d, want %d", i, s.Counts[i], want[i])
		}
	}
}

func TestQuantileEmpty(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	for _, q := range []float64{0.5, 0.95, 0.99, 1} {
		if got := s.Quantile(q); got != 0 {
			t.Errorf("empty histogram Quantile(%v) = %v, want 0", q, got)
		}
	}
	if s.Mean() != 0 {
		t.Errorf("empty Mean = %v", s.Mean())
	}
}

// A single sample reports its bucket's upper bound at every quantile
// (the sample is attributed the whole bucket span).
func TestQuantileSingleSample(t *testing.T) {
	var h Histogram
	h.Observe(3 * time.Microsecond) // bucket 2: (2µs, 4µs]
	s := h.Snapshot()
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != BucketBound(2) {
			t.Errorf("Quantile(%v) = %v, want %v", q, got, BucketBound(2))
		}
	}
}

// Ranks landing in the overflow bucket report the last finite bound —
// the histogram cannot resolve beyond it, and must not invent a
// larger number.
func TestQuantileAllInOverflow(t *testing.T) {
	var h Histogram
	for i := 0; i < 10; i++ {
		h.Observe(10 * time.Minute)
	}
	s := h.Snapshot()
	want := BucketBound(NumBuckets - 1)
	for _, q := range []float64{0.5, 0.99} {
		if got := s.Quantile(q); got != want {
			t.Errorf("Quantile(%v) = %v, want %v", q, got, want)
		}
	}
}

func TestQuantileInterpolation(t *testing.T) {
	var h Histogram
	// 100 samples uniformly placed in bucket 4: (8µs, 16µs].
	for i := 0; i < 100; i++ {
		h.Observe(9 * time.Microsecond)
	}
	s := h.Snapshot()
	p50, p95, p99 := s.P50(), s.P95(), s.P99()
	lo, hi := BucketBound(3), BucketBound(4)
	for name, v := range map[string]time.Duration{"p50": p50, "p95": p95, "p99": p99} {
		if v <= lo || v > hi {
			t.Errorf("%s = %v outside bucket (%v, %v]", name, v, lo, hi)
		}
	}
	if !(p50 < p95 && p95 < p99) {
		t.Errorf("quantiles not monotonic: p50=%v p95=%v p99=%v", p50, p95, p99)
	}
	// p50 of 100 in-bucket samples interpolates to the bucket midpoint.
	mid := lo + (hi-lo)/2
	if p50 != mid {
		t.Errorf("p50 = %v, want bucket midpoint %v", p50, mid)
	}
}

func TestQuantileSpread(t *testing.T) {
	var h Histogram
	// 90 fast, 10 slow: p50 fast, p99 slow.
	for i := 0; i < 90; i++ {
		h.Observe(time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Millisecond)
	}
	s := h.Snapshot()
	if p50 := s.P50(); p50 > 2*time.Microsecond {
		t.Errorf("p50 = %v, want <= 2µs", p50)
	}
	if p99 := s.P99(); p99 < 512*time.Microsecond {
		t.Errorf("p99 = %v, want in the millisecond bucket", p99)
	}
}

// Concurrent recording is the serving hot path; this test exists to
// run under -race.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(g*i) * time.Microsecond)
				if i%100 == 0 {
					s := h.Snapshot()
					_ = s.P99()
				}
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != 8000 {
		t.Fatalf("count %d, want 8000", s.Count)
	}
	var sum uint64
	for _, c := range s.Counts {
		sum += c
	}
	if sum != 8000 {
		t.Fatalf("bucket sum %d, want 8000", sum)
	}
}

func histEqual(a, b HistSnapshot) bool {
	if a.Count != b.Count || a.SumNs != b.SumNs || len(a.Counts) != len(b.Counts) {
		return false
	}
	for i := range a.Counts {
		if a.Counts[i] != b.Counts[i] {
			return false
		}
	}
	return true
}

// Add and Sub are exact inverses on full bucket slices, and Add is
// commutative — the algebra both the fleet merge (locals summed
// bucket-wise in any order) and the omniload interval delta
// (after.Sub(before)) rely on. Property-tested over seeded random
// histograms so the claim covers empty, sparse and overflow-heavy
// shapes, not just hand-picked cases.
func TestHistAddSubRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	randSnap := func() HistSnapshot {
		var h Histogram
		for i, n := 0, rng.Intn(200); i < n; i++ {
			// Spread from sub-microsecond to past the overflow bound.
			h.Observe(time.Duration(rng.Int63n(int64(40 * time.Second))))
		}
		return h.Snapshot()
	}
	for trial := 0; trial < 64; trial++ {
		a, b := randSnap(), randSnap()
		sum := a.Add(b)
		if got := sum.Sub(b); !histEqual(got, a) {
			t.Fatalf("trial %d: a.Add(b).Sub(b) != a\n got %+v\nwant %+v", trial, got, a)
		}
		if got := sum.Sub(a); !histEqual(got, b) {
			t.Fatalf("trial %d: a.Add(b).Sub(a) != b\n got %+v\nwant %+v", trial, got, b)
		}
		if got := b.Add(a); !histEqual(got, sum) {
			t.Fatalf("trial %d: Add not commutative", trial)
		}
		var total uint64
		for _, c := range sum.Counts {
			total += c
		}
		if total != sum.Count {
			t.Fatalf("trial %d: merged bucket sum %d != count %d", trial, total, sum.Count)
		}
	}
	// The identity element: merging with a zero-value snapshot (nil
	// Counts, as an idle node reports) changes nothing bucket-wise.
	a := randSnap()
	if got := a.Add(HistSnapshot{}); !histEqual(got, a) {
		t.Fatalf("a.Add(zero) != a: %+v", got)
	}
}
