package asm

import (
	"strings"
	"testing"

	"omniware/internal/ovm"
)

func mustAsm(t *testing.T, src string) *ovm.Object {
	t.Helper()
	o, err := Assemble("test.s", src)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestBasicProgram(t *testing.T) {
	o := mustAsm(t, `
.text
.globl main
main:
	addi r14, r14, -16
	ldi r1, 42
	stw r1, 8(r14)
	ldw r2, 8(r14)
	add r3, r1, r2
	halt
`)
	if len(o.Text) != 6 {
		t.Fatalf("got %d instructions", len(o.Text))
	}
	if o.Text[0].Op != ovm.ADDI || o.Text[0].Imm != -16 {
		t.Errorf("inst 0: %v", o.Text[0])
	}
	if o.Text[2].Op != ovm.STW || o.Text[2].Rd != 1 || o.Text[2].Rs1 != 14 || o.Text[2].Imm != 8 {
		t.Errorf("inst 2: %v", o.Text[2])
	}
	sym, ok := ovm.Lookup(o.Symbols, "main")
	if !ok || !sym.Global || sym.Section != ovm.SecText || sym.Value != 0 {
		t.Errorf("main symbol: %+v ok=%v", sym, ok)
	}
}

func TestBranchesAndLabels(t *testing.T) {
	o := mustAsm(t, `
.text
loop:
	addi r1, r1, 1
	blti r1, 10, loop
	beq r1, r2, done
	jmp loop
done:
	ret
`)
	// All label references become relocations.
	if len(o.TextRel) != 3 {
		t.Fatalf("got %d relocs: %+v", len(o.TextRel), o.TextRel)
	}
	for _, r := range o.TextRel {
		if r.Field != ovm.FieldImm2 {
			t.Errorf("branch reloc field: %+v", r)
		}
	}
	if o.Text[1].Op != ovm.BLTI || o.Text[1].Imm != 10 {
		t.Errorf("blti: %+v", o.Text[1])
	}
	if o.Text[4].Op != ovm.JR || o.Text[4].Rs1 != ovm.RRA {
		t.Errorf("ret: %+v", o.Text[4])
	}
}

func TestPseudoOps(t *testing.T) {
	o := mustAsm(t, `
.text
	mov r3, r7
	call foo
	ret
`)
	if o.Text[0].Op != ovm.ADD || o.Text[0].Rd != 3 || o.Text[0].Rs1 != 7 || o.Text[0].Rs2 != 0 {
		t.Errorf("mov: %+v", o.Text[0])
	}
	if o.Text[1].Op != ovm.JAL || o.Text[1].Rd != ovm.RRA {
		t.Errorf("call: %+v", o.Text[1])
	}
	if len(o.TextRel) != 1 || o.TextRel[0].Symbol != "foo" {
		t.Errorf("call reloc: %+v", o.TextRel)
	}
}

func TestDataSection(t *testing.T) {
	o := mustAsm(t, `
.data
.globl tab
tab:
	.word 1, 2, 3
	.byte 'A', 0xff
	.align 4
	.half 258
msg:
	.asciz "hi\n"
.double 1.5
.float 0.5
ptr:
	.word tab+8
.bss
buf:
	.space 100
.align 8
buf2:
	.space 4
`)
	if len(o.Data) < 12+2+2 {
		t.Fatalf("data too short: %d", len(o.Data))
	}
	if o.Data[0] != 1 || o.Data[4] != 2 || o.Data[8] != 3 {
		t.Errorf("words: % x", o.Data[:12])
	}
	if o.Data[12] != 'A' || o.Data[13] != 0xff {
		t.Errorf("bytes: % x", o.Data[12:14])
	}
	if o.Data[16] != 2 || o.Data[17] != 1 {
		t.Errorf("half at 16: % x", o.Data[16:18])
	}
	msg, _ := ovm.Lookup(o.Symbols, "msg")
	if string(o.Data[msg.Value:msg.Value+4]) != "hi\n\x00" {
		t.Errorf("asciz: %q", o.Data[msg.Value:msg.Value+4])
	}
	if len(o.DataRel) != 1 || o.DataRel[0].Symbol != "tab" || o.DataRel[0].Addend != 8 {
		t.Errorf("data reloc: %+v", o.DataRel)
	}
	if o.BSSSize != 108 {
		t.Errorf("bss size %d, want 108", o.BSSSize)
	}
	b2, _ := ovm.Lookup(o.Symbols, "buf2")
	if b2.Section != ovm.SecBSS || b2.Value != 104 {
		t.Errorf("buf2: %+v", b2)
	}
}

func TestGlobalDataAccess(t *testing.T) {
	o := mustAsm(t, `
.text
	lda r5, tab
	ldw r1, tab(r0)
	ldw r2, tab+4(r0)
.data
tab:
	.word 7
`)
	if len(o.TextRel) != 3 {
		t.Fatalf("relocs: %+v", o.TextRel)
	}
	if o.TextRel[2].Addend != 4 {
		t.Errorf("addend: %+v", o.TextRel[2])
	}
}

func TestFPInstructions(t *testing.T) {
	o := mustAsm(t, `
.text
	ldd f1, 0(r14)
	faddd f2, f1, f1
	cvtdw r1, f2
	cvtwd f3, r1
	fbeq f1, f2, 0
	std f2, 8(r14)
`)
	if o.Text[0].Op != ovm.LDD || o.Text[0].Rd != 1 || o.Text[0].Rs1 != 14 {
		t.Errorf("ldd: %+v", o.Text[0])
	}
	if o.Text[2].Op != ovm.CVTDW || o.Text[2].Rd != 1 || o.Text[2].Rs1 != 2 {
		t.Errorf("cvtdw: %+v", o.Text[2])
	}
}

func TestIndexedMem(t *testing.T) {
	o := mustAsm(t, `
.text
	ldwx r1, (r2+r3)
	stbx r4, (r5+r6)
	lddx f1, (r2+r3)
`)
	if o.Text[0].Op != ovm.LDWX || o.Text[0].Rs1 != 2 || o.Text[0].Rs2 != 3 {
		t.Errorf("ldwx: %+v", o.Text[0])
	}
	if o.Text[1].Op != ovm.STBX || o.Text[1].Rd != 4 {
		t.Errorf("stbx: %+v", o.Text[1])
	}
}

func TestComments(t *testing.T) {
	o := mustAsm(t, `
.text
	ldi r1, 1  # a comment
	ldi r2, 2  ; another
.data
s:	.asciz "has # and ; inside"
`)
	if len(o.Text) != 2 {
		t.Errorf("%d insts", len(o.Text))
	}
	if !strings.Contains(string(o.Data), "has # and ; inside") {
		t.Errorf("string comment stripped: %q", o.Data)
	}
}

func TestErrors(t *testing.T) {
	cases := []string{
		"\tbogus r1, r2",
		".text\n\tadd r1, r2",            // arity
		".text\n\tadd r1, r2, r16",       // bad register
		".text\n\tadd r1, r2, f3",        // FP reg in int slot
		".text\nx:\nx:\n",                // duplicate label
		".data\n\tadd r1, r2, r3\n",      // inst outside text
		".text\n\tldw r1, 4(f2)\n",       // FP base
		".quux 3\n",                      // unknown directive
		".data\n.word \"x\"\n",           // bad word
		".data\n.asciz unquoted\n",       // bad string
		".text\n\tldi r1, 99999999999\n", // immediate overflow
		".data\n.align 3\n",              // non-power-of-two
	}
	for _, src := range cases {
		if _, err := Assemble("bad.s", src); err == nil {
			t.Errorf("accepted: %q", src)
		} else if _, ok := err.(*Error); !ok {
			t.Errorf("error type for %q: %T", src, err)
		}
	}
}

func TestSrcLines(t *testing.T) {
	o := mustAsm(t, `
.text
.line 12
	ldi r1, 1
	ldi r2, 2
`)
	if len(o.SrcLines) != 2 || o.SrcLines[0] != 12 || o.SrcLines[1] != 0 {
		t.Errorf("src lines: %v", o.SrcLines)
	}
}

// Disassembler output must assemble back to the same text section.
func TestDisasmRoundTrip(t *testing.T) {
	src := `
.text
.globl main
main:
	ldi r1, 0
	ldi r2, 10
loop:
	addi r1, r1, 1
	blt r1, r2, loop
	syscall 1
	halt
`
	o1 := mustAsm(t, src)
	// Resolve intra-object labels the way the linker would for a single
	// object with no external refs: all relocs are local here.
	for _, r := range o1.TextRel {
		sym, ok := ovm.Lookup(o1.Symbols, r.Symbol)
		if !ok {
			t.Fatalf("unresolved %q", r.Symbol)
		}
		if r.Field == ovm.FieldImm2 {
			o1.Text[r.Offset].Imm2 = int32(sym.Value) + r.Addend
		}
	}
	text := ovm.Disassemble(o1.Text, o1.Symbols)
	o2, err := Assemble("rt.s", text)
	if err != nil {
		t.Fatalf("reassemble: %v\n%s", err, text)
	}
	for _, r := range o2.TextRel {
		sym, ok := ovm.Lookup(o2.Symbols, r.Symbol)
		if !ok {
			t.Fatalf("unresolved %q in round trip", r.Symbol)
		}
		if r.Field == ovm.FieldImm2 {
			o2.Text[r.Offset].Imm2 = int32(sym.Value) + r.Addend
		}
	}
	if len(o1.Text) != len(o2.Text) {
		t.Fatalf("length: %d vs %d", len(o1.Text), len(o2.Text))
	}
	for i := range o1.Text {
		if o1.Text[i] != o2.Text[i] {
			t.Errorf("inst %d: %v vs %v", i, o1.Text[i], o2.Text[i])
		}
	}
}
