// Package asm implements the OmniVM assembler: it turns assembler
// source text (the compiler's output, or the disassembler's) into a
// relocatable ovm.Object. Symbol references are always emitted as
// relocations; the linker resolves them, so one code path covers both
// local labels and cross-module references.
package asm

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"strings"

	"omniware/internal/ovm"
)

// Error is an assembly diagnostic with source position.
type Error struct {
	File string
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg) }

type section int

const (
	inText section = iota
	inData
	inBSS
)

type assembler struct {
	file        string
	obj         *ovm.Object
	sec         section
	globals     map[string]bool
	defined     map[string]bool
	line        int
	pendingLine int32 // set by .line, attached to the next instruction
}

// Assemble translates source into an object file. name is used for
// diagnostics and recorded in the object.
func Assemble(name, source string) (*ovm.Object, error) {
	a := &assembler{
		file:    name,
		obj:     &ovm.Object{Name: name},
		globals: map[string]bool{},
		defined: map[string]bool{},
	}
	for i, raw := range strings.Split(source, "\n") {
		a.line = i + 1
		if err := a.doLine(raw); err != nil {
			return nil, err
		}
	}
	// A .globl for an undefined name is an import declaration; nothing to
	// record — references already carry relocations. Defined names get
	// their Global flag set here.
	for i := range a.obj.Symbols {
		if a.globals[a.obj.Symbols[i].Name] {
			a.obj.Symbols[i].Global = true
		}
	}
	return a.obj, nil
}

func (a *assembler) errf(format string, args ...any) error {
	return &Error{File: a.file, Line: a.line, Msg: fmt.Sprintf(format, args...)}
}

// stripComment removes # or ; comments, respecting string literals.
func stripComment(s string) string {
	inStr := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				inStr = !inStr
			}
		case '#', ';':
			if !inStr {
				return s[:i]
			}
		}
	}
	return s
}

func (a *assembler) doLine(raw string) error {
	s := strings.TrimSpace(stripComment(raw))
	for s != "" {
		// Labels: one or more "name:" prefixes.
		if idx := strings.IndexByte(s, ':'); idx > 0 && isIdent(s[:idx]) && !strings.ContainsAny(s[:idx], " \t") {
			if err := a.defineLabel(s[:idx]); err != nil {
				return err
			}
			s = strings.TrimSpace(s[idx+1:])
			continue
		}
		break
	}
	if s == "" {
		return nil
	}
	if s[0] == '.' {
		return a.directive(s)
	}
	return a.instruction(s)
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == '.' || c == '$' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func (a *assembler) defineLabel(name string) error {
	if a.defined[name] {
		return a.errf("symbol %q redefined", name)
	}
	a.defined[name] = true
	sym := ovm.Symbol{Name: name}
	switch a.sec {
	case inText:
		sym.Section = ovm.SecText
		sym.Value = uint32(len(a.obj.Text))
	case inData:
		sym.Section = ovm.SecData
		sym.Value = uint32(len(a.obj.Data))
	case inBSS:
		sym.Section = ovm.SecBSS
		sym.Value = a.obj.BSSSize
	}
	a.obj.Symbols = append(a.obj.Symbols, sym)
	return nil
}

func (a *assembler) directive(s string) error {
	name, rest, _ := strings.Cut(s, " ")
	rest = strings.TrimSpace(rest)
	switch name {
	case ".text":
		a.sec = inText
	case ".data":
		a.sec = inData
	case ".bss":
		a.sec = inBSS
	case ".globl", ".global":
		for _, n := range splitOperands(rest) {
			if !isIdent(n) {
				return a.errf("bad symbol name %q", n)
			}
			a.globals[n] = true
		}
	case ".align":
		n, err := strconv.Atoi(rest)
		if err != nil || n <= 0 || n&(n-1) != 0 {
			return a.errf("bad alignment %q", rest)
		}
		switch a.sec {
		case inData:
			for len(a.obj.Data)%n != 0 {
				a.obj.Data = append(a.obj.Data, 0)
			}
		case inBSS:
			a.obj.BSSSize = (a.obj.BSSSize + uint32(n) - 1) &^ (uint32(n) - 1)
		}
	case ".space", ".skip":
		n, err := strconv.Atoi(rest)
		if err != nil || n < 0 {
			return a.errf("bad size %q", rest)
		}
		switch a.sec {
		case inData:
			a.obj.Data = append(a.obj.Data, make([]byte, n)...)
		case inBSS:
			a.obj.BSSSize += uint32(n)
		default:
			return a.errf(".space in text section")
		}
	case ".byte", ".half", ".word":
		if a.sec != inData {
			return a.errf("%s outside .data", name)
		}
		return a.emitData(name, rest)
	case ".float":
		if a.sec != inData {
			return a.errf(".float outside .data")
		}
		for _, op := range splitOperands(rest) {
			v, err := strconv.ParseFloat(op, 32)
			if err != nil {
				return a.errf("bad float %q", op)
			}
			var b [4]byte
			binary.LittleEndian.PutUint32(b[:], math.Float32bits(float32(v)))
			a.obj.Data = append(a.obj.Data, b[:]...)
		}
	case ".double":
		if a.sec != inData {
			return a.errf(".double outside .data")
		}
		for _, op := range splitOperands(rest) {
			v, err := strconv.ParseFloat(op, 64)
			if err != nil {
				return a.errf("bad double %q", op)
			}
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
			a.obj.Data = append(a.obj.Data, b[:]...)
		}
	case ".asciz", ".string":
		if a.sec != inData {
			return a.errf("%s outside .data", name)
		}
		str, err := strconv.Unquote(rest)
		if err != nil {
			return a.errf("bad string literal %s", rest)
		}
		a.obj.Data = append(a.obj.Data, str...)
		a.obj.Data = append(a.obj.Data, 0)
	case ".line":
		// Optional source-line annotation for the next instruction.
		// Recorded lazily in instruction().
		n, err := strconv.Atoi(rest)
		if err != nil {
			return a.errf("bad .line %q", rest)
		}
		a.pendingLine = int32(n)
	default:
		return a.errf("unknown directive %s", name)
	}
	return nil
}

func (a *assembler) emitData(kind, rest string) error {
	for _, op := range splitOperands(rest) {
		if v, err := parseInt(op); err == nil {
			switch kind {
			case ".byte":
				a.obj.Data = append(a.obj.Data, byte(v))
			case ".half":
				var b [2]byte
				binary.LittleEndian.PutUint16(b[:], uint16(v))
				a.obj.Data = append(a.obj.Data, b[:]...)
			case ".word":
				var b [4]byte
				binary.LittleEndian.PutUint32(b[:], uint32(v))
				a.obj.Data = append(a.obj.Data, b[:]...)
			}
			continue
		}
		// Symbolic word: emit a data relocation.
		if kind != ".word" {
			return a.errf("symbolic %s not supported", kind)
		}
		sym, add, err := parseSymRef(op)
		if err != nil {
			return a.errf("bad operand %q", op)
		}
		a.obj.DataRel = append(a.obj.DataRel, ovm.Reloc{
			Offset: uint32(len(a.obj.Data)),
			Kind:   ovm.RelAbs,
			Symbol: sym,
			Addend: add,
		})
		a.obj.Data = append(a.obj.Data, 0, 0, 0, 0)
	}
	return nil
}

// parseInt parses decimal, hex, and character literals.
func parseInt(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if len(s) >= 3 && s[0] == '\'' {
		str, err := strconv.Unquote(s)
		if err != nil || len(str) != 1 {
			return 0, fmt.Errorf("bad char literal %q", s)
		}
		return int64(str[0]), nil
	}
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	v, err := strconv.ParseUint(strings.TrimPrefix(s, "+"), 0, 33)
	if err != nil {
		return 0, err
	}
	if neg {
		return -int64(v), nil
	}
	return int64(v), nil
}

// parseSymRef parses "sym", "sym+4", "sym-4".
func parseSymRef(s string) (string, int32, error) {
	s = strings.TrimSpace(s)
	idx := strings.IndexAny(s, "+-")
	if idx <= 0 {
		if !isIdent(s) {
			return "", 0, fmt.Errorf("bad symbol %q", s)
		}
		return s, 0, nil
	}
	name := strings.TrimSpace(s[:idx])
	if !isIdent(name) {
		return "", 0, fmt.Errorf("bad symbol %q", name)
	}
	add, err := parseInt(s[idx:])
	if err != nil {
		return "", 0, err
	}
	return name, int32(add), nil
}

// splitOperands splits on commas outside quotes and parentheses.
func splitOperands(s string) []string {
	var out []string
	depth := 0
	inStr := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				inStr = !inStr
			}
		case '(':
			if !inStr {
				depth++
			}
		case ')':
			if !inStr {
				depth--
			}
		case ',':
			if !inStr && depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	last := strings.TrimSpace(s[start:])
	if last != "" || len(out) > 0 {
		out = append(out, last)
	}
	return out
}
