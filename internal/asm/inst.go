package asm

import (
	"strconv"
	"strings"

	"omniware/internal/ovm"
)

// pendingLine support: declared here to keep asm.go focused on layout.
// (field lives on assembler; see asm.go)

func parseIntReg(s string) (uint8, bool) {
	if len(s) < 2 || (s[0] != 'r' && s[0] != 'R') {
		return 0, false
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= ovm.NumIntRegs {
		return 0, false
	}
	return uint8(n), true
}

func parseFPReg(s string) (uint8, bool) {
	if len(s) < 2 || (s[0] != 'f' && s[0] != 'F') {
		return 0, false
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= ovm.NumFPRegs {
		return 0, false
	}
	return uint8(n), true
}

// regFields says which operand fields of an FP-flavored opcode hold
// integer registers.
func intFields(op ovm.Opcode) (rdInt, rs1Int, rs2Int bool) {
	if !op.IsFP() {
		return true, true, true
	}
	switch op {
	case ovm.LDF, ovm.LDD, ovm.STF, ovm.STD:
		return false, true, true
	case ovm.LDFX, ovm.LDDX, ovm.STFX, ovm.STDX:
		return false, true, true
	case ovm.CVTWS, ovm.CVTWD, ovm.MOVWF:
		return false, true, true
	case ovm.CVTSW, ovm.CVTDW, ovm.MOVFW:
		return true, false, false
	case ovm.FBEQ, ovm.FBNE, ovm.FBLT, ovm.FBLE:
		return true, false, false
	default:
		return false, false, false
	}
}

func (a *assembler) parseReg(s string, wantInt bool) (uint8, error) {
	if wantInt {
		if r, ok := parseIntReg(s); ok {
			return r, nil
		}
		return 0, a.errf("expected integer register, got %q", s)
	}
	if r, ok := parseFPReg(s); ok {
		return r, nil
	}
	return 0, a.errf("expected FP register, got %q", s)
}

// immOrReloc parses an integer, or records a relocation for a symbol
// reference into the given field of the instruction being emitted.
func (a *assembler) immOrReloc(s string, field ovm.RelocField) (int32, error) {
	if v, err := parseInt(s); err == nil {
		if v < -1<<31 || v > 1<<32-1 {
			return 0, a.errf("immediate %d out of 32-bit range", v)
		}
		return int32(v), nil
	}
	sym, add, err := parseSymRef(s)
	if err != nil {
		return 0, a.errf("bad operand %q", s)
	}
	a.obj.TextRel = append(a.obj.TextRel, ovm.Reloc{
		Offset: uint32(len(a.obj.Text)),
		Field:  field,
		Kind:   ovm.RelAbs, // linker refines by target section
		Symbol: sym,
		Addend: add,
	})
	return 0, nil
}

// parseMem parses "imm(rN)" or "sym(rN)" or "sym+4(rN)".
func (a *assembler) parseMem(s string) (base uint8, imm int32, err error) {
	open := strings.LastIndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, a.errf("bad memory operand %q", s)
	}
	b, ok := parseIntReg(strings.TrimSpace(s[open+1 : len(s)-1]))
	if !ok {
		return 0, 0, a.errf("bad base register in %q", s)
	}
	off := strings.TrimSpace(s[:open])
	if off == "" {
		return b, 0, nil
	}
	v, err := a.immOrReloc(off, ovm.FieldImm)
	if err != nil {
		return 0, 0, err
	}
	return b, v, nil
}

// parseMemX parses "(rA+rB)".
func (a *assembler) parseMemX(s string) (r1, r2 uint8, err error) {
	if !strings.HasPrefix(s, "(") || !strings.HasSuffix(s, ")") {
		return 0, 0, a.errf("bad indexed operand %q", s)
	}
	inner := s[1 : len(s)-1]
	p1, p2, ok := strings.Cut(inner, "+")
	if !ok {
		return 0, 0, a.errf("bad indexed operand %q", s)
	}
	a1, ok1 := parseIntReg(strings.TrimSpace(p1))
	a2, ok2 := parseIntReg(strings.TrimSpace(p2))
	if !ok1 || !ok2 {
		return 0, 0, a.errf("bad index registers in %q", s)
	}
	return a1, a2, nil
}

func (a *assembler) instruction(s string) error {
	mn, rest, _ := strings.Cut(s, " ")
	mn = strings.ToLower(mn)
	ops := splitOperands(strings.TrimSpace(rest))

	// Pseudo-instructions.
	switch mn {
	case "mov":
		if len(ops) != 2 {
			return a.errf("mov needs 2 operands")
		}
		rd, err := a.parseReg(ops[0], true)
		if err != nil {
			return err
		}
		rs, err := a.parseReg(ops[1], true)
		if err != nil {
			return err
		}
		return a.emit(ovm.Inst{Op: ovm.ADD, Rd: rd, Rs1: rs, Rs2: ovm.RZero})
	case "call":
		if len(ops) != 1 {
			return a.errf("call needs 1 operand")
		}
		imm2, err := a.immOrReloc(ops[0], ovm.FieldImm2)
		if err != nil {
			return err
		}
		return a.emit(ovm.Inst{Op: ovm.JAL, Rd: ovm.RRA, Imm2: imm2})
	case "ret":
		if len(ops) != 0 {
			return a.errf("ret takes no operands")
		}
		return a.emit(ovm.Inst{Op: ovm.JR, Rs1: ovm.RRA})
	case "b":
		mn = "jmp"
	}

	op, ok := ovm.OpcodeByName[mn]
	if !ok {
		return a.errf("unknown instruction %q", mn)
	}
	rdI, rs1I, _ := intFields(op)
	in := ovm.Inst{Op: op}
	var err error
	need := func(n int) error {
		if len(ops) != n {
			return a.errf("%s needs %d operands, got %d", mn, n, len(ops))
		}
		return nil
	}
	switch op.Format() {
	case ovm.FmtNone:
		if err = need(0); err != nil {
			return err
		}
	case ovm.FmtRRR:
		if err = need(3); err != nil {
			return err
		}
		if in.Rd, err = a.parseReg(ops[0], rdI); err != nil {
			return err
		}
		if in.Rs1, err = a.parseReg(ops[1], rdI); err != nil {
			return err
		}
		if in.Rs2, err = a.parseReg(ops[2], rdI); err != nil {
			return err
		}
	case ovm.FmtRRI:
		if err = need(3); err != nil {
			return err
		}
		if in.Rd, err = a.parseReg(ops[0], true); err != nil {
			return err
		}
		if in.Rs1, err = a.parseReg(ops[1], true); err != nil {
			return err
		}
		if in.Imm, err = a.immOrReloc(ops[2], ovm.FieldImm); err != nil {
			return err
		}
	case ovm.FmtRI:
		if err = need(2); err != nil {
			return err
		}
		if in.Rd, err = a.parseReg(ops[0], true); err != nil {
			return err
		}
		if in.Imm, err = a.immOrReloc(ops[1], ovm.FieldImm); err != nil {
			return err
		}
	case ovm.FmtRR:
		if err = need(2); err != nil {
			return err
		}
		if in.Rd, err = a.parseReg(ops[0], rdI); err != nil {
			return err
		}
		if in.Rs1, err = a.parseReg(ops[1], rs1I); err != nil {
			return err
		}
	case ovm.FmtLoad, ovm.FmtStore:
		if err = need(2); err != nil {
			return err
		}
		if in.Rd, err = a.parseReg(ops[0], rdI); err != nil {
			return err
		}
		if in.Rs1, in.Imm, err = a.parseMem(ops[1]); err != nil {
			return err
		}
	case ovm.FmtLoadX, ovm.FmtStoreX:
		if err = need(2); err != nil {
			return err
		}
		if in.Rd, err = a.parseReg(ops[0], rdI); err != nil {
			return err
		}
		if in.Rs1, in.Rs2, err = a.parseMemX(ops[1]); err != nil {
			return err
		}
	case ovm.FmtBrRR:
		if err = need(3); err != nil {
			return err
		}
		wantFP := op == ovm.FBEQ || op == ovm.FBNE || op == ovm.FBLT || op == ovm.FBLE
		if in.Rs1, err = a.parseReg(ops[0], !wantFP); err != nil {
			return err
		}
		if in.Rs2, err = a.parseReg(ops[1], !wantFP); err != nil {
			return err
		}
		if in.Imm2, err = a.immOrReloc(ops[2], ovm.FieldImm2); err != nil {
			return err
		}
	case ovm.FmtBrRI:
		if err = need(3); err != nil {
			return err
		}
		if in.Rs1, err = a.parseReg(ops[0], true); err != nil {
			return err
		}
		if in.Imm, err = a.immOrReloc(ops[1], ovm.FieldImm); err != nil {
			return err
		}
		if in.Imm2, err = a.immOrReloc(ops[2], ovm.FieldImm2); err != nil {
			return err
		}
	case ovm.FmtJmp:
		if err = need(1); err != nil {
			return err
		}
		if in.Imm2, err = a.immOrReloc(ops[0], ovm.FieldImm2); err != nil {
			return err
		}
	case ovm.FmtJal:
		if err = need(2); err != nil {
			return err
		}
		if in.Rd, err = a.parseReg(ops[0], true); err != nil {
			return err
		}
		if in.Imm2, err = a.immOrReloc(ops[1], ovm.FieldImm2); err != nil {
			return err
		}
	case ovm.FmtJalr:
		if err = need(2); err != nil {
			return err
		}
		if in.Rd, err = a.parseReg(ops[0], true); err != nil {
			return err
		}
		if in.Rs1, err = a.parseReg(ops[1], true); err != nil {
			return err
		}
	case ovm.FmtJr:
		if err = need(1); err != nil {
			return err
		}
		if in.Rs1, err = a.parseReg(ops[0], true); err != nil {
			return err
		}
	case ovm.FmtSys:
		if err = need(1); err != nil {
			return err
		}
		if in.Imm, err = a.immOrReloc(ops[0], ovm.FieldImm); err != nil {
			return err
		}
	}
	return a.emit(in)
}

func (a *assembler) emit(in ovm.Inst) error {
	if a.sec != inText {
		return a.errf("instruction outside .text")
	}
	if err := in.Validate(); err != nil {
		return a.errf("%v", err)
	}
	a.obj.Text = append(a.obj.Text, in)
	a.obj.SrcLines = append(a.obj.SrcLines, a.pendingLine)
	a.pendingLine = 0
	return nil
}
