package seg

import "testing"

// Recycle must restore the pristine all-zero guarantee for every write
// path: permission-checked stores (tracked in check), and host-side
// Bytes() writes reported via MarkDirty.
func TestPooledSegmentRecycle(t *testing.T) {
	s, err := NewPooledSegment("pool", 0x10000, 4*PageSize, Read|Write)
	if err != nil {
		t.Fatal(err)
	}

	var m Memory
	if err := m.Attach(s); err != nil {
		t.Fatal(err)
	}
	// Checked store in page 1, Bytes write in page 3.
	if f := m.StoreU32(0x10000+PageSize+8, 0xdeadbeef); f != nil {
		t.Fatal(f)
	}
	off := uint32(3*PageSize + 100)
	s.Bytes()[off] = 0xff
	s.MarkDirty(off, 1)
	// Drop a page's write permission, as the guard page does, to check
	// Recycle restores uniform perms.
	if err := m.Protect(0x10000+2*PageSize, PageSize, 0); err != nil {
		t.Fatal(err)
	}

	m.Reset()
	if len(m.Segments()) != 0 {
		t.Fatal("Reset left segments attached")
	}
	s.Recycle("pool", 0x20000, Read|Write)

	if s.Base != 0x20000 {
		t.Fatalf("base %#x after recycle", s.Base)
	}
	for i, b := range s.Bytes() {
		if b != 0 {
			t.Fatalf("byte %#x = %#x after recycle; scrub missed a dirty page", i, b)
		}
	}
	var m2 Memory
	if err := m2.Attach(s); err != nil {
		t.Fatal(err)
	}
	// The protected page must be writable again.
	if f := m2.StoreU32(0x20000+2*PageSize, 1); f != nil {
		t.Fatalf("perms not restored: %v", f)
	}
}

func TestPooledSegmentRejectsBadGeometry(t *testing.T) {
	if _, err := NewPooledSegment("p", 0, PageSize+1, Read); err == nil {
		t.Fatal("non-page-multiple size accepted")
	}
	if _, err := NewPooledSegment("p", 100, PageSize, Read); err == nil {
		t.Fatal("unaligned base accepted")
	}
}

func TestAttachRejectsOverlap(t *testing.T) {
	var m Memory
	if _, err := m.Map("a", 0x1000, PageSize, Read); err != nil {
		t.Fatal(err)
	}
	s, err := NewPooledSegment("b", 0x1000, PageSize, Read)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Attach(s); err == nil {
		t.Fatal("overlapping attach accepted")
	}
}
