// Package seg implements the OmniVM segmented virtual memory model: an
// address space shared by mutually distrustful modules and the host,
// divided into segments with host-imposed read/write/execute permissions
// at page granularity. Unauthorized accesses produce Faults, which the
// runtime delivers to the module as access-violation exceptions.
package seg

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// PageSize is the protection granularity within a segment.
const PageSize = 4096

// Perm is a permission bit set.
type Perm uint8

const (
	Read  Perm = 1 << iota
	Write      // store permission
	Exec       // instruction fetch / indirect branch target permission
)

func (p Perm) String() string {
	b := []byte("---")
	if p&Read != 0 {
		b[0] = 'r'
	}
	if p&Write != 0 {
		b[1] = 'w'
	}
	if p&Exec != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// Access distinguishes the operation that caused a fault.
type Access uint8

const (
	AccLoad Access = iota
	AccStore
	AccFetch
)

func (a Access) String() string {
	switch a {
	case AccLoad:
		return "load"
	case AccStore:
		return "store"
	case AccFetch:
		return "fetch"
	}
	return "access"
}

// FaultKind classifies memory faults.
type FaultKind uint8

const (
	FaultUnmapped  FaultKind = iota // no segment covers the address
	FaultProt                       // segment exists but permission denied
	FaultUnaligned                  // address not aligned to access size
)

// Fault describes a failed memory access. It implements error.
type Fault struct {
	Kind FaultKind
	Acc  Access
	Addr uint32
	Size int
}

func (f *Fault) Error() string {
	var k string
	switch f.Kind {
	case FaultUnmapped:
		k = "unmapped address"
	case FaultProt:
		k = "access violation"
	case FaultUnaligned:
		k = "unaligned access"
	}
	return fmt.Sprintf("seg: %s: %d-byte %s at %#x", k, f.Size, f.Acc, f.Addr)
}

// Segment is a contiguous region of the address space.
type Segment struct {
	Name  string
	Base  uint32
	data  []byte
	perms []Perm // one per page

	// dirty, when non-nil, tracks pages written since the last Recycle
	// (one bit per page). Reusable segments carry it so Recycle can
	// restore the all-zero guarantee by clearing only the pages a run
	// actually touched instead of the whole (multi-megabyte) segment.
	// Ordinary segments leave it nil and pay nothing beyond the check.
	dirty []uint64
}

// Size returns the segment length in bytes.
func (s *Segment) Size() uint32 { return uint32(len(s.data)) }

// End returns the first address past the segment.
func (s *Segment) End() uint32 { return s.Base + s.Size() }

// Bytes exposes the backing store (host-side access, not permission
// checked; the host owns the address space). A writer mutating a
// reusable segment through this escape hatch must report the range
// with MarkDirty, or Recycle cannot restore the zero guarantee.
func (s *Segment) Bytes() []byte { return s.data }

// MarkDirty records that [off, off+n) was written outside the
// permission-checked store path. No-op on ordinary segments.
func (s *Segment) MarkDirty(off, n uint32) {
	if s.dirty == nil || n == 0 {
		return
	}
	first := off / PageSize
	last := (off + n - 1) / PageSize
	for p := first; p <= last; p++ {
		s.dirty[p/64] |= 1 << (p % 64)
	}
}

// NewPooledSegment creates an unattached, dirty-tracked segment for
// reuse across address spaces (the serving layer's host pool). The
// returned segment is pristine: all-zero data, uniform perms.
func NewPooledSegment(name string, base, size uint32, perms Perm) (*Segment, error) {
	if size == 0 || size%PageSize != 0 {
		return nil, fmt.Errorf("seg: pooled segment %q size %#x not a page multiple", name, size)
	}
	if base%PageSize != 0 {
		return nil, fmt.Errorf("seg: pooled segment %q base %#x not page aligned", name, base)
	}
	pages := size / PageSize
	s := &Segment{
		Name:  name,
		Base:  base,
		data:  make([]byte, size),
		perms: make([]Perm, pages),
		dirty: make([]uint64, (pages+63)/64),
	}
	for i := range s.perms {
		s.perms[i] = perms
	}
	return s, nil
}

// Recycle restores a dirty-tracked segment to pristine state under a
// possibly new identity: every page written since the last Recycle
// (or creation) is zeroed, permissions are reset uniformly, and the
// name/base are updated. The segment must not be attached to any
// Memory when recycled. Allocation-free.
func (s *Segment) Recycle(name string, base uint32, perms Perm) {
	for w, word := range s.dirty {
		for word != 0 {
			p := uint32(w*64 + bits.TrailingZeros64(word))
			word &= word - 1
			clear(s.data[p*PageSize : (p+1)*PageSize])
		}
		s.dirty[w] = 0
	}
	for i := range s.perms {
		s.perms[i] = perms
	}
	s.Name, s.Base = name, base
}

// Memory is a segmented address space. The zero value is empty; add
// segments with Map.
type Memory struct {
	segs []*Segment // sorted by Base
}

// Map creates a segment of size bytes at base with uniform perms.
// Size is rounded up to a page multiple. Overlapping an existing
// segment is an error.
func (m *Memory) Map(name string, base, size uint32, perms Perm) (*Segment, error) {
	if size == 0 {
		return nil, fmt.Errorf("seg: zero-size segment %q", name)
	}
	if base%PageSize != 0 {
		return nil, fmt.Errorf("seg: segment %q base %#x not page aligned", name, base)
	}
	size = (size + PageSize - 1) &^ (PageSize - 1)
	if base+size < base {
		return nil, fmt.Errorf("seg: segment %q wraps the address space", name)
	}
	for _, s := range m.segs {
		if base < s.End() && s.Base < base+size {
			return nil, fmt.Errorf("seg: segment %q [%#x,%#x) overlaps %q", name, base, base+size, s.Name)
		}
	}
	pp := make([]Perm, size/PageSize)
	for i := range pp {
		pp[i] = perms
	}
	s := &Segment{Name: name, Base: base, data: make([]byte, size), perms: pp}
	m.insert(s)
	return s, nil
}

// insert places s into the base-sorted segment list (the caller has
// already checked overlap). Allocation-free once the list's capacity
// has grown to its working size.
func (m *Memory) insert(s *Segment) {
	i := len(m.segs)
	for i > 0 && m.segs[i-1].Base > s.Base {
		i--
	}
	m.segs = append(m.segs, nil)
	copy(m.segs[i+1:], m.segs[i:])
	m.segs[i] = s
}

// Attach maps an existing (typically pooled) segment into this
// address space, with the same overlap discipline as Map.
func (m *Memory) Attach(s *Segment) error {
	if s.Base%PageSize != 0 {
		return fmt.Errorf("seg: attach %q: base %#x not page aligned", s.Name, s.Base)
	}
	if s.Base+s.Size() < s.Base {
		return fmt.Errorf("seg: attach %q: segment wraps the address space", s.Name)
	}
	for _, o := range m.segs {
		if s.Base < o.End() && o.Base < s.Base+s.Size() {
			return fmt.Errorf("seg: attach %q [%#x,%#x) overlaps %q", s.Name, s.Base, s.Base+s.Size(), o.Name)
		}
	}
	m.insert(s)
	return nil
}

// Reset detaches every segment, leaving an empty address space. The
// segments themselves (and their contents) are untouched — this is
// the reuse path's "tear down the mapping, keep the backing store".
func (m *Memory) Reset() {
	for i := range m.segs {
		m.segs[i] = nil
	}
	m.segs = m.segs[:0]
}

// Unmap removes the segment at base.
func (m *Memory) Unmap(base uint32) error {
	for i, s := range m.segs {
		if s.Base == base {
			m.segs = append(m.segs[:i], m.segs[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("seg: no segment at %#x", base)
}

// Segments returns the mapped segments in address order.
func (m *Memory) Segments() []*Segment { return m.segs }

// Find returns the segment containing addr, or nil.
func (m *Memory) Find(addr uint32) *Segment {
	// Binary search over sorted bases.
	lo, hi := 0, len(m.segs)
	for lo < hi {
		mid := (lo + hi) / 2
		if m.segs[mid].Base <= addr {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return nil
	}
	s := m.segs[lo-1]
	if addr < s.End() {
		return s
	}
	return nil
}

// Protect changes permissions on the pages covering [addr, addr+size).
// The range must lie within one segment and be page aligned; this is the
// host API behind the paper's "host-imposed permissions on access to
// this address space".
func (m *Memory) Protect(addr, size uint32, perms Perm) error {
	s := m.Find(addr)
	if s == nil {
		return fmt.Errorf("seg: protect: no segment at %#x", addr)
	}
	if addr%PageSize != 0 || size%PageSize != 0 {
		return fmt.Errorf("seg: protect: range [%#x,+%#x) not page aligned", addr, size)
	}
	if addr+size > s.End() || addr+size < addr {
		return fmt.Errorf("seg: protect: range [%#x,+%#x) exceeds segment %q", addr, size, s.Name)
	}
	first := (addr - s.Base) / PageSize
	for i := uint32(0); i < size/PageSize; i++ {
		s.perms[first+i] = perms
	}
	return nil
}

// PermsAt returns the permissions of the page containing addr (0 if
// unmapped).
func (m *Memory) PermsAt(addr uint32) Perm {
	s := m.Find(addr)
	if s == nil {
		return 0
	}
	return s.perms[(addr-s.Base)/PageSize]
}

// check validates an access and returns the segment and intra-segment
// offset.
func (m *Memory) check(addr uint32, size int, acc Access) (*Segment, uint32, *Fault) {
	if addr%uint32(size) != 0 {
		return nil, 0, &Fault{Kind: FaultUnaligned, Acc: acc, Addr: addr, Size: size}
	}
	s := m.Find(addr)
	if s == nil || addr+uint32(size) > s.End() {
		return nil, 0, &Fault{Kind: FaultUnmapped, Acc: acc, Addr: addr, Size: size}
	}
	var need Perm
	switch acc {
	case AccLoad:
		need = Read
	case AccStore:
		need = Write
	case AccFetch:
		need = Exec
	}
	// An access that straddles a page boundary needs permission on both
	// pages; with power-of-two sizes and alignment enforced above, an
	// access never straddles, so one page check suffices.
	page := (addr - s.Base) / PageSize
	if s.perms[page]&need == 0 {
		return nil, 0, &Fault{Kind: FaultProt, Acc: acc, Addr: addr, Size: size}
	}
	if acc == AccStore && s.dirty != nil {
		s.dirty[page/64] |= 1 << (page % 64)
	}
	return s, addr - s.Base, nil
}

// LoadU8 loads a byte.
func (m *Memory) LoadU8(addr uint32) (uint8, *Fault) {
	s, off, f := m.check(addr, 1, AccLoad)
	if f != nil {
		return 0, f
	}
	return s.data[off], nil
}

// LoadU16 loads a little-endian halfword.
func (m *Memory) LoadU16(addr uint32) (uint16, *Fault) {
	s, off, f := m.check(addr, 2, AccLoad)
	if f != nil {
		return 0, f
	}
	return binary.LittleEndian.Uint16(s.data[off:]), nil
}

// LoadU32 loads a little-endian word.
func (m *Memory) LoadU32(addr uint32) (uint32, *Fault) {
	s, off, f := m.check(addr, 4, AccLoad)
	if f != nil {
		return 0, f
	}
	return binary.LittleEndian.Uint32(s.data[off:]), nil
}

// LoadU64 loads a little-endian doubleword.
func (m *Memory) LoadU64(addr uint32) (uint64, *Fault) {
	s, off, f := m.check(addr, 8, AccLoad)
	if f != nil {
		return 0, f
	}
	return binary.LittleEndian.Uint64(s.data[off:]), nil
}

// StoreU8 stores a byte.
func (m *Memory) StoreU8(addr uint32, v uint8) *Fault {
	s, off, f := m.check(addr, 1, AccStore)
	if f != nil {
		return f
	}
	s.data[off] = v
	return nil
}

// StoreU16 stores a little-endian halfword.
func (m *Memory) StoreU16(addr uint32, v uint16) *Fault {
	s, off, f := m.check(addr, 2, AccStore)
	if f != nil {
		return f
	}
	binary.LittleEndian.PutUint16(s.data[off:], v)
	return nil
}

// StoreU32 stores a little-endian word.
func (m *Memory) StoreU32(addr uint32, v uint32) *Fault {
	s, off, f := m.check(addr, 4, AccStore)
	if f != nil {
		return f
	}
	binary.LittleEndian.PutUint32(s.data[off:], v)
	return nil
}

// StoreU64 stores a little-endian doubleword.
func (m *Memory) StoreU64(addr uint32, v uint64) *Fault {
	s, off, f := m.check(addr, 8, AccStore)
	if f != nil {
		return f
	}
	binary.LittleEndian.PutUint64(s.data[off:], v)
	return nil
}

// CheckFetch validates that addr may be used as a code target (used by
// the indirect-branch path of interpreters; translated code uses SFI
// sandboxing instead).
func (m *Memory) CheckFetch(addr uint32) *Fault {
	_, _, f := m.check(addr, 1, AccFetch)
	return f
}

// ReadBytes copies n bytes starting at addr, honoring read permission.
func (m *Memory) ReadBytes(addr uint32, n int) ([]byte, *Fault) {
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		b, f := m.LoadU8(addr + uint32(i))
		if f != nil {
			return nil, f
		}
		out[i] = b
	}
	return out, nil
}

// WriteBytes stores b starting at addr, honoring write permission.
func (m *Memory) WriteBytes(addr uint32, b []byte) *Fault {
	for i, v := range b {
		if f := m.StoreU8(addr+uint32(i), v); f != nil {
			return f
		}
	}
	return nil
}

// ReadCString reads a NUL-terminated string of at most max bytes.
func (m *Memory) ReadCString(addr uint32, max int) (string, *Fault) {
	var out []byte
	for i := 0; i < max; i++ {
		b, f := m.LoadU8(addr + uint32(i))
		if f != nil {
			return "", f
		}
		if b == 0 {
			break
		}
		out = append(out, b)
	}
	return string(out), nil
}
