package seg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMapAndAccess(t *testing.T) {
	var m Memory
	s, err := m.Map("data", 0x20000000, 8192, Read|Write)
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != 8192 {
		t.Fatalf("size %d", s.Size())
	}
	if f := m.StoreU32(0x20000000, 0xdeadbeef); f != nil {
		t.Fatal(f)
	}
	v, f := m.LoadU32(0x20000000)
	if f != nil || v != 0xdeadbeef {
		t.Fatalf("load: %v %#x", f, v)
	}
	// Little-endian byte order is part of the OmniVM definition.
	b, _ := m.LoadU8(0x20000000)
	if b != 0xef {
		t.Fatalf("byte order: got %#x", b)
	}
}

func TestSizeRoundsToPage(t *testing.T) {
	var m Memory
	s, err := m.Map("d", 0x1000, 10, Read)
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != PageSize {
		t.Fatalf("size %d, want %d", s.Size(), PageSize)
	}
}

func TestMapErrors(t *testing.T) {
	var m Memory
	if _, err := m.Map("a", 0x1001, 10, Read); err == nil {
		t.Error("unaligned base accepted")
	}
	if _, err := m.Map("a", 0x1000, 0, Read); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := m.Map("a", 0x1000, 0x2000, Read); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Map("b", 0x2000, 0x1000, Read); err == nil {
		t.Error("overlap accepted")
	}
	if _, err := m.Map("c", 0xfffff000, 0x2000, Read); err == nil {
		t.Error("wrapping segment accepted")
	}
}

func TestUnmap(t *testing.T) {
	var m Memory
	if _, err := m.Map("a", 0x1000, 0x1000, Read); err != nil {
		t.Fatal(err)
	}
	if err := m.Unmap(0x1000); err != nil {
		t.Fatal(err)
	}
	if _, f := m.LoadU8(0x1000); f == nil {
		t.Error("access to unmapped segment succeeded")
	}
	if err := m.Unmap(0x1000); err == nil {
		t.Error("double unmap succeeded")
	}
}

func TestFaults(t *testing.T) {
	var m Memory
	if _, err := m.Map("ro", 0x1000, 0x1000, Read); err != nil {
		t.Fatal(err)
	}
	if f := m.StoreU32(0x1000, 1); f == nil || f.Kind != FaultProt || f.Acc != AccStore {
		t.Errorf("store to read-only: %v", f)
	}
	if _, f := m.LoadU32(0x5000); f == nil || f.Kind != FaultUnmapped {
		t.Errorf("unmapped load: %v", f)
	}
	if _, f := m.LoadU32(0x1002); f == nil || f.Kind != FaultUnaligned {
		t.Errorf("unaligned load: %v", f)
	}
	// Straddling the segment end.
	if _, f := m.LoadU64(0x1ff8); f != nil {
		t.Errorf("last doubleword: %v", f)
	}
	if _, f := m.LoadU32(0x2000); f == nil {
		t.Error("access past end succeeded")
	}
	if f := m.CheckFetch(0x1000); f == nil || f.Kind != FaultProt {
		t.Errorf("fetch from non-exec: %v", f)
	}
	var fe *Fault
	fe = &Fault{Kind: FaultProt, Acc: AccStore, Addr: 0x1234, Size: 4}
	if fe.Error() == "" {
		t.Error("empty fault message")
	}
}

func TestProtect(t *testing.T) {
	var m Memory
	if _, err := m.Map("d", 0x10000, 4*PageSize, Read|Write); err != nil {
		t.Fatal(err)
	}
	// Write-protect the middle two pages (the paper's multi-page segment
	// write protection).
	if err := m.Protect(0x10000+PageSize, 2*PageSize, Read); err != nil {
		t.Fatal(err)
	}
	if f := m.StoreU8(0x10000, 1); f != nil {
		t.Errorf("page 0 should be writable: %v", f)
	}
	if f := m.StoreU8(0x10000+PageSize, 1); f == nil {
		t.Error("page 1 write should fault")
	}
	if f := m.StoreU8(0x10000+3*PageSize, 1); f != nil {
		t.Errorf("page 3 should be writable: %v", f)
	}
	if got := m.PermsAt(0x10000 + PageSize); got != Read {
		t.Errorf("PermsAt = %v", got)
	}
	if m.PermsAt(0xdead0000) != 0 {
		t.Error("unmapped PermsAt nonzero")
	}
	// Errors.
	if err := m.Protect(0x10000+1, PageSize, Read); err == nil {
		t.Error("unaligned protect accepted")
	}
	if err := m.Protect(0x10000, 64*PageSize, Read); err == nil {
		t.Error("oversize protect accepted")
	}
	if err := m.Protect(0x90000, PageSize, Read); err == nil {
		t.Error("protect of unmapped accepted")
	}
}

func TestFindBinarySearch(t *testing.T) {
	var m Memory
	bases := []uint32{0x1000, 0x5000, 0x9000, 0x20000, 0xA0000000}
	for _, b := range bases {
		if _, err := m.Map("s", b, PageSize, Read); err != nil {
			t.Fatal(err)
		}
	}
	for _, b := range bases {
		if s := m.Find(b); s == nil || s.Base != b {
			t.Errorf("Find(%#x) = %v", b, s)
		}
		if s := m.Find(b + PageSize - 1); s == nil || s.Base != b {
			t.Errorf("Find(end of %#x) = %v", b, s)
		}
		if s := m.Find(b + PageSize); s != nil && s.Base == b {
			t.Errorf("Find past end of %#x returned it", b)
		}
	}
	if m.Find(0) != nil {
		t.Error("Find(0) nonnil")
	}
	if len(m.Segments()) != len(bases) {
		t.Errorf("Segments: %d", len(m.Segments()))
	}
}

// Property: a store followed by a load of the same size at the same
// address returns the stored value, independent of where in a writable
// segment it lands.
func TestStoreLoadRoundTrip(t *testing.T) {
	var m Memory
	const base = 0x40000
	if _, err := m.Map("d", base, 16*PageSize, Read|Write); err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		size := 1 << r.Intn(4) // 1,2,4,8
		off := uint32(r.Intn(16*PageSize-8)) &^ uint32(size-1)
		addr := base + off
		switch size {
		case 1:
			v := uint8(r.Uint32())
			if f := m.StoreU8(addr, v); f != nil {
				return false
			}
			got, f := m.LoadU8(addr)
			return f == nil && got == v
		case 2:
			v := uint16(r.Uint32())
			if f := m.StoreU16(addr, v); f != nil {
				return false
			}
			got, f := m.LoadU16(addr)
			return f == nil && got == v
		case 4:
			v := r.Uint32()
			if f := m.StoreU32(addr, v); f != nil {
				return false
			}
			got, f := m.LoadU32(addr)
			return f == nil && got == v
		default:
			v := r.Uint64()
			if f := m.StoreU64(addr, v); f != nil {
				return false
			}
			got, f := m.LoadU64(addr)
			return f == nil && got == v
		}
	}
	// Pinned generator seed: quick's default Rand is time-seeded, and a
	// reproducible failure beats marginal extra coverage.
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Fatal(err)
	}
}

func TestStrings(t *testing.T) {
	var m Memory
	if _, err := m.Map("d", 0x1000, PageSize, Read|Write); err != nil {
		t.Fatal(err)
	}
	if f := m.WriteBytes(0x1000, []byte("hello\x00")); f != nil {
		t.Fatal(f)
	}
	s, f := m.ReadCString(0x1000, 64)
	if f != nil || s != "hello" {
		t.Fatalf("ReadCString = %q, %v", s, f)
	}
	b, f := m.ReadBytes(0x1000, 5)
	if f != nil || string(b) != "hello" {
		t.Fatalf("ReadBytes = %q, %v", b, f)
	}
	if _, f := m.ReadBytes(0x1000+PageSize-2, 5); f == nil {
		t.Error("ReadBytes past segment succeeded")
	}
	if Perm(Read|Write).String() != "rw-" {
		t.Error("perm string")
	}
}
