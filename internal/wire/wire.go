// Package wire defines the Omniware Module Wire format (OMW): the
// versioned, deterministic binary representation of an ovm.Module used
// everywhere a module crosses a trust or process boundary — network
// upload, on-disk storage, and translation-cache keying. The design
// goals, in order:
//
//   - Deterministic: one module has exactly one encoding, so the
//     SHA-256 of the wire bytes is a content address. Section order,
//     field order, and integer widths are all fixed; there is no
//     map iteration, padding, or optionality anywhere.
//   - Self-checking: a fixed header carries a section table with a
//     CRC-32 per section, so bit rot and truncation are detected
//     before any payload is parsed.
//   - Bounded: every count and length is validated against explicit
//     limits before allocation, so a hostile 40-byte blob cannot ask
//     the decoder for gigabytes. Decoding is strict — unknown
//     sections, out-of-order sections, trailing bytes, and mismatched
//     lengths are all errors, never ignored.
//
// The wire format deliberately carries less than the OMX object
// format: only what a host needs to load, translate, and run a module
// (text, data, bss/entry/base header, symbols for the host ABI, and
// code-pointer fixups). Decoded modules satisfy the same invariants
// ovm.DecodeModule enforces (entry in range, text well formed).
package wire

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"

	"omniware/internal/ovm"
)

// Magic opens every OMW blob. The trailing byte is the major format
// version in ASCII; incompatible revisions bump it.
const Magic = "OMW1"

// Version is the current minor format version, checked exactly: the
// decoder refuses blobs from the future rather than misparse them.
const Version = 1

// Decode limits. These bound allocation before any payload is
// trusted; they are far above anything the tool chain emits but far
// below anything that could hurt the host.
const (
	MaxModuleBytes = 64 << 20 // whole-blob size cap
	MaxTextInsts   = 2 << 20  // instructions
	MaxDataBytes   = 32 << 20
	MaxBSSBytes    = 64 << 20
	MaxSymbols     = 1 << 20
	MaxNameBytes   = 4096 // one symbol name
	MaxCodePtrs    = 1 << 20
)

// Section identifiers, in the exact order sections appear. v1 blobs
// contain all five, always.
const (
	secHead     = 1 // bssSize, entry, dataBase
	secText     = 2 // ovm text encoding (12 bytes/inst)
	secData     = 3 // raw initialized data image
	secSymbols  = 4 // count + (name, section, global, value)*
	secCodePtrs = 5 // count + offsets
	numSections = 5
)

// headerSize is magic + version + section count + numSections table
// entries of (id, length, crc32).
const headerSize = 4 + 4 + 4 + numSections*12

// Error classes. Decode errors wrap one of these so callers can
// distinguish "not an OMW blob at all" from "an OMW blob that failed
// validation" (the latter is what a cache quarantines).
var (
	ErrBadMagic   = errors.New("wire: bad magic")
	ErrBadVersion = errors.New("wire: unsupported version")
	ErrCorrupt    = errors.New("wire: corrupt module")
	ErrTooLarge   = errors.New("wire: limit exceeded")
)

// EncodeModule serializes mod into its canonical OMW representation.
// Encoding is total for any module the linker can produce; it returns
// an error only if the module itself violates a wire limit.
func EncodeModule(mod *ovm.Module) ([]byte, error) {
	if len(mod.Text) > MaxTextInsts {
		return nil, fmt.Errorf("%w: %d text instructions (max %d)", ErrTooLarge, len(mod.Text), MaxTextInsts)
	}
	if len(mod.Data) > MaxDataBytes {
		return nil, fmt.Errorf("%w: %d data bytes (max %d)", ErrTooLarge, len(mod.Data), MaxDataBytes)
	}
	if mod.BSSSize > MaxBSSBytes {
		return nil, fmt.Errorf("%w: bss %d bytes (max %d)", ErrTooLarge, mod.BSSSize, MaxBSSBytes)
	}
	if len(mod.Symbols) > MaxSymbols {
		return nil, fmt.Errorf("%w: %d symbols (max %d)", ErrTooLarge, len(mod.Symbols), MaxSymbols)
	}
	if len(mod.CodePtrs) > MaxCodePtrs {
		return nil, fmt.Errorf("%w: %d code pointers (max %d)", ErrTooLarge, len(mod.CodePtrs), MaxCodePtrs)
	}
	for _, s := range mod.Symbols {
		if len(s.Name) > MaxNameBytes {
			return nil, fmt.Errorf("%w: symbol name %d bytes (max %d)", ErrTooLarge, len(s.Name), MaxNameBytes)
		}
	}

	sections := make([][]byte, numSections)
	sections[secHead-1] = encodeHead(mod)
	sections[secText-1] = ovm.EncodeText(mod.Text)
	sections[secData-1] = mod.Data
	sections[secSymbols-1] = encodeSymbols(mod.Symbols)
	sections[secCodePtrs-1] = encodeCodePtrs(mod.CodePtrs)

	total := headerSize
	for _, s := range sections {
		total += len(s)
	}
	if total > MaxModuleBytes {
		return nil, fmt.Errorf("%w: encoded module %d bytes (max %d)", ErrTooLarge, total, MaxModuleBytes)
	}

	out := make([]byte, 0, total)
	out = append(out, Magic...)
	out = appendU32(out, Version)
	out = appendU32(out, numSections)
	for i, s := range sections {
		out = appendU32(out, uint32(i+1))
		out = appendU32(out, uint32(len(s)))
		out = appendU32(out, crc32.ChecksumIEEE(s))
	}
	for _, s := range sections {
		out = append(out, s...)
	}
	return out, nil
}

// DecodeModule parses an OMW blob, enforcing the format strictly:
// exact magic and version, canonical section table, verified
// checksums, in-bounds counts, and no trailing bytes. The returned
// module passes the same structural checks ovm.DecodeModule applies.
func DecodeModule(data []byte) (*ovm.Module, error) {
	if len(data) > MaxModuleBytes {
		return nil, fmt.Errorf("%w: blob is %d bytes (max %d)", ErrTooLarge, len(data), MaxModuleBytes)
	}
	if len(data) < headerSize || string(data[:4]) != Magic {
		return nil, ErrBadMagic
	}
	if v := getU32(data[4:]); v != Version {
		return nil, fmt.Errorf("%w: %d (have %d)", ErrBadVersion, v, Version)
	}
	if n := getU32(data[8:]); n != numSections {
		return nil, fmt.Errorf("%w: %d sections (want %d)", ErrCorrupt, n, numSections)
	}
	// Walk the table: ids must be 1..numSections in order, payloads
	// contiguous, lengths summing exactly to the blob end.
	type sect struct {
		off, n int
		crc    uint32
	}
	var tbl [numSections]sect
	off := headerSize
	for i := 0; i < numSections; i++ {
		e := data[12+i*12:]
		if id := getU32(e); id != uint32(i+1) {
			return nil, fmt.Errorf("%w: section %d has id %d", ErrCorrupt, i, id)
		}
		n := int(getU32(e[4:]))
		if n < 0 || n > len(data)-off {
			return nil, fmt.Errorf("%w: section %d length %d overruns blob", ErrCorrupt, i+1, n)
		}
		tbl[i] = sect{off: off, n: n, crc: getU32(e[8:])}
		off += n
	}
	if off != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(data)-off)
	}
	for i, s := range tbl {
		if got := crc32.ChecksumIEEE(data[s.off : s.off+s.n]); got != s.crc {
			return nil, fmt.Errorf("%w: section %d checksum mismatch (stored %08x, computed %08x)", ErrCorrupt, i+1, s.crc, got)
		}
	}
	body := func(id int) []byte { return data[tbl[id-1].off : tbl[id-1].off+tbl[id-1].n] }

	mod := &ovm.Module{}
	if err := decodeHead(body(secHead), mod); err != nil {
		return nil, err
	}
	text := body(secText)
	if len(text)/ovm.InstBytes > MaxTextInsts {
		return nil, fmt.Errorf("%w: %d text instructions (max %d)", ErrTooLarge, len(text)/ovm.InstBytes, MaxTextInsts)
	}
	var err error
	if mod.Text, err = ovm.DecodeText(text); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if len(body(secData)) > MaxDataBytes {
		return nil, fmt.Errorf("%w: %d data bytes (max %d)", ErrTooLarge, len(body(secData)), MaxDataBytes)
	}
	// Copy so the module never aliases the (caller-owned) blob.
	mod.Data = append([]byte(nil), body(secData)...)
	if mod.Symbols, err = decodeSymbols(body(secSymbols)); err != nil {
		return nil, err
	}
	if mod.CodePtrs, err = decodeCodePtrs(body(secCodePtrs)); err != nil {
		return nil, err
	}
	// Cross-section invariants, mirroring ovm.DecodeModule.
	if mod.Entry < 0 || int(mod.Entry) >= len(mod.Text) {
		return nil, fmt.Errorf("%w: entry point %d out of range (%d instructions)", ErrCorrupt, mod.Entry, len(mod.Text))
	}
	for _, p := range mod.CodePtrs {
		if int64(p)+4 > int64(len(mod.Data)) {
			return nil, fmt.Errorf("%w: code pointer offset %d outside data image (%d bytes)", ErrCorrupt, p, len(mod.Data))
		}
	}
	return mod, nil
}

// Hash returns the content address of an OMW blob: the hex SHA-256 of
// its bytes. Because encoding is canonical, equal modules hash equal.
func Hash(blob []byte) string {
	h := sha256.Sum256(blob)
	return hex.EncodeToString(h[:])
}

// HashModule is Hash over the canonical encoding of mod. It panics
// only if the module exceeds wire limits, which the tool chain cannot
// produce; callers holding untrusted modules encode explicitly.
func HashModule(mod *ovm.Module) string {
	blob, err := EncodeModule(mod)
	if err != nil {
		panic("wire: hashing unencodable module: " + err.Error())
	}
	return Hash(blob)
}

func encodeHead(mod *ovm.Module) []byte {
	out := make([]byte, 0, 12)
	out = appendU32(out, mod.BSSSize)
	out = appendU32(out, uint32(mod.Entry))
	out = appendU32(out, mod.DataBase)
	return out
}

func decodeHead(b []byte, mod *ovm.Module) error {
	if len(b) != 12 {
		return fmt.Errorf("%w: head section is %d bytes (want 12)", ErrCorrupt, len(b))
	}
	mod.BSSSize = getU32(b)
	if mod.BSSSize > MaxBSSBytes {
		return fmt.Errorf("%w: bss %d bytes (max %d)", ErrTooLarge, mod.BSSSize, MaxBSSBytes)
	}
	mod.Entry = int32(getU32(b[4:]))
	mod.DataBase = getU32(b[8:])
	return nil
}

func encodeSymbols(syms []ovm.Symbol) []byte {
	n := 4
	for _, s := range syms {
		n += 4 + len(s.Name) + 6
	}
	out := make([]byte, 0, n)
	out = appendU32(out, uint32(len(syms)))
	for _, s := range syms {
		out = appendU32(out, uint32(len(s.Name)))
		out = append(out, s.Name...)
		out = append(out, byte(s.Section))
		if s.Global {
			out = append(out, 1)
		} else {
			out = append(out, 0)
		}
		out = appendU32(out, s.Value)
	}
	return out
}

func decodeSymbols(b []byte) ([]ovm.Symbol, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("%w: short symbol section", ErrCorrupt)
	}
	n := int(getU32(b))
	b = b[4:]
	if n < 0 || n > MaxSymbols {
		return nil, fmt.Errorf("%w: %d symbols (max %d)", ErrTooLarge, n, MaxSymbols)
	}
	if n == 0 {
		if len(b) != 0 {
			return nil, fmt.Errorf("%w: %d trailing bytes after symbols", ErrCorrupt, len(b))
		}
		return nil, nil
	}
	// Each symbol needs at least 10 bytes; reject inflated counts
	// before allocating.
	if n > len(b)/10 {
		return nil, fmt.Errorf("%w: %d symbols in %d bytes", ErrCorrupt, n, len(b))
	}
	syms := make([]ovm.Symbol, 0, n)
	for i := 0; i < n; i++ {
		if len(b) < 4 {
			return nil, fmt.Errorf("%w: truncated symbol %d", ErrCorrupt, i)
		}
		nameLen := int(getU32(b))
		b = b[4:]
		if nameLen < 0 || nameLen > MaxNameBytes || nameLen > len(b)-6 {
			return nil, fmt.Errorf("%w: symbol %d name length %d", ErrCorrupt, i, nameLen)
		}
		var s ovm.Symbol
		s.Name = string(b[:nameLen])
		b = b[nameLen:]
		if b[0] > byte(ovm.SecUndef) {
			return nil, fmt.Errorf("%w: symbol %d has section %d", ErrCorrupt, i, b[0])
		}
		if b[1] > 1 {
			return nil, fmt.Errorf("%w: symbol %d global flag %d", ErrCorrupt, i, b[1])
		}
		s.Section = ovm.Section(b[0])
		s.Global = b[1] == 1
		s.Value = getU32(b[2:])
		b = b[6:]
		syms = append(syms, s)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after symbols", ErrCorrupt, len(b))
	}
	return syms, nil
}

func encodeCodePtrs(ptrs []uint32) []byte {
	out := make([]byte, 0, 4+4*len(ptrs))
	out = appendU32(out, uint32(len(ptrs)))
	for _, p := range ptrs {
		out = appendU32(out, p)
	}
	return out
}

func decodeCodePtrs(b []byte) ([]uint32, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("%w: short code-pointer section", ErrCorrupt)
	}
	n := int(getU32(b))
	b = b[4:]
	if n < 0 || n > MaxCodePtrs {
		return nil, fmt.Errorf("%w: %d code pointers (max %d)", ErrTooLarge, n, MaxCodePtrs)
	}
	if len(b) != 4*n {
		return nil, fmt.Errorf("%w: code-pointer section is %d bytes for %d entries", ErrCorrupt, len(b), n)
	}
	if n == 0 {
		return nil, nil
	}
	ptrs := make([]uint32, n)
	for i := range ptrs {
		ptrs[i] = getU32(b[4*i:])
	}
	return ptrs, nil
}

func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func getU32(b []byte) uint32 { return binary.LittleEndian.Uint32(b) }
