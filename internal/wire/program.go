// Program codec: the on-disk representation of a translated
// target.Program, used by the translation cache's persistent tier.
// Like the module format it is versioned, deterministic, and strictly
// bounded — but unlike a module, a decoded program is NEVER trusted:
// the cache re-runs the SFI verifier on every program read back from
// disk before it can be served (see internal/mcache). The codec's own
// validation is purely structural (opcodes, registers and indices in
// range) so a decoded program cannot crash the verifier or simulator.

package wire

import (
	"fmt"
	"hash/crc32"

	"omniware/internal/target"
)

// ProgMagic opens every encoded program.
const ProgMagic = "OWP1"

// MaxProgInsts bounds the decoded code and address-map lengths.
const MaxProgInsts = 8 << 20

// progHeaderSize is magic + version + arch + entry + ncode + nmap +
// payload crc32.
const progHeaderSize = 4 + 4 + 4 + 4 + 4 + 4 + 4

// instBytes is the fixed encoding width of one target.Inst:
// op, rd, rs1, rs2, cc, cat, flags, pad, imm, target, src.
const instBytes = 8 + 4 + 4 + 4

// EncodeProgram serializes prog. Programs still carrying unresolved
// relocation marks (Inst.Sym) are back-end intermediates, not
// executable artifacts, and are refused.
func EncodeProgram(prog *target.Program) ([]byte, error) {
	if len(prog.Code) > MaxProgInsts {
		return nil, fmt.Errorf("%w: %d instructions (max %d)", ErrTooLarge, len(prog.Code), MaxProgInsts)
	}
	if len(prog.OmniToNative) > MaxProgInsts {
		return nil, fmt.Errorf("%w: %d map entries (max %d)", ErrTooLarge, len(prog.OmniToNative), MaxProgInsts)
	}
	payload := make([]byte, 0, len(prog.Code)*instBytes+len(prog.OmniToNative)*4+int(target.NumCats)*4)
	for i, in := range prog.Code {
		if in.Sym != "" {
			return nil, fmt.Errorf("wire: instruction %d carries unresolved relocation %q", i, in.Sym)
		}
		var flags byte
		if in.MemSrc {
			flags |= 1
		}
		if in.MemDst {
			flags |= 2
		}
		if in.Indexed {
			flags |= 4
		}
		payload = append(payload, byte(in.Op), byte(in.Rd), byte(in.Rs1), byte(in.Rs2),
			byte(in.CC), byte(in.Cat), flags, 0)
		payload = appendU32(payload, uint32(in.Imm))
		payload = appendU32(payload, uint32(in.Target))
		payload = appendU32(payload, uint32(in.Src))
	}
	for _, v := range prog.OmniToNative {
		payload = appendU32(payload, uint32(v))
	}
	for _, c := range prog.Static {
		payload = appendU32(payload, uint32(c))
	}

	out := make([]byte, 0, progHeaderSize+len(payload))
	out = append(out, ProgMagic...)
	out = appendU32(out, Version)
	out = appendU32(out, uint32(prog.Arch))
	out = appendU32(out, uint32(prog.Entry))
	out = appendU32(out, uint32(len(prog.Code)))
	out = appendU32(out, uint32(len(prog.OmniToNative)))
	out = appendU32(out, crc32.ChecksumIEEE(payload))
	return append(out, payload...), nil
}

// DecodeProgram parses an encoded program, rejecting anything
// structurally out of range. The result is well formed but UNVERIFIED:
// callers must pass it through sfi.Check before execution.
func DecodeProgram(data []byte) (*target.Program, error) {
	if len(data) < progHeaderSize || string(data[:4]) != ProgMagic {
		return nil, ErrBadMagic
	}
	if v := getU32(data[4:]); v != Version {
		return nil, fmt.Errorf("%w: %d (have %d)", ErrBadVersion, v, Version)
	}
	arch := getU32(data[8:])
	if arch > uint32(target.X86) {
		return nil, fmt.Errorf("%w: unknown arch %d", ErrCorrupt, arch)
	}
	entry := int32(getU32(data[12:]))
	ncode := int(getU32(data[16:]))
	nmap := int(getU32(data[20:]))
	if ncode < 0 || ncode > MaxProgInsts || nmap < 0 || nmap > MaxProgInsts {
		return nil, fmt.Errorf("%w: %d instructions / %d map entries (max %d)", ErrTooLarge, ncode, nmap, MaxProgInsts)
	}
	payload := data[progHeaderSize:]
	want := ncode*instBytes + nmap*4 + int(target.NumCats)*4
	if len(payload) != want {
		return nil, fmt.Errorf("%w: payload is %d bytes, header promises %d", ErrCorrupt, len(payload), want)
	}
	if got := crc32.ChecksumIEEE(payload); got != getU32(data[24:]) {
		return nil, fmt.Errorf("%w: payload checksum mismatch", ErrCorrupt)
	}
	if entry < 0 || (ncode > 0 && int(entry) >= ncode) || (ncode == 0 && entry != 0) {
		return nil, fmt.Errorf("%w: entry %d out of range (%d instructions)", ErrCorrupt, entry, ncode)
	}

	prog := &target.Program{Arch: target.Arch(arch), Entry: entry}
	prog.Code = make([]target.Inst, ncode)
	for i := range prog.Code {
		b := payload[i*instBytes:]
		in := &prog.Code[i]
		in.Op = target.Op(b[0])
		in.Rd = target.Reg(int8(b[1]))
		in.Rs1 = target.Reg(int8(b[2]))
		in.Rs2 = target.Reg(int8(b[3]))
		in.CC = target.CC(b[4])
		in.Cat = target.ExpCat(b[5])
		flags := b[6]
		if in.Op >= target.NumOps {
			return nil, fmt.Errorf("%w: instruction %d has opcode %d", ErrCorrupt, i, in.Op)
		}
		if in.Cat >= target.NumCats {
			return nil, fmt.Errorf("%w: instruction %d has category %d", ErrCorrupt, i, in.Cat)
		}
		if in.CC > target.CCGeU {
			return nil, fmt.Errorf("%w: instruction %d has condition %d", ErrCorrupt, i, in.CC)
		}
		for _, r := range []target.Reg{in.Rd, in.Rs1, in.Rs2} {
			if r < target.NoReg || r > 63 {
				return nil, fmt.Errorf("%w: instruction %d has register %d", ErrCorrupt, i, r)
			}
		}
		if flags > 7 || b[7] != 0 {
			return nil, fmt.Errorf("%w: instruction %d has flag bits %d/%d", ErrCorrupt, i, flags, b[7])
		}
		in.MemSrc = flags&1 != 0
		in.MemDst = flags&2 != 0
		in.Indexed = flags&4 != 0
		in.Imm = int32(getU32(b[8:]))
		in.Target = int32(getU32(b[12:]))
		in.Src = int32(getU32(b[16:]))
	}
	mapOff := ncode * instBytes
	if nmap > 0 {
		prog.OmniToNative = make([]int32, nmap)
		for i := range prog.OmniToNative {
			v := int32(getU32(payload[mapOff+4*i:]))
			if v < -1 || (v >= 0 && int(v) > ncode) {
				return nil, fmt.Errorf("%w: address map entry %d is %d (%d instructions)", ErrCorrupt, i, v, ncode)
			}
			prog.OmniToNative[i] = v
		}
	}
	statOff := mapOff + 4*nmap
	for i := range prog.Static {
		prog.Static[i] = int(getU32(payload[statOff+4*i:]))
	}
	return prog, nil
}
