package wire_test

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"omniware/internal/ovm"
	"omniware/internal/wire"
)

// The decoder is the first thing untrusted network bytes hit, so it is
// fuzzed: any input must either error or yield a module whose
// re-encoding is canonical (decode∘encode∘decode is the identity).
// The seed corpus under testdata/fuzz/FuzzDecodeModule is checked in;
// `go test` (no -fuzz flag) runs every seed as a regular test case,
// and TestSeedCorpus below additionally asserts seed-specific
// outcomes so corpus rot is caught even if the fuzz driver changes.

var regenCorpus = flag.Bool("regen-corpus", false, "rewrite the checked-in fuzz seed corpus")

func FuzzDecodeModule(f *testing.F) {
	for _, seed := range corpusSeeds(f) {
		f.Add(seed.data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		mod, err := wire.DecodeModule(data)
		if err != nil {
			return
		}
		blob, err := wire.EncodeModule(mod)
		if err != nil {
			t.Fatalf("decoded module fails to re-encode: %v", err)
		}
		again, err := wire.DecodeModule(blob)
		if err != nil {
			t.Fatalf("canonical re-encoding fails to decode: %v", err)
		}
		if !reflect.DeepEqual(again, mod) {
			t.Fatal("decode/encode/decode is not a fixed point")
		}
	})
}

// FuzzDecodeProgram covers the disk-tier program decoder with the same
// contract.
func FuzzDecodeProgram(f *testing.F) {
	f.Add([]byte(wire.ProgMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		prog, err := wire.DecodeProgram(data)
		if err != nil {
			return
		}
		blob, err := wire.EncodeProgram(prog)
		if err != nil {
			t.Fatalf("decoded program fails to re-encode: %v", err)
		}
		if again, err := wire.DecodeProgram(blob); err != nil || !reflect.DeepEqual(again, prog) {
			t.Fatalf("decode/encode/decode not a fixed point: %v", err)
		}
	})
}

type seed struct {
	name  string
	data  []byte
	valid bool // must decode cleanly
}

// buildSeeds constructs the corpus contents: one well-formed module
// and a gallery of near-misses targeting each validation layer.
func buildSeeds(t testing.TB) []seed {
	mod := &ovm.Module{
		Text: []ovm.Inst{{Op: ovm.HALT}, {Op: ovm.HALT}},
		Data: []byte{1, 2, 3, 4, 5, 6, 7, 8},
		// Code pointer at offset 4 keeps the cross-section check honest.
		BSSSize:  64,
		Entry:    1,
		DataBase: 0x10000000,
		Symbols:  []ovm.Symbol{{Name: "main", Section: ovm.SecText, Value: 1, Global: true}},
		CodePtrs: []uint32{4},
	}
	valid, err := wire.EncodeModule(mod)
	if err != nil {
		t.Fatal(err)
	}
	flip := func(off int, bit byte) []byte {
		b := append([]byte(nil), valid...)
		b[off] ^= bit
		return b
	}
	return []seed{
		{"valid", valid, true},
		{"empty", nil, false},
		{"magic-only", []byte(wire.Magic), false},
		{"bad-magic", flip(0, 0x20), false},
		{"future-version", flip(4, 0x40), false},
		{"bad-section-count", flip(8, 0x01), false},
		{"bad-crc", flip(20, 0x01), false},
		{"payload-flip", flip(len(valid)-1, 0x80), false},
		{"truncated", valid[:len(valid)/2], false},
		{"trailing-byte", append(append([]byte(nil), valid...), 0), false},
		{"huge-symbol-count", flip(len(valid)-22, 0x7f), false},
	}
}

const corpusDir = "testdata/fuzz/FuzzDecodeModule"

// corpusSeeds reads the checked-in corpus (regenerating it first under
// -regen-corpus) in Go's seed-corpus file format.
func corpusSeeds(t testing.TB) []seed {
	if *regenCorpus {
		if err := os.MkdirAll(corpusDir, 0o755); err != nil {
			t.Fatal(err)
		}
		for _, s := range buildSeeds(t) {
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", s.data)
			if err := os.WriteFile(filepath.Join(corpusDir, "seed-"+s.name), []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	names, err := filepath.Glob(filepath.Join(corpusDir, "seed-*"))
	if err != nil || len(names) == 0 {
		t.Fatalf("seed corpus missing under %s (err=%v); regenerate with -regen-corpus", corpusDir, err)
	}
	want := buildSeeds(t)
	byName := map[string]seed{}
	for _, s := range want {
		byName["seed-"+s.name] = s
	}
	var out []seed
	for _, name := range names {
		raw, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.SplitN(string(raw), "\n", 3)
		if len(lines) < 2 || lines[0] != "go test fuzz v1" {
			t.Fatalf("%s: not a go fuzz corpus file", name)
		}
		quoted := strings.TrimSuffix(strings.TrimPrefix(lines[1], "[]byte("), ")")
		decoded, err := strconv.Unquote(quoted)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		s, ok := byName[filepath.Base(name)]
		if !ok {
			t.Fatalf("%s: unknown corpus entry", name)
		}
		s.data = []byte(decoded)
		out = append(out, s)
	}
	return out
}

// TestSeedCorpus is the plain-`go test` regression pass over the
// checked-in corpus: every seed must decode (or fail) exactly as
// designed, and the checked-in bytes for the valid seed must match the
// current canonical encoding (catching accidental format drift).
func TestSeedCorpus(t *testing.T) {
	seeds := corpusSeeds(t)
	if len(seeds) != len(buildSeeds(t)) {
		t.Fatalf("corpus has %d entries, want %d; regenerate with -regen-corpus", len(seeds), len(buildSeeds(t)))
	}
	for _, s := range seeds {
		_, err := wire.DecodeModule(s.data)
		if s.valid && err != nil {
			t.Errorf("seed %s: %v", s.name, err)
		}
		if !s.valid && err == nil {
			t.Errorf("seed %s: corrupt input accepted", s.name)
		}
		if s.name == "valid" {
			for _, w := range buildSeeds(t) {
				if w.name == "valid" && !bytes.Equal(s.data, w.data) {
					t.Error("checked-in valid seed no longer matches the canonical encoding; " +
						"the wire format changed without a version bump — regenerate with -regen-corpus and bump Version")
				}
			}
		}
	}
}
