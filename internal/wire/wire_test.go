package wire_test

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"omniware/internal/cc"
	"omniware/internal/core"
	"omniware/internal/ovm"
	"omniware/internal/target"
	"omniware/internal/translate"
	"omniware/internal/wire"
)

const testSrc = `
int g[16];
int main(void) {
	int i, acc = 0;
	for (i = 0; i < 16; i++) { g[i] = i * 5; acc += g[i]; }
	_print_int(acc);
	return acc & 0x7f;
}`

func buildMod(t *testing.T) *ovm.Module {
	t.Helper()
	mod, err := core.BuildC([]core.SourceFile{{Name: "t.c", Src: testSrc}}, cc.Options{OptLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

func encode(t *testing.T, mod *ovm.Module) []byte {
	t.Helper()
	blob, err := wire.EncodeModule(mod)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

func TestModuleRoundTrip(t *testing.T) {
	mod := buildMod(t)
	blob := encode(t, mod)
	got, err := wire.DecodeModule(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, mod) {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", got, mod)
	}
	// The decoded module actually runs, and matches the original.
	h1, err := core.NewHost(mod, core.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := h1.RunInterp()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := core.NewHost(got, core.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := h2.RunInterp()
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != ref.ExitCode || h2.Output() != h1.Output() {
		t.Fatalf("decoded module diverged: exit %d/%d out %q/%q",
			res.ExitCode, ref.ExitCode, h2.Output(), h1.Output())
	}
}

func TestModuleRoundTripEdgeCases(t *testing.T) {
	mods := []*ovm.Module{
		// Minimal: one instruction, no data, no symbols.
		{Text: []ovm.Inst{{Op: ovm.HALT}}, DataBase: 0x10000000},
		// Data, bss, symbols of every section kind, code pointers.
		{
			Text:     []ovm.Inst{{Op: ovm.HALT}, {Op: ovm.HALT}},
			Data:     []byte{1, 2, 3, 4, 0, 0, 0, 9},
			BSSSize:  128,
			Entry:    1,
			DataBase: 0x10000000,
			Symbols: []ovm.Symbol{
				{Name: "main", Section: ovm.SecText, Value: 1, Global: true},
				{Name: "g", Section: ovm.SecData, Value: 0},
				{Name: "buf", Section: ovm.SecBSS, Value: 8},
				{Name: "", Section: ovm.SecUndef, Value: 0},
			},
			CodePtrs: []uint32{4},
		},
	}
	for i, mod := range mods {
		blob := encode(t, mod)
		got, err := wire.DecodeModule(blob)
		if err != nil {
			t.Fatalf("module %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, mod) {
			t.Fatalf("module %d diverged:\n got %+v\nwant %+v", i, got, mod)
		}
	}
}

// Encoding must be canonical: byte-identical across calls, and the
// hash is a content address.
func TestEncodingDeterministic(t *testing.T) {
	mod := buildMod(t)
	a := encode(t, mod)
	for i := 0; i < 8; i++ {
		if b := encode(t, mod); !bytes.Equal(a, b) {
			t.Fatalf("encoding %d differs", i)
		}
	}
	if wire.Hash(a) != wire.HashModule(mod) {
		t.Fatal("HashModule disagrees with Hash of the encoding")
	}
	other := buildMod(t)
	other.Data = append([]byte(nil), other.Data...)
	if len(other.Data) > 0 {
		other.Data[0] ^= 1
		if wire.HashModule(other) == wire.HashModule(mod) {
			t.Fatal("distinct modules hash equal")
		}
	}
}

// Every single-byte corruption of the blob must be rejected or decode
// to the identical module — never misparse. (Payload corruptions are
// caught by the section CRCs; header corruptions by strict checks.)
func TestBitFlipsDetected(t *testing.T) {
	mod := buildMod(t)
	blob := encode(t, mod)
	// Exhaustive over the header and table, sampled over the payload.
	step := 1
	if len(blob) > 2048 {
		step = len(blob) / 2048
	}
	for off := 0; off < len(blob); off += step {
		for _, bit := range []byte{1, 0x80} {
			mut := append([]byte(nil), blob...)
			mut[off] ^= bit
			got, err := wire.DecodeModule(mut)
			if err != nil {
				continue
			}
			if !reflect.DeepEqual(got, mod) {
				t.Fatalf("flip at %d/%#x silently misparsed", off, bit)
			}
		}
	}
}

func TestTruncationsDetected(t *testing.T) {
	blob := encode(t, buildMod(t))
	for n := 0; n < len(blob); n += 7 {
		if _, err := wire.DecodeModule(blob[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	if _, err := wire.DecodeModule(append(append([]byte(nil), blob...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestDecodeRejections(t *testing.T) {
	valid := encode(t, buildMod(t))
	futureVersion := append([]byte(nil), valid...)
	futureVersion[4] = 99

	cases := []struct {
		name string
		blob []byte
		want error
	}{
		{"empty", nil, wire.ErrBadMagic},
		{"wrong magic", []byte("OMX1----------------------------------------------------------------------------"), wire.ErrBadMagic},
		{"future version", futureVersion, wire.ErrBadVersion},
	}
	for _, c := range cases {
		if _, err := wire.DecodeModule(c.blob); !errors.Is(err, c.want) {
			t.Errorf("%s: got %v, want %v", c.name, err, c.want)
		}
	}
}

func TestEncodeLimits(t *testing.T) {
	mod := &ovm.Module{
		Text:    []ovm.Inst{{Op: ovm.HALT}},
		Symbols: []ovm.Symbol{{Name: strings.Repeat("x", wire.MaxNameBytes+1)}},
	}
	if _, err := wire.EncodeModule(mod); !errors.Is(err, wire.ErrTooLarge) {
		t.Errorf("oversized symbol name encoded: %v", err)
	}
	mod = &ovm.Module{Text: []ovm.Inst{{Op: ovm.HALT}}, BSSSize: wire.MaxBSSBytes + 1}
	if _, err := wire.EncodeModule(mod); !errors.Is(err, wire.ErrTooLarge) {
		t.Errorf("oversized bss encoded: %v", err)
	}
}

// A decoded module must satisfy the loader's invariants even when the
// blob is internally consistent (checksums fixed up) but semantically
// wild — entry out of range, code pointer outside the data image.
func TestSemanticValidation(t *testing.T) {
	mod := &ovm.Module{
		Text:     []ovm.Inst{{Op: ovm.HALT}},
		Data:     []byte{0, 0, 0, 0},
		DataBase: 0x10000000,
	}
	bad := *mod
	bad.Entry = 5
	if _, err := wire.EncodeModule(&bad); err != nil {
		t.Fatal(err)
	}
	blob, _ := wire.EncodeModule(&bad)
	if _, err := wire.DecodeModule(blob); !errors.Is(err, wire.ErrCorrupt) {
		t.Errorf("out-of-range entry accepted: %v", err)
	}
	bad = *mod
	bad.CodePtrs = []uint32{4}
	blob, _ = wire.EncodeModule(&bad)
	if _, err := wire.DecodeModule(blob); !errors.Is(err, wire.ErrCorrupt) {
		t.Errorf("wild code pointer accepted: %v", err)
	}
}

func TestProgramRoundTrip(t *testing.T) {
	mod := buildMod(t)
	for _, mach := range target.Machines() {
		si := core.SegInfoFor(mod, core.RunConfig{})
		prog, err := translate.Translate(mod, mach, si, translate.Paper(true))
		if err != nil {
			t.Fatal(err)
		}
		blob, err := wire.EncodeProgram(prog)
		if err != nil {
			t.Fatalf("%s: %v", mach.Name, err)
		}
		got, err := wire.DecodeProgram(blob)
		if err != nil {
			t.Fatalf("%s: %v", mach.Name, err)
		}
		if !reflect.DeepEqual(got, prog) {
			t.Fatalf("%s: program round trip diverged", mach.Name)
		}
		// Determinism here too.
		blob2, _ := wire.EncodeProgram(prog)
		if !bytes.Equal(blob, blob2) {
			t.Fatalf("%s: program encoding not deterministic", mach.Name)
		}
	}
}

func TestProgramCorruptionDetected(t *testing.T) {
	mod := buildMod(t)
	si := core.SegInfoFor(mod, core.RunConfig{})
	prog, err := translate.Translate(mod, target.MIPSMachine(), si, translate.Paper(true))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := wire.EncodeProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(blob); n += 11 {
		if _, err := wire.DecodeProgram(blob[:n]); err == nil {
			t.Fatalf("truncation to %d accepted", n)
		}
	}
	mut := append([]byte(nil), blob...)
	mut[len(mut)-2] ^= 0x40 // payload flip: CRC must catch it
	if _, err := wire.DecodeProgram(mut); !errors.Is(err, wire.ErrCorrupt) {
		t.Errorf("payload corruption accepted: %v", err)
	}
	if _, err := wire.DecodeProgram([]byte("OWXX")); !errors.Is(err, wire.ErrBadMagic) {
		t.Error("bad magic accepted")
	}
	// An unresolved relocation mark must refuse to encode.
	marked := *prog
	marked.Code = append([]target.Inst(nil), prog.Code...)
	marked.Code[0].Sym = "pending"
	if _, err := wire.EncodeProgram(&marked); err == nil {
		t.Error("program with relocation marks encoded")
	}
}
