// Batch codec: the OMB frame packs several OMW module blobs into one
// request so a client warming a cluster node (or omniload seeding its
// workload mix) pays one HTTP round trip, not one per module. The
// frame is deliberately thin — a checksummed length table over opaque
// member blobs — because each member is a complete OMW encoding that
// carries its own section checksums and strict validation; the batch
// layer adds framing, not trust.
//
// DecodeBatch is zero-copy: the returned blobs are subslices of the
// input buffer, so splitting an N-module batch performs no per-module
// allocation or byte copying (ROADMAP item 1's open end). Callers that
// outlive the request buffer must copy — wire.DecodeModule already
// copies the sections it keeps, so the normal decode pipeline is safe.

package wire

import (
	"fmt"
	"hash/crc32"
)

// BatchMagic opens every OMB frame. Like the module magic, the
// trailing byte is the major version in ASCII.
const BatchMagic = "OMB1"

// MaxBatchModules bounds the member count before the length table is
// trusted.
const MaxBatchModules = 256

// MaxBatchBytes caps a whole frame: the module registry would refuse
// more anyway, and the decoder must bound allocation before parsing.
const MaxBatchBytes = 64 << 20

// batchHeaderSize is magic + version + count + table crc32.
const batchHeaderSize = 4 + 4 + 4 + 4

// EncodeBatch frames blobs into one OMB buffer. Members are opaque
// here (they are validated as OMW modules when decoded individually),
// but the frame limits still apply.
func EncodeBatch(blobs [][]byte) ([]byte, error) {
	if len(blobs) == 0 {
		return nil, fmt.Errorf("%w: empty batch", ErrCorrupt)
	}
	if len(blobs) > MaxBatchModules {
		return nil, fmt.Errorf("%w: %d modules in batch (max %d)", ErrTooLarge, len(blobs), MaxBatchModules)
	}
	total := batchHeaderSize + 4*len(blobs)
	for i, b := range blobs {
		if len(b) == 0 {
			return nil, fmt.Errorf("%w: batch member %d is empty", ErrCorrupt, i)
		}
		if len(b) > MaxModuleBytes {
			return nil, fmt.Errorf("%w: batch member %d is %d bytes (max %d)", ErrTooLarge, i, len(b), MaxModuleBytes)
		}
		total += len(b)
	}
	if total > MaxBatchBytes {
		return nil, fmt.Errorf("%w: batch frame %d bytes (max %d)", ErrTooLarge, total, MaxBatchBytes)
	}
	out := make([]byte, 0, total)
	out = append(out, BatchMagic...)
	out = appendU32(out, Version)
	out = appendU32(out, uint32(len(blobs)))
	table := make([]byte, 0, 4*len(blobs))
	for _, b := range blobs {
		table = appendU32(table, uint32(len(b)))
	}
	out = appendU32(out, crc32.ChecksumIEEE(table))
	out = append(out, table...)
	for _, b := range blobs {
		out = append(out, b...)
	}
	return out, nil
}

// DecodeBatch splits an OMB frame into its member blobs. The returned
// slices alias data — no member is copied or re-allocated; decoding
// the members as modules is the caller's (already-copying) business.
// The frame is strict: exact magic and version, checksummed length
// table, lengths summing exactly to the frame end.
func DecodeBatch(data []byte) ([][]byte, error) {
	if len(data) > MaxBatchBytes {
		return nil, fmt.Errorf("%w: batch frame is %d bytes (max %d)", ErrTooLarge, len(data), MaxBatchBytes)
	}
	if len(data) < batchHeaderSize || string(data[:4]) != BatchMagic {
		return nil, ErrBadMagic
	}
	if v := getU32(data[4:]); v != Version {
		return nil, fmt.Errorf("%w: %d (have %d)", ErrBadVersion, v, Version)
	}
	n := int(getU32(data[8:]))
	if n <= 0 || n > MaxBatchModules {
		return nil, fmt.Errorf("%w: %d modules in batch (max %d)", ErrTooLarge, n, MaxBatchModules)
	}
	if len(data) < batchHeaderSize+4*n {
		return nil, fmt.Errorf("%w: batch table truncated", ErrCorrupt)
	}
	table := data[batchHeaderSize : batchHeaderSize+4*n]
	if got := crc32.ChecksumIEEE(table); got != getU32(data[12:]) {
		return nil, fmt.Errorf("%w: batch table checksum mismatch", ErrCorrupt)
	}
	blobs := make([][]byte, n)
	off := batchHeaderSize + 4*n
	for i := 0; i < n; i++ {
		ln := int(getU32(table[4*i:]))
		if ln <= 0 || ln > MaxModuleBytes {
			return nil, fmt.Errorf("%w: batch member %d length %d", ErrCorrupt, i, ln)
		}
		if ln > len(data)-off {
			return nil, fmt.Errorf("%w: batch member %d overruns frame", ErrCorrupt, i)
		}
		blobs[i] = data[off : off+ln : off+ln]
		off += ln
	}
	if off != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes after batch", ErrCorrupt, len(data)-off)
	}
	return blobs, nil
}
