// Peer frame codec: the OPF envelope wraps one wire-encoded (OWP)
// translation for transfer between cluster peers. The envelope binds
// the payload to the full cache key it was filed under, so a confused
// or malicious peer answering with some *other* translation is caught
// by a string compare before any expensive work — and a frame that
// passes is still nothing more than candidate bytes: the receiving
// cache re-runs the SFI verifier on the decoded program before
// admission, exactly as it does for the disk tier. The envelope is
// integrity plumbing; the verifier is the trust boundary.

package wire

import (
	"fmt"
	"hash/crc32"
)

// PeerMagic opens every OPF frame.
const PeerMagic = "OPF1"

// MaxPeerKeyLen bounds the embedded cache key (matches the disk
// store's key limit).
const MaxPeerKeyLen = 4096

// MaxPeerFrameBytes caps a whole frame before any field is trusted.
const MaxPeerFrameBytes = 256 << 20

// peerHeaderSize is magic + version + keyLen + payLen + frame crc32.
const peerHeaderSize = 4 + 4 + 4 + 4 + 4

// EncodePeerFrame wraps an OWP payload and the cache key it answers.
func EncodePeerFrame(key string, payload []byte) ([]byte, error) {
	if len(key) == 0 || len(key) > MaxPeerKeyLen {
		return nil, fmt.Errorf("%w: peer frame key length %d", ErrTooLarge, len(key))
	}
	total := peerHeaderSize + len(key) + len(payload)
	if total > MaxPeerFrameBytes {
		return nil, fmt.Errorf("%w: peer frame %d bytes (max %d)", ErrTooLarge, total, MaxPeerFrameBytes)
	}
	body := make([]byte, 0, len(key)+len(payload))
	body = append(body, key...)
	body = append(body, payload...)
	out := make([]byte, 0, total)
	out = append(out, PeerMagic...)
	out = appendU32(out, Version)
	out = appendU32(out, uint32(len(key)))
	out = appendU32(out, uint32(len(payload)))
	out = appendU32(out, crc32.ChecksumIEEE(body))
	return append(out, body...), nil
}

// DecodePeerFrame splits a frame back into key and payload. The
// payload aliases data; it is UNVERIFIED — callers must decode it
// with DecodeProgram and then pass the program through the SFI
// verifier before it can be served.
func DecodePeerFrame(data []byte) (key string, payload []byte, err error) {
	if len(data) > MaxPeerFrameBytes {
		return "", nil, fmt.Errorf("%w: peer frame is %d bytes (max %d)", ErrTooLarge, len(data), MaxPeerFrameBytes)
	}
	if len(data) < peerHeaderSize || string(data[:4]) != PeerMagic {
		return "", nil, ErrBadMagic
	}
	if v := getU32(data[4:]); v != Version {
		return "", nil, fmt.Errorf("%w: %d (have %d)", ErrBadVersion, v, Version)
	}
	keyLen := int(getU32(data[8:]))
	payLen := int(getU32(data[12:]))
	if keyLen <= 0 || keyLen > MaxPeerKeyLen {
		return "", nil, fmt.Errorf("%w: peer frame key length %d", ErrCorrupt, keyLen)
	}
	body := data[peerHeaderSize:]
	if payLen < 0 || keyLen+payLen != len(body) {
		return "", nil, fmt.Errorf("%w: peer frame body is %d bytes, header promises %d", ErrCorrupt, len(body), keyLen+payLen)
	}
	if got := crc32.ChecksumIEEE(body); got != getU32(data[16:]) {
		return "", nil, fmt.Errorf("%w: peer frame checksum mismatch", ErrCorrupt)
	}
	return string(body[:keyLen]), body[keyLen:], nil
}
