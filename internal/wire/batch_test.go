package wire_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"omniware/internal/ovm"
	"omniware/internal/wire"
)

func testModules(t testing.TB) [][]byte {
	t.Helper()
	var blobs [][]byte
	for i := 0; i < 3; i++ {
		mod := &ovm.Module{
			Text:     []ovm.Inst{{Op: ovm.HALT}, {Op: ovm.HALT}},
			Data:     bytes.Repeat([]byte{byte(i + 1)}, 8*(i+1)),
			BSSSize:  uint32(16 * (i + 1)),
			Entry:    0,
			DataBase: 0x10000000,
		}
		blob, err := wire.EncodeModule(mod)
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, blob)
	}
	return blobs
}

func TestBatchRoundTrip(t *testing.T) {
	blobs := testModules(t)
	frame, err := wire.EncodeBatch(blobs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := wire.DecodeBatch(frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(blobs) {
		t.Fatalf("decoded %d members, want %d", len(got), len(blobs))
	}
	for i := range got {
		if !bytes.Equal(got[i], blobs[i]) {
			t.Errorf("member %d bytes differ", i)
		}
		if _, err := wire.DecodeModule(got[i]); err != nil {
			t.Errorf("member %d does not decode as a module: %v", i, err)
		}
	}
}

// TestBatchZeroCopy pins the decode contract ROADMAP item 1 asked
// for: splitting a batch allocates the slice headers and nothing else
// — every member aliases the frame buffer.
func TestBatchZeroCopy(t *testing.T) {
	blobs := testModules(t)
	frame, err := wire.EncodeBatch(blobs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := wire.DecodeBatch(frame)
	if err != nil {
		t.Fatal(err)
	}
	pristine := append([]byte(nil), frame...)
	for i, b := range got {
		if len(b) == 0 {
			t.Fatalf("member %d empty", i)
		}
		// Aliasing check: writing through the member must show up in
		// the frame buffer.
		b[0] ^= 0xff
		if bytes.Equal(frame, pristine) {
			t.Errorf("member %d does not alias the frame buffer", i)
		}
		b[0] ^= 0xff
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := wire.DecodeBatch(frame); err != nil {
			t.Fatal(err)
		}
	})
	// One allocation: the [][]byte header slice. No per-member copies.
	if allocs > 1 {
		t.Errorf("DecodeBatch allocates %.0f times per frame, want <= 1", allocs)
	}
}

func TestBatchRejects(t *testing.T) {
	blobs := testModules(t)
	frame, err := wire.EncodeBatch(blobs)
	if err != nil {
		t.Fatal(err)
	}
	flip := func(off int, bit byte) []byte {
		b := append([]byte(nil), frame...)
		b[off] ^= bit
		return b
	}
	cases := map[string][]byte{
		"empty":           nil,
		"magic-only":      []byte(wire.BatchMagic),
		"bad-magic":       flip(0, 0x20),
		"future-version":  flip(4, 0x40),
		"zero-count":      flip(8, byte(len(blobs))), // 3 ^ 3 = 0
		"huge-count":      flip(9, 0x7f),
		"bad-table-crc":   flip(12, 0x01),
		"truncated":       frame[:len(frame)/2],
		"trailing-byte":   append(append([]byte(nil), frame...), 0),
		"oversized-frame": make([]byte, wire.MaxBatchBytes+1),
	}
	for name, data := range cases {
		if _, err := wire.DecodeBatch(data); err == nil {
			t.Errorf("%s: corrupt batch accepted", name)
		}
	}
	if _, err := wire.EncodeBatch(nil); err == nil {
		t.Error("EncodeBatch accepted an empty batch")
	}
	if _, err := wire.EncodeBatch([][]byte{{}}); err == nil {
		t.Error("EncodeBatch accepted an empty member")
	}
}

func TestPeerFrameRoundTrip(t *testing.T) {
	const key = "k1|deadbeef|mips|00000000.00000000.00000000.00000000|sfi=true"
	payload := []byte("opaque owp bytes")
	frame, err := wire.EncodePeerFrame(key, payload)
	if err != nil {
		t.Fatal(err)
	}
	gotKey, gotPay, err := wire.DecodePeerFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if gotKey != key || !bytes.Equal(gotPay, payload) {
		t.Fatalf("round trip lost data: key %q payload %q", gotKey, gotPay)
	}
}

func TestPeerFrameRejects(t *testing.T) {
	frame, err := wire.EncodePeerFrame("k1|aa|mips|x|sfi=true", []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	flip := func(off int, bit byte) []byte {
		b := append([]byte(nil), frame...)
		b[off] ^= bit
		return b
	}
	cases := map[string][]byte{
		"empty":         nil,
		"bad-magic":     flip(0, 0x20),
		"bad-version":   flip(4, 0x01),
		"bad-crc":       flip(16, 0x01),
		"key-flip":      flip(20, 0x01), // body starts at 20
		"payload-flip":  flip(len(frame)-1, 0x01),
		"truncated":     frame[:len(frame)-1],
		"trailing-byte": append(append([]byte(nil), frame...), 0),
	}
	for name, data := range cases {
		if _, _, err := wire.DecodePeerFrame(data); err == nil {
			t.Errorf("%s: corrupt peer frame accepted", name)
		}
	}
	if _, err := wire.EncodePeerFrame("", nil); err == nil {
		t.Error("EncodePeerFrame accepted an empty key")
	}
}

// The batch decoder faces the same untrusted network bytes as the
// module decoder, so it gets the same fuzz treatment: any input must
// either error or yield members whose re-framing is the identity.
func FuzzDecodeBatch(f *testing.F) {
	for _, s := range batchSeeds(f) {
		f.Add(s.data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		blobs, err := wire.DecodeBatch(data)
		if err != nil {
			return
		}
		frame, err := wire.EncodeBatch(blobs)
		if err != nil {
			t.Fatalf("decoded batch fails to re-encode: %v", err)
		}
		again, err := wire.DecodeBatch(frame)
		if err != nil {
			t.Fatalf("canonical re-framing fails to decode: %v", err)
		}
		if !reflect.DeepEqual(again, blobs) {
			t.Fatal("decode/encode/decode is not a fixed point")
		}
	})
}

// FuzzDecodePeerFrame covers the cluster peer envelope with the same
// contract.
func FuzzDecodePeerFrame(f *testing.F) {
	if frame, err := wire.EncodePeerFrame("k1|seed", []byte("payload")); err == nil {
		f.Add(frame)
	}
	f.Add([]byte(wire.PeerMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		key, payload, err := wire.DecodePeerFrame(data)
		if err != nil {
			return
		}
		frame, err := wire.EncodePeerFrame(key, payload)
		if err != nil {
			t.Fatalf("decoded frame fails to re-encode: %v", err)
		}
		k2, p2, err := wire.DecodePeerFrame(frame)
		if err != nil || k2 != key || !bytes.Equal(p2, payload) {
			t.Fatalf("decode/encode/decode not a fixed point: %v", err)
		}
	})
}

const batchCorpusDir = "testdata/fuzz/FuzzDecodeBatch"

// buildBatchSeeds mirrors buildSeeds for the batch frame: one valid
// frame plus near-misses for each validation layer.
func buildBatchSeeds(t testing.TB) []seed {
	valid, err := wire.EncodeBatch(testModules(t))
	if err != nil {
		t.Fatal(err)
	}
	flip := func(off int, bit byte) []byte {
		b := append([]byte(nil), valid...)
		b[off] ^= bit
		return b
	}
	return []seed{
		{"valid", valid, true},
		{"empty", nil, false},
		{"magic-only", []byte(wire.BatchMagic), false},
		{"bad-magic", flip(0, 0x20), false},
		{"future-version", flip(4, 0x40), false},
		{"bad-table-crc", flip(12, 0x01), false},
		// A corrupt member still splits — the batch layer is framing,
		// not trust; the member's own OMW checksums reject it at module
		// decode. The seed pins that layering.
		{"member-flip", flip(len(valid)-1, 0x80), true},
		{"truncated", valid[:len(valid)/2], false},
		{"trailing-byte", append(append([]byte(nil), valid...), 0), false},
	}
}

// batchCorpusSeeds reads (regenerating under -regen-corpus) the
// checked-in batch corpus.
func batchCorpusSeeds(t testing.TB) []seed {
	if *regenCorpus {
		if err := os.MkdirAll(batchCorpusDir, 0o755); err != nil {
			t.Fatal(err)
		}
		for _, s := range buildBatchSeeds(t) {
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", s.data)
			if err := os.WriteFile(filepath.Join(batchCorpusDir, "seed-"+s.name), []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	names, err := filepath.Glob(filepath.Join(batchCorpusDir, "seed-*"))
	if err != nil || len(names) == 0 {
		t.Fatalf("batch seed corpus missing under %s (err=%v); regenerate with -regen-corpus", batchCorpusDir, err)
	}
	want := buildBatchSeeds(t)
	byName := map[string]seed{}
	for _, s := range want {
		byName["seed-"+s.name] = s
	}
	var out []seed
	for _, name := range names {
		raw, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.SplitN(string(raw), "\n", 3)
		if len(lines) < 2 || lines[0] != "go test fuzz v1" {
			t.Fatalf("%s: not a go fuzz corpus file", name)
		}
		quoted := strings.TrimSuffix(strings.TrimPrefix(lines[1], "[]byte("), ")")
		decoded, err := strconv.Unquote(quoted)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		s, ok := byName[filepath.Base(name)]
		if !ok {
			t.Fatalf("%s: unknown corpus entry", name)
		}
		s.data = []byte(decoded)
		out = append(out, s)
	}
	return out
}

func batchSeeds(t testing.TB) []seed { return batchCorpusSeeds(t) }

// TestBatchSeedCorpus is the plain-`go test` regression pass over the
// checked-in batch corpus, pinning each seed's designed verdict and
// the canonical bytes of the valid frame.
func TestBatchSeedCorpus(t *testing.T) {
	seeds := batchCorpusSeeds(t)
	if len(seeds) != len(buildBatchSeeds(t)) {
		t.Fatalf("batch corpus has %d entries, want %d; regenerate with -regen-corpus", len(seeds), len(buildBatchSeeds(t)))
	}
	for _, s := range seeds {
		_, err := wire.DecodeBatch(s.data)
		if s.valid && err != nil {
			t.Errorf("seed %s: %v", s.name, err)
		}
		if !s.valid && err == nil {
			t.Errorf("seed %s: corrupt input accepted", s.name)
		}
		if s.name == "valid" {
			for _, w := range buildBatchSeeds(t) {
				if w.name == "valid" && !bytes.Equal(s.data, w.data) {
					t.Error("checked-in valid batch seed no longer matches the canonical encoding; " +
						"the frame format changed without a version bump — regenerate with -regen-corpus and bump Version")
				}
			}
		}
	}
}
