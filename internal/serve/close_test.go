package serve_test

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"omniware/internal/serve"
	"omniware/internal/target"
	"omniware/internal/translate"
)

// Close is idempotent: any number of calls, from any number of
// goroutines, and each one waits for the drain.
func TestCloseIdempotent(t *testing.T) {
	s := serve.New(serve.Config{Workers: 2})
	s.Close()
	s.Close() // second call must not panic on the closed channel

	s2 := serve.New(serve.Config{Workers: 2})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s2.Close()
		}()
	}
	wg.Wait()
}

// Submit after Close is refused softly: a Result with ErrClosed, no
// panic, nothing run.
func TestSubmitAfterCloseRefused(t *testing.T) {
	mod := buildMod(t, goodSrc)
	s := serve.New(serve.Config{Workers: 1})
	s.Close()

	r := <-s.Submit(serve.Job{ID: "late", Mod: mod, Machine: target.MIPSMachine(), Opt: translate.Paper(true)})
	if !errors.Is(r.Err, serve.ErrClosed) {
		t.Fatalf("post-close submit: %+v", r)
	}
	if ch, ok := s.TrySubmit(serve.Job{ID: "late2", Mod: mod, Machine: target.MIPSMachine(), Opt: translate.Paper(true)}); ok || ch != nil {
		t.Fatal("TrySubmit accepted a job after Close")
	}
	if snap := s.Snapshot(); snap.JobsSubmitted != 0 {
		t.Fatalf("refused jobs were counted: %+v", snap)
	}
}

// Submit racing Close: every submission either runs to completion or
// is refused with ErrClosed — none are lost, none panic.
func TestSubmitConcurrentWithClose(t *testing.T) {
	mod := buildMod(t, goodSrc)
	m := target.MIPSMachine()
	for round := 0; round < 10; round++ {
		s := serve.New(serve.Config{Workers: 2})
		const n = 16
		results := make(chan serve.Result, n)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				results <- <-s.Submit(serve.Job{ID: "race", Mod: mod, Machine: m, Opt: translate.Paper(true)})
			}()
		}
		time.Sleep(time.Duration(round) * 100 * time.Microsecond)
		s.Close()
		wg.Wait()
		close(results)
		var ran, refused int
		for r := range results {
			switch {
			case r.Err == nil:
				ran++
				if r.ExitCode != int32(4950&0xff) {
					t.Fatalf("raced job computed wrong answer: %+v", r)
				}
			case errors.Is(r.Err, serve.ErrClosed):
				refused++
			default:
				t.Fatalf("raced job failed oddly: %v", r.Err)
			}
		}
		if ran+refused != n {
			t.Fatalf("round %d: %d ran + %d refused != %d", round, ran, refused, n)
		}
	}
}

// TrySubmit sheds when the queue is full and reports the job it did
// accept faithfully.
func TestTrySubmitShedsWhenFull(t *testing.T) {
	spin := buildMod(t, spinSrc)
	mod := buildMod(t, goodSrc)
	m := target.MIPSMachine()
	s := serve.New(serve.Config{Workers: 1, QueueCap: 1})
	defer s.Close()

	// One spinner occupies the worker, one fills the queue; both are
	// deadline-bounded so Close can finish. The second spinner can only
	// be accepted once the worker has dequeued the first — so when it
	// is, the pool is exactly saturated: worker busy, queue full.
	spinJob := serve.Job{ID: "spin", Mod: spin, Machine: m, Opt: translate.Paper(true), Timeout: 2 * time.Second}
	var chans []<-chan serve.Result
	deadline := time.Now().Add(5 * time.Second)
	for len(chans) < 2 {
		if ch, ok := s.TrySubmit(spinJob); ok {
			chans = append(chans, ch)
			continue
		}
		if time.Now().After(deadline) {
			t.Fatal("spinners never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	if _, ok := s.TrySubmit(serve.Job{ID: "extra", Mod: mod, Machine: m, Opt: translate.Paper(true)}); ok {
		t.Fatal("TrySubmit accepted a job into a saturated pool")
	}
	for _, ch := range chans {
		if r := <-ch; r.Err == nil || !strings.Contains(r.Err.Error(), "interrupted") {
			t.Fatalf("spinner outcome: %+v", r)
		}
	}
	// Capacity freed: the pool accepts work again.
	ch, ok := s.TrySubmit(serve.Job{ID: "after", Mod: mod, Machine: m, Opt: translate.Paper(true)})
	if !ok {
		t.Fatal("TrySubmit refused with the pool idle")
	}
	if r := <-ch; r.Err != nil {
		t.Fatalf("post-saturation job: %v", r.Err)
	}
}
