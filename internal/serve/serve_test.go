package serve_test

import (
	"strings"
	"testing"
	"time"

	"omniware/internal/cc"
	"omniware/internal/core"
	"omniware/internal/ovm"
	"omniware/internal/serve"
	"omniware/internal/target"
	"omniware/internal/translate"
)

func buildMod(t *testing.T, src string) *ovm.Module {
	t.Helper()
	mod, err := core.BuildC([]core.SourceFile{{Name: "p.c", Src: src}}, cc.Options{OptLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

const goodSrc = `
int main(void) {
	int i, acc = 0;
	for (i = 0; i < 100; i++) acc += i;
	_print_int(acc);
	return acc & 0xff;
}`

// A wild load: SFI sandboxes stores, so an out-of-segment *read* is
// the canonical fault a sandboxed module can still commit.
const wildLoadSrc = `
int main(void) {
	int *p = (int *)0x70000000;
	return *p;
}`

const spinSrc = `int main(void){ for(;;); return 0; }`

func TestJobRunsAndCaches(t *testing.T) {
	mod := buildMod(t, goodSrc)
	s := serve.New(serve.Config{Workers: 2})
	defer s.Close()

	m := target.MIPSMachine()
	job := serve.Job{ID: "a", Mod: mod, Machine: m, Opt: translate.Paper(true)}
	r1 := <-s.Submit(job)
	if r1.Err != nil || r1.Faulted {
		t.Fatalf("job failed: %+v", r1)
	}
	if r1.Output != "4950" || r1.ExitCode != int32(4950&0xff) {
		t.Errorf("wrong answer: %+v", r1)
	}
	if r1.Cached {
		t.Error("first job reported a cache hit")
	}
	job.ID = "b"
	r2 := <-s.Submit(job)
	if r2.Err != nil || !r2.Cached {
		t.Errorf("second job not served from cache: %+v", r2)
	}
	snap := s.Snapshot()
	if snap.JobsRun != 2 || snap.Translations != 1 || snap.CacheMisses != 1 {
		t.Errorf("snapshot %+v", snap)
	}
	if snap.QueueDepth != 0 {
		t.Errorf("queue depth %d after drain", snap.QueueDepth)
	}
}

func TestFaultContainment(t *testing.T) {
	good := buildMod(t, goodSrc)
	evil := buildMod(t, wildLoadSrc)
	s := serve.New(serve.Config{Workers: 2})
	defer s.Close()

	m := target.X86Machine()
	results := s.Run([]serve.Job{
		{ID: "good-1", Mod: good, Machine: m, Opt: translate.Paper(true)},
		{ID: "evil", Mod: evil, Machine: m, Opt: translate.Paper(true)},
		{ID: "good-2", Mod: good, Machine: m, Opt: translate.Paper(true)},
	})
	if results[0].Err != nil || results[0].Faulted || results[2].Err != nil || results[2].Faulted {
		t.Errorf("good jobs disturbed: %+v %+v", results[0], results[2])
	}
	if !results[1].Faulted {
		t.Errorf("wild load did not fault its job: %+v", results[1])
	}
	snap := s.Snapshot()
	if snap.FaultsContained != 1 || snap.JobsFailed != 1 || snap.JobsRun != 2 {
		t.Errorf("snapshot %+v", snap)
	}
}

func TestBudgetExhaustionFailsOnlyItsJob(t *testing.T) {
	spin := buildMod(t, spinSrc)
	good := buildMod(t, goodSrc)
	s := serve.New(serve.Config{Workers: 2})
	defer s.Close()

	m := target.SPARCMachine()
	results := s.Run([]serve.Job{
		{ID: "spin", Mod: spin, Machine: m, Opt: translate.Paper(true), MaxSteps: 10_000},
		{ID: "good", Mod: good, Machine: m, Opt: translate.Paper(true)},
	})
	if results[0].Err == nil || !strings.Contains(results[0].Err.Error(), "budget") {
		t.Errorf("spin job not stopped by budget: %+v", results[0])
	}
	if results[1].Err != nil || results[1].Faulted {
		t.Errorf("good job disturbed: %+v", results[1])
	}
	if snap := s.Snapshot(); snap.FaultsContained != 1 {
		t.Errorf("budget exhaustion not counted as contained: %+v", snap)
	}
}

func TestPerJobTimeout(t *testing.T) {
	spin := buildMod(t, spinSrc)
	s := serve.New(serve.Config{Workers: 1})
	defer s.Close()

	r := <-s.Submit(serve.Job{
		ID: "spin", Mod: spin, Machine: target.PPCMachine(),
		Opt: translate.Paper(true), Timeout: 50 * time.Millisecond,
	})
	if r.Err == nil || !strings.Contains(r.Err.Error(), "interrupted") {
		t.Fatalf("timeout did not interrupt the job: %+v", r)
	}
	if snap := s.Snapshot(); snap.Timeouts != 1 {
		t.Errorf("timeout not counted: %+v", snap)
	}
}

func TestUnsandboxedJobBypassesCache(t *testing.T) {
	mod := buildMod(t, goodSrc)
	s := serve.New(serve.Config{Workers: 1})
	defer s.Close()

	job := serve.Job{ID: "raw", Mod: mod, Machine: target.MIPSMachine(), Opt: translate.Paper(false)}
	for i := 0; i < 2; i++ {
		if r := <-s.Submit(job); r.Err != nil || r.Cached {
			t.Fatalf("unsandboxed run %d: %+v", i, r)
		}
	}
	snap := s.Snapshot()
	if snap.Translations != 2 || snap.CacheMisses != 0 {
		t.Errorf("unsandboxed jobs touched the cache: %+v", snap)
	}
}

func TestMalformedJobRefused(t *testing.T) {
	s := serve.New(serve.Config{Workers: 1})
	defer s.Close()
	if r := <-s.Submit(serve.Job{ID: "nil"}); r.Err == nil {
		t.Error("job without module/machine accepted")
	}
	mod := buildMod(t, goodSrc)
	r := <-s.Submit(serve.Job{
		ID: "panicsetup", Mod: mod, Machine: target.MIPSMachine(), Opt: translate.Paper(true),
		Setup: func(h *core.Host) error { var p *int; return fmeErr(*p) },
	})
	if r.Err == nil || !strings.Contains(r.Err.Error(), "panic") {
		t.Errorf("panicking setup not contained: %+v", r)
	}
	if r2 := <-s.Submit(serve.Job{ID: "ok", Mod: mod, Machine: target.MIPSMachine(), Opt: translate.Paper(true)}); r2.Err != nil {
		t.Errorf("server did not survive a panicking setup: %+v", r2)
	}
}

// fmeErr exists so the nil dereference above is not optimizable away.
func fmeErr(int) error { return nil }
