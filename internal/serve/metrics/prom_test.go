package metrics

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"omniware/internal/target"
	"omniware/internal/trace"
)

// promLines indexes "name{labels} value" exposition lines by their
// series (everything before the last space).
func promLines(t *testing.T, text string) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, l := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(l, "#") {
			continue
		}
		i := strings.LastIndexByte(l, ' ')
		if i < 0 {
			t.Fatalf("malformed exposition line %q", l)
		}
		out[l[:i]] = l[i+1:]
	}
	return out
}

func TestPromCountersAndGauges(t *testing.T) {
	var m Metrics
	m.JobsSubmitted.Add(9)
	m.JobsRun.Add(7)
	m.QueueDepth.Add(2)
	s := m.Snapshot()
	s.CacheDiskWrites = 4

	text := s.Prom()
	series := promLines(t, text)
	for name, want := range map[string]string{
		"omni_jobs_submitted_total":    "9",
		"omni_jobs_run_total":          "7",
		"omni_queue_depth":             "2",
		"omni_cache_disk_writes_total": "4",
	} {
		if got := series[name]; got != want {
			t.Errorf("%s = %q, want %q", name, got, want)
		}
	}
	// Every family carries HELP and TYPE headers.
	for _, frag := range []string{
		"# TYPE omni_jobs_run_total counter",
		"# TYPE omni_queue_depth gauge",
		"# TYPE omni_stage_latency_seconds histogram",
	} {
		if !strings.Contains(text, frag) {
			t.Errorf("missing %q in exposition:\n%s", frag, text)
		}
	}
}

// Histogram series must be cumulative, end with +Inf equal to _count,
// and report _sum in seconds.
func TestPromHistogramCumulative(t *testing.T) {
	var m Metrics
	m.Run.Observe(500 * time.Nanosecond) // bucket 0 (1µs)
	m.Run.Observe(3 * time.Microsecond)  // bucket 2 (4µs)
	m.Run.Observe(3 * time.Microsecond)
	s := m.Snapshot()
	series := promLines(t, s.Prom())

	le := func(bound string) string {
		return `omni_stage_latency_seconds_bucket{stage="run",le="` + bound + `"}`
	}
	for bound, want := range map[string]string{
		"1e-06": "1", // 1µs: just the 500ns sample
		"2e-06": "1",
		"4e-06": "3", // cumulative: all three
		"+Inf":  "3",
	} {
		if got := series[le(bound)]; got != want {
			t.Errorf("bucket le=%s = %q, want %q", bound, got, want)
		}
	}
	if got := series[`omni_stage_latency_seconds_count{stage="run"}`]; got != "3" {
		t.Errorf("count = %q, want 3", got)
	}
	sum, err := strconv.ParseFloat(series[`omni_stage_latency_seconds_sum{stage="run"}`], 64)
	if err != nil || sum <= 0 || sum > 1e-4 {
		t.Errorf("sum = %v (%v), want small positive seconds", sum, err)
	}
	// Monotonicity across every bucket of every stage.
	for _, stage := range StageNames {
		prev := uint64(0)
		for i := 0; i < trace.NumBuckets; i++ {
			key := `omni_stage_latency_seconds_bucket{stage="` + stage + `",le="` +
				promFloat(trace.BucketBound(i).Seconds()) + `"}`
			v, err := strconv.ParseUint(series[key], 10, 64)
			if err != nil {
				t.Fatalf("missing bucket %s: %v", key, err)
			}
			if v < prev {
				t.Fatalf("stage %s bucket %d not cumulative: %d < %d", stage, i, v, prev)
			}
			prev = v
		}
	}
}

func TestPromTargetAttribution(t *testing.T) {
	var m Metrics
	m.Target(target.PPC).AddRun(target.Result{
		Insts: 100,
		Counts: [target.NumCats]uint64{
			target.CatBase: 60, target.CatAddr: 10, target.CatSFI: 25, target.CatBnop: 5,
		},
	}, 2*time.Millisecond)
	series := promLines(t, m.Snapshot().Prom())

	if got := series[`omni_target_jobs_total{target="ppc"}`]; got != "1" {
		t.Errorf("ppc jobs = %q, want 1", got)
	}
	if got := series[`omni_target_insts_total{target="ppc",cat="`+target.CatSFI.String()+`"}`]; got != "25" {
		t.Errorf("ppc sfi insts = %q, want 25", got)
	}
	pct, err := strconv.ParseFloat(series[`omni_target_sandbox_pct{target="ppc"}`], 64)
	if err != nil || pct != 25 {
		t.Errorf("ppc sandbox pct = %v (%v), want 25", pct, err)
	}
	// Idle targets still expose zero-valued series (scrapers want the
	// full label space).
	if got := series[`omni_target_jobs_total{target="mips"}`]; got != "0" {
		t.Errorf("idle mips jobs = %q, want 0", got)
	}
}

// Every audit outcome series is pre-registered at zero — in the JSON
// snapshot (reason maps carry all keys) and in the Prometheus
// rendering — so the first scrape of a fresh daemon already shows the
// full closed label set, matching the quarantine-reason convention.
func TestPromAuditPreRegistered(t *testing.T) {
	var m Metrics
	s := m.Snapshot()
	for _, r := range AuditReasons {
		if v, ok := s.AuditWarns[r]; !ok || v != 0 {
			t.Errorf("AuditWarns[%q] = %d, %v; want pre-registered 0", r, v, ok)
		}
		if v, ok := s.AuditRejects[r]; !ok || v != 0 {
			t.Errorf("AuditRejects[%q] = %d, %v; want pre-registered 0", r, v, ok)
		}
	}
	lines := promLines(t, s.Prom())
	for _, series := range []string{
		"omni_audit_pass_total",
		"omni_cache_audits_total",
		"omni_cache_audit_hits_total",
		"omni_cache_audit_disk_writes_total",
		"omni_cache_audit_quarantines_total",
	} {
		if v, ok := lines[series]; !ok || v != "0" {
			t.Errorf("%s = %q, %v; want pre-registered 0", series, v, ok)
		}
	}
	for _, r := range AuditReasons {
		for _, fam := range []string{"omni_audit_warns_total", "omni_audit_rejects_total"} {
			series := fam + `{reason="` + r + `"}`
			if v, ok := lines[series]; !ok || v != "0" {
				t.Errorf("%s = %q, %v; want pre-registered 0", series, v, ok)
			}
		}
	}

	// Counting keeps the closed set: an unknown reason is dropped, a
	// known one lands on its series.
	m.AuditReject("stack")
	m.AuditReject("made-up")
	m.AuditWarn("cost")
	s = m.Snapshot()
	if s.AuditRejects["stack"] != 1 || s.AuditWarns["cost"] != 1 {
		t.Errorf("counts = %v / %v, want stack reject 1, cost warn 1", s.AuditRejects, s.AuditWarns)
	}
	if len(s.AuditRejects) != len(AuditReasons) {
		t.Errorf("reject label set grew: %v", s.AuditRejects)
	}
}
