package metrics

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"omniware/internal/trace"
)

// Prom renders the snapshot in the Prometheus text exposition format
// (version 0.0.4): counters as omni_*_total, gauges bare, stage
// latencies as cumulative histograms in seconds, and per-target
// instruction attribution as labelled counters. The output is what
// GET /v1/metrics serves when the scraper asks for
// "text/plain; version=0.0.4".
func (s Snapshot) Prom() string {
	var b strings.Builder
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP omni_%s %s\n# TYPE omni_%s counter\nomni_%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v string) {
		fmt.Fprintf(&b, "# HELP omni_%s %s\n# TYPE omni_%s gauge\nomni_%s %s\n", name, help, name, name, v)
	}

	counter("jobs_submitted_total", "Jobs accepted into the queue.", s.JobsSubmitted)
	counter("jobs_run_total", "Jobs that finished cleanly.", s.JobsRun)
	counter("jobs_failed_total", "Jobs that failed (fault, budget, timeout, bad input).", s.JobsFailed)
	counter("faults_contained_total", "Failed jobs whose fault the server absorbed.", s.FaultsContained)
	counter("timeouts_total", "Jobs killed by the per-job deadline.", s.Timeouts)
	counter("translations_total", "Load-time translations performed for jobs.", s.Translations)
	counter("sim_insts_total", "Native instructions simulated across jobs.", s.SimInsts)
	counter("sim_cycles_total", "Simulated pipeline cycles across jobs.", s.SimCycles)
	gauge("queue_depth", "Jobs submitted but not yet finished.", strconv.FormatInt(s.QueueDepth, 10))

	counter("cache_hits_total", "Translation cache memory hits.", s.CacheHits)
	counter("cache_coalesced_total", "Lookups that waited on an in-flight translation.", s.CacheCoalesced)
	counter("cache_misses_total", "Lookups that translated.", s.CacheMisses)
	counter("cache_evictions_total", "LRU evictions.", s.CacheEvictions)
	counter("cache_rejected_total", "Programs the SFI verifier refused to admit.", s.CacheRejected)
	gauge("cache_entries", "Live cache entries.", strconv.Itoa(s.CacheEntries))
	gauge("cache_bytes", "Code bytes held by the cache.", strconv.FormatInt(s.CacheBytes, 10))
	counter("cache_disk_hits_total", "Disk-tier hits (re-verified on read).", s.CacheDiskHits)
	counter("cache_disk_writes_total", "Disk-tier write-throughs.", s.CacheDiskWrites)
	counter("cache_disk_quarantines_total", "Disk entries quarantined after failing re-verification.", s.CacheDiskQuarantines)
	counter("cache_disagreements_total", "Dual-gate admissions where the two SFI verifiers split the verdict.", s.CacheDisagreements)

	// Audit pipeline and gate outcomes. The reason label set is closed
	// (AuditReasons) and every series is pre-registered at zero.
	counter("cache_audits_total", "Audit pipeline runs (memoization misses).", s.CacheAudits)
	counter("cache_audit_hits_total", "Audit reports served memoized.", s.CacheAuditHits)
	counter("cache_audit_disk_writes_total", "Audit reports written through to the persistent tier.", s.CacheAuditDiskWrites)
	counter("cache_audit_quarantines_total", "Stored audits that disagreed with re-derivation and were set aside.", s.CacheAuditQuarantines)
	counter("audit_pass_total", "Uploads the audit gate admitted without violation.", s.AuditPass)
	fmt.Fprintf(&b, "# HELP omni_audit_warns_total Warn-mode audit violations by reason.\n# TYPE omni_audit_warns_total counter\n")
	for _, r := range AuditReasons {
		fmt.Fprintf(&b, "omni_audit_warns_total{reason=%q} %d\n", r, s.AuditWarns[r])
	}
	fmt.Fprintf(&b, "# HELP omni_audit_rejects_total Enforce-mode audit rejections by reason.\n# TYPE omni_audit_rejects_total counter\n")
	for _, r := range AuditReasons {
		fmt.Fprintf(&b, "omni_audit_rejects_total{reason=%q} %d\n", r, s.AuditRejects[r])
	}

	// Cluster peer-fill counters: totals always (they are part of the
	// cache contract), per-peer series only when running clustered.
	counter("cache_peer_hits_total", "Translations admitted from cluster peers (re-verified on arrival).", s.CachePeerHits)
	counter("cache_peer_quarantines_total", "Peer candidates refused by the admission gate or spot check.", s.CachePeerQuarantines)
	counter("cache_spot_checks_total", "Peer admissions sampled for retranslation equality.", s.CacheSpotChecks)
	counter("cache_spot_check_fails_total", "Spot checks where the peer program was not the local translation.", s.CacheSpotCheckFails)
	if c := s.Cluster; c != nil {
		counter("cluster_failovers_total", "Exec requests re-routed after a member failure.", c.Failovers)
		fmt.Fprintf(&b, "# HELP omni_cluster_peer_hits_total Peer-fill admissions by supplying peer.\n# TYPE omni_cluster_peer_hits_total counter\n")
		for _, p := range c.Peers {
			fmt.Fprintf(&b, "omni_cluster_peer_hits_total{peer=%q} %d\n", p.Peer, p.Hits)
		}
		// Quarantines carry the reason label when the split is known
		// (every reason pre-registered at zero); a snapshot without the
		// split falls back to the reason-blind per-peer series.
		fmt.Fprintf(&b, "# HELP omni_cluster_peer_quarantines_total Peer candidates quarantined by supplying peer and reason.\n# TYPE omni_cluster_peer_quarantines_total counter\n")
		for _, p := range c.Peers {
			if len(p.QuarantinesByReason) == 0 {
				fmt.Fprintf(&b, "omni_cluster_peer_quarantines_total{peer=%q} %d\n", p.Peer, p.Quarantines)
				continue
			}
			for _, reason := range catOrder(p.QuarantinesByReason) {
				fmt.Fprintf(&b, "omni_cluster_peer_quarantines_total{peer=%q,reason=%q} %d\n",
					p.Peer, reason, p.QuarantinesByReason[reason])
			}
		}
		fmt.Fprintf(&b, "# HELP omni_cluster_peer_errors_total Transport or protocol failures probing a peer.\n# TYPE omni_cluster_peer_errors_total counter\n")
		for _, p := range c.Peers {
			fmt.Fprintf(&b, "omni_cluster_peer_errors_total{peer=%q} %d\n", p.Peer, p.Errors)
		}
		fmt.Fprintf(&b, "# HELP omni_cluster_peer_pushes_total Hot-entry replications sent to a peer.\n# TYPE omni_cluster_peer_pushes_total counter\n")
		for _, p := range c.Peers {
			fmt.Fprintf(&b, "omni_cluster_peer_pushes_total{peer=%q} %d\n", p.Peer, p.Pushes)
		}
		fmt.Fprintf(&b, "# HELP omni_cluster_peer_staleness_ms Milliseconds since a peer last answered; -1 means never.\n# TYPE omni_cluster_peer_staleness_ms gauge\n")
		for _, p := range c.Peers {
			fmt.Fprintf(&b, "omni_cluster_peer_staleness_ms{peer=%q} %d\n", p.Peer, p.StalenessMs)
		}
	}

	// Stage latency histograms share one metric family with a stage
	// label, cumulative buckets in seconds.
	fmt.Fprintf(&b, "# HELP omni_stage_latency_seconds Pipeline stage latency.\n# TYPE omni_stage_latency_seconds histogram\n")
	for _, name := range stageOrder(s.Stages) {
		writePromHist(&b, "omni_stage_latency_seconds", `stage="`+name+`"`, s.Stages[name].Hist)
	}

	// Per-target dynamic instruction attribution: the live overhead
	// tables, one counter per (target, category) plus the derived
	// sandbox-overhead percentage.
	fmt.Fprintf(&b, "# HELP omni_target_jobs_total Jobs run per target machine.\n# TYPE omni_target_jobs_total counter\n")
	for _, ts := range s.Targets {
		fmt.Fprintf(&b, "omni_target_jobs_total{target=%q} %d\n", ts.Target, ts.Jobs)
	}
	fmt.Fprintf(&b, "# HELP omni_target_insts_total Dynamic instructions per target by expansion category.\n# TYPE omni_target_insts_total counter\n")
	for _, ts := range s.Targets {
		for _, cat := range catOrder(ts.Counts) {
			fmt.Fprintf(&b, "omni_target_insts_total{target=%q,cat=%q} %d\n", ts.Target, cat, ts.Counts[cat])
		}
	}
	fmt.Fprintf(&b, "# HELP omni_target_sandbox_pct Percentage of dynamic instructions spent on SFI checks.\n# TYPE omni_target_sandbox_pct gauge\n")
	for _, ts := range s.Targets {
		fmt.Fprintf(&b, "omni_target_sandbox_pct{target=%q} %s\n", ts.Target, promFloat(ts.SandboxPct))
	}
	return b.String()
}

// writePromHist emits one labelled series of a histogram family:
// cumulative le buckets, +Inf, _sum (seconds) and _count.
func writePromHist(b *strings.Builder, family, labels string, h trace.HistSnapshot) {
	cum := uint64(0)
	for i := 0; i < trace.NumBuckets && i < len(h.Counts); i++ {
		cum += h.Counts[i]
		le := promFloat(trace.BucketBound(i).Seconds())
		fmt.Fprintf(b, "%s_bucket{%s,le=%q} %d\n", family, labels, le, cum)
	}
	fmt.Fprintf(b, "%s_bucket{%s,le=\"+Inf\"} %d\n", family, labels, h.Count)
	fmt.Fprintf(b, "%s_sum{%s} %s\n", family, labels, promFloat(float64(h.SumNs)/1e9))
	fmt.Fprintf(b, "%s_count{%s} %d\n", family, labels, h.Count)
}

// promFloat formats a float the way Prometheus clients do: shortest
// representation that round-trips.
func promFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// catOrder returns the category names sorted for stable output.
func catOrder(counts map[string]uint64) []string {
	out := make([]string, 0, len(counts))
	for k := range counts {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
