package metrics

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestSnapshotCopiesCounters(t *testing.T) {
	var m Metrics
	m.JobsSubmitted.Add(7)
	m.JobsRun.Add(5)
	m.JobsFailed.Add(2)
	m.FaultsContained.Add(1)
	m.Timeouts.Add(1)
	m.Translations.Add(3)
	m.SimInsts.Add(1000)
	m.SimCycles.Add(1500)
	m.QueueDepth.Add(4)
	m.QueueDepth.Add(-1)

	s := m.Snapshot()
	want := Snapshot{
		JobsSubmitted: 7, JobsRun: 5, JobsFailed: 2,
		FaultsContained: 1, Timeouts: 1, Translations: 3,
		SimInsts: 1000, SimCycles: 1500, QueueDepth: 3,
	}
	if s != want {
		t.Fatalf("snapshot %+v, want %+v", s, want)
	}
	// The snapshot is a copy: later updates don't show in it.
	m.JobsRun.Add(10)
	if s.JobsRun != 5 {
		t.Fatal("snapshot aliased the live counters")
	}
}

func TestHitRate(t *testing.T) {
	cases := []struct {
		name string
		s    Snapshot
		want float64
	}{
		{"empty", Snapshot{}, 0},
		{"all-miss", Snapshot{CacheMisses: 4}, 0},
		{"all-hit", Snapshot{CacheHits: 4}, 1},
		{"memory-only", Snapshot{CacheHits: 3, CacheMisses: 1}, 0.75},
		{"coalesced-counts-warm", Snapshot{CacheHits: 1, CacheCoalesced: 1, CacheMisses: 2}, 0.5},
		{"disk-counts-warm", Snapshot{CacheDiskHits: 3, CacheMisses: 1}, 0.75},
		{"all-tiers", Snapshot{CacheHits: 2, CacheCoalesced: 1, CacheDiskHits: 1, CacheMisses: 4}, 0.5},
	}
	for _, c := range cases {
		if got := c.s.HitRate(); got != c.want {
			t.Errorf("%s: HitRate() = %v, want %v", c.name, got, c.want)
		}
	}
}

// Text is a stable machine-greppable format: fixed order, fixed
// padding. Tools (and the omniserve smoke tests) match on exact
// lines, so lock the format down.
func TestTextFormat(t *testing.T) {
	s := Snapshot{
		JobsSubmitted: 49, JobsRun: 48, JobsFailed: 1,
		CacheHits: 28, CacheCoalesced: 4, CacheMisses: 17,
		CacheDiskHits: 2,
	}
	text := s.Text()
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	wantOrder := []string{
		"jobs_submitted", "jobs_run", "jobs_failed", "faults_contained",
		"timeouts", "translations", "sim_insts", "sim_cycles", "queue_depth",
		"cache_hits", "cache_coalesced", "cache_misses", "cache_evictions",
		"cache_rejected", "cache_entries", "cache_bytes",
		"cache_disk_hits", "cache_disk_writes", "cache_disk_quarantines",
		"cache_hit_rate",
	}
	if len(lines) != len(wantOrder) {
		t.Fatalf("%d lines, want %d:\n%s", len(lines), len(wantOrder), text)
	}
	for i, name := range wantOrder {
		if !strings.HasPrefix(lines[i], name+" ") {
			t.Errorf("line %d = %q, want prefix %q", i, lines[i], name)
		}
	}
	for _, want := range []string{
		"jobs_run           48",
		"cache_disk_hits    2",
		"cache_hit_rate     0.67",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing exact line %q in:\n%s", want, text)
		}
	}
}

func TestSnapshotJSONFieldNames(t *testing.T) {
	raw, err := json.Marshal(Snapshot{JobsRun: 1, CacheDiskWrites: 2})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{
		"jobs_submitted", "jobs_run", "cache_hits", "cache_misses",
		"cache_disk_hits", "cache_disk_writes", "cache_disk_quarantines",
	} {
		if _, ok := m[k]; !ok {
			t.Errorf("JSON missing field %q: %s", k, raw)
		}
	}
}

// The counters are safe for concurrent update with snapshots racing
// them — the serving hot path does exactly this.
func TestConcurrentUpdates(t *testing.T) {
	var m Metrics
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.JobsSubmitted.Add(1)
				m.QueueDepth.Add(1)
				_ = m.Snapshot()
				m.QueueDepth.Add(-1)
			}
		}()
	}
	wg.Wait()
	s := m.Snapshot()
	if s.JobsSubmitted != 8000 || s.QueueDepth != 0 {
		t.Fatalf("final snapshot %+v", s)
	}
}
