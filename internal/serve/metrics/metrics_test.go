package metrics

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"omniware/internal/target"
	"omniware/internal/trace"
)

func TestSnapshotCopiesCounters(t *testing.T) {
	var m Metrics
	m.JobsSubmitted.Add(7)
	m.JobsRun.Add(5)
	m.JobsFailed.Add(2)
	m.FaultsContained.Add(1)
	m.Timeouts.Add(1)
	m.Translations.Add(3)
	m.SimInsts.Add(1000)
	m.SimCycles.Add(1500)
	m.QueueDepth.Add(4)
	m.QueueDepth.Add(-1)

	s := m.Snapshot()
	if s.JobsSubmitted != 7 || s.JobsRun != 5 || s.JobsFailed != 2 ||
		s.FaultsContained != 1 || s.Timeouts != 1 || s.Translations != 3 ||
		s.SimInsts != 1000 || s.SimCycles != 1500 || s.QueueDepth != 3 {
		t.Fatalf("snapshot %+v", s)
	}
	// The snapshot is a copy: later updates don't show in it.
	m.JobsRun.Add(10)
	if s.JobsRun != 5 {
		t.Fatal("snapshot aliased the live counters")
	}
}

func TestHitRate(t *testing.T) {
	cases := []struct {
		name string
		s    Snapshot
		want float64
	}{
		{"empty", Snapshot{}, 0},
		{"all-miss", Snapshot{CacheMisses: 4}, 0},
		{"all-hit", Snapshot{CacheHits: 4}, 1},
		{"memory-only", Snapshot{CacheHits: 3, CacheMisses: 1}, 0.75},
		{"coalesced-counts-warm", Snapshot{CacheHits: 1, CacheCoalesced: 1, CacheMisses: 2}, 0.5},
		{"disk-counts-warm", Snapshot{CacheDiskHits: 3, CacheMisses: 1}, 0.75},
		{"all-tiers", Snapshot{CacheHits: 2, CacheCoalesced: 1, CacheDiskHits: 1, CacheMisses: 4}, 0.5},
	}
	for _, c := range cases {
		if got := c.s.HitRate(); got != c.want {
			t.Errorf("%s: HitRate() = %v, want %v", c.name, got, c.want)
		}
	}
}

// Text is a stable machine-greppable format: fixed order, fixed
// padding. Tools (and the omniserve smoke tests) match on exact
// lines, so lock the format down. The counter block is followed by
// optional stage and per-target attribution lines.
func TestTextFormat(t *testing.T) {
	s := Snapshot{
		JobsSubmitted: 49, JobsRun: 48, JobsFailed: 1,
		CacheHits: 28, CacheCoalesced: 4, CacheMisses: 17,
		CacheDiskHits: 2,
	}
	text := s.Text()
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	wantOrder := []string{
		"jobs_submitted", "jobs_run", "jobs_failed", "faults_contained",
		"timeouts", "translations", "sim_insts", "sim_cycles", "queue_depth",
		"cache_hits", "cache_coalesced", "cache_misses", "cache_evictions",
		"cache_rejected", "cache_entries", "cache_bytes",
		"cache_disk_hits", "cache_disk_writes", "cache_disk_quarantines",
		"cache_disagreements",
		"cache_audits", "cache_audit_hits", "cache_audit_quarantines",
		"audit_pass",
		"audit_warn_stack", "audit_warn_cost", "audit_warn_capability", "audit_warn_recursion",
		"audit_reject_stack", "audit_reject_cost", "audit_reject_capability", "audit_reject_recursion",
		"cache_hit_rate",
	}
	if len(lines) != len(wantOrder) {
		t.Fatalf("%d lines, want %d:\n%s", len(lines), len(wantOrder), text)
	}
	for i, name := range wantOrder {
		if !strings.HasPrefix(lines[i], name+" ") {
			t.Errorf("line %d = %q, want prefix %q", i, lines[i], name)
		}
	}
	for _, want := range []string{
		"jobs_run           48",
		"cache_disk_hits    2",
		"cache_hit_rate     0.67",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing exact line %q in:\n%s", want, text)
		}
	}
}

// Stage latency and per-target attribution lines follow the counter
// block: stages in the canonical StageNames order, targets only when
// they ran at least one job.
func TestTextStageAndTargetLines(t *testing.T) {
	var m Metrics
	m.QueueWait.Observe(100 * time.Microsecond)
	m.Run.Observe(3 * time.Millisecond)
	tc := m.Target(target.MIPS)
	tc.AddRun(target.Result{
		Insts: 120,
		Counts: [target.NumCats]uint64{
			target.CatBase: 80, target.CatSFI: 30, target.CatBnop: 10,
		},
	}, 3*time.Millisecond)

	text := m.Snapshot().Text()
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	var stageIdx []string
	for _, l := range lines {
		if strings.HasPrefix(l, "stage_") {
			stageIdx = append(stageIdx, strings.Fields(l)[0])
		}
	}
	want := []string{"stage_decode", "stage_audit", "stage_queue_wait", "stage_translate", "stage_peer_fetch", "stage_verify", "stage_run"}
	if len(stageIdx) != len(want) {
		t.Fatalf("stage lines %v, want %v", stageIdx, want)
	}
	for i := range want {
		if stageIdx[i] != want[i] {
			t.Fatalf("stage lines %v, want %v", stageIdx, want)
		}
	}
	if !strings.Contains(text, "stage_queue_wait   count=1") {
		t.Errorf("queue_wait stage line missing count:\n%s", text)
	}
	var targetLines []string
	for _, l := range lines {
		if strings.HasPrefix(l, "target_") {
			targetLines = append(targetLines, l)
		}
	}
	if len(targetLines) != 1 {
		t.Fatalf("target lines %v, want exactly the one active target", targetLines)
	}
	l := targetLines[0]
	for _, frag := range []string{"target_mips", "jobs=1", "insts=120", "app=80", "sfi=30", "sched=10", "sandbox_pct=25.00"} {
		if !strings.Contains(l, frag) {
			t.Errorf("target line %q missing %q", l, frag)
		}
	}
}

func TestSnapshotJSONFieldNames(t *testing.T) {
	var m Metrics
	m.JobsRun.Add(1)
	m.Target(target.SPARC).AddRun(target.Result{Insts: 5}, time.Millisecond)
	raw, err := json.Marshal(m.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{
		"jobs_submitted", "jobs_run", "cache_hits", "cache_misses",
		"cache_disk_hits", "cache_disk_writes", "cache_disk_quarantines",
		"stages", "targets",
	} {
		if _, ok := got[k]; !ok {
			t.Errorf("JSON missing field %q: %s", k, raw)
		}
	}
	stages, ok := got["stages"].(map[string]any)
	if !ok || len(stages) != len(StageNames) {
		t.Fatalf("stages = %v, want all of %v", got["stages"], StageNames)
	}
	targets, ok := got["targets"].([]any)
	if !ok || len(targets) != 4 {
		t.Fatalf("targets = %v, want 4 entries", got["targets"])
	}
	t0, _ := targets[0].(map[string]any)
	for _, k := range []string{"target", "jobs", "insts", "app_insts", "sandbox_pct", "sandbox_insts", "sched_insts", "counts", "run"} {
		if _, ok := t0[k]; !ok {
			t.Errorf("target JSON missing field %q: %v", k, t0)
		}
	}
}

// The counters are safe for concurrent update with snapshots racing
// them — the serving hot path does exactly this.
func TestConcurrentUpdates(t *testing.T) {
	var m Metrics
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.JobsSubmitted.Add(1)
				m.QueueDepth.Add(1)
				m.Run.Observe(time.Millisecond)
				m.Target(target.X86).AddRun(target.Result{Insts: 3}, time.Millisecond)
				_ = m.Snapshot()
				m.QueueDepth.Add(-1)
			}
		}()
	}
	wg.Wait()
	s := m.Snapshot()
	if s.JobsSubmitted != 8000 || s.QueueDepth != 0 {
		t.Fatalf("final snapshot %+v", s)
	}
	if s.Stages["run"].Count != 8000 {
		t.Fatalf("run histogram count %d, want 8000", s.Stages["run"].Count)
	}
	var x86 TargetSnapshot
	for _, ts := range s.Targets {
		if ts.Target == "x86" {
			x86 = ts
		}
	}
	if x86.Jobs != 8000 || x86.Run.Count != 8000 {
		t.Fatalf("x86 target snapshot %+v", x86)
	}
}

// The cluster section: absent (and JSON-omitted) on single-node
// snapshots, rendered with per-peer counters in Text and as labelled
// Prometheus families when present.
func TestClusterSection(t *testing.T) {
	var m Metrics
	solo := m.Snapshot()
	blob, err := json.Marshal(solo)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(blob), "cluster") || strings.Contains(string(blob), "cache_peer_hits") {
		t.Errorf("single-node snapshot leaks cluster fields: %s", blob)
	}
	if strings.Contains(solo.Text(), "cluster_") {
		t.Errorf("single-node text leaks cluster lines:\n%s", solo.Text())
	}

	s := m.Snapshot()
	s.CachePeerHits = 3
	s.CachePeerQuarantines = 1
	s.Cluster = &ClusterSnapshot{
		Self:      "http://a:1",
		Members:   []string{"http://a:1", "http://b:2", "http://c:3"},
		Failovers: 2,
		Peers: []PeerStats{
			{Peer: "http://b:2", Hits: 3, Quarantines: 1, Errors: 0, Pushes: 4},
			{Peer: "http://c:3", Hits: 0, Quarantines: 0, Errors: 2, Pushes: 0},
		},
	}
	text := s.Text()
	for _, want := range []string{
		"cache_peer_hits    3",
		"cluster_failovers  2",
		"cluster_members    3",
		"cluster_peer http://b:2     hits=3 quarantines=1 errors=0 pushes=4",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("text missing %q:\n%s", want, text)
		}
	}
	prom := s.Prom()
	for _, want := range []string{
		"# TYPE omni_cluster_peer_hits_total counter",
		`omni_cluster_peer_hits_total{peer="http://b:2"} 3`,
		`omni_cluster_peer_quarantines_total{peer="http://b:2"} 1`,
		`omni_cluster_peer_errors_total{peer="http://c:3"} 2`,
		"omni_cluster_failovers_total 2",
		"omni_cache_peer_hits_total 3",
		"omni_cache_peer_quarantines_total 1",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("prom missing %q", want)
		}
	}
}

// MergeSnapshots is the fleet aggregation primitive: counters sum,
// stage histograms add bucket-wise with quantiles recomputed (never
// averaged), targets merge by name, and the cluster sections fold
// per peer address with reason splits merged key-wise and staleness
// keeping the freshest contact.
func TestMergeSnapshots(t *testing.T) {
	stage := func(d time.Duration, n int) StageSnapshot {
		var h trace.Histogram
		for i := 0; i < n; i++ {
			h.Observe(d)
		}
		hs := h.Snapshot()
		us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
		return StageSnapshot{Count: hs.Count, P50Us: us(hs.P50()), Hist: hs}
	}
	a := Snapshot{
		JobsRun: 3, Translations: 2, CachePeerHits: 1, QueueDepth: 2,
		Stages: map[string]StageSnapshot{
			"translate": stage(time.Millisecond, 2),
			"verify":    stage(100*time.Microsecond, 1),
		},
		Cluster: &ClusterSnapshot{
			Self: "http://a:1", Members: []string{"http://a:1", "http://b:1"}, Failovers: 1,
			Peers: []PeerStats{{
				Peer: "http://b:1", Hits: 4, Quarantines: 2,
				QuarantinesByReason: map[string]uint64{"hash": 1, "frame": 1},
				StalenessMs:         250,
			}},
		},
	}
	b := Snapshot{
		JobsRun: 5, Translations: 1, QueueDepth: 1,
		Stages: map[string]StageSnapshot{
			"translate": stage(4*time.Millisecond, 3),
			"decode":    stage(time.Microsecond, 2),
		},
		Cluster: &ClusterSnapshot{
			Self: "http://b:1", Members: []string{"http://b:1", "http://c:1"}, Failovers: 2,
			Peers: []PeerStats{
				{Peer: "http://b:1", Hits: 1, Quarantines: 1,
					QuarantinesByReason: map[string]uint64{"hash": 1}, StalenessMs: 10},
				{Peer: "http://c:1", Errors: 3, StalenessMs: -1},
			},
		},
	}

	m := MergeSnapshots(a, b)
	if m.JobsRun != 8 || m.Translations != 3 || m.CachePeerHits != 1 || m.QueueDepth != 3 {
		t.Fatalf("counters: %+v", m)
	}
	// Stage union: shared stages merge, one-sided stages survive.
	tr2 := m.Stages["translate"]
	if tr2.Count != 5 || tr2.Hist.Count != 5 {
		t.Fatalf("translate merged count %d/%d, want 5", tr2.Count, tr2.Hist.Count)
	}
	// The merged p95 must come from the merged buckets: ranks 3–5 of
	// the five samples sit in the 4ms bucket, so p95 lands there — not
	// at any average of the two locals' quantiles.
	if p95 := time.Duration(tr2.P95Us*1e3) * time.Nanosecond; p95 <= 2*time.Millisecond {
		t.Errorf("merged p95 %v looks averaged, want in the 4ms bucket", p95)
	}
	if m.Stages["verify"].Count != 1 || m.Stages["decode"].Count != 2 {
		t.Errorf("one-sided stages lost: %+v", m.Stages)
	}

	c := m.Cluster
	if c == nil {
		t.Fatal("cluster section dropped")
	}
	if c.Self != "http://a:1" || c.Failovers != 3 {
		t.Errorf("cluster self/failovers: %+v", c)
	}
	if len(c.Members) != 3 {
		t.Errorf("members union: %v", c.Members)
	}
	if len(c.Peers) != 2 {
		t.Fatalf("peers: %+v", c.Peers)
	}
	pb := c.Peers[0] // sorted by address: b before c
	if pb.Peer != "http://b:1" || pb.Hits != 5 || pb.Quarantines != 3 {
		t.Errorf("peer b fold: %+v", pb)
	}
	if pb.QuarantinesByReason["hash"] != 2 || pb.QuarantinesByReason["frame"] != 1 {
		t.Errorf("reason split fold: %+v", pb.QuarantinesByReason)
	}
	if pb.StalenessMs != 10 {
		t.Errorf("staleness %d, want the freshest contact 10", pb.StalenessMs)
	}
	if c.Peers[1].StalenessMs != -1 {
		t.Errorf("never-contacted peer staleness %d, want -1", c.Peers[1].StalenessMs)
	}

	// The inputs were not mutated by the fold.
	if a.Cluster.Peers[0].Hits != 4 || a.Cluster.Peers[0].QuarantinesByReason["hash"] != 1 {
		t.Error("MergeSnapshots mutated an input")
	}
	if len(a.Stages) != 2 || a.Stages["translate"].Count != 2 {
		t.Error("MergeSnapshots mutated input stages")
	}

	// Merging with a zero snapshot is the identity on every counter.
	id := MergeSnapshots(a, Snapshot{})
	if id.JobsRun != a.JobsRun || id.Stages["translate"].Count != 2 || id.Cluster.Failovers != 1 {
		t.Errorf("identity merge changed values: %+v", id)
	}
}
