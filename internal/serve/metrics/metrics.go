// Package metrics holds the serving layer's counters, gauges, latency
// histograms and per-target instruction-attribution counters. The
// hot-path updates are lock-free atomics; Snapshot produces a
// consistent-enough copy for reporting, Text renders it in a fixed
// order for logs and the omniserve summary, and Prom (prom.go) renders
// the Prometheus text exposition format for scrapers.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"omniware/internal/target"
	"omniware/internal/trace"
)

// StageNames lists the pipeline stages with latency histograms, in
// reporting order: wire decode (uploads), static audit (admission-time
// analysis, recorded by the upload path), queue wait (admission to
// dequeue), the translate stage (cache lookup through admission), the
// cluster peer probe within it (when a peer source is wired), SFI
// verification alone, and job run time (dequeue to completion, queue
// excluded).
var StageNames = []string{"decode", "audit", "queue_wait", "translate", "peer_fetch", "verify", "run"}

// AuditReasons is the closed set of audit-gate failure reasons
// (mirrors audit.GateReasons without the import). Outcome counters are
// pre-registered at zero for every reason in both the JSON snapshot
// and the Prometheus rendering, matching the quarantine-reason
// convention, so scrapers see the full label set from the first
// scrape.
var AuditReasons = []string{"stack", "cost", "capability", "recursion"}

// TargetCounters is the per-machine section: job and instruction
// counters by expansion category (the live form of the paper's
// overhead tables) plus a run-latency histogram.
type TargetCounters struct {
	Jobs   atomic.Uint64
	Counts [target.NumCats]atomic.Uint64
	Run    trace.Histogram
}

// AddRun charges one finished run to the target's counters.
func (tc *TargetCounters) AddRun(res target.Result, d time.Duration) {
	tc.Jobs.Add(1)
	for i, n := range res.Counts {
		tc.Counts[i].Add(n)
	}
	tc.Run.Observe(d)
}

// Metrics is the live counter set one Server owns. The zero value is
// ready to use. Cache counters live in the cache itself (see
// internal/mcache.Stats); the server merges them into the Snapshot it
// reports.
type Metrics struct {
	JobsSubmitted   atomic.Uint64 // jobs accepted into the queue
	JobsRun         atomic.Uint64 // jobs that finished cleanly (module exited)
	JobsFailed      atomic.Uint64 // jobs that failed (fault, budget, timeout, bad input)
	FaultsContained atomic.Uint64 // failed jobs whose fault the server absorbed
	Timeouts        atomic.Uint64 // failed jobs killed by the per-job deadline
	Translations    atomic.Uint64 // translations performed on behalf of jobs
	SimInsts        atomic.Uint64 // native instructions simulated across jobs
	SimCycles       atomic.Uint64 // simulated pipeline cycles across jobs
	QueueDepth      atomic.Int64  // jobs submitted but not yet finished

	// Stage latency histograms (see StageNames).
	Decode    trace.Histogram // wire decode, recorded by the upload path
	Audit     trace.Histogram // static audit, recorded by the upload path
	QueueWait trace.Histogram // submit to dequeue
	Translate trace.Histogram // the translate stage (cache call), per job
	PeerFetch trace.Histogram // cluster peer probe within the translate stage
	Verify    trace.Histogram // SFI verification, when the stage ran one
	Run       trace.Histogram // dequeue to completion (queue wait excluded)

	// Audit-gate outcomes: passes, and warn/reject splits indexed by
	// AuditReasons position.
	AuditPass    atomic.Uint64
	auditWarns   [4]atomic.Uint64
	auditRejects [4]atomic.Uint64

	targets [4]TargetCounters // indexed by target.Arch
}

// AuditWarn counts one warn-mode audit violation for reason (an
// AuditReasons member; anything else is dropped rather than growing
// the closed label set).
func (m *Metrics) AuditWarn(reason string) {
	if i := auditReasonIndex(reason); i >= 0 {
		m.auditWarns[i].Add(1)
	}
}

// AuditReject counts one enforce-mode audit rejection for reason.
func (m *Metrics) AuditReject(reason string) {
	if i := auditReasonIndex(reason); i >= 0 {
		m.auditRejects[i].Add(1)
	}
}

func auditReasonIndex(reason string) int {
	for i, r := range AuditReasons {
		if r == reason {
			return i
		}
	}
	return -1
}

// Target returns the per-machine counter section for arch.
func (m *Metrics) Target(a target.Arch) *TargetCounters { return &m.targets[a] }

// StageSnapshot summarizes one stage's latency distribution.
type StageSnapshot struct {
	Count uint64  `json:"count"`
	P50Us float64 `json:"p50_us"`
	P95Us float64 `json:"p95_us"`
	P99Us float64 `json:"p99_us"`

	// Hist carries the raw buckets — the Prometheus rendering walks
	// them, and the JSON snapshot exposes them so interval consumers
	// (omniload's before/after delta) can subtract two snapshots
	// bucket-wise and compute true interval quantiles instead of
	// conflating them with the process-lifetime ones above.
	Hist trace.HistSnapshot `json:"hist"`
}

func stageSnap(h *trace.Histogram) StageSnapshot {
	s := h.Snapshot()
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	return StageSnapshot{
		Count: s.Count,
		P50Us: us(s.P50()),
		P95Us: us(s.P95()),
		P99Us: us(s.P99()),
		Hist:  s,
	}
}

// TargetSnapshot is the per-machine overhead-attribution report: the
// live equivalent of one row of the paper's Tables 3–5.
type TargetSnapshot struct {
	Target     string            `json:"target"`
	Jobs       uint64            `json:"jobs"`
	Insts      uint64            `json:"insts"`
	AppInsts   uint64            `json:"app_insts"`
	SandboxPct float64           `json:"sandbox_pct"`
	Sandbox    uint64            `json:"sandbox_insts"`
	Sched      uint64            `json:"sched_insts"`
	Counts     map[string]uint64 `json:"counts"`
	Run        StageSnapshot     `json:"run"`
}

// Snapshot is a point-in-time copy of the counters plus the cache
// section the server fills in.
type Snapshot struct {
	JobsSubmitted   uint64 `json:"jobs_submitted"`
	JobsRun         uint64 `json:"jobs_run"`
	JobsFailed      uint64 `json:"jobs_failed"`
	FaultsContained uint64 `json:"faults_contained"`
	Timeouts        uint64 `json:"timeouts"`
	Translations    uint64 `json:"translations"`
	SimInsts        uint64 `json:"sim_insts"`
	SimCycles       uint64 `json:"sim_cycles"`
	QueueDepth      int64  `json:"queue_depth"`

	CacheHits      uint64 `json:"cache_hits"`
	CacheCoalesced uint64 `json:"cache_coalesced"`
	CacheMisses    uint64 `json:"cache_misses"`
	CacheEvictions uint64 `json:"cache_evictions"`
	CacheRejected  uint64 `json:"cache_rejected"`
	CacheEntries   int    `json:"cache_entries"`
	CacheBytes     int64  `json:"cache_bytes"`

	CacheDiskHits        uint64 `json:"cache_disk_hits"`
	CacheDiskWrites      uint64 `json:"cache_disk_writes"`
	CacheDiskQuarantines uint64 `json:"cache_disk_quarantines"`

	// CacheDisagreements counts dual-gate admissions where the two SFI
	// verifiers split the verdict (always also a rejection). Nonzero
	// means a verifier bug; alert on any increase.
	CacheDisagreements uint64 `json:"cache_disagreements"`

	// Cluster peer-fill counters (zero outside cluster mode; the JSON
	// fields are omitted so single-node snapshots are unchanged).
	CachePeerHits        uint64 `json:"cache_peer_hits,omitempty"`
	CachePeerQuarantines uint64 `json:"cache_peer_quarantines,omitempty"`
	CacheSpotChecks      uint64 `json:"cache_spot_checks,omitempty"`
	CacheSpotCheckFails  uint64 `json:"cache_spot_check_fails,omitempty"`

	// Audit pipeline counters (the cache's memoized derivations) and
	// gate outcomes. The warn/reject maps carry every AuditReasons key,
	// pre-registered at zero.
	CacheAudits           uint64 `json:"cache_audits"`
	CacheAuditHits        uint64 `json:"cache_audit_hits"`
	CacheAuditDiskWrites  uint64 `json:"cache_audit_disk_writes"`
	CacheAuditQuarantines uint64 `json:"cache_audit_quarantines"`

	AuditPass    uint64            `json:"audit_pass"`
	AuditWarns   map[string]uint64 `json:"audit_warns"`
	AuditRejects map[string]uint64 `json:"audit_rejects"`

	Stages  map[string]StageSnapshot `json:"stages"`
	Targets []TargetSnapshot         `json:"targets"`

	// Cluster, when the server runs as a cluster member, carries the
	// membership view and per-peer protocol counters.
	Cluster *ClusterSnapshot `json:"cluster,omitempty"`
}

// PeerStats is one peer's protocol counters as seen from this node.
type PeerStats struct {
	Peer        string `json:"peer"`
	Hits        uint64 `json:"hits"`        // translations admitted from this peer
	Quarantines uint64 `json:"quarantines"` // candidates from this peer the gate refused
	Errors      uint64 `json:"errors"`      // transport/protocol failures probing this peer
	Pushes      uint64 `json:"pushes"`      // hot-entry replications sent to this peer

	// QuarantinesByReason splits Quarantines by the closed reason set
	// (mcache.QuarantineReasons). Every reason is pre-registered at
	// zero so a scraper sees the full label set from the first scrape.
	QuarantinesByReason map[string]uint64 `json:"quarantines_by_reason,omitempty"`

	// StalenessMs is how long ago this peer last answered anything
	// (including a clean miss); -1 means never contacted.
	StalenessMs int64 `json:"staleness_ms"`
}

// ClusterSnapshot is the cluster section of a Snapshot: pure data, so
// the cluster package can fill it without this package importing it.
type ClusterSnapshot struct {
	Self      string      `json:"self"`
	Members   []string    `json:"members"`
	Failovers uint64      `json:"failovers"` // exec requests re-routed after a member failure
	Peers     []PeerStats `json:"peers,omitempty"`
}

// Snapshot copies the live counters (without the cache section).
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		JobsSubmitted:   m.JobsSubmitted.Load(),
		JobsRun:         m.JobsRun.Load(),
		JobsFailed:      m.JobsFailed.Load(),
		FaultsContained: m.FaultsContained.Load(),
		Timeouts:        m.Timeouts.Load(),
		Translations:    m.Translations.Load(),
		SimInsts:        m.SimInsts.Load(),
		SimCycles:       m.SimCycles.Load(),
		QueueDepth:      m.QueueDepth.Load(),
		AuditPass:       m.AuditPass.Load(),
		AuditWarns:      map[string]uint64{},
		AuditRejects:    map[string]uint64{},
		Stages: map[string]StageSnapshot{
			"decode":     stageSnap(&m.Decode),
			"audit":      stageSnap(&m.Audit),
			"queue_wait": stageSnap(&m.QueueWait),
			"translate":  stageSnap(&m.Translate),
			"peer_fetch": stageSnap(&m.PeerFetch),
			"verify":     stageSnap(&m.Verify),
			"run":        stageSnap(&m.Run),
		},
	}
	for i, r := range AuditReasons {
		s.AuditWarns[r] = m.auditWarns[i].Load()
		s.AuditRejects[r] = m.auditRejects[i].Load()
	}
	for a := range m.targets {
		tc := &m.targets[a]
		ts := TargetSnapshot{
			Target: target.Arch(a).String(),
			Jobs:   tc.Jobs.Load(),
			Counts: map[string]uint64{},
			Run:    stageSnap(&tc.Run),
		}
		var attr target.Attribution
		var counts [target.NumCats]uint64
		for c := range tc.Counts {
			counts[c] = tc.Counts[c].Load()
			ts.Counts[target.ExpCat(c).String()] = counts[c]
		}
		attr = target.Result{Counts: counts}.Attribution()
		ts.Insts = attr.Total()
		ts.AppInsts = attr.App
		ts.Sandbox = attr.Sandbox
		ts.Sched = attr.Sched
		ts.SandboxPct = attr.SandboxPct()
		s.Targets = append(s.Targets, ts)
	}
	return s
}

// MergeSnapshots adds two snapshots counter-wise — the fleet
// aggregation primitive behind /v1/cluster/metrics and omniload's
// multi-node reports. Counters and gauges sum; stage and per-target
// histograms merge bucket-wise (HistSnapshot.Add) with quantiles
// recomputed from the merged buckets, never averaged; cluster sections
// merge per peer address. The inputs are not mutated.
func MergeSnapshots(a, b Snapshot) Snapshot {
	out := a
	out.JobsSubmitted += b.JobsSubmitted
	out.JobsRun += b.JobsRun
	out.JobsFailed += b.JobsFailed
	out.FaultsContained += b.FaultsContained
	out.Timeouts += b.Timeouts
	out.Translations += b.Translations
	out.SimInsts += b.SimInsts
	out.SimCycles += b.SimCycles
	out.QueueDepth += b.QueueDepth
	out.CacheHits += b.CacheHits
	out.CacheCoalesced += b.CacheCoalesced
	out.CacheMisses += b.CacheMisses
	out.CacheEvictions += b.CacheEvictions
	out.CacheRejected += b.CacheRejected
	out.CacheEntries += b.CacheEntries
	out.CacheBytes += b.CacheBytes
	out.CacheDiskHits += b.CacheDiskHits
	out.CacheDiskWrites += b.CacheDiskWrites
	out.CacheDiskQuarantines += b.CacheDiskQuarantines
	out.CacheDisagreements += b.CacheDisagreements
	out.CachePeerHits += b.CachePeerHits
	out.CachePeerQuarantines += b.CachePeerQuarantines
	out.CacheSpotChecks += b.CacheSpotChecks
	out.CacheSpotCheckFails += b.CacheSpotCheckFails
	out.CacheAudits += b.CacheAudits
	out.CacheAuditHits += b.CacheAuditHits
	out.CacheAuditDiskWrites += b.CacheAuditDiskWrites
	out.CacheAuditQuarantines += b.CacheAuditQuarantines
	out.AuditPass += b.AuditPass
	out.AuditWarns = mergeReasons(a.AuditWarns, b.AuditWarns)
	out.AuditRejects = mergeReasons(a.AuditRejects, b.AuditRejects)

	out.Stages = map[string]StageSnapshot{}
	for n, st := range a.Stages {
		out.Stages[n] = st
	}
	for n, st := range b.Stages {
		out.Stages[n] = mergeStage(out.Stages[n], st)
	}

	out.Targets = nil
	byName := map[string]int{}
	for _, set := range [][]TargetSnapshot{a.Targets, b.Targets} {
		for _, ts := range set {
			i, ok := byName[ts.Target]
			if !ok {
				byName[ts.Target] = len(out.Targets)
				cp := ts
				cp.Counts = map[string]uint64{}
				for k, v := range ts.Counts {
					cp.Counts[k] = v
				}
				out.Targets = append(out.Targets, cp)
				continue
			}
			t := &out.Targets[i]
			t.Jobs += ts.Jobs
			t.Insts += ts.Insts
			t.AppInsts += ts.AppInsts
			t.Sandbox += ts.Sandbox
			t.Sched += ts.Sched
			for k, v := range ts.Counts {
				t.Counts[k] += v
			}
			t.Run = mergeStage(t.Run, ts.Run)
			if t.Insts > 0 {
				t.SandboxPct = 100 * float64(t.Sandbox) / float64(t.Insts)
			}
		}
	}
	sort.Slice(out.Targets, func(i, j int) bool { return out.Targets[i].Target < out.Targets[j].Target })

	out.Cluster = mergeCluster(a.Cluster, b.Cluster)
	return out
}

// mergeReasons sums two reason-split maps key-wise, preserving the
// pre-registered zero keys; nil in, nil out (hand-built snapshots).
func mergeReasons(a, b map[string]uint64) map[string]uint64 {
	if a == nil && b == nil {
		return nil
	}
	out := map[string]uint64{}
	for k, v := range a {
		out[k] += v
	}
	for k, v := range b {
		out[k] += v
	}
	return out
}

// mergeStage merges two stage summaries: counts sum, histograms add
// bucket-wise, and the quantiles are recomputed from the merged
// buckets.
func mergeStage(a, b StageSnapshot) StageSnapshot {
	h := a.Hist.Add(b.Hist)
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	return StageSnapshot{
		Count: a.Count + b.Count,
		P50Us: us(h.P50()),
		P95Us: us(h.P95()),
		P99Us: us(h.P99()),
		Hist:  h,
	}
}

// mergeCluster merges two cluster sections per peer address: counters
// sum, reason splits merge key-wise, and staleness keeps the freshest
// (smallest non-negative) contact age. Self keeps the first non-empty
// value (the fan-out origin); members union.
func mergeCluster(a, b *ClusterSnapshot) *ClusterSnapshot {
	if a == nil && b == nil {
		return nil
	}
	out := &ClusterSnapshot{}
	members := map[string]bool{}
	byPeer := map[string]int{}
	for _, cs := range []*ClusterSnapshot{a, b} {
		if cs == nil {
			continue
		}
		if out.Self == "" {
			out.Self = cs.Self
		}
		out.Failovers += cs.Failovers
		for _, m := range cs.Members {
			members[m] = true
		}
		for _, p := range cs.Peers {
			i, ok := byPeer[p.Peer]
			if !ok {
				byPeer[p.Peer] = len(out.Peers)
				cp := p
				cp.QuarantinesByReason = map[string]uint64{}
				for k, v := range p.QuarantinesByReason {
					cp.QuarantinesByReason[k] = v
				}
				out.Peers = append(out.Peers, cp)
				continue
			}
			q := &out.Peers[i]
			q.Hits += p.Hits
			q.Quarantines += p.Quarantines
			q.Errors += p.Errors
			q.Pushes += p.Pushes
			for k, v := range p.QuarantinesByReason {
				q.QuarantinesByReason[k] += v
			}
			if q.StalenessMs < 0 || (p.StalenessMs >= 0 && p.StalenessMs < q.StalenessMs) {
				q.StalenessMs = p.StalenessMs
			}
		}
	}
	for m := range members {
		out.Members = append(out.Members, m)
	}
	sort.Strings(out.Members)
	sort.Slice(out.Peers, func(i, j int) bool { return out.Peers[i].Peer < out.Peers[j].Peer })
	return out
}

// HitRate is the fraction of cache lookups served without a
// translation (memory hits, disk hits, peer fills, and coalesced
// waits), or 0 with no lookups.
func (s Snapshot) HitRate() float64 {
	warm := s.CacheHits + s.CacheCoalesced + s.CacheDiskHits + s.CachePeerHits
	total := warm + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(warm) / float64(total)
}

// Text renders the snapshot as fixed-order "name value" lines: the
// counter block first (stable since the first serving release), then
// stage latency lines, then one attribution line per active target.
func (s Snapshot) Text() string {
	var b strings.Builder
	w := func(name string, v any) { fmt.Fprintf(&b, "%-18s %v\n", name, v) }
	w("jobs_submitted", s.JobsSubmitted)
	w("jobs_run", s.JobsRun)
	w("jobs_failed", s.JobsFailed)
	w("faults_contained", s.FaultsContained)
	w("timeouts", s.Timeouts)
	w("translations", s.Translations)
	w("sim_insts", s.SimInsts)
	w("sim_cycles", s.SimCycles)
	w("queue_depth", s.QueueDepth)
	w("cache_hits", s.CacheHits)
	w("cache_coalesced", s.CacheCoalesced)
	w("cache_misses", s.CacheMisses)
	w("cache_evictions", s.CacheEvictions)
	w("cache_rejected", s.CacheRejected)
	w("cache_entries", s.CacheEntries)
	w("cache_bytes", s.CacheBytes)
	w("cache_disk_hits", s.CacheDiskHits)
	w("cache_disk_writes", s.CacheDiskWrites)
	w("cache_disk_quarantines", s.CacheDiskQuarantines)
	w("cache_disagreements", s.CacheDisagreements)
	w("cache_audits", s.CacheAudits)
	w("cache_audit_hits", s.CacheAuditHits)
	w("cache_audit_quarantines", s.CacheAuditQuarantines)
	w("audit_pass", s.AuditPass)
	for _, r := range AuditReasons {
		w("audit_warn_"+r, s.AuditWarns[r])
	}
	for _, r := range AuditReasons {
		w("audit_reject_"+r, s.AuditRejects[r])
	}
	if s.Cluster != nil || s.CachePeerHits+s.CachePeerQuarantines+s.CacheSpotChecks > 0 {
		w("cache_peer_hits", s.CachePeerHits)
		w("cache_peer_quarantines", s.CachePeerQuarantines)
		w("cache_spot_checks", s.CacheSpotChecks)
		w("cache_spot_check_fails", s.CacheSpotCheckFails)
	}
	w("cache_hit_rate", fmt.Sprintf("%.2f", s.HitRate()))
	if s.Cluster != nil {
		w("cluster_self", s.Cluster.Self)
		w("cluster_members", len(s.Cluster.Members))
		w("cluster_failovers", s.Cluster.Failovers)
		for _, p := range s.Cluster.Peers {
			fmt.Fprintf(&b, "cluster_peer %-14s hits=%d quarantines=%d errors=%d pushes=%d staleness_ms=%d\n",
				p.Peer, p.Hits, p.Quarantines, p.Errors, p.Pushes, p.StalenessMs)
		}
	}
	for _, name := range stageOrder(s.Stages) {
		st := s.Stages[name]
		fmt.Fprintf(&b, "stage_%-12s count=%d p50=%.0fus p95=%.0fus p99=%.0fus\n",
			name, st.Count, st.P50Us, st.P95Us, st.P99Us)
	}
	for _, ts := range s.Targets {
		if ts.Jobs == 0 {
			continue
		}
		fmt.Fprintf(&b, "target_%-11s jobs=%d insts=%d app=%d sfi=%d sched=%d sandbox_pct=%.2f\n",
			ts.Target, ts.Jobs, ts.Insts, ts.AppInsts, ts.Sandbox, ts.Sched, ts.SandboxPct)
	}
	return b.String()
}

// stageOrder returns StageNames restricted to the stages present in
// the map (hand-built snapshots in tests may carry a subset), in the
// canonical order, followed by any extras sorted by name.
func stageOrder(stages map[string]StageSnapshot) []string {
	var out []string
	seen := map[string]bool{}
	for _, n := range StageNames {
		if _, ok := stages[n]; ok {
			out = append(out, n)
			seen[n] = true
		}
	}
	var extra []string
	for n := range stages {
		if !seen[n] {
			extra = append(extra, n)
		}
	}
	sort.Strings(extra)
	return append(out, extra...)
}
