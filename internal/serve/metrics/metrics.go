// Package metrics holds the serving layer's counters and gauges. The
// hot-path updates are lock-free atomics; Snapshot produces a
// consistent-enough copy for reporting, and Text renders it in a fixed
// order for logs and the omniserve summary.
package metrics

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// Metrics is the live counter set one Server owns. The zero value is
// ready to use. Cache counters live in the cache itself (see
// internal/mcache.Stats); the server merges them into the Snapshot it
// reports.
type Metrics struct {
	JobsSubmitted   atomic.Uint64 // jobs accepted into the queue
	JobsRun         atomic.Uint64 // jobs that finished cleanly (module exited)
	JobsFailed      atomic.Uint64 // jobs that failed (fault, budget, timeout, bad input)
	FaultsContained atomic.Uint64 // failed jobs whose fault the server absorbed
	Timeouts        atomic.Uint64 // failed jobs killed by the per-job deadline
	Translations    atomic.Uint64 // translations performed on behalf of jobs
	SimInsts        atomic.Uint64 // native instructions simulated across jobs
	SimCycles       atomic.Uint64 // simulated pipeline cycles across jobs
	QueueDepth      atomic.Int64  // jobs submitted but not yet finished
}

// Snapshot is a point-in-time copy of the counters plus the cache
// section the server fills in.
type Snapshot struct {
	JobsSubmitted   uint64 `json:"jobs_submitted"`
	JobsRun         uint64 `json:"jobs_run"`
	JobsFailed      uint64 `json:"jobs_failed"`
	FaultsContained uint64 `json:"faults_contained"`
	Timeouts        uint64 `json:"timeouts"`
	Translations    uint64 `json:"translations"`
	SimInsts        uint64 `json:"sim_insts"`
	SimCycles       uint64 `json:"sim_cycles"`
	QueueDepth      int64  `json:"queue_depth"`

	CacheHits      uint64 `json:"cache_hits"`
	CacheCoalesced uint64 `json:"cache_coalesced"`
	CacheMisses    uint64 `json:"cache_misses"`
	CacheEvictions uint64 `json:"cache_evictions"`
	CacheRejected  uint64 `json:"cache_rejected"`
	CacheEntries   int    `json:"cache_entries"`
	CacheBytes     int64  `json:"cache_bytes"`

	CacheDiskHits        uint64 `json:"cache_disk_hits"`
	CacheDiskWrites      uint64 `json:"cache_disk_writes"`
	CacheDiskQuarantines uint64 `json:"cache_disk_quarantines"`
}

// Snapshot copies the live counters (without the cache section).
func (m *Metrics) Snapshot() Snapshot {
	return Snapshot{
		JobsSubmitted:   m.JobsSubmitted.Load(),
		JobsRun:         m.JobsRun.Load(),
		JobsFailed:      m.JobsFailed.Load(),
		FaultsContained: m.FaultsContained.Load(),
		Timeouts:        m.Timeouts.Load(),
		Translations:    m.Translations.Load(),
		SimInsts:        m.SimInsts.Load(),
		SimCycles:       m.SimCycles.Load(),
		QueueDepth:      m.QueueDepth.Load(),
	}
}

// HitRate is the fraction of cache lookups served without a
// translation (memory hits, disk hits, and coalesced waits), or 0
// with no lookups.
func (s Snapshot) HitRate() float64 {
	warm := s.CacheHits + s.CacheCoalesced + s.CacheDiskHits
	total := warm + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(warm) / float64(total)
}

// Text renders the snapshot as fixed-order "name value" lines.
func (s Snapshot) Text() string {
	var b strings.Builder
	w := func(name string, v any) { fmt.Fprintf(&b, "%-18s %v\n", name, v) }
	w("jobs_submitted", s.JobsSubmitted)
	w("jobs_run", s.JobsRun)
	w("jobs_failed", s.JobsFailed)
	w("faults_contained", s.FaultsContained)
	w("timeouts", s.Timeouts)
	w("translations", s.Translations)
	w("sim_insts", s.SimInsts)
	w("sim_cycles", s.SimCycles)
	w("queue_depth", s.QueueDepth)
	w("cache_hits", s.CacheHits)
	w("cache_coalesced", s.CacheCoalesced)
	w("cache_misses", s.CacheMisses)
	w("cache_evictions", s.CacheEvictions)
	w("cache_rejected", s.CacheRejected)
	w("cache_entries", s.CacheEntries)
	w("cache_bytes", s.CacheBytes)
	w("cache_disk_hits", s.CacheDiskHits)
	w("cache_disk_writes", s.CacheDiskWrites)
	w("cache_disk_quarantines", s.CacheDiskQuarantines)
	w("cache_hit_rate", fmt.Sprintf("%.2f", s.HitRate()))
	return b.String()
}
