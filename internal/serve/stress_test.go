package serve_test

import (
	"fmt"
	"testing"

	"omniware/internal/core"
	"omniware/internal/coretest"
	"omniware/internal/mcache"
	"omniware/internal/ovm"
	"omniware/internal/serve"
	"omniware/internal/target"
	"omniware/internal/translate"
)

// TestConcurrentWorkloadParity is the serving-layer stress test: every
// example program and (outside -short mode) every benchmark workload
// runs on all four targets simultaneously, repeatedly, against one
// shared translation cache — with a wild faulting module per target
// mixed into the same queue. Run under -race this exercises the
// system's two sharing claims at once: cached translations are safe to
// execute concurrently in many hosts, and a faulting job cannot
// disturb its neighbors. Every clean job's outcome must match the
// interpreter reference from the shared coretest harness.
func TestConcurrentWorkloadParity(t *testing.T) {
	const reps = 2

	cases := coretest.ExampleCases()
	if !testing.Short() {
		bc, err := coretest.BenchCases(1)
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, bc...)
	}

	// Build each module once and compute its interpreter reference —
	// the single source of truth all concurrent runs are compared to.
	type unit struct {
		c   *coretest.Case
		mod *ovm.Module
		ref coretest.Outcome
	}
	units := make([]unit, 0, len(cases))
	for i := range cases {
		c := &cases[i]
		mod, err := core.BuildC(c.Files, c.Opts)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		ref, err := c.RunInterp(mod)
		if err != nil {
			t.Fatalf("%s: interpreter reference: %v", c.Name, err)
		}
		units = append(units, unit{c: c, mod: mod, ref: ref})
	}
	evil := buildMod(t, wildLoadSrc)

	cache := mcache.New(0)
	s := serve.New(serve.Config{Workers: 8, Cache: cache})
	defer s.Close()

	var jobs []serve.Job
	want := make(map[string]coretest.Outcome)
	for _, u := range units {
		u := u
		for _, m := range target.Machines() {
			for rep := 0; rep < reps; rep++ {
				id := fmt.Sprintf("%s/%s/%d", u.c.Name, m.Name, rep)
				want[id] = u.ref
				j := serve.Job{ID: id, Mod: u.mod, Machine: m, Opt: translate.Paper(true)}
				if setup := u.c.Setup; setup != nil {
					mod := u.mod
					j.Setup = func(h *core.Host) error { return setup(h, mod) }
				}
				if post := u.c.Post; post != nil {
					mod := u.mod
					j.Post = func(h *core.Host) (string, error) { return post(h, mod) }
				}
				jobs = append(jobs, j)
			}
		}
	}
	for _, m := range target.Machines() {
		jobs = append(jobs, serve.Job{
			ID: "evil/" + m.Name, Mod: evil, Machine: m, Opt: translate.Paper(true),
		})
	}

	results := s.Run(jobs)
	for _, r := range results {
		ref, clean := want[r.ID]
		if !clean {
			if !r.Faulted {
				t.Errorf("%s: wild load did not fault: %+v", r.ID, r)
			}
			continue
		}
		if r.Err != nil {
			t.Errorf("%s: %v", r.ID, r.Err)
			continue
		}
		got := coretest.Outcome{Exit: r.ExitCode, Faulted: r.Faulted, Out: r.Output, Post: r.Post}
		if got != ref {
			t.Errorf("%s diverged from interpreter:\n  interp: %s\n  served: %s", r.ID, ref, got)
		}
	}

	// Cache accounting: singleflight guarantees exactly one translation
	// per distinct (module, machine) key no matter how the goroutines
	// interleave; everything else was a hit or a coalesced wait.
	nkeys := uint64((len(units) + 1) * len(target.Machines()))
	total := uint64(len(jobs))
	cs := cache.Stats()
	if cs.Misses != nkeys {
		t.Errorf("misses = %d, want one per key (%d)", cs.Misses, nkeys)
	}
	if cs.Hits+cs.Coalesced != total-nkeys {
		t.Errorf("hits+coalesced = %d+%d, want %d", cs.Hits, cs.Coalesced, total-nkeys)
	}
	snap := s.Snapshot()
	if snap.JobsRun+snap.JobsFailed != total || snap.QueueDepth != 0 {
		t.Errorf("job accounting off: %+v", snap)
	}
	if snap.JobsFailed != uint64(len(target.Machines())) {
		t.Errorf("jobs_failed = %d, want %d (one wild load per target)", snap.JobsFailed, len(target.Machines()))
	}
	if wantHR := float64(total-nkeys) / float64(total); snap.HitRate() != wantHR {
		t.Errorf("cache hit rate %.2f, want %.2f", snap.HitRate(), wantHR)
	}
}
