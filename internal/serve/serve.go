// Package serve turns the one-shot Omniware host into a module-hosting
// service: a worker pool executes (module, target, options) jobs, each
// in a fresh sandboxed address space, against a shared verified
// translation cache (internal/mcache) so translation cost is paid once
// per distinct program rather than once per run — the serving-layer
// consequence of the paper's load-time translation design.
//
// The fault-containment contract: anything a module does wrong — an
// access violation, an exhausted instruction budget, a blown per-job
// deadline — fails that job's Result and nothing else. Workers outlive
// misbehaving jobs; jobs never share mutable state (each owns its
// seg.Memory and hostapi.Env; only the immutable Module and its cached
// translations are shared).
package serve

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"omniware/internal/core"
	"omniware/internal/mcache"
	"omniware/internal/ovm"
	"omniware/internal/serve/metrics"
	"omniware/internal/target"
	"omniware/internal/trace"
	"omniware/internal/translate"
)

// Job is one request: run Mod on Machine under Opt with the given
// budgets. The zero values of the budget fields select the core
// defaults.
type Job struct {
	ID      string
	Mod     *ovm.Module
	Machine *target.Machine
	Opt     translate.Options

	Heap     uint32
	Stack    uint32
	MaxSteps uint64        // instruction budget (0 = core default)
	Timeout  time.Duration // wall-clock deadline (0 = none)

	// Setup, when non-nil, deposits job input into the freshly loaded
	// address space before execution (argv/stdin-style state), exactly
	// as the example hosts do.
	Setup func(h *core.Host) error

	// Post, when non-nil, runs after execution and digests module
	// memory into Result.Post — how a job extracts results the module
	// left in its address space (the docscript pattern).
	Post func(h *core.Host) (string, error)

	// HostData/HostBase pass through to core.RunConfig (a read-only
	// host segment for fault-injection scenarios).
	HostData []byte
	HostBase uint32

	// Decode, when nonzero, is the wire-decode cost already paid for
	// this module (at upload, in the network layer). It is attached to
	// the job trace as a backdated "decode" span so the rendered tree
	// covers the full pipeline the job logically passed through.
	Decode time.Duration

	// Audit, when nonzero, is the admission-time static-analysis cost
	// already paid for this module (at upload or peer fill, in the
	// network layer); like Decode it becomes a backdated span.
	Audit time.Duration

	// RequestID is the originating HTTP request id; it rides the trace
	// (trace.Trace.SetRequestID) so cross-node peer probes forward the
	// origin's id instead of minting one per hop.
	RequestID string

	// ModuleFetch, when nonzero, is the time the network layer spent
	// pulling the module from a cluster peer before admission; like
	// Decode it becomes a backdated span. ModuleFetchRemote, when the
	// peer returned one, is that node's own span subtree for the fetch,
	// grafted under the backdated span with ModuleFetchPeer as its node
	// annotation.
	ModuleFetch       time.Duration
	ModuleFetchRemote *trace.Span
	ModuleFetchPeer   string
}

// Result is one job's outcome. Err reports job-level failure
// (translation rejected, timeout, budget exhaustion, bad input); the
// fields below it are valid when Err is nil.
type Result struct {
	ID       string
	Err      error
	ExitCode int32
	Output   string
	Faulted  bool // module died on an unhandled access violation
	Fault    string
	Cycles   uint64
	Insts    uint64
	Cached   bool   // translation served from the cache (hit or coalesced)
	Post     string // output of Job.Post, when set

	// QueueWait is how long the job sat admitted-but-unstarted; Run is
	// dequeue to completion. Their sum is the job's wall-clock inside
	// the server — the split tells congestion apart from slow modules.
	QueueWait time.Duration
	Run       time.Duration

	// Attr groups the dynamic instruction counts by who they work for
	// (valid when the module actually ran).
	Attr target.Attribution

	// Trace is the job's finished span tree (also retrievable from the
	// server's trace ring by job ID).
	Trace *trace.Trace
}

// Config sizes a Server. Zero values select defaults.
type Config struct {
	Workers  int              // worker goroutines (default GOMAXPROCS)
	QueueCap int              // submit backlog before Submit blocks (default 256)
	Cache    *mcache.Cache    // shared translation cache (default mcache.New(0))
	Metrics  *metrics.Metrics // counter set (default fresh)
	TraceCap int              // recent-trace ring capacity (default trace.DefaultRecorderCap)
	SlowCap  int              // slow-trace exemplar retention (default trace.DefaultTopKCap)
}

type task struct {
	job Job
	ch  chan Result
	tr  *trace.Trace // created at admission; Begin marks submit time
}

// ErrClosed is the Result.Err of a job submitted after Close: the
// server refused it without running anything.
var ErrClosed = errors.New("serve: server closed")

// Process exit codes shared by the serving CLIs (omniserve, omnictl):
// clean, "the service worked but some jobs faulted (contained)", and
// "the infrastructure itself failed or was misused". Parity
// mismatches count as infrastructure failures — they mean the system,
// not the module, is wrong.
const (
	ExitOK     = 0 // every job ran cleanly
	ExitFaults = 1 // some jobs faulted or failed; every fault contained
	ExitInfra  = 2 // manifest/flag/build/network errors, or parity loss
)

// Server is a running worker pool. Create with New, feed with Submit
// or Run, stop with Close.
type Server struct {
	cache  *mcache.Cache
	met    *metrics.Metrics
	traces *trace.Recorder
	slow   *trace.TopK
	tasks  chan task
	wg     sync.WaitGroup

	// cluster, when set, supplies the cluster section of Snapshot
	// (see SetClusterSnapshot).
	cluster func() metrics.ClusterSnapshot

	// closeMu serializes Submit sends against Close's channel close:
	// Submit holds it shared around the send, Close holds it exclusive
	// while flipping closed — so no send can race the close, and
	// Submit after Close fails softly instead of panicking.
	closeMu sync.RWMutex
	closed  bool
}

// New starts a server with cfg's workers.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 256
	}
	if cfg.Cache == nil {
		cfg.Cache = mcache.New(0)
	}
	if cfg.Metrics == nil {
		cfg.Metrics = &metrics.Metrics{}
	}
	s := &Server{
		cache:  cfg.Cache,
		met:    cfg.Metrics,
		traces: trace.NewRecorder(cfg.TraceCap),
		slow:   trace.NewTopK(cfg.SlowCap),
		tasks:  make(chan task, cfg.QueueCap),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Submit enqueues a job and returns the channel its Result will be
// delivered on (buffered; the worker never blocks on it). Submit
// blocks while the queue is full. Submitting to a closed server (or
// one that closes while the job waits for a queue slot) is safe: the
// job is refused with a Result whose Err is ErrClosed.
func (s *Server) Submit(j Job) <-chan Result {
	ch := make(chan Result, 1)
	s.closeMu.RLock()
	if s.closed {
		s.closeMu.RUnlock()
		ch <- Result{ID: j.ID, Err: ErrClosed}
		return ch
	}
	s.met.JobsSubmitted.Add(1)
	s.met.QueueDepth.Add(1)
	s.tasks <- task{job: j, ch: ch, tr: s.newTrace(j)}
	s.closeMu.RUnlock()
	return ch
}

// newTrace opens the job's trace at admission time, so the root span
// covers queue wait as well as execution.
func (s *Server) newTrace(j Job) *trace.Trace {
	tr := trace.New(j.ID, "job")
	tr.SetRequestID(j.RequestID)
	if j.Machine != nil {
		tr.Target = j.Machine.Name
	}
	if j.Decode > 0 {
		tr.Root.ChildSpan("decode", 0, j.Decode).Set("at", "upload")
	}
	if j.Audit > 0 {
		tr.Root.ChildSpan("audit", 0, j.Audit).Set("at", "upload")
	}
	if j.ModuleFetch > 0 {
		msp := tr.Root.ChildSpan("module_fetch", 0, j.ModuleFetch)
		if j.ModuleFetchPeer != "" {
			msp.Set("peer", j.ModuleFetchPeer)
		}
		msp.AttachRemote(j.ModuleFetchRemote, j.ModuleFetchPeer)
	}
	return tr
}

// TrySubmit is the non-blocking Submit the network front door uses to
// shed load: when the server is closed or the admission queue is full
// it reports false immediately instead of queueing, and the caller
// turns that into backpressure (HTTP 429) rather than unbounded
// buffering.
func (s *Server) TrySubmit(j Job) (<-chan Result, bool) {
	ch := make(chan Result, 1)
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed {
		return nil, false
	}
	select {
	case s.tasks <- task{job: j, ch: ch, tr: s.newTrace(j)}:
		s.met.JobsSubmitted.Add(1)
		s.met.QueueDepth.Add(1)
		return ch, true
	default:
		return nil, false
	}
}

// Run submits jobs and returns their results in input order.
func (s *Server) Run(jobs []Job) []Result {
	chans := make([]<-chan Result, len(jobs))
	for i, j := range jobs {
		chans[i] = s.Submit(j)
	}
	out := make([]Result, len(jobs))
	for i, ch := range chans {
		out[i] = <-ch
	}
	return out
}

// Close stops accepting jobs and waits for queued and in-flight ones
// to finish. It is idempotent and safe to call concurrently — with
// other Close calls and with in-flight Submit/TrySubmit: submissions
// that lose the race are refused with ErrClosed, never lost or
// panicked on, and every Close call waits for the drain to complete.
func (s *Server) Close() {
	s.closeMu.Lock()
	if !s.closed {
		s.closed = true
		close(s.tasks)
	}
	s.closeMu.Unlock()
	s.wg.Wait()
}

// Cache returns the shared translation cache.
func (s *Server) Cache() *mcache.Cache { return s.cache }

// Metrics returns the live counter set.
func (s *Server) Metrics() *metrics.Metrics { return s.met }

// Traces returns the ring of recent finished job traces.
func (s *Server) Traces() *trace.Recorder { return s.traces }

// Slow returns the slow-trace exemplar store: the K slowest finished
// traces this server ever produced, surviving arbitrary ring churn.
func (s *Server) Slow() *trace.TopK { return s.slow }

// Snapshot merges the server counters with the cache's.
func (s *Server) Snapshot() metrics.Snapshot {
	snap := s.met.Snapshot()
	cs := s.cache.Stats()
	snap.CacheHits = cs.Hits
	snap.CacheCoalesced = cs.Coalesced
	snap.CacheMisses = cs.Misses
	snap.CacheEvictions = cs.Evictions
	snap.CacheRejected = cs.Rejected
	snap.CacheEntries = cs.Entries
	snap.CacheBytes = cs.CodeBytes
	snap.CacheDiskHits = cs.DiskHits
	snap.CacheDiskWrites = cs.DiskWrites
	snap.CacheDiskQuarantines = cs.DiskQuarantines
	snap.CacheDisagreements = cs.Disagreements
	snap.CachePeerHits = cs.PeerHits
	snap.CachePeerQuarantines = cs.PeerQuarantines
	snap.CacheSpotChecks = cs.SpotChecks
	snap.CacheSpotCheckFails = cs.SpotCheckFails
	if s.cluster != nil {
		cl := s.cluster()
		snap.Cluster = &cl
	}
	return snap
}

// SetClusterSnapshot installs the provider for the cluster section of
// Snapshot — the cluster layer registers itself here so /v1/metrics
// reports membership and per-peer counters without this package
// importing it.
func (s *Server) SetClusterSnapshot(fn func() metrics.ClusterSnapshot) { s.cluster = fn }

func (s *Server) worker() {
	defer s.wg.Done()
	for t := range s.tasks {
		// Queue wait: trace begin (admission) to now (dequeue). The
		// backdated child keeps the span tree consistent even though the
		// wait happened on no goroutine at all.
		qd := time.Since(t.tr.Begin)
		t.tr.Root.ChildSpan("queue_wait", 0, qd)
		s.met.QueueWait.Observe(qd)

		runStart := time.Now()
		r := s.execute(t.job, t.tr)
		rd := time.Since(runStart)
		s.met.Run.Observe(rd)
		r.QueueWait, r.Run = qd, rd

		status := "ok"
		switch {
		case r.Err != nil:
			status = "error"
		case r.Faulted:
			status = "faulted"
		}
		if r.Err != nil || r.Faulted {
			s.met.JobsFailed.Add(1)
		} else {
			s.met.JobsRun.Add(1)
		}
		t.tr.Finish(status)
		s.traces.Add(t.tr)
		s.slow.Add(t.tr)
		r.Trace = t.tr
		s.met.QueueDepth.Add(-1)
		t.ch <- r
	}
}

// errJobPanic marks the error execute synthesizes when a job panics a
// worker; the panic was absorbed, so it classifies as contained.
var errJobPanic = errors.New("job panicked")

// contained reports whether a job error is a fault the sandbox
// absorbed (as opposed to a malformed request the server refused).
// Classification is by typed sentinel, not message text: a reworded
// error cannot silently stop counting as contained.
func contained(err error) bool {
	return errors.Is(err, core.ErrBudget) ||
		errors.Is(err, core.ErrInterrupted) ||
		errors.Is(err, errJobPanic)
}

// execute runs one job start to finish, hanging stage spans off the
// trace root as it goes. Panics anywhere in the job path are converted
// into a failed Result — a wild job must never take a worker (or the
// server) down with it.
func (s *Server) execute(j Job, tr *trace.Trace) (r Result) {
	r.ID = j.ID
	root := tr.Root
	defer func() {
		if p := recover(); p != nil {
			r.Err = fmt.Errorf("serve: job %q %w: %v", j.ID, errJobPanic, p)
			s.met.FaultsContained.Add(1)
		}
	}()
	if j.Mod == nil || j.Machine == nil {
		r.Err = fmt.Errorf("serve: job %q missing module or machine", j.ID)
		return r
	}

	// Every job gets its own address space, layout and host
	// environment; only the module and the cached translation are
	// shared, and both are immutable. The address space is drawn from
	// the host pool — recycled, scrubbed segments rather than a fresh
	// 16 MB allocation per job — which is what keeps the warm-cache
	// execute path allocation-free.
	var stop atomic.Bool
	lsp := root.Child("load")
	h, err := core.AcquireHost(j.Mod, core.RunConfig{
		Heap:      j.Heap,
		Stack:     j.Stack,
		MaxSteps:  j.MaxSteps,
		Interrupt: &stop,
		HostData:  j.HostData,
		HostBase:  j.HostBase,
	})
	lsp.End()
	if err != nil {
		r.Err = fmt.Errorf("serve: job %q load: %w", j.ID, err)
		return r
	}
	defer h.Release()
	if j.Setup != nil {
		ssp := root.Child("setup")
		err := j.Setup(h)
		ssp.End()
		if err != nil {
			r.Err = fmt.Errorf("serve: job %q setup: %w", j.ID, err)
			return r
		}
	}

	var prog *target.Program
	if j.Opt.SFI {
		csp := root.Child("cache")
		prog, r.Cached, err = s.cache.TranslateTraced(csp, j.Mod, j.Machine, h.SegInfo(), j.Opt)
		s.met.Translate.Observe(csp.End())
		if vsp := csp.Find("verify"); vsp != nil {
			s.met.Verify.Observe(vsp.Dur())
		}
		if psp := csp.Find("peer_fetch"); psp != nil {
			s.met.PeerFetch.Observe(psp.Dur())
		}
		if err == nil && !r.Cached {
			s.met.Translations.Add(1)
		}
	} else {
		// Unsandboxed runs bypass the verified cache by design: the
		// cache's admission contract is exactly that everything in it
		// passed the SFI verifier.
		tsp := root.Child("translate").Set("result", "uncached")
		prog, err = h.Translate(j.Machine, j.Opt)
		s.met.Translate.Observe(tsp.End())
		s.met.Translations.Add(1)
	}
	if err != nil {
		r.Err = fmt.Errorf("serve: job %q translation: %w", j.ID, err)
		return r
	}

	if j.Timeout > 0 {
		timer := time.AfterFunc(j.Timeout, func() { stop.Store(true) })
		defer timer.Stop()
	}
	xsp := root.Child("execute")
	res, err := h.RunProgram(j.Machine, prog)
	execDur := xsp.End()
	if err != nil {
		if stop.Load() && errors.Is(err, core.ErrInterrupted) {
			s.met.Timeouts.Add(1)
		}
		if contained(err) {
			s.met.FaultsContained.Add(1)
		}
		r.Err = fmt.Errorf("serve: job %q: %w", j.ID, err)
		return r
	}
	r.ExitCode = res.ExitCode
	r.Output = h.Output()
	r.Faulted = res.Faulted
	r.Fault = res.Fault
	r.Cycles = res.Cycles
	r.Insts = res.Insts
	r.Attr = res.Attribution()
	xsp.Set("insts", res.Insts).Set("cycles", res.Cycles)
	tr.Insts = res.Insts
	tr.AppInsts = r.Attr.App
	tr.SandboxInsts = r.Attr.Sandbox
	tr.SchedInsts = r.Attr.Sched
	s.met.SimCycles.Add(res.Cycles)
	s.met.SimInsts.Add(res.Insts)
	s.met.Target(j.Machine.Arch).AddRun(res, execDur)
	if res.Faulted {
		s.met.FaultsContained.Add(1)
	}
	if j.Post != nil {
		psp := root.Child("post")
		r.Post, err = j.Post(h)
		psp.End()
		if err != nil {
			r.Err = fmt.Errorf("serve: job %q post: %w", j.ID, err)
		}
	}
	return r
}
