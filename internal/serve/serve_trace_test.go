package serve_test

import (
	"strings"
	"testing"
	"time"

	"omniware/internal/serve"
	"omniware/internal/serve/metrics"
	"omniware/internal/target"
	"omniware/internal/translate"
)

// Every finished job must leave a complete trace: a root with
// queue_wait / cache (or translate) / execute children, nonzero
// durations, the instruction attribution, and retrievability from the
// server's ring by job ID.
func TestJobTraceRecorded(t *testing.T) {
	mod := buildMod(t, goodSrc)
	s := serve.New(serve.Config{Workers: 1})
	defer s.Close()

	m := target.SPARCMachine()
	r := <-s.Submit(serve.Job{ID: "traced-1", Mod: mod, Machine: m, Opt: translate.Paper(true)})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.Trace == nil {
		t.Fatal("result carries no trace")
	}
	tr := s.Traces().Get("traced-1")
	if tr != r.Trace {
		t.Fatalf("ring returned %p, result carried %p", tr, r.Trace)
	}
	if tr.Status != "ok" || tr.Target != m.Name {
		t.Fatalf("trace header %+v", tr)
	}
	for _, name := range []string{"queue_wait", "cache", "execute"} {
		sp := tr.Root.Find(name)
		if sp == nil {
			t.Fatalf("trace missing span %q:\n%s", name, tr.Render())
		}
		if sp.Dur() <= 0 {
			t.Fatalf("span %q has non-positive duration:\n%s", name, tr.Render())
		}
	}
	// The cold path translated and verified inside the cache span.
	for _, name := range []string{"translate", "verify"} {
		if tr.Root.Find(name) == nil {
			t.Fatalf("cold-path trace missing %q child:\n%s", name, tr.Render())
		}
	}
	if tr.Insts == 0 || tr.Insts != tr.AppInsts+tr.SandboxInsts+tr.SchedInsts {
		t.Fatalf("attribution incomplete: %+v", tr)
	}
	if tr.SandboxInsts == 0 || tr.SandboxPct() <= 0 {
		t.Fatalf("sandboxed run reported no sandbox overhead: %+v", tr)
	}
	if !strings.Contains(tr.Render(), "queue_wait") {
		t.Fatal("render misses spans")
	}

	// A warm job's cache span records the hit and skips translation.
	r2 := <-s.Submit(serve.Job{ID: "traced-2", Mod: mod, Machine: m, Opt: translate.Paper(true)})
	if r2.Err != nil || !r2.Cached {
		t.Fatalf("warm job: %+v", r2)
	}
	tr2 := s.Traces().Get("traced-2")
	if tr2 == nil || tr2.Root.Find("translate") != nil {
		t.Fatalf("warm trace should have no translate span:\n%s", tr2.Render())
	}
	if got := s.Traces().Recent(10); len(got) < 2 || got[0].ID != "traced-2" {
		t.Fatalf("Recent returned %d traces, newest %q", len(got), got[0].ID)
	}
}

func targetSnap(t *testing.T, snap metrics.Snapshot, name string) metrics.TargetSnapshot {
	t.Helper()
	for _, ts := range snap.Targets {
		if ts.Target == name {
			return ts
		}
	}
	t.Fatalf("no target %q in snapshot", name)
	return metrics.TargetSnapshot{}
}

// The job wall-clock must be split into queue wait and run time, both
// observed in the stage histograms and mirrored in the trace.
func TestQueueWaitRunSplit(t *testing.T) {
	mod := buildMod(t, goodSrc)
	s := serve.New(serve.Config{Workers: 1, QueueCap: 8})
	defer s.Close()

	m := target.PPCMachine()
	// One worker: the second job necessarily queues behind the first.
	first := s.Submit(serve.Job{ID: "first", Mod: mod, Machine: m, Opt: translate.Paper(true)})
	second := s.Submit(serve.Job{ID: "second", Mod: mod, Machine: m, Opt: translate.Paper(true)})
	r1, r2 := <-first, <-second

	for _, r := range []serve.Result{r1, r2} {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if r.QueueWait <= 0 || r.Run <= 0 {
			t.Fatalf("job %s: queue_wait=%v run=%v, want both positive", r.ID, r.QueueWait, r.Run)
		}
		qs := r.Trace.Root.Find("queue_wait")
		if qs == nil {
			t.Fatalf("job %s trace has no queue_wait span", r.ID)
		}
		if got := time.Duration(qs.DurNs); got != r.QueueWait {
			t.Fatalf("job %s: span queue_wait %v != result %v", r.ID, got, r.QueueWait)
		}
	}

	snap := s.Snapshot()
	if snap.Stages["queue_wait"].Count != 2 || snap.Stages["run"].Count != 2 {
		t.Fatalf("stage counts: %+v", snap.Stages)
	}
	ts := targetSnap(t, snap, "ppc")
	if ts.Jobs != 2 || ts.Sandbox == 0 || ts.SandboxPct <= 0 {
		t.Fatalf("ppc target snapshot %+v", ts)
	}
}
