package netserve_test

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"testing"

	"omniware/internal/netserve"
	"omniware/internal/serve"
)

// The store program gives every target nonzero sandbox attribution.
const storeSrc = `
int buf[64];
int main(void) {
	int i;
	int *p = buf;
	for (i = 0; i < 40; i++) p[i] = i;
	return p[7];
}`

func execOne(t *testing.T, cl *netserve.Client, blob []byte, req netserve.ExecRequest) *netserve.ExecResponse {
	t.Helper()
	up, err := cl.Upload(blob)
	if err != nil {
		t.Fatal(err)
	}
	req.Module = up.Hash
	if req.Target == "" {
		req.Target = "mips"
	}
	resp, err := cl.Exec(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// /v1/metrics speaks JSON by default and the Prometheus text format
// when the scraper's Accept header asks for version 0.0.4.
func TestMetricsContentNegotiation(t *testing.T) {
	cl, _, _ := startServer(t, serve.Config{Workers: 1}, netserve.Config{})
	blob := buildBlob(t, storeSrc)
	execOne(t, cl, blob, netserve.ExecRequest{})

	// Default: JSON.
	resp, err := http.Get(cl.Base + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("default Content-Type %q, want application/json", ct)
	}
	var snap map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap["jobs_run"].(float64) != 1 {
		t.Fatalf("jobs_run = %v", snap["jobs_run"])
	}
	if _, ok := snap["stages"]; !ok {
		t.Fatal("JSON snapshot missing stages")
	}

	// Prometheus negotiation.
	req, _ := http.NewRequest(http.MethodGet, cl.Base+"/v1/metrics", nil)
	req.Header.Set("Accept", "text/plain; version=0.0.4")
	presp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer presp.Body.Close()
	if ct := presp.Header.Get("Content-Type"); ct != netserve.PromContentType {
		t.Fatalf("prom Content-Type %q", ct)
	}
	text, err := cl.MetricsProm()
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{
		"# TYPE omni_jobs_run_total counter",
		"omni_jobs_run_total 1",
		`omni_stage_latency_seconds_bucket{stage="run",le="+Inf"} 1`,
		`omni_target_jobs_total{target="mips"} 1`,
		`omni_target_sandbox_pct{target="mips"}`,
	} {
		if !strings.Contains(text, frag) {
			t.Errorf("prom exposition missing %q:\n%s", frag, text[:min(2000, len(text))])
		}
	}

	// A multi-range Accept that includes the prom media type still
	// negotiates prom; a plain text/plain without the version does not.
	req.Header.Set("Accept", "application/json;q=0.5, text/plain;version=0.0.4;q=0.9")
	if r2, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		r2.Body.Close()
		if ct := r2.Header.Get("Content-Type"); ct != netserve.PromContentType {
			t.Errorf("multi-range Accept negotiated %q", ct)
		}
	}
	req.Header.Set("Accept", "text/plain")
	if r3, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		r3.Body.Close()
		if ct := r3.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("versionless text/plain negotiated %q, want JSON", ct)
		}
	}
}

// Trace retrieval: the exec response can echo the span tree, and the
// trace endpoints serve it by job ID and in the recent listing.
func TestTraceEndpoints(t *testing.T) {
	cl, _, _ := startServer(t, serve.Config{Workers: 1}, netserve.Config{})
	blob := buildBlob(t, storeSrc)
	resp := execOne(t, cl, blob, netserve.ExecRequest{Target: "x86", Trace: true})
	if resp.Status != "ok" {
		t.Fatalf("exec: %+v", resp)
	}
	if resp.Trace == nil || resp.Trace.Root.Find("execute") == nil {
		t.Fatalf("exec did not echo a trace with an execute span: %+v", resp.Trace)
	}
	if resp.QueueWaitUs < 0 || resp.RunUs <= 0 {
		t.Fatalf("wall-clock split queue=%dus run=%dus", resp.QueueWaitUs, resp.RunUs)
	}

	tr, err := cl.Trace(resp.ID)
	if err != nil {
		t.Fatal(err)
	}
	if tr.ID != resp.ID || tr.Status != "ok" || tr.Target != "x86" {
		t.Fatalf("fetched trace header %+v", tr)
	}
	// The JSON round trip preserves the tree and the attribution,
	// including the decode stage inherited from the module's upload.
	for _, name := range []string{"decode", "queue_wait", "cache", "execute"} {
		if tr.Root.Find(name) == nil {
			t.Fatalf("fetched trace missing span %q:\n%s", name, tr.Render())
		}
	}
	if tr.SandboxInsts == 0 || tr.SandboxPct() <= 0 {
		t.Fatalf("store-heavy module reported no sandbox overhead: %+v", tr)
	}

	recent, err := cl.RecentTraces(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(recent) != 1 || recent[0].ID != resp.ID || recent[0].SandboxPct <= 0 {
		t.Fatalf("recent listing %+v", recent)
	}

	// Unknown IDs 404 with a request ID on the error.
	_, err = cl.Trace("no-such-job")
	var se *netserve.StatusError
	if !errors.As(err, &se) || se.Code != http.StatusNotFound {
		t.Fatalf("unknown trace: %v", err)
	}
	if se.RequestID == "" {
		t.Fatal("404 carried no request ID")
	}
}

// Error responses of every class carry X-Omni-Request-Id, and the
// client surfaces it.
func TestErrorResponsesCarryRequestID(t *testing.T) {
	cl, h, _ := startServer(t, serve.Config{Workers: 1}, netserve.Config{})

	// 400: malformed exec body.
	resp, err := http.Post(cl.Base+"/v1/exec", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || resp.Header.Get(netserve.RequestIDHeader) == "" {
		t.Fatalf("400 status=%d id=%q", resp.StatusCode, resp.Header.Get(netserve.RequestIDHeader))
	}

	// 404 via the typed client error.
	_, err = cl.Exec(netserve.ExecRequest{Module: "absent", Target: "mips"})
	var se *netserve.StatusError
	if !errors.As(err, &se) || se.RequestID == "" {
		t.Fatalf("404 error = %v, want StatusError with request ID", err)
	}
	if !strings.Contains(se.Error(), se.RequestID) {
		t.Fatalf("error string %q does not name the request", se.Error())
	}

	// 503 while draining.
	h.SetDraining(true)
	_, err = cl.Exec(netserve.ExecRequest{Module: "absent", Target: "mips"})
	if !errors.As(err, &se) || se.Code != http.StatusServiceUnavailable || se.RequestID == "" {
		t.Fatalf("503 error = %v", err)
	}
	h.SetDraining(false)

	// Distinct requests get distinct IDs.
	r1, err := http.Get(cl.Base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	r1.Body.Close()
	r2, err := http.Get(cl.Base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	id1, id2 := r1.Header.Get(netserve.RequestIDHeader), r2.Header.Get(netserve.RequestIDHeader)
	if id1 == "" || id1 == id2 {
		t.Fatalf("request IDs %q, %q not distinct", id1, id2)
	}
}
