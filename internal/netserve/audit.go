// Admission-time audit gating: every module entering the registry —
// uploaded directly, batched, or peer-filled on an exec miss — passes
// through the static-analysis pipeline (internal/audit) before it is
// registered, and the configured policy decides what a violation
// means:
//
//	off      analysis only on demand (GET /v1/audit/{hash}); no gate
//	warn     analyze at admission, log + count violations, admit anyway
//	enforce  analyze at admission, refuse violating modules with 422
//
// The gate sits in front of register() on every path, so a module the
// policy refuses is never servable from this node — including the
// peer-fill path, where a cold node re-derives the audit itself rather
// than trusting the digest the supplying peer advertises. The report
// itself is memoized and persisted by mcache (Cache.AuditHashed) under
// the same verified-on-arrival discipline as translations.
package netserve

import (
	"fmt"
	"net/http"
	"strings"
	"time"

	"omniware/internal/audit"
	"omniware/internal/ovm"
)

// Audit gate modes for AuditConfig.Mode. The zero value selects
// AuditOff.
const (
	AuditOff     = "off"
	AuditWarn    = "warn"
	AuditEnforce = "enforce"
)

// AuditDigestHeader carries the serving node's audit-report digest on
// peer module responses. It is advisory: the receiver re-derives the
// report and compares, logging a divergence — admission is always
// decided by the local derivation, never by the header.
const AuditDigestHeader = "X-Omni-Audit-Digest"

// AuditConfig is the admission-gate policy for Config.Audit.
type AuditConfig struct {
	// Mode is off, warn or enforce ("" = off).
	Mode string
	// MaxStackBytes, when > 0, caps the proven worst-case stack depth;
	// unbounded stacks violate too. MaxCostCycles, when > 0, caps the
	// whole-module static cycle bound on every target.
	MaxStackBytes int64
	MaxCostCycles uint64
	// Capabilities, when non-nil, is the allow-list of hostapi entry
	// points a module may reach.
	Capabilities []string
}

func (a AuditConfig) enabled() bool { return a.Mode == AuditWarn || a.Mode == AuditEnforce }

func (a AuditConfig) validate() error {
	switch a.Mode {
	case "", AuditOff, AuditWarn, AuditEnforce:
		return nil
	}
	return fmt.Errorf("netserve: unknown audit mode %q (want off, warn or enforce)", a.Mode)
}

func (a AuditConfig) limits() audit.Limits {
	return audit.Limits{
		MaxStackBytes: a.MaxStackBytes,
		MaxCostCycles: a.MaxCostCycles,
		Capabilities:  a.Capabilities,
	}
}

// AuditSummary is the slice of the audit report an upload response
// carries: the capability manifest, the stack proof, and the digest
// naming the full report (retrievable from GET /v1/audit/{hash}).
// Warnings lists violations the warn-mode gate let through.
type AuditSummary struct {
	Digest       string   `json:"digest"`
	Capabilities []string `json:"capabilities"`
	StackBounded bool     `json:"stackBounded"`
	StackBytes   int64    `json:"stackBytes"` // valid when StackBounded
	Warnings     []string `json:"warnings,omitempty"`
}

// auditOutcome is one module's trip through the admission gate.
type auditOutcome struct {
	rep        *audit.Report
	dur        time.Duration
	violations []audit.Violation
	rejected   bool // enforce mode refused the module
}

func (o auditOutcome) summary() *AuditSummary {
	if o.rep == nil {
		return nil
	}
	s := &AuditSummary{
		Digest:       o.rep.Digest(),
		Capabilities: o.rep.Capabilities,
		StackBounded: o.rep.Stack.Bounded,
		StackBytes:   o.rep.Stack.Bytes,
	}
	for _, v := range o.violations {
		s.Warnings = append(s.Warnings, v.Reason+": "+v.Detail)
	}
	return s
}

// violationText renders violations for an error body or log line. The
// details carry the specifics a client needs to act — the named
// recursion cycle, the proven stack bound vs. the cap, the offending
// capability.
func violationText(vs []audit.Violation) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = v.Reason + ": " + v.Detail
	}
	return strings.Join(parts, "; ")
}

// runAudit sends one decoded module through the admission audit and
// applies the configured policy. Analysis cost lands in the Audit
// stage histogram; outcomes land in the pass/warn/reject counters by
// reason. what names the module in logs and error bodies. A non-nil
// error is an analysis failure (not a policy verdict) and refuses the
// module in every mode but off.
func (h *Handler) runAudit(mod *ovm.Module, hash, what string) (auditOutcome, error) {
	var out auditOutcome
	if !h.cfg.Audit.enabled() {
		return out, nil
	}
	met := h.srv.Metrics()
	start := time.Now()
	rep, err := h.srv.Cache().AuditHashed(mod, hash)
	out.dur = time.Since(start)
	met.Audit.Observe(out.dur)
	if err != nil {
		return out, fmt.Errorf("auditing %s: %w", what, err)
	}
	out.rep = rep
	out.violations = rep.Violations(h.cfg.Audit.limits())
	if len(out.violations) == 0 {
		met.AuditPass.Add(1)
		return out, nil
	}
	if h.cfg.Audit.Mode == AuditEnforce {
		out.rejected = true
		for _, v := range out.violations {
			met.AuditReject(v.Reason)
		}
		return out, nil
	}
	for _, v := range out.violations {
		met.AuditWarn(v.Reason)
		h.cfg.Logf("netserve: audit warning for %s: %s: %s", what, v.Reason, v.Detail)
	}
	return out, nil
}

// handleAuditGet serves the full audit report for an uploaded module.
// The report is derived on demand when the gate is off (or predates
// the module), so the endpoint works in every mode — but only for
// modules this node actually holds: a report is only served alongside
// the module it describes.
func (h *Handler) handleAuditGet(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	if rep, ok := h.srv.Cache().AuditByHash(hash); ok {
		writeJSON(w, http.StatusOK, rep)
		return
	}
	h.mu.Lock()
	ent := h.mods[hash]
	h.mu.Unlock()
	if ent.mod == nil {
		writeError(w, http.StatusNotFound, "module %q not uploaded", hash)
		return
	}
	rep, err := h.srv.Cache().AuditHashed(ent.mod, hash)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "auditing module %s: %v", hash, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

// Audit fetches the full static-analysis report for an uploaded
// module by content hash.
func (c *Client) Audit(hash string) (*audit.Report, error) {
	req, err := http.NewRequest(http.MethodGet, c.Base+"/v1/audit/"+hash, nil)
	if err != nil {
		return nil, err
	}
	var out audit.Report
	if err := c.do(req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}
