// Fleet observability endpoints: the slow-trace exemplar listing and
// the cluster-wide metrics fan-out. Any node answers /v1/cluster/
// metrics by querying every member's public /v1/metrics and /v1/trace/
// slow concurrently under a bounded per-node timeout, merging what
// answers (counters sum, histograms add bucket-wise, quantiles
// recomputed from merged buckets) and reporting what didn't by name —
// a down node changes the numbers, never silently the denominator.

package netserve

import (
	"net/http"
	"sync"
	"time"

	"omniware/internal/scope"
	"omniware/internal/trace"
)

// FleetTimeout bounds each member query during a cluster-metrics
// fan-out. Shorter than the peer-fetch timeout: aggregation is a read
// an operator is waiting on, and a slow member is itself a finding.
const FleetTimeout = 2 * time.Second

// slowExemplars renders the server's slow-trace store as exemplar
// summaries, slowest first.
func (h *Handler) slowExemplars() []scope.Exemplar {
	slow := h.srv.Slow().List()
	out := make([]scope.Exemplar, 0, len(slow))
	for _, tr := range slow {
		out = append(out, exemplarOf(tr))
	}
	return out
}

func exemplarOf(tr *trace.Trace) scope.Exemplar {
	return scope.Exemplar{
		ID:         tr.ID,
		Kind:       tr.Kind,
		Target:     tr.Target,
		Status:     tr.Status,
		DurUs:      tr.Duration().Microseconds(),
		Insts:      tr.Insts,
		SandboxPct: tr.SandboxPct(),
	}
}

// handleTraceSlow lists the K slowest traces this node ever finished —
// exemplars that survive ring churn; the full trees remain fetchable
// by id from /v1/trace/{id}.
func (h *Handler) handleTraceSlow(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, h.slowExemplars())
}

// handleClusterMetrics fans out to the cluster and returns the merged
// fleet view. Without a cluster it degrades to a fleet of one — the
// local snapshot under the same shape, so omnictl top works against a
// single node too.
func (h *Handler) handleClusterMetrics(w http.ResponseWriter, r *http.Request) {
	self, members := "local", []string(nil)
	if h.cfg.Peer != nil {
		self = h.cfg.Peer.Self()
		members = h.cfg.Peer.Members()
	}
	reports := make([]scope.NodeReport, 0, len(members)+1)
	// Self is served in-process: no HTTP hop, cannot time out.
	selfSnap := h.srv.Snapshot()
	reports = append(reports, scope.NodeReport{
		Node:    self,
		Metrics: &selfSnap,
		Slow:    h.slowExemplars(),
	})
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, m := range members {
		if m == self {
			continue
		}
		wg.Add(1)
		go func(member string) {
			defer wg.Done()
			nr := queryMember(member)
			mu.Lock()
			reports = append(reports, nr)
			mu.Unlock()
		}(m)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, scope.MergeFleet(self, reports, scope.DefaultSlowK))
}

// queryMember collects one remote member's snapshot and slow
// exemplars under the fan-out timeout. The metrics call is the load-
// bearing one; a failed slow-trace listing only costs exemplars.
func queryMember(member string) scope.NodeReport {
	c := &Client{Base: member, HTTP: &http.Client{Timeout: FleetTimeout}}
	nr := scope.NodeReport{Node: member}
	snap, err := c.Metrics()
	if err != nil {
		nr.Err = err.Error()
		return nr
	}
	nr.Metrics = snap
	if slow, err := c.SlowTraces(); err == nil {
		nr.Slow = slow
	}
	return nr
}
