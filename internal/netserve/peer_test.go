package netserve_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"testing"

	"omniware/internal/mcache"
	"omniware/internal/netserve"
	"omniware/internal/serve"
	"omniware/internal/trace"
	"omniware/internal/wire"
)

// fakeHooks is a map-backed PeerHooks: what the cluster layer would
// fetch from peers, minus the network.
type fakeHooks struct {
	mods map[string][]byte
}

func (f *fakeHooks) FetchModule(hash string, org mcache.PeerOrigin) ([]byte, *trace.Span, string, string, bool) {
	b, ok := f.mods[hash]
	return b, nil, "fake-peer", "", ok
}

func (f *fakeHooks) Self() string      { return "fake-self" }
func (f *fakeHooks) Members() []string { return nil }

// noOrg is the empty peer origin used where the test is not about
// trace propagation.
var noOrg mcache.PeerOrigin

func TestUploadBatch(t *testing.T) {
	cl, _, _ := startServer(t, serve.Config{Workers: 2}, netserve.Config{})
	blobs := [][]byte{
		buildBlob(t, `int main(void){ return 11; }`),
		buildBlob(t, `int main(void){ return 22; }`),
		buildBlob(t, `int main(void){ return 33; }`),
	}
	resp, err := cl.UploadBatch(blobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Modules) != 3 {
		t.Fatalf("batch response %+v", resp)
	}
	for i, m := range resp.Modules {
		if m.Hash != wire.Hash(blobs[i]) {
			t.Errorf("member %d hash %q, want %q", i, m.Hash, wire.Hash(blobs[i]))
		}
		if m.Replaced {
			t.Errorf("member %d reported Replaced on first upload", i)
		}
	}
	// Every member is immediately runnable.
	res, err := cl.Exec(netserve.ExecRequest{Module: resp.Modules[1].Hash, Target: "mips"})
	if err != nil || res.Exit != 22 {
		t.Fatalf("exec of batch member: %+v, %v", res, err)
	}
}

// A batch with one bad member registers nothing: the client retries
// the whole frame rather than diffing partial state.
func TestUploadBatchAllOrNothing(t *testing.T) {
	cl, _, _ := startServer(t, serve.Config{Workers: 1}, netserve.Config{})
	good := buildBlob(t, `int main(void){ return 5; }`)
	bad := append([]byte(nil), buildBlob(t, `int main(void){ return 6; }`)...)
	bad[len(bad)-1] ^= 0x40 // corrupt a section, frame still splits
	frame, err := wire.EncodeBatch([][]byte{good, bad})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wire.DecodeBatch(frame); err != nil {
		t.Fatalf("test batch must split cleanly: %v", err)
	}
	if _, err := cl.UploadBatch([][]byte{good, bad}); err == nil {
		t.Fatal("half-bad batch accepted")
	}
	// The good member must not have been registered.
	_, err = cl.Exec(netserve.ExecRequest{Module: wire.Hash(good), Target: "mips"})
	if err == nil || !strings.Contains(err.Error(), "not uploaded") {
		t.Fatalf("good member registered despite batch failure: %v", err)
	}
}

// The peer read endpoints: module by content address, translation as
// an OPF frame bound to its full cache key, both disabled outside
// cluster mode.
func TestPeerEndpoints(t *testing.T) {
	clSolo, _, _ := startServer(t, serve.Config{Workers: 1}, netserve.Config{})
	if _, _, _, err := clSolo.PeerModule("deadbeef", "test", noOrg); err == nil {
		t.Fatal("peer endpoint reachable outside cluster mode")
	}

	cl, _, srv := startServer(t, serve.Config{Workers: 1}, netserve.Config{Peer: &fakeHooks{}})
	blob := buildBlob(t, `int main(void){ return 9; }`)
	up, err := cl.Upload(blob)
	if err != nil {
		t.Fatal(err)
	}
	got, _, _, err := cl.PeerModule(up.Hash, "test", noOrg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blob) {
		t.Error("peer module fetch returned different bytes")
	}
	if _, _, _, err := cl.PeerModule("0000", "test", noOrg); err == nil {
		t.Error("unknown module served")
	}

	// Two execs warm the cache and give the entry a hit count, so Hot
	// exposes its full key — the identity a real peer would probe.
	for i := 0; i < 2; i++ {
		if _, err := cl.Exec(netserve.ExecRequest{Module: up.Hash, Target: "mips"}); err != nil {
			t.Fatal(err)
		}
	}
	hot := srv.Cache().Hot(1)
	if len(hot) != 1 {
		t.Fatalf("no hot entry after execs: %v", hot)
	}
	key := hot[0].Key

	frame, _, err := cl.PeerTranslation(up.Hash, "mips", key, "test", noOrg)
	if err != nil {
		t.Fatal(err)
	}
	gotKey, payload, err := wire.DecodePeerFrame(frame)
	if err != nil || gotKey != key {
		t.Fatalf("frame decode: key %q err %v", gotKey, err)
	}
	if _, err := wire.DecodeProgram(payload); err != nil {
		t.Fatalf("payload is not an OWP program: %v", err)
	}

	// Key/path disagreement is refused in both directions.
	if _, _, err := cl.PeerTranslation(up.Hash, "sparc", key, "test", noOrg); err == nil {
		t.Error("key for mips served under a sparc path")
	}
	if _, _, err := cl.PeerTranslation("badhash", "mips", key, "test", noOrg); err == nil {
		t.Error("key served under a mismatched module path")
	}
	if _, _, err := cl.PeerTranslation(up.Hash, "mips", "", "test", noOrg); err == nil {
		t.Error("missing key accepted")
	}
	if _, _, err := cl.PeerTranslation(up.Hash, "mips", "k1|garbage", "test", noOrg); err == nil {
		t.Error("malformed key accepted")
	}
}

// The replication push path: an honest frame is admitted through the
// verifier gate AND the correspondence check on the receiving node
// (which peer-fetches the module if it never saw the upload); a
// tampered one is refused and nothing becomes visible, and a receiver
// that cannot obtain the module refuses the push outright.
func TestPeerPush(t *testing.T) {
	blob := buildBlob(t, `int main(void){ return 3; }`)
	hash := wire.Hash(blob)
	withMod := func() *fakeHooks { return &fakeHooks{mods: map[string][]byte{hash: blob}} }

	clA, _, srvA := startServer(t, serve.Config{Workers: 1}, netserve.Config{Peer: &fakeHooks{}})
	clB, _, srvB := startServer(t, serve.Config{Workers: 1}, netserve.Config{Peer: withMod()})

	up, err := clA.Upload(blob)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := clA.Exec(netserve.ExecRequest{Module: up.Hash, Target: "mips"}); err != nil {
			t.Fatal(err)
		}
	}
	key := srvA.Cache().Hot(1)[0].Key
	prog, ok := srvA.Cache().Peek(key)
	if !ok {
		t.Fatal("source cache lost the entry")
	}
	payload, err := wire.EncodeProgram(prog)
	if err != nil {
		t.Fatal(err)
	}

	if err := clB.PushPeerTranslation(up.Hash, "mips", key, payload, "node-a"); err != nil {
		t.Fatalf("honest push refused: %v", err)
	}
	if _, ok := srvB.Cache().Peek(key); !ok {
		t.Error("pushed translation not visible on receiver")
	}

	// Tampered payload: flip bytes inside the program encoding. The
	// OPF frame is re-framed honestly (the pusher controls framing),
	// so only the verifier stands between the payload and the cache.
	clC, _, srvC := startServer(t, serve.Config{Workers: 1}, netserve.Config{Peer: withMod()})
	bad := append([]byte(nil), payload...)
	bad[len(bad)/2] ^= 0xff
	if err := clC.PushPeerTranslation(up.Hash, "mips", key, bad, "node-a"); err == nil {
		t.Fatal("tampered push accepted")
	}
	if _, ok := srvC.Cache().Peek(key); ok {
		t.Error("tampered push visible on receiver")
	}

	// A receiver that cannot obtain the module (not registered, peers
	// don't have it) refuses even an honest push: without the module
	// there is no correspondence check, and an unchecked push is an
	// injection vector.
	clD, _, srvD := startServer(t, serve.Config{Workers: 1}, netserve.Config{Peer: &fakeHooks{}})
	if err := clD.PushPeerTranslation(up.Hash, "mips", key, payload, "node-a"); err == nil ||
		!strings.Contains(err.Error(), "correspondence") {
		t.Fatalf("push without module not refused: %v", err)
	}
	if _, ok := srvD.Cache().Peek(key); ok {
		t.Error("uncheckable push visible on receiver")
	}
}

// Every /v1/peer/* endpoint requires the shared cluster secret: a
// request with a missing or wrong secret is refused with 401 before
// any decoding or verification work, and a handler cannot even be
// built in cluster mode without one.
func TestPeerAuthRequired(t *testing.T) {
	bare := serve.New(serve.Config{Workers: 1})
	defer bare.Close()
	if _, err := netserve.New(netserve.Config{Server: bare, Peer: &fakeHooks{}}); err == nil {
		t.Fatal("cluster-mode handler built without PeerAuth")
	}

	cl, _, srv := startServer(t, serve.Config{Workers: 1}, netserve.Config{Peer: &fakeHooks{}})
	blob := buildBlob(t, `int main(void){ return 8; }`)
	up, err := cl.Upload(blob)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := cl.Exec(netserve.ExecRequest{Module: up.Hash, Target: "mips"}); err != nil {
			t.Fatal(err)
		}
	}
	key := srv.Cache().Hot(1)[0].Key

	for _, secret := range []string{"", "wrong-secret"} {
		bad := &netserve.Client{Base: cl.Base, PeerAuth: secret}
		is401 := func(err error) bool {
			var se *netserve.StatusError
			return errors.As(err, &se) && se.Code == http.StatusUnauthorized
		}
		if _, _, _, err := bad.PeerModule(up.Hash, "x", noOrg); !is401(err) {
			t.Errorf("PeerModule with secret %q: %v, want 401", secret, err)
		}
		if _, _, err := bad.PeerTranslation(up.Hash, "mips", key, "x", noOrg); !is401(err) {
			t.Errorf("PeerTranslation with secret %q: %v, want 401", secret, err)
		}
		if err := bad.PushPeerTranslation(up.Hash, "mips", key, []byte("junk"), "x"); !is401(err) {
			t.Errorf("PushPeerTranslation with secret %q: %v, want 401", secret, err)
		}
	}
}

// Exec on a node that never saw the upload: cluster mode fetches the
// module from peers by content address; a peer serving wrong bytes
// under the name is discarded.
func TestExecFetchesModuleViaPeers(t *testing.T) {
	blob := buildBlob(t, `int main(void){ return 44; }`)
	hash := wire.Hash(blob)
	hooks := &fakeHooks{mods: map[string][]byte{hash: blob}}
	cl, _, _ := startServer(t, serve.Config{Workers: 1}, netserve.Config{Peer: hooks})

	res, err := cl.Exec(netserve.ExecRequest{Module: hash, Target: "mips", Check: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != "ok" || res.Exit != 44 || res.Parity == nil || !*res.Parity {
		t.Fatalf("peer-fetched module exec: %+v", res)
	}
	// Second exec uses the registered copy (no second fetch needed,
	// and the warm cache serves the translation).
	res, err = cl.Exec(netserve.ExecRequest{Module: hash, Target: "mips"})
	if err != nil || !res.Cached {
		t.Fatalf("repeat exec not warm: %+v, %v", res, err)
	}

	// A lying peer: the blob under the name decodes but hashes
	// differently. The node must refuse to register it.
	other := buildBlob(t, `int main(void){ return 55; }`)
	lying := &fakeHooks{mods: map[string][]byte{hash: other}}
	cl2, _, _ := startServer(t, serve.Config{Workers: 1}, netserve.Config{Peer: lying})
	_, err = cl2.Exec(netserve.ExecRequest{Module: hash, Target: "mips"})
	if err == nil || !strings.Contains(err.Error(), "not uploaded") {
		t.Fatalf("content-address mismatch not refused: %v", err)
	}
}

// Peer endpoints forward the ORIGINATING request id instead of minting
// a fresh one: the inbound X-Omni-Request-Id is echoed on the response
// header and in error bodies, so a remote failure names a request the
// origin operator can actually find. Non-peer endpoints keep minting.
func TestPeerRequestIDForwarding(t *testing.T) {
	cl, _, _ := startServer(t, serve.Config{Workers: 1}, netserve.Config{Peer: &fakeHooks{}})

	get := func(path, rid string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, cl.Base+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(netserve.PeerAuthHeader, testPeerSecret)
		if rid != "" {
			req.Header.Set(netserve.RequestIDHeader, rid)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// A peer miss (404): the forwarded id comes back in the header AND
	// the JSON error body.
	resp := get("/v1/peer/module/ffff", "origin-req-7")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("peer miss status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(netserve.RequestIDHeader); got != "origin-req-7" {
		t.Errorf("response header id %q, want the forwarded origin-req-7", got)
	}
	var body struct {
		Error     string `json:"error"`
		RequestID string `json:"request_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.RequestID != "origin-req-7" {
		t.Errorf("error body request_id %q, want origin-req-7", body.RequestID)
	}

	// Without an inbound id even a peer endpoint mints one — responses
	// are never unattributed.
	resp2 := get("/v1/peer/module/ffff", "")
	resp2.Body.Close()
	if resp2.Header.Get(netserve.RequestIDHeader) == "" {
		t.Error("peer response without inbound id has no request id")
	}

	// Non-peer endpoints mint their own id: a client-supplied header
	// must NOT leak into the public surface's attribution.
	req, _ := http.NewRequest(http.MethodGet, cl.Base+"/v1/metrics", nil)
	req.Header.Set(netserve.RequestIDHeader, "spoofed-id")
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if got := resp3.Header.Get(netserve.RequestIDHeader); got == "spoofed-id" || got == "" {
		t.Errorf("public endpoint request id %q, want a freshly minted one", got)
	}
}
