// Cluster-facing HTTP surface: the /v1/peer/* endpoints a node serves
// to its cluster peers, the batch upload endpoint, and the client
// helpers that speak them. The peer protocol is deliberately
// trust-free in both directions:
//
//   - Module fetch is content-addressed — the receiver re-encodes
//     canonically and checks the hash, so a peer cannot substitute a
//     different module.
//   - Translation fetch ships an OPF envelope binding payload to cache
//     key; the receiver re-runs the SFI verifier before admission
//     (mcache's peer-fill gate), so a peer cannot inject unverified
//     code.
//   - Translation push lands in Cache.AdmitKeyed behind the same
//     verifier gate PLUS an unconditional correspondence check (the
//     program must equal the local retranslation of the module), so
//     replication cannot weaken the contract either — not even with a
//     sandboxed-but-semantically-wrong program.
//
// Trust-free is not authentication-free: every /v1/peer/* request must
// carry the shared cluster secret (X-Omni-Peer-Auth, Config.PeerAuth),
// checked in constant time before any work is done. The peer endpoints
// are enabled only in cluster mode (Config.Peer non-nil) and bypass
// the per-client rate limiter: authenticated peers are a closed,
// configured set, and a peer probe shedding at the limiter would turn
// one client burst into cluster-wide retranslation. An outsider's
// request fails the secret check — one hash compare, cheaper than the
// limiter itself — before touching frame decode or the verifier.

package netserve

import (
	"bytes"
	"crypto/sha256"
	"crypto/subtle"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"omniware/internal/mcache"
	"omniware/internal/scope"
	"omniware/internal/target"
	"omniware/internal/trace"
	"omniware/internal/translate"
	"omniware/internal/wire"
)

// PeerHeader names the requesting cluster member on peer-to-peer
// requests, for logs and per-peer attribution on the serving side.
const PeerHeader = "X-Omni-Peer"

// PeerAuthHeader carries the shared cluster secret on peer-to-peer
// requests; requests without the right value are refused before any
// decoding or verification work.
const PeerAuthHeader = "X-Omni-Peer-Auth"

// peerAuth wraps a peer endpoint behind the shared cluster secret.
// Both sides are hashed before comparison so the check is constant
// time regardless of attacker-chosen length.
func (h *Handler) peerAuth(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		got := sha256.Sum256([]byte(r.Header.Get(PeerAuthHeader)))
		want := sha256.Sum256([]byte(h.cfg.PeerAuth))
		if subtle.ConstantTimeCompare(got[:], want[:]) != 1 {
			writeError(w, http.StatusUnauthorized, "peer authentication failed")
			return
		}
		next(w, r)
	}
}

// PeerHooks is what the cluster layer provides to the HTTP handler.
// It is defined here (and implemented by internal/cluster) so netserve
// does not import the cluster package.
type PeerHooks interface {
	// FetchModule asks the cluster for a module blob by content hash,
	// returning the canonical OMW bytes from whichever peer has it,
	// that peer's span subtree for the serve (when returned), the
	// peer's address, and the audit-report digest the peer advertised
	// ("" when it sent none). The caller re-verifies the hash and
	// re-derives the audit; implementations only transport. org is the
	// originating trace/request identity, forwarded on the wire for
	// cross-node stitching.
	FetchModule(hash string, org mcache.PeerOrigin) (blob []byte, remote *trace.Span, peer, auditDigest string, ok bool)
	// Self is this node's advertised address; Members the full static
	// membership (including self) — what the fleet aggregation
	// endpoint fans out over.
	Self() string
	Members() []string
}

// peerServeTrace opens the serving side of a cross-node probe: a local
// trace, recorded in this node's own ring, carrying the origin's
// forwarded request id and trace id as annotations. Its root span is
// what the response's X-Omni-Trace-Spans header ships back.
func (h *Handler) peerServeTrace(kind string, r *http.Request) *trace.Trace {
	tr := trace.New(fmt.Sprintf("peer-%d", h.jobSeq.Add(1)), kind)
	tr.SetRequestID(r.Header.Get(RequestIDHeader))
	if parent := scope.ParseParent(r.Header.Get(scope.TraceParentHeader)); parent.TraceID != "" {
		tr.Root.Set("origin_trace", parent.TraceID)
	}
	if from := r.Header.Get(PeerHeader); from != "" {
		tr.Root.Set("from", from)
	}
	return tr
}

// finishPeerServe closes and records the serving-side trace and, when
// the subtree fits the header cap, attaches it to the response.
func (h *Handler) finishPeerServe(w http.ResponseWriter, tr *trace.Trace, status string) {
	tr.Finish(status)
	h.srv.Traces().Add(tr)
	if enc, err := scope.EncodeSpans(tr.Root); err == nil {
		w.Header().Set(scope.TraceSpansHeader, enc)
	}
}

// handlePeerModule serves the canonical OMW encoding of a registered
// module to a cluster peer.
func (h *Handler) handlePeerModule(w http.ResponseWriter, r *http.Request) {
	tr := h.peerServeTrace("peer_module", r)
	hash := r.PathValue("hash")
	h.mu.Lock()
	ent := h.mods[hash]
	h.mu.Unlock()
	if ent.blob == nil {
		h.finishPeerServe(w, tr, "miss")
		writeError(w, http.StatusNotFound, "module %q not registered here", hash)
		return
	}
	tr.Root.Set("bytes", len(ent.blob))
	h.finishPeerServe(w, tr, "ok")
	// Advertise this node's audit digest when it has derived one; the
	// receiver re-derives and compares rather than trusting it.
	if rep, ok := h.srv.Cache().AuditByHash(hash); ok {
		w.Header().Set(AuditDigestHeader, rep.Digest())
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(ent.blob)
}

// handlePeerTranslation serves one verified translation as an OPF
// frame. The path names the module hash and target for routing and
// sanity; the ?key= query carries the full cache key (module, machine,
// segment shape, options) and is authoritative — but it must agree
// with the path, so a confused client can't file a translation under
// the wrong identity.
//
// Owner fill: when the cache has no entry but the module is registered
// here, the owner translates on demand through the cache's no-peer
// path (TranslateNoPeer — memory, coalescing, disk and local
// translation, but never a recursive peer probe) instead of refusing.
// The ring routes a module's requests to its owners, so the owner
// doing the one translation is exactly the paper's economics; the
// probing node still re-verifies on arrival. A module this node does
// not hold is still a clean 404 — an owner fill never triggers its own
// module fetch, which would turn one probe into a cluster-wide chase.
func (h *Handler) handlePeerTranslation(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("key")
	hash := r.PathValue("hash")
	if err := checkPeerKey(key, hash, r.PathValue("target")); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	tr := h.peerServeTrace("peer_serve", r)
	sp := tr.Root
	pk := sp.Child("cache_peek")
	prog, tier, ok := h.srv.Cache().PeekTier(key)
	pk.End()
	if ok {
		pk.Set("tier", tier)
	} else if mach, si, opt, err := mcache.ParseKey(key); err == nil {
		h.mu.Lock()
		ent := h.mods[hash]
		h.mu.Unlock()
		if ent.mod != nil {
			csp := sp.Child("cache")
			p2, warm, terr := h.srv.Cache().TranslateNoPeer(csp, ent.mod, mach, si, opt)
			h.srv.Metrics().Translate.Observe(csp.End())
			if vsp := csp.Find("verify"); vsp != nil {
				h.srv.Metrics().Verify.Observe(vsp.Dur())
			}
			if terr != nil {
				h.cfg.Logf("netserve: owner fill for %q failed: %v", key, terr)
			} else {
				prog, ok = p2, true
				if !warm {
					h.srv.Metrics().Translations.Add(1)
				}
			}
		}
	}
	if !ok {
		h.finishPeerServe(w, tr, "miss")
		writeError(w, http.StatusNotFound, "no translation for key here")
		return
	}
	payload, err := wire.EncodeProgram(prog)
	if err != nil {
		h.finishPeerServe(w, tr, "error")
		writeError(w, http.StatusInternalServerError, "encoding translation: %v", err)
		return
	}
	frame, err := wire.EncodePeerFrame(key, payload)
	if err != nil {
		h.finishPeerServe(w, tr, "error")
		writeError(w, http.StatusInternalServerError, "framing translation: %v", err)
		return
	}
	h.finishPeerServe(w, tr, "ok")
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(frame)
}

// handlePeerPush accepts a hot-entry replication push: an OPF frame
// whose program is admitted through the cache's verifier gate AND the
// retranslation correspondence check — the module must be available
// here (registered, or peer-fetched by content address) so the push
// can be proved to be the translation of the module it claims, not
// merely a contained program. A push for a key this node already holds
// is acknowledged without re-admitting: an existing verified entry is
// never replaced by a push. A refusal is the pusher's problem to
// count; the receiving cache's counters record it locally too.
func (h *Handler) handlePeerPush(w http.ResponseWriter, r *http.Request) {
	if h.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, wire.MaxPeerFrameBytes))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, "reading frame: %v", err)
		return
	}
	key, payload, err := wire.DecodePeerFrame(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "decoding frame: %v", err)
		return
	}
	hash := r.PathValue("hash")
	if err := checkPeerKey(key, hash, r.PathValue("target")); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if _, ok := h.srv.Cache().Peek(key); ok {
		writeJSON(w, http.StatusOK, map[string]bool{"admitted": true})
		return
	}
	prog, err := wire.DecodeProgram(payload)
	if err != nil {
		writeError(w, http.StatusBadRequest, "decoding program: %v", err)
		return
	}
	h.mu.Lock()
	ent := h.mods[hash]
	h.mu.Unlock()
	var fetchErr error
	if ent.mod == nil && h.cfg.Peer != nil {
		ent, _, _, fetchErr = h.fetchModuleViaPeers(hash,
			mcache.PeerOrigin{RequestID: r.Header.Get(RequestIDHeader)})
	}
	if ent.mod == nil {
		if fetchErr != nil {
			writeError(w, http.StatusUnprocessableEntity, "%v", fetchErr)
			return
		}
		writeError(w, http.StatusUnprocessableEntity,
			"module %s not available here; push correspondence cannot be checked", hash)
		return
	}
	mach, si, opt, err := mcache.ParseKey(key)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	retranslate := func() (*target.Program, error) {
		return translate.Translate(ent.mod, mach, si, opt)
	}
	if err := h.srv.Cache().AdmitKeyed(key, prog, retranslate); err != nil {
		h.cfg.Logf("netserve: push from %s refused: %v", r.Header.Get(PeerHeader), err)
		writeError(w, http.StatusUnprocessableEntity, "admission refused: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"admitted": true})
}

// checkPeerKey verifies that a full cache key agrees with the
// hash/target pair in a peer URL path.
func checkPeerKey(key, hash, targetName string) error {
	if key == "" {
		return fmt.Errorf("missing key parameter")
	}
	kh, err := mcache.KeyModuleHash(key)
	if err != nil {
		return err
	}
	if kh != hash {
		return fmt.Errorf("key names module %s, path says %s", kh, hash)
	}
	mach, _, _, err := mcache.ParseKey(key)
	if err != nil {
		return err
	}
	if mach.Name != targetName {
		return fmt.Errorf("key names target %s, path says %s", mach.Name, targetName)
	}
	return nil
}

// fetchModuleViaPeers pulls a module the cluster knows but this node
// does not, verifying the content address and re-deriving the
// admission audit before registering it. Any mismatch — undecodable,
// or hash of the canonical re-encoding not the requested name — is
// discarded; a peer cannot plant a module under a false identity. A
// non-nil error is the audit gate refusing the module: peer fill is
// just upload by another road, so a module the gate would have
// rejected at upload is rejected on arrival too, before it can be
// registered or served. The supplying peer's span subtree and address
// come back alongside so the caller can stitch the fetch into its
// trace.
func (h *Handler) fetchModuleViaPeers(hash string, org mcache.PeerOrigin) (modEntry, *trace.Span, string, error) {
	blob, remote, peer, peerDigest, ok := h.cfg.Peer.FetchModule(hash, org)
	if !ok {
		return modEntry{}, nil, "", nil
	}
	decodeStart := time.Now()
	mod, canon, gotHash, err := decodeCanonical(blob)
	decodeDur := time.Since(decodeStart)
	if err != nil || gotHash != hash {
		h.cfg.Logf("netserve: peer module fetch for %s: bad blob (err=%v, hash=%s)", hash, err, gotHash)
		return modEntry{}, nil, "", nil
	}
	h.srv.Metrics().Decode.Observe(decodeDur)
	out, aerr := h.runAudit(mod, hash, "peer-filled module "+hash)
	if aerr != nil {
		return modEntry{}, nil, "", aerr
	}
	if out.rejected {
		h.cfg.Logf("netserve: audit rejected peer-filled module %s from %s: %s",
			hash, peer, violationText(out.violations))
		return modEntry{}, nil, "", fmt.Errorf(
			"audit rejected peer-filled module %s: %s", hash, violationText(out.violations))
	}
	if out.rep != nil && peerDigest != "" && peerDigest != out.rep.Digest() {
		// The peer's advertised digest disagrees with the local
		// derivation. The local report is the authority (it gated the
		// admission above); the divergence is worth an operator's eye —
		// it means the fleet's analyzers disagree, or the peer lied.
		h.cfg.Logf("netserve: peer %s advertised audit digest %s for %s; local derivation is %s",
			peer, peerDigest, hash, out.rep.Digest())
	}
	ent := modEntry{mod: mod, blob: canon, decode: decodeDur, audit: out.dur}
	h.register(ent, hash)
	return ent, remote, peer, nil
}

// BatchUploadResponse lists the per-member results of a batch upload,
// in batch order.
type BatchUploadResponse struct {
	Modules []UploadResponse `json:"modules"`
}

// handleUploadBatch accepts one OMB frame holding several OMW modules.
// All-or-nothing: every member must decode before any is registered,
// so a half-good batch does not leave the registry in a state the
// client has to reverse-engineer from partial errors.
func (h *Handler) handleUploadBatch(w http.ResponseWriter, r *http.Request) {
	if !h.gate(w, r) {
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, wire.MaxBatchBytes))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, "reading batch: %v", err)
		return
	}
	decodeStart := time.Now()
	blobs, err := wire.DecodeBatch(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "decoding batch: %v", err)
		return
	}
	ents := make([]modEntry, len(blobs))
	hashes := make([]string, len(blobs))
	for i, blob := range blobs {
		mod, canon, hash, err := decodeCanonical(blob)
		if err != nil {
			h.srv.Metrics().Decode.Observe(time.Since(decodeStart))
			writeError(w, http.StatusBadRequest, "batch member %d: %v", i, err)
			return
		}
		ents[i] = modEntry{mod: mod, blob: canon}
		hashes[i] = hash
	}
	decodeDur := time.Since(decodeStart)
	h.srv.Metrics().Decode.Observe(decodeDur)
	// The audit gate keeps the all-or-nothing contract: every member is
	// audited before any is registered, and one enforce-mode rejection
	// refuses the whole batch, naming the member.
	outs := make([]auditOutcome, len(ents))
	for i := range ents {
		out, err := h.runAudit(ents[i].mod, hashes[i], fmt.Sprintf("batch member %d (%s)", i, hashes[i]))
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, "batch member %d: %v", i, err)
			return
		}
		if out.rejected {
			writeError(w, http.StatusUnprocessableEntity,
				"batch member %d: audit rejected module %s: %s", i, hashes[i], violationText(out.violations))
			return
		}
		outs[i] = out
	}
	resp := BatchUploadResponse{Modules: make([]UploadResponse, len(blobs))}
	for i := range ents {
		// Each member carries the batch's decode cost share.
		ents[i].decode = decodeDur / time.Duration(len(ents))
		ents[i].audit = outs[i].dur
		existed := h.register(ents[i], hashes[i])
		resp.Modules[i] = uploadResponseFor(ents[i].mod, hashes[i], existed)
		resp.Modules[i].Audit = outs[i].summary()
	}
	writeJSON(w, http.StatusOK, resp)
}

// UploadBatch frames blobs as one OMB request and uploads them in a
// single round trip.
func (c *Client) UploadBatch(blobs [][]byte) (*BatchUploadResponse, error) {
	frame, err := wire.EncodeBatch(blobs)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequest(http.MethodPost, c.Base+"/v1/modules/batch", bytes.NewReader(frame))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	var out BatchUploadResponse
	if err := c.do(req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// PeerModule fetches a module's canonical OMW bytes from a peer,
// forwarding the originating trace/request identity and returning the
// peer's span subtree when it sent one plus the audit digest it
// advertised ("" when none). The caller owns hash verification and
// audit re-derivation.
func (c *Client) PeerModule(hash, from string, org mcache.PeerOrigin) ([]byte, *trace.Span, string, error) {
	body, remote, hdr, err := c.rawGet(c.Base+"/v1/peer/module/"+url.PathEscape(hash), from, org, int64(wire.MaxModuleBytes))
	if err != nil {
		return nil, nil, "", err
	}
	return body, remote, hdr.Get(AuditDigestHeader), nil
}

// PeerTranslation fetches one translation as a raw OPF frame from a
// peer, forwarding the originating trace/request identity. The caller
// decodes and — critically — re-verifies it; the returned span subtree
// is the serving node's own record of the fill.
func (c *Client) PeerTranslation(hash, targetName, key, from string, org mcache.PeerOrigin) ([]byte, *trace.Span, error) {
	u := c.Base + "/v1/peer/translation/" + url.PathEscape(hash) + "/" + url.PathEscape(targetName) +
		"?key=" + url.QueryEscape(key)
	body, remote, _, err := c.rawGet(u, from, org, wire.MaxPeerFrameBytes)
	return body, remote, err
}

// PushPeerTranslation replicates one translation to a peer as an OPF
// frame; the receiver verifies before admission.
func (c *Client) PushPeerTranslation(hash, targetName, key string, payload []byte, from string) error {
	frame, err := wire.EncodePeerFrame(key, payload)
	if err != nil {
		return err
	}
	u := c.Base + "/v1/peer/translation/" + url.PathEscape(hash) + "/" + url.PathEscape(targetName)
	req, err := http.NewRequest(http.MethodPost, u, bytes.NewReader(frame))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set(PeerHeader, from)
	req.Header.Set(PeerAuthHeader, c.PeerAuth)
	return c.do(req, nil)
}

// rawGet fetches an octet-stream body, converting non-2xx into
// *StatusError like do. The origin's request id is forwarded (so the
// remote error body names it, not a freshly minted remote id) along
// with the trace-parent header; the serving node's span subtree, when
// present and well-formed, is decoded from the response, whose full
// header set rides back for callers that read more (audit digest).
func (c *Client) rawGet(u, from string, org mcache.PeerOrigin, limit int64) ([]byte, *trace.Span, http.Header, error) {
	req, err := http.NewRequest(http.MethodGet, u, nil)
	if err != nil {
		return nil, nil, nil, err
	}
	if from != "" {
		req.Header.Set(PeerHeader, from)
	}
	req.Header.Set(PeerAuthHeader, c.PeerAuth)
	if org.RequestID != "" {
		req.Header.Set(RequestIDHeader, org.RequestID)
	}
	if p := scope.EncodeParent(org.TraceID, org.RequestID); p != "" {
		req.Header.Set(scope.TraceParentHeader, p)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, nil, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, limit+1))
	if err != nil {
		return nil, nil, nil, err
	}
	if resp.StatusCode/100 != 2 {
		return nil, nil, nil, statusErrorFrom(resp, body)
	}
	if int64(len(body)) > limit {
		return nil, nil, nil, fmt.Errorf("netserve: peer response exceeds %d bytes", limit)
	}
	remote, _ := scope.DecodeSpans(resp.Header.Get(scope.TraceSpansHeader))
	return body, remote, resp.Header, nil
}
