package netserve

import (
	"math"
	"sync"
	"time"
)

// limiter is a per-client token-bucket rate limiter: each client key
// owns a bucket of `burst` tokens refilled at `rate` tokens/second.
// A request spends one token; an empty bucket means 429 with a
// Retry-After derived from the refill rate. Buckets idle at full for
// a while are discarded so the map doesn't grow with client churn.
type limiter struct {
	rate  float64
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
	sweepAt time.Time
}

type bucket struct {
	tokens float64
	last   time.Time
}

const sweepEvery = time.Minute

func newLimiter(rate, burst float64) *limiter {
	return &limiter{rate: rate, burst: burst, buckets: map[string]*bucket{}}
}

// allow spends one token from key's bucket at time now. When refused,
// retry is the whole number of seconds (at least 1) after which one
// token will be available.
func (l *limiter) allow(key string, now time.Time) (retry int, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()

	if l.sweepAt.IsZero() {
		l.sweepAt = now.Add(sweepEvery)
	} else if now.After(l.sweepAt) {
		for k, b := range l.buckets {
			if b.tokens+now.Sub(b.last).Seconds()*l.rate >= l.burst {
				delete(l.buckets, k)
			}
		}
		l.sweepAt = now.Add(sweepEvery)
	}

	b := l.buckets[key]
	if b == nil {
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	} else {
		b.tokens = math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return 0, true
	}
	need := (1 - b.tokens) / l.rate
	return int(math.Max(1, math.Ceil(need))), false
}
