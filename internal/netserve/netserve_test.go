package netserve_test

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"omniware/internal/cc"
	"omniware/internal/core"
	"omniware/internal/netserve"
	"omniware/internal/serve"
	"omniware/internal/target"
	"omniware/internal/wire"
)

func buildBlob(t *testing.T, src string) []byte {
	t.Helper()
	mod, err := core.BuildC([]core.SourceFile{{Name: "p.c", Src: src}}, cc.Options{OptLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := wire.EncodeModule(mod)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// startServer boots a handler over a fresh pool behind httptest and
// returns a client for it plus the pieces the test needs to poke.
func startServer(t *testing.T, scfg serve.Config, ncfg netserve.Config) (*netserve.Client, *netserve.Handler, *serve.Server) {
	t.Helper()
	srv := serve.New(scfg)
	ncfg.Server = srv
	if ncfg.Logf == nil {
		ncfg.Logf = t.Logf
	}
	if ncfg.Peer != nil && ncfg.PeerAuth == "" {
		ncfg.PeerAuth = testPeerSecret
	}
	h, err := netserve.New(ncfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return &netserve.Client{Base: ts.URL, PeerAuth: ncfg.PeerAuth}, h, srv
}

// testPeerSecret is the shared peer-auth secret startServer configures
// for cluster-mode handlers (and their clients).
const testPeerSecret = "test-peer-secret"

func TestUploadAndExec(t *testing.T) {
	cl, _, _ := startServer(t, serve.Config{Workers: 2}, netserve.Config{})

	blob := buildBlob(t, `int main(void){ int i, a = 0; for (i = 1; i <= 10; i++) a += i; return a; }`)
	up, err := cl.Upload(blob)
	if err != nil {
		t.Fatal(err)
	}
	if up.Hash != wire.Hash(blob) {
		t.Fatalf("hash %q, want %q", up.Hash, wire.Hash(blob))
	}
	if up.Replaced {
		t.Fatal("fresh upload reported Replaced")
	}
	// Idempotent re-upload.
	up2, err := cl.Upload(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !up2.Replaced || up2.Hash != up.Hash {
		t.Fatalf("re-upload: %+v", up2)
	}

	for _, m := range target.Machines() {
		res, err := cl.Exec(netserve.ExecRequest{Module: up.Hash, Target: m.Name, Check: true})
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if res.Status != "ok" || res.Exit != 55 {
			t.Fatalf("%s: %+v", m.Name, res)
		}
		if res.Parity == nil || !*res.Parity {
			t.Fatalf("%s: parity not confirmed: %+v", m.Name, res)
		}
	}

	// Same module, same target again: served from the warm cache.
	res, err := cl.Exec(netserve.ExecRequest{Module: up.Hash, Target: "mips"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cached {
		t.Fatalf("repeat exec not cached: %+v", res)
	}

	snap, err := cl.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if snap.JobsRun != 5 || snap.CacheMisses != 4 {
		t.Fatalf("metrics %+v", snap)
	}
	if err := cl.Health(); err != nil {
		t.Fatal(err)
	}
}

// A module that faults must come back as a contained fault over the
// wire — HTTP 200, status "fault(contained)" — not as a server error.
func TestContainedFaultOverWire(t *testing.T) {
	cl, _, _ := startServer(t, serve.Config{Workers: 1}, netserve.Config{})
	// SFI sandboxes stores (masking them into the segment), so the
	// fault a sandboxed module can still commit is an out-of-segment
	// load.
	blob := buildBlob(t, `
int main(void) {
	int *p = (int *)0x70000000;
	return *p;
}`)
	up, err := cl.Upload(blob)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Exec(netserve.ExecRequest{Module: up.Hash, Target: "mips"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status == "ok" {
		t.Fatalf("wild store ran cleanly: %+v", res)
	}
	// Whether the wild store surfaces as a module fault or a job error
	// depends on the SFI policy; either way it must be contained and
	// the server must keep serving.
	good := buildBlob(t, `int main(void){ return 7; }`)
	gup, err := cl.Upload(good)
	if err != nil {
		t.Fatal(err)
	}
	gres, err := cl.Exec(netserve.ExecRequest{Module: gup.Hash, Target: "mips"})
	if err != nil || gres.Status != "ok" || gres.Exit != 7 {
		t.Fatalf("server unhealthy after fault: %+v err=%v", gres, err)
	}
}

func TestBadRequests(t *testing.T) {
	cl, _, _ := startServer(t, serve.Config{Workers: 1}, netserve.Config{})

	if _, err := cl.Upload([]byte("not a module")); err == nil {
		t.Fatal("garbage upload accepted")
	} else if se, ok := err.(*netserve.StatusError); !ok || se.Code != 400 {
		t.Fatalf("garbage upload: %v", err)
	}

	blob := buildBlob(t, `int main(void){ return 0; }`)
	up, err := cl.Upload(blob)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Exec(netserve.ExecRequest{Module: "deadbeef", Target: "mips"}); err == nil {
		t.Fatal("unknown module accepted")
	} else if se, ok := err.(*netserve.StatusError); !ok || se.Code != 404 {
		t.Fatalf("unknown module: %v", err)
	}
	if _, err := cl.Exec(netserve.ExecRequest{Module: up.Hash, Target: "vax"}); err == nil {
		t.Fatal("unknown target accepted")
	} else if se, ok := err.(*netserve.StatusError); !ok || se.Code != 400 {
		t.Fatalf("unknown target: %v", err)
	}
}

// The rate limiter: a burst-sized volley passes, the next request is
// refused with 429 and a Retry-After.
func TestRateLimit(t *testing.T) {
	cl, _, _ := startServer(t, serve.Config{Workers: 1},
		netserve.Config{Rate: 1, Burst: 3})
	blob := buildBlob(t, `int main(void){ return 0; }`)
	up, err := cl.Upload(blob)
	if err != nil {
		t.Fatal(err)
	}
	// One token spent on the upload; two more requests drain the
	// bucket, the next must bounce.
	var refused *netserve.StatusError
	for i := 0; i < 3; i++ {
		_, err := cl.Exec(netserve.ExecRequest{Module: up.Hash, Target: "mips"})
		if err != nil {
			se, ok := err.(*netserve.StatusError)
			if !ok {
				t.Fatal(err)
			}
			refused = se
			break
		}
	}
	if refused == nil {
		t.Fatal("no request was rate limited")
	}
	if refused.Code != 429 || refused.RetryAfter < 1 {
		t.Fatalf("refusal %+v", refused)
	}
}

// The load-shedding acceptance criterion: with workers saturated and
// the admission queue full, an excess exec is refused with 429 +
// Retry-After — fast, not after queueing behind the spinners.
func TestQueueFullShedsFast(t *testing.T) {
	cl, _, _ := startServer(t,
		serve.Config{Workers: 1, QueueCap: 1},
		netserve.Config{Rate: 1000, Burst: 1000})

	spin := buildBlob(t, `int main(void){ for(;;); return 0; }`)
	up, err := cl.Upload(spin)
	if err != nil {
		t.Fatal(err)
	}

	// Two spinners: one on the worker, one filling the queue. Their
	// deadline keeps the test bounded.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = cl.Exec(netserve.ExecRequest{Module: up.Hash, Target: "mips", DeadlineMs: 3000})
		}()
	}
	// Wait until both are admitted (submitted and not yet finished).
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap, err := cl.Metrics()
		if err != nil {
			t.Fatal(err)
		}
		if snap.QueueDepth >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("spinners never saturated the pool: %+v", snap)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The acceptance budget is 50ms; the race detector slows the whole
	// process enough that only the order of magnitude is meaningful.
	budget := 50 * time.Millisecond
	if raceEnabled {
		budget = time.Second
	}
	start := time.Now()
	_, err = cl.Exec(netserve.ExecRequest{Module: up.Hash, Target: "mips", DeadlineMs: 3000})
	elapsed := time.Since(start)
	se, ok := err.(*netserve.StatusError)
	if !ok {
		t.Fatalf("saturated exec: %v", err)
	}
	if se.Code != 429 || se.RetryAfter < 1 {
		t.Fatalf("saturated exec refusal: %+v", se)
	}
	if elapsed > budget {
		t.Fatalf("shedding took %v, want <%v", elapsed, budget)
	}
	wg.Wait()
}

// Drain mode: health flips to 503, new work is refused, and work
// already admitted runs to completion.
func TestDrainFinishesInFlight(t *testing.T) {
	cl, h, srv := startServer(t, serve.Config{Workers: 1}, netserve.Config{})

	// A module slow enough to still be running when we drain, but small
	// enough to finish well inside its deadline — an order of magnitude
	// smaller under the race detector, which slows simulation ~10x.
	iters := 20000000
	if raceEnabled {
		iters = 2000000
	}
	slow := buildBlob(t, fmt.Sprintf(`int main(void){ int i, a = 0; for (i = 0; i < %d; i++) a ^= i; return 5; }`, iters))
	up, err := cl.Upload(slow)
	if err != nil {
		t.Fatal(err)
	}

	type outcome struct {
		res *netserve.ExecResponse
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := cl.Exec(netserve.ExecRequest{Module: up.Hash, Target: "mips", DeadlineMs: 30000})
		done <- outcome{res, err}
	}()
	// Wait for the job to be on the worker.
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap, err := cl.Metrics()
		if err != nil {
			t.Fatal(err)
		}
		if snap.QueueDepth >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(5 * time.Millisecond)
	}

	h.SetDraining(true)
	if err := cl.Health(); err == nil {
		t.Fatal("healthz still ok while draining")
	} else if se, ok := err.(*netserve.StatusError); !ok || se.Code != 503 {
		t.Fatalf("draining health: %v", err)
	}
	if _, err := cl.Exec(netserve.ExecRequest{Module: up.Hash, Target: "mips"}); err == nil {
		t.Fatal("exec accepted while draining")
	} else if se, ok := err.(*netserve.StatusError); !ok || se.Code != 503 {
		t.Fatalf("draining exec: %v", err)
	}
	if _, err := cl.Upload(slow); err == nil {
		t.Fatal("upload accepted while draining")
	}

	// The in-flight job still finishes — cleanly, with its real exit
	// code, not killed by the drain.
	out := <-done
	if out.err != nil {
		t.Fatalf("in-flight job failed during drain: %v", out.err)
	}
	if out.res.Status != "ok" || out.res.Exit != 5 {
		t.Fatalf("in-flight job: %+v", out.res)
	}
	// And the pool closes without incident afterwards.
	srv.Close()
}

// Deadlines map onto the interrupt hook: a spinner with a short
// deadline comes back as a contained failure, promptly.
func TestDeadlineInterruptsRunaway(t *testing.T) {
	cl, _, _ := startServer(t, serve.Config{Workers: 1}, netserve.Config{})
	spin := buildBlob(t, `int main(void){ for(;;); return 0; }`)
	up, err := cl.Upload(spin)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := cl.Exec(netserve.ExecRequest{Module: up.Hash, Target: "sparc", DeadlineMs: 300})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != "error" || !strings.Contains(res.Err, "interrupted") {
		t.Fatalf("runaway outcome: %+v", res)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline took %v to fire", elapsed)
	}
	snap, err := cl.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Timeouts != 1 {
		t.Fatalf("timeout not counted: %+v", snap)
	}
}

// The module registry is bounded: uploading past MaxModules evicts
// the oldest entry.
func TestModuleRegistryBounded(t *testing.T) {
	cl, _, _ := startServer(t, serve.Config{Workers: 1},
		netserve.Config{MaxModules: 2})
	var hashes []string
	for i := 0; i < 3; i++ {
		blob := buildBlob(t, fmt.Sprintf(`int main(void){ return %d; }`, i+1))
		up, err := cl.Upload(blob)
		if err != nil {
			t.Fatal(err)
		}
		hashes = append(hashes, up.Hash)
	}
	if _, err := cl.Exec(netserve.ExecRequest{Module: hashes[0], Target: "mips"}); err == nil {
		t.Fatal("evicted module still executable")
	} else if se, ok := err.(*netserve.StatusError); !ok || se.Code != 404 {
		t.Fatalf("evicted module: %v", err)
	}
	for i, h := range hashes[1:] {
		res, err := cl.Exec(netserve.ExecRequest{Module: h, Target: "mips"})
		if err != nil || res.Exit != int32(i+2) {
			t.Fatalf("retained module %d: %+v err=%v", i+1, res, err)
		}
	}
}

// Decoded uploads are real modules: what the server registers is
// byte-for-byte the module the client built.
func TestUploadPreservesModule(t *testing.T) {
	cl, _, _ := startServer(t, serve.Config{Workers: 1}, netserve.Config{})
	mod, err := core.BuildC([]core.SourceFile{{Name: "p.c", Src: `
char msg[6] = "hello";
int main(void){ return msg[1]; }`}}, cc.Options{OptLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := wire.EncodeModule(mod)
	if err != nil {
		t.Fatal(err)
	}
	up, err := cl.Upload(blob)
	if err != nil {
		t.Fatal(err)
	}
	if up.Insts != len(mod.Text) || up.DataLen != len(mod.Data) ||
		up.BSSSize != mod.BSSSize || up.Entry != mod.Entry {
		t.Fatalf("upload response %+v does not match module", up)
	}
	res, err := cl.Exec(netserve.ExecRequest{Module: up.Hash, Target: "x86", Check: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exit != int32('e') || res.Parity == nil || !*res.Parity {
		t.Fatalf("exec %+v", res)
	}
}
